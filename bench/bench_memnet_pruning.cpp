/// §VI generalization: SpAtten's cumulative-importance pruning applied
/// to a Memory-Augmented Network (end-to-end memory network, the paper's
/// ref [101]) — unimportant memory vectors are pruned between hops with
/// no accuracy loss until the relevant slots start being hit.
#include <cstdio>

#include "bench_util.hpp"
#include "nn/memnet.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Memory-augmented network pruning (§VI)",
           "cumulative-importance pruning of memory slots between hops");

    MemoryQaTask task;
    MemNetConfig cfg;
    cfg.vocab = task.vocabSize();
    cfg.dim = 32;
    cfg.hops = 3;
    MemoryNetwork net(cfg);

    std::printf("training 3-hop MemN2N on the synthetic QA task...\n");
    const auto train = task.sample(400);
    for (int epoch = 0; epoch < 14; ++epoch)
        for (const auto& ex : train)
            net.trainStep(ex);
    const auto test = task.sample(100);
    const double dense = net.accuracy(test);
    std::printf("dense accuracy: %.1f%% (%zu memory slots)\n\n",
                dense * 100, task.sample(1).front().facts.size());

    std::printf("%16s %14s %14s\n", "per-hop ratio", "slots kept",
                "acc delta");
    rule();
    for (double ratio : {0.0, 0.25, 0.5, 0.7, 0.85}) {
        double kept = 1.0;
        const double acc = net.accuracyPruned(test, ratio, &kept);
        std::printf("%16.2f %13.1f%% %+13.1f%%\n", ratio, kept * 100,
                    (acc - dense) * 100);
    }
    rule();
    std::printf("The relevant fact dominates the attention distribution, "
                "so most slots can be pruned after the first hop — the "
                "same redundancy token pruning exploits in sentences.\n");
    return 0;
}
