#include "accel/e2e.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "core/schedule.hpp"

namespace spatten {

double
fcParamsPerLayer(const ModelSpec& model)
{
    const double dm = static_cast<double>(model.dModel());
    const double ff = static_cast<double>(model.ffnHidden());
    // QKV projections (3 dm x dm), output projection (dm x dm),
    // FFN in (dm x ff) and FFN out (ff x dm).
    return 4.0 * dm * dm + 2.0 * dm * ff;
}

SpAttenE2e::SpAttenE2e(SpAttenConfig cfg, E2eConfig e2e)
    : cfg_(cfg), e2e_(e2e), pipeline_(cfg)
{
    SPATTEN_ASSERT(e2e_.fc_weight_bits == 8 || e2e_.fc_weight_bits == 12,
                   "FC weights must be 8 or 12 bits (got %d)",
                   e2e_.fc_weight_bits);
}

E2eResult
SpAttenE2e::run(const WorkloadSpec& workload, const PruningPolicy& policy,
                std::uint64_t request_seed)
{
    E2eResult res;
    res.attention = pipeline_.run(workload, policy, request_seed);

    const ModelSpec& model = workload.model;
    const double params = fcParamsPerLayer(model);
    const double weight_bytes = params * e2e_.fc_weight_bits / 8.0;
    const double mults = static_cast<double>(cfg_.totalMultipliers());
    const double peak_macs_per_ns = mults * cfg_.core_freq_ghz;
    const double bw_bytes_per_ns = cfg_.hbm.peakBandwidthGBs();

    const PruningSchedule token_sched =
        policy.token_pruning
            ? makeTokenSchedule(model.num_layers, policy.token_avg_ratio)
            : PruningSchedule::disabled(model.num_layers);

    // Summarization stage: batch FC over the surviving tokens of each
    // layer (token pruning reduces FC rows; compute-bound).
    double sum_ns = 0.0;
    std::size_t alive = workload.summarize_len;
    for (std::size_t l = 0;
         !workload.skip_summarization && l < model.num_layers; ++l) {
        const double rows = static_cast<double>(alive);
        const double macs = rows * params;
        const double compute_ns =
            macs / (peak_macs_per_ns * e2e_.fc_compute_util);
        const double mem_ns = weight_bytes / bw_bytes_per_ns;
        sum_ns += std::max(compute_ns, mem_ns);
        res.fc_sum_flops += 2.0 * macs;
        res.fc_dram_bytes += weight_bytes;
        if (policy.token_pruning) {
            const double r = token_sched.ratioAt(l);
            alive = std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::ceil(static_cast<double>(alive) * (1.0 - r))));
        }
    }

    // Generation stage: matrix-vector FCs, memory-bound on the weight
    // stream; every layer's weights are re-fetched per generated token.
    double gen_ns = 0.0;
    for (std::size_t t = 0; t < workload.generate_len; ++t) {
        for (std::size_t l = 0; l < model.num_layers; ++l) {
            const double macs = params;
            const double compute_ns =
                macs / (peak_macs_per_ns * e2e_.fc_compute_util);
            const double mem_ns = weight_bytes / bw_bytes_per_ns;
            gen_ns += std::max(compute_ns, mem_ns);
            res.fc_gen_flops += 2.0 * macs;
            res.fc_dram_bytes += weight_bytes;
        }
    }

    res.fc_sum_seconds = sum_ns * 1e-9;
    res.fc_gen_seconds = gen_ns * 1e-9;
    res.fc_seconds = res.fc_sum_seconds + res.fc_gen_seconds;
    res.fc_flops = res.fc_sum_flops + res.fc_gen_flops;
    return res;
}

} // namespace spatten
