/// Regenerates Fig. 13: on-chip area and power breakdown per module.
#include <cstdio>

#include "accel/spatten_accelerator.hpp"
#include "bench_util.hpp"
#include "workload/benchmarks.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Fig. 13", "On-chip area and power breakdown of SpAtten");

    SpAttenAccelerator accel;
    const auto area = accel.area();
    const double total = totalAreaMm2(area);
    std::printf("(a) Area breakdown (paper total: 18.71 mm^2)\n");
    std::printf("%-16s %10s %8s %14s\n", "module", "mm^2", "share",
                "paper share");
    rule();
    const char* paper_area[] = {"14.2%", "38.1%", "4.2%", "2.7%",
                                "38.6%", "2.3%"};
    for (std::size_t i = 0; i < area.size(); ++i) {
        std::printf("%-16s %10.3f %7.1f%% %14s\n", area[i].module.c_str(),
                    area[i].mm2, 100.0 * area[i].mm2 / total,
                    paper_area[i]);
    }
    std::printf("%-16s %10.3f\n\n", "total", total);

    // (b) On-chip power from a representative computation-bound run
    // (BERT SQuAD), matching the utilization regime of the paper's
    // synthesis-based numbers.
    const auto b = bertBenchmarks().front();
    const RunResult r = accel.run(b.workload, b.policy);
    struct Row
    {
        const char* name;
        double j;
        const char* paper;
    };
    // Key/Value SRAM energy is attributed to the QxK / ProbxV modules
    // (the paper's per-module numbers include their private SRAMs).
    const Row rows[] = {
        {"QKV Fetcher", r.energy.fetcher_j, "9.4%"},
        {"QxK", r.energy.qk_j + 0.5 * r.energy.sram_j, "43.4%"},
        {"Softmax", r.energy.softmax_j, "19.1%"},
        {"Top-k", r.energy.topk_j, "3.1%"},
        {"AttnProb x V", r.energy.pv_j + 0.5 * r.energy.sram_j, "20.4%"},
        {"Others", r.energy.leakage_j, "4.7%"},
    };
    double onchip = 0;
    for (const auto& row : rows)
        onchip += row.j;
    std::printf("(b) On-chip power breakdown (paper total: 2.59 W)\n");
    std::printf("%-16s %10s %8s %14s\n", "module", "W", "share",
                "paper share");
    rule();
    for (const auto& row : rows) {
        std::printf("%-16s %10.3f %7.1f%% %14s\n", row.name,
                    row.j / r.energy.seconds, 100.0 * row.j / onchip,
                    row.paper);
    }
    std::printf("%-16s %10.3f\n", "total",
                onchip / r.energy.seconds);
    return 0;
}
