/**
 * @file
 * Logging and error-reporting helpers shared by every SpAtten subsystem.
 *
 * Follows the gem5 convention: fatal() terminates on user error (bad
 * configuration, invalid arguments), panic() aborts on internal invariant
 * violations, and warn()/inform() report non-fatal conditions.
 */
#ifndef SPATTEN_COMMON_LOGGING_HPP
#define SPATTEN_COMMON_LOGGING_HPP

#include <cstdarg>
#include <string>

namespace spatten {

/** Verbosity levels for inform(); higher is chattier. */
enum class LogLevel { Quiet = 0, Info = 1, Debug = 2 };

/** Global log level; defaults to Info. */
LogLevel logLevel();

/** Set the global log level (e.g. from a benchmark's --quiet flag). */
void setLogLevel(LogLevel level);

/**
 * Terminate the process because of a user-caused error (bad config,
 * invalid arguments). Exits with status 1.
 */
[[noreturn]] void fatal(const char* fmt, ...);

/**
 * Abort because of an internal invariant violation (a bug in SpAtten
 * itself). Calls std::abort().
 */
[[noreturn]] void panic(const char* fmt, ...);

/** Report a suspicious-but-survivable condition to stderr. */
void warn(const char* fmt, ...);

/** Report normal operating status to stderr (suppressed when Quiet). */
void inform(const char* fmt, ...);

/** printf-style formatting into a std::string. */
std::string strfmt(const char* fmt, ...);

namespace detail {
std::string vstrfmt(const char* fmt, std::va_list args);
} // namespace detail

} // namespace spatten

/**
 * Assert that holds in all build types. Use for invariants whose failure
 * indicates a SpAtten bug; message is printf-formatted.
 */
#define SPATTEN_ASSERT(cond, ...)                                            \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::spatten::panic("assertion '%s' failed at %s:%d: %s", #cond,    \
                             __FILE__, __LINE__,                             \
                             ::spatten::strfmt(__VA_ARGS__).c_str());        \
        }                                                                    \
    } while (0)

#endif // SPATTEN_COMMON_LOGGING_HPP
