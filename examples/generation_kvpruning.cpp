/// Generation-stage KV pruning demonstration (Fig. 23 mechanism): train a
/// small causal LM on the copy task, then prune keys cascade-style and
/// show that the loss barely moves while most filler keys disappear.
#include <cstdio>

#include "nn/generation.hpp"
#include "nn/trainer.hpp"
#include "workload/synthetic_tasks.hpp"

int
main()
{
    using namespace spatten;

    CopyLmTaskConfig tc;
    tc.payload_len = 4;
    tc.filler_gap = 3;
    CopyLmTask task(tc);

    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 32;
    mc.heads = 4;
    mc.layers = 4;
    mc.ffn_dim = 64;
    mc.max_len = task.seqLen();
    TransformerModel model(mc);

    std::printf("training causal LM on the synthetic copy task "
                "(payload must be copied after the separator)...\n");
    trainLm(model, task.sample(300), 6);

    const auto test = task.sample(40);
    const double dense_loss = lmMeanLoss(model, test);
    std::printf("dense LM loss: %.4f\n\n", dense_loss);

    std::printf("%-18s %12s %12s %12s\n", "token prune ratio",
                "keys kept", "LM loss", "loss delta");
    for (double ratio : {0.0, 0.15, 0.3, 0.5}) {
        PruningPolicy policy = PruningPolicy::disabled();
        policy.token_pruning = ratio > 0.0;
        policy.token_avg_ratio = ratio;
        policy.local_value_pruning = true;
        policy.local_v_ratio = 0.2;
        PrunedRunStats stats;
        const double loss = lmMeanLossPruned(model, test, policy, &stats);
        std::printf("%-18.2f %11.0f%% %12.4f %+12.4f\n", ratio,
                    stats.avg_keys_frac * 100, loss, loss - dense_loss);
    }

    // Show which keys survive on one sequence.
    const auto ex = task.sample(1).front();
    PruningPolicy policy = PruningPolicy::disabled();
    policy.token_pruning = true;
    policy.token_avg_ratio = 0.3;
    PrunedRunStats stats;
    model.lmLossPruned(ex.ids, policy, &stats);

    const std::size_t bos = task.config().num_symbols +
                            task.config().num_fillers;
    std::printf("\nsequence:   ");
    for (std::size_t id : ex.ids) {
        if (id == bos)
            std::printf("B");
        else if (id == bos + 1)
            std::printf("E");
        else
            std::printf("%c", task.isSymbol(id) ? 'S' : 'f');
    }
    std::printf("\n");
    for (std::size_t l = 0; l < stats.survivors.layers(); ++l) {
        std::printf("layer %zu key: ", l);
        const std::size_t* alive = stats.survivors.rowBegin(l);
        const std::size_t* alive_end = stats.survivors.rowEnd(l);
        for (std::size_t pos = 0; pos < ex.ids.size(); ++pos) {
            if (alive != alive_end && *alive == pos) {
                std::printf("^");
                ++alive;
            } else {
                std::printf(".");
            }
        }
        std::printf("  (%zu/%zu keys alive)\n", stats.survivors.count(l),
                    ex.ids.size());
    }
    std::printf("final keys: ");
    std::size_t cursor = 0;
    for (std::size_t pos = 0; pos < ex.ids.size(); ++pos) {
        if (cursor < stats.surviving_tokens.size() &&
            stats.surviving_tokens[cursor] == pos) {
            std::printf("^");
            ++cursor;
        } else {
            std::printf(".");
        }
    }
    std::printf("  (%zu/%zu keys alive)\n",
                stats.surviving_tokens.size(), ex.ids.size());
    std::printf("\nS = payload symbol, f = filler, B/E = BOS/SEP; "
                "'^' = key survives cascade pruning.\n");

    // Actual autoregressive generation with a pruned KV cache and beam
    // search: the model must reproduce the payload after the separator.
    std::printf("\nautoregressive generation (KV cache, beam search):\n");
    const std::size_t sep_tok = task.config().num_symbols +
                                task.config().num_fillers + 1;
    std::vector<std::size_t> prompt, payload_ref;
    bool after = false;
    for (std::size_t id : ex.ids) {
        if (after) {
            payload_ref.push_back(id);
        } else {
            prompt.push_back(id);
            if (id == sep_tok)
                after = true;
        }
    }
    for (std::size_t beam : {1u, 4u}) {
        GenerativeRunner runner(model);
        GenerateOptions opts;
        opts.max_new_tokens = payload_ref.size();
        opts.beam_width = beam;
        opts.policy = policy; // same KV pruning as above
        const auto gen = runner.generate(prompt, opts);
        std::size_t correct = 0;
        for (std::size_t i = 0; i < payload_ref.size(); ++i)
            correct += gen.tokens[i] == payload_ref[i];
        std::printf("  beam %zu: copied %zu/%zu payload symbols, "
                    "%.0f%% keys alive, logprob %.2f\n",
                    beam, correct, payload_ref.size(),
                    gen.final_keys_frac * 100, gen.logprob);
    }
    return 0;
}
