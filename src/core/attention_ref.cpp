#include "core/attention_ref.hpp"

#include <cmath>

#include "core/pruning.hpp"
#include "tensor/ops.hpp"

namespace spatten {

void
AttentionStats::add(const AttentionStats& o)
{
    qk_macs += o.qk_macs;
    pv_macs += o.pv_macs;
    softmax_elems += o.softmax_elems;
    dram_bits_qkv += o.dram_bits_qkv;
    queries += o.queries;
    lsb_refetches += o.lsb_refetches;
    v_rows_kept += o.v_rows_kept;
    v_rows_total += o.v_rows_total;
}

AttentionOutput
attentionForward(const Tensor& q, const Tensor& k, const Tensor& v,
                 std::size_t num_heads)
{
    SPATTEN_ASSERT(q.ndim() == 2 && k.ndim() == 2 && v.ndim() == 2,
                   "2-D Q/K/V expected");
    const std::size_t din = q.dim(1);
    SPATTEN_ASSERT(k.dim(1) == din && v.dim(1) == din,
                   "Q/K/V feature dims differ");
    SPATTEN_ASSERT(num_heads > 0 && din % num_heads == 0,
                   "Din %zu not divisible by %zu heads", din, num_heads);
    const std::size_t d = din / num_heads;
    const std::size_t l0 = q.dim(0), l1 = k.dim(0);
    const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));

    AttentionOutput out;
    out.out = Tensor({l0, din});
    out.probs.reserve(num_heads);
    for (std::size_t h = 0; h < num_heads; ++h) {
        const Tensor qh = ops::sliceCols(q, h * d, (h + 1) * d);
        const Tensor kh = ops::sliceCols(k, h * d, (h + 1) * d);
        const Tensor vh = ops::sliceCols(v, h * d, (h + 1) * d);
        const Tensor scores =
            ops::scale(ops::matmulTransposedB(qh, kh), inv_sqrt_d);
        const Tensor prob = ops::softmaxRows(scores);
        const Tensor eh = ops::matmul(prob, vh);
        for (std::size_t i = 0; i < l0; ++i)
            for (std::size_t j = 0; j < d; ++j)
                out.out.at(i, h * d + j) = eh.at(i, j);
        out.probs.push_back(prob);
        out.stats.qk_macs += static_cast<double>(l0) * static_cast<double>(l1) *
            static_cast<double>(d);
        out.stats.pv_macs += static_cast<double>(l0) * static_cast<double>(l1) *
            static_cast<double>(d);
        out.stats.softmax_elems += static_cast<double>(l0) * static_cast<double>(l1);
        out.stats.queries += static_cast<double>(l0);
    }
    return out;
}

AttentionOutput
SpAttenAttention::run(const Tensor& q, const Tensor& k, const Tensor& v,
                      const std::vector<std::size_t>& head_ids) const
{
    const std::size_t din = q.dim(1);
    const std::size_t h_total = cfg_.num_heads;
    SPATTEN_ASSERT(din % h_total == 0, "Din %zu not divisible by %zu heads",
                   din, h_total);
    const std::size_t d = din / h_total;
    const std::size_t l0 = q.dim(0), l1 = k.dim(0);
    const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));

    AttentionOutput out;
    // Output keeps the full Din layout; pruned head chunks stay zero
    // (the downstream FC sees zeros, matching hardware that skips them).
    out.out = Tensor({l0, din});

    const int data_bits =
        cfg_.quantize_inputs ? cfg_.pq.setting.totalBits() : 32;

    for (std::size_t head : head_ids) {
        SPATTEN_ASSERT(head < h_total, "head id %zu out of %zu", head,
                       h_total);
        const Tensor qh = ops::sliceCols(q, head * d, (head + 1) * d);
        const Tensor kh = ops::sliceCols(k, head * d, (head + 1) * d);
        const Tensor vh = ops::sliceCols(v, head * d, (head + 1) * d);

        // DRAM traffic for this head's Q and K. Q is fetched once per
        // query row; K once per head (kept in SRAM across queries).
        out.stats.dram_bits_qkv +=
            static_cast<double>(l0 + l1) * static_cast<double>(d) *
            (cfg_.quantize_inputs ? cfg_.pq.setting.msb_bits : 32);

        BitplaneTensor kh_planes;
        if (cfg_.quantize_inputs)
            kh_planes = quant::splitPlanes(kh, cfg_.pq.setting);

        Tensor prob_mat({l0, l1});
        for (std::size_t row = 0; row < l0; ++row) {
            const Tensor q_row = qh.row(row);
            std::vector<float> prob;
            if (cfg_.quantize_inputs) {
                const ProgressiveResult pr = progressiveScores(
                    q_row, kh_planes, inv_sqrt_d, cfg_.pq);
                prob = pr.prob;
                if (pr.fetched_lsb) {
                    out.stats.lsb_refetches += 1;
                    out.stats.dram_bits_qkv +=
                        static_cast<double>(l1) * static_cast<double>(d) *
                        cfg_.pq.setting.lsb_bits;
                    // The LSB pass recomputes the scores.
                    out.stats.qk_macs += static_cast<double>(l1) * static_cast<double>(d);
                }
            } else {
                std::vector<float> scores(l1, 0.0f);
                for (std::size_t i = 0; i < l1; ++i) {
                    float acc = 0.0f;
                    for (std::size_t j = 0; j < d; ++j)
                        acc += q_row[j] * kh.at(i, j);
                    scores[i] = acc * inv_sqrt_d;
                }
                float m = scores.empty() ? 0.0f : scores[0];
                for (float s : scores)
                    m = std::max(m, s);
                double denom = 0.0;
                prob.resize(l1);
                for (std::size_t i = 0; i < l1; ++i) {
                    prob[i] = std::exp(scores[i] - m);
                    denom += prob[i];
                }
                for (auto& p : prob)
                    p = static_cast<float>(p / denom);
            }
            out.stats.qk_macs += static_cast<double>(l1) * static_cast<double>(d);
            out.stats.softmax_elems += static_cast<double>(l1);
            out.stats.queries += 1;

            for (std::size_t i = 0; i < l1; ++i)
                prob_mat.at(row, i) = prob[i];

            // Local value pruning: only the kept V rows are fetched and
            // multiplied for this head/query.
            const std::vector<std::size_t> kept =
                localValuePrune(prob, cfg_.local_v_ratio);
            out.stats.v_rows_kept += static_cast<double>(kept.size());
            out.stats.v_rows_total += static_cast<double>(l1);
            out.stats.dram_bits_qkv +=
                static_cast<double>(kept.size()) * static_cast<double>(d) *
                data_bits;
            out.stats.pv_macs +=
                static_cast<double>(kept.size()) * static_cast<double>(d);

            // Renormalize over the kept probabilities so the weighted sum
            // remains a convex combination (hardware divides by the same
            // softmax denominator; dropped probs are the smallest, so we
            // keep the raw values — matching the paper, no renorm).
            for (std::size_t j = 0; j < d; ++j) {
                float acc = 0.0f;
                for (std::size_t idx : kept)
                    acc += prob[idx] * vh.at(idx, j);
                out.out.at(row, head * d + j) = acc;
            }
        }
        out.probs.push_back(prob_mat);
    }
    return out;
}

} // namespace spatten
