/// Tests for the reference attention (Algorithm 1) and the SpAtten
/// algorithmic pipeline (per-head/per-query with local V pruning and
/// progressive quantization).
#include <gtest/gtest.h>

#include <cmath>

#include "core/attention_ref.hpp"
#include "tensor/ops.hpp"

namespace spatten {
namespace {

std::vector<std::size_t>
iota(std::size_t n)
{
    std::vector<std::size_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = i;
    return v;
}

TEST(AttentionForward, SingleHeadMatchesManual)
{
    // One head, 1 query, 2 keys, D = 2.
    Tensor q({1, 2}, {1.0f, 0.0f});
    Tensor k({2, 2}, {1.0f, 0.0f, 0.0f, 1.0f});
    Tensor v({2, 2}, {10.0f, 0.0f, 0.0f, 10.0f});
    const AttentionOutput out = attentionForward(q, k, v, 1);
    const float inv = 1.0f / std::sqrt(2.0f);
    const float e0 = std::exp(1.0f * inv), e1 = std::exp(0.0f);
    const float p0 = e0 / (e0 + e1), p1 = e1 / (e0 + e1);
    EXPECT_NEAR(out.out.at(0, 0), 10.0f * p0, 1e-5f);
    EXPECT_NEAR(out.out.at(0, 1), 10.0f * p1, 1e-5f);
}

TEST(AttentionForward, ProbsRowStochastic)
{
    Prng p(1);
    const Tensor q = Tensor::randn({6, 24}, p);
    const Tensor k = Tensor::randn({9, 24}, p);
    const Tensor v = Tensor::randn({9, 24}, p);
    const AttentionOutput out = attentionForward(q, k, v, 3);
    ASSERT_EQ(out.probs.size(), 3u);
    for (const Tensor& prob : out.probs) {
        for (std::size_t i = 0; i < prob.dim(0); ++i) {
            double s = 0.0;
            for (std::size_t j = 0; j < prob.dim(1); ++j)
                s += prob.at(i, j);
            EXPECT_NEAR(s, 1.0, 1e-5);
        }
    }
}

TEST(AttentionForward, StatsCountMacs)
{
    Prng p(2);
    const std::size_t l0 = 4, l1 = 7, din = 24, h = 3;
    const Tensor q = Tensor::randn({l0, din}, p);
    const Tensor k = Tensor::randn({l1, din}, p);
    const Tensor v = Tensor::randn({l1, din}, p);
    const AttentionOutput out = attentionForward(q, k, v, h);
    EXPECT_DOUBLE_EQ(out.stats.qk_macs,
                     static_cast<double>(l0 * l1 * din));
    EXPECT_DOUBLE_EQ(out.stats.pv_macs,
                     static_cast<double>(l0 * l1 * din));
}

TEST(SpAttenAttention, NoPruningMatchesReference)
{
    Prng p(3);
    const std::size_t l = 10, din = 32, h = 4;
    const Tensor q = Tensor::randn({l, din}, p);
    const Tensor k = Tensor::randn({l, din}, p);
    const Tensor v = Tensor::randn({l, din}, p);

    SpAttenAttentionConfig cfg;
    cfg.num_heads = h;
    cfg.local_v_ratio = 0.0;
    cfg.quantize_inputs = false;
    const AttentionOutput got = SpAttenAttention(cfg).run(q, k, v, iota(h));
    const AttentionOutput ref = attentionForward(q, k, v, h);
    EXPECT_LT(ops::maxAbsDiff(got.out, ref.out), 1e-4f);
}

TEST(SpAttenAttention, PrunedHeadChunksStayZero)
{
    Prng p(4);
    const std::size_t l = 5, din = 24, h = 3;
    const Tensor q = Tensor::randn({l, din}, p);
    const Tensor k = Tensor::randn({l, din}, p);
    const Tensor v = Tensor::randn({l, din}, p);
    SpAttenAttentionConfig cfg;
    cfg.num_heads = h;
    // Only head 1 alive.
    const AttentionOutput out = SpAttenAttention(cfg).run(q, k, v, {1});
    const std::size_t d = din / h;
    for (std::size_t i = 0; i < l; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
            EXPECT_EQ(out.out.at(i, j), 0.0f);          // head 0 chunk
            EXPECT_EQ(out.out.at(i, 2 * d + j), 0.0f);  // head 2 chunk
        }
    }
    EXPECT_EQ(out.probs.size(), 1u);
}

TEST(SpAttenAttention, LocalVPruningSmallPerturbation)
{
    // Dropping the lowest-probability V rows should barely change the
    // output when the distribution is dominated.
    Prng p(5);
    const std::size_t l = 32, din = 16, h = 1;
    Tensor q = Tensor::randn({1, din}, p, 0.0f, 2.0f);
    Tensor k = Tensor::randn({l, din}, p, 0.0f, 0.05f);
    // Key 7 dominates.
    for (std::size_t j = 0; j < din; ++j)
        k.at(7, j) = q.at(0, j);
    const Tensor v = Tensor::randn({l, din}, p);

    SpAttenAttentionConfig base;
    base.num_heads = h;
    const AttentionOutput ref = SpAttenAttention(base).run(q, k, v, {0});

    SpAttenAttentionConfig vp = base;
    vp.local_v_ratio = 0.5;
    const AttentionOutput pruned = SpAttenAttention(vp).run(q, k, v, {0});
    EXPECT_LT(ops::maxAbsDiff(ref.out, pruned.out), 0.05f);
    EXPECT_LT(pruned.stats.v_rows_kept, pruned.stats.v_rows_total);
    EXPECT_LT(pruned.stats.pv_macs, ref.stats.pv_macs);
}

TEST(SpAttenAttention, QuantizedPathCloseToFloat)
{
    Prng p(6);
    const std::size_t l = 24, din = 32, h = 2;
    const Tensor q = Tensor::randn({l, din}, p);
    const Tensor k = Tensor::randn({l, din}, p);
    const Tensor v = Tensor::randn({l, din}, p);

    SpAttenAttentionConfig cfg;
    cfg.num_heads = h;
    cfg.quantize_inputs = true;
    cfg.pq.setting = {12, 4};
    cfg.pq.max_prob_threshold = 0.1;
    const AttentionOutput got = SpAttenAttention(cfg).run(q, k, v, iota(h));
    const AttentionOutput ref = attentionForward(q, k, v, h);
    EXPECT_LT(ops::meanAbsDiff(got.out, ref.out), 0.02);
}

TEST(SpAttenAttention, ProgressiveReducesFetchedBits)
{
    // With a dominated distribution most queries skip the LSB fetch, so
    // quantized DRAM traffic is far below fp32 traffic.
    Prng p(7);
    const std::size_t l = 64, din = 64, h = 1;
    Tensor q = Tensor::randn({l, din}, p, 0.0f, 1.5f);
    Tensor k = q; // self-attention-ish: each query dominated by itself
    const Tensor v = Tensor::randn({l, din}, p);

    SpAttenAttentionConfig qcfg;
    qcfg.num_heads = h;
    qcfg.quantize_inputs = true;
    qcfg.pq.setting = {8, 4};
    qcfg.pq.max_prob_threshold = 0.1;
    const AttentionOutput quant_out =
        SpAttenAttention(qcfg).run(q, k, v, {0});

    SpAttenAttentionConfig fcfg;
    fcfg.num_heads = h;
    const AttentionOutput float_out =
        SpAttenAttention(fcfg).run(q, k, v, {0});

    EXPECT_LT(quant_out.stats.dram_bits_qkv,
              0.5 * float_out.stats.dram_bits_qkv);
    // Not every query should have needed LSBs.
    EXPECT_LT(quant_out.stats.lsb_refetches, quant_out.stats.queries);
}

TEST(SpAttenAttention, StatsAccumulateAcrossHeads)
{
    Prng p(8);
    const std::size_t l = 6, din = 24, h = 3;
    const Tensor q = Tensor::randn({l, din}, p);
    const Tensor k = Tensor::randn({l, din}, p);
    const Tensor v = Tensor::randn({l, din}, p);
    SpAttenAttentionConfig cfg;
    cfg.num_heads = h;
    const AttentionOutput out = SpAttenAttention(cfg).run(q, k, v, iota(h));
    EXPECT_DOUBLE_EQ(out.stats.queries, static_cast<double>(l * h));
    EXPECT_DOUBLE_EQ(out.stats.qk_macs,
                     static_cast<double>(l * l * din));
}

TEST(AttentionStats, AddCombines)
{
    AttentionStats a, b;
    a.qk_macs = 10;
    a.pv_macs = 5;
    b.qk_macs = 1;
    b.lsb_refetches = 2;
    a.add(b);
    EXPECT_DOUBLE_EQ(a.qk_macs, 11);
    EXPECT_DOUBLE_EQ(a.pv_macs, 5);
    EXPECT_DOUBLE_EQ(a.lsb_refetches, 2);
    EXPECT_DOUBLE_EQ(a.flops(), 2 * (11 + 5));
}

} // namespace
} // namespace spatten
