#include "common/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace spatten {

namespace {
LogLevel g_level = LogLevel::Info;
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

namespace detail {

std::string
vstrfmt(const char* fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (n <= 0)
        return {};
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace detail

std::string
strfmt(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = detail::vstrfmt(fmt, args);
    va_end(args);
    return s;
}

[[noreturn]] void
fatal(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = detail::vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

[[noreturn]] void
panic(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = detail::vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
warn(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = detail::vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char* fmt, ...)
{
    if (g_level == LogLevel::Quiet)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string s = detail::vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

} // namespace spatten
