/**
 * @file
 * End-to-end memory network (Sukhbaatar et al., the paper's ref [101])
 * with SpAtten-style memory-slot pruning — the generalization the paper
 * proposes in §VI: "Our token pruning idea can also be generalized to
 * Memory-Augmented Networks to remove unimportant memory vectors and
 * improve efficiency."
 *
 * The model is a K-hop MemN2N over (key, value) fact slots: each hop
 * attends over memory with softmax(u · m_i), reads o = sum p_i c_i and
 * updates u <- u + o; an answer head classifies the final state. Slot
 * pruning accumulates attention probabilities across hops (the cumulative
 * importance of Alg. 2, with memory slots playing the role of tokens) and
 * drops the lowest-scoring slots between hops — cascade semantics: a
 * pruned slot never returns.
 */
#ifndef SPATTEN_NN_MEMNET_HPP
#define SPATTEN_NN_MEMNET_HPP

#include <vector>

#include "nn/layers.hpp"

namespace spatten {

/** One (key, value) fact. */
struct MemoryFact
{
    std::size_t key = 0;
    std::size_t value = 0;
};

/** One QA example: facts + query key + expected value. */
struct MemoryQaExample
{
    std::vector<MemoryFact> facts;
    std::size_t query = 0;
    std::size_t answer = 0;
};

/** Model shape. */
struct MemNetConfig
{
    std::size_t vocab = 32;  ///< Shared key/value/query vocabulary.
    std::size_t dim = 24;    ///< Embedding dimension.
    std::size_t hops = 2;    ///< Attention hops.
    std::uint64_t seed = 55;
};

/** Statistics of one pruned QA forward pass. */
struct MemPruneStats
{
    double slots_kept_frac = 1.0;
    std::vector<std::size_t> surviving_slots; ///< After the last hop.
};

/** Trainable end-to-end memory network with slot pruning. */
class MemoryNetwork
{
  public:
    explicit MemoryNetwork(MemNetConfig cfg);

    const MemNetConfig& config() const { return cfg_; }

    /** One training example (forward + backward + Adam step). */
    double trainStep(const MemoryQaExample& ex);

    /** Dense answer prediction. */
    std::size_t predict(const MemoryQaExample& ex) const;

    /**
     * Prediction with cascade memory-slot pruning: after each hop,
     * keep ceil((1 - ratio) * alive) slots by cumulative attention.
     * @param per_hop_ratio fraction pruned between hops.
     */
    std::size_t predictPruned(const MemoryQaExample& ex,
                              double per_hop_ratio,
                              MemPruneStats* stats = nullptr) const;

    /** Mean accuracy helpers. */
    double accuracy(const std::vector<MemoryQaExample>& examples) const;
    double accuracyPruned(const std::vector<MemoryQaExample>& examples,
                          double per_hop_ratio,
                          double* mean_kept = nullptr) const;

    std::vector<Param*> params();

  private:
    /** Forward to the final state; caches per-hop data when training. */
    struct HopCache
    {
        std::vector<float> u;       ///< Query state entering the hop.
        Tensor prob;                ///< 1 x slots attention.
        Tensor m;                   ///< slots x dim input memory.
        Tensor c;                   ///< slots x dim output memory.
    };
    Tensor embedSlotsA(const std::vector<MemoryFact>& facts) const;
    Tensor embedSlotsC(const std::vector<MemoryFact>& facts) const;

    MemNetConfig cfg_;
    Prng prng_;
    Param emb_a_key_, emb_a_val_; ///< Input memory embeddings.
    Param emb_c_key_, emb_c_val_; ///< Output memory embeddings.
    Param emb_q_;                 ///< Query embedding.
    Linear answer_;               ///< Answer head over the final state.
    AdamOptimizer opt_;
};

/** Synthetic QA task generator: one relevant fact among noise slots. */
class MemoryQaTask
{
  public:
    struct Config
    {
        std::size_t num_keys = 12;
        std::size_t num_values = 12;
        std::size_t num_slots = 16; ///< 1 relevant + noise.
        std::uint64_t seed = 77;
    };

    MemoryQaTask() : MemoryQaTask(Config{}) {}
    explicit MemoryQaTask(Config cfg);

    std::size_t vocabSize() const
    {
        return cfg_.num_keys + cfg_.num_values;
    }

    std::vector<MemoryQaExample> sample(std::size_t n);

    const Config& config() const { return cfg_; }

  private:
    Config cfg_;
    Prng prng_;
};

} // namespace spatten

#endif // SPATTEN_NN_MEMNET_HPP
