#include "core/importance.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace spatten {

TokenImportanceAccumulator::TokenImportanceAccumulator(std::size_t num_tokens)
    : scores_(num_tokens, 0.0f)
{
}

void
TokenImportanceAccumulator::reset(std::size_t num_tokens)
{
    scores_.assign(num_tokens, 0.0f);
}

void
TokenImportanceAccumulator::accumulate(
    const Tensor& attention_prob, const std::vector<std::size_t>& key_token_ids)
{
    SPATTEN_ASSERT(attention_prob.ndim() == 2 &&
                       attention_prob.dim(1) == key_token_ids.size(),
                   "prob %s vs %zu key ids", attention_prob.shapeStr().c_str(),
                   key_token_ids.size());
    const std::size_t rows = attention_prob.dim(0);
    const std::size_t cols = attention_prob.dim(1);
    for (std::size_t j = 0; j < cols; ++j) {
        const std::size_t id = key_token_ids[j];
        SPATTEN_ASSERT(id < scores_.size(), "token id %zu out of %zu", id,
                       scores_.size());
        float col_sum = 0.0f;
        for (std::size_t i = 0; i < rows; ++i)
            col_sum += attention_prob.at(i, j);
        scores_[id] += col_sum;
    }
}

void
TokenImportanceAccumulator::accumulateRow(
    const std::vector<float>& prob_row,
    const std::vector<std::size_t>& key_token_ids)
{
    SPATTEN_ASSERT(prob_row.size() == key_token_ids.size(),
                   "row size %zu vs %zu ids", prob_row.size(),
                   key_token_ids.size());
    for (std::size_t j = 0; j < prob_row.size(); ++j) {
        const std::size_t id = key_token_ids[j];
        SPATTEN_ASSERT(id < scores_.size(), "token id %zu out of %zu", id,
                       scores_.size());
        scores_[id] += prob_row[j];
    }
}

void
TokenImportanceAccumulator::addToken()
{
    scores_.push_back(0.0f);
}

float
TokenImportanceAccumulator::score(std::size_t id) const
{
    SPATTEN_ASSERT(id < scores_.size(), "token id %zu out of %zu", id,
                   scores_.size());
    return scores_[id];
}

HeadImportanceAccumulator::HeadImportanceAccumulator(std::size_t num_heads)
    : scores_(num_heads, 0.0f)
{
}

void
HeadImportanceAccumulator::reset(std::size_t num_heads)
{
    scores_.assign(num_heads, 0.0f);
}

void
HeadImportanceAccumulator::accumulate(const Tensor& head_out,
                                      std::size_t head_id)
{
    double s = 0.0;
    for (std::size_t i = 0; i < head_out.numel(); ++i)
        s += std::fabs(head_out[i]);
    accumulateAbsSum(s, head_id);
}

void
HeadImportanceAccumulator::accumulateAbsSum(double abs_sum,
                                            std::size_t head_id)
{
    SPATTEN_ASSERT(head_id < scores_.size(), "head id %zu out of %zu",
                   head_id, scores_.size());
    scores_[head_id] += static_cast<float>(abs_sum);
}

float
HeadImportanceAccumulator::score(std::size_t id) const
{
    SPATTEN_ASSERT(id < scores_.size(), "head id %zu out of %zu", id,
                   scores_.size());
    return scores_[id];
}

} // namespace spatten
