#include "common/prng.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace spatten {

namespace {

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Prng::reseed(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto& s : state_)
        s = splitmix64(sm);
    has_spare_ = false;
}

std::uint64_t
Prng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Prng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Prng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Prng::below(std::uint64_t n)
{
    SPATTEN_ASSERT(n > 0, "below(0) is ill-defined");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t x;
    do {
        x = next();
    } while (x >= limit);
    return x % n;
}

std::int64_t
Prng::range(std::int64_t lo, std::int64_t hi)
{
    SPATTEN_ASSERT(lo <= hi, "range(%lld, %lld) is empty",
                   static_cast<long long>(lo), static_cast<long long>(hi));
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double
Prng::gaussian()
{
    if (has_spare_) {
        has_spare_ = false;
        return spare_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return r * std::cos(theta);
}

double
Prng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

} // namespace spatten
