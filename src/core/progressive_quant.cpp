#include "core/progressive_quant.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"

namespace spatten {

bool
needsLsb(const std::vector<float>& prob_row, double threshold)
{
    float m = 0.0f;
    for (float p : prob_row)
        m = std::max(m, p);
    return m < threshold;
}

bool
needsLsb(const Tensor& prob_row, double threshold)
{
    return prob_row.numel() == 0 ||
           static_cast<double>(prob_row.maxElem()) < threshold;
}

namespace {

std::vector<float>
softmaxScores(const std::vector<float>& scores)
{
    std::vector<float> out(scores.size());
    float m = scores.empty() ? 0.0f : scores[0];
    for (float s : scores)
        m = std::max(m, s);
    double denom = 0.0;
    for (std::size_t i = 0; i < scores.size(); ++i) {
        out[i] = std::exp(scores[i] - m);
        denom += out[i];
    }
    for (auto& p : out)
        p = static_cast<float>(p / denom);
    return out;
}

std::vector<float>
dotScores(const Tensor& q, const Tensor& k_mat, float inv_sqrt_d)
{
    const std::size_t rows = k_mat.dim(0), d = k_mat.dim(1);
    std::vector<float> scores(rows, 0.0f);
    for (std::size_t i = 0; i < rows; ++i) {
        float acc = 0.0f;
        for (std::size_t j = 0; j < d; ++j)
            acc += q[j] * k_mat.at(i, j);
        scores[i] = acc * inv_sqrt_d;
    }
    return scores;
}

} // namespace

ProgressiveResult
progressiveScores(const Tensor& q_full, const BitplaneTensor& keys,
                  float inv_sqrt_d, const ProgressiveQuantConfig& cfg)
{
    SPATTEN_ASSERT(keys.shape.size() == 2 && q_full.dim(0) == keys.shape[1],
                   "query dim %zu vs key dim", q_full.dim(0));
    ProgressiveResult res;
    const std::size_t rows = keys.shape[0];
    const std::size_t d = keys.shape[1];
    res.msb_bits_fetched = static_cast<double>(rows * d) *
                           keys.setting.msb_bits;

    const Tensor k_msb = quant::reconstructMsbOnly(keys);
    res.prob = softmaxScores(dotScores(q_full, k_msb, inv_sqrt_d));

    if (cfg.enabled && needsLsb(res.prob, cfg.max_prob_threshold)) {
        res.fetched_lsb = true;
        res.lsb_bits_fetched = static_cast<double>(rows * d) *
                               keys.setting.lsb_bits;
        const Tensor k_full = quant::reconstructFull(keys);
        res.prob = softmaxScores(dotScores(q_full, k_full, inv_sqrt_d));
    }
    return res;
}

double
quantizedSoftmaxError(const Tensor& scores, int bits)
{
    SPATTEN_ASSERT(scores.ndim() == 1, "1-D scores expected");
    const Tensor p_ref = ops::softmax(scores);
    const Tensor p_q = ops::softmax(quant::fakeQuantize(scores, bits));
    return ops::meanAbsDiff(p_ref, p_q);
}

} // namespace spatten
