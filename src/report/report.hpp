/**
 * @file
 * Result-reporting helpers for the benchmark harness: CSV files (for
 * plotting the reproduced figures) and aligned markdown tables (for
 * EXPERIMENTS.md-style summaries).
 */
#ifndef SPATTEN_REPORT_REPORT_HPP
#define SPATTEN_REPORT_REPORT_HPP

#include <fstream>
#include <string>
#include <vector>

namespace spatten {

/** Streaming CSV writer with quoting and column-count checking. */
class CsvWriter
{
  public:
    /** Open (truncate) @p path; fatal() on failure. */
    explicit CsvWriter(const std::string& path);

    /** Write the header row; must be called before any data row. */
    void header(const std::vector<std::string>& columns);

    /** Write one data row; must match the header's column count. */
    void row(const std::vector<std::string>& values);

    /** Convenience: numeric row. */
    void rowNumeric(const std::vector<double>& values);

    std::size_t rowsWritten() const { return rows_; }
    const std::string& path() const { return path_; }

  private:
    void writeLine(const std::vector<std::string>& cells);

    std::string path_;
    std::ofstream out_;
    std::size_t columns_ = 0;
    std::size_t rows_ = 0;
};

/** Escape a CSV cell (quotes, commas, newlines). */
std::string csvEscape(const std::string& cell);

/**
 * Render an aligned markdown table.
 * @pre every row has headers.size() cells.
 */
std::string markdownTable(const std::vector<std::string>& headers,
                          const std::vector<std::vector<std::string>>& rows);

/** Format a double with %g-style compactness. */
std::string fmtNum(double value);

} // namespace spatten

#endif // SPATTEN_REPORT_REPORT_HPP
