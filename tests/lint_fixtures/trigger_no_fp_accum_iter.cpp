// Fixture: MUST trigger no-fp-accum-iter, twice. Floating-point sums
// folded in (a) unordered-container order and (b) per-worker order:
// both make the total depend on visit order, because FP addition is
// not associative.
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Worker {
    double cycles_used = 0;
};

double totalEnergy(const std::unordered_map<int, double>& joules_by_slot)
{
    double energy_j = 0.0;
    for (const auto& kv : joules_by_slot)
        energy_j += kv.second; // order-dependent fold (a)
    return energy_j;
}

double totalCycles(const std::vector<Worker>& workers)
{
    double cycle_sum = 0.0;
    for (const Worker& w : workers)
        cycle_sum += w.cycles_used; // order-dependent fold (b)
    return cycle_sum;
}

} // namespace fixture
