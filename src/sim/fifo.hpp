/**
 * @file
 * A bounded FIFO with cycle semantics, modeling the address/data FIFOs of
 * the SpAtten datapath (32 x 64-depth FIFOs around the crossbars, the
 * 128-deep softmax FIFO, and the quick-select FIFO_L/FIFO_R pairs).
 *
 * Besides functional queue behaviour it tracks occupancy statistics and
 * backpressure (pushes that would overflow are rejected so the caller can
 * model stalls).
 */
#ifndef SPATTEN_SIM_FIFO_HPP
#define SPATTEN_SIM_FIFO_HPP

#include <cstddef>
#include <deque>
#include <string>

#include "common/logging.hpp"

namespace spatten {

/** Bounded FIFO with occupancy statistics. */
template <typename T>
class Fifo
{
  public:
    explicit Fifo(std::size_t depth, std::string name = "fifo")
        : depth_(depth), name_(std::move(name))
    {
        SPATTEN_ASSERT(depth > 0, "fifo '%s' needs depth > 0", name_.c_str());
    }

    const std::string& name() const { return name_; }
    std::size_t depth() const { return depth_; }
    std::size_t size() const { return items_.size(); }
    bool empty() const { return items_.empty(); }
    bool full() const { return items_.size() >= depth_; }

    /**
     * Push an item; returns false (and drops nothing) when full, which
     * models backpressure into the producer.
     */
    bool tryPush(const T& item)
    {
        if (full()) {
            ++rejected_;
            return false;
        }
        items_.push_back(item);
        peak_ = std::max(peak_, items_.size());
        ++pushes_;
        return true;
    }

    /** Push that must succeed (asserts on overflow). */
    void push(const T& item)
    {
        SPATTEN_ASSERT(tryPush(item), "fifo '%s' overflow at depth %zu",
                       name_.c_str(), depth_);
    }

    /** Pop the oldest item. @pre !empty(). */
    T pop()
    {
        SPATTEN_ASSERT(!items_.empty(), "fifo '%s' underflow",
                       name_.c_str());
        T item = items_.front();
        items_.pop_front();
        return item;
    }

    const T& front() const
    {
        SPATTEN_ASSERT(!items_.empty(), "fifo '%s' empty front",
                       name_.c_str());
        return items_.front();
    }

    void clear() { items_.clear(); }

    /** Lifetime statistics. */
    std::size_t peakOccupancy() const { return peak_; }
    std::size_t totalPushes() const { return pushes_; }
    std::size_t rejectedPushes() const { return rejected_; }

  private:
    std::size_t depth_;
    std::string name_;
    std::deque<T> items_;
    std::size_t peak_ = 0;
    std::size_t pushes_ = 0;
    std::size_t rejected_ = 0;
};

} // namespace spatten

#endif // SPATTEN_SIM_FIFO_HPP
