/// Simulator host performance: how many simulated decode tokens (and
/// whole requests) one host CPU-second buys, on the decode-session
/// scenario the serving layer is made of. The optimized path (CSR
/// survivor compaction + HBM fast path + steady-state step memo +
/// batched stage-graph evaluation) is measured against the pre-
/// optimization path run LIVE on the same machine (reference HBM
/// serving + memo off), so the recorded speedup is container-invariant
/// — never a comparison against a number measured on different iron.
/// Emits the BENCH_sim.json records the CI perf floor checks.
#include <chrono>
#include <cstdio>
#include <ctime>
#include <vector>

#include "accel/decode_session.hpp"
#include "bench_util.hpp"

namespace {

using namespace spatten;
using namespace spatten::bench;

double
cpuSeconds()
{
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

double
wallSeconds()
{
    using clk = std::chrono::steady_clock;
    static const clk::time_point t0 = clk::now();
    return std::chrono::duration<double>(clk::now() - t0).count();
}

WorkloadSpec
servingWorkload()
{
    WorkloadSpec w;
    w.name = "decode-session";
    w.summarize_len = 384;
    w.generate_len = 256;
    return w;
}

struct Measured
{
    double cpu_s = 0;
    double wall_s = 0;
    double decode_cpu_s = 0; ///< CPU share of the decode loops alone.
    std::size_t requests = 0;
    std::size_t tokens = 0;
};

/** Serve whole requests (prefill + full decode) until the measured
 *  region has consumed ~@p target_cpu_s, at least @p min_requests. */
Measured
serveSessions(bool optimized, double target_cpu_s,
              std::size_t min_requests)
{
    const WorkloadSpec w = servingWorkload();
    Measured m;
    const double cpu0 = cpuSeconds();
    const double wall0 = wallSeconds();
    while (m.requests < min_requests ||
           cpuSeconds() - cpu0 < target_cpu_s) {
        DecodeSession session(SpAttenConfig{}, w, PruningPolicy{},
                              /*request_seed=*/m.requests + 1);
        if (!optimized) {
            session.setStepMemo(false);
            session.setReferenceServing(true);
        }
        session.prefill();
        const double d0 = cpuSeconds();
        while (!session.done()) {
            session.decodeStep();
            ++m.tokens;
        }
        m.decode_cpu_s += cpuSeconds() - d0;
        ++m.requests;
    }
    m.cpu_s = cpuSeconds() - cpu0;
    m.wall_s = wallSeconds() - wall0;
    return m;
}

} // namespace

int
main()
{
    banner("Simulator host performance",
           "simulated decode tokens per host CPU-second, optimized vs "
           "the pre-optimization path measured live");

    const WorkloadSpec w = servingWorkload();
    std::printf("workload: prompt %zu, generate %zu, cascade pruning "
                "on, %zu layers\n\n",
                w.summarize_len, w.generate_len, w.model.num_layers);

    // The baseline path is ~25x slower per step, so it gets a smaller
    // CPU budget — both regions still serve enough whole requests that
    // per-request noise averages out.
    const Measured opt = serveSessions(/*optimized=*/true, 0.5, 16);
    const Measured base = serveSessions(/*optimized=*/false, 0.5, 4);

    SimPerfRecord ro;
    ro.scenario = "decode-session";
    ro.cpu_s = opt.cpu_s;
    ro.wall_s = opt.wall_s;
    ro.sim_tokens = static_cast<double>(opt.tokens);
    // The requests counter is the number of sessions fully served in
    // the measured region — never 0 when tokens were produced.
    ro.requests = static_cast<double>(opt.requests);
    ro.ns_per_decode_step =
        opt.decode_cpu_s / static_cast<double>(opt.tokens) * 1e9;
    ro.context_len = static_cast<double>(w.summarize_len);

    SimPerfRecord rb;
    rb.scenario = "decode-session-baseline";
    rb.cpu_s = base.cpu_s;
    rb.wall_s = base.wall_s;
    rb.sim_tokens = static_cast<double>(base.tokens);
    rb.requests = static_cast<double>(base.requests);
    rb.ns_per_decode_step =
        base.decode_cpu_s / static_cast<double>(base.tokens) * 1e9;
    rb.context_len = static_cast<double>(w.summarize_len);
    finishSimRecord(rb);

    ro.baseline_tokens_per_cpu_s = rb.sim_tokens_per_cpu_s;
    finishSimRecord(ro);

    std::printf("%-24s %10s %10s %14s %12s %10s\n", "scenario",
                "requests", "tokens", "tok/cpu_s", "req/cpu_s",
                "ns/step");
    rule();
    for (const SimPerfRecord* r : {&ro, &rb})
        std::printf("%-24s %10.0f %10.0f %14.0f %12.1f %10.0f\n",
                    r->scenario.c_str(), r->requests, r->sim_tokens,
                    r->sim_tokens_per_cpu_s, r->requests_per_cpu_s,
                    r->ns_per_decode_step);
    rule();
    std::printf("speedup vs live pre-optimization baseline: %.1fx\n",
                ro.speedup_vs_baseline);

    if (ro.requests == 0 || rb.requests == 0) {
        std::printf("FAIL: a measured region served zero requests\n");
        return 1;
    }
    // The acceptance bar this bench exists to pin: >= 5x decode-session
    // sim_tokens_per_cpu_s against the pre-optimization path.
    if (ro.speedup_vs_baseline < 5.0) {
        std::printf("FAIL: optimized decode-session throughput must be "
                    ">= 5x the live baseline (got %.1fx)\n",
                    ro.speedup_vs_baseline);
        return 1;
    }

    writeSimJson({ro, rb});
    return 0;
}
