/// Low-level decode-step kernel floor (RZBENCH-style: pin the kernel
/// before arguing about the application): ns of host CPU per simulated
/// decode step as a function of entering context length and of the
/// cascade-pruned survivor fraction. Each point serves repeated
/// sessions — prefill, a short warmup into the cascade/memo steady
/// state, then a timed step region kept short so the dense
/// (pruning-off) rows, whose context grows every step and which
/// therefore never hit the replay memo, stay near the nominal context.
/// Records merge into BENCH_sim.json beside bench_sim's
/// application-level rows.
#include <chrono>
#include <cstdio>
#include <ctime>
#include <vector>

#include "accel/decode_session.hpp"
#include "bench_util.hpp"

namespace {

using namespace spatten;
using namespace spatten::bench;

double
cpuSeconds()
{
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

struct KernelPoint
{
    const char* policy_name;
    PruningPolicy policy;
    std::size_t context;
};

} // namespace

int
main()
{
    banner("Decode-step kernel floor",
           "host ns per simulated decode step vs context length and "
           "survivor fraction");

    PruningPolicy cascade;                       // Default schedule.
    PruningPolicy aggressive;                    // Deeper survivor cut.
    aggressive.token_avg_ratio = 0.30;
    const PruningPolicy dense = PruningPolicy::disabled();

    std::vector<KernelPoint> points;
    for (const std::size_t ctx : {128u, 512u, 2048u}) {
        points.push_back({"dense", dense, ctx});
        points.push_back({"cascade", cascade, ctx});
        points.push_back({"aggressive", aggressive, ctx});
    }

    std::printf("%-28s %9s %10s %10s %12s\n", "scenario", "context",
                "survive", "ns/step", "tok/cpu_s");
    rule();

    std::vector<SimPerfRecord> records;
    for (const KernelPoint& p : points) {
        // Keep the timed region short relative to the context so the
        // dense rows' growing context stays near nominal; repeat
        // sessions until enough steps are timed to average the noise.
        const std::size_t warmup = 8;
        const std::size_t timed = std::max<std::size_t>(16, p.context / 8);
        const std::size_t min_steps = 2048;

        WorkloadSpec w;
        w.name = "kernel";
        w.summarize_len = p.context;
        w.generate_len = warmup + timed;
        SpAttenConfig cfg;
        cfg.max_context =
            std::max(cfg.max_context, p.context + warmup + timed);

        double cpu_s = 0, wall_s = 0, survive = 0;
        std::size_t steps = 0, requests = 0;
        while (steps < min_steps) {
            DecodeSession session(cfg, w, p.policy, requests + 1);
            session.prefill();
            for (std::size_t i = 0; i < warmup; ++i)
                session.decodeStep();
            survive = static_cast<double>(session.kvLength()) /
                      static_cast<double>(p.context);
            const auto wall0 = std::chrono::steady_clock::now();
            const double cpu0 = cpuSeconds();
            while (!session.done())
                session.decodeStep();
            cpu_s += cpuSeconds() - cpu0;
            wall_s += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall0)
                          .count();
            steps += timed;
            ++requests;
        }

        SimPerfRecord r;
        r.scenario = std::string("kernel-ctx") +
                     std::to_string(p.context) + "-" + p.policy_name;
        r.cpu_s = cpu_s;
        r.wall_s = wall_s;
        r.sim_tokens = static_cast<double>(steps);
        r.requests = static_cast<double>(requests);
        r.ns_per_decode_step =
            cpu_s / static_cast<double>(steps) * 1e9;
        r.context_len = static_cast<double>(p.context);
        r.survivor_fraction = survive;
        finishSimRecord(r);
        records.push_back(r);

        std::printf("%-28s %9zu %10.3f %10.0f %12.0f\n",
                    r.scenario.c_str(), p.context, r.survivor_fraction,
                    r.ns_per_decode_step, r.sim_tokens_per_cpu_s);
    }
    rule();

    // The relations this floor exists to pin: pruned steady-state
    // steps must be cheaper than dense ones at the same context (the
    // survivor compaction + memo payoff), for every context length.
    for (std::size_t i = 0; i + 2 < records.size(); i += 3) {
        const SimPerfRecord& d = records[i];     // dense
        const SimPerfRecord& c = records[i + 1]; // cascade
        if (c.ns_per_decode_step >= d.ns_per_decode_step) {
            std::printf("FAIL: cascade steady-state steps must be "
                        "cheaper than dense at context %.0f\n",
                        d.context_len);
            return 1;
        }
    }
    std::printf("cascade steady-state steps beat dense at every "
                "context length.\n");

    writeSimJson(records);
    return 0;
}
