#include "workload/arrival_trace.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace spatten {

namespace {

/** Exponential draw via inverse transform; 1-u keeps the argument of
 *  log strictly positive (uniform() is in [0, 1)). */
double
expDraw(Prng& prng, double mean)
{
    return -std::log(1.0 - prng.uniform()) * mean;
}

/**
 * Bounded Pareto draw over [lo, hi] with shape alpha (inverse CDF of
 * the Pareto truncated at hi): heavy-tailed but never out of bounds.
 */
std::size_t
boundedParetoDraw(Prng& prng, std::size_t lo, std::size_t hi,
                  double alpha)
{
    if (lo == hi)
        return lo;
    const double l = static_cast<double>(lo);
    const double h = static_cast<double>(hi);
    const double u = prng.uniform();
    const double ratio = std::pow(l / h, alpha);
    const double x =
        l / std::pow(1.0 - u * (1.0 - ratio), 1.0 / alpha);
    const auto v = static_cast<std::size_t>(std::llround(x));
    return std::clamp(v, lo, hi);
}

} // namespace

std::vector<TracedRequest>
generateArrivalTrace(const ArrivalTraceConfig& cfg)
{
    SPATTEN_ASSERT(cfg.mean_interarrival_s > 0, "bad interarrival mean");
    SPATTEN_ASSERT(cfg.min_prompt >= 1 && cfg.min_prompt <= cfg.max_prompt,
                   "bad prompt bounds [%zu, %zu]", cfg.min_prompt,
                   cfg.max_prompt);
    SPATTEN_ASSERT(cfg.min_output <= cfg.max_output,
                   "bad output bounds [%zu, %zu]", cfg.min_output,
                   cfg.max_output);
    SPATTEN_ASSERT(cfg.priority_levels >= 1, "no priority levels");
    if (cfg.process == ArrivalProcess::OnOffBurst) {
        SPATTEN_ASSERT(cfg.burst_on_mean_s > 0 && cfg.burst_off_mean_s > 0,
                       "bad burst period means");
    }
    if (cfg.prompt_dist == PromptLengthDist::BoundedPareto)
        SPATTEN_ASSERT(cfg.pareto_alpha > 0, "bad Pareto shape");

    Prng prng(cfg.seed);
    std::vector<TracedRequest> trace;
    trace.reserve(cfg.num_requests);
    double t = 0.0;
    // Remaining length of the current ON period (OnOffBurst only).
    double on_left = cfg.process == ArrivalProcess::OnOffBurst
                         ? expDraw(prng, cfg.burst_on_mean_s)
                         : 0.0;
    for (std::size_t i = 0; i < cfg.num_requests; ++i) {
        double gap = expDraw(prng, cfg.mean_interarrival_s);
        if (cfg.process == ArrivalProcess::OnOffBurst) {
            // Consume the gap from ON time only; every ON/OFF boundary
            // crossed inserts an exponential silence.
            while (gap > on_left) {
                gap -= on_left;
                t += on_left + expDraw(prng, cfg.burst_off_mean_s);
                on_left = expDraw(prng, cfg.burst_on_mean_s);
            }
            on_left -= gap;
        }
        t += gap;

        const std::size_t prompt =
            cfg.prompt_dist == PromptLengthDist::BoundedPareto
                ? boundedParetoDraw(prng, cfg.min_prompt, cfg.max_prompt,
                                    cfg.pareto_alpha)
                : cfg.min_prompt +
                      prng.below(cfg.max_prompt - cfg.min_prompt + 1);
        const std::size_t output =
            cfg.min_output +
            prng.below(cfg.max_output - cfg.min_output + 1);

        TracedRequest req;
        req.id = i;
        req.arrival_s = t;
        req.workload.name = "trace-" + std::to_string(i) + "-p" +
                            std::to_string(prompt) + "-g" +
                            std::to_string(output);
        req.workload.model = cfg.model;
        req.workload.summarize_len = prompt;
        req.workload.generate_len = output;
        req.policy = cfg.policy;
        req.seed = prng();
        // Guarded draw: priority_levels == 1 consumes no PRNG state, so
        // pre-priority traces replay bit-identically from the same seed.
        if (cfg.priority_levels > 1)
            req.priority =
                static_cast<int>(prng.below(cfg.priority_levels));
        trace.push_back(std::move(req));
    }
    return trace;
}

std::vector<TracedRequest>
generatePoissonTrace(const ArrivalTraceConfig& cfg)
{
    return generateArrivalTrace(cfg);
}

std::vector<TracedRequest>
generateDiurnalTrace(const DiurnalTraceConfig& cfg)
{
    SPATTEN_ASSERT(cfg.day_s > 0, "bad day period %f", cfg.day_s);
    SPATTEN_ASSERT(cfg.amplitude >= 0.0 && cfg.amplitude < 1.0,
                   "amplitude %f outside [0, 1)", cfg.amplitude);

    // Attributes (shapes, priorities, seeds): the exact base streams.
    std::vector<TracedRequest> trace = generateArrivalTrace(cfg.base);
    // Arrival times run on their own stream so the demand *shape* never
    // shifts when the diurnal knobs change.
    Prng prng(mix64(cfg.base.seed ^ 0x646975726e616cULL)); // "diurnal"
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    const double mean_rate = 1.0 / cfg.base.mean_interarrival_s;
    const double peak_rate = mean_rate * (1.0 + cfg.amplitude);
    const double peak_gap = 1.0 / peak_rate;
    double t = 0.0;
    for (TracedRequest& req : trace) {
        // Lewis-Shedler thinning: candidate arrivals at the peak rate,
        // each kept with probability rate(t) / peak_rate.
        for (;;) {
            t += expDraw(prng, peak_gap);
            const double rate =
                mean_rate *
                (1.0 + cfg.amplitude *
                           std::cos(kTwoPi *
                                    (t / cfg.day_s - cfg.peak_frac)));
            if (prng.uniform() * peak_rate <= rate)
                break;
        }
        req.arrival_s = t;
    }
    return trace;
}

namespace {

/** Append @p n tokens of the content stream @p stream_seed
 *  (common/prng.hpp's mix64 keeps the ids golden-stable). */
void
appendTokens(std::vector<std::uint64_t>& out, std::uint64_t stream_seed,
             std::size_t n)
{
    const std::size_t base = out.size();
    for (std::size_t j = 0; j < n; ++j)
        out.push_back(mix64(stream_seed ^ (base + j)));
}

} // namespace

std::vector<TracedRequest>
generateSharedPrefixTrace(const SharedPrefixTraceConfig& cfg)
{
    SPATTEN_ASSERT(cfg.num_system_prompts >= 1, "no system prompts");
    SPATTEN_ASSERT(cfg.system_prompt_tokens >= 1,
                   "empty system prompts");
    SPATTEN_ASSERT(cfg.user_turn_min >= 1 &&
                       cfg.user_turn_min <= cfg.user_turn_max,
                   "bad user-turn bounds [%zu, %zu]", cfg.user_turn_min,
                   cfg.user_turn_max);
    SPATTEN_ASSERT(cfg.followup_prob >= 0.0 && cfg.followup_prob <= 1.0,
                   "follow-up probability %f outside [0, 1]",
                   cfg.followup_prob);
    SPATTEN_ASSERT(cfg.system_prompt_tokens + cfg.user_turn_max <=
                       cfg.max_prompt_tokens,
                   "a single opening turn cannot fit max_prompt_tokens");

    // Arrivals / outputs / priorities / seeds: the exact base streams.
    std::vector<TracedRequest> trace = generateArrivalTrace(cfg.base);
    // Content composition runs on its own stream so the base demand
    // shape never shifts when the sharing knobs change.
    Prng content(mix64(cfg.base.seed ^ 0x70726566697865ULL)); // "prefixe"

    // Full re-sendable context (prompt + generated reply) of each open
    // conversation.
    std::vector<std::vector<std::uint64_t>> conversations;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        TracedRequest& req = trace[i];
        const std::size_t turn =
            cfg.user_turn_min +
            content.below(cfg.user_turn_max - cfg.user_turn_min + 1);

        std::vector<std::uint64_t> prompt;
        std::size_t conv = conversations.size(); // npos = fresh.
        if (!conversations.empty() && content.chance(cfg.followup_prob)) {
            const std::size_t pick = content.below(conversations.size());
            // A history that can no longer grow a turn + reply within
            // the prompt cap retires; the request opens fresh instead.
            if (conversations[pick].size() + turn <= cfg.max_prompt_tokens)
                conv = pick;
        }
        if (conv < conversations.size()) {
            prompt = conversations[conv]; // Re-sent multi-turn context.
        } else {
            const std::size_t sys = content.below(cfg.num_system_prompts);
            appendTokens(prompt,
                         mix64(cfg.base.seed ^ (0x5953ULL + sys)),
                         cfg.system_prompt_tokens);
        }
        // Fresh user turn: content unique to this request.
        appendTokens(prompt, mix64(req.seed ^ 0x7475726eULL), turn);

        req.workload.summarize_len = prompt.size();
        req.workload.name = "prefix-" + std::to_string(i) + "-p" +
                            std::to_string(prompt.size()) + "-g" +
                            std::to_string(req.workload.generate_len);
        req.prompt_tokens = prompt;

        // The conversation's next re-sendable context includes the
        // (synthetic) generated reply.
        std::vector<std::uint64_t> history = std::move(prompt);
        appendTokens(history, mix64(req.seed ^ 0x7265706cULL),
                     req.workload.generate_len);
        if (conv < conversations.size())
            conversations[conv] = std::move(history);
        else
            conversations.push_back(std::move(history));
    }
    return trace;
}

} // namespace spatten
