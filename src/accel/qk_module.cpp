#include "accel/qk_module.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace spatten {

QkModule::QkModule(QkModuleConfig cfg) : cfg_(cfg)
{
    SPATTEN_ASSERT(cfg_.num_multipliers > 0, "need multipliers");
}

QkTiming
QkModule::timing(std::size_t num_keys, std::size_t d) const
{
    SPATTEN_ASSERT(d > 0 && d <= cfg_.num_multipliers,
                   "head dim %zu vs %zu multipliers", d,
                   cfg_.num_multipliers);
    QkTiming t;
    const std::size_t keys_per_line =
        std::min(cfg_.num_multipliers / d, cfg_.max_tree_outputs);
    t.scores_per_cycle = std::max<std::size_t>(1, keys_per_line);
    t.cycles = ceilDiv(num_keys, t.scores_per_cycle);
    t.macs = num_keys * d;
    t.scores = num_keys;
    return t;
}

StageTiming
QkModule::timing(const ExecutionContext& ctx) const
{
    StageTiming t;
    t.ii_cycles = timing(ctx.survivorTokens(), ctx.d_head).cycles;
    return t;
}

ActivityCounts
QkModule::energy(const ExecutionContext& ctx) const
{
    ActivityCounts a;
    a.qk_macs = ctx.queryRows() *
                static_cast<double>(ctx.survivorTokens()) *
                static_cast<double>(ctx.d_head) *
                (1.0 + ctx.active_lsb_fraction); // LSB recompute share.
    return a;
}

StageTraffic
QkModule::traffic(const ExecutionContext& ctx) const
{
    StageTraffic t;
    // K lines are re-read from the Key SRAM for every query row.
    t.sram_read_elems = ctx.queryRows() *
                        static_cast<double>(ctx.survivorTokens()) *
                        static_cast<double>(ctx.d_head);
    return t;
}

std::vector<float>
QkModule::computeScores(const std::vector<float>& q,
                        const std::vector<std::vector<float>>& k,
                        float inv_sqrt_d) const
{
    const std::size_t d = q.size();
    std::vector<float> scores;
    scores.reserve(k.size());
    for (const auto& row : k) {
        SPATTEN_ASSERT(row.size() == d, "key dim %zu vs query %zu",
                       row.size(), d);
        float acc = 0.0f;
        for (std::size_t j = 0; j < d; ++j)
            acc += q[j] * row[j];
        scores.push_back(acc * inv_sqrt_d);
    }
    return scores;
}

} // namespace spatten
