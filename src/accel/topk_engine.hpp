/**
 * @file
 * High-parallelism top-k engine (§IV-B, Fig. 9, Algorithm 3).
 *
 * Quick-select with two FIFOs: a randomly chosen pivot partitions the
 * current candidate FIFO through two comparator arrays (parallelism
 * comparators each); zero eliminators compact the survivors. Iterating
 * narrows onto the k-th largest element in O(n) expected comparisons.
 * The k-th value then filters the *original* array (preserving input
 * order), yielding the top-k indices.
 *
 * Also provides the Batcher odd-even merge-sort baseline the paper
 * compares against (1.4x lower throughput, 3.5x higher power).
 */
#ifndef SPATTEN_ACCEL_TOPK_ENGINE_HPP
#define SPATTEN_ACCEL_TOPK_ENGINE_HPP

#include <cstddef>
#include <vector>

#include "common/prng.hpp"
#include "sim/clock.hpp"
#include "sim/stage_model.hpp"

namespace spatten {

/** Result of one top-k engine invocation. */
struct TopkResult
{
    std::vector<std::size_t> indices; ///< Top-k indices, ascending order.
    float k_th_largest = 0.0f;        ///< Threshold value found.
    std::size_t num_eq_kth_kept = 0;  ///< Ties at the threshold kept.
    Cycles cycles = 0;                ///< Engine-occupied cycles.
    std::size_t comparisons = 0;      ///< Comparator operations executed.
    std::size_t quickselect_passes = 0;
};

/** Configuration of the engine. */
struct TopkEngineConfig
{
    std::size_t parallelism = 16; ///< Comparators per array (Table I: 16).
    std::size_t fifo_depth = 1024; ///< Candidate FIFO depth.
    std::uint64_t seed = 0x70cc;   ///< Pivot-selection PRNG seed.
};

/** The quick-select top-k engine. */
class TopkEngine : public StageModel
{
  public:
    explicit TopkEngine(TopkEngineConfig cfg = TopkEngineConfig{});

    /**
     * Find the @p k largest elements of @p values.
     * @pre 1 <= k <= values.size().
     */
    TopkResult run(const std::vector<float>& values, std::size_t k);

    /**
     * Expected comparator-array streaming cycles of one n-element
     * selection: quick-select passes touch ~2n elements in expectation,
     * the final filter touches n. The zero-eliminator pass latency is
     * accounted by the ZeroEliminator stage.
     */
    Cycles selectStreamCycles(std::size_t n) const;

    // StageModel: the local-V quick-select bounds the query pipeline
    // (2n expected element-ops per query); the cascade token/head top-k
    // runs once per layer, serial with the query stream.
    std::string stageName() const override { return "topk"; }
    StageTiming timing(const ExecutionContext& ctx) const override;
    ActivityCounts energy(const ExecutionContext& ctx) const override;
    StageTraffic traffic(const ExecutionContext& ctx) const override;

    const TopkEngineConfig& config() const { return cfg_; }

    /** Cumulative cycles across all run() calls (for utilization). */
    Cycles totalCycles() const { return total_cycles_; }
    std::size_t totalComparisons() const { return total_comparisons_; }

    void resetStats();

  private:
    TopkEngineConfig cfg_;
    Prng prng_;
    Cycles total_cycles_ = 0;
    std::size_t total_comparisons_ = 0;
};

/**
 * Batcher odd-even merge-sort baseline (§IV-B comparison).
 * Functionally sorts descending; the cost model assumes `parallelism`
 * comparators serving each network stage.
 */
struct FullSortResult
{
    std::vector<float> sorted_desc;
    Cycles cycles = 0;
    std::size_t comparisons = 0;
    std::size_t stages = 0;
};

FullSortResult batcherSortDescending(const std::vector<float>& values,
                                     std::size_t parallelism);

} // namespace spatten

#endif // SPATTEN_ACCEL_TOPK_ENGINE_HPP
