/**
 * @file
 * Key/Value SRAM model (Fig. 8 modules 7/11): 196 KB each, double
 * buffered so the fetcher can load head h+1 while head h computes.
 *
 * The model tracks capacity (which bounds the supported context length),
 * line geometry (the Q x K module reads one 512-element line per cycle),
 * and read/write byte counts for the energy model.
 */
#ifndef SPATTEN_ACCEL_SRAM_HPP
#define SPATTEN_ACCEL_SRAM_HPP

#include <cstddef>
#include <string>

#include "sim/clock.hpp"

namespace spatten {

/** Configuration of one on-chip SRAM. */
struct SramConfig
{
    std::size_t capacity_kb = 196;
    std::size_t line_bytes = 768;  ///< 512 elements x 12 bits.
    bool double_buffered = true;   ///< Halves the usable capacity.
    double elem_bits = 12.0;       ///< On-chip element width.
};

/** The SRAM model. */
class SramModel
{
  public:
    explicit SramModel(SramConfig cfg = SramConfig{},
                       std::string name = "sram");

    const SramConfig& config() const { return cfg_; }
    const std::string& name() const { return name_; }

    /** Usable bytes per buffer (capacity / 2 when double buffered). */
    std::size_t usableBytes() const;

    /**
     * Maximum number of token vectors of dimension @p d that fit in one
     * buffer. This bounds the context length (Table I: 196 KB supports a
     * 1024-token, 64-dim context double buffered).
     */
    std::size_t maxTokens(std::size_t d) const;

    /** True if @p tokens vectors of dimension @p d fit. */
    bool fits(std::size_t tokens, std::size_t d) const;

    /** Record a fill of @p tokens x @p d elements (fetcher side). */
    void recordFill(std::size_t tokens, std::size_t d);

    /** Record @p elems element reads (datapath side). */
    void recordReads(double elems);

    /**
     * Record @p elems element writes accumulated across tile fills
     * (fetcher side; capacity is checked per tile by the stage graph's
     * tiling, not here).
     */
    void recordWrites(double elems);

    double bytesWritten() const { return bytes_written_; }
    double bytesRead() const { return bytes_read_; }

    void reset();

  private:
    SramConfig cfg_;
    std::string name_;
    double bytes_written_ = 0;
    double bytes_read_ = 0;
};

} // namespace spatten

#endif // SPATTEN_ACCEL_SRAM_HPP
