/**
 * @file
 * Shared helpers for the benchmark harness binaries: geometric means,
 * table printing, the standard banner that cites which paper
 * table/figure a binary regenerates, and machine-readable BENCH_*.json
 * emission so successive PRs accumulate a perf trajectory.
 */
#ifndef SPATTEN_BENCH_BENCH_UTIL_HPP
#define SPATTEN_BENCH_BENCH_UTIL_HPP

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "accel/pipeline.hpp"
#include "serve/batch_runner.hpp"
#include "serve/continuous_batch_scheduler.hpp"

namespace spatten {
namespace bench {

/** Geometric mean of positive values. */
inline double
geomean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += std::log(x);
    return std::exp(s / static_cast<double>(xs.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

/** Print the standard experiment banner. */
inline void
banner(const char* experiment, const char* description)
{
    std::printf("==============================================================\n");
    std::printf("SpAtten reproduction — %s\n", experiment);
    std::printf("%s\n", description);
    std::printf("==============================================================\n");
}

/** Print a horizontal rule. */
inline void
rule()
{
    std::printf("--------------------------------------------------------------\n");
}

/** One perf data point of a bench run. */
struct BenchRecord
{
    std::string workload;
    double cycles = 0;
    double seconds = 0;
    double tflops = 0;         ///< Effective attention TFLOPS.
    double dram_reduction = 1; ///< Dense fp32 bytes / fetched bytes.
};

/** The BENCH_*.json record of a single-workload simulation result. */
inline BenchRecord
recordFromRun(const std::string& workload, const RunResult& r)
{
    return {workload, static_cast<double>(r.cycles), r.seconds,
            r.effectiveTflops(), r.dramReduction()};
}

/** The BENCH_*.json record of one ContinuousBatchScheduler run:
 *  makespan-based effective TFLOPS over the whole served trace. */
inline BenchRecord
recordFromServe(const std::string& workload, const ServeReport& r)
{
    return {workload, r.total_cycles, r.makespan_s,
            r.makespan_s > 0 ? r.total_flops / r.makespan_s * 1e-12
                             : 0.0,
            r.dram_reduction};
}

/** The BENCH_*.json record of one BatchRunner batch (simulated totals,
 *  identical at every thread count). */
inline BenchRecord
recordFromBatch(const std::string& workload, const BatchResult& b)
{
    double cycles = 0;
    for (const RunResult& r : b.results)
        cycles += static_cast<double>(r.cycles);
    return {workload, cycles, b.total_seconds, b.aggregate_tflops,
            b.dram_reduction};
}

/** Escape backslashes and double quotes for a JSON string literal. */
inline std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/**
 * Emit `BENCH_<name>.json` in the working directory: one record per
 * workload plus the record count, so CI and later PRs can diff perf
 * without scraping stdout tables.
 */
inline void
writeBenchJson(const std::string& name,
               const std::vector<BenchRecord>& records)
{
    const std::string path = "BENCH_" + name + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "warn: cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"records\": [\n",
                 name.c_str());
    for (std::size_t i = 0; i < records.size(); ++i) {
        const BenchRecord& r = records[i];
        std::fprintf(f,
                     "    {\"workload\": \"%s\", \"cycles\": %.0f, "
                     "\"seconds\": %.9g, \"tflops\": %.6g, "
                     "\"dram_reduction\": %.6g}%s\n",
                     jsonEscape(r.workload).c_str(), r.cycles, r.seconds,
                     r.tflops,
                     r.dram_reduction, i + 1 < records.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu records)\n", path.c_str(), records.size());
}

} // namespace bench
} // namespace spatten

#endif // SPATTEN_BENCH_BENCH_UTIL_HPP
