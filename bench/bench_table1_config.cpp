/// Regenerates Table I: the architectural setup of SpAtten.
#include <cstdio>

#include "accel/spatten_accelerator.hpp"
#include "bench_util.hpp"

int
main()
{
    using namespace spatten;
    bench::banner("Table I", "Architectural setup of SpAtten");
    SpAttenAccelerator accel;
    std::printf("%s", accel.configTable().c_str());
    bench::rule();
    std::printf("SpAtten-1/8 (prior-art comparison configuration):\n");
    SpAttenAccelerator eighth(SpAttenConfig::eighth());
    std::printf("%s", eighth.configTable().c_str());
    std::printf("\nPaper reference: 512 GB/s HBM, 2x196 KB SRAM, "
                "512+512 multipliers, top-k parallelism 16.\n");
    return 0;
}
