#!/usr/bin/env python3
"""Determinism lint for the SpAtten serving simulator.

The serving stack's headline property is bit-identical output across
thread counts, shard counts, cache on/off, and batched-vs-per-request
decode. Sanitizers and goldens catch *symptoms* of nondeterminism; this
lint forbids the *sources* at the code level, pattern-based (no libclang
in the toolchain image), with a fixture suite in tests/lint_fixtures/
pinning exactly what each rule does and does not flag.

Rules
-----
no-raw-random
    rand()/srand()/std::random_device/raw <random> engines in
    src/sim, src/serve, src/accel, src/workload. All randomness must
    flow through the seeded streams in common/prng.
no-wallclock
    time()/clock()/gettimeofday()/clock_gettime()/std::chrono clocks in
    the same directories. Simulated time comes from sim/clock; host
    wall-clock in the model would differ run to run.
no-unordered-iter
    Range-for over a std::unordered_map/unordered_set in any src/ file
    that touches ServeReport/EnergyReport/KvPool accounting. Iteration
    order is implementation-defined, so any accounting fed from such a
    loop depends on hash-table layout.
no-fp-accum-iter
    Floating-point `+=` accumulation inside a range-for whose order is
    not deterministic: a loop over an unordered container, or over a
    thread/worker/shard collection. FP addition is not associative, so
    the sum depends on visit order.

Suppressions
------------
A finding is suppressed by a justified marker on the flagged line or
the line directly above:

    // determinism-ok(no-wallclock): host-side throughput measurement,
    //   never feeds simulated state

The justification text is mandatory; a bare `determinism-ok(rule)` is
itself reported (rule id: bad-suppression). This mirrors the NOLINT
policy in .clang-tidy: every suppression documents why the check is
wrong at that site.

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Directories (relative to --root) where the RNG and wall-clock rules
# apply: everything that executes inside the simulated machine.
SCOPED_DIRS = ("src/sim", "src/serve", "src/accel", "src/workload")

# Files touching these identifiers carry accounting that must not be
# fed from hash-order iteration.
ACCOUNTING_RE = re.compile(r"\b(ServeReport|EnergyReport|KvPool)\b")

RAW_RANDOM_RE = re.compile(
    r"(?<![\w:])(?:rand|srand)\s*\("
    r"|std::random_device"
    r"|std::mt19937(?:_64)?\b"
    r"|std::minstd_rand0?\b"
    r"|std::ranlux\w+"
    r"|std::default_random_engine\b"
)

WALLCLOCK_RE = re.compile(
    r"(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|std::chrono::(?:system|steady|high_resolution)_clock"
    r"|(?<![\w:])gettimeofday\s*\("
    r"|(?<![\w:])clock_gettime\s*\("
    r"|std::clock\s*\("
)

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set)\s*<[^;{}()]*?>[&*\s]*(\w+)\s*[;={(),]", re.S
)

RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?[\w:<>,&*\s]+?:\s*\*?([\w.\->]+)\s*\)"
)

FP_DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+)\s*[;=,)]")

COMPOUND_ADD_RE = re.compile(
    r"([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*\+="
)

THREADISH_RE = re.compile(r"\b(thread|worker|shard)", re.I)

SUPPRESS_RE = re.compile(r"determinism-ok\((?P<rule>[\w-]+)\)(?P<rest>[^\n]*)")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving newlines
    and column positions so line numbers in findings stay exact."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | '//' | '/*' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "//"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                mode = "/*"
                out.append("  ")
                i += 2
            elif c == '"':
                mode = '"'
                out.append(" ")
                i += 1
            elif c == "'":
                mode = "'"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif mode == "//":
            if c == "\n":
                mode = None
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif mode == "/*":
            if c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == mode:
                mode = None
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def collect_suppressions(raw: str, findings: list, path: Path):
    """Map line -> set of suppressed rules; flag justification-less ones."""
    supp: dict[int, set] = {}
    lines = raw.splitlines()
    for ln, line in enumerate(lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rule = m.group("rule")
        rest = m.group("rest").lstrip()
        justification = rest[1:].strip() if rest.startswith(":") else ""
        if not justification:
            findings.append(
                Finding(path, ln, "bad-suppression",
                        f"determinism-ok({rule}) needs a justification: "
                        "append ': <why this check is wrong here>'"))
            continue
        # A marker suppresses its own line (trailing-comment form) and,
        # when placed above the flagged statement, everything through the
        # first non-comment line — multi-line justifications included.
        supp.setdefault(ln, set()).add(rule)
        cursor = ln  # 0-based index of the line after the marker
        while cursor < len(lines):
            supp.setdefault(cursor + 1, set()).add(rule)
            if lines[cursor].strip().startswith("//"):
                cursor += 1
                continue
            break
    return supp


def body_span(code: str, brace_pos: int):
    """Return (start, end) of the brace-balanced block starting at the
    first '{' at/after brace_pos, or a single-statement span ending at
    the next ';' for brace-less loop bodies."""
    n = len(code)
    i = brace_pos
    while i < n and code[i] not in "{;":
        i += 1
    if i >= n:
        return brace_pos, n
    if code[i] == ";":
        return brace_pos, i + 1
    depth = 0
    start = i
    while i < n:
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return start, i + 1
        i += 1
    return start, n


def paired_header_text(path: Path) -> str:
    """The .hpp next to a .cpp declares its members; fold it into decl
    collection so member containers resolve."""
    if path.suffix != ".cpp":
        return ""
    hpp = path.with_suffix(".hpp")
    try:
        return hpp.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return ""


def last_identifier(range_expr: str) -> str:
    parts = re.split(r"\.|->", range_expr)
    return parts[-1].strip("*& ")


def lint_file(path: Path, root: Path, force_scope: bool = False):
    raw = path.read_text(encoding="utf-8", errors="replace")
    findings: list = []
    suppressed = collect_suppressions(raw, findings, path)
    code = strip_comments_and_strings(raw)

    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    in_scoped_dir = force_scope or any(
        rel.startswith(d + "/") for d in SCOPED_DIRS)

    if in_scoped_dir:
        for m in RAW_RANDOM_RE.finditer(code):
            findings.append(
                Finding(path, line_of(code, m.start()), "no-raw-random",
                        f"raw RNG '{m.group(0).strip()}' — draw from a "
                        "seeded common/prng stream instead"))
        for m in WALLCLOCK_RE.finditer(code):
            findings.append(
                Finding(path, line_of(code, m.start()), "no-wallclock",
                        f"wall-clock source '{m.group(0).strip()}' — "
                        "simulated time must come from sim/clock"))

    header = strip_comments_and_strings(paired_header_text(path))
    decl_text = code + "\n" + header
    unordered_vars = set(UNORDERED_DECL_RE.findall(decl_text))
    fp_vars = set(FP_DECL_RE.findall(decl_text))
    touches_accounting = bool(ACCOUNTING_RE.search(decl_text))

    for m in RANGE_FOR_RE.finditer(code):
        target = last_identifier(m.group(1))
        over_unordered = target in unordered_vars
        over_threadish = bool(THREADISH_RE.search(target))
        if over_unordered and touches_accounting:
            findings.append(
                Finding(path, line_of(code, m.start()), "no-unordered-iter",
                        f"range-for over unordered container '{target}' in "
                        "a file with ServeReport/EnergyReport/KvPool "
                        "accounting — iteration order is "
                        "implementation-defined"))
        if over_unordered or over_threadish:
            start, end = body_span(code, m.end())
            body = code[start:end]
            for am in COMPOUND_ADD_RE.finditer(body):
                lhs = am.group(1)
                leaf = re.split(r"\.|->", lhs)[-1]
                head = re.split(r"\.|->", lhs)[0]
                if leaf in fp_vars or head in fp_vars:
                    why = ("unordered container"
                           if over_unordered else "thread/shard collection")
                    findings.append(
                        Finding(path, line_of(code, start + am.start()),
                                "no-fp-accum-iter",
                                f"floating-point '{lhs} +=' inside a loop "
                                f"over {why} '{target}' — FP addition is "
                                "order-dependent"))

    return [f for f in findings
            if f.rule == "bad-suppression"
            or f.rule not in suppressed.get(f.line, set())]


def gather_files(root: Path, args_files):
    if args_files:
        return [Path(f) for f in args_files]
    files = []
    for sub in ("src",):
        base = root / sub
        if base.is_dir():
            files.extend(sorted(base.rglob("*.cpp")))
            files.extend(sorted(base.rglob("*.hpp")))
    return files


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*",
                    help="files to lint (default: all of <root>/src)")
    ap.add_argument("--root", default=".",
                    help="repository root for scope resolution")
    ap.add_argument("--force-scope", action="store_true",
                    help="treat every file as if it lived in a scoped "
                         "directory (used by the fixture suite)")
    args = ap.parse_args(argv)

    root = Path(args.root)
    files = gather_files(root, args.files)
    if not files:
        print("lint_determinism: no input files", file=sys.stderr)
        return 2

    all_findings = []
    for path in files:
        all_findings.extend(lint_file(path, root, args.force_scope))

    for f in all_findings:
        print(f)
    if all_findings:
        print(f"lint_determinism: {len(all_findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"lint_determinism: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
