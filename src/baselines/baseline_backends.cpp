#include "baselines/baseline_backends.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace spatten {

namespace {

/**
 * Shared dense-KV session skeleton: the context grows by exactly one
 * token per decode step (no global pruning), prefill is priced by the
 * subclass's one-shot model, each decode step by its per-token
 * extension. Subclasses accumulate executed/dense FLOPs, DRAM bytes,
 * and energy into the protected totals; finalize() lands them in a
 * RunResult whose dense DRAM reference equals the fetched bytes —
 * baselines fetch everything before any pruning decision, so their
 * dramReduction() is identically 1.
 */
class DenseKvSession : public BackendSession
{
  public:
    explicit DenseKvSession(const WorkloadSpec& workload)
        : workload_(workload)
    {
        SPATTEN_ASSERT(workload_.summarize_len >= 1, "empty prompt");
    }

    double prefill() override { return prefillWithCachedPrefix(0); }

    /**
     * Cached-prefix prefill: the serving layer already holds the first
     * @p cached tokens' K/V, so only the suffix queries run. The
     * one-shot baseline models price a full q x ctx pass; attention
     * work is linear in the query rows at fixed context, so the
     * executed share (time, fetched bytes, energy) scales by the
     * suffix fraction while the *dense* FLOP reference keeps the full
     * prompt — the skipped work shows up as a compute reduction, not a
     * redefinition of the workload. Capped at summarize_len - 1: the
     * last prompt token is always recomputed (vLLM semantics).
     */
    double prefillWithCachedPrefix(std::size_t cached) override
    {
        SPATTEN_ASSERT(!prefilled_, "prefill() called twice");
        if (workload_.skip_summarization)
            return prefillChunk(0, workload_.summarize_len);
        cached = std::min(cached, workload_.summarize_len - 1);
        return prefillChunk(cached, workload_.summarize_len - cached);
    }

    /**
     * One chunk of a split prefill: prompt tokens [offset, offset+len)
     * attend to the causal context they close. The one-shot baseline
     * models price a full prompt x prompt pass; attention work is
     * proportional to the query x context product, so the chunk's
     * executed share (time, fetched bytes, energy) scales by
     * len/prompt x (offset+len)/prompt — which for a chunk reaching
     * the end of the prompt reduces to the suffix fraction
     * prefillWithCachedPrefix has always charged (bit-identical in
     * the one-chunk case). The *dense* FLOP reference keeps the full
     * prompt: skipped/cheapened work is a compute reduction, not a
     * redefinition of the workload.
     */
    double prefillChunk(std::size_t offset, std::size_t len) override
    {
        SPATTEN_ASSERT(!prefilled_,
                       "prefillChunk() after prefill completed");
        const std::size_t prompt = workload_.summarize_len;
        SPATTEN_ASSERT(len >= 1 && offset + len <= prompt,
                       "chunk [%zu, %zu) outside the %zu-token prompt",
                       offset, offset + len, prompt);
        SPATTEN_ASSERT(prefill_pos_ == 0 || offset == prefill_pos_,
                       "non-contiguous chunk at %zu (expected %zu)",
                       offset, prefill_pos_);
        double s = 0.0;
        // Pre-summarized prompts charge nothing, matching the SpAtten
        // methodology (the KV cache exists but no pass runs).
        if (!workload_.skip_summarization) {
            const double whole = static_cast<double>(prompt);
            double scale = static_cast<double>(len) / whole;
            if (offset + len < prompt)
                scale *= static_cast<double>(offset + len) / whole;
            const double f0 = flops_, b0 = dram_bytes_;
            const double cj0 = compute_j_, dj0 = dram_j_;
            const double d0 = dense_flops_;
            s = prefillPass() * scale;
            flops_ = f0 + (flops_ - f0) * scale;
            dram_bytes_ = b0 + (dram_bytes_ - b0) * scale;
            compute_j_ = cj0 + (compute_j_ - cj0) * scale;
            dram_j_ = dj0 + (dram_j_ - dj0) * scale;
            // The full-prompt dense reference lands exactly once, with
            // the chunk that completes the prompt — partial chunks must
            // not re-add it every pass (executed totals above are the
            // per-chunk shares; the dense reference is per prompt).
            if (offset + len < prompt)
                dense_flops_ = d0;
        }
        prefill_pos_ = offset + len;
        prefill_seconds_ += s;
        elapsed_ += s;
        if (prefill_pos_ == prompt || workload_.skip_summarization) {
            prefilled_ = true;
            kv_len_ = prompt;
            kv_trace_.push_back(kv_len_);
        }
        return s;
    }

    double decodeStep() override
    {
        SPATTEN_ASSERT(prefilled_, "decodeStep() before prefill()");
        SPATTEN_ASSERT(!done(), "decodeStep() past generate_len");
        // The new token attends to the full dense context.
        const double s = stepPass(kv_len_ + 1);
        ++kv_len_;
        ++tokens_;
        elapsed_ += s;
        kv_trace_.push_back(kv_len_);
        return s;
    }

    bool prefilled() const override { return prefilled_; }
    bool done() const override
    {
        return prefilled_ && tokens_ >= workload_.generate_len;
    }
    std::size_t kvLength() const override { return kv_len_; }
    const std::vector<std::size_t>& kvTrace() const override
    {
        return kv_trace_;
    }
    const WorkloadSpec& workload() const override { return workload_; }

    RunResult finalize() const override
    {
        // No prefilled_ assert: a session evicted mid-prefill (between
        // chunks) finalizes too, accounting the wasted partial pass.
        RunResult res;
        res.workload = workload_.name;
        res.seconds = elapsed_;
        res.summarize_seconds = prefill_seconds_;
        res.generate_seconds = elapsed_ - prefill_seconds_;
        res.cycles = static_cast<Cycles>(
            std::llround(elapsed_ * clockGhz() * 1e9));
        res.attention_flops = flops_;
        res.attention_flops_dense = dense_flops_;
        res.dram_bytes = dram_bytes_;
        res.dram_bytes_dense = dram_bytes_; // Everything fetched: no savings.
        res.energy.qk_j = compute_j_;
        res.energy.dram_j = dram_j_;
        res.energy.seconds = elapsed_;
        return res;
    }

  protected:
    /** Simulated seconds of the full prompt pass. */
    virtual double prefillPass() = 0;
    /** Simulated seconds of one decode step over @p ctx tokens. */
    virtual double stepPass(std::size_t ctx) = 0;
    /** Clock used to express elapsed time as RunResult cycles. */
    virtual double clockGhz() const = 0;

    WorkloadSpec workload_;
    double flops_ = 0;
    double dense_flops_ = 0;
    double dram_bytes_ = 0;
    double compute_j_ = 0;
    double dram_j_ = 0;

  private:
    std::size_t kv_len_ = 0;
    std::size_t tokens_ = 0;
    bool prefilled_ = false;
    std::size_t prefill_pos_ = 0; ///< Prompt tokens processed by chunks.
    double prefill_seconds_ = 0;
    double elapsed_ = 0;
    std::vector<std::size_t> kv_trace_;
};

/// DRAM energy at the fine-grained-DRAM rate the baseline one-shot
/// models already use (3.9 pJ/bit).
inline double
dramJ(double bytes)
{
    return bytes * 8.0 * 3.9 * 1e-12;
}

// ---------------------------------------------------------------------
// A3
// ---------------------------------------------------------------------

class A3Session final : public DenseKvSession
{
  public:
    A3Session(const A3Config& cfg, const WorkloadSpec& workload)
        : DenseKvSession(workload), cfg_(cfg)
    {
    }

  private:
    double prefillPass() override
    {
        // The one-shot model prices exactly the discriminative pass.
        WorkloadSpec prompt = workload_;
        prompt.generate_len = 0;
        const A3Result r = A3Model(cfg_).run(prompt);
        flops_ += r.dense_flops / cfg_.approx_speedup;
        dense_flops_ += r.dense_flops;
        dram_bytes_ += r.dram_bytes;
        compute_j_ += r.energy_j - dramJ(r.dram_bytes);
        dram_j_ += dramJ(r.dram_bytes);
        return r.seconds;
    }

    double stepPass(std::size_t ctx) override
    {
        const ModelSpec& m = workload_.model;
        const double d = static_cast<double>(m.d_head);
        const double h = static_cast<double>(m.num_heads);
        const double c = static_cast<double>(ctx);
        const double layers = static_cast<double>(m.num_layers);
        const double macs_per_ns =
            static_cast<double>(cfg_.num_multipliers) * cfg_.freq_ghz;

        // Dense per-layer work: one query row against c keys + values.
        const double dense_macs_layer = 2.0 * c * d * h;
        const double exec_macs_layer =
            dense_macs_layer / cfg_.approx_speedup;
        // Full grown K/V fetched per step, pruning decided after fetch
        // (12-bit on-the-wire operands, as in the prefill model).
        const double bytes_layer = 2.0 * c * d * h * 1.5;
        // Preprocessing: the new key is inserted into each of the d
        // per-dimension sorted lists (binary insert), every layer — the
        // sorted structures A3's partial-score candidate selection needs.
        const double insert_cmps_layer =
            h * d * std::max(1.0, std::log2(c));
        const double insert_ns_layer =
            insert_cmps_layer / static_cast<double>(cfg_.sort_parallelism);

        const double compute_ns = exec_macs_layer / macs_per_ns;
        const double mem_ns = bytes_layer / cfg_.mem_bw_gbs;
        const double step_s =
            (std::max(compute_ns, mem_ns) + insert_ns_layer) * layers *
            1e-9;

        flops_ += 2.0 * exec_macs_layer * layers;
        dense_flops_ += 2.0 * dense_macs_layer * layers;
        dram_bytes_ += bytes_layer * layers;
        compute_j_ += 2.0 * exec_macs_layer * layers *
                      cfg_.energy_per_flop_pj * 1e-12;
        dram_j_ += dramJ(bytes_layer * layers);
        return step_s;
    }

    double clockGhz() const override { return cfg_.freq_ghz; }

    A3Config cfg_;
};

// ---------------------------------------------------------------------
// MNNFast
// ---------------------------------------------------------------------

class MnnFastSession final : public DenseKvSession
{
  public:
    MnnFastSession(const MnnFastConfig& cfg, const WorkloadSpec& workload)
        : DenseKvSession(workload), cfg_(cfg)
    {
    }

  private:
    double prefillPass() override
    {
        WorkloadSpec prompt = workload_;
        prompt.generate_len = 0;
        const MnnFastResult r = MnnFastModel(cfg_).run(prompt);
        // Executed = QK dense + PV shrunk by the local value pruning.
        flops_ += r.dense_flops *
                  (1.0 + (1.0 - cfg_.v_prune_ratio)) / 2.0;
        dense_flops_ += r.dense_flops;
        dram_bytes_ += r.dram_bytes;
        compute_j_ += r.energy_j - dramJ(r.dram_bytes);
        dram_j_ += dramJ(r.dram_bytes);
        return r.seconds;
    }

    double stepPass(std::size_t ctx) override
    {
        const ModelSpec& m = workload_.model;
        const double d = static_cast<double>(m.d_head);
        const double h = static_cast<double>(m.num_heads);
        const double c = static_cast<double>(ctx);
        const double layers = static_cast<double>(m.num_layers);
        const double macs_per_ns =
            static_cast<double>(cfg_.num_multipliers) * cfg_.freq_ghz *
            cfg_.datapath_efficiency;

        const double qk_macs_layer = c * d * h;
        const double pv_dense_layer = c * d * h;
        // Only prob x V shrinks (threshold pruning after the fetch).
        const double exec_macs_layer =
            qk_macs_layer + pv_dense_layer * (1.0 - cfg_.v_prune_ratio);
        const double dense_macs_layer = qk_macs_layer + pv_dense_layer;
        // Full grown K/V per step, fp16 operands (no aggressive quant).
        const double bytes_layer = 2.0 * c * d * h * 2.0;

        const double compute_ns = exec_macs_layer / macs_per_ns;
        const double mem_ns = bytes_layer / cfg_.mem_bw_gbs;
        const double step_s =
            std::max(compute_ns, mem_ns) * layers * 1e-9;

        flops_ += 2.0 * exec_macs_layer * layers;
        dense_flops_ += 2.0 * dense_macs_layer * layers;
        dram_bytes_ += bytes_layer * layers;
        compute_j_ += 2.0 * exec_macs_layer * layers *
                      cfg_.energy_per_flop_pj * 1e-12;
        dram_j_ += dramJ(bytes_layer * layers);
        return step_s;
    }

    double clockGhz() const override { return cfg_.freq_ghz; }

    MnnFastConfig cfg_;
};

// ---------------------------------------------------------------------
// CPU/GPU platforms
// ---------------------------------------------------------------------

class PlatformSession final : public DenseKvSession
{
  public:
    PlatformSession(const PlatformSpec& spec, const WorkloadSpec& workload)
        : DenseKvSession(workload), spec_(spec)
    {
    }

  private:
    double prefillPass() override
    {
        WorkloadSpec prompt = workload_;
        prompt.generate_len = 0;
        const PlatformResult r =
            PlatformModel(spec_).attention(prompt);
        flops_ += r.flops;
        dense_flops_ += r.flops;
        dram_bytes_ += r.dram_bytes;
        compute_j_ += r.energy_j;
        return r.seconds;
    }

    double stepPass(std::size_t ctx) override
    {
        // The per-token generation term of PlatformModel::attention:
        // mat-vec per head at genvec_util, inflated by the Fig. 2
        // data-movement share plus the per-layer launch overhead.
        const ModelSpec& m = workload_.model;
        const double d = static_cast<double>(m.d_head);
        const double h = static_cast<double>(m.num_heads);
        const double c = static_cast<double>(ctx);
        const double layers = static_cast<double>(m.num_layers);
        const double peak_fns = spec_.peak_tflops * 1e3;

        const double flops_layer = 2.0 * (c * d + c * d) * h;
        const double bytes_layer = (2.0 * c * d * h) * 4.0; // K+V fp32.
        const double matmul_ns =
            std::max(flops_layer / (peak_fns * spec_.genvec_util),
                     bytes_layer / spec_.mem_bw_gbs);
        const double step_s =
            layers *
            (matmul_ns / spec_.matmul_fraction +
             spec_.gen_overhead_us_per_layer * 1e3) *
            1e-9;

        flops_ += layers * flops_layer;
        dense_flops_ += layers * flops_layer;
        dram_bytes_ += layers * bytes_layer;
        compute_j_ += step_s * spec_.dynamic_power_w;
        return step_s;
    }

    /// Platforms have no single core clock; express cycles in ns.
    double clockGhz() const override { return 1.0; }

    PlatformSpec spec_;
};

} // namespace

std::unique_ptr<BackendSession>
A3Backend::makeSession(const WorkloadSpec& workload,
                       const PruningPolicy& policy,
                       std::uint64_t request_seed) const
{
    // Dense-KV baselines ignore the SpAtten policy and draw no PRNG
    // state; the signature is the uniform serving contract.
    (void)policy;
    (void)request_seed;
    return std::make_unique<A3Session>(cfg_, workload);
}

std::unique_ptr<BackendSession>
MnnFastBackend::makeSession(const WorkloadSpec& workload,
                            const PruningPolicy& policy,
                            std::uint64_t request_seed) const
{
    (void)policy;
    (void)request_seed;
    return std::make_unique<MnnFastSession>(cfg_, workload);
}

std::unique_ptr<BackendSession>
PlatformBackend::makeSession(const WorkloadSpec& workload,
                             const PruningPolicy& policy,
                             std::uint64_t request_seed) const
{
    (void)policy;
    (void)request_seed;
    return std::make_unique<PlatformSession>(spec_, workload);
}

} // namespace spatten
