/// End-to-end workflow: train a model, *measure* what a pruning policy
/// actually does to it (surviving keys, LSB rate, accuracy), then drive
/// the accelerator simulator with the measured policy — the same
/// methodology the paper uses (ratios tuned per task to preserve
/// accuracy, measured 5.9% LSB rate fed into the hardware evaluation).
#include <cstdio>

#include "accel/spatten_accelerator.hpp"
#include "workload/calibration.hpp"
#include "workload/synthetic_tasks.hpp"

int
main()
{
    using namespace spatten;

    // 1. Train a small causal LM on the synthetic copy task.
    CopyLmTaskConfig tc;
    tc.payload_len = 4;
    tc.filler_gap = 3;
    CopyLmTask task(tc);
    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 32;
    mc.heads = 4;
    mc.layers = 4;
    mc.ffn_dim = 64;
    mc.max_len = task.seqLen();
    TransformerModel model(mc);
    std::printf("training LM on the synthetic copy task...\n");
    trainLm(model, task.sample(300), 6);

    // 2. Measure the policy's effect on the trained model.
    PruningPolicy policy = PruningPolicy::disabled();
    policy.token_pruning = true;
    policy.token_avg_ratio = 0.35;
    policy.local_value_pruning = true;
    policy.local_v_ratio = 0.3;
    policy.pq.enabled = true;
    policy.pq.setting = {8, 4};
    policy.pq.max_prob_threshold = 0.1;

    const CalibrationResult cal =
        calibrateLm(model, task.sample(40), policy);
    std::printf("\nmeasured on the trained model:\n");
    std::printf("  mean alive-key fraction : %.1f%%\n",
                cal.measured_keys_frac * 100);
    std::printf("  LSB-refetch row fraction: %.1f%% (paper avg 5.9%%)\n",
                cal.measured_lsb_fraction * 100);
    std::printf("  loss delta              : %+.4f\n",
                -cal.accuracy_delta);
    std::printf("  equivalent avg ratio    : %.3f (requested %.3f)\n",
                cal.equivalent_avg_ratio, policy.token_avg_ratio);

    // 3. Simulate the accelerator with the *measured* policy.
    WorkloadSpec w;
    w.name = "measured-gpt2";
    w.model = ModelSpec::gpt2Small();
    w.summarize_len = 992;
    w.generate_len = 32;
    w.skip_summarization = true;

    SpAttenAccelerator accel;
    const RunResult measured = accel.run(w, cal.calibrated);
    const RunResult dense = accel.run(w, PruningPolicy::disabled());
    std::printf("\naccelerator simulation with the measured policy:\n");
    std::printf("  latency : %.3f ms (dense %.3f ms, %.2fx)\n",
                measured.seconds * 1e3, dense.seconds * 1e3,
                dense.seconds / measured.seconds);
    std::printf("  DRAM    : %.1f MB (dense %.1f MB, %.1fx vs fp32)\n",
                measured.dram_bytes / 1e6, dense.dram_bytes / 1e6,
                measured.dramReduction());
    std::printf("  energy  : %.2f mJ (dense %.2f mJ)\n",
                measured.energy.totalJ() * 1e3,
                dense.energy.totalJ() * 1e3);
    std::printf("\nThe accuracy/efficiency trade-off was validated on the "
                "trained model before any hardware number was produced — "
                "the paper's 'no accuracy loss' methodology.\n");
    return 0;
}
