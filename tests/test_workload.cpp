/// Tests for the benchmark suite definitions, synthetic attention traces,
/// the synthetic task generators, and the arrival-trace generator's edge
/// cases (degenerate bounds, seed-stability goldens, burst/heavy-tail
/// modes).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "workload/arrival_trace.hpp"
#include "workload/attention_trace.hpp"
#include "workload/benchmarks.hpp"
#include "workload/synthetic_tasks.hpp"

namespace spatten {
namespace {

TEST(Benchmarks, ThirtyTotal)
{
    const auto all = paperBenchmarks();
    EXPECT_EQ(all.size(), 30u);
    EXPECT_EQ(bertBenchmarks().size(), 22u);
    EXPECT_EQ(gptBenchmarks().size(), 8u);
}

TEST(Benchmarks, NamesUnique)
{
    std::set<std::string> names;
    for (const auto& b : paperBenchmarks())
        names.insert(b.workload.name);
    EXPECT_EQ(names.size(), 30u);
}

TEST(Benchmarks, BertConfigsCorrect)
{
    // Bind the list first: findBenchmark returns a reference into it,
    // which would dangle past a temporary (caught by the ASan CI job).
    const auto all = paperBenchmarks();
    const auto& b = findBenchmark(all, "bert-large-sst-2");
    EXPECT_EQ(b.workload.model.num_layers, 24u);
    EXPECT_EQ(b.workload.model.num_heads, 16u);
    EXPECT_EQ(b.workload.generate_len, 0u);
    EXPECT_FALSE(b.generative);
    EXPECT_FALSE(b.policy.pq.enabled); // BERT: static quantization
}

TEST(Benchmarks, GptConfigsCorrect)
{
    const auto all = paperBenchmarks();
    const auto& g = findBenchmark(all, "gpt2-small-ptb");
    EXPECT_EQ(g.workload.summarize_len, 992u);
    EXPECT_EQ(g.workload.generate_len, 32u);
    EXPECT_TRUE(g.generative);
    EXPECT_TRUE(g.policy.pq.enabled);
    EXPECT_NEAR(g.policy.lsb_fraction, 0.059, 1e-9);
}

TEST(Benchmarks, LongerTasksPruneMore)
{
    const auto all = paperBenchmarks();
    const auto& cola = findBenchmark(all, "bert-base-cola");   // len 11
    const auto& squad = findBenchmark(all, "bert-base-squad-v1"); // len 320
    EXPECT_LT(cola.policy.token_avg_ratio, squad.policy.token_avg_ratio);
}

TEST(Benchmarks, FindUnknownDies)
{
    const auto all = paperBenchmarks();
    EXPECT_DEATH(findBenchmark(all, "nope"), "unknown benchmark");
}

TEST(AttentionTrace, DominanceRaisesMaxProb)
{
    Prng p(1);
    double flat_sum = 0, dom_sum = 0;
    for (int i = 0; i < 20; ++i) {
        flat_sum += maxSoftmaxProb(syntheticScoreRow(64, 0.0, p));
        dom_sum += maxSoftmaxProb(syntheticScoreRow(64, 8.0, p));
    }
    EXPECT_LT(flat_sum / 20, 0.35);
    EXPECT_GT(dom_sum / 20, 0.9);
}

TEST(AttentionTrace, BatchCoversDominanceRange)
{
    Prng p(2);
    const auto rows = syntheticScoreRows(200, 48, 8.0, p);
    ASSERT_EQ(rows.size(), 200u);
    double min_p = 1.0, max_p = 0.0;
    for (const auto& r : rows) {
        const double mp = maxSoftmaxProb(r);
        min_p = std::min(min_p, mp);
        max_p = std::max(max_p, mp);
    }
    EXPECT_LT(min_p, 0.2);
    EXPECT_GT(max_p, 0.9);
}

TEST(KeywordTask, ExamplesWellFormed)
{
    KeywordTask task;
    const auto ex = task.sample(50);
    for (const auto& e : ex) {
        EXPECT_EQ(e.ids.size(), task.seqLen());
        EXPECT_LT(e.label, task.numClasses());
        std::size_t keywords = 0;
        for (auto id : e.ids) {
            EXPECT_LT(id, task.vocabSize());
            keywords += task.isKeyword(id);
        }
        EXPECT_GE(keywords, 1u);
    }
}

TEST(KeywordTask, KeywordsMatchLabelClass)
{
    KeywordTask task;
    const auto ex = task.sample(50);
    const auto& cfg = task.config();
    for (const auto& e : ex) {
        for (auto id : e.ids) {
            if (!task.isKeyword(id))
                continue;
            const std::size_t cls =
                (id - cfg.num_fillers) / cfg.keywords_per_class;
            EXPECT_EQ(cls, e.label);
        }
    }
}

TEST(KeywordTask, TokenNamesNonEmpty)
{
    KeywordTask task;
    for (std::size_t id = 0; id < task.vocabSize(); ++id)
        EXPECT_FALSE(task.tokenName(id).empty());
}

TEST(CopyLmTask, StructureCorrect)
{
    CopyLmTask task;
    const auto& cfg = task.config();
    const auto ex = task.sample(20);
    const std::size_t bos = cfg.num_symbols + cfg.num_fillers;
    const std::size_t sep = bos + 1;
    for (const auto& e : ex) {
        EXPECT_EQ(e.ids.size(), task.seqLen());
        EXPECT_EQ(e.ids.front(), bos);
        // SEP present and payload copied after it.
        const auto sep_it =
            std::find(e.ids.begin(), e.ids.end(), sep);
        ASSERT_NE(sep_it, e.ids.end());
        const std::size_t sep_pos =
            static_cast<std::size_t>(sep_it - e.ids.begin());
        // Payload symbols (stride filler_gap+1 after BOS) match the copy.
        for (std::size_t i = 0; i < cfg.payload_len; ++i) {
            const std::size_t orig = e.ids[1 + i * (1 + cfg.filler_gap)];
            const std::size_t copy = e.ids[sep_pos + 1 + i];
            EXPECT_EQ(orig, copy);
            EXPECT_TRUE(task.isSymbol(orig));
        }
    }
}

TEST(CopyLmTask, DeterministicWithSeed)
{
    CopyLmTaskConfig cfg;
    CopyLmTask a(cfg), b(cfg);
    const auto ea = a.sample(5);
    const auto eb = b.sample(5);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(ea[i].ids, eb[i].ids);
}

// ---------------------------------------------------------------------
// Arrival-trace generator: edge cases and distribution modes
// ---------------------------------------------------------------------

TEST(ArrivalTraceGen, DegenerateMinEqualsMaxBounds)
{
    ArrivalTraceConfig tc;
    tc.num_requests = 24;
    tc.min_prompt = tc.max_prompt = 96;
    tc.min_output = tc.max_output = 7;
    const auto trace = generatePoissonTrace(tc);
    ASSERT_EQ(trace.size(), tc.num_requests);
    for (const TracedRequest& r : trace) {
        EXPECT_EQ(r.workload.summarize_len, 96u);
        EXPECT_EQ(r.workload.generate_len, 7u);
    }
}

TEST(ArrivalTraceGen, ZeroOutputBoundsAllowed)
{
    ArrivalTraceConfig tc;
    tc.num_requests = 8;
    tc.min_output = tc.max_output = 0; // BERT-style classification mix.
    const auto trace = generatePoissonTrace(tc);
    for (const TracedRequest& r : trace)
        EXPECT_EQ(r.workload.generate_len, 0u);
}

TEST(ArrivalTraceGen, ArrivalsMonotoneNonDecreasingAndPositive)
{
    for (const std::uint64_t seed : {1ull, 42ull, 0x5eedull}) {
        ArrivalTraceConfig tc;
        tc.num_requests = 128;
        tc.seed = seed;
        const auto trace = generatePoissonTrace(tc);
        double prev = 0.0;
        for (const TracedRequest& r : trace) {
            EXPECT_GE(r.arrival_s, prev) << "seed " << seed;
            prev = r.arrival_s;
        }
        EXPECT_GT(trace.front().arrival_s, 0.0);
    }
}

// Pinned golden: the default (Poisson, uniform, no priorities) stream
// must replay bit-identically from a fixed seed across refactors of the
// generator — any drift silently re-baselines every serving experiment.
TEST(ArrivalTraceGen, SeedStabilityGolden)
{
    ArrivalTraceConfig tc;
    tc.num_requests = 4;
    tc.mean_interarrival_s = 1e-3;
    tc.seed = 0x5eed;
    const auto trace = generatePoissonTrace(tc);
    ASSERT_EQ(trace.size(), 4u);
    const struct
    {
        double arrival_s;
        std::size_t prompt;
        std::size_t output;
        std::uint64_t seed;
    } golden[] = {
        {0.0027239713595298923, 251, 32, 0xf985e1f2fb897b03ULL},
        {0.0038812628217176522, 299, 22, 0x6c13fd25a3155716ULL},
        {0.0053748991525125883, 146, 30, 0xacaedbe9142e2838ULL},
        {0.0061533030372219214, 155, 11, 0x3f4c13e909495775ULL},
    };
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(trace[i].arrival_s, golden[i].arrival_s);
        EXPECT_EQ(trace[i].workload.summarize_len, golden[i].prompt);
        EXPECT_EQ(trace[i].workload.generate_len, golden[i].output);
        EXPECT_EQ(trace[i].seed, golden[i].seed);
        EXPECT_EQ(trace[i].priority, 0);
    }
}

TEST(ArrivalTraceGen, OnOffBurstClustersArrivals)
{
    ArrivalTraceConfig tc;
    tc.num_requests = 256;
    tc.mean_interarrival_s = 0.1e-3;
    tc.process = ArrivalProcess::OnOffBurst;
    tc.burst_on_mean_s = 1e-3;   // ~10 arrivals per burst.
    tc.burst_off_mean_s = 20e-3; // Long silences between bursts.
    const auto trace = generateArrivalTrace(tc);

    double prev = 0.0;
    std::size_t long_gaps = 0;
    for (const TracedRequest& r : trace) {
        ASSERT_GE(r.arrival_s, prev);
        if (r.arrival_s - prev > 5e-3) // >> any in-burst gap scale.
            ++long_gaps;
        prev = r.arrival_s;
    }
    EXPECT_GE(long_gaps, 5u)
        << "OFF periods must show up as long inter-arrival silences";
    // Deterministic replay.
    const auto again = generateArrivalTrace(tc);
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(trace[i].arrival_s, again[i].arrival_s);
}

TEST(ArrivalTraceGen, BoundedParetoPromptsAreHeavyTailedWithinBounds)
{
    ArrivalTraceConfig tc;
    tc.num_requests = 512;
    tc.min_prompt = 32;
    tc.max_prompt = 512;
    tc.prompt_dist = PromptLengthDist::BoundedPareto;
    tc.pareto_alpha = 1.1;
    const auto trace = generateArrivalTrace(tc);

    std::size_t below_mid = 0;
    std::size_t near_max = 0;
    for (const TracedRequest& r : trace) {
        ASSERT_GE(r.workload.summarize_len, tc.min_prompt);
        ASSERT_LE(r.workload.summarize_len, tc.max_prompt);
        below_mid += r.workload.summarize_len < 272 ? 1 : 0; // Midpoint.
        near_max += r.workload.summarize_len >= 384 ? 1 : 0;
    }
    EXPECT_GT(below_mid, trace.size() * 3 / 4)
        << "Pareto mass must concentrate on short prompts";
    EXPECT_GE(near_max, 1u) << "the heavy tail must still reach far";
}

TEST(ArrivalTraceGen, PriorityLevelsDrawnWithinRangeAndDeterministic)
{
    ArrivalTraceConfig tc;
    tc.num_requests = 128;
    tc.priority_levels = 4;
    const auto trace = generateArrivalTrace(tc);
    std::set<int> seen;
    for (const TracedRequest& r : trace) {
        ASSERT_GE(r.priority, 0);
        ASSERT_LT(r.priority, 4);
        seen.insert(r.priority);
    }
    EXPECT_EQ(seen.size(), 4u) << "all levels should appear in 128 draws";
    const auto again = generateArrivalTrace(tc);
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(trace[i].priority, again[i].priority);
}

// ---------------------------------------------------------------------
// Shared-prefix traces (system-prompt pools + multi-turn follow-ups)
// ---------------------------------------------------------------------

SharedPrefixTraceConfig
sharedPrefixConfig(std::size_t n = 32, std::uint64_t seed = 0x5eed)
{
    SharedPrefixTraceConfig sp;
    sp.base.num_requests = n;
    sp.base.seed = seed;
    sp.num_system_prompts = 2;
    sp.system_prompt_tokens = 64;
    sp.followup_prob = 0.5;
    sp.user_turn_min = 8;
    sp.user_turn_max = 24;
    sp.max_prompt_tokens = 512;
    return sp;
}

TEST(DiurnalTrace, AttributesMatchBaseStreamsAndArrivalsMonotone)
{
    DiurnalTraceConfig dc;
    dc.base.num_requests = 512;
    dc.base.mean_interarrival_s = 1e-3;
    dc.base.seed = 0xdadd;
    dc.day_s = 0.25;
    const auto trace = generateDiurnalTrace(dc);
    const auto base = generateArrivalTrace(dc.base);
    ASSERT_EQ(trace.size(), base.size());
    double prev = 0.0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        // Shapes, seeds, and priorities are the exact base streams;
        // only the arrival times are re-drawn.
        EXPECT_EQ(trace[i].workload.summarize_len,
                  base[i].workload.summarize_len);
        EXPECT_EQ(trace[i].workload.generate_len,
                  base[i].workload.generate_len);
        EXPECT_EQ(trace[i].seed, base[i].seed);
        EXPECT_EQ(trace[i].priority, base[i].priority);
        EXPECT_GE(trace[i].arrival_s, prev);
        prev = trace[i].arrival_s;
    }
    EXPECT_GT(trace.front().arrival_s, 0.0);

    // Deterministic: the same config replays bit-identically.
    const auto again = generateDiurnalTrace(dc);
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(trace[i].arrival_s, again[i].arrival_s);
}

TEST(DiurnalTrace, RateFollowsTheDayNightCycle)
{
    // Bin arrivals by phase-of-day: the half-day centered on the peak
    // must hold substantially more arrivals than the trough half, and
    // amplitude 0 must degenerate to the flat Poisson profile.
    DiurnalTraceConfig dc;
    dc.base.num_requests = 4096;
    dc.base.mean_interarrival_s = 1e-3;
    dc.day_s = 0.5;
    dc.amplitude = 0.9;
    dc.peak_frac = 0.5;
    const auto trace = generateDiurnalTrace(dc);

    const auto peakHalfCount = [&](const std::vector<TracedRequest>& t) {
        std::size_t peak = 0;
        for (const TracedRequest& r : t) {
            const double phase = r.arrival_s / dc.day_s -
                                 std::floor(r.arrival_s / dc.day_s);
            if (phase >= 0.25 && phase < 0.75)
                ++peak;
        }
        return peak;
    };
    const std::size_t peak = peakHalfCount(trace);
    const std::size_t trough = trace.size() - peak;
    // At amplitude 0.9 the expected split is ~79/21; demand 2x as a
    // loose, seed-robust bound.
    EXPECT_GT(peak, 2 * trough);

    DiurnalTraceConfig flat = dc;
    flat.amplitude = 0.0;
    const auto flat_trace = generateDiurnalTrace(flat);
    const std::size_t flat_peak = peakHalfCount(flat_trace);
    EXPECT_LT(flat_peak, flat_trace.size() * 6 / 10);
    EXPECT_GT(flat_peak, flat_trace.size() * 4 / 10);
}

TEST(SharedPrefixTrace, BaseStreamsUnchanged)
{
    // Arrivals, outputs, priorities, and per-request seeds must come
    // from the exact base generator streams: a consumer ignoring
    // prompt_tokens sees the same demand, and the content knobs can
    // never shift the arrival process.
    const auto sp = sharedPrefixConfig();
    const auto shared = generateSharedPrefixTrace(sp);
    const auto base = generateArrivalTrace(sp.base);
    ASSERT_EQ(shared.size(), base.size());
    for (std::size_t i = 0; i < shared.size(); ++i) {
        EXPECT_EQ(shared[i].arrival_s, base[i].arrival_s);
        EXPECT_EQ(shared[i].workload.generate_len,
                  base[i].workload.generate_len);
        EXPECT_EQ(shared[i].seed, base[i].seed);
        EXPECT_EQ(shared[i].priority, base[i].priority);
    }
}

TEST(SharedPrefixTrace, PromptContentWellFormedAndShared)
{
    const auto sp = sharedPrefixConfig(64);
    const auto trace = generateSharedPrefixTrace(sp);
    // Content length always matches the declared prompt length, and
    // every prompt opens with one of num_system_prompts pools (fresh)
    // or extends another request's prompt (follow-up).
    std::size_t openers = 0, followups = 0;
    std::set<std::uint64_t> first_tokens;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const auto& p = trace[i].prompt_tokens;
        ASSERT_EQ(p.size(), trace[i].workload.summarize_len);
        ASSERT_LE(p.size(), sp.max_prompt_tokens);
        first_tokens.insert(p.front());
        bool is_followup = false;
        for (std::size_t j = 0; j < i && !is_followup; ++j) {
            const auto& q = trace[j].prompt_tokens;
            if (p.size() > q.size() &&
                std::equal(q.begin(), q.end(), p.begin()))
                is_followup = true;
        }
        if (is_followup)
            ++followups;
        else
            ++openers;
    }
    EXPECT_LE(first_tokens.size(), sp.num_system_prompts)
        << "every conversation opens from the system-prompt pool";
    EXPECT_GE(followups, 1u) << "50% follow-up prob over 64 requests";
    EXPECT_GE(openers, 1u);
    // Deterministic: same config, bit-identical content.
    const auto again = generateSharedPrefixTrace(sp);
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(trace[i].prompt_tokens, again[i].prompt_tokens);
}

TEST(SharedPrefixTrace, FollowupsReuseConversationHistory)
{
    auto sp = sharedPrefixConfig(48);
    sp.followup_prob = 1.0; // After the opener, every request follows up.
    const auto trace = generateSharedPrefixTrace(sp);
    std::size_t extending = 0;
    for (std::size_t i = 1; i < trace.size(); ++i) {
        const auto& p = trace[i].prompt_tokens;
        for (std::size_t j = 0; j < i; ++j) {
            const auto& q = trace[j].prompt_tokens;
            // A follow-up re-sends a prior prompt *plus its reply*,
            // then appends a fresh turn: strict prefix extension.
            if (p.size() > q.size() &&
                std::equal(q.begin(), q.end(), p.begin())) {
                ++extending;
                break;
            }
        }
    }
    EXPECT_GE(extending, trace.size() / 2)
        << "forced follow-ups must extend earlier conversations "
           "(fresh restarts only at the prompt cap)";
}

TEST(SharedPrefixTrace, SeedStabilityGolden)
{
    // Pinned content values: any change to the composition streams is
    // a conscious re-baseline, because checked-in BENCH trajectories
    // and the scheduler cache tests replay these exact prompts.
    const auto trace = generateSharedPrefixTrace(sharedPrefixConfig());
    ASSERT_EQ(trace.size(), 32u);
    const struct
    {
        std::size_t idx;
        std::size_t prompt_len;
        std::uint64_t first_token;
        std::uint64_t last_token;
    } golden[] = {
        {0, 79, 0xec343d7abf34fb5ULL, 0x7501a4e7fb63e40ULL},
        {1, 76, 0x55df428ea21fba22ULL, 0x682bc3f08e9f1c78ULL},
        {7, 76, 0x55df428ea21fba22ULL, 0xc54cec6ce118e90eULL},
        {31, 105, 0x55df428ea21fba22ULL, 0x703168ee8276906eULL},
    };
    for (const auto& g : golden) {
        EXPECT_EQ(trace[g.idx].prompt_tokens.size(), g.prompt_len);
        EXPECT_EQ(trace[g.idx].prompt_tokens.front(), g.first_token);
        EXPECT_EQ(trace[g.idx].prompt_tokens.back(), g.last_token);
    }
}

} // namespace
} // namespace spatten
