/**
 * @file
 * Small arithmetic helpers used throughout the codebase.
 */
#ifndef SPATTEN_COMMON_MATH_UTIL_HPP
#define SPATTEN_COMMON_MATH_UTIL_HPP

#include <cstdint>
#include <type_traits>

namespace spatten {

/** Ceiling division for non-negative integers. */
template <typename T>
constexpr T
ceilDiv(T num, T den)
{
    static_assert(std::is_integral_v<T>);
    return (num + den - 1) / den;
}

/** Round @p x up to the nearest multiple of @p align. */
template <typename T>
constexpr T
roundUp(T x, T align)
{
    return ceilDiv(x, align) * align;
}

/** Clamp @p x to [lo, hi]. */
template <typename T>
constexpr T
clampTo(T x, T lo, T hi)
{
    return x < lo ? lo : (x > hi ? hi : x);
}

/** Integer ceil(log2(x)) for x >= 1. */
constexpr int
ceilLog2(std::uint64_t x)
{
    int bits = 0;
    std::uint64_t v = 1;
    while (v < x) {
        v <<= 1;
        ++bits;
    }
    return bits;
}

/** True if x is a power of two (x > 0). */
constexpr bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace spatten

#endif // SPATTEN_COMMON_MATH_UTIL_HPP
