/// Continuous-batching serving bench: a 64-request Poisson trace served
/// on pools of 1, 2, and 4 simulated accelerators, then the
/// memory-pressure scenarios — the same demand under a KV byte budget
/// tight enough to force admission blocking and preemption, with and
/// without cascade pruning (pruned KV admits measurably more
/// concurrency), plus a bursty heavy-tailed trace served under the
/// priority queue policy, and finally the heterogeneous-fleet scenarios:
/// SpAtten-1/8 and A3 slots behind one scheduler (the paper's Table III
/// comparison pair) serving the same bursty bounded-Pareto demand under
/// the same per-accelerator KV budget — the first end-to-end serving
/// reproduction of the cross-accelerator comparison — and the
/// shared-prefix caching scenarios: a system-prompt + multi-turn trace
/// served with and without the paged ref-counted KV block cache at the
/// same budget (cache hits shrink both prefill compute and charged
/// admission bytes), and a tiered-KV sweep: the same trace family with
/// a system-prompt pool that oversubscribes the hot budget, served flat
/// and with far-memory DRAM cold tiers of growing capacity — the
/// hit-rate vs migration-traffic curve. Reports TTFT / ITL
/// percentiles, goodput under the SLO, per-accelerator utilization,
/// preemption/recompute overhead, and KV occupancy, and verifies the
/// determinism contract on the spot: per-request results are
/// bit-identical across host thread counts {1, 4}, and per-request
/// *service* results (cycles, energy, KV trajectory) are bit-identical
/// across shard counts.
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>

#include "accel/spatten_accelerator.hpp"
#include "baselines/baseline_backends.hpp"
#include "bench_util.hpp"
#include "serve/continuous_batch_scheduler.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Continuous-batching serving",
           "64-request Poisson trace on 1/2/4 accelerators, "
           "iteration-level scheduling with cascade-pruned decode KV");

    ArrivalTraceConfig tc;
    tc.num_requests = 64;
    tc.mean_interarrival_s = 0.5e-3;
    tc.seed = 0x5eed;
    const auto trace = generatePoissonTrace(tc);

    std::printf("%zu requests, mean interarrival %.2f ms, prompts "
                "%zu-%zu, outputs %zu-%zu\n\n",
                trace.size(), tc.mean_interarrival_s * 1e3, tc.min_prompt,
                tc.max_prompt, tc.min_output, tc.max_output);
    std::printf("%-7s %10s %10s %10s %10s %9s %9s %9s\n", "accels",
                "ttft p50", "ttft p99", "itl p50", "itl p99", "goodput",
                "util", "makespan");
    std::printf("%-7s %10s %10s %10s %10s %9s %9s %9s\n", "", "(ms)",
                "(ms)", "(us)", "(us)", "(req/s)", "(mean)", "(ms)");
    rule();

    std::vector<BenchRecord> records;
    ServeReport single_accel;
    for (const std::size_t accels : {1u, 2u, 4u}) {
        ContinuousBatchConfig sc;
        sc.num_accelerators = accels;
        sc.max_active = 8;
        sc.slo_ttft_s = 25e-3;
        sc.slo_itl_s = 2e-3;

        // Bit-identity across host thread counts: the full report —
        // every timestamp and per-request result — must match.
        sc.num_threads = 1;
        const ServeReport r1 =
            ContinuousBatchScheduler(SpAttenConfig{}, sc).run(trace);
        sc.num_threads = 4;
        const ServeReport r4 =
            ContinuousBatchScheduler(SpAttenConfig{}, sc).run(trace);
        for (std::size_t i = 0; i < trace.size(); ++i) {
            const ServedRequest &a = r1.requests[i], &b = r4.requests[i];
            if (a.sim.cycles != b.sim.cycles ||
                a.sim.seconds != b.sim.seconds ||
                a.finish_s != b.finish_s ||
                a.first_token_s != b.first_token_s ||
                a.token_times_s != b.token_times_s ||
                a.kv_trace != b.kv_trace) {
                std::printf("DETERMINISM VIOLATION (threads) at request "
                            "%zu, %zu accels\n",
                            i, accels);
                return 1;
            }
        }
        // Service results are placement-independent: bit-identical
        // across shard counts (queueing metrics legitimately differ).
        if (accels == 1) {
            single_accel = r1;
        } else {
            for (std::size_t i = 0; i < trace.size(); ++i) {
                const ServedRequest& a = single_accel.requests[i];
                const ServedRequest& b = r1.requests[i];
                if (a.sim.cycles != b.sim.cycles ||
                    a.sim.dram_bytes != b.sim.dram_bytes ||
                    a.service_seconds != b.service_seconds ||
                    a.kv_trace != b.kv_trace) {
                    std::printf("DETERMINISM VIOLATION (shards) at "
                                "request %zu, %zu accels\n",
                                i, accels);
                    return 1;
                }
            }
        }

        double util = 0;
        for (double u : r1.accel_util)
            util += u;
        util /= static_cast<double>(accels);
        std::printf("%-7zu %10.2f %10.2f %10.1f %10.1f %9.0f %9.2f "
                    "%9.2f\n",
                    accels, r1.ttft_p50_s * 1e3, r1.ttft_p99_s * 1e3,
                    r1.itl_p50_s * 1e6, r1.itl_p99_s * 1e6,
                    r1.goodput_rps, util, r1.makespan_s * 1e3);
        records.push_back(recordFromServe(
            "poisson64-accel" + std::to_string(accels), r1));
    }
    rule();
    std::printf("All thread and shard counts produced bit-identical "
                "per-request results.\n");

    // ---- Memory pressure: same demand, KV budget 1.25x the worst
    // single request, with and without cascade pruning ----
    std::printf("\nMemory-pressure scenarios (KV budget = 1.25x worst "
                "request, 4-token blocks)\n");
    std::printf("%-16s %8s %9s %10s %8s %9s %10s\n", "scenario",
                "preempt", "recomp", "peak conc", "kv peak", "kv mean",
                "ttft p99");
    std::printf("%-16s %8s %9s %10s %8s %9s %10s\n", "", "", "(tok)",
                "(reqs)", "(MiB)", "(MiB)", "(ms)");
    rule();

    ArrivalTraceConfig dense_tc = tc;
    dense_tc.policy = PruningPolicy::disabled();
    dense_tc.min_output = 16;
    dense_tc.max_output = 32;
    const auto dense_trace = generatePoissonTrace(dense_tc);
    ArrivalTraceConfig pruned_tc = dense_tc;
    pruned_tc.policy = PruningPolicy{};
    const auto pruned_trace = generatePoissonTrace(pruned_tc);

    ContinuousBatchConfig mem_sc;
    mem_sc.max_active = 8;
    mem_sc.slo_ttft_s = 25e-3;
    mem_sc.kv_block_tokens = 4;
    mem_sc.kv_capacity_bytes =
        kvBudgetForWorstRequest(dense_trace, 1.25, mem_sc);

    const auto showMem = [&](const char* name, const ServeReport& r) {
        std::printf("%-16s %8zu %9zu %10zu %8.1f %9.1f %10.2f\n", name,
                    r.preemptions, r.recompute_tokens,
                    r.peak_concurrency,
                    static_cast<double>(r.kv_peak_bytes[0]) /
                        (1024.0 * 1024.0),
                    r.kv_mean_bytes[0] / (1024.0 * 1024.0),
                    r.ttft_p99_s * 1e3);
    };
    const ServeReport dense =
        ContinuousBatchScheduler(SpAttenConfig{}, mem_sc)
            .run(dense_trace);
    const ServeReport pruned =
        ContinuousBatchScheduler(SpAttenConfig{}, mem_sc)
            .run(pruned_trace);
    showMem("mempress-dense", dense);
    showMem("mempress-pruned", pruned);
    if (dense.preemptions < 1) {
        std::printf("FAIL: the capped dense scenario must preempt\n");
        return 1;
    }
    if (pruned.peak_concurrency <= dense.peak_concurrency) {
        std::printf("FAIL: cascade pruning must admit strictly higher "
                    "concurrency under the same KV budget\n");
        return 1;
    }
    std::printf("cascade pruning raised admissible concurrency %zu -> "
                "%zu under the same budget\n",
                dense.peak_concurrency, pruned.peak_concurrency);
    records.push_back(recordFromServe("mempress-dense", dense));
    records.push_back(recordFromServe("mempress-pruned", pruned));

    // ---- Bursty heavy-tailed demand served priority-first under the
    // same capped budget ----
    ArrivalTraceConfig burst_tc = pruned_tc;
    burst_tc.process = ArrivalProcess::OnOffBurst;
    burst_tc.burst_on_mean_s = 2e-3;
    burst_tc.burst_off_mean_s = 15e-3;
    burst_tc.prompt_dist = PromptLengthDist::BoundedPareto;
    burst_tc.pareto_alpha = 1.2;
    burst_tc.priority_levels = 3;
    const auto burst_trace = generateArrivalTrace(burst_tc);
    ContinuousBatchConfig burst_sc = mem_sc;
    burst_sc.queue = QueuePolicy::Priority;
    // Budget sized from the trace actually served: the Pareto draws
    // come from a different PRNG stream than the dense trace's.
    burst_sc.kv_capacity_bytes =
        kvBudgetForWorstRequest(burst_trace, 1.25, burst_sc);
    const ServeReport burst =
        ContinuousBatchScheduler(SpAttenConfig{}, burst_sc)
            .run(burst_trace);
    showMem("burst-priority", burst);
    records.push_back(recordFromServe("burst-priority", burst));

    // ---- Chunked prefill: the same bursty bounded-Pareto demand at
    // the same 1.25x-worst KV budget, with the prompt pass split into
    // scheduler-visible chunks (Sarathi-style stall-free batching).
    // The monolithic run is the chunk-size = infinity endpoint of the
    // curve and is bit-identical to burst-priority above (the knobs
    // default off). Smaller chunks cap how long one admission stalls
    // every resident decoder's next token, so the ITL tail tightens
    // as the chunk shrinks. ----
    std::printf("\nChunked prefill sweep (burst-priority demand, same "
                "1.25x KV budget)\n");
    std::printf("%-18s %9s %9s %9s %9s %10s %10s\n", "chunk (tok)",
                "itl p50", "itl p99", "ttft p50", "ttft p99",
                "qdelay p99", "makespan");
    std::printf("%-18s %9s %9s %9s %9s %10s %10s\n", "", "(us)", "(us)",
                "(ms)", "(ms)", "(ms)", "(ms)");
    rule();

    const auto runChunked = [&](std::size_t chunk_tokens) {
        ContinuousBatchConfig sc = burst_sc;
        sc.prefill_chunk_tokens = chunk_tokens;
        return ContinuousBatchScheduler(SpAttenConfig{}, sc)
            .run(burst_trace);
    };
    const auto showChunk = [&](const char* name, const ServeReport& r) {
        std::printf("%-18s %9.1f %9.1f %9.2f %9.2f %10.2f %10.2f\n",
                    name, r.itl_p50_s * 1e6, r.itl_p99_s * 1e6,
                    r.ttft_p50_s * 1e3, r.ttft_p99_s * 1e3,
                    r.queue_delay_p99_s * 1e3, r.makespan_s * 1e3);
    };
    showChunk("monolithic", burst);
    records.push_back(recordFromServe("chunked-prefill-mono", burst));
    double best_chunked_itl_p99 =
        std::numeric_limits<double>::infinity();
    for (const std::size_t chunk : {256u, 128u, 64u, 32u}) {
        const ServeReport r = runChunked(chunk);
        showChunk(std::to_string(chunk).c_str(), r);
        records.push_back(recordFromServe(
            "chunked-prefill-" + std::to_string(chunk), r));
        best_chunked_itl_p99 = std::min(best_chunked_itl_p99,
                                        r.itl_p99_s);
        if (r.total_tokens != burst.total_tokens) {
            std::printf("FAIL: chunked prefill must serve the same "
                        "tokens as the monolithic run\n");
            return 1;
        }
    }
    rule();
    // The claim this sweep exists to pin: splitting prefill improves
    // the ITL tail at equal KV budget under bursty demand.
    if (best_chunked_itl_p99 >= burst.itl_p99_s) {
        std::printf("FAIL: chunked prefill must improve ITL p99 vs "
                    "monolithic prefill at equal KV budget\n");
        return 1;
    }
    std::printf("chunked prefill tightened ITL p99 %.1f -> %.1f us at "
                "the same KV budget (best chunk size of the sweep).\n",
                burst.itl_p99_s * 1e6, best_chunked_itl_p99 * 1e6);

    // ---- Heterogeneous fleets: SpAtten-1/8 and A3 slots (the paper's
    // normalized Table III pair: 128 multipliers, 64 GB/s each) behind
    // one scheduler, serving the same bursty ON/OFF + bounded-Pareto
    // demand under the same per-accelerator KV budget ----
    std::printf("\nHeterogeneous fleets (bursty bounded-Pareto trace, "
                "KV budget = 1.25x worst request per accel)\n");
    std::printf("%-18s %9s %9s %9s %8s %8s %10s  %s\n", "fleet",
                "ttft p50", "ttft p99", "itl p99", "goodput", "preempt",
                "peak conc", "requests/slot");
    std::printf("%-18s %9s %9s %9s %8s %8s %10s\n", "", "(ms)", "(ms)",
                "(us)", "(req/s)", "", "(reqs)");
    rule();

    // Denser bursts than the priority scenario: ~100 arrivals per ON
    // period, so every fleet carries a standing backlog during a burst
    // and the KV pool — not the demand — limits concurrency.
    ArrivalTraceConfig fleet_tc = burst_tc;
    fleet_tc.priority_levels = 1;
    fleet_tc.mean_interarrival_s = 0.05e-3;
    fleet_tc.burst_on_mean_s = 5e-3;
    fleet_tc.burst_off_mean_s = 20e-3;
    const auto fleet_trace = generateArrivalTrace(fleet_tc);

    const auto spatten8 =
        std::make_shared<const SpAttenAccelerator>(SpAttenConfig::eighth());
    const auto a3 = std::make_shared<const A3Backend>();

    ContinuousBatchConfig fleet_sc;
    fleet_sc.max_active = 8;
    fleet_sc.slo_ttft_s = 25e-3;
    fleet_sc.slo_itl_s = 4e-3;
    fleet_sc.kv_block_tokens = 4;
    fleet_sc.shard = ShardPolicy::LeastLoaded;
    fleet_sc.kv_capacity_bytes =
        kvBudgetForWorstRequest(fleet_trace, 1.25, fleet_sc);

    const auto runFleet = [&](const AcceleratorFleet& fleet,
                              ShardPolicy shard) {
        ContinuousBatchConfig sc = fleet_sc;
        sc.shard = shard;
        return ContinuousBatchScheduler(fleet, sc).run(fleet_trace);
    };
    const auto showFleet = [&](const char* name, const ServeReport& r) {
        std::printf("%-18s %9.2f %9.2f %9.1f %8.0f %8zu %10zu  ", name,
                    r.ttft_p50_s * 1e3, r.ttft_p99_s * 1e3,
                    r.itl_p99_s * 1e6, r.goodput_rps, r.preemptions,
                    r.peak_concurrency);
        for (std::size_t a = 0; a < r.accel_names.size(); ++a)
            std::printf("%s%s:%zu", a ? " " : "",
                        r.accel_names[a].c_str(), r.accel_requests[a]);
        std::printf("\n");
    };

    const ServeReport f_spatten =
        runFleet(AcceleratorFleet(4, spatten8), ShardPolicy::LeastLoaded);
    const ServeReport f_a3 =
        runFleet(AcceleratorFleet(4, a3), ShardPolicy::LeastLoaded);
    const AcceleratorFleet mixed{spatten8, spatten8, a3, a3};
    const ServeReport f_mixed_ll =
        runFleet(mixed, ShardPolicy::LeastLoaded);
    const ServeReport f_mixed_cap =
        runFleet(mixed, ShardPolicy::CapabilityAware);

    showFleet("4xspatten8", f_spatten);
    showFleet("4xa3", f_a3);
    showFleet("2xsp8+2xa3-ll", f_mixed_ll);
    showFleet("2xsp8+2xa3-cap", f_mixed_cap);
    rule();

    // The cross-accelerator claims this section exists to pin: under
    // the same per-accel KV budget, cascade pruning admits strictly
    // more concurrent residents and converts it into goodput.
    if (f_spatten.peak_concurrency <= f_a3.peak_concurrency) {
        std::printf("FAIL: the SpAtten fleet must admit higher "
                    "concurrency than the dense-KV A3 fleet under the "
                    "same budget\n");
        return 1;
    }
    if (f_spatten.goodput_rps <= f_a3.goodput_rps) {
        std::printf("FAIL: the SpAtten fleet must out-goodput the A3 "
                    "fleet\n");
        return 1;
    }
    if (f_mixed_ll.goodput_rps <= f_a3.goodput_rps) {
        std::printf("FAIL: adding SpAtten slots to an A3 fleet must "
                    "raise goodput\n");
        return 1;
    }
    for (std::size_t a = 0; a < mixed.size(); ++a) {
        const bool pruner = mixed[a]->capabilities().cascade_pruning;
        if (!pruner && f_mixed_cap.accel_requests[a] > 0) {
            // Long prompts must never land on a dense-KV slot under
            // capability-aware placement. requests[] is in trace
            // *position* order (ids need not be dense), so pair the
            // report and the trace by position.
            for (std::size_t i = 0; i < f_mixed_cap.requests.size();
                 ++i) {
                const ServedRequest& req = f_mixed_cap.requests[i];
                if (req.accel == static_cast<int>(a) &&
                    fleet_trace[i].workload.summarize_len >=
                        fleet_sc.long_prompt_threshold) {
                    std::printf("FAIL: long prompt %zu landed on "
                                "dense-KV slot %zu under "
                                "capability-aware placement\n",
                                req.id, a);
                    return 1;
                }
            }
        }
    }
    std::printf("same budget: SpAtten fleet admits %zu vs A3's %zu "
                "concurrent residents and serves %.0f vs %.0f req/s "
                "goodput; capability-aware mixed fleet keeps every "
                "long prompt on a pruning slot.\n",
                f_spatten.peak_concurrency, f_a3.peak_concurrency,
                f_spatten.goodput_rps, f_a3.goodput_rps);

    records.push_back(recordFromServe("fleet-4xspatten8", f_spatten));
    records.push_back(recordFromServe("fleet-4xa3", f_a3));
    records.push_back(recordFromServe("fleet-2xsp8+2xa3-ll", f_mixed_ll));
    records.push_back(
        recordFromServe("fleet-2xsp8+2xa3-cap", f_mixed_cap));

    // ---- Shared-prefix caching: system-prompt pools + multi-turn
    // follow-ups served with and without the paged prefix cache, same
    // KV budget (1.25x the worst request) — the regime where thousands
    // of requests re-send the same context and paged ref-counted
    // blocks turn it into admission headroom and skipped prefill ----
    std::printf("\nShared-prefix caching (2 system prompts x 192 tok, "
                "60%% follow-up turns, KV budget = 1.25x worst)\n");
    std::printf("%-18s %9s %9s %10s %8s %8s %10s %10s\n", "scenario",
                "ttft p50", "ttft p99", "peak conc", "hits",
                "cached", "shared", "preempt");
    std::printf("%-18s %9s %9s %10s %8s %8s %10s %10s\n", "", "(ms)",
                "(ms)", "(reqs)", "", "(tok)", "(MiB)", "");
    rule();

    SharedPrefixTraceConfig sp;
    sp.base = tc;
    sp.base.policy = PruningPolicy::disabled();
    sp.base.mean_interarrival_s = 0.2e-3;
    sp.base.min_output = 16;
    sp.base.max_output = 32;
    sp.num_system_prompts = 2;
    sp.system_prompt_tokens = 192;
    sp.followup_prob = 0.6;
    const auto sp_trace = generateSharedPrefixTrace(sp);

    ContinuousBatchConfig cache_sc;
    cache_sc.max_active = 16;
    cache_sc.slo_ttft_s = 25e-3;
    cache_sc.kv_block_tokens = 16;
    cache_sc.kv_capacity_bytes =
        kvBudgetForWorstRequest(sp_trace, 1.25, cache_sc);

    const auto runCache = [&](bool enabled) {
        ContinuousBatchConfig sc = cache_sc;
        sc.enable_prefix_caching = enabled;
        return ContinuousBatchScheduler(SpAttenConfig{}, sc)
            .run(sp_trace);
    };
    const auto showCache = [&](const char* name, const ServeReport& r) {
        std::printf("%-18s %9.2f %9.2f %10zu %8zu %8zu %10.1f %10zu\n",
                    name, r.ttft_p50_s * 1e3, r.ttft_p99_s * 1e3,
                    r.peak_concurrency, r.prefix_cache_hits,
                    r.prefix_cached_tokens,
                    static_cast<double>(r.prefix_shared_bytes) /
                        (1024.0 * 1024.0),
                    r.preemptions);
    };
    const ServeReport cache_off = runCache(false);
    const ServeReport cache_on = runCache(true);
    showCache("prefix-cache-off", cache_off);
    showCache("prefix-cache-on", cache_on);
    rule();

    // The acceptance claims this section exists to pin: at the same
    // KV budget, prefix caching strictly improves TTFT p50 and
    // admissible concurrency.
    if (cache_on.prefix_cache_hits == 0) {
        std::printf("FAIL: the shared-prefix trace must produce cache "
                    "hits\n");
        return 1;
    }
    if (cache_on.ttft_p50_s >= cache_off.ttft_p50_s) {
        std::printf("FAIL: prefix caching must strictly improve TTFT "
                    "p50 at equal KV budget\n");
        return 1;
    }
    if (cache_on.peak_concurrency <= cache_off.peak_concurrency) {
        std::printf("FAIL: prefix caching must strictly raise "
                    "admissible concurrency at equal KV budget\n");
        return 1;
    }
    std::printf("prefix caching: ttft p50 %.2f -> %.2f ms, admissible "
                "concurrency %zu -> %zu, %zu/%zu admissions hit, "
                "%.1f MiB KV mapped copy-free.\n",
                cache_off.ttft_p50_s * 1e3, cache_on.ttft_p50_s * 1e3,
                cache_off.peak_concurrency, cache_on.peak_concurrency,
                cache_on.prefix_cache_hits, sp_trace.size(),
                static_cast<double>(cache_on.prefix_shared_bytes) /
                    (1024.0 * 1024.0));
    records.push_back(recordFromServe("prefix-cache-off", cache_off));
    records.push_back(recordFromServe("prefix-cache-on", cache_on));

    // ---- Tiered KV memory: flat (HBM-only) vs HBM + far-memory DRAM
    // cold tier, same HBM budget. A system-prompt *pool* (8 distinct
    // prefixes) oversubscribes the 1.25x-worst hot budget, so the flat
    // pool keeps dropping cold prefixes before their next re-use; the
    // tiered pool demotes them to DRAM and promotes on re-reference,
    // trading migration traffic (and a promotion stall on the prefill
    // timeline) for hit rate — the Hybrid2-style hit-rate vs
    // migration-traffic curve, one point per DRAM capacity ----
    std::printf("\nTiered KV (8 system prompts x 192 tok, 50%% "
                "follow-ups, HBM budget = 1.25x worst, DRAM sweep)\n");
    std::printf("%-18s %8s %8s %9s %9s %8s %8s %8s %9s\n", "scenario",
                "hits", "cached", "ttft p50", "migrated", "demoted",
                "promoted", "evicted", "stall");
    std::printf("%-18s %8s %8s %9s %9s %8s %8s %8s %9s\n", "", "",
                "(tok)", "(ms)", "(MiB)", "(blk)", "(blk)", "(blk)",
                "(ms)");
    rule();

    SharedPrefixTraceConfig tsp = sp;
    tsp.num_system_prompts = 8;
    tsp.followup_prob = 0.5;
    const auto tier_trace = generateSharedPrefixTrace(tsp);

    ContinuousBatchConfig tier_sc = cache_sc;
    tier_sc.enable_prefix_caching = true;
    tier_sc.kv_capacity_bytes =
        kvBudgetForWorstRequest(tier_trace, 1.25, tier_sc);

    const auto runTiered = [&](double dram_mib) {
        ContinuousBatchConfig sc = tier_sc;
        sc.far_memory.capacity_gb = dram_mib / 1024.0;
        return ContinuousBatchScheduler(SpAttenConfig{}, sc)
            .run(tier_trace);
    };
    struct TierPoint
    {
        const char* name;
        double dram_mib;
    };
    const TierPoint tier_points[] = {{"tiered-kv-flat", 0.0},
                                     {"tiered-kv-dram16m", 16.0},
                                     {"tiered-kv-dram64m", 64.0},
                                     {"tiered-kv-dram256m", 256.0}};
    std::vector<ServeReport> tier_reports;
    for (const TierPoint& p : tier_points) {
        const ServeReport r = runTiered(p.dram_mib);
        std::printf("%-18s %8zu %8zu %9.2f %9.1f %8zu %8zu %8zu %9.3f\n",
                    p.name, r.prefix_cache_hits, r.prefix_cached_tokens,
                    r.ttft_p50_s * 1e3,
                    static_cast<double>(r.kv_migrated_bytes) /
                        (1024.0 * 1024.0),
                    r.kv_demoted_blocks, r.kv_promoted_blocks,
                    r.kv_evicted_blocks, r.promotion_stall_s * 1e3);
        records.push_back(recordFromServe(p.name, r));
        tier_reports.push_back(r);
    }
    rule();

    const ServeReport& tier_flat = tier_reports.front();
    const ServeReport& tier_best = tier_reports.back();
    // The acceptance claims this sweep exists to pin: at the same HBM
    // budget the tiered pool serves strictly more cached prefix tokens
    // than the flat pool, and pays for them with non-zero, reported
    // migration traffic in both directions.
    if (tier_flat.kv_migrated_bytes != 0 ||
        tier_flat.kv_demoted_blocks != 0) {
        std::printf("FAIL: the flat (DRAM=0) pool must not migrate\n");
        return 1;
    }
    if (tier_best.prefix_cached_tokens <=
        tier_flat.prefix_cached_tokens) {
        std::printf("FAIL: tiering must raise cached prefix tokens at "
                    "equal HBM budget\n");
        return 1;
    }
    if (tier_best.kv_demoted_blocks == 0 ||
        tier_best.kv_promoted_blocks == 0 ||
        tier_best.kv_migrated_bytes == 0) {
        std::printf("FAIL: the tiered run must report migrations in "
                    "both directions\n");
        return 1;
    }
    if (tier_best.promotion_stall_s <= 0 ||
        tier_best.migration_energy_j <= 0) {
        std::printf("FAIL: migrations must cost reported time and "
                    "energy\n");
        return 1;
    }
    // Determinism contract extends to tiering: the migration decisions
    // are the coordinator's, so the full report is thread-independent.
    {
        ContinuousBatchConfig sc = tier_sc;
        sc.far_memory.capacity_gb = tier_points[2].dram_mib / 1024.0;
        sc.num_threads = 1;
        const ServeReport r1 =
            ContinuousBatchScheduler(SpAttenConfig{}, sc)
                .run(tier_trace);
        sc.num_threads = 4;
        const ServeReport r4 =
            ContinuousBatchScheduler(SpAttenConfig{}, sc)
                .run(tier_trace);
        for (std::size_t i = 0; i < tier_trace.size(); ++i) {
            if (r1.requests[i].finish_s != r4.requests[i].finish_s ||
                r1.requests[i].token_times_s !=
                    r4.requests[i].token_times_s) {
                std::printf("DETERMINISM VIOLATION (threads) in the "
                            "tiered-KV scenario at request %zu\n",
                            i);
                return 1;
            }
        }
        if (r1.kv_migrated_bytes != r4.kv_migrated_bytes ||
            r1.promotion_stall_s != r4.promotion_stall_s) {
            std::printf("DETERMINISM VIOLATION (threads) in tiered-KV "
                        "migration accounting\n");
            return 1;
        }
    }
    const double hit_rate = [&](const ServeReport& r) {
        return 100.0 * static_cast<double>(r.prefix_cache_hits) /
               static_cast<double>(tier_trace.size());
    }(tier_best);
    std::printf("tiered KV: cached tokens %zu -> %zu (%.0f hits per "
                "100 requests; re-admissions can hit too), %.1f MiB "
                "migrated, %.3f ms promotion stall, %.3g J migration "
                "energy.\n",
                tier_flat.prefix_cached_tokens,
                tier_best.prefix_cached_tokens, hit_rate,
                static_cast<double>(tier_best.kv_migrated_bytes) /
                    (1024.0 * 1024.0),
                tier_best.promotion_stall_s * 1e3,
                tier_best.migration_energy_j);

    // ---- Day-scale diurnal trace: 1e5 requests whose arrival rate
    // follows a sinusoidal day/night cycle (generateDiurnalTrace),
    // served end to end. This is the scenario the simulator perf work
    // (CSR survivor compaction, HBM fast path, decode-step memo,
    // batched stage-graph evaluation, O(1) FIFO admission) exists to
    // open: it must clear in well under a minute of wallclock. ----
    std::printf("\nDay-scale diurnal trace (1e5 requests, sinusoidal "
                "day/night rate, 4 accelerators)\n");
    rule();

    DiurnalTraceConfig dtc;
    dtc.base.num_requests = 100000;
    // Mean offered load ~80% of the fleet's measured service capacity:
    // the 1.8x peak saturates the fleet (backlog builds through the
    // "day") and the 0.2x trough drains it (the "night"), so the trace
    // actually exercises the load curve instead of one long overload.
    dtc.base.mean_interarrival_s = 100e-6;
    dtc.base.seed = 0xd1a1;
    dtc.base.min_prompt = 64;
    dtc.base.max_prompt = 256;
    dtc.base.min_output = 4;
    dtc.base.max_output = 16;
    dtc.day_s = 2.0; // Compressed day: ~5 cycles over the trace.
    dtc.amplitude = 0.8;
    const auto day_trace = generateDiurnalTrace(dtc);

    ContinuousBatchConfig day_sc;
    day_sc.num_accelerators = 4;
    day_sc.max_active = 16;
    day_sc.slo_ttft_s = 25e-3;
    day_sc.slo_itl_s = 2e-3;

    const auto day_wall0 = std::chrono::steady_clock::now();
    const ServeReport day =
        ContinuousBatchScheduler(SpAttenConfig{}, day_sc).run(day_trace);
    const double day_wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      day_wall0)
            .count();

    std::printf("served %zu requests (%zu tokens) over %.2f simulated "
                "days (%.2f s) in %.1f s wallclock\n",
                day_trace.size(), day.total_tokens,
                day.makespan_s / dtc.day_s, day.makespan_s, day_wall_s);
    std::printf("ttft p50/p99 %.2f/%.2f ms, itl p99 %.1f us, goodput "
                "%.0f req/s, %zu preemptions\n",
                day.ttft_p50_s * 1e3, day.ttft_p99_s * 1e3,
                day.itl_p99_s * 1e6, day.goodput_rps, day.preemptions);
    if (day.total_tokens == 0 ||
        day.requests.size() != day_trace.size()) {
        std::printf("FAIL: the diurnal trace must be served in full\n");
        return 1;
    }
    // The acceptance bar this scenario exists to pin.
    if (day_wall_s >= 60.0) {
        std::printf("FAIL: the 1e5-request diurnal trace must clear in "
                    "< 60 s wallclock (took %.1f s)\n",
                    day_wall_s);
        return 1;
    }
    records.push_back(recordFromServe("diurnal-1e5", day));

    writeBenchJson("serving", records);
    return 0;
}
