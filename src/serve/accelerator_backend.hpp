/**
 * @file
 * The common serving contract every simulated accelerator implements.
 *
 * The paper's headline claims are comparative — SpAtten against A3,
 * MNNFast, and the CPU/GPU platforms — but a comparison under real
 * serving conditions (traffic, KV-memory pressure, preemption) needs
 * every device to speak the same protocol the scheduler drives:
 * admit a request, run its prefill, step its decode loop one token at
 * a time, report its resident KV footprint, and finalize per-request
 * stats. AcceleratorBackend is that protocol. SpAttenAccelerator
 * implements it natively (sessions are cascade-pruning DecodeSessions);
 * the baseline models implement it through dense-KV adapter sessions
 * (baselines/baseline_backends.hpp) with their own cycle/energy models.
 * ContinuousBatchScheduler owns a heterogeneous pool of backends and is
 * oblivious to which device type sits behind each slot.
 *
 * Sessions must be pure functions of (backend config, workload, policy,
 * seed): bit-identical regardless of which scheduler thread or fleet
 * slot drives them. That is what keeps the scheduler's determinism
 * contract (thread-count bit-identity, placement-independent service
 * results) intact across heterogeneous fleets.
 */
#ifndef SPATTEN_SERVE_ACCELERATOR_BACKEND_HPP
#define SPATTEN_SERVE_ACCELERATOR_BACKEND_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "accel/pipeline.hpp"
#include "common/logging.hpp"

namespace spatten {

/**
 * Static capability description of one backend type. The scheduler's
 * capability-aware placement and the README capability matrix both read
 * these bits; they describe the *mechanism*, not a measured outcome.
 */
struct BackendCapabilities
{
    /// Cascade token/head pruning shrinks the resident KV cache across
    /// passes (so a KvPool reservation keeps shrinking after prefill).
    bool cascade_pruning = false;
    /// Progressive MSB/LSB quantization trims DRAM traffic further.
    bool progressive_quant = false;
    /// Any DRAM-traffic savings at all (pruning decided before fetch).
    bool dram_savings = false;
    /// Sessions support prefillChunk(): the prompt pass can be split
    /// into scheduler-visible chunks (Sarathi-style chunked prefill).
    /// Backends without it always prefill monolithically, even when
    /// the scheduler's chunking knobs are on.
    bool chunked_prefill = false;
    /// The device tolerates tiered KV memory (serve/kv_pool.hpp with a
    /// far-memory DRAM cold tier): demoted prefix blocks leave HBM and
    /// re-land bit-identically on promotion, so sessions can extend a
    /// promoted prefix exactly as a never-migrated one. The mechanism
    /// lives in KvPool + the scheduler (not the device model), so every
    /// stock backend supports it; a backend that pinned KV layout to
    /// physical HBM addresses would clear this bit.
    bool tiered_kv = false;
};

/**
 * One in-flight generative request on one backend: prefill once, then
 * one decodeStep() per generated token. The KV accessors feed the
 * serving layer's KvPool; kvLength() is whatever the device actually
 * keeps resident (cascade-pruned survivors on SpAtten, the full dense
 * context on the baselines).
 */
class BackendSession
{
  public:
    virtual ~BackendSession() = default;

    /** Process the prompt; @return simulated seconds of the pass. */
    virtual double prefill() = 0;

    /**
     * Process the prompt when the serving layer's KvPool mapped the
     * first @p cached_prefix_tokens tokens' KV from its shared-prefix
     * cache: the device skips those tokens' prefill compute (their K/V
     * is already resident) and computes only the suffix queries against
     * the full context. Must behave exactly like prefill() when
     * @p cached_prefix_tokens is 0. The default ignores the hint — a
     * backend without prefix-caching support still serves correctly,
     * it just re-computes the shared tokens.
     */
    virtual double prefillWithCachedPrefix(std::size_t cached_prefix_tokens)
    {
        (void)cached_prefix_tokens;
        return prefill();
    }

    /**
     * Process prompt tokens [offset, offset + len) as one chunk of a
     * split prefill (Sarathi-style chunked prefill). Chunks arrive
     * contiguously in order; the session completes its prefill (and
     * flips prefilled()) when the final chunk reaches the end of the
     * prompt. A first chunk at offset > 0 means the serving layer's
     * shared-prefix cache already holds the leading tokens' KV, so the
     * chunk stream starts at the cached boundary — composing with
     * prefillWithCachedPrefix(), which is exactly the one-chunk case.
     * @return simulated seconds of the chunk's pass.
     *
     * The default supports only the degenerate single full chunk
     * (delegating to prefillWithCachedPrefix) and asserts on a partial
     * one; the scheduler only splits prefills on backends whose
     * BackendCapabilities::chunked_prefill bit is set.
     */
    virtual double prefillChunk(std::size_t offset, std::size_t len)
    {
        SPATTEN_ASSERT(offset + len == workload().summarize_len,
                       "backend without chunked_prefill support was "
                       "handed a partial prefill chunk [%zu, %zu)",
                       offset, offset + len);
        return prefillWithCachedPrefix(offset);
    }

    /** Generate one token; @return simulated seconds of the step. */
    virtual double decodeStep() = 0;

    virtual bool prefilled() const = 0;

    /** All generate_len tokens emitted (a 0-token request is done at
     *  prefill). */
    virtual bool done() const = 0;

    /** Resident KV length in tokens after the last pass. */
    virtual std::size_t kvLength() const = 0;

    /** KV length after prefill and after each decode step. */
    virtual const std::vector<std::size_t>& kvTrace() const = 0;

    virtual const WorkloadSpec& workload() const = 0;

    /** Land the per-request totals; call once the session is done()
     *  (or at eviction, to account the wasted incarnation). */
    virtual RunResult finalize() const = 0;
};

/** One accelerator type a serving fleet can be built from. */
class AcceleratorBackend
{
  public:
    virtual ~AcceleratorBackend() = default;

    /** Short identifier ("spatten", "a3", ...) for reports/benches. */
    virtual std::string backendName() const = 0;

    virtual BackendCapabilities capabilities() const = 0;

    /** Device KV-memory capacity (the default KvPool byte budget). */
    virtual std::uint64_t capacityBytes() const = 0;

    /** Storage width of one KV element on this device (bytes). */
    virtual std::size_t kvBytesPerElem() const = 0;

    /** Bytes one token of @p model's KV occupies on this device — the
     *  figure the serving layer's KvPool charges per resident token. */
    std::size_t kvBytesPerToken(const ModelSpec& model) const
    {
        return spatten::kvBytesPerToken(model, kvBytesPerElem());
    }

    /**
     * Open a serving session for one request. Deterministic: the
     * session's behavior is a pure function of (backend config,
     * workload, policy, seed).
     */
    virtual std::unique_ptr<BackendSession>
    makeSession(const WorkloadSpec& workload, const PruningPolicy& policy,
                std::uint64_t request_seed) const = 0;

    /**
     * Advance every session in @p lanes by one decode step, landing
     * lane i's simulated seconds in @p seconds_out[i] (resized to
     * match). Sessions are pure functions of their own state and share
     * nothing, so this is *semantically identical* to calling
     * lanes[i]->decodeStep() serially — which is exactly the default —
     * and results are bit-identical whichever path runs. A backend may
     * override it to traverse its stage graph once per iteration with
     * per-request lanes (SpAttenAccelerator advances all lanes
     * layer-major), amortizing per-step dispatch and buffers; the
     * scheduler routes all-decode iterations through this hook in one
     * call instead of one thread-pool job per resident.
     */
    virtual void stepDecodeBatch(const std::vector<BackendSession*>& lanes,
                                 std::vector<double>& seconds_out) const
    {
        seconds_out.resize(lanes.size());
        for (std::size_t i = 0; i < lanes.size(); ++i)
            seconds_out[i] = lanes[i]->decodeStep();
    }
};

} // namespace spatten

#endif // SPATTEN_SERVE_ACCELERATOR_BACKEND_HPP
