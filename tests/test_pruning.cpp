/// Unit and property tests for top-k selection, cascade token/head pruning
/// and local value pruning.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/prng.hpp"
#include "core/pruning.hpp"

namespace spatten {
namespace {

TEST(TopkKeepOrder, BasicSelection)
{
    const std::vector<float> s{0.6f, 0.1f, 0.5f, 1.2f, 0.6f};
    const auto idx = topkKeepOrder(s, 3);
    // Largest three are 1.2, 0.6, 0.6 -> indices {0, 3, 4} in order.
    ASSERT_EQ(idx.size(), 3u);
    EXPECT_EQ(idx[0], 0u);
    EXPECT_EQ(idx[1], 3u);
    EXPECT_EQ(idx[2], 4u);
}

TEST(TopkKeepOrder, KZero)
{
    EXPECT_TRUE(topkKeepOrder({1.0f, 2.0f}, 0).empty());
}

TEST(TopkKeepOrder, KGreaterThanN)
{
    const auto idx = topkKeepOrder({3.0f, 1.0f}, 10);
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 0u);
    EXPECT_EQ(idx[1], 1u);
}

TEST(TopkKeepOrder, TiesFavorEarlierIndices)
{
    const std::vector<float> s{1.0f, 1.0f, 1.0f, 1.0f};
    const auto idx = topkKeepOrder(s, 2);
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 0u);
    EXPECT_EQ(idx[1], 1u);
}

TEST(TopkKeepOrder, OutputAscending)
{
    Prng p(1);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<float> s(57);
        for (auto& x : s)
            x = static_cast<float>(p.uniform());
        const auto idx = topkKeepOrder(s, 13);
        EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
    }
}

// Property: the selected set's minimum score >= every unselected score.
TEST(TopkKeepOrder, SelectionIsOptimal)
{
    Prng p(2);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 1 + p.below(100);
        const std::size_t k = p.below(n + 1);
        std::vector<float> s(n);
        for (auto& x : s)
            x = static_cast<float>(p.uniform());
        const auto idx = topkKeepOrder(s, k);
        ASSERT_EQ(idx.size(), k);
        std::vector<bool> chosen(n, false);
        float min_chosen = 1e9f;
        for (auto i : idx) {
            chosen[i] = true;
            min_chosen = std::min(min_chosen, s[i]);
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (!chosen[i]) {
                EXPECT_LE(s[i], min_chosen);
            }
        }
    }
}

TEST(CascadeTokenPruner, PruneToCountKeepsHighest)
{
    TokenImportanceAccumulator acc(5);
    acc.accumulateRow({0.1f, 0.5f, 0.05f, 0.3f, 0.05f}, {0, 1, 2, 3, 4});
    CascadeTokenPruner pruner(5);
    const auto& alive = pruner.pruneToCount(acc, 2);
    ASSERT_EQ(alive.size(), 2u);
    EXPECT_EQ(alive[0], 1u);
    EXPECT_EQ(alive[1], 3u);
}

TEST(CascadeTokenPruner, CascadeIsMonotone)
{
    // A token pruned in round 1 must never reappear in round 2, even if
    // its score later grows.
    TokenImportanceAccumulator acc(4);
    acc.accumulateRow({0.4f, 0.3f, 0.2f, 0.1f}, {0, 1, 2, 3});
    CascadeTokenPruner pruner(4);
    pruner.pruneToCount(acc, 3); // prunes token 3
    // Token 3's score shoots up afterwards, but it's dead.
    acc.accumulateRow({0.0f, 0.0f, 0.0f, 100.0f}, {0, 1, 2, 3});
    const auto& alive = pruner.pruneToCount(acc, 2);
    for (auto id : alive)
        EXPECT_NE(id, 3u);
}

TEST(CascadeTokenPruner, RatioNeverKillsEverything)
{
    TokenImportanceAccumulator acc(3);
    acc.accumulateRow({0.3f, 0.3f, 0.4f}, {0, 1, 2});
    CascadeTokenPruner pruner(3);
    const auto& alive = pruner.pruneToRatio(acc, 1.0);
    EXPECT_GE(alive.size(), 1u);
}

TEST(CascadeTokenPruner, ZeroRatioIsNoop)
{
    TokenImportanceAccumulator acc(4);
    CascadeTokenPruner pruner(4);
    const auto& alive = pruner.pruneToRatio(acc, 0.0);
    EXPECT_EQ(alive.size(), 4u);
}

TEST(CascadeTokenPruner, GenerationAddsToken)
{
    TokenImportanceAccumulator acc(2);
    CascadeTokenPruner pruner(2);
    acc.addToken();
    pruner.addToken(2);
    EXPECT_EQ(pruner.aliveCount(), 3u);
    EXPECT_EQ(pruner.alive().back(), 2u);
}

TEST(CascadeHeadPruner, PrunesLowMagnitudeHeads)
{
    HeadImportanceAccumulator acc(4);
    acc.accumulateAbsSum(10.0, 0);
    acc.accumulateAbsSum(1.0, 1);
    acc.accumulateAbsSum(8.0, 2);
    acc.accumulateAbsSum(0.5, 3);
    CascadeHeadPruner pruner(4);
    const auto& alive = pruner.pruneToRatio(acc, 0.5);
    ASSERT_EQ(alive.size(), 2u);
    EXPECT_EQ(alive[0], 0u);
    EXPECT_EQ(alive[1], 2u);
}

TEST(CascadeHeadPruner, CascadeAcrossLayers)
{
    HeadImportanceAccumulator acc(3);
    acc.accumulateAbsSum(3.0, 0);
    acc.accumulateAbsSum(2.0, 1);
    acc.accumulateAbsSum(1.0, 2);
    CascadeHeadPruner pruner(3);
    pruner.pruneToRatio(acc, 0.34); // drops head 2
    EXPECT_EQ(pruner.aliveCount(), 2u);
    acc.accumulateAbsSum(100.0, 2); // too late for head 2
    pruner.pruneToRatio(acc, 0.5);
    ASSERT_EQ(pruner.aliveCount(), 1u);
    EXPECT_EQ(pruner.alive()[0], 0u);
}

TEST(LocalValuePrune, KeepsLargestProbs)
{
    const std::vector<float> prob{0.5f, 0.05f, 0.3f, 0.15f};
    const auto kept = localValuePrune(prob, 0.5);
    ASSERT_EQ(kept.size(), 2u);
    EXPECT_EQ(kept[0], 0u);
    EXPECT_EQ(kept[1], 2u);
}

TEST(LocalValuePrune, ZeroRatioKeepsAll)
{
    const auto kept = localValuePrune({0.25f, 0.25f, 0.5f}, 0.0);
    EXPECT_EQ(kept.size(), 3u);
}

TEST(LocalValuePrune, EmptyRow)
{
    EXPECT_TRUE(localValuePrune({}, 0.5).empty());
}

// Property: pruned mass is always <= kept mass for ratio 0.5 on a
// probability row (we drop the smallest entries).
TEST(LocalValuePrune, DroppedMassIsMinority)
{
    Prng p(3);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t n = 2 + p.below(64);
        std::vector<float> prob(n);
        double sum = 0.0;
        for (auto& x : prob) {
            x = static_cast<float>(p.uniform());
            sum += x;
        }
        for (auto& x : prob)
            x = static_cast<float>(x / sum);
        const auto kept = localValuePrune(prob, 0.5);
        double kept_mass = 0.0;
        for (auto i : kept)
            kept_mass += prob[i];
        EXPECT_GE(kept_mass, 1.0 - kept_mass - 1e-6);
    }
}

} // namespace
} // namespace spatten
