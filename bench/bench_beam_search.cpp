/// §V-B claim: "our techniques can also accelerate the Beam Search case
/// because when a token (and its K, V) is pruned, it will not be used by
/// any beams." This harness runs beam-search generation on a trained
/// copy-LM with and without KV pruning and reports quality (payload copy
/// accuracy, beam score) and the surviving-key fraction (the DRAM-saving
/// proxy), for beam widths 1 and 4.
#include <cstdio>

#include "bench_util.hpp"
#include "nn/generation.hpp"
#include "nn/trainer.hpp"
#include "workload/synthetic_tasks.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Beam search under KV pruning (§V-B)",
           "pruned prompt keys are shared — and skipped — by all beams");

    CopyLmTaskConfig tc;
    tc.payload_len = 4;
    tc.filler_gap = 2;
    CopyLmTask task(tc);
    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 32;
    mc.heads = 4;
    mc.layers = 3;
    mc.ffn_dim = 64;
    mc.max_len = task.seqLen() + 2;
    TransformerModel model(mc);
    std::printf("training copy-LM...\n");
    trainLm(model, task.sample(300), 8);

    const std::size_t sep =
        task.config().num_symbols + task.config().num_fillers + 1;
    const auto eval = [&](std::size_t beam_width, bool prune) {
        double copy_acc = 0.0, keys_frac = 0.0, logprob = 0.0;
        double lsb_frac = 0.0;
        const auto examples = task.sample(30);
        for (const auto& ex : examples) {
            std::vector<std::size_t> prompt, payload;
            bool after = false;
            for (std::size_t id : ex.ids) {
                if (after) {
                    payload.push_back(id);
                } else {
                    prompt.push_back(id);
                    if (id == sep)
                        after = true;
                }
            }
            GenerativeRunner runner(model);
            GenerateOptions opts;
            opts.max_new_tokens = payload.size();
            opts.beam_width = beam_width;
            opts.policy = PruningPolicy::disabled();
            if (prune) {
                opts.policy.token_pruning = true;
                opts.policy.token_avg_ratio = 0.3;
                opts.policy.local_value_pruning = true;
                opts.policy.local_v_ratio = 0.2;
            }
            const auto res = runner.generate(prompt, opts);
            std::size_t correct = 0;
            for (std::size_t i = 0; i < payload.size(); ++i)
                correct += res.tokens[i] == payload[i];
            copy_acc += static_cast<double>(correct) / static_cast<double>(payload.size());
            keys_frac += res.final_keys_frac;
            logprob += res.logprob;
            lsb_frac += res.lsb_fraction;
        }
        const double n = static_cast<double>(examples.size());
        std::printf("%6zu %8s %12.1f%% %12.1f%% %12.2f %11.1f%%\n",
                    beam_width, prune ? "yes" : "no",
                    100.0 * copy_acc / n, 100.0 * keys_frac / n,
                    logprob / n, 100.0 * lsb_frac / n);
    };

    std::printf("\n%6s %8s %13s %13s %12s %12s\n", "beam", "pruned",
                "copy acc", "keys alive", "logprob", "flat rows");
    rule();
    eval(1, false);
    eval(1, true);
    eval(4, false);
    eval(4, true);
    rule();
    std::printf("Expectations: pruning keeps copy accuracy, shrinks the "
                "shared KV cache for every beam, and beam-4 scores are >= "
                "greedy scores. 'flat rows' is the measured fraction of "
                "attention rows that would need an LSB refetch at "
                "threshold 0.1 (paper average: 5.9%%).\n");
    return 0;
}
