#include "serve/continuous_batch_scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <limits>
#include <memory>
#include <numeric>
#include <thread>

#include "accel/spatten_accelerator.hpp"
#include "common/logging.hpp"
#include "energy/energy_model.hpp"
#include "serve/accelerator_backend.hpp"

namespace spatten {

namespace {

/** One in-flight request on one accelerator. */
struct ActiveSession
{
    std::size_t idx = 0; ///< Position in the trace (report index).
    std::uint64_t admit_seq = 0; ///< Global admission order (preemption
                                 ///< tie-break: evict the latest).
    std::size_t cached_prefix = 0; ///< Prompt tokens whose prefill the
                                   ///< shared-prefix cache skips.
    std::size_t prefill_pos = 0;   ///< Prompt tokens processed so far
                                   ///< (starts at cached_prefix; the
                                   ///< chunk stream begins at the
                                   ///< cached-prefix boundary).
    double promote_s = 0; ///< Pending DRAM -> HBM promotion latency:
                          ///< charged to this request's first prompt
                          ///< pass (the promoted prefix must land in
                          ///< HBM before the prefill can extend it).
    std::unique_ptr<BackendSession> session;
};

/** One simulated accelerator's private scheduling state. */
struct AccelState
{
    double clock_s = 0; ///< Simulated time cursor.
    double busy_s = 0;  ///< Time spent serving (vs idle waiting).
    std::vector<ActiveSession> active; ///< In admission order.
    std::deque<std::size_t> queue;     ///< Round-robin private feed.
    KvPool pool;                       ///< KV-capacity accounting.
    double kv_weighted_bytes_s = 0; ///< Integral of occupancy over busy
                                    ///< time (for the mean occupancy).
};

/** One session step to simulate this iteration. */
struct StepJob
{
    BackendSession* session = nullptr;
    std::size_t member = 0; ///< Index into AccelState::active. Not every
                            ///< member gets a job every iteration once
                            ///< chunked prefill defers prompt work, so
                            ///< jobs are no longer parallel to active[].
    bool do_prefill = false;
    bool chunked = false; ///< prefillChunk(offset, len) instead of the
                          ///< monolithic prefillWithCachedPrefix path.
    std::size_t offset = 0; ///< Chunk-only: first prompt token.
    std::size_t len = 0;    ///< Chunk-only: chunk length.
    std::size_t cached_prefix = 0; ///< Monolithic-prefill-only.
    double seconds = 0; ///< Output: simulated step cost.
};

/**
 * Persistent helper-thread pool for the per-iteration session steps.
 *
 * A scheduler run has one iteration per prefill/decode round — hundreds
 * for a modest trace — and each step simulates only microseconds of
 * work, so spawning threads per iteration would cost more than it
 * saves. The pool keeps num_threads-1 helpers parked on a condition
 * variable; run() publishes a job batch (a "generation"), drains it
 * together with the helpers through an atomic cursor, and returns only
 * after every helper has finished the generation (which also makes the
 * next cursor reset race-free). Sessions are independent, each job
 * executes exactly once,
 * and outputs land in caller-fixed job slots, so the result is
 * identical at any thread count — parallelism here is pure wall-clock
 * speedup.
 */
class StepPool
{
  public:
    explicit StepPool(std::size_t num_threads)
    {
        const std::size_t helpers = num_threads > 1 ? num_threads - 1 : 0;
        helpers_.reserve(helpers);
        for (std::size_t i = 0; i < helpers; ++i)
            helpers_.emplace_back([this] { helperLoop(); });
    }

    ~StepPool()
    {
        {
            std::lock_guard<std::mutex> lk(m_);
            stop_ = true;
        }
        wake_cv_.notify_all();
        for (auto& t : helpers_)
            t.join();
    }

    /** Execute every job once; blocks until all are complete. */
    void run(std::vector<StepJob>& jobs)
    {
        if (helpers_.empty() || jobs.size() <= 1) {
            for (auto& job : jobs)
                step(job);
            return;
        }
        {
            std::lock_guard<std::mutex> lk(m_);
            // Every helper finished the previous generation before the
            // previous run() returned, so resetting the shared cursor
            // is race-free.
            jobs_ = &jobs;
            cursor_.store(0, std::memory_order_relaxed);
            done_ = 0;
            ++generation_;
        }
        wake_cv_.notify_all();
        drain(jobs); // The caller is a worker too.
        // Full rendezvous: wait until every helper has drained *this*
        // generation. Waiting merely for parked helpers would let a
        // slow helper that never started the generation park-count as
        // done and then dereference jobs_ after it was reset.
        std::unique_lock<std::mutex> lk(m_);
        idle_cv_.wait(lk, [&] { return done_ == helpers_.size(); });
        jobs_ = nullptr;
    }

  private:
    static void step(StepJob& job)
    {
        if (!job.do_prefill)
            job.seconds = job.session->decodeStep();
        else if (job.chunked)
            job.seconds = job.session->prefillChunk(job.offset, job.len);
        else
            job.seconds =
                job.session->prefillWithCachedPrefix(job.cached_prefix);
    }

    void drain(std::vector<StepJob>& jobs)
    {
        for (;;) {
            const std::size_t i =
                cursor_.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            step(jobs[i]);
        }
    }

    void helperLoop()
    {
        std::uint64_t seen = 0;
        std::unique_lock<std::mutex> lk(m_);
        for (;;) {
            wake_cv_.wait(lk,
                          [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
            std::vector<StepJob>& jobs = *jobs_;
            lk.unlock();
            drain(jobs);
            lk.lock();
            // Completing under the mutex publishes this helper's step
            // results to run()'s post-wait reads.
            ++done_;
            if (done_ == helpers_.size())
                idle_cv_.notify_one();
        }
    }

    std::vector<std::thread> helpers_;
    std::mutex m_;
    std::condition_variable wake_cv_; ///< Helpers wait for a generation.
    std::condition_variable idle_cv_; ///< run() waits for helpers to park.
    std::vector<StepJob>* jobs_ = nullptr;
    std::atomic<std::size_t> cursor_{0};
    std::uint64_t generation_ = 0;
    std::size_t done_ = 0; ///< Helpers finished with this generation.
    bool stop_ = false;
};

} // namespace

std::uint64_t
kvBudgetForWorstRequest(const std::vector<TracedRequest>& trace,
                        double headroom,
                        const ContinuousBatchConfig& sched,
                        std::size_t kv_bytes_per_elem)
{
    const KvPool probe({0, sched.kv_block_tokens, kv_bytes_per_elem});
    std::uint64_t worst = 0;
    for (const TracedRequest& r : trace)
        worst = std::max(worst, probe.bytesForTokens(
                                    r.workload.model,
                                    r.workload.summarize_len +
                                        r.workload.generate_len));
    return static_cast<std::uint64_t>(static_cast<double>(worst) *
                                      headroom);
}

namespace {

/// The homogeneous pool of the legacy constructor: one shared SpAtten
/// backend in every slot (sessions carry all per-request state).
AcceleratorFleet
spattenFleet(const SpAttenConfig& cfg, std::size_t num_accelerators)
{
    SPATTEN_ASSERT(num_accelerators >= 1, "empty accelerator pool");
    return AcceleratorFleet(
        num_accelerators, std::make_shared<const SpAttenAccelerator>(cfg));
}

} // namespace

ContinuousBatchScheduler::ContinuousBatchScheduler(
    SpAttenConfig cfg, ContinuousBatchConfig sched)
    : ContinuousBatchScheduler(spattenFleet(cfg, sched.num_accelerators),
                               sched)
{
}

ContinuousBatchScheduler::ContinuousBatchScheduler(
    AcceleratorFleet fleet, ContinuousBatchConfig sched)
    : fleet_(std::move(fleet)), sched_(sched)
{
    SPATTEN_ASSERT(!fleet_.empty(), "empty accelerator pool");
    for (const auto& backend : fleet_)
        SPATTEN_ASSERT(backend != nullptr, "null backend in fleet");
    sched_.num_accelerators = fleet_.size();
    SPATTEN_ASSERT(sched_.max_active >= 1, "batch width must be >= 1");
    SPATTEN_ASSERT(sched_.kv_block_tokens >= 1, "zero-token KV blocks");
    if (sched_.kv_capacity_bytes == 0) {
        // A fleet of equal-capacity devices keeps the uniform-budget
        // report field meaningful; heterogeneous capacities stay
        // per-slot (ServeReport::accel_kv_capacity_bytes).
        const std::uint64_t first = fleet_.front()->capacityBytes();
        bool uniform = true;
        for (const auto& backend : fleet_)
            uniform = uniform && backend->capacityBytes() == first;
        if (uniform)
            sched_.kv_capacity_bytes = first;
    }
    if (sched_.num_threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        sched_.num_threads = hw > 0 ? hw : 1;
    }
    // A generation never holds more than max_active jobs, so extra
    // helpers would only add rendezvous cost on wide machines.
    sched_.num_threads = std::min(sched_.num_threads, sched_.max_active);
}

ServeReport
ContinuousBatchScheduler::run(const std::vector<TracedRequest>& trace)
{
    const std::size_t n = trace.size();
    const std::size_t num_accels = sched_.num_accelerators;

    // Effective per-slot KV budget: the uniform override when set,
    // otherwise each backend's own device capacity.
    const auto slotBudget = [&](std::size_t a) {
        return sched_.kv_capacity_bytes != 0
                   ? sched_.kv_capacity_bytes
                   : fleet_[a]->capacityBytes();
    };

    ServeReport rep;
    rep.requests.resize(n);
    rep.accel_busy_s.assign(num_accels, 0.0);
    rep.accel_util.assign(num_accels, 0.0);
    rep.accel_requests.assign(num_accels, 0);
    rep.kv_capacity_bytes = sched_.kv_capacity_bytes;
    rep.accel_names.resize(num_accels);
    rep.accel_kv_capacity_bytes.resize(num_accels);
    for (std::size_t a = 0; a < num_accels; ++a) {
        rep.accel_names[a] = fleet_[a]->backendName();
        rep.accel_kv_capacity_bytes[a] = slotBudget(a);
    }
    rep.kv_peak_bytes.assign(num_accels, 0);
    rep.kv_mean_bytes.assign(num_accels, 0.0);
    rep.kv_dram_capacity_bytes = sched_.far_memory.capacityBytes();
    rep.kv_dram_peak_bytes.assign(num_accels, 0);
    if (n == 0)
        return rep;

    for (std::size_t i = 0; i < n; ++i) {
        rep.requests[i].id = trace[i].id;
        rep.requests[i].arrival_s = trace[i].arrival_s;
        rep.requests[i].priority = trace[i].priority;
    }

    // When a request may next be admitted: its arrival until it is
    // first admitted, then — after a preemption — its eviction time, so
    // an idle accelerator with a lagging clock can never re-admit a
    // victim in the simulated past (causality of the event loop).
    std::vector<double> eligible(n);
    for (std::size_t i = 0; i < n; ++i)
        eligible[i] = trace[i].arrival_s;
    // The single queue ordering: by (eligibility, id). Every feed queue
    // keeps this sorted invariant — the initial fill is sorted and
    // preemption re-inserts in order — so the head is always the
    // earliest-eligible entry.
    const auto queuedBefore = [&](std::size_t a, std::size_t b) {
        if (eligible[a] != eligible[b])
            return eligible[a] < eligible[b];
        return trace[a].id < trace[b].id;
    };

    // Canonical admission order: by (arrival, id), independent of the
    // trace vector's ordering, so the schedule is a pure function of the
    // trace's *content*.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), queuedBefore);

    std::vector<AccelState> accels(num_accels);
    for (std::size_t a = 0; a < num_accels; ++a) {
        // A backend whose KV layout cannot migrate (capabilities().
        // tiered_kv false) keeps a single-tier pool even when the
        // fleet config asks for a far-memory tier.
        const std::uint64_t dram_bytes =
            fleet_[a]->capabilities().tiered_kv
                ? sched_.far_memory.capacityBytes()
                : 0;
        accels[a].pool = KvPool({slotBudget(a), sched_.kv_block_tokens,
                                 fleet_[a]->kvBytesPerElem(),
                                 /*prefix_hash_bits=*/64, dram_bytes});
    }

    // ---- Routing classes ----
    // CapabilityAware keeps two shared queues: long prompts wait in a
    // queue only cascade-pruning backends pull from, short prompts in a
    // queue every backend pulls from. With no pruning backend in the
    // fleet every request is short-class (plain LeastLoaded).
    const bool cap_aware = sched_.shard == ShardPolicy::CapabilityAware;
    std::vector<char> slot_prunes(num_accels, 0);
    std::vector<char> slot_chunks(num_accels, 0);
    bool fleet_has_pruner = false;
    for (std::size_t a = 0; a < num_accels; ++a) {
        slot_prunes[a] = fleet_[a]->capabilities().cascade_pruning;
        slot_chunks[a] = fleet_[a]->capabilities().chunked_prefill;
        fleet_has_pruner |= slot_prunes[a] != 0;
    }
    // Chunked prefill is engaged by either knob; with both at their
    // 0 defaults the iteration loop is the legacy monolithic-prefill
    // scheduler, bit for bit.
    const bool chunking_on = sched_.prefill_chunk_tokens > 0 ||
                             sched_.iteration_token_budget > 0;
    const auto isLongClass = [&](std::size_t idx) {
        return cap_aware && fleet_has_pruner &&
               trace[idx].workload.summarize_len >=
                   sched_.long_prompt_threshold;
    };
    // Round-robin pin of each request (by canonical arrival position).
    std::vector<std::size_t> pinned(n, 0);
    for (std::size_t k = 0; k < n; ++k)
        pinned[order[k]] = k % num_accels;
    // Whether accelerator a can ever serve request idx.
    const auto routable = [&](std::size_t a, std::size_t idx) {
        if (sched_.shard == ShardPolicy::RoundRobin)
            return pinned[idx] == a;
        return !isLongClass(idx) || slot_prunes[a] != 0;
    };

    // Forward-progress precondition: a sole resident request can always
    // grow to its worst-case (unpruned) KV on every accelerator that
    // might host it, so preemption never cascades into a stall.
    for (std::size_t a = 0; a < num_accels; ++a) {
        // i is the trace *position* — the index every queue, pin, and
        // class function speaks — not TracedRequest::id, which a
        // filtered or reordered trace need not keep dense.
        for (std::size_t i = 0; i < n; ++i) {
            if (!routable(a, i))
                continue;
            const TracedRequest& req = trace[i];
            const std::uint64_t worst = accels[a].pool.bytesForTokens(
                req.workload.model,
                req.workload.summarize_len + req.workload.generate_len);
            SPATTEN_ASSERT(
                worst <= slotBudget(a),
                "request %zu needs %llu KV bytes, accel %zu (%s) budget "
                "is %llu",
                req.id, static_cast<unsigned long long>(worst), a,
                fleet_[a]->backendName().c_str(),
                static_cast<unsigned long long>(slotBudget(a)));
        }
    }

    constexpr double kInf = std::numeric_limits<double>::infinity();
    // When demand first exists *for each accelerator*: under
    // RoundRobin an accelerator only ever sees its pinned requests, and
    // under CapabilityAware a non-pruning backend only ever sees
    // short-class requests, so each utilization window starts at the
    // earliest arrival routable to that accelerator; under LeastLoaded
    // every accelerator could pull the first arrival of the trace.
    std::vector<double> first_demand(num_accels, kInf);
    std::deque<std::size_t> shared;      ///< Short / default class.
    std::deque<std::size_t> shared_long; ///< CapabilityAware long class.
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t idx = order[k];
        if (sched_.shard == ShardPolicy::RoundRobin)
            accels[k % num_accels].queue.push_back(idx);
        else if (isLongClass(idx))
            shared_long.push_back(idx);
        else
            shared.push_back(idx);
        for (std::size_t a = 0; a < num_accels; ++a)
            if (routable(a, idx))
                first_demand[a] =
                    std::min(first_demand[a], trace[idx].arrival_s);
    }
    // The feed queues an accelerator pulls from, in preference order
    // (ties in eligibility resolve toward the earlier queue). At most
    // two and queried on every event-loop iteration, so a fixed-size
    // view — never an allocation.
    struct QueueList
    {
        std::deque<std::size_t>* q[2];
        std::size_t count;
        std::deque<std::size_t>** begin() { return q; }
        std::deque<std::size_t>** end() { return q + count; }
    };
    const auto feedQueues = [&](std::size_t a) -> QueueList {
        if (sched_.shard == ShardPolicy::RoundRobin)
            return {{&accels[a].queue, nullptr}, 1};
        if (cap_aware && slot_prunes[a] != 0)
            return {{&shared_long, &shared}, 2};
        return {{&shared, nullptr}, 1};
    };
    // The class queue a (preempted) request re-enters.
    const auto homeQueue =
        [&](std::size_t accel_index,
            std::size_t idx) -> std::deque<std::size_t>& {
        if (sched_.shard == ShardPolicy::RoundRobin)
            return accels[accel_index].queue;
        return isLongClass(idx) ? shared_long : shared;
    };

    // Queue-policy admission key: lexicographic (policy primary,
    // eligibility, id) — FIFO is the degenerate constant-primary case,
    // so every policy stays deterministic and starvation-diagnosable.
    // A preempted request re-enters the queue keyed by its eviction
    // time, i.e. FIFO treats it like a fresh arrival.
    const auto admitBefore = [&](std::size_t a, std::size_t b) {
        double pa = 0.0, pb = 0.0;
        switch (sched_.queue) {
        case QueuePolicy::Fifo:
            break;
        case QueuePolicy::Priority:
            pa = -static_cast<double>(trace[a].priority);
            pb = -static_cast<double>(trace[b].priority);
            break;
        case QueuePolicy::ShortestPromptFirst:
            pa = static_cast<double>(trace[a].workload.summarize_len);
            pb = static_cast<double>(trace[b].workload.summarize_len);
            break;
        }
        if (pa != pb)
            return pa < pb;
        return queuedBefore(a, b);
    };

    // The earliest simulated time at which an accelerator can do work:
    // now if it has an active batch, the earliest head eligibility of
    // its feed queues if it is idle, +inf if it has nothing left to do.
    // (Queue policies reorder admission among *eligible* requests only,
    // never the wake-up time.)
    const auto nextEventTime = [&](std::size_t a) {
        if (!accels[a].active.empty())
            return accels[a].clock_s;
        double head = kInf;
        for (const auto* q : feedQueues(a))
            if (!q->empty())
                head = std::min(head, eligible[q->front()]);
        if (head == kInf)
            return kInf;
        return std::max(accels[a].clock_s, head);
    };

    std::size_t finished = 0;
    std::uint64_t admit_seq = 0;   ///< Global admission counter.
    // Residency intervals [admission, finish-or-eviction) in simulated
    // time, across all accelerators and incarnations. peak_concurrency
    // is their maximum overlap — computed by a sweep at the end, since
    // the host processes accelerator iterations in event order, not in
    // simulated-time order, so no running counter samples correctly.
    std::vector<std::pair<double, double>> residency;
    // Work consumed by preempted incarnations before they were evicted:
    // real simulated passes whose outputs were discarded. They count
    // toward the report's totals (the accelerator did burn the cycles,
    // energy, and DRAM traffic) but contribute no useful-work dense
    // reference, so preemption overhead shows up as a lower effective
    // dram_reduction — matching how busy_s already keeps the time.
    double wasted_cycles = 0, wasted_energy_j = 0, wasted_flops = 0;
    double wasted_dram_bytes = 0;

    // Evict active[v] vLLM-recompute-style: KV blocks released, emitted
    // tokens discarded, request re-queued for a fresh admission.
    const auto preempt = [&](std::size_t accel_index, std::size_t v) {
        AccelState& accel = accels[accel_index];
        const std::size_t idx = accel.active[v].idx;
        accel.pool.release(idx);
        // The victim may be mid-prefill: chunked prefill spreads the
        // prompt over iterations, so preemption can strike between
        // chunks. finalize() still accounts the partial pass as wasted
        // work; on re-admission the request recomputes from whatever
        // cached-prefix boundary the KV pool then offers.
        const RunResult w = accel.active[v].session->finalize();
        wasted_cycles += static_cast<double>(w.cycles);
        wasted_energy_j += w.energy.totalJ();
        wasted_flops += w.attention_flops;
        wasted_dram_bytes += w.dram_bytes;
        ServedRequest& r = rep.requests[idx];
        residency.emplace_back(r.admit_s, accel.clock_s);
        ++r.preemptions;
        ++rep.preemptions;
        r.recompute_tokens += r.tokens;
        rep.recompute_tokens += r.tokens;
        r.tokens = 0;
        r.token_times_s.clear();
        r.kv_trace.clear();
        // The timing trail must come from the final incarnation alone:
        // clearing first_token_s here is what makes a re-admitted
        // request's TTFT measure its *served* first token, not the
        // discarded one (pinned by the preemption-TTFT golden test).
        r.first_token_s = -1;
        r.admit_s = -1;
        r.cached_prefix_tokens = 0;
        r.prefill_chunks = 0;
        r.phase = RequestPhase::Queued;
        // Eligible again only from the eviction onward — never before,
        // so no accelerator can re-admit it in the simulated past.
        eligible[idx] = accel.clock_s;
        // Sorted re-insert into the request's class queue preserves the
        // queues' (eligibility, id) order, keeping nextEventTime's
        // head-is-earliest invariant.
        auto& q = homeQueue(accel_index, idx);
        q.insert(std::upper_bound(q.begin(), q.end(), idx, queuedBefore),
                 idx);
        accel.active.erase(accel.active.begin() +
                           static_cast<std::ptrdiff_t>(v));
    };

    // The preemption victim: lowest priority first, latest admission
    // (least sunk cost) within a level.
    const auto pickVictim = [&](const AccelState& accel) {
        std::size_t victim = 0;
        for (std::size_t i = 1; i < accel.active.size(); ++i) {
            const ServedRequest& a = rep.requests[accel.active[i].idx];
            const ServedRequest& b =
                rep.requests[accel.active[victim].idx];
            if (a.priority != b.priority
                    ? a.priority < b.priority
                    : accel.active[i].admit_seq >
                          accel.active[victim].admit_seq)
                victim = i;
        }
        return victim;
    };

    // Resize active[i]'s reservation to @p target tokens, preempting
    // victims until it fits — the shared machinery of the pre-iteration
    // growth phase and the post-step trim (whose copy-on-write can also
    // need bytes). Keeps @p i valid across mid-loop erasures; @return
    // false when active[i] itself was the victim (caller must not ++i).
    // A sole resident always fits: its worst-case KV passes the budget
    // precondition and cold cached blocks are evicted on demand.
    const auto resizeOrPreempt = [&](std::size_t accel_index,
                                     std::size_t& i, std::size_t target,
                                     const char* action) {
        AccelState& accel = accels[accel_index];
        const std::size_t idx = accel.active[i].idx;
        while (!accel.pool.tryResize(idx, trace[idx].workload.model,
                                     target)) {
            SPATTEN_ASSERT(accel.active.size() > 1,
                           "sole request %zu cannot %s", idx, action);
            const std::size_t v = pickVictim(accel);
            const bool self = v == i;
            preempt(accel_index, v);
            if (self)
                return false;
            if (v < i)
                --i;
        }
        return true;
    };

    std::vector<StepJob> jobs;
    std::vector<BackendSession*> batch_lanes;
    std::vector<double> batch_seconds;
    StepPool pool(sched_.num_threads);
    while (finished < n) {
        // ---- Pick the accelerator with the earliest next event ----
        // (ties break to the lowest index, keeping the loop an exact
        // discrete-event simulation: iterations are processed in global
        // simulated-time order, so least-loaded pulls stay FIFO.)
        std::size_t best = num_accels;
        double best_t = kInf;
        for (std::size_t a = 0; a < num_accels; ++a) {
            const double t = nextEventTime(a);
            if (t < best_t) {
                best_t = t;
                best = a;
            }
        }
        SPATTEN_ASSERT(best < num_accels,
                       "scheduler stalled with %zu unfinished requests",
                       n - finished);
        AccelState& accel = accels[best];
        accel.clock_s = std::max(accel.clock_s, best_t);

        // ---- Grow the residents' decode KV reservations for this
        // iteration (each pass appends one token before pruning);
        // under pressure, preempt-and-recompute until the growth fits.
        // This runs BEFORE admission so a newcomer is only admitted
        // into blocks the residents do not need this iteration — never
        // admitted and then evicted untouched in the same breath ----
        for (std::size_t i = 0; i < accel.active.size();) {
            // Mid-prefill residents (chunked prefill defers prompt
            // work across iterations) keep their full-prompt admission
            // reservation untouched until their final chunk lands —
            // they neither grow nor trim here. With chunking off every
            // resident is prefilled: prefill ran in its admission
            // iteration, before this iteration started.
            if (!accel.active[i].session->prefilled()) {
                ++i;
                continue;
            }
            if (resizeOrPreempt(best, i,
                                accel.active[i].session->kvLength() + 1,
                                "grow its KV"))
                ++i;
        }

        // ---- Admit eligible requests into free batch slots, feed
        // queues in preference order, best queue-policy key first;
        // admission blocks (head-of-line, per class queue) when the
        // prompt KV does not fit the pool. A blocked preferred queue
        // also blocks the lower-preference queues, so short-class
        // requests can never starve a blocked long-class head ----
        bool admission_blocked = false;
        // Candidates whose KV reservation failed this iteration. The
        // non-FIFO policies may skip past up to admission_skip_ahead of
        // them to the next-best eligible candidate (a huge head must
        // not starve small requests that would fit); FIFO admission is
        // strict arrival order, so its head-of-line always blocks.
        const std::size_t skip_allowance =
            sched_.queue == QueuePolicy::Fifo ? 0
                                              : sched_.admission_skip_ahead;
        std::vector<std::size_t> failed;
        for (auto* queue_ptr : feedQueues(best)) {
            if (admission_blocked)
                break;
            auto& queue = *queue_ptr;
            while (accel.active.size() < sched_.max_active) {
                constexpr auto npos =
                    std::numeric_limits<std::size_t>::max();
                std::size_t best_pos = npos;
                if (sched_.queue == QueuePolicy::Fifo) {
                    // FIFO fast path: the queue is sorted by exactly the
                    // FIFO admission key (eligibility, id) and the skip
                    // allowance is 0 (the first reservation failure
                    // blocks), so the head is always the best candidate
                    // — O(1) where the scan below is O(eligible
                    // backlog), the difference between minutes and
                    // seconds on a backlogged 1e5-request day trace.
                    if (!queue.empty() &&
                        eligible[queue.front()] <= accel.clock_s)
                        best_pos = 0;
                } else {
                    for (std::size_t p = 0; p < queue.size(); ++p) {
                        // Sorted by eligibility: everything past the
                        // first not-yet-eligible entry is ineligible too.
                        if (eligible[queue[p]] > accel.clock_s)
                            break;
                        if (std::find(failed.begin(), failed.end(),
                                      queue[p]) != failed.end())
                            continue; // Already failed this iteration.
                        if (best_pos == npos ||
                            admitBefore(queue[p], queue[best_pos]))
                            best_pos = p;
                    }
                }
                if (best_pos == npos)
                    break; // Nothing eligible here: try the next queue.
                const std::size_t idx = queue[best_pos];
                const WorkloadSpec& w = trace[idx].workload;
                std::size_t cached_prefix = 0;
                double promote_s = 0.0;
                bool reserved;
                if (sched_.enable_prefix_caching &&
                    !trace[idx].prompt_tokens.empty()) {
                    SPATTEN_ASSERT(trace[idx].prompt_tokens.size() ==
                                       w.summarize_len,
                                   "request %zu prompt content (%zu "
                                   "tokens) disagrees with its length "
                                   "%zu",
                                   trace[idx].id,
                                   trace[idx].prompt_tokens.size(),
                                   w.summarize_len);
                    const KvPool::PrefixReservation pr =
                        accel.pool.tryReservePrefix(
                            idx, w.model, trace[idx].prompt_tokens);
                    reserved = pr.ok;
                    if (pr.ok && pr.cached_tokens > 0) {
                        // The last prompt token is always recomputed
                        // (vLLM semantics), so the compute skip caps
                        // one token short of the prompt.
                        cached_prefix = std::min(pr.cached_tokens,
                                                 w.summarize_len - 1);
                        ++rep.prefix_cache_hits;
                        rep.prefix_cached_tokens += cached_prefix;
                        rep.prefix_shared_bytes += pr.shared_bytes;
                    }
                    // A hit on DRAM-demoted blocks promoted them back
                    // to HBM: the burst's transfer latency lands on
                    // this request's prefill timeline (the demotion
                    // direction is asynchronous — bytes and energy are
                    // metered by the pool, but no one waits on it).
                    if (pr.ok && pr.promoted_bytes > 0)
                        promote_s = sched_.far_memory.transferSeconds(
                            pr.promoted_bytes);
                } else {
                    reserved = accel.pool.tryReserve(idx, w.model,
                                                     w.summarize_len);
                }
                if (!reserved) {
                    failed.push_back(idx);
                    if (failed.size() > skip_allowance) {
                        // Pool full and the skip-ahead bound exhausted:
                        // admission blocked until blocks free up.
                        admission_blocked = true;
                        break;
                    }
                    continue; // Try the next-best eligible candidate.
                }
                queue.erase(queue.begin() +
                            static_cast<std::ptrdiff_t>(best_pos));
                ServedRequest& r = rep.requests[idx];
                r.accel = static_cast<int>(best);
                r.admit_s = accel.clock_s;
                r.cached_prefix_tokens = cached_prefix;
                r.phase = RequestPhase::Prefill;
                accel.active.push_back(
                    {idx, admit_seq++, cached_prefix,
                     /*prefill_pos=*/cached_prefix, promote_s,
                     fleet_[best]->makeSession(trace[idx].workload,
                                               trace[idx].policy,
                                               trace[idx].seed)});
            }
        }
        SPATTEN_ASSERT(!accel.active.empty(),
                       "selected an accelerator with no admissible work");
        const std::uint64_t kv_used = accel.pool.usedBytes();

        // ---- One iteration: decode steps for every prefilled
        // resident, plus prompt work for the un-prefilled ones under
        // the chunking knobs — in parallel on the host, applied in
        // admission order. Prefilled residents form a prefix of
        // active[] (admission appends, and prompt passes are granted
        // in admission order), so "decodes first, then prompt work"
        // IS admission order — with chunking off the job list is
        // exactly the legacy one-job-per-member iteration. ----
        jobs.clear();
        jobs.reserve(accel.active.size());
        std::size_t decode_count = 0;
        for (std::size_t i = 0; i < accel.active.size(); ++i) {
            ActiveSession& m = accel.active[i];
            if (!m.session->prefilled())
                continue;
            jobs.push_back({m.session.get(), i, /*do_prefill=*/false,
                            false, 0, 0, 0, 0.0});
            ++decode_count;
        }
        // Prompt-work grants, in admission order. Each resident decode
        // step above costs one budget token; whole prompts that fit
        // the remainder run as ordinary monolithic prefills, and at
        // most one *partial* chunk is issued per iteration — the
        // Sarathi-style mixed iteration. Budget exhaustion defers the
        // remaining un-prefilled members (their full-prompt KV
        // reservations stay put); decode steps are never deferred, so
        // the batch always advances and prefill work drains as
        // residents finish.
        std::size_t budget_left =
            sched_.iteration_token_budget > 0
                ? (sched_.iteration_token_budget > decode_count
                       ? sched_.iteration_token_budget - decode_count
                       : 0)
                : std::numeric_limits<std::size_t>::max();
        for (std::size_t i = 0; i < accel.active.size(); ++i) {
            ActiveSession& m = accel.active[i];
            if (m.session->prefilled())
                continue;
            const WorkloadSpec& w = trace[m.idx].workload;
            if (w.skip_summarization) {
                // Pre-summarized prompt: the pass is free, so it
                // neither draws budget nor counts as the chunk.
                jobs.push_back({m.session.get(), i, /*do_prefill=*/true,
                                false, 0, 0, m.cached_prefix, 0.0});
                continue;
            }
            const std::size_t remaining = w.summarize_len - m.prefill_pos;
            if (budget_left == 0)
                break;
            std::size_t len = remaining;
            if (chunking_on && slot_chunks[best] &&
                sched_.prefill_chunk_tokens > 0)
                len = std::min(len, sched_.prefill_chunk_tokens);
            if (chunking_on && slot_chunks[best])
                len = std::min(len, budget_left);
            if (len == remaining && m.prefill_pos == m.cached_prefix) {
                // First and only pass: the legacy monolithic path —
                // also what chunk sizes >= the prompt reduce to, and
                // the only shape a non-chunking backend supports.
                jobs.push_back({m.session.get(), i, /*do_prefill=*/true,
                                false, 0, 0, m.cached_prefix, 0.0});
            } else {
                jobs.push_back({m.session.get(), i, /*do_prefill=*/true,
                                /*chunked=*/true, m.prefill_pos, len, 0,
                                0.0});
            }
            budget_left -= std::min(len, budget_left);
            if (len < remaining)
                break; // At most one partial chunk per iteration.
        }
        SPATTEN_ASSERT(!jobs.empty(),
                       "iteration with no work on accelerator %zu", best);
        if (sched_.batched_decode && decode_count == jobs.size()) {
            // All-decode iteration: one batched backend call replaces
            // per-job pool dispatch. Lane order is job order, so the
            // results land in the same slots the pool would fill.
            batch_lanes.clear();
            batch_lanes.reserve(jobs.size());
            for (const StepJob& job : jobs)
                batch_lanes.push_back(job.session);
            fleet_[best]->stepDecodeBatch(batch_lanes, batch_seconds);
            for (std::size_t j = 0; j < jobs.size(); ++j)
                jobs[j].seconds = batch_seconds[j];
        } else {
            pool.run(jobs);
        }

        double t = accel.clock_s;
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            ActiveSession& m = accel.active[jobs[j].member];
            ServedRequest& r = rep.requests[m.idx];
            if (jobs[j].do_prefill && m.promote_s > 0) {
                // The admission's DRAM -> HBM promotion burst completes
                // before the first prompt pass can extend the promoted
                // prefix, so its latency serializes into the iteration
                // like the pass itself. (A member preempted before any
                // prompt pass drops the pending charge with its
                // incarnation — the migration bytes and energy were
                // already metered by the pool.)
                t += m.promote_s;
                r.service_seconds += m.promote_s;
                rep.promotion_stall_s += m.promote_s;
                m.promote_s = 0;
            }
            t += jobs[j].seconds;
            r.service_seconds += jobs[j].seconds;
            if (jobs[j].do_prefill) {
                m.prefill_pos = jobs[j].chunked
                                    ? jobs[j].offset + jobs[j].len
                                    : trace[m.idx].workload.summarize_len;
                ++r.prefill_chunks;
                // TTFT semantics under chunking: the request stays in
                // Prefill until its final chunk lands; its first token
                // is the first decode completion after that.
                if (m.session->prefilled())
                    r.phase = RequestPhase::Decoding;
            } else {
                r.token_times_s.push_back(t);
                ++r.tokens;
                if (r.first_token_s < 0)
                    r.first_token_s = t;
            }
            if (m.session->done()) {
                // A 0-token request's "first token" is its prefill
                // completion (the classification-style response).
                if (r.first_token_s < 0)
                    r.first_token_s = t;
                r.finish_s = t;
                r.phase = RequestPhase::Finished;
                r.kv_trace = m.session->kvTrace();
                r.sim = m.session->finalize();
                accel.pool.release(m.idx);
                residency.emplace_back(r.admit_s, r.finish_s);
                ++finished;
            }
        }
        // Per-member charging audit (mixed prefill/decode iterations):
        // iter_s is the serialized sum of the steps that actually ran —
        // members granted no work this iteration (deferred prefills)
        // contribute nothing, so busy_s equals the sum of the
        // service_seconds it produced, chunked or not (pinned by
        // tests/test_chunked_prefill.cpp). The KV integral charges the
        // full pool occupancy over that span: a deferred member's
        // reservation is resident whether or not it stepped, so
        // occupancy-seconds are *not* per-member prorated.
        const double iter_s = t - accel.clock_s;
        accel.busy_s += iter_s;
        accel.kv_weighted_bytes_s +=
            static_cast<double>(kv_used) * iter_s;
        accel.clock_s = t;
        accel.active.erase(
            std::remove_if(accel.active.begin(), accel.active.end(),
                           [](const ActiveSession& m) {
                               return m.session->done();
                           }),
            accel.active.end());

        // ---- Trim the survivors' reservations to the pass's
        // cascade-pruned count — this is where pruning frees blocks
        // and raises admissible concurrency. A fully private trim is
        // shrink-or-equal and never fails; a trim that shrinks below
        // a shared prefix copy-on-writes the still-needed blocks
        // (serve/kv_pool.hpp), which under pressure needs bytes other
        // residents hold — preempt-and-recompute until it fits, like
        // the pre-iteration growth path. ----
        for (std::size_t i = 0; i < accel.active.size();) {
            // Mid-prefill members hold their full-prompt reservation
            // until the final chunk; the first trim to the pruned
            // survivor count happens right after it (this iteration if
            // the prefill just completed, via prefilled() flipping).
            if (!accel.active[i].session->prefilled()) {
                ++i;
                continue;
            }
            if (resizeOrPreempt(best, i,
                                accel.active[i].session->kvLength(),
                                "copy-on-write its KV"))
                ++i;
        }
    }

    // ---- Aggregate ----
    // peak_concurrency: maximum overlap of the residency intervals in
    // *simulated* time. A departure at time t frees its KV before an
    // admission at the same t can reuse it, so ends sort before starts
    // at equal times (delta -1 < +1).
    {
        std::vector<std::pair<double, int>> events;
        events.reserve(residency.size() * 2);
        for (const auto& [start, end] : residency) {
            events.emplace_back(start, +1);
            events.emplace_back(end, -1);
        }
        std::sort(events.begin(), events.end());
        std::ptrdiff_t depth = 0, peak = 0;
        for (const auto& [time, delta] : events) {
            depth += delta;
            peak = std::max(peak, depth);
        }
        rep.peak_concurrency = static_cast<std::size_t>(peak);
    }

    std::vector<double> ttfts, itls, qdelays;
    ttfts.reserve(n);
    qdelays.reserve(n);
    rep.total_cycles = wasted_cycles;
    rep.total_energy_j = wasted_energy_j;
    rep.total_flops = wasted_flops;
    double dram_bytes = wasted_dram_bytes, dram_bytes_dense = 0;
    for (const ServedRequest& r : rep.requests) {
        rep.makespan_s = std::max(rep.makespan_s, r.finish_s);
        rep.total_tokens += r.tokens;
        ttfts.push_back(r.ttftSeconds());
        qdelays.push_back(r.queueDelaySeconds());
        for (double g : r.interTokenGaps())
            itls.push_back(g);
        rep.total_cycles += static_cast<double>(r.sim.cycles);
        rep.total_energy_j += r.sim.energy.totalJ();
        rep.total_flops += r.sim.attention_flops;
        dram_bytes += r.sim.dram_bytes;
        dram_bytes_dense += r.sim.dram_bytes_dense;
        if (r.accel >= 0)
            ++rep.accel_requests[static_cast<std::size_t>(r.accel)];
        const bool good =
            r.ttftSeconds() <= sched_.slo_ttft_s &&
            (r.tokens < 2 || r.avgItlSeconds() <= sched_.slo_itl_s);
        rep.slo_met += good ? 1 : 0;
    }
    std::sort(ttfts.begin(), ttfts.end());
    std::sort(itls.begin(), itls.end());
    std::sort(qdelays.begin(), qdelays.end());
    rep.ttft_p50_s = sortedQuantile(ttfts, 0.50);
    rep.ttft_p99_s = sortedQuantile(ttfts, 0.99);
    rep.queue_delay_p50_s = sortedQuantile(qdelays, 0.50);
    rep.queue_delay_p99_s = sortedQuantile(qdelays, 0.99);
    rep.itl_p50_s = sortedQuantile(itls, 0.50);
    rep.itl_p99_s = sortedQuantile(itls, 0.99);
    // Per-request ITL tails with equal weight per request — the
    // pooled percentiles above weight every gap equally, so a single
    // long request dominates them (see ServeReport).
    {
        std::vector<double> req_p99s;
        req_p99s.reserve(n);
        for (const ServedRequest& r : rep.requests)
            if (r.tokens >= 2)
                req_p99s.push_back(r.itlP99Seconds());
        std::sort(req_p99s.begin(), req_p99s.end());
        rep.req_itl_p99_p50_s = sortedQuantile(req_p99s, 0.50);
        rep.req_itl_p99_p99_s = sortedQuantile(req_p99s, 0.99);
    }
    if (rep.makespan_s > 0) {
        rep.throughput_rps = static_cast<double>(n) / rep.makespan_s;
        rep.goodput_rps =
            static_cast<double>(rep.slo_met) / rep.makespan_s;
        rep.tokens_per_s =
            static_cast<double>(rep.total_tokens) / rep.makespan_s;
    }
    // Utilization over the window in which work could exist for each
    // accelerator: idle lead-in before its first (routable) arrival is
    // demand absence, not accelerator idleness, so it is excluded from
    // the denominator — per accelerator, since RoundRobin pinning can
    // route an accelerator's first demand long after the trace starts.
    for (std::size_t a = 0; a < num_accels; ++a) {
        const double window_s = rep.makespan_s - first_demand[a];
        rep.accel_busy_s[a] = accels[a].busy_s;
        rep.accel_util[a] =
            window_s > 0 ? accels[a].busy_s / window_s : 0.0;
        rep.kv_peak_bytes[a] = accels[a].pool.peakBytes();
        rep.kv_mean_bytes[a] = accels[a].busy_s > 0
                                   ? accels[a].kv_weighted_bytes_s /
                                         accels[a].busy_s
                                   : 0.0;
        rep.cow_copied_blocks += accels[a].pool.cowCopiedBlocks();
        rep.kv_evicted_blocks += accels[a].pool.evictedBlocks();
        rep.kv_dram_peak_bytes[a] = accels[a].pool.dramPeakBytes();
        rep.kv_demoted_blocks += accels[a].pool.demotedBlocks();
        rep.kv_promoted_blocks += accels[a].pool.promotedBlocks();
        rep.kv_demoted_bytes += accels[a].pool.demotedBytes();
        rep.kv_promoted_bytes += accels[a].pool.promotedBytes();
    }
    rep.kv_migrated_bytes = rep.kv_demoted_bytes + rep.kv_promoted_bytes;
    if (rep.kv_migrated_bytes > 0) {
        // Migration traffic is DRAM <-> HBM block movement the
        // per-session energy reports cannot see; price it with the
        // far-memory bit energy and fold it into the run total.
        ActivityCounts mig;
        mig.migration_bytes =
            static_cast<double>(rep.kv_migrated_bytes);
        rep.migration_energy_j =
            EnergyModel().compute(mig).migration_j;
        rep.total_energy_j += rep.migration_energy_j;
    }
    rep.dram_reduction =
        dram_bytes > 0 ? dram_bytes_dense / dram_bytes : 1.0;
    return rep;
}

} // namespace spatten
