#include "nn/layers.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "tensor/ops.hpp"

namespace spatten {

Linear::Linear(std::string name, std::size_t in, std::size_t out,
               Prng& prng)
    : in_(in),
      out_(out),
      w_(name + ".w",
         Tensor::randn({in, out}, prng, 0.0f,
                       std::sqrt(2.0f / static_cast<float>(in + out)))),
      b_(name + ".b", Tensor({out}))
{
}

Tensor
Linear::forward(const Tensor& x) const
{
    return ops::addRowBias(ops::matmul(x, w_.value), b_.value);
}

Tensor
Linear::backward(const Tensor& x, const Tensor& dy)
{
    SPATTEN_ASSERT(x.dim(0) == dy.dim(0) && dy.dim(1) == out_,
                   "linear backward shape mismatch");
    // dW += x^T dy; db += column sums of dy; dx = dy W^T.
    const std::size_t n = x.dim(0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t k = 0; k < in_; ++k) {
            const float xv = x.at(i, k);
            if (xv == 0.0f)
                continue;
            for (std::size_t j = 0; j < out_; ++j)
                w_.grad.at(k, j) += xv * dy.at(i, j);
        }
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < out_; ++j)
            b_.grad[j] += dy.at(i, j);
    return ops::matmulTransposedB(dy, w_.value);
}

void
Linear::collectParams(std::vector<Param*>& out)
{
    out.push_back(&w_);
    out.push_back(&b_);
}

LayerNorm::LayerNorm(std::string name, std::size_t dim)
    : dim_(dim),
      gamma_(name + ".gamma", Tensor({dim}, 1.0f)),
      beta_(name + ".beta", Tensor({dim}))
{
}

Tensor
LayerNorm::forward(const Tensor& x, Cache& cache) const
{
    SPATTEN_ASSERT(x.ndim() == 2 && x.dim(1) == dim_, "layernorm input %s",
                   x.shapeStr().c_str());
    const std::size_t n = x.dim(0);
    cache.xhat = Tensor({n, dim_});
    cache.inv_std.assign(n, 0.0f);
    Tensor y({n, dim_});
    for (std::size_t i = 0; i < n; ++i) {
        double mean = 0.0;
        for (std::size_t j = 0; j < dim_; ++j)
            mean += x.at(i, j);
        mean /= static_cast<double>(dim_);
        double var = 0.0;
        for (std::size_t j = 0; j < dim_; ++j) {
            const double d = x.at(i, j) - mean;
            var += d * d;
        }
        var /= static_cast<double>(dim_);
        const float inv = static_cast<float>(1.0 / std::sqrt(var + eps_));
        cache.inv_std[i] = inv;
        for (std::size_t j = 0; j < dim_; ++j) {
            const float xh =
                (x.at(i, j) - static_cast<float>(mean)) * inv;
            cache.xhat.at(i, j) = xh;
            y.at(i, j) = xh * gamma_.value[j] + beta_.value[j];
        }
    }
    return y;
}

Tensor
LayerNorm::backward(const Cache& cache, const Tensor& dy)
{
    const std::size_t n = dy.dim(0);
    SPATTEN_ASSERT(dy.dim(1) == dim_ && cache.xhat.dim(0) == n,
                   "layernorm backward shapes");
    Tensor dx({n, dim_});
    const double dinv = 1.0 / static_cast<double>(dim_);
    for (std::size_t i = 0; i < n; ++i) {
        double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
        for (std::size_t j = 0; j < dim_; ++j) {
            const float dxhat = dy.at(i, j) * gamma_.value[j];
            sum_dxhat += dxhat;
            sum_dxhat_xhat += dxhat * cache.xhat.at(i, j);
            gamma_.grad[j] += dy.at(i, j) * cache.xhat.at(i, j);
            beta_.grad[j] += dy.at(i, j);
        }
        for (std::size_t j = 0; j < dim_; ++j) {
            const double dxhat = dy.at(i, j) * gamma_.value[j];
            dx.at(i, j) = static_cast<float>(
                cache.inv_std[i] *
                (dxhat - dinv * sum_dxhat -
                 cache.xhat.at(i, j) * dinv * sum_dxhat_xhat));
        }
    }
    return dx;
}

void
LayerNorm::collectParams(std::vector<Param*>& out)
{
    out.push_back(&gamma_);
    out.push_back(&beta_);
}

Embedding::Embedding(std::string name, std::size_t vocab, std::size_t dim,
                     std::size_t max_len, Prng& prng)
    : vocab_(vocab),
      dim_(dim),
      max_len_(max_len),
      tok_(name + ".tok", Tensor::randn({vocab, dim}, prng, 0.0f, 0.1f)),
      pos_(name + ".pos", Tensor::randn({max_len, dim}, prng, 0.0f, 0.1f))
{
}

Tensor
Embedding::forward(const std::vector<std::size_t>& ids) const
{
    SPATTEN_ASSERT(ids.size() <= max_len_, "sequence %zu exceeds max %zu",
                   ids.size(), max_len_);
    Tensor out({ids.size(), dim_});
    for (std::size_t i = 0; i < ids.size(); ++i) {
        SPATTEN_ASSERT(ids[i] < vocab_, "token id %zu out of vocab %zu",
                       ids[i], vocab_);
        for (std::size_t j = 0; j < dim_; ++j)
            out.at(i, j) =
                tok_.value.at(ids[i], j) + pos_.value.at(i, j);
    }
    return out;
}

Tensor
Embedding::forwardOne(std::size_t id, std::size_t pos) const
{
    SPATTEN_ASSERT(id < vocab_ && pos < max_len_,
                   "token %zu / position %zu out of range", id, pos);
    Tensor out({1, dim_});
    for (std::size_t j = 0; j < dim_; ++j)
        out.at(0, j) = tok_.value.at(id, j) + pos_.value.at(pos, j);
    return out;
}

void
Embedding::backward(const std::vector<std::size_t>& ids, const Tensor& dy)
{
    SPATTEN_ASSERT(dy.dim(0) == ids.size() && dy.dim(1) == dim_,
                   "embedding backward shapes");
    for (std::size_t i = 0; i < ids.size(); ++i)
        for (std::size_t j = 0; j < dim_; ++j) {
            tok_.grad.at(ids[i], j) += dy.at(i, j);
            pos_.grad.at(i, j) += dy.at(i, j);
        }
}

void
Embedding::collectParams(std::vector<Param*>& out)
{
    out.push_back(&tok_);
    out.push_back(&pos_);
}

Tensor
reluForward(const Tensor& x)
{
    return ops::relu(x);
}

Tensor
reluBackward(const Tensor& x, const Tensor& dy)
{
    SPATTEN_ASSERT(x.sameShape(dy), "relu backward shapes");
    Tensor dx(x.shape());
    for (std::size_t i = 0; i < x.numel(); ++i)
        dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
    return dx;
}

double
softmaxCrossEntropy(const Tensor& logits,
                    const std::vector<std::size_t>& labels,
                    Tensor& d_logits)
{
    SPATTEN_ASSERT(logits.ndim() == 2 && logits.dim(0) == labels.size(),
                   "loss shapes: %s vs %zu labels",
                   logits.shapeStr().c_str(), labels.size());
    const std::size_t n = logits.dim(0), c = logits.dim(1);
    const Tensor prob = ops::softmaxRows(logits);
    d_logits = prob;
    double loss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        SPATTEN_ASSERT(labels[i] < c, "label %zu out of %zu", labels[i], c);
        loss -= std::log(
            std::max(prob.at(i, labels[i]), 1e-12f));
        d_logits.at(i, labels[i]) -= 1.0f;
    }
    const float inv_n = 1.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < d_logits.numel(); ++i)
        d_logits[i] *= inv_n;
    return loss / static_cast<double>(n);
}

Tensor
softmaxBackwardRows(const Tensor& prob, const Tensor& dprob)
{
    SPATTEN_ASSERT(prob.sameShape(dprob), "softmax backward shapes");
    const std::size_t n = prob.dim(0), c = prob.dim(1);
    Tensor ds({n, c});
    for (std::size_t i = 0; i < n; ++i) {
        double dot = 0.0;
        for (std::size_t j = 0; j < c; ++j)
            dot += prob.at(i, j) * dprob.at(i, j);
        for (std::size_t j = 0; j < c; ++j)
            ds.at(i, j) = prob.at(i, j) *
                          (dprob.at(i, j) - static_cast<float>(dot));
    }
    return ds;
}

} // namespace spatten
