#include "nn/transformer.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "core/importance.hpp"
#include "core/pruning.hpp"
#include "tensor/ops.hpp"

namespace spatten {

namespace {

constexpr float kMaskValue = -1e9f;

} // namespace

MultiHeadSelfAttention::MultiHeadSelfAttention(std::string name,
                                               std::size_t d_model,
                                               std::size_t heads,
                                               Prng& prng)
    : d_model_(d_model),
      heads_(heads),
      wq_(name + ".wq", d_model, d_model, prng),
      wk_(name + ".wk", d_model, d_model, prng),
      wv_(name + ".wv", d_model, d_model, prng),
      wo_(name + ".wo", d_model, d_model, prng)
{
    SPATTEN_ASSERT(heads > 0 && d_model % heads == 0,
                   "d_model %zu %% heads %zu != 0", d_model, heads);
}

Tensor
MultiHeadSelfAttention::forward(const Tensor& x, bool causal,
                                Cache& cache) const
{
    const std::size_t l = x.dim(0), d = headDim();
    cache.x = x;
    cache.q = wq_.forward(x);
    cache.k = wk_.forward(x);
    cache.v = wv_.forward(x);
    cache.probs.clear();
    cache.concat = Tensor({l, d_model_});
    const float inv = 1.0f / std::sqrt(static_cast<float>(d));
    for (std::size_t h = 0; h < heads_; ++h) {
        const Tensor qh = ops::sliceCols(cache.q, h * d, (h + 1) * d);
        const Tensor kh = ops::sliceCols(cache.k, h * d, (h + 1) * d);
        const Tensor vh = ops::sliceCols(cache.v, h * d, (h + 1) * d);
        Tensor scores = ops::scale(ops::matmulTransposedB(qh, kh), inv);
        if (causal) {
            for (std::size_t i = 0; i < l; ++i)
                for (std::size_t j = i + 1; j < l; ++j)
                    scores.at(i, j) = kMaskValue;
        }
        const Tensor prob = ops::softmaxRows(scores);
        const Tensor eh = ops::matmul(prob, vh);
        for (std::size_t i = 0; i < l; ++i)
            for (std::size_t j = 0; j < d; ++j)
                cache.concat.at(i, h * d + j) = eh.at(i, j);
        cache.probs.push_back(prob);
    }
    return wo_.forward(cache.concat);
}

Tensor
MultiHeadSelfAttention::backward(const Cache& cache, const Tensor& dy,
                                 bool causal)
{
    (void)causal; // masked entries have prob 0, so their grads vanish.
    const std::size_t l = cache.x.dim(0), d = headDim();
    const Tensor dconcat = wo_.backward(cache.concat, dy);
    Tensor dq({l, d_model_}), dk({l, d_model_}), dv({l, d_model_});
    const float inv = 1.0f / std::sqrt(static_cast<float>(d));
    for (std::size_t h = 0; h < heads_; ++h) {
        const Tensor qh = ops::sliceCols(cache.q, h * d, (h + 1) * d);
        const Tensor kh = ops::sliceCols(cache.k, h * d, (h + 1) * d);
        const Tensor vh = ops::sliceCols(cache.v, h * d, (h + 1) * d);
        const Tensor de = ops::sliceCols(dconcat, h * d, (h + 1) * d);
        const Tensor& prob = cache.probs[h];

        const Tensor dprob = ops::matmulTransposedB(de, vh);
        const Tensor dvh = ops::matmul(ops::transpose(prob), de);
        const Tensor ds =
            ops::scale(softmaxBackwardRows(prob, dprob), inv);
        const Tensor dqh = ops::matmul(ds, kh);
        const Tensor dkh = ops::matmul(ops::transpose(ds), qh);
        for (std::size_t i = 0; i < l; ++i)
            for (std::size_t j = 0; j < d; ++j) {
                dq.at(i, h * d + j) = dqh.at(i, j);
                dk.at(i, h * d + j) = dkh.at(i, j);
                dv.at(i, h * d + j) = dvh.at(i, j);
            }
    }
    Tensor dx = wq_.backward(cache.x, dq);
    dx = ops::add(dx, wk_.backward(cache.x, dk));
    dx = ops::add(dx, wv_.backward(cache.x, dv));
    return dx;
}

void
MultiHeadSelfAttention::collectParams(std::vector<Param*>& out)
{
    wq_.collectParams(out);
    wk_.collectParams(out);
    wv_.collectParams(out);
    wo_.collectParams(out);
}

TransformerBlock::TransformerBlock(std::string name, std::size_t d_model,
                                   std::size_t heads, std::size_t ffn_dim,
                                   Prng& prng)
    : attn_(name + ".attn", d_model, heads, prng),
      fc1_(name + ".fc1", d_model, ffn_dim, prng),
      fc2_(name + ".fc2", ffn_dim, d_model, prng),
      ln1_(name + ".ln1", d_model),
      ln2_(name + ".ln2", d_model)
{
}

Tensor
TransformerBlock::forward(const Tensor& x, bool causal, Cache& cache) const
{
    cache.x = x;
    const Tensor attn_out = attn_.forward(x, causal, cache.attn);
    cache.res1 = ops::add(x, attn_out);
    cache.y = ln1_.forward(cache.res1, cache.ln1);
    cache.hidden_pre = fc1_.forward(cache.y);
    cache.hidden = reluForward(cache.hidden_pre);
    const Tensor ff = fc2_.forward(cache.hidden);
    cache.res2 = ops::add(cache.y, ff);
    return ln2_.forward(cache.res2, cache.ln2);
}

Tensor
TransformerBlock::backward(const Cache& cache, const Tensor& dz,
                           bool causal)
{
    const Tensor dres2 = ln2_.backward(cache.ln2, dz);
    const Tensor dhidden = fc2_.backward(cache.hidden, dres2);
    const Tensor dhidden_pre = reluBackward(cache.hidden_pre, dhidden);
    const Tensor dy_ffn = fc1_.backward(cache.y, dhidden_pre);
    const Tensor dy = ops::add(dres2, dy_ffn); // residual
    const Tensor dres1 = ln1_.backward(cache.ln1, dy);
    const Tensor dx_attn = attn_.backward(cache.attn, dres1, causal);
    return ops::add(dres1, dx_attn); // residual
}

void
TransformerBlock::collectParams(std::vector<Param*>& out)
{
    attn_.collectParams(out);
    fc1_.collectParams(out);
    fc2_.collectParams(out);
    ln1_.collectParams(out);
    ln2_.collectParams(out);
}

TransformerModel::TransformerModel(TinyModelConfig cfg)
    : cfg_(cfg),
      prng_(cfg.seed),
      embed_("embed", cfg.vocab, cfg.d_model, cfg.max_len, prng_),
      cls_head_("cls_head", cfg.d_model, cfg.num_classes, prng_),
      lm_head_("lm_head", cfg.d_model, cfg.vocab, prng_)
{
    blocks_.reserve(cfg.layers);
    for (std::size_t i = 0; i < cfg.layers; ++i)
        blocks_.emplace_back(strfmt("block%zu", i), cfg.d_model,
                             cfg.heads, cfg.ffn_dim, prng_);
}

Tensor
TransformerModel::forwardHidden(const std::vector<std::size_t>& ids,
                                bool causal, ForwardCache& cache) const
{
    cache.embedded = embed_.forward(ids);
    cache.blocks.resize(blocks_.size());
    Tensor x = cache.embedded;
    for (std::size_t i = 0; i < blocks_.size(); ++i)
        x = blocks_[i].forward(x, causal, cache.blocks[i]);
    cache.final_hidden = x;
    return x;
}

void
TransformerModel::backwardHidden(const std::vector<std::size_t>& ids,
                                 ForwardCache& cache,
                                 const Tensor& d_hidden, bool causal)
{
    Tensor dx = d_hidden;
    for (std::size_t i = blocks_.size(); i-- > 0;)
        dx = blocks_[i].backward(cache.blocks[i], dx, causal);
    embed_.backward(ids, dx);
}

double
TransformerModel::lossClassifyGrad(const std::vector<std::size_t>& ids,
                                   std::size_t label)
{
    ForwardCache cache;
    const Tensor hidden = forwardHidden(ids, false, cache);
    const std::size_t l = hidden.dim(0);
    // Mean pooling over positions.
    Tensor pooled({1, cfg_.d_model});
    for (std::size_t i = 0; i < l; ++i)
        for (std::size_t j = 0; j < cfg_.d_model; ++j)
            pooled.at(0, j) += hidden.at(i, j) / static_cast<float>(l);
    const Tensor logits = cls_head_.forward(pooled);
    Tensor dlogits;
    const double loss = softmaxCrossEntropy(logits, {label}, dlogits);
    const Tensor dpooled = cls_head_.backward(pooled, dlogits);
    Tensor dhidden({l, cfg_.d_model});
    for (std::size_t i = 0; i < l; ++i)
        for (std::size_t j = 0; j < cfg_.d_model; ++j)
            dhidden.at(i, j) = dpooled.at(0, j) / static_cast<float>(l);
    backwardHidden(ids, cache, dhidden, false);
    return loss;
}

double
TransformerModel::lossClassify(const std::vector<std::size_t>& ids,
                               std::size_t label) const
{
    ForwardCache cache;
    const Tensor hidden = forwardHidden(ids, false, cache);
    const std::size_t l = hidden.dim(0);
    Tensor pooled({1, cfg_.d_model});
    for (std::size_t i = 0; i < l; ++i)
        for (std::size_t j = 0; j < cfg_.d_model; ++j)
            pooled.at(0, j) += hidden.at(i, j) / static_cast<float>(l);
    const Tensor logits = cls_head_.forward(pooled);
    Tensor dlogits;
    return softmaxCrossEntropy(logits, {label}, dlogits);
}

double
TransformerModel::trainStepClassify(const std::vector<std::size_t>& ids,
                                    std::size_t label)
{
    const double loss = lossClassifyGrad(ids, label);
    auto ps = params();
    opt_.step(ps);
    return loss;
}

double
TransformerModel::lossLmGrad(const std::vector<std::size_t>& ids)
{
    SPATTEN_ASSERT(ids.size() >= 2, "LM needs at least 2 tokens");
    ForwardCache cache;
    const Tensor hidden = forwardHidden(ids, true, cache);
    const std::size_t n = ids.size() - 1;
    Tensor pred_in({n, cfg_.d_model});
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < cfg_.d_model; ++j)
            pred_in.at(i, j) = hidden.at(i, j);
    const Tensor logits = lm_head_.forward(pred_in);
    std::vector<std::size_t> targets(ids.begin() + 1, ids.end());
    Tensor dlogits;
    const double loss = softmaxCrossEntropy(logits, targets, dlogits);
    const Tensor dpred = lm_head_.backward(pred_in, dlogits);
    Tensor dhidden({ids.size(), cfg_.d_model});
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < cfg_.d_model; ++j)
            dhidden.at(i, j) = dpred.at(i, j);
    backwardHidden(ids, cache, dhidden, true);
    return loss;
}

double
TransformerModel::trainStepLm(const std::vector<std::size_t>& ids)
{
    const double loss = lossLmGrad(ids);
    auto ps = params();
    opt_.step(ps);
    return loss;
}

void
TransformerModel::zeroGrads()
{
    for (Param* p : params())
        p->zeroGrad();
}

std::size_t
TransformerModel::predictClass(const std::vector<std::size_t>& ids) const
{
    ForwardCache cache;
    const Tensor hidden = forwardHidden(ids, false, cache);
    Tensor pooled({1, cfg_.d_model});
    for (std::size_t i = 0; i < hidden.dim(0); ++i)
        for (std::size_t j = 0; j < cfg_.d_model; ++j)
            pooled.at(0, j) +=
                hidden.at(i, j) / static_cast<float>(hidden.dim(0));
    const Tensor logits = cls_head_.forward(pooled);
    return ops::argmax(logits.row(0));
}

double
TransformerModel::lmLoss(const std::vector<std::size_t>& ids) const
{
    ForwardCache cache;
    const Tensor hidden = forwardHidden(ids, true, cache);
    const std::size_t n = ids.size() - 1;
    Tensor pred_in({n, cfg_.d_model});
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < cfg_.d_model; ++j)
            pred_in.at(i, j) = hidden.at(i, j);
    const Tensor logits = lm_head_.forward(pred_in);
    std::vector<std::size_t> targets(ids.begin() + 1, ids.end());
    Tensor dlogits;
    return softmaxCrossEntropy(logits, targets, dlogits);
}

std::vector<Param*>
TransformerModel::params()
{
    std::vector<Param*> out;
    embed_.collectParams(out);
    for (auto& b : blocks_)
        b.collectParams(out);
    cls_head_.collectParams(out);
    lm_head_.collectParams(out);
    return out;
}

// ---------------------------------------------------------------------
// SpAtten-pruned inference
// ---------------------------------------------------------------------

namespace {

/** LayerNorm application without touching gradients. */
Tensor
applyLn(const LayerNorm& ln, const Tensor& x)
{
    LayerNorm::Cache scratch;
    return ln.forward(x, scratch);
}

} // namespace

std::size_t
TransformerModel::predictClassPruned(const std::vector<std::size_t>& ids,
                                     const PruningPolicy& policy,
                                     PrunedRunStats* stats) const
{
    const std::size_t l0 = ids.size();
    const std::size_t h_total = cfg_.heads;
    const std::size_t d = cfg_.d_model / h_total;
    const float inv = 1.0f / std::sqrt(static_cast<float>(d));

    const PruningSchedule tok_sched =
        policy.token_pruning
            ? makeTokenSchedule(blocks_.size(), policy.token_avg_ratio)
            : PruningSchedule::disabled(blocks_.size());
    const PruningSchedule head_sched =
        policy.head_pruning
            ? makeHeadSchedule(blocks_.size(), policy.head_avg_ratio)
            : PruningSchedule::disabled(blocks_.size());

    TokenImportanceAccumulator acc(l0);
    HeadImportanceAccumulator hacc(h_total);
    CascadeTokenPruner tpruner(l0);
    CascadeHeadPruner hpruner(h_total);

    Tensor x = embed_.forward(ids); // rows follow tpruner.alive()
    double flat_rows = 0.0, total_rows = 0.0, keys_frac_sum = 0.0;
    PrunedRunStats local_stats;

    for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
        const TransformerBlock& blk = blocks_[bi];
        const auto& alive = tpruner.alive();
        const std::size_t n = alive.size();
        keys_frac_sum += static_cast<double>(n) / static_cast<double>(l0);
        tpruner.appendTo(local_stats.survivors);

        // PoWER-BERT-style ablation: importance from this layer only.
        if (policy.importance_mode == ImportanceMode::Instant)
            acc.reset(l0);

        const Tensor q = blk.attn_.wq_.forward(x);
        const Tensor k = blk.attn_.wk_.forward(x);
        const Tensor v = blk.attn_.wv_.forward(x);
        Tensor concat({n, cfg_.d_model});
        for (std::size_t head : hpruner.alive()) {
            const Tensor qh = ops::sliceCols(q, head * d, (head + 1) * d);
            const Tensor kh = ops::sliceCols(k, head * d, (head + 1) * d);
            const Tensor vh = ops::sliceCols(v, head * d, (head + 1) * d);
            const Tensor prob = ops::softmaxRows(
                ops::scale(ops::matmulTransposedB(qh, kh), inv));
            acc.accumulate(prob, alive);
            double head_mag = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                std::vector<float> row(n);
                for (std::size_t j = 0; j < n; ++j)
                    row[j] = prob.at(i, j);
                float maxp = 0.0f;
                for (float p : row)
                    maxp = std::max(maxp, p);
                total_rows += 1.0;
                if (maxp < policy.pq.max_prob_threshold)
                    flat_rows += 1.0;
                const auto kept =
                    policy.local_value_pruning
                        ? localValuePrune(row, policy.local_v_ratio)
                        : localValuePrune(row, 0.0);
                for (std::size_t j = 0; j < d; ++j) {
                    float accv = 0.0f;
                    for (std::size_t idx : kept)
                        accv += row[idx] * vh.at(idx, j);
                    concat.at(i, head * d + j) = accv;
                    head_mag += std::fabs(accv);
                }
            }
            hacc.accumulateAbsSum(head_mag, head);
        }
        const Tensor attn_out = blk.attn_.wo_.forward(concat);
        const Tensor res1 = ops::add(x, attn_out);
        const Tensor y = applyLn(blk.ln1_, res1);
        const Tensor hidden = reluForward(blk.fc1_.forward(y));
        const Tensor res2 = ops::add(y, blk.fc2_.forward(hidden));
        x = applyLn(blk.ln2_, res2);

        // Cascade pruning for the next layer.
        if (policy.token_pruning && tok_sched.ratioAt(bi) > 0.0) {
            if (policy.importance_mode == ImportanceMode::Random) {
                // Ablation lower bound: random importance scores.
                Prng rp(1000 + bi);
                acc.reset(l0);
                std::vector<float> rnd(l0);
                for (auto& r : rnd)
                    r = static_cast<float>(rp.uniform());
                std::vector<std::size_t> all(l0);
                for (std::size_t i = 0; i < l0; ++i)
                    all[i] = i;
                acc.accumulateRow(rnd, all);
            }
            const std::vector<std::size_t> old_alive = alive;
            const auto& new_alive =
                tpruner.pruneToRatio(acc, tok_sched.ratioAt(bi));
            // Gather surviving rows of the residual stream.
            std::vector<std::size_t> rows;
            rows.reserve(new_alive.size());
            std::size_t cursor = 0;
            for (std::size_t gid : new_alive) {
                while (old_alive[cursor] != gid)
                    ++cursor;
                rows.push_back(cursor);
            }
            x = ops::gatherRows(x, rows);
        }
        if (policy.head_pruning && head_sched.ratioAt(bi) > 0.0)
            hpruner.pruneToRatio(hacc, head_sched.ratioAt(bi));
    }

    if (stats) {
        *stats = std::move(local_stats);
        stats->tokens_kept_frac =
            static_cast<double>(tpruner.aliveCount()) / static_cast<double>(l0);
        stats->heads_kept_frac =
            static_cast<double>(hpruner.aliveCount()) / static_cast<double>(h_total);
        stats->avg_keys_frac =
            keys_frac_sum / static_cast<double>(blocks_.size());
        stats->lsb_fraction =
            total_rows > 0 ? flat_rows / total_rows : 0.0;
        stats->surviving_tokens = tpruner.alive();
        stats->final_token_scores = acc.scores();
    }

    // Mean-pooled classification over the survivors.
    Tensor pooled({1, cfg_.d_model});
    for (std::size_t i = 0; i < x.dim(0); ++i)
        for (std::size_t j = 0; j < cfg_.d_model; ++j)
            pooled.at(0, j) += x.at(i, j) / static_cast<float>(x.dim(0));
    const Tensor logits = cls_head_.forward(pooled);
    return ops::argmax(logits.row(0));
}

double
TransformerModel::lmLossPruned(const std::vector<std::size_t>& ids,
                               const PruningPolicy& policy,
                               PrunedRunStats* stats) const
{
    SPATTEN_ASSERT(ids.size() >= 2, "LM needs at least 2 tokens");
    const std::size_t l0 = ids.size();
    const std::size_t h_total = cfg_.heads;
    const std::size_t d = cfg_.d_model / h_total;
    const float inv = 1.0f / std::sqrt(static_cast<float>(d));

    const PruningSchedule tok_sched =
        policy.token_pruning
            ? makeTokenSchedule(blocks_.size(), policy.token_avg_ratio)
            : PruningSchedule::disabled(blocks_.size());
    const PruningSchedule head_sched =
        policy.head_pruning
            ? makeHeadSchedule(blocks_.size(), policy.head_avg_ratio)
            : PruningSchedule::disabled(blocks_.size());

    TokenImportanceAccumulator acc(l0);
    HeadImportanceAccumulator hacc(h_total);
    CascadeTokenPruner kpruner(l0); // key-side pruning only
    CascadeHeadPruner hpruner(h_total);

    Tensor x = embed_.forward(ids); // full residual stream, all queries
    double flat_rows = 0.0, total_rows = 0.0, keys_frac_sum = 0.0;
    PrunedRunStats local_stats;

    for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
        const TransformerBlock& blk = blocks_[bi];
        const auto& alive_keys = kpruner.alive();
        const std::size_t nk = alive_keys.size();
        keys_frac_sum += static_cast<double>(nk) / static_cast<double>(l0);
        kpruner.appendTo(local_stats.survivors);

        if (policy.importance_mode == ImportanceMode::Instant)
            acc.reset(l0);

        const Tensor q = blk.attn_.wq_.forward(x);
        const Tensor k_full = blk.attn_.wk_.forward(x);
        const Tensor v_full = blk.attn_.wv_.forward(x);
        const Tensor k = ops::gatherRows(k_full, alive_keys);
        const Tensor v = ops::gatherRows(v_full, alive_keys);

        Tensor concat({l0, cfg_.d_model});
        for (std::size_t head : hpruner.alive()) {
            const Tensor qh = ops::sliceCols(q, head * d, (head + 1) * d);
            const Tensor kh = ops::sliceCols(k, head * d, (head + 1) * d);
            const Tensor vh = ops::sliceCols(v, head * d, (head + 1) * d);
            double head_mag = 0.0;
            for (std::size_t i = 0; i < l0; ++i) {
                // Causal: only surviving keys at positions <= i.
                std::vector<float> scores;
                std::vector<std::size_t> cols;
                for (std::size_t c = 0; c < nk; ++c) {
                    if (alive_keys[c] > i)
                        break;
                    float s = 0.0f;
                    for (std::size_t j = 0; j < d; ++j)
                        s += qh.at(i, j) * kh.at(c, j);
                    scores.push_back(s * inv);
                    cols.push_back(c);
                }
                if (scores.empty())
                    continue; // nothing visible: head output stays zero
                float m = scores[0];
                for (float s : scores)
                    m = std::max(m, s);
                double denom = 0.0;
                std::vector<float> prob(scores.size());
                for (std::size_t c = 0; c < scores.size(); ++c) {
                    prob[c] = std::exp(scores[c] - m);
                    denom += prob[c];
                }
                std::vector<std::size_t> gids(cols.size());
                for (std::size_t c = 0; c < cols.size(); ++c) {
                    prob[c] = static_cast<float>(prob[c] / denom);
                    gids[c] = alive_keys[cols[c]];
                }
                acc.accumulateRow(prob, gids);
                float maxp = 0.0f;
                for (float p : prob)
                    maxp = std::max(maxp, p);
                total_rows += 1.0;
                if (maxp < policy.pq.max_prob_threshold)
                    flat_rows += 1.0;
                const auto kept =
                    policy.local_value_pruning
                        ? localValuePrune(prob, policy.local_v_ratio)
                        : localValuePrune(prob, 0.0);
                for (std::size_t j = 0; j < d; ++j) {
                    float accv = 0.0f;
                    for (std::size_t idx : kept)
                        accv += prob[idx] * vh.at(cols[idx], j);
                    concat.at(i, head * d + j) = accv;
                    head_mag += std::fabs(accv);
                }
            }
            hacc.accumulateAbsSum(head_mag, head);
        }
        const Tensor attn_out = blk.attn_.wo_.forward(concat);
        const Tensor res1 = ops::add(x, attn_out);
        const Tensor y = applyLn(blk.ln1_, res1);
        const Tensor hidden = reluForward(blk.fc1_.forward(y));
        const Tensor res2 = ops::add(y, blk.fc2_.forward(hidden));
        x = applyLn(blk.ln2_, res2);

        if (policy.token_pruning && tok_sched.ratioAt(bi) > 0.0) {
            if (policy.importance_mode == ImportanceMode::Random) {
                Prng rp(2000 + bi);
                acc.reset(l0);
                std::vector<float> rnd(l0);
                for (auto& r : rnd)
                    r = static_cast<float>(rp.uniform());
                std::vector<std::size_t> all(l0);
                for (std::size_t i = 0; i < l0; ++i)
                    all[i] = i;
                acc.accumulateRow(rnd, all);
            }
            kpruner.pruneToRatio(acc, tok_sched.ratioAt(bi));
        }
        if (policy.head_pruning && head_sched.ratioAt(bi) > 0.0)
            hpruner.pruneToRatio(hacc, head_sched.ratioAt(bi));
    }

    if (stats) {
        *stats = std::move(local_stats);
        stats->tokens_kept_frac =
            static_cast<double>(kpruner.aliveCount()) / static_cast<double>(l0);
        stats->heads_kept_frac =
            static_cast<double>(hpruner.aliveCount()) / static_cast<double>(h_total);
        stats->avg_keys_frac =
            keys_frac_sum / static_cast<double>(blocks_.size());
        stats->lsb_fraction =
            total_rows > 0 ? flat_rows / total_rows : 0.0;
        stats->surviving_tokens = kpruner.alive();
        stats->final_token_scores = acc.scores();
    }

    // Next-token loss over every position (queries were never pruned).
    const std::size_t n = l0 - 1;
    Tensor pred_in({n, cfg_.d_model});
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < cfg_.d_model; ++j)
            pred_in.at(i, j) = x.at(i, j);
    const Tensor logits = lm_head_.forward(pred_in);
    std::vector<std::size_t> targets(ids.begin() + 1, ids.end());
    Tensor dlogits;
    return softmaxCrossEntropy(logits, targets, dlogits);
}

} // namespace spatten
