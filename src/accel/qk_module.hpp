/**
 * @file
 * Query-Key multiplication module (§IV-E, Fig. 11).
 *
 * 512 12-bit multipliers and a reconfigurable adder tree. Each cycle one
 * Key-SRAM line (512 elements) is multiplied against the broadcast query;
 * the adder tree is configured as (512/D) separate D-way trees, so with
 * D = 64 the module produces 8 attention scores per cycle. Functional
 * behaviour and the cycle cost are modeled together.
 */
#ifndef SPATTEN_ACCEL_QK_MODULE_HPP
#define SPATTEN_ACCEL_QK_MODULE_HPP

#include <cstddef>
#include <vector>

#include "sim/clock.hpp"
#include "sim/stage_model.hpp"

namespace spatten {

/** Configuration of the Q x K datapath. */
struct QkModuleConfig
{
    std::size_t num_multipliers = 512;
    std::size_t max_tree_outputs = 8; ///< Adder tree outputs per cycle cap.
};

/** Timing outcome for one query against L keys. */
struct QkTiming
{
    Cycles cycles = 0;          ///< SRAM-line beats consumed.
    std::size_t macs = 0;       ///< Multiply-accumulates performed.
    std::size_t scores = 0;     ///< Attention scores produced.
    std::size_t scores_per_cycle = 1;
};

/** The Q x K module. */
class QkModule : public StageModel
{
  public:
    explicit QkModule(QkModuleConfig cfg = QkModuleConfig{});

    /**
     * Cycle cost of one query over @p num_keys keys of dimension @p d.
     * @pre d <= num_multipliers.
     */
    QkTiming timing(std::size_t num_keys, std::size_t d) const;

    // StageModel: occupancy over the alive keys, MAC activity including
    // the LSB-recompute share, and the Key-SRAM line re-reads per query.
    std::string stageName() const override { return "qk"; }
    StageTiming timing(const ExecutionContext& ctx) const override;
    ActivityCounts energy(const ExecutionContext& ctx) const override;
    StageTraffic traffic(const ExecutionContext& ctx) const override;

    /**
     * Functional: scores[i] = sum_j q[j] * k[i][j] * inv_sqrt_d, computed
     * in the order the hardware emits them (packed lines of 512/d keys).
     */
    std::vector<float> computeScores(const std::vector<float>& q,
                                     const std::vector<std::vector<float>>& k,
                                     float inv_sqrt_d) const;

    const QkModuleConfig& config() const { return cfg_; }

  private:
    QkModuleConfig cfg_;
};

} // namespace spatten

#endif // SPATTEN_ACCEL_QK_MODULE_HPP
