/**
 * @file
 * The SpAtten execution pipeline model (Fig. 8), assembled as a
 * composable stage graph.
 *
 * SpAttenPipeline::run() is a thin driver: it builds an AttentionGraph —
 * the hardware stages (fetcher -> QxK -> Softmax -> top-k/zero-eliminator
 * -> ProbxV), each implementing the common StageModel interface
 * (sim/stage_model.hpp), wired into a StageGraph (sim/stage_graph.hpp)
 * with the policy expressed as graph transforms — and iterates one
 * runPass() per summarization/generation step.
 *
 * Processing is head-by-head and query-by-query (§IV-A). The critical
 * path is fully pipelined, so per-(layer, head) compute time is
 *     queries x II,   II = max over stage occupancies per query,
 * and DRAM traffic overlaps compute under double buffering, so
 *     layer time = max(compute time, memory time).
 *
 * Cascade token/head pruning and progressive quantization are graph
 * transforms (core/graph_transforms.hpp) that rewrite the per-request
 * ExecutionContext between layers: pruning shrinks the alive token/head
 * counts following the PruningSchedule; quantization selects the eagerly
 * fetched plane width and the LSB refetch fraction per pass. Every
 * stage's occupancy, energy, and traffic land in RunResult::stats under
 * "stage.<name>.*" automatically.
 */
#ifndef SPATTEN_ACCEL_PIPELINE_HPP
#define SPATTEN_ACCEL_PIPELINE_HPP

#include <cstddef>
#include <string>

#include "accel/crossbar.hpp"
#include "accel/fetcher.hpp"
#include "accel/qk_module.hpp"
#include "common/prng.hpp"
#include "accel/pv_module.hpp"
#include "accel/softmax_module.hpp"
#include "core/model_spec.hpp"
#include "energy/energy_model.hpp"
#include "hbm/hbm.hpp"
#include "sim/clock.hpp"
#include "sim/stats.hpp"

namespace spatten {

/** Hardware configuration of a SpAtten instance (Table I defaults). */
struct SpAttenConfig
{
    double core_freq_ghz = 1.0;
    QkModuleConfig qk;            ///< 512 multipliers.
    PvModuleConfig pv;            ///< 512 multipliers.
    SoftmaxModuleConfig softmax;  ///< Parallelism 8.
    std::size_t topk_parallelism = 16;
    std::size_t key_sram_kb = 196;
    std::size_t value_sram_kb = 196;
    std::size_t max_context = 1024; ///< SRAM-backed context limit.
    HbmConfig hbm;                ///< 16 channels, 512 GB/s.
    EnergyConfig energy;

    /** Total multipliers (used for roofline and area). */
    std::size_t totalMultipliers() const
    {
        return qk.num_multipliers + pv.num_multipliers;
    }

    /** The SpAtten-1/8 configuration used against A3/MNNFast (128 mults,
     *  64 GB/s). */
    static SpAttenConfig eighth();
};

/** Result of simulating one workload. */
struct RunResult
{
    std::string workload;
    Cycles cycles = 0;       ///< Core cycles.
    double seconds = 0;
    double summarize_seconds = 0; ///< Summarization-stage share.
    double generate_seconds = 0;  ///< Generation-stage share.
    double attention_flops = 0;  ///< FLOPs actually executed.
    double attention_flops_dense = 0; ///< FLOPs without any pruning.
    double dram_bytes = 0;
    double dram_bytes_dense = 0; ///< Bytes an unpruned fp16*-free 12-bit
                                 ///< run would fetch (for reduction factors).
    EnergyReport energy;
    StatSet stats;

    double effectiveTflops() const
    {
        return seconds > 0 ? attention_flops / seconds * 1e-12 : 0;
    }
    double dramReduction() const
    {
        return dram_bytes > 0 ? dram_bytes_dense / dram_bytes : 1.0;
    }
    double computeReduction() const
    {
        return attention_flops > 0
                   ? attention_flops_dense / attention_flops
                   : 1.0;
    }
};

/** The pipeline-level simulator. */
class SpAttenPipeline
{
  public:
    explicit SpAttenPipeline(SpAttenConfig cfg = SpAttenConfig{});

    /**
     * Simulate the attention layers of @p workload under @p policy.
     * BERT-style workloads run the summarization stage only; GPT-2-style
     * workloads run summarization plus generate_len generation iterations
     * with KV concatenation (Fig. 3). @p request_seed seeds the
     * per-request PRNG state consumed by stochastic stages (top-k pivot
     * selection). The occupancy model prices selections analytically, so
     * today's results are seed-independent (pinned by tests); the
     * plumbing keeps future functional stages deterministic per request
     * regardless of batch scheduling.
     */
    RunResult run(const WorkloadSpec& workload,
                  const PruningPolicy& policy,
                  std::uint64_t request_seed = kDefaultRequestSeed);

    const SpAttenConfig& config() const { return cfg_; }

  private:
    SpAttenConfig cfg_;
};

} // namespace spatten

#endif // SPATTEN_ACCEL_PIPELINE_HPP
