#include "core/graph_transforms.hpp"

#include <algorithm>
#include <cmath>

namespace spatten {

CascadeTokenPruneTransform::CascadeTokenPruneTransform(
    PruningSchedule schedule)
    : schedule_(std::move(schedule))
{
}

void
CascadeTokenPruneTransform::prepare(ExecutionContext& ctx)
{
    ctx.token_prune_ratio = schedule_.ratioAt(ctx.layer);
}

void
CascadeTokenPruneTransform::apply(ExecutionContext& ctx)
{
    // The shrink lands in the next layer's CSR row when its
    // beginLayer() appends the compacted survivor count — that row is
    // what the stages read back through ctx.survivorTokens().
    ctx.alive_tokens =
        pruneSurvivors(ctx.alive_tokens, schedule_.ratioAt(ctx.layer));
}

CascadeHeadPruneTransform::CascadeHeadPruneTransform(
    PruningSchedule schedule)
    : schedule_(std::move(schedule))
{
}

void
CascadeHeadPruneTransform::prepare(ExecutionContext& ctx)
{
    ctx.head_prune_ratio = schedule_.ratioAt(ctx.layer);
}

void
CascadeHeadPruneTransform::apply(ExecutionContext& ctx)
{
    ctx.alive_heads =
        pruneSurvivors(ctx.alive_heads, schedule_.ratioAt(ctx.layer));
}

void
ProgressiveQuantTransform::prepare(ExecutionContext& ctx)
{
    // Summarization fetches the static (full) width once; generation
    // fetches MSBs eagerly and LSBs for the flat-probability queries.
    ctx.fetch_bits = ctx.generation ? ctx.msb_bits : ctx.total_bits;
    ctx.active_lsb_fraction = ctx.generation ? ctx.lsb_fraction : 0.0;
}

std::vector<std::unique_ptr<GraphTransform>>
makePolicyTransforms(const ModelSpec& model, const PruningPolicy& policy)
{
    std::vector<std::unique_ptr<GraphTransform>> transforms;
    if (policy.token_pruning)
        transforms.push_back(std::make_unique<CascadeTokenPruneTransform>(
            makeTokenSchedule(model.num_layers, policy.token_avg_ratio)));
    if (policy.head_pruning)
        transforms.push_back(std::make_unique<CascadeHeadPruneTransform>(
            makeHeadSchedule(model.num_layers, policy.head_avg_ratio)));
    transforms.push_back(std::make_unique<ProgressiveQuantTransform>());
    return transforms;
}

ExecutionContext
makeExecutionContext(const WorkloadSpec& workload,
                     const PruningPolicy& policy,
                     std::uint64_t request_seed)
{
    ExecutionContext ctx;
    ctx.d_head = workload.model.d_head;
    ctx.num_layers = workload.model.num_layers;
    ctx.num_heads_total = workload.model.num_heads;
    ctx.request_seed = request_seed;

    ctx.total_bits = policy.pq.setting.totalBits();
    ctx.msb_bits =
        policy.pq.enabled ? policy.pq.setting.msb_bits : ctx.total_bits;
    ctx.lsb_bits = policy.pq.enabled ? policy.pq.setting.lsb_bits : 0;
    ctx.lsb_fraction = policy.pq.enabled ? policy.lsb_fraction : 0.0;
    ctx.fetch_bits = ctx.total_bits;
    ctx.active_lsb_fraction = 0.0;

    ctx.token_pruning = policy.token_pruning;
    ctx.head_pruning = policy.head_pruning;
    ctx.local_value_pruning = policy.local_value_pruning;
    ctx.local_v_ratio =
        policy.local_value_pruning ? policy.local_v_ratio : 0.0;

    ctx.alive_tokens = workload.summarize_len;
    ctx.alive_heads = workload.model.num_heads;
    return ctx;
}

} // namespace spatten
