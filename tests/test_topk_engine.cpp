/// Tests for the quick-select top-k engine (Algorithm 3), the zero
/// eliminator (Fig. 10) and the Batcher full-sort baseline.
#include <gtest/gtest.h>

#include <algorithm>

#include "accel/topk_engine.hpp"
#include "accel/zero_eliminator.hpp"
#include "common/prng.hpp"

namespace spatten {
namespace {

// Reference: indices of the k largest values, ties to earlier indices,
// output in ascending index order.
std::vector<std::size_t>
refTopk(const std::vector<float>& v, std::size_t k)
{
    std::vector<std::size_t> idx(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        idx[i] = i;
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::size_t a, std::size_t b) {
                         return v[a] > v[b];
                     });
    idx.resize(k);
    std::sort(idx.begin(), idx.end());
    return idx;
}

TEST(ZeroEliminator, CompactsPreservingOrder)
{
    ZeroEliminator ze;
    const auto res = ze.run({1.0f, 0.0f, 2.0f, 0.0f, 3.0f});
    ASSERT_EQ(res.compacted.size(), 3u);
    EXPECT_EQ(res.compacted[0], 1.0f);
    EXPECT_EQ(res.compacted[1], 2.0f);
    EXPECT_EQ(res.compacted[2], 3.0f);
}

TEST(ZeroEliminator, AllZeros)
{
    ZeroEliminator ze;
    EXPECT_TRUE(ze.run({0.0f, 0.0f, 0.0f}).compacted.empty());
}

TEST(ZeroEliminator, NoZeros)
{
    ZeroEliminator ze;
    const auto res = ze.run({5.0f, 4.0f});
    EXPECT_EQ(res.compacted.size(), 2u);
    EXPECT_EQ(res.shifts, 0u);
}

TEST(ZeroEliminator, PaperExample)
{
    // Fig. 10: a0b0cd0e -> abcde000.
    ZeroEliminator ze;
    const auto res =
        ze.run({1.0f, 0.0f, 2.0f, 0.0f, 3.0f, 4.0f, 0.0f, 5.0f});
    const std::vector<float> want{1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
    EXPECT_EQ(res.compacted, want);
    EXPECT_EQ(res.stages, 3u); // log2(8)
}

TEST(ZeroEliminator, LatencyIsLogN)
{
    EXPECT_EQ(ZeroEliminator::latencyCycles(1), 1u);
    EXPECT_EQ(ZeroEliminator::latencyCycles(1024), 11u);
}

TEST(ZeroEliminator, RandomizedAgainstReference)
{
    Prng p(1);
    ZeroEliminator ze;
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t n = 1 + p.below(200);
        std::vector<float> in(n);
        for (auto& x : in)
            x = p.chance(0.4) ? 0.0f
                              : static_cast<float>(p.uniform(0.1, 1.0));
        std::vector<float> want;
        for (float x : in)
            if (x != 0.0f)
                want.push_back(x);
        EXPECT_EQ(ze.run(in).compacted, want);
    }
}

TEST(TopkEngine, PaperExample)
{
    // Fig. 9: inputs [0.6, 0.1, 0.5, 1.2, 0.6], k=3 ->
    // k-th largest 0.6, two equal kept, results {0.6, 1.2, 0.6}.
    TopkEngine eng;
    const auto res = eng.run({0.6f, 0.1f, 0.5f, 1.2f, 0.6f}, 3);
    EXPECT_FLOAT_EQ(res.k_th_largest, 0.6f);
    EXPECT_EQ(res.num_eq_kth_kept, 2u);
    const std::vector<std::size_t> want{0, 3, 4};
    EXPECT_EQ(res.indices, want);
}

TEST(TopkEngine, KEqualsN)
{
    TopkEngine eng;
    const auto res = eng.run({3.0f, 1.0f, 2.0f}, 3);
    const std::vector<std::size_t> want{0, 1, 2};
    EXPECT_EQ(res.indices, want);
}

TEST(TopkEngine, KEqualsOne)
{
    TopkEngine eng;
    const auto res = eng.run({3.0f, 9.0f, 2.0f}, 1);
    ASSERT_EQ(res.indices.size(), 1u);
    EXPECT_EQ(res.indices[0], 1u);
}

TEST(TopkEngine, AllEqualValues)
{
    TopkEngine eng;
    const auto res = eng.run(std::vector<float>(10, 7.0f), 4);
    const std::vector<std::size_t> want{0, 1, 2, 3};
    EXPECT_EQ(res.indices, want);
    EXPECT_EQ(res.num_eq_kth_kept, 4u);
}

TEST(TopkEngine, RandomizedAgainstReference)
{
    Prng p(2);
    TopkEngine eng;
    for (int trial = 0; trial < 60; ++trial) {
        const std::size_t n = 1 + p.below(300);
        const std::size_t k = 1 + p.below(n);
        std::vector<float> v(n);
        for (auto& x : v) {
            // Coarse grid to force plenty of ties.
            x = static_cast<float>(p.below(16)) / 4.0f;
        }
        const auto got = eng.run(v, k);
        EXPECT_EQ(got.indices, refTopk(v, k)) << "n=" << n << " k=" << k;
    }
}

TEST(TopkEngine, LinearExpectedComparisons)
{
    // O(n) average: comparisons should be well below n log n for large n.
    Prng p(3);
    TopkEngine eng;
    const std::size_t n = 4096;
    std::vector<float> v(n);
    for (auto& x : v)
        x = static_cast<float>(p.uniform());
    const auto res = eng.run(v, n / 2);
    EXPECT_LT(res.comparisons, 6 * n);          // ~3n expected
    EXPECT_GT(res.comparisons, n);              // must at least scan once
}

TEST(TopkEngine, HigherParallelismFewerCycles)
{
    Prng p(4);
    std::vector<float> v(1024);
    for (auto& x : v)
        x = static_cast<float>(p.uniform());
    TopkEngineConfig c1;
    c1.parallelism = 1;
    TopkEngineConfig c16;
    c16.parallelism = 16;
    TopkEngine e1(c1), e16(c16);
    const auto r1 = e1.run(v, 512);
    const auto r16 = e16.run(v, 512);
    EXPECT_GT(r1.cycles, 4 * r16.cycles);
    // Same functional result regardless of parallelism & pivots.
    EXPECT_EQ(r1.indices, r16.indices);
}

TEST(TopkEngine, StatsAccumulate)
{
    TopkEngine eng;
    eng.run({1.0f, 2.0f, 3.0f}, 2);
    const auto c = eng.totalCycles();
    eng.run({1.0f, 2.0f, 3.0f}, 2);
    EXPECT_GT(eng.totalCycles(), c);
    eng.resetStats();
    EXPECT_EQ(eng.totalCycles(), 0u);
}

TEST(BatcherSort, SortsDescending)
{
    Prng p(5);
    for (std::size_t n : {1u, 7u, 64u, 100u}) {
        std::vector<float> v(n);
        for (auto& x : v)
            x = static_cast<float>(p.uniform());
        const auto res = batcherSortDescending(v, 16);
        std::vector<float> want = v;
        std::sort(want.begin(), want.end(), std::greater<float>());
        EXPECT_EQ(res.sorted_desc, want) << "n=" << n;
    }
}

TEST(BatcherSort, ComparisonCountIsNLog2N)
{
    // Batcher network: ~n/4 log^2 n comparators; for n=1024 that is
    // ~14k comparisons; far above quick-select's ~3n = 3k.
    Prng p(6);
    std::vector<float> v(1024);
    for (auto& x : v)
        x = static_cast<float>(p.uniform());
    const auto sort_res = batcherSortDescending(v, 16);
    TopkEngine eng;
    const auto topk_res = eng.run(v, 512);
    EXPECT_GT(sort_res.comparisons, 3 * topk_res.comparisons);
}

// Paper claim (§IV-B): the top-k engine achieves ~1.4x higher throughput
// than a full Batcher sorter at the worst case (median selection, 1024
// inputs) with the same comparator budget.
TEST(TopkEngine, FasterThanFullSortAtMedian)
{
    Prng p(7);
    std::vector<float> v(1024);
    for (auto& x : v)
        x = static_cast<float>(p.uniform());
    TopkEngineConfig cfg;
    cfg.parallelism = 16;
    TopkEngine eng(cfg);
    const auto tk = eng.run(v, 512);
    const auto fs = batcherSortDescending(v, 16);
    EXPECT_LT(tk.cycles, fs.cycles);
}

} // namespace
} // namespace spatten
