#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace spatten {

void
StatSet::add(const std::string& name, double delta)
{
    stats_[name] += delta;
}

void
StatSet::set(const std::string& name, double value)
{
    stats_[name] = value;
}

double
StatSet::get(const std::string& name) const
{
    const auto it = stats_.find(name);
    return it == stats_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string& name) const
{
    return stats_.count(name) > 0;
}

void
StatSet::merge(const StatSet& other)
{
    for (const auto& [name, value] : other.stats_)
        stats_[name] += value;
}

std::string
StatSet::toString() const
{
    std::string out;
    for (const auto& [name, value] : stats_)
        out += strfmt("%-40s = %.6g\n", name.c_str(), value);
    return out;
}

double
sortedQuantile(const std::vector<double>& sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double rank =
        std::clamp(q, 0.0, 1.0) * static_cast<double>(sorted.size() - 1);
    return sorted[static_cast<std::size_t>(std::llround(rank))];
}

} // namespace spatten
