#include "serve/kv_pool.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace spatten {

KvPool::KvPool(KvPoolConfig cfg) : cfg_(cfg)
{
    SPATTEN_ASSERT(cfg_.block_tokens >= 1, "zero-token KV blocks");
    SPATTEN_ASSERT(cfg_.bytes_per_elem >= 1, "zero-byte KV elements");
}

std::uint64_t
KvPool::bytesForTokens(const ModelSpec& model, std::size_t tokens) const
{
    if (tokens == 0)
        return 0;
    const std::uint64_t blocks =
        ceilDiv<std::uint64_t>(tokens, cfg_.block_tokens);
    return blocks * cfg_.block_tokens *
           kvBytesPerToken(model, cfg_.bytes_per_elem);
}

bool
KvPool::tryReserve(std::size_t id, const ModelSpec& model,
                   std::size_t tokens)
{
    SPATTEN_ASSERT(held_.count(id) == 0,
                   "request %zu already holds a KV reservation", id);
    const std::uint64_t need = bytesForTokens(model, tokens);
    if (!unlimited() && used_bytes_ + need > cfg_.capacity_bytes)
        return false;
    held_[id] = need;
    used_bytes_ += need;
    peak_bytes_ = std::max(peak_bytes_, used_bytes_);
    return true;
}

bool
KvPool::tryResize(std::size_t id, const ModelSpec& model,
                  std::size_t tokens)
{
    const auto it = held_.find(id);
    SPATTEN_ASSERT(it != held_.end(),
                   "request %zu resized without a KV reservation", id);
    const std::uint64_t need = bytesForTokens(model, tokens);
    if (need > it->second && !unlimited() &&
        used_bytes_ + (need - it->second) > cfg_.capacity_bytes)
        return false;
    used_bytes_ += need;
    used_bytes_ -= it->second;
    it->second = need;
    peak_bytes_ = std::max(peak_bytes_, used_bytes_);
    return true;
}

void
KvPool::release(std::size_t id)
{
    const auto it = held_.find(id);
    if (it == held_.end())
        return;
    used_bytes_ -= it->second;
    held_.erase(it);
}

} // namespace spatten
