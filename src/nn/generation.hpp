/**
 * @file
 * Autoregressive generation with per-layer KV caches and on-the-fly
 * SpAtten pruning (Fig. 3 right, §III-A).
 *
 * Each transformer layer owns a K/V cache that grows by one row per
 * generated token (the "Concat K,V" box of Fig. 3). Cumulative token
 * importance is accumulated across layers *and* generation iterations;
 * cascade pruning physically erases pruned rows from the caches, so a
 * pruned token is never fetched again — including under beam search,
 * where the prompt caches are shared semantics ("when a token is pruned
 * it will not be used by any beams", §V-B).
 */
#ifndef SPATTEN_NN_GENERATION_HPP
#define SPATTEN_NN_GENERATION_HPP

#include <vector>

#include "core/importance.hpp"
#include "nn/transformer.hpp"
#include "quant/bitplane.hpp"

namespace spatten {

/** Options for GenerativeRunner::generate. */
struct GenerateOptions
{
    std::size_t max_new_tokens = 8;
    std::size_t beam_width = 1; ///< 1 = greedy decoding.
    PruningPolicy policy;       ///< KV pruning applied on the fly.
};

/** Result of a generation run. */
struct GenerateResult
{
    std::vector<std::size_t> tokens; ///< Generated continuation.
    double logprob = 0.0;            ///< Sum log-prob of the best beam.
    double final_keys_frac = 1.0;    ///< Cached keys alive at the end
                                     ///< (deepest layer) / context length.
    std::size_t heads_alive = 0;     ///< Heads alive after head pruning.
    /// Fraction of attention rows whose max probability fell below the
    /// policy's progressive-quantization threshold (i.e. would have
    /// triggered an LSB refetch on SpAtten; paper average: 5.9%).
    double lsb_fraction = 0.0;
    double lsb_refetches = 0.0; ///< Actual LSB recompute passes taken.
};

/**
 * Generation engine over a trained TransformerModel. The model is only
 * read; all mutable state (caches, importance, alive sets) lives here.
 */
class GenerativeRunner
{
  public:
    explicit GenerativeRunner(const TransformerModel& model);

    /** Generate a continuation of @p prompt. */
    GenerateResult generate(const std::vector<std::size_t>& prompt,
                            const GenerateOptions& opts);

  private:
    struct LayerCache
    {
        std::vector<std::vector<float>> k; ///< Cached key rows (fp32).
        std::vector<std::vector<float>> v; ///< Cached value rows.
        std::vector<std::size_t> pos;      ///< Global position per row.
        /// Quantized key planes (only when the policy enables
        /// progressive quantization): MSBs are used for the eager score
        /// pass, MSB+LSB for the recompute pass.
        std::vector<BitplaneTensor> kq;
    };

    /** One beam hypothesis: its caches and its score. */
    struct Beam
    {
        std::vector<LayerCache> caches; ///< One per layer.
        std::vector<std::size_t> tokens;
        double logprob = 0.0;
    };

    /**
     * Run one token through all layers, appending to the beam's caches.
     * @return the next-token log-probabilities (vocab-sized).
     */
    std::vector<double> stepToken(Beam& beam, std::size_t token,
                                  std::size_t position,
                                  const PruningPolicy& policy);

    /** Apply cascade pruning against the schedule-implied targets. */
    void pruneCaches(std::vector<Beam>& beams, const PruningPolicy& policy,
                     std::size_t context_len, std::size_t prompt_len);

    const TransformerModel& model_;
    double flat_rows_ = 0.0;
    double total_rows_ = 0.0;
    double lsb_refetches_ = 0.0;
    TokenImportanceAccumulator token_acc_;
    HeadImportanceAccumulator head_acc_;
    std::vector<std::size_t> heads_alive_;
    PruningSchedule token_sched_;
    PruningSchedule head_sched_;
};

} // namespace spatten

#endif // SPATTEN_NN_GENERATION_HPP
