/**
 * @file
 * Public facade of the SpAtten accelerator model: configuration (Table I),
 * workload execution, and area/power reporting (Table II / Fig. 13).
 * This is the main entry point a library user interacts with.
 */
#ifndef SPATTEN_ACCEL_SPATTEN_ACCELERATOR_HPP
#define SPATTEN_ACCEL_SPATTEN_ACCELERATOR_HPP

#include <string>
#include <vector>

#include "accel/pipeline.hpp"
#include "serve/accelerator_backend.hpp"

namespace spatten {

// The serve layer sits on top of the accel pipeline; the facade only
// forwards to it, so the full definitions stay in serve/batch_runner.hpp
// (include it to use runBatch's argument/result types).
struct BatchRequest;
struct BatchResult;
// Defined in accel/decode_session.hpp (include it to use runDecode's
// result type).
struct DecodeResult;

/**
 * The SpAtten accelerator.
 *
 * Typical use:
 * @code
 *   SpAttenAccelerator accel;                       // Table I config
 *   WorkloadSpec w = ...;                           // e.g. GPT-2, 992+32
 *   PruningPolicy p = ...;                          // token/head/quant
 *   RunResult r = accel.run(w, p);
 *   std::printf("%.3f ms, %.2fx DRAM reduction\n",
 *               r.seconds * 1e3, r.dramReduction());
 * @endcode
 *
 * The facade also implements the serving layer's AcceleratorBackend
 * contract (serve/accelerator_backend.hpp): makeSession() opens a
 * cascade-pruning DecodeSession, so a ContinuousBatchScheduler fleet
 * can mix SpAtten devices with the baseline adapter backends.
 */
class SpAttenAccelerator : public AcceleratorBackend
{
  public:
    explicit SpAttenAccelerator(SpAttenConfig cfg = SpAttenConfig{});

    /** Simulate attention layers of a workload under a policy. */
    RunResult run(const WorkloadSpec& workload, const PruningPolicy& policy,
                  std::uint64_t request_seed = kDefaultRequestSeed);

    /**
     * Serve a batch of requests across @p num_threads workers
     * (0 = one per hardware thread). Deterministic: per-request results
     * are bit-identical at any thread count.
     */
    BatchResult runBatch(const std::vector<BatchRequest>& batch,
                         std::size_t num_threads = 0) const;

    /**
     * Run a full prefill + token-by-token decode loop through a
     * DecodeSession: each generated token re-enters the stage graph with
     * the cascade-pruned KV length of the previous step (unlike run(),
     * which re-applies the schedule to the full grown context per
     * iteration). Returns per-step latencies and the KV trajectory along
     * with the aggregate RunResult.
     */
    DecodeResult runDecode(const WorkloadSpec& workload,
                           const PruningPolicy& policy,
                           std::uint64_t request_seed =
                               kDefaultRequestSeed) const;

    // ---- AcceleratorBackend serving contract ----
    std::string backendName() const override { return "spatten"; }
    BackendCapabilities capabilities() const override
    {
        return {/*cascade_pruning=*/true, /*progressive_quant=*/true,
                /*dram_savings=*/true, /*chunked_prefill=*/true,
                /*tiered_kv=*/true};
    }
    /** KV byte budget = the HBM stack capacity of this configuration. */
    std::uint64_t capacityBytes() const override
    {
        return cfg_.hbm.capacityBytes();
    }
    /** The fetcher streams quantized planes out of an fp16-equivalent
     *  KV layout (see core/model_spec.hpp). */
    std::size_t kvBytesPerElem() const override { return 2; }
    std::unique_ptr<BackendSession>
    makeSession(const WorkloadSpec& workload, const PruningPolicy& policy,
                std::uint64_t request_seed) const override;
    /**
     * Batched decode: all lanes advance through the stage graph
     * layer-major (every lane runs layer l before any lane starts
     * l + 1), interleaving the per-request passes the way a batched
     * hardware iteration would — one graph traversal per iteration
     * with per-request lanes. Lanes whose step the replay memo serves
     * whole complete at begin and sit out the layer loop. Sessions
     * share no state, so the result is bit-identical to the serial
     * default (pinned by tests/test_batched_decode.cpp).
     */
    void stepDecodeBatch(const std::vector<BackendSession*>& lanes,
                         std::vector<double>& seconds_out) const override;

    /** Fig. 13 area breakdown for this configuration. */
    std::vector<AreaEntry> area() const;

    /** Total area in mm^2. */
    double areaMm2() const;

    /** Peak compute (TFLOPS) — the roofline computation roof. */
    double computeRoofTflops() const;

    /** Peak DRAM bandwidth (GB/s) — the roofline slope. */
    double bandwidthRoofGBs() const;

    /** Human-readable Table I-style configuration dump. */
    std::string configTable() const;

    const SpAttenConfig& config() const { return cfg_; }

  private:
    SpAttenConfig cfg_;
    SpAttenPipeline pipeline_;
};

} // namespace spatten

#endif // SPATTEN_ACCEL_SPATTEN_ACCELERATOR_HPP
