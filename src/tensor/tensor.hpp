/**
 * @file
 * Minimal dense row-major float tensor used as the numeric substrate for
 * the transformer models and the attention reference implementations.
 *
 * The tensor is deliberately simple: contiguous fp32 storage, up to 4
 * dimensions, value semantics. All shape errors are hard failures
 * (SPATTEN_ASSERT) because shapes are static properties of the models.
 */
#ifndef SPATTEN_TENSOR_TENSOR_HPP
#define SPATTEN_TENSOR_TENSOR_HPP

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "common/prng.hpp"

namespace spatten {

/** Shape of a tensor: a small vector of dimension sizes. */
using Shape = std::vector<std::size_t>;

/** Dense row-major fp32 tensor with value semantics. */
class Tensor
{
  public:
    /** Empty 0-element tensor. */
    Tensor() = default;

    /** Zero-initialized tensor of the given shape. */
    explicit Tensor(Shape shape);

    /** Tensor of the given shape filled with @p fill. */
    Tensor(Shape shape, float fill);

    /** Tensor wrapping a copy of the given data. @pre data.size()==numel. */
    Tensor(Shape shape, std::vector<float> data);

    /** A 1-D tensor from an initializer list (convenience for tests). */
    static Tensor fromList(std::initializer_list<float> values);

    /** Tensor with i.i.d. N(mean, stddev) entries. */
    static Tensor randn(Shape shape, Prng& prng, float mean = 0.0f,
                        float stddev = 1.0f);

    /** Tensor with i.i.d. U[lo, hi) entries. */
    static Tensor uniform(Shape shape, Prng& prng, float lo, float hi);

    const Shape& shape() const { return shape_; }
    std::size_t ndim() const { return shape_.size(); }
    std::size_t numel() const { return data_.size(); }

    /** Size of dimension @p i (negative indices count from the back). */
    std::size_t dim(int i) const;

    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }

    std::vector<float>& vec() { return data_; }
    const std::vector<float>& vec() const { return data_; }

    /** Flat element access. */
    float operator[](std::size_t i) const { return data_[i]; }
    float& operator[](std::size_t i) { return data_[i]; }

    /** 2-D element access. @pre ndim()==2. */
    float at(std::size_t r, std::size_t c) const;
    float& at(std::size_t r, std::size_t c);

    /** 3-D element access. @pre ndim()==3. */
    float at(std::size_t i, std::size_t j, std::size_t k) const;
    float& at(std::size_t i, std::size_t j, std::size_t k);

    /** Reshape in place; the element count must be preserved. */
    Tensor& reshape(Shape new_shape);

    /** A copy with a new shape. */
    Tensor reshaped(Shape new_shape) const;

    /** Row @p r of a 2-D tensor as a fresh 1-D tensor. */
    Tensor row(std::size_t r) const;

    /** Fill all elements with @p value. */
    void fill(float value);

    /** Sum of all elements. */
    double sum() const;

    /** Mean absolute value of all elements (0 for empty). */
    double meanAbs() const;

    /** Maximum element. @pre numel() > 0. */
    float maxElem() const;

    /** Human-readable shape like "[2, 3, 4]". */
    std::string shapeStr() const;

    /** True if shapes match exactly. */
    bool sameShape(const Tensor& other) const { return shape_ == other.shape_; }

  private:
    Shape shape_;
    std::vector<float> data_;
};

/** Number of elements implied by a shape (1 for rank-0). */
std::size_t shapeNumel(const Shape& shape);

} // namespace spatten

#endif // SPATTEN_TENSOR_TENSOR_HPP
