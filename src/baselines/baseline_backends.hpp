/**
 * @file
 * Serving-contract adapters for the baseline models: A3, MNNFast, and
 * the CPU/GPU platform models behind the AcceleratorBackend interface
 * (serve/accelerator_backend.hpp), so ContinuousBatchScheduler can
 * serve heterogeneous fleets and reproduce the paper's cross-accelerator
 * comparison under real traffic, KV-pressure, and preemption regimes.
 *
 * All three baselines keep a *dense* KV cache: none of them prunes
 * tokens globally, so the resident context grows by exactly one token
 * per decode step and a KvPool reservation never shrinks — the heart of
 * SpAtten's admissible-concurrency advantage under a shared KV budget.
 * Their one-shot models (a3_model.hpp, mnnfast_model.hpp,
 * platform_model.hpp) price the prefill pass; the decode step cost is
 * the per-token extension of the same cycle/energy model:
 *
 *   - A3Backend: fetches the full grown K/V per step (pruning decided
 *     after fetch), scores with its 1.73x approximation, and pays an
 *     incremental sorted-insert of the new key into its d per-dimension
 *     sorted lists — the preprocessing that makes A3 a poor fit for
 *     memory-bounded generation (SV-B).
 *   - MnnFastBackend: full K/V fetch per step; only the prob x V side
 *     shrinks (local value pruning), at its FPGA-derived datapath
 *     efficiency.
 *   - PlatformBackend: the de-rated roofline generation step of
 *     PlatformModel::attention (mat-vec at genvec_util, inflated by the
 *     Fig. 2 data-movement share and per-layer launch overhead), with
 *     fp32 KV residency.
 *
 * Sessions are pure functions of (config, workload): the analytic
 * models consume no PRNG state, so determinism across scheduler
 * threads and fleet slots is structural.
 */
#ifndef SPATTEN_BASELINES_BASELINE_BACKENDS_HPP
#define SPATTEN_BASELINES_BASELINE_BACKENDS_HPP

#include "baselines/a3_model.hpp"
#include "baselines/mnnfast_model.hpp"
#include "baselines/platform_model.hpp"
#include "serve/accelerator_backend.hpp"

namespace spatten {

/// Default device-memory budget for the baseline accelerators: the same
/// 8 GiB HBM-class stack as the SpAtten default, so "same KV budget"
/// fleet comparisons are apples to apples out of the box.
inline constexpr std::uint64_t kBaselineCapacityBytes = 8ull << 30;

/** A3 (Ham et al., HPCA 2020) as a serving backend. */
class A3Backend : public AcceleratorBackend
{
  public:
    explicit A3Backend(A3Config cfg = A3Config{},
                       std::uint64_t capacity_bytes =
                           kBaselineCapacityBytes)
        : cfg_(cfg), capacity_bytes_(capacity_bytes)
    {
    }

    std::string backendName() const override { return "a3"; }
    BackendCapabilities capabilities() const override
    {
        // Local (post-fetch) key pruning only: no KV shrink, no DRAM
        // savings, no quantization support. Its one-shot prefill model
        // scales linearly with the query x context product, so split
        // prefill chunks price cleanly. Dense KV has no layout pinned
        // to HBM addresses, so tiered KV migration is safe.
        return {false, false, false, /*chunked_prefill=*/true,
                /*tiered_kv=*/true};
    }
    std::uint64_t capacityBytes() const override
    {
        return capacity_bytes_;
    }
    /// KV resides in the fp16-equivalent layout (the 12-bit operand
    /// stream is an on-the-wire format, as in the SpAtten fetcher).
    std::size_t kvBytesPerElem() const override { return 2; }
    std::unique_ptr<BackendSession>
    makeSession(const WorkloadSpec& workload, const PruningPolicy& policy,
                std::uint64_t request_seed) const override;

    const A3Config& config() const { return cfg_; }

  private:
    A3Config cfg_;
    std::uint64_t capacity_bytes_;
};

/** MNNFast (Jang et al., ISCA 2019) as a serving backend. */
class MnnFastBackend : public AcceleratorBackend
{
  public:
    explicit MnnFastBackend(MnnFastConfig cfg = MnnFastConfig{},
                            std::uint64_t capacity_bytes =
                                kBaselineCapacityBytes)
        : cfg_(cfg), capacity_bytes_(capacity_bytes)
    {
    }

    std::string backendName() const override { return "mnnfast"; }
    BackendCapabilities capabilities() const override
    {
        // Local value pruning after fetch: compute-only savings.
        return {false, false, false, /*chunked_prefill=*/true,
                /*tiered_kv=*/true};
    }
    std::uint64_t capacityBytes() const override
    {
        return capacity_bytes_;
    }
    std::size_t kvBytesPerElem() const override { return 2; }
    std::unique_ptr<BackendSession>
    makeSession(const WorkloadSpec& workload, const PruningPolicy& policy,
                std::uint64_t request_seed) const override;

    const MnnFastConfig& config() const { return cfg_; }

  private:
    MnnFastConfig cfg_;
    std::uint64_t capacity_bytes_;
};

/** A baseline CPU/GPU platform (TITAN Xp, Xeon, ...) as a backend. */
class PlatformBackend : public AcceleratorBackend
{
  public:
    explicit PlatformBackend(PlatformSpec spec = PlatformSpec::titanXp(),
                             std::uint64_t capacity_bytes =
                                 kBaselineCapacityBytes)
        : spec_(std::move(spec)), capacity_bytes_(capacity_bytes)
    {
    }

    std::string backendName() const override { return spec_.name; }
    BackendCapabilities capabilities() const override
    {
        // Dense fp32 PyTorch-style attention: no sparsity at all.
        return {false, false, false, /*chunked_prefill=*/true,
                /*tiered_kv=*/true};
    }
    std::uint64_t capacityBytes() const override
    {
        return capacity_bytes_;
    }
    /// PyTorch-style fp32 K/V cache.
    std::size_t kvBytesPerElem() const override { return 4; }
    std::unique_ptr<BackendSession>
    makeSession(const WorkloadSpec& workload, const PruningPolicy& policy,
                std::uint64_t request_seed) const override;

    const PlatformSpec& spec() const { return spec_; }

  private:
    PlatformSpec spec_;
    std::uint64_t capacity_bytes_;
};

} // namespace spatten

#endif // SPATTEN_BASELINES_BASELINE_BACKENDS_HPP
