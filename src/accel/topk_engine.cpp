#include "accel/topk_engine.hpp"

#include <algorithm>
#include <limits>

#include "accel/zero_eliminator.hpp"
#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace spatten {

TopkEngine::TopkEngine(TopkEngineConfig cfg) : cfg_(cfg), prng_(cfg.seed)
{
    SPATTEN_ASSERT(cfg_.parallelism >= 1, "parallelism must be >= 1");
}

TopkResult
TopkEngine::run(const std::vector<float>& values, std::size_t k)
{
    const std::size_t n = values.size();
    SPATTEN_ASSERT(k >= 1 && k <= n, "top-k k=%zu out of [1, %zu]", k, n);
    TopkResult res;

    // ---- Quick-select (Algorithm 3) ----
    std::vector<float> fifo_l = values; // FIFO_L starts with the inputs.
    std::vector<float> fifo_r;
    std::size_t target = k;
    std::size_t num_eq_pivot = 0;
    float pivot = 0.0f;
    bool pivot_valid = false;

    while (true) {
        // STATE_START: decide which side still contains the k-th largest.
        res.cycles += 1;
        if (fifo_r.size() + num_eq_pivot <= target) {
            if (pivot_valid && fifo_r.size() + num_eq_pivot == target &&
                fifo_r.size() <= target) {
                // size(FIFO_R) <= target <= size(FIFO_R)+num_eq_pivot:
                // the pivot itself is the k-th largest.
                break;
            }
            // Pivot too large: everything in FIFO_R (and the pivot copies)
            // is part of the top-k; continue inside FIFO_L.
            target -= fifo_r.size() + num_eq_pivot;
            fifo_r.clear();
            if (fifo_l.empty()) {
                SPATTEN_ASSERT(pivot_valid, "empty quick-select state");
                break;
            }
            pivot = fifo_l[prng_.below(fifo_l.size())];
            pivot_valid = true;
            // STATE_RUN on FIFO_L.
            std::vector<float> nl, nr;
            num_eq_pivot = 0;
            for (float item : fifo_l) {
                if (item < pivot)
                    nl.push_back(item);
                else if (item > pivot)
                    nr.push_back(item);
                else
                    ++num_eq_pivot;
            }
            res.comparisons += fifo_l.size();
            res.cycles += ceilDiv(fifo_l.size(), cfg_.parallelism) +
                          ZeroEliminator::latencyCycles(fifo_l.size());
            ++res.quickselect_passes;
            fifo_l.swap(nl);
            fifo_r.swap(nr);
        } else if (fifo_r.size() > target) {
            // Pivot too small: the k-th largest lives in FIFO_R.
            fifo_l.clear();
            pivot = fifo_r[prng_.below(fifo_r.size())];
            pivot_valid = true;
            std::vector<float> nl, nr;
            num_eq_pivot = 0;
            std::vector<float> src;
            src.swap(fifo_r);
            for (float item : src) {
                if (item < pivot)
                    nl.push_back(item);
                else if (item > pivot)
                    nr.push_back(item);
                else
                    ++num_eq_pivot;
            }
            res.comparisons += src.size();
            res.cycles += ceilDiv(src.size(), cfg_.parallelism) +
                          ZeroEliminator::latencyCycles(src.size());
            ++res.quickselect_passes;
            fifo_l.swap(nl);
            fifo_r.swap(nr);
        } else {
            // size(FIFO_R) <= target < size(FIFO_R) + num_eq_pivot.
            break;
        }
    }
    SPATTEN_ASSERT(pivot_valid, "quick-select terminated without pivot");
    res.k_th_largest = pivot;
    res.num_eq_kth_kept = target - fifo_r.size();

    // ---- Filter pass over the buffered original inputs ----
    // Items strictly greater than the threshold always survive; equal
    // items survive until the tie budget is exhausted (earliest first,
    // which is the order they stream out of the buffer FIFO).
    std::size_t eq_budget = res.num_eq_kth_kept;
    res.indices.reserve(k);
    for (std::size_t i = 0; i < n; ++i) {
        if (values[i] > res.k_th_largest) {
            res.indices.push_back(i);
        } else if (values[i] == res.k_th_largest && eq_budget > 0) {
            res.indices.push_back(i);
            --eq_budget;
        }
    }
    res.comparisons += n;
    res.cycles += ceilDiv(n, cfg_.parallelism) +
                  ZeroEliminator::latencyCycles(n);
    SPATTEN_ASSERT(res.indices.size() == k,
                   "top-k filter kept %zu of expected %zu",
                   res.indices.size(), k);

    total_cycles_ += res.cycles;
    total_comparisons_ += res.comparisons;
    return res;
}

void
TopkEngine::resetStats()
{
    total_cycles_ = 0;
    total_comparisons_ = 0;
}

Cycles
TopkEngine::selectStreamCycles(std::size_t n) const
{
    if (n <= 1)
        return 1;
    return ceilDiv<std::size_t>(2 * n, cfg_.parallelism) +
           ceilDiv<std::size_t>(n, cfg_.parallelism);
}

StageTiming
TopkEngine::timing(const ExecutionContext& ctx) const
{
    StageTiming t;
    // The quick-select stage of the local-V top-k is the occupancy
    // bottleneck of that engine (2n expected element-ops per query).
    if (ctx.local_value_pruning)
        t.ii_cycles = ceilDiv<std::size_t>(2 * ctx.survivorTokens(),
                                           cfg_.parallelism);
    if (ctx.token_pruning && ctx.token_prune_ratio > 0.0)
        t.layer_cycles += selectStreamCycles(ctx.survivorTokens());
    if (ctx.head_pruning && ctx.head_prune_ratio > 0.0)
        t.layer_cycles += selectStreamCycles(ctx.alive_heads);
    return t;
}

ActivityCounts
TopkEngine::energy(const ExecutionContext& ctx) const
{
    ActivityCounts a;
    // ~3n comparator ops per selection (2n quick-select + n filter).
    if (ctx.local_value_pruning)
        a.topk_comparisons +=
            ctx.queryRows() * 3.0 * static_cast<double>(ctx.survivorTokens());
    if (ctx.token_pruning && ctx.token_prune_ratio > 0.0)
        a.topk_comparisons += 3.0 * static_cast<double>(ctx.survivorTokens());
    return a;
}

StageTraffic
TopkEngine::traffic(const ExecutionContext&) const
{
    return {}; // Candidates live in the engine FIFOs.
}

FullSortResult
batcherSortDescending(const std::vector<float>& values,
                      std::size_t parallelism)
{
    SPATTEN_ASSERT(parallelism >= 1, "parallelism must be >= 1");
    FullSortResult res;
    const std::size_t n = values.size();
    if (n == 0)
        return res;
    // Pad to a power of two with -inf so padding sinks to the tail.
    const std::size_t np = std::size_t{1} << ceilLog2(n);
    std::vector<float> a = values;
    a.resize(np, -std::numeric_limits<float>::infinity());

    // Batcher merge-exchange sort network (Knuth TAOCP v3, Alg. 5.2.2M).
    const std::size_t t = static_cast<std::size_t>(ceilLog2(np));
    for (std::size_t p = np >> 1; p >= 1; p >>= 1) {
        std::size_t q = np >> 1;
        std::size_t r = 0;
        std::size_t d = p;
        while (true) {
            std::size_t stage_cmps = 0;
            for (std::size_t i = 0; i + d < np; ++i) {
                if ((i & p) == r) {
                    ++stage_cmps;
                    if (a[i] < a[i + d])
                        std::swap(a[i], a[i + d]);
                }
            }
            ++res.stages;
            res.comparisons += stage_cmps;
            res.cycles += std::max<Cycles>(
                1, ceilDiv(stage_cmps, parallelism));
            if (q == p)
                break;
            d = q - p;
            q >>= 1;
            r = p;
        }
    }
    (void)t;
    a.resize(n);
    res.sorted_desc = std::move(a);
    return res;
}

} // namespace spatten
