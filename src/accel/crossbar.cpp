#include "accel/crossbar.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace spatten {

Crossbar::Crossbar(CrossbarConfig cfg) : cfg_(cfg)
{
    SPATTEN_ASSERT(cfg_.masters > 0 && cfg_.slaves > 0, "bad crossbar size");
}

CrossbarRouteResult
Crossbar::route(const std::vector<std::size_t>& channel_ids)
{
    CrossbarRouteResult res;
    if (channel_ids.empty())
        return res;
    // Per-channel demand; each channel grants one request per cycle.
    std::vector<std::size_t> demand(cfg_.slaves, 0);
    for (std::size_t ch : channel_ids) {
        SPATTEN_ASSERT(ch < cfg_.slaves, "channel %zu out of %zu", ch,
                       cfg_.slaves);
        ++demand[ch];
    }
    std::size_t max_demand = 0;
    for (std::size_t d : demand)
        max_demand = std::max(max_demand, d);

    // The batch also cannot be presented faster than `masters` per cycle.
    const Cycles present =
        ceilDiv(channel_ids.size(), cfg_.masters);
    res.cycles = std::max<Cycles>(max_demand, present);
    res.routed = channel_ids.size();
    // Requests beyond one-per-channel-per-cycle wait: count them.
    for (std::size_t d : demand)
        res.conflicts += d > 0 ? d - 1 : 0;

    total_routed_ += res.routed;
    total_conflicts_ += res.conflicts;
    return res;
}

void
Crossbar::resetStats()
{
    total_routed_ = 0;
    total_conflicts_ = 0;
}

} // namespace spatten
