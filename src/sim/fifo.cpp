// Fifo is a header-only template; this translation unit exists to give the
// sim library a home for explicit instantiations used widely in tests,
// improving build times.
#include "sim/fifo.hpp"

#include <cstdint>

namespace spatten {

template class Fifo<std::uint64_t>;
template class Fifo<float>;

} // namespace spatten
