/// Property-based parameterized sweeps (TEST_P) over the core invariants:
/// top-k correctness across sizes/parallelism, pipeline monotonicity in
/// sequence length and pruning ratio, quantization error ordering, and
/// schedule arithmetic.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "accel/spatten_accelerator.hpp"
#include "accel/topk_engine.hpp"
#include "core/pruning.hpp"
#include "quant/linear_quant.hpp"
#include "tensor/ops.hpp"

namespace spatten {
namespace {

// ---------------------------------------------------------------------
// Top-k engine: functional equivalence across (n, parallelism).
// ---------------------------------------------------------------------
class TopkSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>>
{
};

TEST_P(TopkSweep, MatchesReferenceAndOrderInvariant)
{
    const auto [n, parallelism] = GetParam();
    Prng p(n * 131 + parallelism);
    std::vector<float> v(n);
    for (auto& x : v)
        x = static_cast<float>(p.below(64)) * 0.25f;
    TopkEngineConfig cfg;
    cfg.parallelism = parallelism;
    TopkEngine engine(cfg);
    for (std::size_t k : {std::size_t{1}, n / 3 + 1, n}) {
        const auto res = engine.run(v, k);
        EXPECT_EQ(res.indices, topkKeepOrder(v, k))
            << "n=" << n << " k=" << k << " P=" << parallelism;
        EXPECT_TRUE(std::is_sorted(res.indices.begin(),
                                   res.indices.end()));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TopkSweep,
    ::testing::Combine(::testing::Values<std::size_t>(3, 17, 64, 257,
                                                      1024),
                       ::testing::Values<std::size_t>(1, 4, 16, 64)));

// ---------------------------------------------------------------------
// Pipeline: latency is monotone in sequence length.
// ---------------------------------------------------------------------
class PipelineLengthSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PipelineLengthSweep, LongerInputNeverFaster)
{
    const std::size_t len = GetParam();
    SpAttenAccelerator accel;
    WorkloadSpec w;
    w.model = ModelSpec::bertBase();
    w.summarize_len = len;
    const auto r1 = accel.run(w, PruningPolicy::disabled());
    w.summarize_len = len * 2;
    const auto r2 = accel.run(w, PruningPolicy::disabled());
    EXPECT_GT(r2.seconds, r1.seconds);
    EXPECT_GT(r2.dram_bytes, r1.dram_bytes);
    EXPECT_GT(r2.attention_flops, r1.attention_flops);
}

INSTANTIATE_TEST_SUITE_P(Lengths, PipelineLengthSweep,
                         ::testing::Values<std::size_t>(16, 64, 128, 256,
                                                        400));

// ---------------------------------------------------------------------
// Pipeline: more aggressive token pruning never increases latency,
// traffic or compute.
// ---------------------------------------------------------------------
class PipelineRatioSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(PipelineRatioSweep, MorePruningNeverCostsMore)
{
    const double ratio = GetParam();
    SpAttenAccelerator accel;
    WorkloadSpec w;
    w.model = ModelSpec::gpt2Small();
    w.summarize_len = 512;
    w.generate_len = 8;
    w.skip_summarization = true;
    PruningPolicy lo = PruningPolicy::disabled();
    lo.token_pruning = true;
    lo.token_avg_ratio = ratio;
    PruningPolicy hi = lo;
    hi.token_avg_ratio = std::min(0.9, ratio + 0.15);
    const auto rl = accel.run(w, lo);
    const auto rh = accel.run(w, hi);
    EXPECT_LE(rh.attention_flops, rl.attention_flops * 1.0001);
    EXPECT_LE(rh.dram_bytes, rl.dram_bytes * 1.0001);
    EXPECT_LE(rh.seconds, rl.seconds * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(Ratios, PipelineRatioSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.4, 0.6));

// ---------------------------------------------------------------------
// Quantization: wider MSB planes never increase reconstruction error.
// ---------------------------------------------------------------------
class BitwidthSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BitwidthSweep, MsbOnlyErrorShrinksWithWidth)
{
    const int msb = GetParam();
    Prng p(static_cast<std::uint64_t>(msb));
    const Tensor x = Tensor::randn({2000}, p);
    const BitplaneTensor narrow = quant::splitPlanes(x, {msb, 4});
    const BitplaneTensor wide = quant::splitPlanes(x, {msb + 2, 4});
    EXPECT_GE(ops::meanAbsDiff(x, quant::reconstructMsbOnly(narrow)),
              ops::meanAbsDiff(x, quant::reconstructMsbOnly(wide)));
}

INSTANTIATE_TEST_SUITE_P(Widths, BitwidthSweep,
                         ::testing::Values(4, 6, 8, 10));

// ---------------------------------------------------------------------
// Schedules: for every (layers, ratio) combination the average over the
// pruned layers equals the requested ratio and front layers stay clean.
// ---------------------------------------------------------------------
class ScheduleSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>>
{
};

TEST_P(ScheduleSweep, AverageAndFrontInvariants)
{
    const auto [layers, ratio] = GetParam();
    const PruningSchedule s = makeTokenSchedule(layers, ratio);
    const auto front = static_cast<std::size_t>(
        std::ceil(0.15 * static_cast<double>(layers)));
    double sum = 0.0;
    std::size_t pruned = 0;
    for (std::size_t l = 0; l < layers; ++l) {
        if (l < front) {
            EXPECT_EQ(s.ratioAt(l), 0.0);
        }
        if (s.ratioAt(l) > 0.0) {
            sum += s.ratioAt(l);
            ++pruned;
        }
        EXPECT_GE(s.ratioAt(l), 0.0);
        EXPECT_LT(s.ratioAt(l), 1.0);
    }
    if (ratio > 0.0 && layers > front) {
        ASSERT_GT(pruned, 0u);
        EXPECT_NEAR(sum / static_cast<double>(pruned), ratio, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, ScheduleSweep,
    ::testing::Combine(::testing::Values<std::size_t>(2, 6, 12, 24, 48),
                       ::testing::Values(0.0, 0.05, 0.2, 0.4)));

// ---------------------------------------------------------------------
// Local value pruning: kept set size follows ceil((1-r) * n) exactly.
// ---------------------------------------------------------------------
class LocalVSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>>
{
};

TEST_P(LocalVSweep, KeptCountMatchesFormula)
{
    const auto [n, ratio] = GetParam();
    Prng p(99);
    std::vector<float> prob(n);
    for (auto& x : prob)
        x = static_cast<float>(p.uniform());
    const auto kept = localValuePrune(prob, ratio);
    const auto want = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(static_cast<double>(n) * (1.0 - ratio))));
    EXPECT_EQ(kept.size(), ratio <= 0.0 ? n : want);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, LocalVSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 7, 64, 500),
                       ::testing::Values(0.0, 0.3, 0.5, 0.9)));

// ---------------------------------------------------------------------
// Policy fuzz: random-but-valid policies never violate the pipeline's
// result invariants.
// ---------------------------------------------------------------------
TEST(PolicyFuzz, RandomPoliciesKeepInvariants)
{
    Prng p(4242);
    SpAttenAccelerator accel;
    for (int trial = 0; trial < 25; ++trial) {
        WorkloadSpec w;
        w.model = p.chance(0.5) ? ModelSpec::bertBase()
                                : ModelSpec::gpt2Small();
        w.summarize_len = 8 + p.below(400);
        w.generate_len = p.chance(0.5) ? p.below(16) : 0;
        w.skip_summarization = w.generate_len > 0 && p.chance(0.5);

        PruningPolicy pol;
        pol.token_pruning = p.chance(0.7);
        pol.token_avg_ratio = p.uniform(0.0, 0.6);
        pol.head_pruning = p.chance(0.5);
        pol.head_avg_ratio = p.uniform(0.0, 0.4);
        pol.local_value_pruning = p.chance(0.7);
        pol.local_v_ratio = p.uniform(0.0, 0.7);
        pol.pq.enabled = p.chance(0.5);
        pol.pq.setting = kPaperBitplaneSettings[p.below(5)];
        pol.lsb_fraction = p.uniform(0.0, 0.3);

        const RunResult r = accel.run(w, pol);
        EXPECT_GT(r.seconds, 0.0) << "trial " << trial;
        EXPECT_GE(r.dramReduction(), 0.99) << "trial " << trial;
        EXPECT_GE(r.computeReduction(), 0.99) << "trial " << trial;
        EXPECT_LE(r.effectiveTflops(),
                  accel.computeRoofTflops() * 1.001)
            << "trial " << trial;
        EXPECT_GE(r.energy.totalJ(), 0.0) << "trial " << trial;
    }
}

} // namespace
} // namespace spatten
