#include "accel/softmax_module.hpp"

#include <algorithm>
#include <cmath>

#include "accel/taylor_exp.hpp"
#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace spatten {

SoftmaxModule::SoftmaxModule(SoftmaxModuleConfig cfg) : cfg_(cfg)
{
    SPATTEN_ASSERT(cfg_.parallelism > 0, "softmax parallelism");
}

Cycles
SoftmaxModule::timingCycles(std::size_t n) const
{
    // Streaming exp+accumulate, then a division pass, both `parallelism`
    // wide; the pipeline depth is paid once per row.
    return 2 * ceilDiv(n, cfg_.parallelism) + cfg_.pipeline_depth;
}

StageTiming
SoftmaxModule::timing(const ExecutionContext& ctx) const
{
    StageTiming t;
    t.ii_cycles = ceilDiv(ctx.survivorTokens(), cfg_.parallelism);
    return t;
}

ActivityCounts
SoftmaxModule::energy(const ExecutionContext& ctx) const
{
    ActivityCounts a;
    a.softmax_elems = ctx.queryRows() *
                      static_cast<double>(ctx.survivorTokens()) *
                      (1.0 + ctx.active_lsb_fraction);
    return a;
}

StageTraffic
SoftmaxModule::traffic(const ExecutionContext&) const
{
    return {}; // Scores stay in the on-path FIFO; no SRAM/DRAM traffic.
}

SoftmaxTiming
SoftmaxModule::run(const std::vector<float>& scores,
                   std::vector<float>& prob_out, double lsb_threshold) const
{
    SoftmaxTiming t;
    t.elems = scores.size();
    t.cycles = timingCycles(scores.size());
    prob_out.resize(scores.size());
    if (scores.empty())
        return t;

    float m = scores[0];
    for (float s : scores)
        m = std::max(m, s);
    double denom = 0.0;
    for (std::size_t i = 0; i < scores.size(); ++i) {
        // Hardware exp: 5th-order Taylor with range reduction (§V-A).
        prob_out[i] = taylorExp5(scores[i] - m);
        denom += prob_out[i];
    }
    // Re-quantize probabilities to prob_bits fixed point in [0, 1).
    const float steps = static_cast<float>(1 << cfg_.prob_bits);
    for (auto& p : prob_out) {
        p = static_cast<float>(p / denom);
        p = std::round(p * steps) / steps;
        t.max_prob = std::max(t.max_prob, p);
    }
    t.needs_lsb = static_cast<double>(t.max_prob) < lsb_threshold;
    return t;
}

} // namespace spatten
