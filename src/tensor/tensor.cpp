#include "tensor/tensor.hpp"

#include <cmath>
#include <numeric>

namespace spatten {

std::size_t
shapeNumel(const Shape& shape)
{
    std::size_t n = 1;
    for (std::size_t d : shape)
        n *= d;
    return n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shapeNumel(shape_), 0.0f)
{
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shapeNumel(shape_), fill)
{
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data))
{
    SPATTEN_ASSERT(data_.size() == shapeNumel(shape_),
                   "data size %zu does not match shape %s", data_.size(),
                   shapeStr().c_str());
}

Tensor
Tensor::fromList(std::initializer_list<float> values)
{
    return Tensor({values.size()}, std::vector<float>(values));
}

Tensor
Tensor::randn(Shape shape, Prng& prng, float mean, float stddev)
{
    Tensor t(std::move(shape));
    for (auto& x : t.data_)
        x = static_cast<float>(prng.gaussian(mean, stddev));
    return t;
}

Tensor
Tensor::uniform(Shape shape, Prng& prng, float lo, float hi)
{
    Tensor t(std::move(shape));
    for (auto& x : t.data_)
        x = static_cast<float>(prng.uniform(lo, hi));
    return t;
}

std::size_t
Tensor::dim(int i) const
{
    const int n = static_cast<int>(shape_.size());
    if (i < 0)
        i += n;
    SPATTEN_ASSERT(i >= 0 && i < n, "dim %d out of range for %s", i,
                   shapeStr().c_str());
    return shape_[static_cast<std::size_t>(i)];
}

float
Tensor::at(std::size_t r, std::size_t c) const
{
    SPATTEN_ASSERT(ndim() == 2, "2-D access on %s", shapeStr().c_str());
    return data_[r * shape_[1] + c];
}

float&
Tensor::at(std::size_t r, std::size_t c)
{
    SPATTEN_ASSERT(ndim() == 2, "2-D access on %s", shapeStr().c_str());
    return data_[r * shape_[1] + c];
}

float
Tensor::at(std::size_t i, std::size_t j, std::size_t k) const
{
    SPATTEN_ASSERT(ndim() == 3, "3-D access on %s", shapeStr().c_str());
    return data_[(i * shape_[1] + j) * shape_[2] + k];
}

float&
Tensor::at(std::size_t i, std::size_t j, std::size_t k)
{
    SPATTEN_ASSERT(ndim() == 3, "3-D access on %s", shapeStr().c_str());
    return data_[(i * shape_[1] + j) * shape_[2] + k];
}

Tensor&
Tensor::reshape(Shape new_shape)
{
    SPATTEN_ASSERT(shapeNumel(new_shape) == data_.size(),
                   "reshape %s -> invalid element count", shapeStr().c_str());
    shape_ = std::move(new_shape);
    return *this;
}

Tensor
Tensor::reshaped(Shape new_shape) const
{
    Tensor t = *this;
    t.reshape(std::move(new_shape));
    return t;
}

Tensor
Tensor::row(std::size_t r) const
{
    SPATTEN_ASSERT(ndim() == 2 && r < shape_[0], "row %zu of %s", r,
                   shapeStr().c_str());
    const std::size_t cols = shape_[1];
    std::vector<float> out(data_.begin() + static_cast<long>(r * cols),
                           data_.begin() + static_cast<long>((r + 1) * cols));
    return Tensor({cols}, std::move(out));
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

double
Tensor::sum() const
{
    return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double
Tensor::meanAbs() const
{
    if (data_.empty())
        return 0.0;
    double s = 0.0;
    for (float x : data_)
        s += std::fabs(x);
    return s / static_cast<double>(data_.size());
}

float
Tensor::maxElem() const
{
    SPATTEN_ASSERT(!data_.empty(), "maxElem of empty tensor");
    float m = data_[0];
    for (float x : data_)
        m = std::max(m, x);
    return m;
}

std::string
Tensor::shapeStr() const
{
    std::string s = "[";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
        if (i)
            s += ", ";
        s += std::to_string(shape_[i]);
    }
    return s + "]";
}

} // namespace spatten
