/**
 * @file
 * The paper's 30-benchmark evaluation suite (§V-A): nine GLUE tasks plus
 * SQuAD v1.1/v2.0 on BERT-Base and BERT-Large (22 discriminative
 * benchmarks), and language modeling on Wikitext-2, Wikitext-103, Penn
 * Tree Bank and One-Billion-Word with GPT-2-Small and GPT-2-Medium
 * (8 generative benchmarks).
 *
 * We cannot ship the datasets; each benchmark is represented by its
 * tensor shapes (model config, average dev-set sequence length — the
 * quantity the paper uses to set input length) and the pruning policy
 * the paper's methodology implies (longer inputs -> larger ratios;
 * BERT uses static quantization, GPT-2 progressive).
 */
#ifndef SPATTEN_WORKLOAD_BENCHMARKS_HPP
#define SPATTEN_WORKLOAD_BENCHMARKS_HPP

#include <string>
#include <vector>

#include "core/model_spec.hpp"

namespace spatten {

/** One evaluation benchmark: workload shapes + SpAtten policy. */
struct BenchmarkSpec
{
    WorkloadSpec workload;
    PruningPolicy policy;
    bool generative = false;
};

/** The 22 BERT benchmarks (GLUE x9 + SQuAD x2, Base and Large). */
std::vector<BenchmarkSpec> bertBenchmarks();

/** The 8 GPT-2 benchmarks (4 LM datasets, Small and Medium). */
std::vector<BenchmarkSpec> gptBenchmarks();

/** All 30 benchmarks in the paper's Fig. 14 order. */
std::vector<BenchmarkSpec> paperBenchmarks();

/** Find a benchmark by name; fatal() when missing. */
const BenchmarkSpec& findBenchmark(const std::vector<BenchmarkSpec>& list,
                                   const std::string& name);

} // namespace spatten

#endif // SPATTEN_WORKLOAD_BENCHMARKS_HPP
