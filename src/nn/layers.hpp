/**
 * @file
 * Transformer building blocks with manual forward/backward passes:
 * Linear, LayerNorm, Embedding, ReLU and the softmax cross-entropy loss.
 * Each forward returns (or fills) a cache that backward consumes; batch
 * handling is by looping over sequences (batch sizes here are small).
 */
#ifndef SPATTEN_NN_LAYERS_HPP
#define SPATTEN_NN_LAYERS_HPP

#include <vector>

#include "nn/autograd.hpp"
#include "tensor/tensor.hpp"

namespace spatten {

/** Fully-connected layer y = xW + b with manual backprop. */
class Linear
{
  public:
    /** Xavier-initialized layer. */
    Linear(std::string name, std::size_t in, std::size_t out, Prng& prng);

    /** y [N,out] from x [N,in]. */
    Tensor forward(const Tensor& x) const;

    /**
     * Backward: given x from forward and upstream dy, accumulate dW/db
     * and return dx.
     */
    Tensor backward(const Tensor& x, const Tensor& dy);

    std::size_t inDim() const { return in_; }
    std::size_t outDim() const { return out_; }

    Param& weight() { return w_; }
    Param& bias() { return b_; }
    void collectParams(std::vector<Param*>& out);

  private:
    std::size_t in_, out_;
    Param w_; ///< [in, out]
    Param b_; ///< [out]
};

/** Row-wise layer normalization with learnable gain/bias. */
class LayerNorm
{
  public:
    LayerNorm(std::string name, std::size_t dim);

    struct Cache
    {
        Tensor xhat;        ///< Normalized input.
        std::vector<float> inv_std; ///< Per-row 1/sqrt(var+eps).
    };

    Tensor forward(const Tensor& x, Cache& cache) const;
    Tensor backward(const Cache& cache, const Tensor& dy);

    void collectParams(std::vector<Param*>& out);

  private:
    std::size_t dim_;
    float eps_ = 1e-5f;
    Param gamma_, beta_;
};

/** Token embedding table with learned additive position embeddings. */
class Embedding
{
  public:
    Embedding(std::string name, std::size_t vocab, std::size_t dim,
              std::size_t max_len, Prng& prng);

    /** [L, dim] = tok[ids] + pos[0..L). */
    Tensor forward(const std::vector<std::size_t>& ids) const;

    /** [1, dim] embedding of one token at absolute position @p pos
     *  (generation-stage stepping with a KV cache). */
    Tensor forwardOne(std::size_t id, std::size_t pos) const;

    /** Accumulate gradients for the used rows. */
    void backward(const std::vector<std::size_t>& ids, const Tensor& dy);

    std::size_t vocab() const { return vocab_; }
    std::size_t dim() const { return dim_; }
    void collectParams(std::vector<Param*>& out);

  private:
    std::size_t vocab_, dim_, max_len_;
    Param tok_; ///< [vocab, dim]
    Param pos_; ///< [max_len, dim]
};

/** ReLU with backward. */
Tensor reluForward(const Tensor& x);
Tensor reluBackward(const Tensor& x, const Tensor& dy);

/**
 * Softmax cross-entropy over logits [N, C] with integer labels.
 * @param d_logits filled with the gradient (softmax - onehot) / N.
 * @return mean loss.
 */
double softmaxCrossEntropy(const Tensor& logits,
                           const std::vector<std::size_t>& labels,
                           Tensor& d_logits);

/** Row-wise softmax backward: ds = p * (dp - sum(dp * p)). */
Tensor softmaxBackwardRows(const Tensor& prob, const Tensor& dprob);

} // namespace spatten

#endif // SPATTEN_NN_LAYERS_HPP
