/**
 * @file
 * Synthetic attention-score generators with controllable probability
 * dominance. Used by the Fig. 7 reproduction (quantization error vs max
 * attention probability) and by microbenchmarks that need realistic
 * score rows without running a full model.
 */
#ifndef SPATTEN_WORKLOAD_ATTENTION_TRACE_HPP
#define SPATTEN_WORKLOAD_ATTENTION_TRACE_HPP

#include "common/prng.hpp"
#include "tensor/tensor.hpp"

namespace spatten {

/**
 * One row of attention scores whose softmax has a tunable dominance.
 *
 * @param len       number of keys.
 * @param dominance 0 => near-uniform distribution; larger values create
 *                  a dominant token (dominance ~8 gives max prob ~0.99).
 * @param prng      randomness source.
 */
Tensor syntheticScoreRow(std::size_t len, double dominance, Prng& prng);

/**
 * A batch of score rows with dominance drawn uniformly from
 * [0, max_dominance], covering the Fig. 7 x-axis.
 */
std::vector<Tensor> syntheticScoreRows(std::size_t rows, std::size_t len,
                                       double max_dominance, Prng& prng);

/** Max softmax probability of a score row. */
double maxSoftmaxProb(const Tensor& scores);

} // namespace spatten

#endif // SPATTEN_WORKLOAD_ATTENTION_TRACE_HPP
