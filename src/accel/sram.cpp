#include "accel/sram.hpp"

#include "common/logging.hpp"

namespace spatten {

SramModel::SramModel(SramConfig cfg, std::string name)
    : cfg_(cfg), name_(std::move(name))
{
    SPATTEN_ASSERT(cfg_.capacity_kb > 0 && cfg_.line_bytes > 0,
                   "bad SRAM geometry for %s", name_.c_str());
}

std::size_t
SramModel::usableBytes() const
{
    const std::size_t total = cfg_.capacity_kb * 1024;
    return cfg_.double_buffered ? total / 2 : total;
}

std::size_t
SramModel::maxTokens(std::size_t d) const
{
    SPATTEN_ASSERT(d > 0, "zero token dimension");
    const double bytes_per_token =
        static_cast<double>(d) * cfg_.elem_bits / 8.0;
    return static_cast<std::size_t>(static_cast<double>(usableBytes()) /
                                    bytes_per_token);
}

bool
SramModel::fits(std::size_t tokens, std::size_t d) const
{
    return tokens <= maxTokens(d);
}

void
SramModel::recordFill(std::size_t tokens, std::size_t d)
{
    SPATTEN_ASSERT(fits(tokens, d),
                   "%s overflow: %zu tokens x %zu dims exceeds %zu tokens",
                   name_.c_str(), tokens, d, maxTokens(d));
    bytes_written_ += static_cast<double>(tokens * d) * cfg_.elem_bits / 8.0;
}

void
SramModel::recordReads(double elems)
{
    bytes_read_ += elems * cfg_.elem_bits / 8.0;
}

void
SramModel::recordWrites(double elems)
{
    bytes_written_ += elems * cfg_.elem_bits / 8.0;
}

void
SramModel::reset()
{
    bytes_written_ = 0;
    bytes_read_ = 0;
}

} // namespace spatten
