/// Regenerates Fig. 14: SpAtten speedup and energy efficiency over
/// TITAN Xp GPU, Xeon CPU, Jetson Nano and Raspberry Pi on the 30
/// benchmarks (attention layers only).
#include <cstdio>

#include "accel/spatten_accelerator.hpp"
#include "baselines/platform_model.hpp"
#include "bench_util.hpp"
#include "report/report.hpp"
#include "workload/benchmarks.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Fig. 14",
           "Speedup & energy efficiency of SpAtten over CPU/GPU baselines "
           "on 30 benchmarks (attention layers)");

    const std::vector<PlatformModel> platforms = {
        PlatformModel(PlatformSpec::titanXp()),
        PlatformModel(PlatformSpec::xeon()),
        PlatformModel(PlatformSpec::jetsonNano()),
        PlatformModel(PlatformSpec::raspberryPi()),
    };

    SpAttenAccelerator accel;
    CsvWriter csv("fig14_speedup_energy.csv");
    csv.header({"benchmark", "spatten_seconds", "speedup_gpu",
                "speedup_cpu", "speedup_nano", "speedup_pi",
                "energy_gpu", "energy_cpu", "energy_nano", "energy_pi"});
    std::printf("%-24s | %9s %9s %9s %9s | %9s %9s %9s %9s\n", "benchmark",
                "sp/GPU", "sp/CPU", "sp/Nano", "sp/Pi", "en/GPU",
                "en/CPU", "en/Nano", "en/Pi");
    rule();

    std::vector<std::vector<double>> speedups(4), effs(4);
    std::vector<BenchRecord> records;
    for (const auto& b : paperBenchmarks()) {
        const RunResult sp = accel.run(b.workload, b.policy);
        records.push_back(recordFromRun(b.workload.name, sp));
        std::printf("%-24s |", b.workload.name.c_str());
        double row_speed[4], row_eff[4];
        for (std::size_t p = 0; p < platforms.size(); ++p) {
            const PlatformResult pr =
                platforms[p].attention(b.workload);
            row_speed[p] = pr.seconds / sp.seconds;
            row_eff[p] = pr.energy_j / sp.energy.totalJ();
            speedups[p].push_back(row_speed[p]);
            effs[p].push_back(row_eff[p]);
        }
        for (double s : row_speed)
            std::printf(" %9.1f", s);
        std::printf(" |");
        for (double e : row_eff)
            std::printf(" %9.1f", e);
        std::printf("\n");
        std::vector<std::string> cells{b.workload.name};
        cells.push_back(fmtNum(sp.seconds));
        for (double s : row_speed)
            cells.push_back(fmtNum(s));
        for (double e : row_eff)
            cells.push_back(fmtNum(e));
        csv.row(cells);
    }
    rule();
    std::printf("%-24s |", "geomean");
    for (auto& v : speedups)
        std::printf(" %9.1f", geomean(v));
    std::printf(" |");
    for (auto& v : effs)
        std::printf(" %9.1f", geomean(v));
    std::printf("\n");
    std::printf("\nPaper geomeans: speedup 162x / 347x / 1095x / 5071x; "
                "energy 1193x / 4059x / 406x / 1910x.\n");
    std::printf("Per-benchmark rows written to %s\n", csv.path().c_str());
    writeBenchJson("fig14_speedup_energy", records);
    return 0;
}
