/// Tests for progressive quantization: the LSB decision, the two-pass
/// score computation, and the Fig. 7 error-vs-dominance relationship.
#include <gtest/gtest.h>

#include <cmath>

#include "core/progressive_quant.hpp"
#include "tensor/ops.hpp"

namespace spatten {
namespace {

TEST(NeedsLsb, FlatDistributionNeedsLsb)
{
    // 20-way uniform: max prob 0.05 < 0.1.
    std::vector<float> flat(20, 0.05f);
    EXPECT_TRUE(needsLsb(flat, 0.1));
}

TEST(NeedsLsb, DominantDistributionSkipsLsb)
{
    std::vector<float> dom{0.9f, 0.05f, 0.05f};
    EXPECT_FALSE(needsLsb(dom, 0.1));
}

TEST(NeedsLsb, ThresholdBoundary)
{
    std::vector<float> row{0.1f, 0.9f};
    EXPECT_FALSE(needsLsb(row, 0.5));  // max = 0.9 >= 0.5
    EXPECT_TRUE(needsLsb(row, 0.95));  // max = 0.9 < 0.95
}

TEST(ProgressiveScores, LsbPassMatchesFullPrecisionQuant)
{
    Prng p(1);
    const std::size_t d = 64, l = 32;
    const Tensor q = Tensor::randn({d}, p);
    const Tensor k = Tensor::randn({l, d}, p);
    const BitplaneTensor planes = quant::splitPlanes(k, {8, 4});

    ProgressiveQuantConfig cfg;
    cfg.setting = {8, 4};
    cfg.max_prob_threshold = 1.1; // force the LSB pass
    const ProgressiveResult res =
        progressiveScores(q, planes, 1.0f / std::sqrt(64.0f), cfg);
    EXPECT_TRUE(res.fetched_lsb);

    // The recomputed probabilities must equal probabilities from the
    // fully reconstructed 12-bit keys.
    const Tensor k12 = quant::reconstructFull(planes);
    std::vector<float> scores(l);
    for (std::size_t i = 0; i < l; ++i) {
        float acc = 0.0f;
        for (std::size_t j = 0; j < d; ++j)
            acc += q[j] * k12.at(i, j);
        scores[i] = acc / std::sqrt(64.0f);
    }
    Tensor st({l}, scores);
    const Tensor ref = ops::softmax(st);
    for (std::size_t i = 0; i < l; ++i)
        EXPECT_NEAR(res.prob[i], ref[i], 1e-5f);
}

TEST(ProgressiveScores, MsbOnlyWhenConfident)
{
    Prng p(2);
    const std::size_t d = 32, l = 16;
    const Tensor q = Tensor::randn({d}, p, 0.0f, 2.0f);
    // Make one key nearly parallel to q so its score dominates.
    Tensor k = Tensor::randn({l, d}, p, 0.0f, 0.1f);
    for (std::size_t j = 0; j < d; ++j)
        k.at(3, j) = q[j] * 3.0f;
    const BitplaneTensor planes = quant::splitPlanes(k, {8, 4});

    ProgressiveQuantConfig cfg;
    cfg.setting = {8, 4};
    cfg.max_prob_threshold = 0.1;
    const ProgressiveResult res =
        progressiveScores(q, planes, 1.0f / std::sqrt(32.0f), cfg);
    EXPECT_FALSE(res.fetched_lsb);
    EXPECT_GT(res.msb_bits_fetched, 0.0);
    EXPECT_EQ(res.lsb_bits_fetched, 0.0);
}

TEST(ProgressiveScores, DisabledNeverFetchesLsb)
{
    Prng p(3);
    const Tensor q = Tensor::randn({16}, p);
    const Tensor k = Tensor::randn({64, 16}, p, 0.0f, 0.01f); // flat scores
    const BitplaneTensor planes = quant::splitPlanes(k, {4, 4});
    ProgressiveQuantConfig cfg;
    cfg.enabled = false;
    cfg.setting = {4, 4};
    const ProgressiveResult res =
        progressiveScores(q, planes, 0.25f, cfg);
    EXPECT_FALSE(res.fetched_lsb);
}

TEST(ProgressiveScores, ProbsSumToOne)
{
    Prng p(4);
    const Tensor q = Tensor::randn({24}, p);
    const Tensor k = Tensor::randn({40, 24}, p);
    const BitplaneTensor planes = quant::splitPlanes(k, {6, 4});
    ProgressiveQuantConfig cfg;
    cfg.setting = {6, 4};
    const ProgressiveResult res = progressiveScores(
        q, planes, 1.0f / std::sqrt(24.0f), cfg);
    double s = 0.0;
    for (float x : res.prob)
        s += x;
    EXPECT_NEAR(s, 1.0, 1e-5);
}

// Fig. 7 mechanism: softmax quantization error falls as the max attention
// probability rises. We generate dominated and flat score rows and verify
// the error ordering with 4-bit quantization.
TEST(QuantizedSoftmaxError, DominatedRowsHaveSmallerError)
{
    Prng p(5);
    const std::size_t l = 64;
    double err_flat = 0.0, err_dom = 0.0;
    const int trials = 50;
    for (int t = 0; t < trials; ++t) {
        Tensor flat = Tensor::randn({l}, p, 0.0f, 0.3f);
        err_flat += quantizedSoftmaxError(flat, 4);

        Tensor dom = Tensor::randn({l}, p, 0.0f, 0.3f);
        dom[p.below(l)] += 8.0f; // a dominant score
        err_dom += quantizedSoftmaxError(dom, 4);
    }
    EXPECT_LT(err_dom, err_flat);
}

// Eq. 2: total softmax output error for a score perturbation ∆s is
// ∆s * 2p(1-p) <= ∆s / 2.
TEST(SoftmaxErrorBound, PerturbationContracts)
{
    Prng p(6);
    for (int t = 0; t < 20; ++t) {
        Tensor s = Tensor::randn({32}, p);
        Tensor s2 = s;
        const double ds = 0.01;
        s2[0] += static_cast<float>(ds);
        const Tensor p1 = ops::softmax(s);
        const Tensor p2 = ops::softmax(s2);
        double err = 0.0;
        for (std::size_t i = 0; i < 32; ++i)
            err += std::fabs(p2[i] - p1[i]);
        EXPECT_LT(err, ds * 0.5 * 1.05); // 2p(1-p) <= 1/2 plus slack
    }
}

} // namespace
} // namespace spatten
