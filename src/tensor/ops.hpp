/**
 * @file
 * Dense tensor operations: matmul, softmax, layer norm, activations and
 * elementwise arithmetic. These are the numeric primitives used by both
 * the transformer substrate (src/nn) and the attention reference model
 * (src/core).
 */
#ifndef SPATTEN_TENSOR_OPS_HPP
#define SPATTEN_TENSOR_OPS_HPP

#include "tensor/tensor.hpp"

namespace spatten {
namespace ops {

/** C = A(mxk) * B(kxn). */
Tensor matmul(const Tensor& a, const Tensor& b);

/** C = A(mxk) * B(nxk)^T — row-major friendly for attention Q*K^T. */
Tensor matmulTransposedB(const Tensor& a, const Tensor& b);

/** Transpose of a 2-D tensor. */
Tensor transpose(const Tensor& a);

/** Elementwise a + b. @pre same shape. */
Tensor add(const Tensor& a, const Tensor& b);

/** Elementwise a - b. @pre same shape. */
Tensor sub(const Tensor& a, const Tensor& b);

/** Elementwise a * b (Hadamard). @pre same shape. */
Tensor mul(const Tensor& a, const Tensor& b);

/** a * scalar. */
Tensor scale(const Tensor& a, float s);

/** Add a row vector bias to every row of a 2-D tensor. */
Tensor addRowBias(const Tensor& a, const Tensor& bias);

/** Row-wise softmax over the last dimension of a 2-D tensor. */
Tensor softmaxRows(const Tensor& scores);

/** Numerically-stable softmax of a 1-D tensor. */
Tensor softmax(const Tensor& scores);

/**
 * Row-wise layer normalization of a 2-D tensor with learnable gain/bias.
 * @param eps variance epsilon.
 */
Tensor layerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps = 1e-5f);

/** Elementwise tanh-approximation GELU. */
Tensor gelu(const Tensor& x);

/** Elementwise ReLU. */
Tensor relu(const Tensor& x);

/** argmax over a 1-D tensor. */
std::size_t argmax(const Tensor& x);

/** Max absolute difference between two same-shaped tensors. */
float maxAbsDiff(const Tensor& a, const Tensor& b);

/** Mean absolute difference between two same-shaped tensors. */
double meanAbsDiff(const Tensor& a, const Tensor& b);

/**
 * Gather rows of a 2-D tensor: out[i] = a[indices[i]].
 * Used to materialize pruned K/V matrices.
 */
Tensor gatherRows(const Tensor& a, const std::vector<std::size_t>& indices);

/** Concatenate two 2-D tensors along rows. @pre same column count. */
Tensor concatRows(const Tensor& a, const Tensor& b);

/** Slice columns [begin, end) of a 2-D tensor. */
Tensor sliceCols(const Tensor& a, std::size_t begin, std::size_t end);

/** Concatenate 2-D tensors along columns. @pre same row count. */
Tensor concatCols(const std::vector<Tensor>& parts);

} // namespace ops
} // namespace spatten

#endif // SPATTEN_TENSOR_OPS_HPP
