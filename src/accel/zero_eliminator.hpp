/**
 * @file
 * Zero eliminator (Fig. 10): compacts the non-zero survivors of a
 * comparator pass while preserving their original order.
 *
 * Hardware: a prefix-sum network counts the zeros before each element
 * (zero_cnt); a log2(n)-stage shifter then moves each element left by
 * zero_cnt positions, one bit of the count per stage. We model both the
 * function (order-preserving compaction) and the cost (stages, shifts).
 */
#ifndef SPATTEN_ACCEL_ZERO_ELIMINATOR_HPP
#define SPATTEN_ACCEL_ZERO_ELIMINATOR_HPP

#include <cstddef>
#include <vector>

#include "sim/clock.hpp"
#include "sim/stage_model.hpp"

namespace spatten {

/** Result of one zero-eliminator pass. */
struct ZeroEliminateResult
{
    std::vector<float> compacted; ///< Non-zero elements, original order.
    std::size_t stages = 0;       ///< log2(ceil) shifter stages used.
    std::size_t shifts = 0;       ///< Total element shifts performed.
};

/**
 * Functional + cost model of the zero eliminator.
 *
 * The implementation literally executes the hardware algorithm: prefix
 * zero counts, then log(n) rounds of conditional shifts keyed on each
 * count's bits — and checks the result against the obvious compaction.
 */
class ZeroEliminator : public StageModel
{
  public:
    /** Compact @p input, treating exact 0.0f as "eliminated". */
    ZeroEliminateResult run(const std::vector<float>& input) const;

    /** Pipeline latency in cycles for an @p n element vector. */
    static Cycles latencyCycles(std::size_t n);

    /**
     * Compaction latency paid per cascade-pruning selection over @p n
     * candidates: one eliminator pass per quick-select round (~log n
     * rounds of log n + 1 cycles each, x4 pipeline-stage cost).
     */
    static Cycles cascadeCycles(std::size_t n);

    // StageModel: the per-query eliminations are hidden inside the top-k
    // engine FIFOs; only the cascade-pruning passes surface as serial
    // layer cycles.
    std::string stageName() const override { return "zero_eliminator"; }
    StageTiming timing(const ExecutionContext& ctx) const override;
    ActivityCounts energy(const ExecutionContext& ctx) const override;
    StageTraffic traffic(const ExecutionContext& ctx) const override;
};

} // namespace spatten

#endif // SPATTEN_ACCEL_ZERO_ELIMINATOR_HPP
