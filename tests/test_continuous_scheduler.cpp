/// Property tests for the continuous-batching serving stack: arrival
/// traces, DecodeSession KV-carry semantics, the scheduler's determinism
/// contract (thread-count and shard-count bit-identity), FIFO fairness,
/// bounded queue delay, metric coherence, and the KV-capacity layer
/// (KvPool accounting, admission control, preemption-and-recompute,
/// priority / shortest-prompt-first queue policies).
#include <gtest/gtest.h>

#include <algorithm>

#include "accel/decode_session.hpp"
#include "accel/spatten_accelerator.hpp"
#include "serve/continuous_batch_scheduler.hpp"
#include "serve/kv_pool.hpp"

namespace spatten {
namespace {

/// A small 4-layer model keeps each scheduler run to a few milliseconds
/// of host time while exercising every code path.
ModelSpec
tinyModel()
{
    return {"tiny", 4, 4, 64, 4};
}

ArrivalTraceConfig
tinyTraceConfig(std::size_t n = 16, std::uint64_t seed = 0x5eed)
{
    ArrivalTraceConfig tc;
    tc.num_requests = n;
    tc.mean_interarrival_s = 0.2e-3;
    tc.seed = seed;
    tc.model = tinyModel();
    tc.min_prompt = 48;
    tc.max_prompt = 160;
    tc.min_output = 2;
    tc.max_output = 8;
    return tc;
}

ServeReport
serve(const std::vector<TracedRequest>& trace, ContinuousBatchConfig sc)
{
    return ContinuousBatchScheduler(SpAttenConfig{}, sc).run(trace);
}

/// Per-request *service* state (placement-independent by contract).
void
expectSameService(const ServedRequest& a, const ServedRequest& b)
{
    EXPECT_EQ(a.sim.cycles, b.sim.cycles);
    EXPECT_EQ(a.sim.seconds, b.sim.seconds);
    EXPECT_EQ(a.sim.dram_bytes, b.sim.dram_bytes);
    EXPECT_EQ(a.sim.attention_flops, b.sim.attention_flops);
    EXPECT_EQ(a.sim.energy.totalJ(), b.sim.energy.totalJ());
    EXPECT_EQ(a.service_seconds, b.service_seconds);
    EXPECT_EQ(a.kv_trace, b.kv_trace);
    EXPECT_EQ(a.tokens, b.tokens);
}

// ---------------------------------------------------------------------
// Arrival traces
// ---------------------------------------------------------------------

TEST(ArrivalTrace, DeterministicFromSeed)
{
    const auto a = generatePoissonTrace(tinyTraceConfig(32, 7));
    const auto b = generatePoissonTrace(tinyTraceConfig(32, 7));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
        EXPECT_EQ(a[i].seed, b[i].seed);
        EXPECT_EQ(a[i].workload.summarize_len, b[i].workload.summarize_len);
        EXPECT_EQ(a[i].workload.generate_len, b[i].workload.generate_len);
    }
    const auto c = generatePoissonTrace(tinyTraceConfig(32, 8));
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_diff |= a[i].arrival_s != c[i].arrival_s;
    EXPECT_TRUE(any_diff) << "different seeds must yield different traces";
}

TEST(ArrivalTrace, RespectsConfiguredBounds)
{
    const auto tc = tinyTraceConfig(64);
    const auto trace = generatePoissonTrace(tc);
    ASSERT_EQ(trace.size(), tc.num_requests);
    double prev = 0.0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].id, i);
        EXPECT_GE(trace[i].arrival_s, prev) << "arrivals must be sorted";
        prev = trace[i].arrival_s;
        EXPECT_GE(trace[i].workload.summarize_len, tc.min_prompt);
        EXPECT_LE(trace[i].workload.summarize_len, tc.max_prompt);
        EXPECT_GE(trace[i].workload.generate_len, tc.min_output);
        EXPECT_LE(trace[i].workload.generate_len, tc.max_output);
    }
    EXPECT_GT(trace.front().arrival_s, 0.0);
}

TEST(ArrivalTrace, MeanInterarrivalMatchesPoissonRate)
{
    auto tc = tinyTraceConfig(512);
    tc.mean_interarrival_s = 1e-3;
    const auto trace = generatePoissonTrace(tc);
    const double mean =
        trace.back().arrival_s / static_cast<double>(trace.size());
    // 512 exponential draws: the sample mean lands well within 20%.
    EXPECT_GT(mean, 0.8e-3);
    EXPECT_LT(mean, 1.25e-3);
}

// ---------------------------------------------------------------------
// DecodeSession: cascade-pruned KV carried across decode steps
// ---------------------------------------------------------------------

TEST(DecodeSession, KvMonotoneNonIncreasingUnderCascadePruning)
{
    WorkloadSpec w;
    w.name = "kv-monotone";
    w.model = ModelSpec::gpt2Small();
    w.summarize_len = 256;
    w.generate_len = 16;
    const SpAttenAccelerator accel;
    const DecodeResult r = accel.runDecode(w, PruningPolicy{});
    ASSERT_EQ(r.kv_lengths.size(), w.generate_len + 1);
    EXPECT_LT(r.kv_lengths.front(), w.summarize_len)
        << "prefill must prune the prompt KV";
    for (std::size_t i = 1; i < r.kv_lengths.size(); ++i)
        EXPECT_LE(r.kv_lengths[i], r.kv_lengths[i - 1])
            << "KV must be non-increasing at step " << i;
    EXPECT_GE(r.kv_lengths.back(), 1u);
    // Under pruning the resident peak is the un-pruned prompt KV held
    // during prefill, not any post-prune survivor count.
    EXPECT_EQ(r.peak_kv_bytes,
              w.summarize_len * kvBytesPerToken(w.model));
}

TEST(DecodeSession, KvGrowsByExactlyOneWithoutPruning)
{
    WorkloadSpec w;
    w.name = "kv-dense";
    w.model = tinyModel();
    w.summarize_len = 64;
    w.generate_len = 6;
    const SpAttenAccelerator accel;
    const DecodeResult r = accel.runDecode(w, PruningPolicy::disabled());
    ASSERT_EQ(r.kv_lengths.size(), w.generate_len + 1);
    EXPECT_EQ(r.kv_lengths.front(), w.summarize_len);
    for (std::size_t i = 1; i < r.kv_lengths.size(); ++i)
        EXPECT_EQ(r.kv_lengths[i], r.kv_lengths[i - 1] + 1);
    // Dense KV only grows, so the peak is the final grown cache.
    EXPECT_EQ(r.peak_kv_bytes, (w.summarize_len + w.generate_len) *
                                   kvBytesPerToken(w.model));
}

TEST(DecodeSession, LifecycleAndTokenAccounting)
{
    WorkloadSpec w;
    w.model = tinyModel();
    w.summarize_len = 48;
    w.generate_len = 3;
    DecodeSession s(SpAttenConfig{}, w, PruningPolicy{});
    EXPECT_FALSE(s.prefilled());
    EXPECT_FALSE(s.done());
    EXPECT_GT(s.prefill(), 0.0);
    EXPECT_TRUE(s.prefilled());
    for (std::size_t t = 0; t < w.generate_len; ++t) {
        EXPECT_FALSE(s.done());
        EXPECT_GT(s.decodeStep(), 0.0);
        EXPECT_EQ(s.tokensGenerated(), t + 1);
    }
    EXPECT_TRUE(s.done());
    EXPECT_EQ(s.kvTrace().size(), w.generate_len + 1);
    const RunResult res = s.finalize();
    EXPECT_GT(res.seconds, 0.0);
    EXPECT_GT(res.summarize_seconds, 0.0);
    EXPECT_GT(res.generate_seconds, 0.0);
    EXPECT_NEAR(res.seconds,
                res.summarize_seconds + res.generate_seconds, 1e-15);
}

TEST(DecodeSession, ZeroTokenRequestIsDoneAtPrefill)
{
    WorkloadSpec w;
    w.model = tinyModel();
    w.summarize_len = 48;
    w.generate_len = 0;
    DecodeSession s(SpAttenConfig{}, w, PruningPolicy{});
    s.prefill();
    EXPECT_TRUE(s.done());
    EXPECT_EQ(s.tokensGenerated(), 0u);
}

TEST(DecodeSession, SkipSummarizationEntersDecodeWithFullPromptKv)
{
    WorkloadSpec w;
    w.model = tinyModel();
    w.summarize_len = 96;
    w.generate_len = 4;
    w.skip_summarization = true;
    DecodeSession s(SpAttenConfig{}, w, PruningPolicy{});
    EXPECT_EQ(s.prefill(), 0.0) << "pre-summarized prompts cost nothing";
    EXPECT_EQ(s.kvLength(), w.summarize_len);
    EXPECT_GT(s.decodeStep(), 0.0);
    EXPECT_LT(s.kvLength(), w.summarize_len + 1);
}

// ---------------------------------------------------------------------
// Scheduler determinism
// ---------------------------------------------------------------------

TEST(ContinuousScheduler, BitIdenticalAcrossThreadCounts)
{
    const auto trace = generatePoissonTrace(tinyTraceConfig(20));
    ContinuousBatchConfig sc;
    sc.num_accelerators = 2;
    sc.max_active = 4;
    sc.num_threads = 1;
    const ServeReport ref = serve(trace, sc);
    for (const std::size_t threads : {2u, 4u, 8u}) {
        sc.num_threads = threads;
        const ServeReport r = serve(trace, sc);
        ASSERT_EQ(r.requests.size(), ref.requests.size());
        for (std::size_t i = 0; i < r.requests.size(); ++i) {
            expectSameService(r.requests[i], ref.requests[i]);
            EXPECT_EQ(r.requests[i].admit_s, ref.requests[i].admit_s)
                << "request " << i << " at " << threads << " threads";
            EXPECT_EQ(r.requests[i].first_token_s,
                      ref.requests[i].first_token_s);
            EXPECT_EQ(r.requests[i].finish_s, ref.requests[i].finish_s);
            EXPECT_EQ(r.requests[i].token_times_s,
                      ref.requests[i].token_times_s);
            EXPECT_EQ(r.requests[i].accel, ref.requests[i].accel);
        }
        EXPECT_EQ(r.makespan_s, ref.makespan_s);
        EXPECT_EQ(r.ttft_p99_s, ref.ttft_p99_s);
        EXPECT_EQ(r.itl_p99_s, ref.itl_p99_s);
        EXPECT_EQ(r.goodput_rps, ref.goodput_rps);
    }
}

TEST(ContinuousScheduler, ServiceResultsBitIdenticalAcrossShardCounts)
{
    const auto trace = generatePoissonTrace(tinyTraceConfig(20));
    ContinuousBatchConfig sc;
    const ServeReport one = serve(trace, sc);
    for (const std::size_t accels : {2u, 4u}) {
        for (const ShardPolicy policy :
             {ShardPolicy::RoundRobin, ShardPolicy::LeastLoaded}) {
            sc.num_accelerators = accels;
            sc.shard = policy;
            const ServeReport r = serve(trace, sc);
            for (std::size_t i = 0; i < r.requests.size(); ++i)
                expectSameService(r.requests[i], one.requests[i]);
        }
    }
}

TEST(ContinuousScheduler, RepeatedRunsAreIdentical)
{
    const auto trace = generatePoissonTrace(tinyTraceConfig(12));
    ContinuousBatchConfig sc;
    sc.num_accelerators = 3;
    const ServeReport a = serve(trace, sc);
    const ServeReport b = serve(trace, sc);
    EXPECT_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    EXPECT_EQ(a.total_energy_j, b.total_energy_j);
    for (std::size_t i = 0; i < a.requests.size(); ++i)
        EXPECT_EQ(a.requests[i].finish_s, b.requests[i].finish_s);
}

// ---------------------------------------------------------------------
// Sharding and fairness
// ---------------------------------------------------------------------

TEST(ContinuousScheduler, RoundRobinPinsRequestsModulo)
{
    const auto trace = generatePoissonTrace(tinyTraceConfig(16));
    ContinuousBatchConfig sc;
    sc.num_accelerators = 4;
    sc.shard = ShardPolicy::RoundRobin;
    const ServeReport r = serve(trace, sc);
    // The trace arrives in id order, so arrival position == id.
    for (std::size_t i = 0; i < r.requests.size(); ++i)
        EXPECT_EQ(r.requests[i].accel, static_cast<int>(i % 4));
}

TEST(ContinuousScheduler, LeastLoadedAdmitsInFifoArrivalOrder)
{
    const auto trace = generatePoissonTrace(tinyTraceConfig(24));
    ContinuousBatchConfig sc;
    sc.num_accelerators = 3;
    sc.max_active = 2;
    sc.shard = ShardPolicy::LeastLoaded;
    const ServeReport r = serve(trace, sc);
    for (std::size_t i = 1; i < r.requests.size(); ++i)
        EXPECT_GE(r.requests[i].admit_s, r.requests[i - 1].admit_s)
            << "equal-priority FIFO: admission must follow arrival order";
}

TEST(ContinuousScheduler, NoRequestStarvedBeyondBoundedQueueDelay)
{
    // Saturating trace: tight arrivals on one accelerator with a narrow
    // batch, the worst case for queueing.
    auto tc = tinyTraceConfig(24);
    tc.mean_interarrival_s = 1e-6;
    const auto trace = generatePoissonTrace(tc);
    ContinuousBatchConfig sc;
    sc.num_accelerators = 1;
    sc.max_active = 2;
    sc.shard = ShardPolicy::LeastLoaded;
    const ServeReport r = serve(trace, sc);
    for (std::size_t i = 0; i < r.requests.size(); ++i) {
        const ServedRequest& req = r.requests[i];
        ASSERT_EQ(req.phase, RequestPhase::Finished);
        // FIFO bound: a request waits at most for the full service of
        // everything that arrived before it (single-accelerator worst
        // case; pooling only shrinks the wait).
        double earlier_service = 0.0;
        for (std::size_t j = 0; j < r.requests.size(); ++j)
            if (r.requests[j].arrival_s <= req.arrival_s && j != i)
                earlier_service += r.requests[j].service_seconds;
        EXPECT_LE(req.queueDelaySeconds(), earlier_service + 1e-12)
            << "request " << i << " starved";
    }
}

TEST(ContinuousScheduler, MaxActiveBoundsConcurrency)
{
    auto tc = tinyTraceConfig(16);
    tc.mean_interarrival_s = 1e-6; // everyone arrives ~at once
    const auto trace = generatePoissonTrace(tc);
    ContinuousBatchConfig sc;
    sc.num_accelerators = 2;
    sc.max_active = 3;
    const ServeReport r = serve(trace, sc);
    for (const ServedRequest& req : r.requests) {
        // Requests concurrently resident with req on its accelerator:
        // admitted no later, not yet finished at req's admission.
        std::size_t resident = 0;
        for (const ServedRequest& other : r.requests)
            if (other.accel == req.accel &&
                other.admit_s <= req.admit_s &&
                other.finish_s > req.admit_s)
                ++resident;
        EXPECT_LE(resident, sc.max_active);
    }
}

// ---------------------------------------------------------------------
// Lifecycle and metrics
// ---------------------------------------------------------------------

TEST(ContinuousScheduler, TimestampsRespectLifecycleOrder)
{
    const auto trace = generatePoissonTrace(tinyTraceConfig(16));
    ContinuousBatchConfig sc;
    sc.num_accelerators = 2;
    const ServeReport r = serve(trace, sc);
    for (const ServedRequest& req : r.requests) {
        EXPECT_GE(req.admit_s, req.arrival_s);
        EXPECT_GT(req.first_token_s, req.admit_s);
        EXPECT_GE(req.finish_s, req.first_token_s);
        EXPECT_GE(req.queueDelaySeconds(), 0.0);
        EXPECT_GT(req.ttftSeconds(), 0.0);
    }
}

TEST(ContinuousScheduler, TokensMatchTraceAndIncreaseMonotonically)
{
    const auto trace = generatePoissonTrace(tinyTraceConfig(12));
    const ServeReport r = serve(trace, ContinuousBatchConfig{});
    std::size_t expected_total = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const ServedRequest& req = r.requests[i];
        EXPECT_EQ(req.tokens, trace[i].workload.generate_len);
        ASSERT_EQ(req.token_times_s.size(), req.tokens);
        for (std::size_t t = 1; t < req.token_times_s.size(); ++t)
            EXPECT_GT(req.token_times_s[t], req.token_times_s[t - 1]);
        EXPECT_EQ(req.kv_trace.size(), req.tokens + 1);
        expected_total += trace[i].workload.generate_len;
    }
    EXPECT_EQ(r.total_tokens, expected_total);
}

TEST(ContinuousScheduler, ZeroTokenRequestFinishesAtPrefill)
{
    TracedRequest req;
    req.id = 0;
    req.arrival_s = 1e-3;
    req.workload.name = "bert-style";
    req.workload.model = tinyModel();
    req.workload.summarize_len = 64;
    req.workload.generate_len = 0;
    const ServeReport r = serve({req}, ContinuousBatchConfig{});
    ASSERT_EQ(r.requests.size(), 1u);
    const ServedRequest& s = r.requests.front();
    EXPECT_EQ(s.phase, RequestPhase::Finished);
    EXPECT_EQ(s.tokens, 0u);
    EXPECT_EQ(s.first_token_s, s.finish_s);
    EXPECT_GT(s.finish_s, req.arrival_s);
}

TEST(ContinuousScheduler, MetricsAreCoherent)
{
    const auto trace = generatePoissonTrace(tinyTraceConfig(20));
    ContinuousBatchConfig sc;
    sc.num_accelerators = 2;
    const ServeReport r = serve(trace, sc);
    EXPECT_LE(r.ttft_p50_s, r.ttft_p99_s);
    EXPECT_LE(r.itl_p50_s, r.itl_p99_s);
    EXPECT_GT(r.throughput_rps, 0.0);
    EXPECT_GT(r.tokens_per_s, 0.0);
    EXPECT_GT(r.dram_reduction, 1.0);
    double max_finish = 0.0, service_sum = 0.0;
    std::vector<double> busy(r.accel_busy_s.size(), 0.0);
    for (const ServedRequest& req : r.requests) {
        max_finish = std::max(max_finish, req.finish_s);
        service_sum += req.service_seconds;
        ASSERT_GE(req.accel, 0);
        busy[static_cast<std::size_t>(req.accel)] += req.service_seconds;
    }
    EXPECT_EQ(r.makespan_s, max_finish);
    for (std::size_t a = 0; a < busy.size(); ++a) {
        EXPECT_NEAR(r.accel_busy_s[a], busy[a], 1e-12);
        EXPECT_GE(r.accel_util[a], 0.0);
        EXPECT_LE(r.accel_util[a], 1.0 + 1e-12);
    }
    std::size_t assigned = 0;
    for (std::size_t c : r.accel_requests)
        assigned += c;
    EXPECT_EQ(assigned, trace.size());
}

TEST(ContinuousScheduler, UtilizationExcludesIdleLeadInBeforeFirstArrival)
{
    // One request arriving after a long idle lead-in: utilization must
    // be measured over [first arrival, makespan], not the full makespan
    // (the old denominator reported ~0 for sparse traces).
    TracedRequest req;
    req.id = 0;
    req.arrival_s = 10.0; // Seconds of idle before any demand exists.
    req.workload.name = "sparse";
    req.workload.model = tinyModel();
    req.workload.summarize_len = 64;
    req.workload.generate_len = 4;
    const ServeReport r = serve({req}, ContinuousBatchConfig{});
    ASSERT_EQ(r.requests.size(), 1u);
    const double window = r.makespan_s - req.arrival_s;
    ASSERT_GT(window, 0.0);
    EXPECT_DOUBLE_EQ(r.accel_util[0], r.accel_busy_s[0] / window);
    // The sole request is served back to back, so utilization is ~1,
    // not service/makespan ~ 1e-5.
    EXPECT_GT(r.accel_util[0], 0.99);
    EXPECT_LE(r.accel_util[0], 1.0 + 1e-12);
}

TEST(ContinuousScheduler, UtilizationWindowIsPerAccelUnderRoundRobin)
{
    // Round-robin pins request 1 (arriving late) to accelerator 1: that
    // accelerator's utilization window starts at ITS first demand, so
    // serving its only request back to back reads as ~full utilization.
    std::vector<TracedRequest> trace;
    for (std::size_t i = 0; i < 2; ++i) {
        TracedRequest req;
        req.id = i;
        req.arrival_s = i == 0 ? 1e-3 : 10.0;
        req.workload.name = "rr-window-" + std::to_string(i);
        req.workload.model = tinyModel();
        req.workload.summarize_len = 64;
        req.workload.generate_len = 4;
        req.seed = 3 + i;
        trace.push_back(req);
    }
    ContinuousBatchConfig sc;
    sc.num_accelerators = 2;
    sc.shard = ShardPolicy::RoundRobin;
    const ServeReport r = serve(trace, sc);
    ASSERT_EQ(r.requests[1].accel, 1);
    EXPECT_GT(r.accel_util[1], 0.99)
        << "accel 1's idle wait for its first pinned arrival is demand "
           "absence, not idleness";
    EXPECT_LE(r.accel_util[1], 1.0 + 1e-12);
}

TEST(ContinuousScheduler, GoodputCountsOnlySloMeetingRequests)
{
    const auto trace = generatePoissonTrace(tinyTraceConfig(12));
    ContinuousBatchConfig sc;
    sc.slo_ttft_s = 1e9; // Everything meets a generous SLO.
    sc.slo_itl_s = 1e9;
    const ServeReport generous = serve(trace, sc);
    EXPECT_EQ(generous.slo_met, trace.size());
    EXPECT_DOUBLE_EQ(generous.goodput_rps, generous.throughput_rps);

    sc.slo_ttft_s = 0.0; // Nothing meets an impossible SLO.
    sc.slo_itl_s = 0.0;
    const ServeReport impossible = serve(trace, sc);
    EXPECT_EQ(impossible.slo_met, 0u);
    EXPECT_EQ(impossible.goodput_rps, 0.0);
}

TEST(ContinuousScheduler, EmptyTraceYieldsEmptyReport)
{
    const ServeReport r = serve({}, ContinuousBatchConfig{});
    EXPECT_TRUE(r.requests.empty());
    EXPECT_EQ(r.makespan_s, 0.0);
    EXPECT_EQ(r.throughput_rps, 0.0);
    EXPECT_EQ(r.total_tokens, 0u);
}

// ---------------------------------------------------------------------
// KvPool accounting
// ---------------------------------------------------------------------

TEST(KvPool, BlockGranularReservationAndRelease)
{
    const ModelSpec m = tinyModel(); // 2*4*4*64*2 = 4096 B per token.
    ASSERT_EQ(kvBytesPerToken(m), 4096u);
    KvPool pool({16 * 16 * 4096, 16}); // 16-block budget.
    EXPECT_EQ(pool.bytesForTokens(m, 0), 0u);
    EXPECT_EQ(pool.bytesForTokens(m, 1), 16u * 4096);  // 1 block.
    EXPECT_EQ(pool.bytesForTokens(m, 16), 16u * 4096); // Still 1.
    EXPECT_EQ(pool.bytesForTokens(m, 17), 2u * 16 * 4096);

    EXPECT_TRUE(pool.tryReserve(0, m, 16 * 15)); // 15 blocks.
    EXPECT_FALSE(pool.tryReserve(1, m, 17)) << "2 blocks > 1 free";
    EXPECT_TRUE(pool.tryReserve(1, m, 16));
    EXPECT_EQ(pool.usedBytes(), pool.capacityBytes());
    EXPECT_EQ(pool.residentRequests(), 2u);

    EXPECT_FALSE(pool.tryResize(1, m, 17)) << "full pool cannot grow";
    EXPECT_TRUE(pool.tryResize(0, m, 16)) << "shrink always succeeds";
    EXPECT_TRUE(pool.tryResize(1, m, 17)) << "freed blocks are reusable";
    pool.release(0);
    pool.release(1);
    EXPECT_EQ(pool.usedBytes(), 0u);
    EXPECT_EQ(pool.peakBytes(), pool.capacityBytes())
        << "peak tracks the high-water mark";
}

TEST(KvPool, UnlimitedPoolNeverRejectsButStillAccounts)
{
    const ModelSpec m = tinyModel();
    KvPool pool({0, 16});
    EXPECT_TRUE(pool.unlimited());
    EXPECT_TRUE(pool.tryReserve(0, m, 1u << 20));
    EXPECT_TRUE(pool.tryResize(0, m, 1u << 21));
    EXPECT_EQ(pool.usedBytes(), pool.bytesForTokens(m, 1u << 21));
    EXPECT_GT(pool.peakBytes(), 0u);
}

TEST(KvPool, SubBlockCapacityAdmitsNothingButZeroTokenReservations)
{
    // capacity_bytes == 0 means *unlimited* by convention, so the true
    // zero-capacity regime is a budget smaller than one block: every
    // non-empty reservation must bounce, and a bounced reserve must
    // leave the pool untouched.
    const ModelSpec m = tinyModel();
    KvPool pool({1, 16}); // 1-byte budget < any whole block.
    EXPECT_FALSE(pool.unlimited());
    EXPECT_FALSE(pool.tryReserve(0, m, 1));
    EXPECT_EQ(pool.usedBytes(), 0u);
    EXPECT_EQ(pool.peakBytes(), 0u);
    EXPECT_EQ(pool.residentRequests(), 0u);
    // A 0-token reservation needs no blocks and must still be allowed
    // (a request can exist with its cache fully pruned away).
    EXPECT_TRUE(pool.tryReserve(0, m, 0));
    EXPECT_EQ(pool.usedBytes(), 0u);
    EXPECT_EQ(pool.residentRequests(), 1u);
    pool.release(0);
    EXPECT_EQ(pool.residentRequests(), 0u);
}

TEST(KvPool, ReservationShrinksToZeroAfterFullPruneAndRegrows)
{
    const ModelSpec m = tinyModel();
    KvPool pool({16 * 16 * 4096, 16});
    ASSERT_TRUE(pool.tryReserve(7, m, 32));
    const std::uint64_t before = pool.usedBytes();
    EXPECT_GT(before, 0u);
    // Cascade pruning can leave zero survivors: the reservation must
    // shrink to zero bytes yet stay resident (the request still owns
    // its slot and will grow again next decode step).
    EXPECT_TRUE(pool.tryResize(7, m, 0));
    EXPECT_EQ(pool.usedBytes(), 0u);
    EXPECT_EQ(pool.residentRequests(), 1u);
    EXPECT_EQ(pool.peakBytes(), before) << "peak is a high-water mark";
    EXPECT_TRUE(pool.tryResize(7, m, 1)) << "regrowth from zero";
    EXPECT_EQ(pool.usedBytes(), pool.bytesForTokens(m, 1));
    pool.release(7);
    EXPECT_EQ(pool.usedBytes(), 0u);
}

TEST(KvPool, SingleRequestExceedingWholeBudgetBouncesCleanly)
{
    const ModelSpec m = tinyModel(); // 4096 B per token.
    KvPool pool({4 * 16 * 4096, 16}); // 4-block budget.
    // 5 blocks > the whole budget: rejected with no side effects, and
    // the pool must remain fully usable for requests that do fit.
    EXPECT_FALSE(pool.tryReserve(0, m, 16 * 5));
    EXPECT_EQ(pool.usedBytes(), 0u);
    EXPECT_EQ(pool.peakBytes(), 0u);
    EXPECT_EQ(pool.residentRequests(), 0u);
    EXPECT_TRUE(pool.tryReserve(0, m, 16 * 4))
        << "an exactly-budget-sized request must fit";
    EXPECT_EQ(pool.usedBytes(), pool.capacityBytes());
    // And a resident request can never grow past the whole budget.
    EXPECT_FALSE(pool.tryResize(0, m, 16 * 5));
    EXPECT_EQ(pool.usedBytes(), pool.capacityBytes());
}

TEST(KvPool, WiderKvElementsChargeProportionallyMoreBytes)
{
    // The fp32 platform backends reserve at bytes_per_elem = 4: the
    // same token count must charge exactly twice the fp16-equivalent
    // bytes, halving how many requests a shared budget admits.
    const ModelSpec m = tinyModel();
    const KvPool fp16({0, 16, 2});
    const KvPool fp32({0, 16, 4});
    EXPECT_EQ(fp32.bytesForTokens(m, 16), 2 * fp16.bytesForTokens(m, 16));
    KvPool pool({2 * 16 * 4096 * 2, 16, 4}); // 2 fp32 blocks.
    EXPECT_TRUE(pool.tryReserve(0, m, 16));
    EXPECT_FALSE(pool.tryReserve(1, m, 32))
        << "fp32 blocks are twice as expensive";
}

// ---------------------------------------------------------------------
// KV capacity: admission control, preemption, pruning headroom
// ---------------------------------------------------------------------

/// A saturating trace (everyone arrives ~at once) with dense KV and
/// long outputs so the caches only grow — the worst case for capacity.
std::vector<TracedRequest>
denseSaturatingTrace(std::size_t n = 16)
{
    auto tc = tinyTraceConfig(n);
    tc.mean_interarrival_s = 1e-6;
    tc.policy = PruningPolicy::disabled();
    tc.min_output = 16;
    tc.max_output = 32;
    return generatePoissonTrace(tc);
}

/// Fine 4-token blocks + 1.25x-worst budget: admission packs the pool
/// nearly full and decode growth crosses block boundaries often, so
/// preemption pressure is guaranteed.
ContinuousBatchConfig
cappedConfig(const std::vector<TracedRequest>& trace)
{
    ContinuousBatchConfig sc;
    sc.max_active = 8;
    sc.kv_block_tokens = 4;
    sc.kv_capacity_bytes = kvBudgetForWorstRequest(trace, 1.25, sc);
    return sc;
}

TEST(ContinuousScheduler, MemoryCappedRunPreemptsAndFinishesEveryone)
{
    const auto trace = denseSaturatingTrace();
    ContinuousBatchConfig sc = cappedConfig(trace);
    const ServeReport r = serve(trace, sc);
    EXPECT_GE(r.preemptions, 1u)
        << "a 1.25x-worst-request budget must force preemption";
    EXPECT_GE(r.recompute_tokens, 1u);
    for (const ServedRequest& req : r.requests) {
        EXPECT_EQ(req.phase, RequestPhase::Finished);
        EXPECT_EQ(req.tokens, trace[req.id].workload.generate_len)
            << "preempted requests must still complete in full";
    }
    std::size_t preempted = 0, recompute = 0;
    for (const ServedRequest& req : r.requests) {
        preempted += req.preemptions;
        recompute += req.recompute_tokens;
    }
    EXPECT_EQ(preempted, r.preemptions);
    EXPECT_EQ(recompute, r.recompute_tokens);
    ASSERT_EQ(r.kv_peak_bytes.size(), 1u);
    EXPECT_LE(r.kv_peak_bytes[0], sc.kv_capacity_bytes)
        << "the pool must never exceed its budget";
    EXPECT_GT(r.kv_peak_bytes[0], 0u);
    EXPECT_GT(r.kv_mean_bytes[0], 0.0);
    EXPECT_LE(r.kv_mean_bytes[0],
              static_cast<double>(r.kv_peak_bytes[0]));
    EXPECT_EQ(r.kv_capacity_bytes, sc.kv_capacity_bytes);
}

TEST(ContinuousScheduler, UncappedRunNeverPreempts)
{
    const auto trace = denseSaturatingTrace();
    const ServeReport r = serve(trace, ContinuousBatchConfig{});
    EXPECT_EQ(r.preemptions, 0u);
    EXPECT_EQ(r.recompute_tokens, 0u);
    for (const ServedRequest& req : r.requests)
        EXPECT_EQ(req.preemptions, 0u);
}

TEST(ContinuousScheduler, CascadePruningAdmitsHigherConcurrency)
{
    // Same demand, same KV budget; the only difference is the policy.
    // Pruned prompts shrink after prefill (and keep shrinking during
    // decode), so strictly more requests fit the pool at once.
    auto tc = tinyTraceConfig(16);
    tc.mean_interarrival_s = 1e-6;
    tc.policy = PruningPolicy::disabled();
    const auto dense_trace = generatePoissonTrace(tc);
    tc.policy = PruningPolicy{};
    const auto pruned_trace = generatePoissonTrace(tc);

    ContinuousBatchConfig sc;
    sc.max_active = 8;
    sc.kv_capacity_bytes = kvBudgetForWorstRequest(dense_trace, 2.0, sc);
    const ServeReport dense = serve(dense_trace, sc);
    const ServeReport pruned = serve(pruned_trace, sc);
    EXPECT_GT(pruned.peak_concurrency, dense.peak_concurrency)
        << "pruning must free KV blocks and admit more concurrency";
    EXPECT_LE(pruned.preemptions, dense.preemptions);
}

TEST(ContinuousScheduler, MemoryCappedRunBitIdenticalAcrossThreads)
{
    const auto trace = denseSaturatingTrace();
    ContinuousBatchConfig sc = cappedConfig(trace);
    sc.num_threads = 1;
    const ServeReport ref = serve(trace, sc);
    ASSERT_GE(ref.preemptions, 1u) << "the scenario must have pressure";
    for (const std::size_t threads : {2u, 8u}) {
        sc.num_threads = threads;
        const ServeReport r = serve(trace, sc);
        EXPECT_EQ(r.preemptions, ref.preemptions);
        EXPECT_EQ(r.recompute_tokens, ref.recompute_tokens);
        EXPECT_EQ(r.peak_concurrency, ref.peak_concurrency);
        EXPECT_EQ(r.kv_peak_bytes, ref.kv_peak_bytes);
        EXPECT_EQ(r.kv_mean_bytes, ref.kv_mean_bytes);
        EXPECT_EQ(r.makespan_s, ref.makespan_s);
        for (std::size_t i = 0; i < r.requests.size(); ++i) {
            EXPECT_EQ(r.requests[i].preemptions,
                      ref.requests[i].preemptions);
            EXPECT_EQ(r.requests[i].finish_s, ref.requests[i].finish_s);
            EXPECT_EQ(r.requests[i].token_times_s,
                      ref.requests[i].token_times_s);
            EXPECT_EQ(r.requests[i].service_seconds,
                      ref.requests[i].service_seconds);
        }
    }
}

TEST(ContinuousScheduler, PreemptedRequestsRespectCausalityAcrossAccels)
{
    // A preempted request re-enters the queue eligible from its
    // *eviction* time, so an idle accelerator with a lagging clock can
    // never re-admit it in the simulated past. The violated invariant
    // was physical: busy service time cannot exceed wall-clock lifetime.
    const auto trace = denseSaturatingTrace();
    for (const std::size_t accels : {2u, 3u}) {
        ContinuousBatchConfig sc = cappedConfig(trace);
        sc.num_accelerators = accels;
        sc.shard = ShardPolicy::LeastLoaded;
        const ServeReport r = serve(trace, sc);
        ASSERT_GE(r.preemptions, 1u) << "the scenario must have pressure";
        for (const ServedRequest& req : r.requests) {
            EXPECT_LE(req.service_seconds,
                      req.finish_s - req.arrival_s + 1e-12)
                << "request " << req.id << " on " << accels
                << " accels served longer than it existed";
            EXPECT_GE(req.admit_s, req.arrival_s);
            EXPECT_GT(req.first_token_s, req.admit_s);
            EXPECT_GE(req.finish_s, req.first_token_s);
        }
    }
}

TEST(ContinuousScheduler, MemoryCappedRepeatedRunsAreIdentical)
{
    const auto trace = denseSaturatingTrace(12);
    ContinuousBatchConfig sc = cappedConfig(trace);
    const ServeReport a = serve(trace, sc);
    const ServeReport b = serve(trace, sc);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.kv_peak_bytes, b.kv_peak_bytes);
    for (std::size_t i = 0; i < a.requests.size(); ++i)
        EXPECT_EQ(a.requests[i].finish_s, b.requests[i].finish_s);
}

// ---------------------------------------------------------------------
// Queue policies and preemption victim selection
// ---------------------------------------------------------------------

/// Four simultaneous arrivals with hand-set priorities and prompt
/// lengths chosen so FIFO, Priority, and SPF all disagree.
std::vector<TracedRequest>
policyProbeTrace()
{
    std::vector<TracedRequest> trace;
    const std::size_t prompts[] = {160, 48, 96, 64};
    const int priorities[] = {0, 1, 3, 2};
    for (std::size_t i = 0; i < 4; ++i) {
        TracedRequest req;
        req.id = i;
        req.arrival_s = 1e-6; // Simultaneous (beyond id order).
        req.workload.name = "probe-" + std::to_string(i);
        req.workload.model = tinyModel();
        req.workload.summarize_len = prompts[i];
        req.workload.generate_len = 2;
        req.priority = priorities[i];
        req.seed = 7 + i;
        trace.push_back(req);
    }
    return trace;
}

/// Trace order sorted by final admission time (max_active = 1 makes
/// admissions strictly sequential).
std::vector<std::size_t>
admissionOrder(const ServeReport& r)
{
    std::vector<std::size_t> order(r.requests.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return r.requests[a].admit_s < r.requests[b].admit_s;
              });
    return order;
}

TEST(ContinuousScheduler, FifoPolicyAdmitsInArrivalIdOrder)
{
    ContinuousBatchConfig sc;
    sc.max_active = 1;
    const ServeReport r = serve(policyProbeTrace(), sc);
    EXPECT_EQ(admissionOrder(r), (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(ContinuousScheduler, PriorityPolicyAdmitsHighestFirst)
{
    ContinuousBatchConfig sc;
    sc.max_active = 1;
    sc.queue = QueuePolicy::Priority;
    const ServeReport r = serve(policyProbeTrace(), sc);
    // Priorities {0,1,3,2} -> ids in descending priority: 2, 3, 1, 0.
    EXPECT_EQ(admissionOrder(r), (std::vector<std::size_t>{2, 3, 1, 0}));
}

TEST(ContinuousScheduler, ShortestPromptFirstAdmitsByPromptLength)
{
    ContinuousBatchConfig sc;
    sc.max_active = 1;
    sc.queue = QueuePolicy::ShortestPromptFirst;
    const ServeReport r = serve(policyProbeTrace(), sc);
    // Prompts {160,48,96,64} -> ids by ascending prompt: 1, 3, 2, 0.
    EXPECT_EQ(admissionOrder(r), (std::vector<std::size_t>{1, 3, 2, 0}));
}

TEST(ContinuousScheduler, PreemptionEvictsTheLowestPriorityRequest)
{
    // Two dense simultaneous requests on a budget that admits both
    // prompts but cannot hold both grown caches: the low-priority one
    // must be the victim, and both must still finish.
    std::vector<TracedRequest> trace;
    for (std::size_t i = 0; i < 2; ++i) {
        TracedRequest req;
        req.id = i;
        req.arrival_s = 1e-6;
        req.workload.name = "victim-probe-" + std::to_string(i);
        req.workload.model = tinyModel();
        req.workload.summarize_len = 64;
        req.workload.generate_len = 32;
        req.policy = PruningPolicy::disabled();
        req.priority = i == 0 ? 0 : 5;
        req.seed = 11 + i;
        trace.push_back(req);
    }
    ContinuousBatchConfig sc;
    sc.max_active = 2;
    sc.kv_capacity_bytes = kvBudgetForWorstRequest(trace, 1.5, sc);
    const ServeReport r = serve(trace, sc);
    ASSERT_GE(r.preemptions, 1u) << "the scenario must have pressure";
    EXPECT_GE(r.requests[0].preemptions, 1u)
        << "priority 0 must be the victim";
    EXPECT_EQ(r.requests[1].preemptions, 0u)
        << "priority 5 must never be evicted";
    for (const ServedRequest& req : r.requests) {
        EXPECT_EQ(req.phase, RequestPhase::Finished);
        EXPECT_EQ(req.tokens, trace[req.id].workload.generate_len);
    }
}

TEST(ContinuousScheduler, SingleIdleRequestMatchesRunDecodeFacade)
{
    WorkloadSpec w;
    w.name = "solo";
    w.model = tinyModel();
    w.summarize_len = 96;
    w.generate_len = 5;
    const std::uint64_t seed = 42;

    const SpAttenAccelerator accel;
    const DecodeResult direct = accel.runDecode(w, PruningPolicy{}, seed);

    TracedRequest req;
    req.id = 0;
    req.arrival_s = 0.5e-3;
    req.workload = w;
    req.seed = seed;
    const ServeReport r = serve({req}, ContinuousBatchConfig{});
    ASSERT_EQ(r.requests.size(), 1u);
    const ServedRequest& s = r.requests.front();

    // An idle accelerator adds no queueing: the scheduler's per-request
    // result must be the facade's, bit for bit, shifted by the arrival.
    EXPECT_EQ(s.sim.cycles, direct.result.cycles);
    EXPECT_EQ(s.sim.seconds, direct.result.seconds);
    EXPECT_EQ(s.sim.energy.totalJ(), direct.result.energy.totalJ());
    EXPECT_EQ(s.kv_trace, direct.kv_lengths);
    EXPECT_EQ(s.admit_s, req.arrival_s);
    EXPECT_NEAR(s.first_token_s,
                req.arrival_s + direct.prefill_seconds +
                    direct.step_seconds.front(),
                1e-12);
    EXPECT_NEAR(s.finish_s, req.arrival_s + direct.result.seconds, 1e-12);
    EXPECT_NEAR(s.service_seconds, direct.result.seconds, 1e-15);
}

// ---------------------------------------------------------------------
// Serving metrics: preemption TTFT semantics, ITL SLO and aggregates
// ---------------------------------------------------------------------

TEST(ContinuousScheduler, PreemptedRequestTimingComesFromFinalIncarnation)
{
    // The intended TTFT/ITL semantics across recompute preemptions,
    // pinned: the discarded incarnation's tokens leave no trace — the
    // timing trail (first token, per-token times, gaps) comes from the
    // final admission alone, while preemptions/recompute_tokens keep
    // the overhead visible.
    const auto trace = denseSaturatingTrace();
    ContinuousBatchConfig sc = cappedConfig(trace);
    const ServeReport r = serve(trace, sc);
    ASSERT_GE(r.preemptions, 1u) << "the scenario must have pressure";
    bool saw_preempted_with_tokens = false;
    for (const ServedRequest& req : r.requests) {
        // admit_s is the *final* admission: every surviving token was
        // emitted after it. A TTFT leaking from a discarded
        // incarnation would show first_token_s < admit_s.
        EXPECT_GE(req.first_token_s, req.admit_s);
        EXPECT_GE(req.admit_s, req.arrival_s);
        EXPECT_EQ(req.tokens, req.token_times_s.size());
        for (const double tok_s : req.token_times_s)
            EXPECT_GT(tok_s, req.admit_s);
        if (req.preemptions > 0 && req.tokens >= 1) {
            saw_preempted_with_tokens = true;
            EXPECT_EQ(req.first_token_s, req.token_times_s.front());
            // Gaps span only the final incarnation's tokens.
            EXPECT_EQ(req.interTokenGaps().size(), req.tokens - 1);
        }
    }
    EXPECT_TRUE(saw_preempted_with_tokens);
}

TEST(ContinuousScheduler, SingleTokenRequestsAutoPassItlSlo)
{
    // Requests below two tokens have no inter-token gaps, so the ITL
    // half of the SLO cannot be violated — made explicit in the config
    // docs and pinned here with an impossible ITL SLO.
    auto tc = tinyTraceConfig(8);
    tc.min_output = 0;
    tc.max_output = 1;
    const auto trace = generatePoissonTrace(tc);
    ContinuousBatchConfig sc;
    sc.slo_ttft_s = 1e9;  // TTFT side always met.
    sc.slo_itl_s = 0.0;   // ITL side unmeetable when gaps exist.
    const ServeReport r = serve(trace, sc);
    EXPECT_EQ(r.slo_met, trace.size())
        << "0/1-token requests must auto-pass the ITL SLO";
}

TEST(ContinuousScheduler, PerRequestItlAggregatesWeightRequestsEqually)
{
    const auto trace = generatePoissonTrace(tinyTraceConfig(24));
    const ServeReport r = serve(trace, ContinuousBatchConfig{});
    EXPECT_GT(r.req_itl_p99_p50_s, 0.0);
    EXPECT_GE(r.req_itl_p99_p99_s, r.req_itl_p99_p50_s);
    // Cross-check against a direct computation from the trail.
    std::vector<double> p99s;
    for (const ServedRequest& req : r.requests)
        if (req.tokens >= 2)
            p99s.push_back(req.itlP99Seconds());
    ASSERT_FALSE(p99s.empty());
    std::sort(p99s.begin(), p99s.end());
    EXPECT_EQ(r.req_itl_p99_p50_s, sortedQuantile(p99s, 0.50));
    EXPECT_EQ(r.req_itl_p99_p99_s, sortedQuantile(p99s, 0.99));
    // Every per-request p99 is bounded by that request's own extremes,
    // independent of how many gaps other requests contributed.
    for (const ServedRequest& req : r.requests) {
        const auto gaps = req.interTokenGaps();
        if (gaps.empty())
            continue;
        const auto [lo, hi] =
            std::minmax_element(gaps.begin(), gaps.end());
        EXPECT_GE(req.itlP99Seconds(), *lo);
        EXPECT_LE(req.itlP99Seconds(), *hi);
    }
}

// ---------------------------------------------------------------------
// Shared-prefix caching through the scheduler
// ---------------------------------------------------------------------

SharedPrefixTraceConfig
tinySharedPrefixConfig(std::size_t n = 16, std::uint64_t seed = 0x5eed)
{
    SharedPrefixTraceConfig sp;
    sp.base = tinyTraceConfig(n, seed);
    sp.base.mean_interarrival_s = 0.1e-3;
    sp.num_system_prompts = 2;
    sp.system_prompt_tokens = 96;
    sp.followup_prob = 0.5;
    sp.user_turn_min = 8;
    sp.user_turn_max = 32;
    sp.max_prompt_tokens = 512;
    return sp;
}

TEST(PrefixCaching, DisabledSchedulerIgnoresPromptContent)
{
    // A shared-prefix trace served with caching off must be
    // indistinguishable from the pre-caching scheduler — and a legacy
    // trace (no prompt content) served with caching ON must be
    // indistinguishable from caching off. Together: legacy behavior is
    // bit-identical unless both the flag and the content are present.
    const auto sp_trace =
        generateSharedPrefixTrace(tinySharedPrefixConfig());
    ContinuousBatchConfig sc;
    sc.enable_prefix_caching = false;
    const ServeReport off = serve(sp_trace, sc);
    EXPECT_EQ(off.prefix_cache_hits, 0u);
    EXPECT_EQ(off.prefix_cached_tokens, 0u);
    EXPECT_EQ(off.cow_copied_blocks, 0u);

    const auto legacy = generatePoissonTrace(tinyTraceConfig());
    sc.enable_prefix_caching = false;
    const ServeReport legacy_off = serve(legacy, sc);
    sc.enable_prefix_caching = true;
    const ServeReport legacy_on = serve(legacy, sc);
    EXPECT_EQ(legacy_on.prefix_cache_hits, 0u);
    EXPECT_EQ(legacy_on.makespan_s, legacy_off.makespan_s);
    for (std::size_t i = 0; i < legacy.size(); ++i) {
        EXPECT_EQ(legacy_on.requests[i].token_times_s,
                  legacy_off.requests[i].token_times_s);
        EXPECT_EQ(legacy_on.requests[i].first_token_s,
                  legacy_off.requests[i].first_token_s);
        EXPECT_EQ(legacy_on.requests[i].kv_trace,
                  legacy_off.requests[i].kv_trace);
    }
}

TEST(PrefixCaching, CachedPrefillPreservesDecodeBitIdentity)
{
    // The copy-on-write/sharing machinery is pure accounting, and a
    // cached-prefix prefill changes only the *query* count of the
    // prompt pass — cascade pruning depends on the entering context
    // length alone — so the pruned KV trajectory and every decode
    // output must be bit-identical to a cold-cache run. Cached
    // prefills may only get *cheaper*, never different.
    WorkloadSpec w;
    w.name = "cached-vs-cold";
    w.model = tinyModel();
    w.summarize_len = 128;
    w.generate_len = 8;

    const SpAttenConfig cfg;
    DecodeSession cold(cfg, w, PruningPolicy{}, 99);
    DecodeSession warm(cfg, w, PruningPolicy{}, 99);
    const double cold_prefill = cold.prefill();
    const double warm_prefill = warm.prefillWithCachedPrefix(96);
    EXPECT_LT(warm_prefill, cold_prefill)
        << "96 of 128 prompt tokens skipped must shrink the prefill";
    EXPECT_EQ(cold.kvLength(), warm.kvLength())
        << "pruning trajectory must not depend on the query count";
    while (!cold.done()) {
        const double a = cold.decodeStep();
        const double b = warm.decodeStep();
        // Step costs are differences of the session's accumulated
        // elapsed time, so the shorter prefill offset perturbs the
        // last ulps of the subtraction; the *work* is identical.
        EXPECT_NEAR(a, b, 1e-12 * a) << "decode steps must match";
        EXPECT_EQ(cold.kvLength(), warm.kvLength());
    }
    EXPECT_TRUE(warm.done());
    EXPECT_EQ(cold.kvTrace(), warm.kvTrace());

    // End to end through the scheduler (pruning ON, so shared blocks
    // diverge and exercise copy-on-write): the per-request KV
    // trajectories of a cache-on run match the cache-off run exactly.
    const auto sp_trace =
        generateSharedPrefixTrace(tinySharedPrefixConfig());
    ContinuousBatchConfig sc;
    sc.max_active = 8;
    const ServeReport off = serve(sp_trace, sc);
    sc.enable_prefix_caching = true;
    const ServeReport on = serve(sp_trace, sc);
    EXPECT_GE(on.prefix_cache_hits, 1u);
    for (std::size_t i = 0; i < sp_trace.size(); ++i) {
        EXPECT_EQ(on.requests[i].kv_trace, off.requests[i].kv_trace);
        EXPECT_EQ(on.requests[i].tokens, off.requests[i].tokens);
        EXPECT_EQ(on.requests[i].phase, RequestPhase::Finished);
    }
}

TEST(PrefixCaching, SharingRaisesConcurrencyUnderSameBudget)
{
    // The admission-control claim: at the same KV budget, mapping
    // shared blocks copy-free admits strictly more concurrent
    // residents and improves median TTFT. Dense policy keeps blocks
    // shared for whole residencies (no pruning divergence).
    auto sp = tinySharedPrefixConfig(24);
    sp.base.policy = PruningPolicy::disabled();
    sp.base.mean_interarrival_s = 0.02e-3;
    const auto trace = generateSharedPrefixTrace(sp);
    ContinuousBatchConfig sc;
    sc.max_active = 12;
    sc.kv_capacity_bytes = kvBudgetForWorstRequest(trace, 1.25, sc);
    const ServeReport off = serve(trace, sc);
    sc.enable_prefix_caching = true;
    const ServeReport on = serve(trace, sc);
    EXPECT_GE(on.prefix_cache_hits, 1u);
    EXPECT_GT(on.prefix_shared_bytes, 0u);
    EXPECT_GT(on.peak_concurrency, off.peak_concurrency);
    EXPECT_LT(on.ttft_p50_s, off.ttft_p50_s);
    for (const ServedRequest& req : on.requests)
        EXPECT_EQ(req.phase, RequestPhase::Finished);
}

TEST(PrefixCaching, CacheOnRunIsBitIdenticalAcrossThreadCounts)
{
    // The determinism contract extends to caching + copy-on-write
    // preemption: the full report is a pure function of (config,
    // trace) at any host thread count.
    auto sp = tinySharedPrefixConfig(16);
    sp.base.mean_interarrival_s = 0.02e-3;
    const auto trace = generateSharedPrefixTrace(sp);
    ContinuousBatchConfig sc;
    sc.max_active = 8;
    sc.kv_block_tokens = 4;
    sc.kv_capacity_bytes = kvBudgetForWorstRequest(trace, 1.25, sc);
    sc.enable_prefix_caching = true;
    sc.num_threads = 1;
    const ServeReport ref = serve(trace, sc);
    for (const std::size_t threads : {2u, 8u}) {
        sc.num_threads = threads;
        const ServeReport r = serve(trace, sc);
        EXPECT_EQ(r.makespan_s, ref.makespan_s);
        EXPECT_EQ(r.preemptions, ref.preemptions);
        EXPECT_EQ(r.prefix_cache_hits, ref.prefix_cache_hits);
        EXPECT_EQ(r.prefix_cached_tokens, ref.prefix_cached_tokens);
        EXPECT_EQ(r.cow_copied_blocks, ref.cow_copied_blocks);
        for (std::size_t i = 0; i < r.requests.size(); ++i) {
            EXPECT_EQ(r.requests[i].token_times_s,
                      ref.requests[i].token_times_s);
            EXPECT_EQ(r.requests[i].first_token_s,
                      ref.requests[i].first_token_s);
            EXPECT_EQ(r.requests[i].cached_prefix_tokens,
                      ref.requests[i].cached_prefix_tokens);
        }
    }
}

} // namespace
} // namespace spatten
