/**
 * @file
 * Composable stage graph: the execution engine of the accelerator model.
 *
 * A StageGraph is an ordered set of StageModels plus a chain of
 * GraphTransforms. One runLayer() call evaluates every stage against the
 * per-request ExecutionContext, combines their occupancies into the
 * layer's initiation interval (fully pipelined critical path), realizes
 * DRAM traffic through the registered MemoryStages, and lands each
 * stage's occupancy / energy / traffic in the StatSet automatically.
 * Transforms (cascade pruning, progressive quantization) run between
 * layers and mutate only the context — pruning is a graph transform,
 * not inline arithmetic in a monolithic run() loop.
 */
#ifndef SPATTEN_SIM_STAGE_GRAPH_HPP
#define SPATTEN_SIM_STAGE_GRAPH_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "energy/energy_model.hpp"
#include "sim/stage_model.hpp"
#include "sim/stats.hpp"

namespace spatten {

/**
 * A between-layer rewrite of the execution context. prepare() runs
 * before each layer is evaluated (e.g. to publish this layer's pruning
 * ratio or the pass's quantization plane widths); apply() runs after
 * (e.g. to shrink the alive token/head counts).
 */
class GraphTransform
{
  public:
    virtual ~GraphTransform() = default;
    virtual std::string name() const = 0;
    virtual void prepare(ExecutionContext& ctx) = 0;
    virtual void apply(ExecutionContext& ctx) = 0;
};

/** Cost outcome of one layer pass. */
struct LayerCost
{
    Cycles ii = 0;              ///< Initiation interval (max over stages).
    Cycles compute_cycles = 0;  ///< queries x ii x heads + serial extras.
    double compute_ns = 0;
    double memory_ns = 0;
    double layer_ns = 0;        ///< max(compute, memory) under overlap.
    double qk_macs = 0;         ///< Executed Q x K MACs (no LSB recompute).
    double pv_macs = 0;         ///< Executed prob x V MACs.
};

/** The stage graph. Stages and transforms are registered once per run. */
class StageGraph
{
  public:
    /// Optional per-stage traffic hook (e.g. routing SRAM element counts
    /// into the owning SramModel).
    using TrafficSink = std::function<void(const StageTraffic&)>;

    StageGraph(double core_freq_ghz, double dram_freq_ghz,
               EnergyConfig energy_cfg = EnergyConfig{});

    /** Register a pipelined stage; @p sink observes its per-layer traffic. */
    void addStage(const StageModel* stage, TrafficSink sink = nullptr);

    /** Register a stage that also realizes DRAM traffic. */
    void addMemoryStage(MemoryStage* stage, TrafficSink sink = nullptr);

    /** Append a between-layer transform. */
    void addTransform(std::unique_ptr<GraphTransform> transform);

    /**
     * Per-stage observable effects of one layer evaluation, captured so
     * a bit-identical layer (same context, same relative memory state)
     * can be replayed without re-walking the stages. Records hold the
     * exact doubles the live evaluation accumulated; replayLayer()
     * re-applies them in the same order, so the floating-point addition
     * sequence — and therefore every total — is unchanged.
     */
    struct StageReplay
    {
        double busy = 0;
        double energy_pj = 0;
        ActivityCounts act;
        StageTraffic traffic;
    };
    struct LayerReplayRecord
    {
        LayerCost cost;
        double window_busy = 0; ///< Memory-stage busy share (core cycles).
        Cycles dram_delta = 0;  ///< DRAM-clock advance of the layer.
        std::vector<StageReplay> stages;
    };

    /**
     * Evaluate one layer: run every transform's prepare(), price every
     * stage, realize memory traffic, account time/energy/stats, then run
     * every transform's apply() and advance ctx.layer. When @p record is
     * non-null, the layer's accounting effects are captured for replay.
     */
    LayerCost runLayer(ExecutionContext& ctx,
                       LayerReplayRecord* record = nullptr);

    /**
     * Re-apply a recorded layer's accounting (time, bounds, DRAM clock,
     * activity, per-stage counters, traffic sinks) without evaluating
     * stages or transforms. The caller owns the validity argument: the
     * record must have been captured at an identical context and
     * identical relative memory-system state (AttentionGraph's decode
     * step memo checks both).
     */
    LayerCost replayLayer(const LayerReplayRecord& rec);

    /** DRAM-domain cursor (base for relative memory-state snapshots). */
    Cycles dramClock() const { return dram_clock_; }

    /** Elapsed core time across all layers so far (ns). */
    double elapsedNs() const { return elapsed_ns_; }
    double computeBoundNs() const { return compute_bound_ns_; }
    double memoryBoundNs() const { return memory_bound_ns_; }

    /** Merged energy-relevant activity across all layers. */
    const ActivityCounts& activity() const { return activity_; }

    /**
     * Per-stage occupancy/energy/traffic counters. Materialized lazily:
     * the hot path accumulates into plain per-stage doubles (same
     * per-key addition order as the historical map-backed counters, so
     * the totals are bit-identical) and this call renders them into a
     * StatSet on demand.
     */
    const StatSet& stats() const;

    /** Number of registered stages. */
    std::size_t numStages() const { return stages_.size(); }

  private:
    struct Entry
    {
        const StageModel* stage = nullptr;
        MemoryStage* memory = nullptr; ///< Non-null for memory stages.
        TrafficSink sink;
        std::string name; ///< Cached stageName(): no virtual-call +
                          ///< string construction in the layer loop.
        // Hot-path accumulators (materialized in stats()).
        double busy_cycles = 0;
        double energy_pj = 0;
        double dram_bytes = 0;
    };

    /** Energy (pJ) of one stage's activity under the graph's constants. */
    double priceActivityPj(const ActivityCounts& act) const;

    std::vector<Entry> stages_;
    std::vector<std::unique_ptr<GraphTransform>> transforms_;
    double core_freq_ghz_;
    double dram_freq_ghz_;
    EnergyConfig energy_cfg_;

    Cycles dram_clock_ = 0; ///< DRAM-domain cursor across layers.
    double elapsed_ns_ = 0;
    double compute_bound_ns_ = 0;
    double memory_bound_ns_ = 0;
    ActivityCounts activity_;
    std::vector<StageTiming> timings_; ///< Scratch, reused across layers.
    mutable StatSet stats_;            ///< Rendered on demand in stats().
};

} // namespace spatten

#endif // SPATTEN_SIM_STAGE_GRAPH_HPP
