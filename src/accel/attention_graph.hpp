/**
 * @file
 * The SpAtten attention dataflow assembled as a stage graph.
 *
 * AttentionGraph instantiates the hardware units (fetcher, Q x K,
 * softmax, top-k, zero eliminator, prob x V), the SRAM/HBM/crossbar
 * substrate, and the policy transforms (cascade pruning, progressive
 * quantization), wires them into a StageGraph, and exposes the per-pass
 * driver the pipeline facade iterates: one runPass() per summarization
 * or generation step, then finalize() to land results and stats.
 */
#ifndef SPATTEN_ACCEL_ATTENTION_GRAPH_HPP
#define SPATTEN_ACCEL_ATTENTION_GRAPH_HPP

#include "accel/crossbar.hpp"
#include "accel/fetcher.hpp"
#include "accel/pv_module.hpp"
#include "accel/qk_module.hpp"
#include "accel/softmax_module.hpp"
#include "accel/sram.hpp"
#include "accel/topk_engine.hpp"
#include "accel/zero_eliminator.hpp"
#include "core/model_spec.hpp"
#include "hbm/hbm.hpp"
#include "sim/stage_graph.hpp"

namespace spatten {

struct SpAttenConfig;
struct RunResult;

/** One workload execution assembled as hardware stages + transforms. */
class AttentionGraph
{
  public:
    AttentionGraph(const SpAttenConfig& cfg, const WorkloadSpec& workload,
                   const PruningPolicy& policy, std::uint64_t request_seed);

    /**
     * Run one attention pass over the whole model: @p queries query rows
     * per (layer, head) against an entering context of @p context_len
     * tokens. Generation passes fetch the MSB plane eagerly and keep a
     * single query row.
     *
     * Single-query generation passes are transparently memoized: under
     * cascade pruning the carried KV collapses to a fixed point within a
     * few decode steps, after which every step is exactly periodic — the
     * same entering context against the same relative HBM state. The
     * first such pass is recorded (per-layer accounting deltas + memory
     * state); subsequent passes whose entering context AND relative
     * HBM channel/bank state match bit-for-bit are replayed by
     * re-applying the recorded deltas in the original accumulation
     * order. Replay is exact, not approximate: the simulator's memory
     * timing is translation-invariant in absolute time and every
     * floating-point addition sequence is preserved (pinned by
     * tests/test_decode_step_memo.cpp and the golden suites). Disable
     * with setStepMemo(false) for A/B measurement.
     */
    void runPass(std::size_t queries, std::size_t context_len,
                 bool generation);

    /**
     * Layer-stepped variant of a single-query generation pass, the
     * substrate of batched lane-interleaved decode
     * (AcceleratorBackend::stepDecodeBatch): the caller advances the
     * pass one layer at a time so several sessions' passes interleave
     * layer-major. Exactly equivalent to runPass(1, context_len, true)
     * — a matching steady-state memo short-circuits the whole pass at
     * begin. @return the number of stepDecodeLayer() calls the caller
     * owes (0 when the pass was replayed whole); finishDecodePass()
     * seals the pass (and the memo record) afterwards.
     */
    std::size_t beginDecodePass(std::size_t context_len);
    /** Advance the layer-stepped pass by one layer. */
    void stepDecodeLayer();
    /** Seal the layer-stepped pass (records the memo when armed). */
    void finishDecodePass();

    /** Enable/disable the decode-step replay memo (default on). */
    void setStepMemo(bool on) { memo_enabled_ = on; }
    bool stepMemoEnabled() const { return memo_enabled_; }
    /** Decode steps served from the replay memo so far. */
    std::size_t memoReplays() const { return memo_replays_; }
    /** Route HBM requests through the pre-fast-path reference model
     *  (bit-identical results, reference host cost). A/B perf
     *  measurement only — bench_sim uses it to measure the pre-PR
     *  baseline live on the same machine. */
    void setReferenceServing(bool on) { hbm_.setReferenceServing(on); }

    /** Elapsed simulated seconds across all passes so far. */
    double elapsedSeconds() const;

    /**
     * Land cycles/seconds/energy/traffic, the dense fp32 reference for
     * reduction factors, and the stat registry (pipeline aggregates plus
     * the per-stage breakdown) into @p res.
     */
    void finalize(RunResult& res) const;

    /** The stage graph (per-stage stats, activity). */
    const StageGraph& graph() const { return graph_; }

    /**
     * The live execution context. After runPass() returns,
     * `context().alive_tokens` is the cascade-pruned survivor count the
     * pass left behind — the KV length a DecodeSession carries into the
     * next decode step.
     */
    const ExecutionContext& context() const { return ctx_; }

  private:
    /** Recorded effects of one steady-state decode step. */
    struct PassMemo
    {
        bool valid = false;
        std::size_t context_len = 0;
        HbmModel::TimingState pre;  ///< Relative state at record time.
        HbmModel::TimingState post; ///< Relative state after the pass.
        std::uint64_t d_bytes_read = 0;
        std::uint64_t d_bytes_written = 0;
        std::uint64_t d_activations = 0;
        std::uint64_t d_requests = 0;
        std::size_t d_fetch_requests = 0; ///< Fetcher request delta.
        std::vector<StageGraph::LayerReplayRecord> layers;
        std::vector<double> flops_added; ///< Per-layer FLOP increments.
        ExecutionContext ctx_after;      ///< Context at pass exit.
    };

    void replayPass();

    /** Counter snapshot taken when a memo recording begins. */
    struct RecordBaseline
    {
        Cycles base = 0; ///< Pre-pass DRAM clock; pre AND post states
                         ///< are relative to it (replay translates both
                         ///< by the replay-time clock).
        std::uint64_t bytes_read = 0;
        std::uint64_t bytes_written = 0;
        std::uint64_t activations = 0;
        std::uint64_t requests = 0;
        std::size_t fetch_requests = 0;
    };

    WorkloadSpec workload_; ///< By value: the graph may outlive the caller's spec.
    SramModel key_sram_;
    SramModel value_sram_;
    HbmModel hbm_;
    Crossbar xbar_;
    QkvFetcher fetcher_;
    QkModule qk_;
    SoftmaxModule softmax_;
    TopkEngine topk_;
    ZeroEliminator zero_eliminator_;
    PvModule pv_;
    StageGraph graph_;
    ExecutionContext ctx_;
    double core_freq_ghz_;
    EnergyConfig energy_cfg_;
    double attention_flops_ = 0;
    bool memo_enabled_ = true;
    std::size_t memo_replays_ = 0;
    PassMemo memo_;
    // ---- Layer-stepped pass state ----
    bool step_active_ = false;    ///< begin..finish window open.
    bool step_recording_ = false; ///< This stepped pass records the memo.
    std::size_t step_layer_ = 0;  ///< Next layer to run.
    RecordBaseline rec_base_;
};

} // namespace spatten

#endif // SPATTEN_ACCEL_ATTENTION_GRAPH_HPP
