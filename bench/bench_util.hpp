/**
 * @file
 * Shared helpers for the benchmark harness binaries: geometric means,
 * table printing, the standard banner that cites which paper
 * table/figure a binary regenerates, and machine-readable BENCH_*.json
 * emission so successive PRs accumulate a perf trajectory.
 */
#ifndef SPATTEN_BENCH_BENCH_UTIL_HPP
#define SPATTEN_BENCH_BENCH_UTIL_HPP

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "accel/pipeline.hpp"
#include "serve/batch_runner.hpp"
#include "serve/continuous_batch_scheduler.hpp"

namespace spatten {
namespace bench {

/** Geometric mean of positive values. */
inline double
geomean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += std::log(x);
    return std::exp(s / static_cast<double>(xs.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

/** Print the standard experiment banner. */
inline void
banner(const char* experiment, const char* description)
{
    std::printf("==============================================================\n");
    std::printf("SpAtten reproduction — %s\n", experiment);
    std::printf("%s\n", description);
    std::printf("==============================================================\n");
}

/** Print a horizontal rule. */
inline void
rule()
{
    std::printf("--------------------------------------------------------------\n");
}

/** One perf data point of a bench run. */
struct BenchRecord
{
    std::string workload;
    double cycles = 0;
    double seconds = 0;
    double tflops = 0;         ///< Effective attention TFLOPS.
    double dram_reduction = 1; ///< Dense fp32 bytes / fetched bytes.

    /// Serving-only tail metrics (recordFromServe): emitted as extra
    /// JSON fields so BENCH_serving.json carries the latency story —
    /// chunk-size sweeps read as an ITL-p99 curve, and queue-delay
    /// percentiles make admission latency visible, not just TTFT.
    /// Single-workload records (recordFromRun/recordFromBatch) keep
    /// the legacy five-field schema.
    bool has_serving = false;
    double ttft_p99_s = 0;
    double itl_p99_s = 0;
    double queue_delay_p50_s = 0;
    double queue_delay_p99_s = 0;
    /// Prefix-cache / tiered-KV accounting (serving records only):
    /// hit-rate numerators plus the cache-churn counters, so the
    /// tiered-vs-flat sweep reads as a hit-rate vs migration-traffic
    /// curve straight out of BENCH_serving.json.
    double prefix_cache_hits = 0;
    double prefix_cached_tokens = 0;
    double kv_evicted_blocks = 0;
    double kv_demoted_blocks = 0;
    double kv_promoted_blocks = 0;
    double kv_migrated_bytes = 0;
};

/** The BENCH_*.json record of a single-workload simulation result. */
inline BenchRecord
recordFromRun(const std::string& workload, const RunResult& r)
{
    return {workload, static_cast<double>(r.cycles), r.seconds,
            r.effectiveTflops(), r.dramReduction()};
}

/** The BENCH_*.json record of one ContinuousBatchScheduler run:
 *  makespan-based effective TFLOPS over the whole served trace. */
inline BenchRecord
recordFromServe(const std::string& workload, const ServeReport& r)
{
    BenchRecord rec{workload, r.total_cycles, r.makespan_s,
                    r.makespan_s > 0
                        ? r.total_flops / r.makespan_s * 1e-12
                        : 0.0,
                    r.dram_reduction};
    rec.has_serving = true;
    rec.ttft_p99_s = r.ttft_p99_s;
    rec.itl_p99_s = r.itl_p99_s;
    rec.queue_delay_p50_s = r.queue_delay_p50_s;
    rec.queue_delay_p99_s = r.queue_delay_p99_s;
    rec.prefix_cache_hits = static_cast<double>(r.prefix_cache_hits);
    rec.prefix_cached_tokens =
        static_cast<double>(r.prefix_cached_tokens);
    rec.kv_evicted_blocks = static_cast<double>(r.kv_evicted_blocks);
    rec.kv_demoted_blocks = static_cast<double>(r.kv_demoted_blocks);
    rec.kv_promoted_blocks = static_cast<double>(r.kv_promoted_blocks);
    rec.kv_migrated_bytes = static_cast<double>(r.kv_migrated_bytes);
    return rec;
}

/** The BENCH_*.json record of one BatchRunner batch (simulated totals,
 *  identical at every thread count). */
inline BenchRecord
recordFromBatch(const std::string& workload, const BatchResult& b)
{
    double cycles = 0;
    for (const RunResult& r : b.results)
        cycles += static_cast<double>(r.cycles);
    return {workload, cycles, b.total_seconds, b.aggregate_tflops,
            b.dram_reduction};
}

/** Escape backslashes and double quotes for a JSON string literal. */
inline std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/**
 * Emit `BENCH_<name>.json` in the working directory: one record per
 * workload plus the record count, so CI and later PRs can diff perf
 * without scraping stdout tables.
 */
inline void
writeBenchJson(const std::string& name,
               const std::vector<BenchRecord>& records)
{
    const std::string path = "BENCH_" + name + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "warn: cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"records\": [\n",
                 name.c_str());
    for (std::size_t i = 0; i < records.size(); ++i) {
        const BenchRecord& r = records[i];
        std::fprintf(f,
                     "    {\"workload\": \"%s\", \"cycles\": %.0f, "
                     "\"seconds\": %.9g, \"tflops\": %.6g, "
                     "\"dram_reduction\": %.6g",
                     jsonEscape(r.workload).c_str(), r.cycles, r.seconds,
                     r.tflops, r.dram_reduction);
        if (r.has_serving)
            std::fprintf(f,
                         ", \"ttft_p99_s\": %.9g, \"itl_p99_s\": %.9g, "
                         "\"queue_delay_p50_s\": %.9g, "
                         "\"queue_delay_p99_s\": %.9g, "
                         "\"prefix_cache_hits\": %.0f, "
                         "\"prefix_cached_tokens\": %.0f, "
                         "\"kv_evicted_blocks\": %.0f, "
                         "\"kv_demoted_blocks\": %.0f, "
                         "\"kv_promoted_blocks\": %.0f, "
                         "\"kv_migrated_bytes\": %.0f",
                         r.ttft_p99_s, r.itl_p99_s, r.queue_delay_p50_s,
                         r.queue_delay_p99_s, r.prefix_cache_hits,
                         r.prefix_cached_tokens, r.kv_evicted_blocks,
                         r.kv_demoted_blocks, r.kv_promoted_blocks,
                         r.kv_migrated_bytes);
        std::fprintf(f, "}%s\n", i + 1 < records.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu records)\n", path.c_str(), records.size());
}

// ---------------------------------------------------------------------
// BENCH_sim.json: host-performance records (how fast the simulator
// itself runs, as opposed to what it simulates). Written by bench_sim
// and bench_decode_step_kernel; the CI perf floor reads the headline
// decode-session record's sim_tokens_per_cpu_s.
// ---------------------------------------------------------------------

/** One host-perf data point of BENCH_sim.json. */
struct SimPerfRecord
{
    std::string scenario;
    double cpu_s = 0;      ///< Host CPU seconds of the measured region.
    double wall_s = 0;     ///< Host wallclock seconds of the same region.
    double sim_tokens = 0; ///< Simulated decode tokens produced.
    double requests = 0;   ///< Requests (sessions) fully served. Always
                           ///< the count actually completed — a 0 here
                           ///< with nonzero sim_tokens is a bug, not a
                           ///< placeholder.
    double sim_tokens_per_cpu_s = 0;
    double requests_per_cpu_s = 0; ///< requests / cpu_s (0 if cpu_s 0).
    double ns_per_decode_step = 0; ///< Decode-region ns per step.
    double context_len = 0;        ///< Kernel records: entering context.
    double survivor_fraction = 0;  ///< Kernel records: steady-state
                                   ///< survivors / context.
    double baseline_tokens_per_cpu_s = 0; ///< Pre-optimization path,
                                          ///< measured live on this
                                          ///< machine (0 = not measured).
    double speedup_vs_baseline = 0;
};

/** Derive the per-cpu-second rates from the raw counters. */
inline void
finishSimRecord(SimPerfRecord& r)
{
    if (r.cpu_s > 0) {
        r.sim_tokens_per_cpu_s = r.sim_tokens / r.cpu_s;
        r.requests_per_cpu_s = r.requests / r.cpu_s;
    }
    if (r.baseline_tokens_per_cpu_s > 0 && r.sim_tokens_per_cpu_s > 0)
        r.speedup_vs_baseline =
            r.sim_tokens_per_cpu_s / r.baseline_tokens_per_cpu_s;
}

inline std::string
simRecordLine(const SimPerfRecord& r)
{
    char buf[768];
    std::snprintf(
        buf, sizeof buf,
        "    {\"scenario\": \"%s\", \"cpu_s\": %.6g, \"wall_s\": %.6g, "
        "\"sim_tokens\": %.0f, \"requests\": %.0f, "
        "\"sim_tokens_per_cpu_s\": %.6g, \"requests_per_cpu_s\": %.6g, "
        "\"ns_per_decode_step\": %.6g, \"context_len\": %.0f, "
        "\"survivor_fraction\": %.4g, "
        "\"baseline_tokens_per_cpu_s\": %.6g, "
        "\"speedup_vs_baseline\": %.4g}",
        jsonEscape(r.scenario).c_str(), r.cpu_s, r.wall_s, r.sim_tokens,
        r.requests, r.sim_tokens_per_cpu_s, r.requests_per_cpu_s,
        r.ns_per_decode_step, r.context_len, r.survivor_fraction,
        r.baseline_tokens_per_cpu_s, r.speedup_vs_baseline);
    return buf;
}

/**
 * Write (or merge into) BENCH_sim.json: existing records whose scenario
 * key is not being replaced are preserved, so bench_sim and
 * bench_decode_step_kernel can each own their rows of the same file
 * regardless of run order. The parse is line-based over our own
 * emitter's format (one record per line, four-space indent).
 */
inline void
writeSimJson(const std::vector<SimPerfRecord>& records)
{
    const char* path = "BENCH_sim.json";
    std::vector<std::string> lines;
    if (std::FILE* f = std::fopen(path, "r")) {
        char buf[1024];
        while (std::fgets(buf, sizeof buf, f)) {
            std::string line(buf);
            if (line.rfind("    {\"scenario\": \"", 0) != 0)
                continue;
            const std::size_t key_at = 18; // strlen of the prefix above.
            const std::size_t key_end = line.find('"', key_at);
            if (key_end == std::string::npos)
                continue;
            const std::string key = line.substr(key_at, key_end - key_at);
            bool replaced = false;
            for (const SimPerfRecord& r : records)
                replaced = replaced || r.scenario == key;
            if (!replaced) {
                while (!line.empty() &&
                       (line.back() == '\n' || line.back() == ','))
                    line.pop_back();
                lines.push_back(line);
            }
        }
        std::fclose(f);
    }
    for (const SimPerfRecord& r : records)
        lines.push_back(simRecordLine(r));

    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "warn: cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"sim\",\n  \"records\": [\n");
    for (std::size_t i = 0; i < lines.size(); ++i)
        std::fprintf(f, "%s%s\n", lines[i].c_str(),
                     i + 1 < lines.size() ? "," : "");
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu records)\n", path, lines.size());
}

} // namespace bench
} // namespace spatten

#endif // SPATTEN_BENCH_BENCH_UTIL_HPP
