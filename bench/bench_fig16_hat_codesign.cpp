/// Regenerates Fig. 16/17: HAT co-design of the transformer architecture
/// for SpAtten-e2e — latency/BLEU frontier vs vanilla layer/dimension
/// scaling, and the FLOPs shift from FC toward attention.
#include <cstdio>

#include "bench_util.hpp"
#include "hat/hat_search.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Fig. 16/17",
           "HAT co-design for SpAtten-e2e (proxy-BLEU, see DESIGN.md)");

    SpAttenConfig hw;
    E2eConfig e2e{8, 0.85};

    // Vanilla scaling baselines.
    std::printf("(a) vanilla Transformer layer-number scaling "
                "(512 embed, 2048 FFN)\n");
    std::printf("%10s %14s %10s\n", "layers", "latency ms", "BLEU");
    rule();
    for (std::size_t l : {1u, 2u, 3u, 4u, 5u, 6u}) {
        const auto ev = evaluateCandidate({512, 2048, l}, hw, e2e);
        std::printf("%10zu %14.3f %10.2f\n", l, ev.latency_ms, ev.bleu);
    }
    std::printf("\n(b) vanilla dimension scaling (6 layers, FFN = 4x "
                "embed)\n");
    std::printf("%10s %14s %10s\n", "embed", "latency ms", "BLEU");
    rule();
    for (std::size_t e : {512u, 640u, 768u}) {
        const auto ev = evaluateCandidate({e, 4 * e, 6}, hw, e2e);
        std::printf("%10zu %14.3f %10.2f\n", e, ev.latency_ms, ev.bleu);
    }

    // Vanilla reference points (Transformer-Big is 1024/4096/6 — outside
    // the HAT search space, evaluable for reference).
    const auto vanilla_base = evaluateCandidate({512, 2048, 6}, hw, e2e);
    const auto vanilla_big = evaluateCandidate({1024, 4096, 6}, hw, e2e);
    std::vector<HatEvaluated> vanilla_curve;
    for (std::size_t l : {1u, 2u, 3u, 4u, 5u, 6u})
        vanilla_curve.push_back(evaluateCandidate({512, 2048, l}, hw, e2e));
    for (std::size_t e : {640u, 768u, 1024u})
        vanilla_curve.push_back(evaluateCandidate({e, 4 * e, 6}, hw, e2e));

    std::vector<double> budgets;
    for (double f : {0.15, 0.25, 0.4, 0.6, 0.85})
        budgets.push_back(vanilla_big.latency_ms * f);

    std::printf("\n(c) co-designed Transformers for SpAtten "
                "(evolutionary search under latency budgets)\n");
    std::printf("%12s %12s %8s %22s %14s\n", "budget ms", "latency ms",
                "BLEU", "chosen (e/f/l)", "iso-BLEU gain");
    rule();
    HatSearchConfig scfg;
    scfg.population = 16;
    scfg.generations = 8;
    const auto frontier = searchFrontier(budgets, hw, e2e, scfg);
    std::vector<double> gains;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        const auto& ev = frontier[i];
        // Cheapest vanilla configuration reaching this BLEU.
        double vanilla_ms = -1.0;
        for (const auto& v : vanilla_curve) {
            if (v.bleu >= ev.bleu &&
                (vanilla_ms < 0 || v.latency_ms < vanilla_ms))
                vanilla_ms = v.latency_ms;
        }
        const double gain =
            vanilla_ms > 0 ? vanilla_ms / ev.latency_ms : 0.0;
        if (gain > 0)
            gains.push_back(gain);
        std::printf("%12.3f %12.3f %8.2f %16zu/%zu/%zu %13.2fx\n",
                    budgets[i], ev.latency_ms, ev.bleu,
                    ev.cand.embed_dim, ev.cand.ffn_dim, ev.cand.layers,
                    gain);
    }
    rule();
    if (!gains.empty()) {
        double best = 0;
        for (double g : gains)
            best = std::max(best, g);
        std::printf("Best iso-BLEU speedup of co-design over vanilla "
                    "scaling: %.2fx (paper: 1.9x faster at matched BLEU, "
                    "2.8x smaller)\n", best);
    }

    // Fig. 17: FLOPs composition shift.
    std::printf("\n(d) Fig. 17 — FLOPs composition (vanilla Base vs "
                "co-designed under 0.55x Base budget)\n");
    const auto tight = searchFrontier(
        {vanilla_base.latency_ms * 0.55}, hw, e2e, scfg);
    const auto& chosen = tight.front();
    std::printf("%-26s FC %.2f GFLOP, attn %.3f GFLOP (FC:attn %.0f:1)\n",
                "vanilla Transformer-Base",
                vanilla_base.fc_flops * 1e-9,
                vanilla_base.attn_flops * 1e-9,
                vanilla_base.fc_flops / vanilla_base.attn_flops);
    std::printf("%-26s FC %.2f GFLOP, attn %.3f GFLOP (FC:attn %.0f:1)\n",
                "co-designed for SpAtten", chosen.fc_flops * 1e-9,
                chosen.attn_flops * 1e-9,
                chosen.fc_flops / chosen.attn_flops);
    std::printf("Paper: FC FLOPs shrink (2.7G -> 1.9G) while attention "
                "FLOPs grow slightly (28.9M -> 30.5M).\n");
    return 0;
}
