/// Integration tests for the SpAtten pipeline model, the accelerator
/// facade and the e2e (FFN) extension: pruning/quantization effects on
/// latency, DRAM traffic, compute- vs memory-boundedness, and rooflines.
#include <gtest/gtest.h>

#include "accel/e2e.hpp"
#include "accel/spatten_accelerator.hpp"

namespace spatten {
namespace {

WorkloadSpec
bertWorkload(std::size_t len = 128)
{
    WorkloadSpec w;
    w.name = "bert-base-test";
    w.model = ModelSpec::bertBase();
    w.summarize_len = len;
    w.generate_len = 0;
    return w;
}

WorkloadSpec
gptWorkload(std::size_t ctx = 512, std::size_t gen = 16)
{
    WorkloadSpec w;
    w.name = "gpt2-small-test";
    w.model = ModelSpec::gpt2Small();
    w.summarize_len = ctx;
    w.generate_len = gen;
    return w;
}

PruningPolicy
fullPolicy()
{
    PruningPolicy p;
    p.token_avg_ratio = 0.15;
    p.head_avg_ratio = 0.05;
    p.local_v_ratio = 0.3;
    p.pq.enabled = true;
    p.pq.setting = {8, 4};
    p.lsb_fraction = 0.059;
    return p;
}

TEST(Pipeline, DensePolicyHasNoReduction)
{
    SpAttenPipeline pipe;
    const auto r = pipe.run(bertWorkload(), PruningPolicy::disabled());
    EXPECT_DOUBLE_EQ(r.computeReduction(), 1.0);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.attention_flops, 0.0);
    // Dense 12-bit vs fp32 reference: DRAM reduction = 32/12.
    EXPECT_NEAR(r.dramReduction(), 32.0 / 12.0, 0.2);
}

TEST(Pipeline, PruningReducesLatencyAndTraffic)
{
    SpAttenPipeline pipe;
    const auto dense = pipe.run(gptWorkload(), PruningPolicy::disabled());
    const auto pruned = pipe.run(gptWorkload(), fullPolicy());
    EXPECT_LT(pruned.seconds, dense.seconds);
    EXPECT_LT(pruned.dram_bytes, dense.dram_bytes);
    EXPECT_LT(pruned.attention_flops, dense.attention_flops);
    EXPECT_GT(pruned.dramReduction(), 3.0); // pruning + quantization
}

TEST(Pipeline, TokenPruningAloneReducesCompute)
{
    SpAttenPipeline pipe;
    PruningPolicy p = PruningPolicy::disabled();
    p.token_pruning = true;
    p.token_avg_ratio = 0.2;
    const auto r = pipe.run(bertWorkload(256), p);
    EXPECT_GT(r.computeReduction(), 1.3);
}

TEST(Pipeline, HeadPruningReducesCompute)
{
    SpAttenPipeline pipe;
    PruningPolicy p = PruningPolicy::disabled();
    p.head_pruning = true;
    p.head_avg_ratio = 0.1;
    const auto r = pipe.run(bertWorkload(256), p);
    EXPECT_GT(r.computeReduction(), 1.05);
}

TEST(Pipeline, ProgressiveQuantReducesDram)
{
    SpAttenPipeline pipe;
    PruningPolicy static12 = PruningPolicy::disabled();
    const auto r12 = pipe.run(gptWorkload(), static12);

    PruningPolicy pq = PruningPolicy::disabled();
    pq.pq.enabled = true;
    pq.pq.setting = {6, 4};
    pq.lsb_fraction = 0.059;
    const auto rq = pipe.run(gptWorkload(), pq);
    EXPECT_LT(rq.dram_bytes, r12.dram_bytes * 0.7);
}

TEST(Pipeline, BertIsComputeBoundGptIsMemoryBound)
{
    SpAttenPipeline pipe;
    const auto bert = pipe.run(bertWorkload(384),
                               PruningPolicy::disabled());
    EXPECT_GT(bert.stats.get("pipeline.compute_bound_ns"),
              bert.stats.get("pipeline.memory_bound_ns"));

    // Generation iterations dominate GPT-2 latency and are memory-bound.
    const auto gpt = pipe.run(gptWorkload(900, 32),
                              PruningPolicy::disabled());
    EXPECT_GT(gpt.stats.get("pipeline.memory_bound_ns"), 0.0);
}

TEST(Pipeline, EffectiveTflopsUnderRoofs)
{
    SpAttenAccelerator accel;
    const auto bert = accel.run(bertWorkload(384),
                                PruningPolicy::disabled());
    EXPECT_LE(bert.effectiveTflops(), accel.computeRoofTflops() * 1.001);
    EXPECT_GT(bert.effectiveTflops(), accel.computeRoofTflops() * 0.3);

    const auto gpt = accel.run(gptWorkload(900, 32),
                               PruningPolicy::disabled());
    EXPECT_LT(gpt.effectiveTflops(), bert.effectiveTflops());
}

TEST(Pipeline, LongerSequencesTakeLonger)
{
    SpAttenPipeline pipe;
    const auto a = pipe.run(bertWorkload(64), PruningPolicy::disabled());
    const auto b = pipe.run(bertWorkload(256), PruningPolicy::disabled());
    EXPECT_GT(b.seconds, a.seconds * 3.0); // ~quadratic in L
}

TEST(Pipeline, EighthConfigSlower)
{
    SpAttenPipeline full;
    SpAttenPipeline eighth(SpAttenConfig::eighth());
    const auto rf = full.run(bertWorkload(128), PruningPolicy::disabled());
    const auto re = eighth.run(bertWorkload(128),
                               PruningPolicy::disabled());
    EXPECT_GT(re.seconds, rf.seconds * 3.0);
}

TEST(Pipeline, DramIsAMajorEnergyBucket)
{
    SpAttenPipeline pipe;
    const auto r = pipe.run(gptWorkload(900, 32), fullPolicy());
    // Table II shape: DRAM is a dominant power bucket (5.71 W of 8.30 W
    // in the paper; here we require it to be a major share).
    EXPECT_GT(r.energy.dram_j, 0.3 * r.energy.totalJ());
}

TEST(Pipeline, StageSplitSumsToTotal)
{
    SpAttenPipeline pipe;
    const auto r = pipe.run(gptWorkload(512, 8), fullPolicy());
    EXPECT_NEAR(r.summarize_seconds + r.generate_seconds, r.seconds,
                r.seconds * 1e-9 + 1e-12);
    EXPECT_GT(r.generate_seconds, 0.0);
}

TEST(Pipeline, ContextLimitEnforced)
{
    SpAttenPipeline pipe;
    WorkloadSpec w = gptWorkload(1020, 16); // 1036 > 1024
    EXPECT_DEATH(pipe.run(w, PruningPolicy::disabled()), "context");
}

TEST(Accelerator, RooflineConstants)
{
    SpAttenAccelerator accel;
    EXPECT_DOUBLE_EQ(accel.computeRoofTflops(), 2.048);
    EXPECT_DOUBLE_EQ(accel.bandwidthRoofGBs(), 512.0);
}

TEST(Accelerator, ConfigTableMentionsKeyNumbers)
{
    SpAttenAccelerator accel;
    const std::string t = accel.configTable();
    EXPECT_NE(t.find("512"), std::string::npos); // GB/s or multipliers
    EXPECT_NE(t.find("HBM2"), std::string::npos);
}

TEST(E2e, FcDominatesGenerationStage)
{
    // Table IV: on SpAtten-e2e, FC is ~92% of the GPT-2 generation
    // latency, attention only ~8%.
    SpAttenE2e e2e(SpAttenConfig{}, E2eConfig{8, 0.85});
    const auto r = e2e.run(gptWorkload(900, 16), fullPolicy());
    EXPECT_GT(r.fc_gen_seconds, r.attention.generate_seconds);
    EXPECT_LT(r.genAttnShare(), 0.3);
}

TEST(E2e, EightBitFasterThanTwelve)
{
    SpAttenE2e e8(SpAttenConfig{}, E2eConfig{8, 0.85});
    SpAttenE2e e12(SpAttenConfig{}, E2eConfig{12, 0.85});
    const auto r8 = e8.run(gptWorkload(900, 16), fullPolicy());
    const auto r12 = e12.run(gptWorkload(900, 16), fullPolicy());
    EXPECT_LT(r8.fc_gen_seconds, r12.fc_gen_seconds);
    // Memory-bound mat-vec: generation latency ratio ~ bit ratio.
    EXPECT_NEAR(r12.fc_gen_seconds / r8.fc_gen_seconds, 1.5, 0.2);
}

TEST(E2e, FcParamsFormula)
{
    const ModelSpec m = ModelSpec::bertBase(); // d=768, ffn=3072
    // 4*768^2 + 2*768*3072 = 7077888.
    EXPECT_DOUBLE_EQ(fcParamsPerLayer(m), 7077888.0);
}

TEST(E2e, TokenPruningShrinksSummarizationFcOnly)
{
    SpAttenE2e e2e;
    PruningPolicy dense = PruningPolicy::disabled();
    PruningPolicy pruned = fullPolicy();
    // BERT: token pruning reduces FC work.
    const auto bd = e2e.run(bertWorkload(256), dense);
    const auto bp = e2e.run(bertWorkload(256), pruned);
    EXPECT_LT(bp.fc_flops, bd.fc_flops);
    // GPT-2 generation: FC work is per-token, unchanged by pruning.
    const auto gd = e2e.run(gptWorkload(256, 8), dense);
    const auto gp = e2e.run(gptWorkload(256, 8), pruned);
    EXPECT_DOUBLE_EQ(gp.fc_gen_flops, gd.fc_gen_flops);
    EXPECT_LT(gp.fc_sum_flops, gd.fc_sum_flops);
}

} // namespace
} // namespace spatten
