/// Unit tests for cumulative token and head importance scores
/// (Algorithm 2 semantics).
#include <gtest/gtest.h>

#include "core/importance.hpp"
#include "tensor/ops.hpp"

namespace spatten {
namespace {

std::vector<std::size_t>
iota(std::size_t n)
{
    std::vector<std::size_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = i;
    return v;
}

TEST(TokenImportance, ColumnSumsAccumulate)
{
    TokenImportanceAccumulator acc(3);
    // Two queries, three keys.
    Tensor prob({2, 3}, {0.5f, 0.3f, 0.2f, 0.1f, 0.1f, 0.8f});
    acc.accumulate(prob, iota(3));
    EXPECT_FLOAT_EQ(acc.score(0), 0.6f);
    EXPECT_FLOAT_EQ(acc.score(1), 0.4f);
    EXPECT_FLOAT_EQ(acc.score(2), 1.0f);
}

TEST(TokenImportance, AccumulatesAcrossCalls)
{
    TokenImportanceAccumulator acc(2);
    Tensor prob({1, 2}, {0.75f, 0.25f});
    acc.accumulate(prob, iota(2));
    acc.accumulate(prob, iota(2));
    EXPECT_FLOAT_EQ(acc.score(0), 1.5f);
    EXPECT_FLOAT_EQ(acc.score(1), 0.5f);
}

TEST(TokenImportance, GlobalIdsRespectedAfterPruning)
{
    TokenImportanceAccumulator acc(4);
    // Suppose tokens 1 and 3 were pruned; columns map to global ids 0, 2.
    Tensor prob({1, 2}, {0.9f, 0.1f});
    acc.accumulate(prob, {0, 2});
    EXPECT_FLOAT_EQ(acc.score(0), 0.9f);
    EXPECT_FLOAT_EQ(acc.score(1), 0.0f);
    EXPECT_FLOAT_EQ(acc.score(2), 0.1f);
    EXPECT_FLOAT_EQ(acc.score(3), 0.0f);
}

TEST(TokenImportance, RowAccumulationForGeneration)
{
    TokenImportanceAccumulator acc(3);
    acc.accumulateRow({0.2f, 0.3f, 0.5f}, iota(3));
    acc.accumulateRow({0.1f, 0.1f, 0.8f}, iota(3));
    EXPECT_FLOAT_EQ(acc.score(2), 1.3f);
}

TEST(TokenImportance, AddTokenGrowsTable)
{
    TokenImportanceAccumulator acc(2);
    acc.addToken();
    EXPECT_EQ(acc.numTokens(), 3u);
    EXPECT_FLOAT_EQ(acc.score(2), 0.0f);
    acc.accumulateRow({0.0f, 0.0f, 1.0f}, iota(3));
    EXPECT_FLOAT_EQ(acc.score(2), 1.0f);
}

TEST(TokenImportance, TotalMassEqualsQueriesTimesHeads)
{
    // Each softmax row sums to 1, so total accumulated mass equals the
    // number of (query, head) rows accumulated.
    Prng p(1);
    TokenImportanceAccumulator acc(8);
    for (int h = 0; h < 3; ++h) {
        const Tensor scores = Tensor::randn({5, 8}, p);
        acc.accumulate(ops::softmaxRows(scores), iota(8));
    }
    double total = 0.0;
    for (float s : acc.scores())
        total += s;
    EXPECT_NEAR(total, 15.0, 1e-4);
}

TEST(HeadImportance, AbsMagnitudeAccumulates)
{
    HeadImportanceAccumulator acc(2);
    Tensor e0({2, 2}, {1.0f, -1.0f, 2.0f, -2.0f});
    Tensor e1({2, 2}, {0.1f, 0.1f, -0.1f, -0.1f});
    acc.accumulate(e0, 0);
    acc.accumulate(e1, 1);
    EXPECT_FLOAT_EQ(acc.score(0), 6.0f);
    EXPECT_FLOAT_EQ(acc.score(1), 0.4f);
}

TEST(HeadImportance, AccumulateAcrossLayers)
{
    HeadImportanceAccumulator acc(1);
    acc.accumulateAbsSum(2.0, 0);
    acc.accumulateAbsSum(3.0, 0);
    EXPECT_FLOAT_EQ(acc.score(0), 5.0f);
}

TEST(HeadImportance, ResetClears)
{
    HeadImportanceAccumulator acc(2);
    acc.accumulateAbsSum(1.0, 0);
    acc.reset(3);
    EXPECT_EQ(acc.numHeads(), 3u);
    EXPECT_FLOAT_EQ(acc.score(0), 0.0f);
}

} // namespace
} // namespace spatten
