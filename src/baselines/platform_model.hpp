/**
 * @file
 * Analytical models of the baseline platforms the paper measures
 * (TITAN Xp GPU, Xeon E5-2640 v4, Jetson Nano, Raspberry Pi 4 ARM).
 *
 * The paper runs attention with PyTorch (cuDNN/MKL) and measures wall
 * clock and dynamic power. We cannot measure that hardware here, so each
 * platform is modeled as: matmul time from a de-rated roofline
 * (peak x achievable utilization, or bandwidth-bound for matrix-vector
 * generation), inflated by the measured data-movement share of attention
 * latency (Fig. 2: matmul is only ~27% of GPU attention latency), plus a
 * per-launch overhead. Utilizations and dynamic powers are calibrated to
 * the paper's published effective rates (Fig. 18: 0.02/0.01 TFLOPS on
 * TITAN Xp for BERT/GPT-2) and energy ratios (Fig. 14). The substitution
 * is documented in DESIGN.md.
 */
#ifndef SPATTEN_BASELINES_PLATFORM_MODEL_HPP
#define SPATTEN_BASELINES_PLATFORM_MODEL_HPP

#include <string>

#include "core/model_spec.hpp"

namespace spatten {

/** Static description of a baseline platform. */
struct PlatformSpec
{
    std::string name;
    double peak_tflops = 1.0;     ///< fp32 peak.
    double mem_bw_gbs = 100.0;    ///< DRAM bandwidth.
    double matmul_util = 0.1;     ///< Achievable fraction on attention GEMMs
                                  ///< at the reference length (small batch).
    double genvec_util = 0.05;    ///< Achievable on generation mat-vec.
    double matmul_fraction = 0.27;///< Matmul share of attention latency (Fig. 2).
    double overhead_us_per_layer = 20.0; ///< Launch/dispatch per layer.
    /// Generation-stage per-layer data-movement overhead (KV concat,
    /// reshape, transpose — the 73% slice of Fig. 2).
    double gen_overhead_us_per_layer = 300.0;
    /// GEMM utilization grows with sequence length: effective util =
    /// matmul_util * clamp(L / util_len_ref, 1, util_len_max_scale).
    double util_len_ref = 64.0;
    double util_len_max_scale = 4.0;
    /// Achievable fraction of DRAM bandwidth on generation-stage FC
    /// mat-vec (many small kernels; Fig. 2's per-token FC cost).
    double fc_gen_bw_eff = 0.15;
    double dynamic_power_w = 60.0;///< Measured dynamic power proxy.

    static PlatformSpec titanXp();
    static PlatformSpec xeon();
    static PlatformSpec jetsonNano();
    static PlatformSpec raspberryPi();
};

/** Latency/energy estimate for one workload on a platform. */
struct PlatformResult
{
    std::string platform;
    double seconds = 0;
    double flops = 0;      ///< Dense attention FLOPs executed.
    double dram_bytes = 0;
    double energy_j = 0;

    double effectiveTflops() const
    {
        return seconds > 0 ? flops / seconds * 1e-12 : 0;
    }
};

/** The analytical platform model. */
class PlatformModel
{
  public:
    explicit PlatformModel(PlatformSpec spec) : spec_(std::move(spec)) {}

    /**
     * Attention-layers latency of @p workload (dense, fp32 — baselines
     * fetch everything before knowing what could be pruned).
     * @param pruned_keep optional compute keep-fraction when the
     *        CPU/GPU implementation itself applies SpAtten token pruning
     *        with topk+gather (§V-B "We implement token pruning on
     *        CPUs/GPUs"); 1.0 = dense.
     */
    PlatformResult attention(const WorkloadSpec& workload,
                             double pruned_keep = 1.0) const;

    /** FC-layers latency (for end-to-end comparisons, Fig. 15/Table IV). */
    PlatformResult fc(const WorkloadSpec& workload) const;

    const PlatformSpec& spec() const { return spec_; }

  private:
    PlatformSpec spec_;
};

} // namespace spatten

#endif // SPATTEN_BASELINES_PLATFORM_MODEL_HPP
