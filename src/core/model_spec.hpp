/**
 * @file
 * Shared description of an attention workload: the transformer shape
 * (Fig. 3) plus the SpAtten pruning/quantization policy applied to it.
 * Both the accelerator model and the baseline platform models consume
 * this, so it lives in core.
 */
#ifndef SPATTEN_CORE_MODEL_SPEC_HPP
#define SPATTEN_CORE_MODEL_SPEC_HPP

#include <cstddef>
#include <string>

#include "core/progressive_quant.hpp"
#include "core/schedule.hpp"

namespace spatten {

/** Transformer model shape. */
struct ModelSpec
{
    std::string name = "bert-base";
    std::size_t num_layers = 12;
    std::size_t num_heads = 12;
    std::size_t d_head = 64;
    std::size_t ffn_mult = 4; ///< FFN hidden = ffn_mult * dModel().
    /// Explicit FFN hidden size; overrides ffn_mult when non-zero
    /// (used by the HAT co-design search, whose space includes FFN dims
    /// that are not multiples of the embedding dim).
    std::size_t ffn_hidden_override = 0;

    std::size_t dModel() const { return num_heads * d_head; }
    std::size_t ffnHidden() const
    {
        return ffn_hidden_override ? ffn_hidden_override
                                   : ffn_mult * dModel();
    }

    static ModelSpec bertBase();
    static ModelSpec bertLarge();
    static ModelSpec gpt2Small();
    static ModelSpec gpt2Medium();
};

inline ModelSpec
ModelSpec::bertBase()
{
    return {"bert-base", 12, 12, 64, 4};
}

inline ModelSpec
ModelSpec::bertLarge()
{
    return {"bert-large", 24, 16, 64, 4};
}

inline ModelSpec
ModelSpec::gpt2Small()
{
    return {"gpt2-small", 12, 12, 64, 4};
}

inline ModelSpec
ModelSpec::gpt2Medium()
{
    return {"gpt2-medium", 24, 16, 64, 4};
}

/**
 * Bytes one token's K and V vectors occupy across all layers of
 * @p model at @p bytes_per_elem storage width (2 = the fp16-equivalent
 * layout the fetcher streams quantized planes out of). The single
 * definition behind every KV-capacity computation: DecodeSession's
 * resident-size reporting and the serving layer's KvPool both call it.
 */
inline std::size_t
kvBytesPerToken(const ModelSpec& model, std::size_t bytes_per_elem = 2)
{
    // One K row and one V row of d_head elements per head, per layer.
    return 2 * model.num_layers * model.num_heads * model.d_head *
           bytes_per_elem;
}

/** One benchmark instance: model shape + sequence lengths. */
struct WorkloadSpec
{
    std::string name = "workload";
    ModelSpec model;
    std::size_t summarize_len = 128; ///< Input tokens (summarization stage).
    std::size_t generate_len = 0;    ///< Generated tokens (0 => BERT-style).
    /// Measure the generation stage only (§V-A: GPT-2 benchmarks set a
    /// 992-token initial sentence and measure the latency of generating
    /// 32 tokens). The context still includes the summarized tokens.
    bool skip_summarization = false;

    bool isGenerative() const { return generate_len > 0; }
};

/**
 * How token importance is derived (§VI): SpAtten accumulates attention
 * probabilities across heads/layers/iterations; PoWER-BERT-style pruning
 * uses only the instant probabilities of the current layer.
 */
enum class ImportanceMode
{
    Cumulative, ///< SpAtten: scores accumulate across layers.
    Instant,    ///< PoWER-BERT-style: current layer's probabilities only.
    Random,     ///< Ablation lower bound: prune uniformly at random.
};

/** The SpAtten policy knobs applied to a workload (§III, §V-A). */
struct PruningPolicy
{
    bool token_pruning = true;
    ImportanceMode importance_mode = ImportanceMode::Cumulative;
    bool head_pruning = true;
    bool local_value_pruning = true;
    double token_avg_ratio = 0.15;  ///< Per-layer average token prune ratio.
    double head_avg_ratio = 0.03;   ///< Per-layer average head prune ratio.
    double local_v_ratio = 0.3;     ///< Per-row local V pruning ratio.
    ProgressiveQuantConfig pq;      ///< Progressive quantization policy.
    /// Fraction of queries whose probability row is flat enough to need
    /// the LSB pass. The paper measures 5.9% on average; the functional
    /// experiments (src/nn + src/workload) measure it per task.
    double lsb_fraction = 0.059;

    /** Everything off: the unpruned fp32-equivalent baseline policy. */
    static PruningPolicy disabled();
};

inline PruningPolicy
PruningPolicy::disabled()
{
    PruningPolicy p;
    p.token_pruning = false;
    p.head_pruning = false;
    p.local_value_pruning = false;
    p.token_avg_ratio = 0.0;
    p.head_avg_ratio = 0.0;
    p.local_v_ratio = 0.0;
    p.pq.enabled = false;
    p.lsb_fraction = 0.0;
    return p;
}

} // namespace spatten

#endif // SPATTEN_CORE_MODEL_SPEC_HPP
