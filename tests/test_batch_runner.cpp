/// BatchRunner contract tests: N-thread execution is bit-identical to
/// single-threaded execution, aggregates are coherent, and the GPT-2
/// summarize+generate workload's cycles / DRAM reduction through the
/// stage graph are pinned at the old monolith's values (no regression).
#include <gtest/gtest.h>

#include <algorithm>

#include "accel/spatten_accelerator.hpp"
#include "serve/batch_runner.hpp"
#include "workload/benchmarks.hpp"

namespace spatten {
namespace {

WorkloadSpec
gptWorkload(std::size_t ctx = 512, std::size_t gen = 16)
{
    WorkloadSpec w;
    w.name = "gpt2-small-batch";
    w.model = ModelSpec::gpt2Small();
    w.summarize_len = ctx;
    w.generate_len = gen;
    return w;
}

PruningPolicy
fullPolicy()
{
    PruningPolicy p;
    p.token_avg_ratio = 0.15;
    p.head_avg_ratio = 0.05;
    p.local_v_ratio = 0.3;
    p.pq.enabled = true;
    p.pq.setting = {8, 4};
    p.lsb_fraction = 0.059;
    return p;
}

std::vector<BatchRequest>
mixedBatch()
{
    std::vector<BatchRequest> batch;
    WorkloadSpec bert;
    bert.name = "bert-batch";
    bert.model = ModelSpec::bertBase();
    bert.summarize_len = 192;
    batch.push_back({bert, fullPolicy(), 1});
    batch.push_back({gptWorkload(384, 8), fullPolicy(), 2});
    batch.push_back({gptWorkload(512, 4), PruningPolicy::disabled(), 3});
    batch.push_back({bert, PruningPolicy::disabled(), 4});
    batch.push_back({gptWorkload(256, 12), fullPolicy(), 5});
    batch.push_back({gptWorkload(384, 8), fullPolicy(), 2}); // duplicate
    return batch;
}

// Pinned by the static-analysis PR: batch_runner.cpp carries the
// repo's only determinism-ok(no-wallclock) suppressions, justified by
// the claim that the steady_clock probe measures host time and never
// feeds simulated state. This test is that claim's regression guard —
// two runs of the same batch must agree bit-for-bit on every simulated
// aggregate even though their wall_seconds differ freely.
TEST(BatchRunner, WallClockNeverLeaksIntoSimulatedAggregates)
{
    const auto batch = mixedBatch();
    BatchRunner runner(SpAttenConfig{}, {4});
    const BatchResult a = runner.run(batch);
    const BatchResult b = runner.run(batch);

    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_EQ(a.results[i].cycles, b.results[i].cycles) << i;
        EXPECT_EQ(a.results[i].dram_bytes, b.results[i].dram_bytes) << i;
    }
    EXPECT_EQ(a.p50_seconds, b.p50_seconds);
    EXPECT_EQ(a.p99_seconds, b.p99_seconds);
    EXPECT_EQ(a.total_seconds, b.total_seconds);
    EXPECT_EQ(a.makespan_seconds, b.makespan_seconds);
    EXPECT_EQ(a.total_flops, b.total_flops);
    EXPECT_EQ(a.aggregate_tflops, b.aggregate_tflops);
    EXPECT_EQ(a.dram_reduction, b.dram_reduction);
    // wall_seconds is the host-side probe: positive, but deliberately
    // NOT compared — it is the one field allowed to vary run to run.
    EXPECT_GT(a.wall_seconds, 0.0);
    EXPECT_GT(b.wall_seconds, 0.0);
}

TEST(BatchRunner, MultiThreadedBitIdenticalToSingleThreaded)
{
    const auto batch = mixedBatch();
    const BatchResult ref =
        BatchRunner(SpAttenConfig{}, {1}).run(batch);
    ASSERT_EQ(ref.results.size(), batch.size());
    for (const std::size_t threads : {2u, 4u, 8u}) {
        const BatchResult r =
            BatchRunner(SpAttenConfig{}, {threads}).run(batch);
        ASSERT_EQ(r.results.size(), batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            EXPECT_EQ(r.results[i].cycles, ref.results[i].cycles)
                << "request " << i << " at " << threads << " threads";
            EXPECT_EQ(r.results[i].seconds, ref.results[i].seconds);
            EXPECT_EQ(r.results[i].dram_bytes, ref.results[i].dram_bytes);
            EXPECT_EQ(r.results[i].attention_flops,
                      ref.results[i].attention_flops);
            EXPECT_EQ(r.results[i].energy.totalJ(),
                      ref.results[i].energy.totalJ());
        }
        EXPECT_EQ(r.p50_seconds, ref.p50_seconds);
        EXPECT_EQ(r.p99_seconds, ref.p99_seconds);
        EXPECT_EQ(r.aggregate_tflops, ref.aggregate_tflops);
        EXPECT_EQ(r.dram_reduction, ref.dram_reduction);
    }
}

// The occupancy model prices top-k selections analytically and never
// draws from the per-request PRNG, so results must not depend on the
// seed today. This pins that semantic explicitly: if a future stage
// starts consuming the seed, this test fails and the determinism
// contract above must be re-proven against real seed plumbing.
TEST(BatchRunner, TimingModelIsSeedIndependentToday)
{
    SpAttenPipeline pipe;
    const RunResult a = pipe.run(gptWorkload(256, 4), fullPolicy(), 1);
    const RunResult b = pipe.run(gptWorkload(256, 4), fullPolicy(), 999);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.dram_bytes, b.dram_bytes);
}

TEST(BatchRunner, AggregatesAreCoherent)
{
    const BatchResult r =
        BatchRunner(SpAttenConfig{}, {2}).run(mixedBatch());
    EXPECT_LE(r.p50_seconds, r.p99_seconds);
    EXPECT_GT(r.p50_seconds, 0.0);
    EXPECT_GT(r.aggregate_tflops, 0.0);
    EXPECT_GT(r.dram_reduction, 1.0);
    EXPECT_GT(r.throughputRps(), 0.0);
    double sum = 0.0;
    for (const auto& res : r.results)
        sum += res.seconds;
    EXPECT_DOUBLE_EQ(r.total_seconds, sum);
}

TEST(BatchRunner, EmptyBatchAndFacade)
{
    const BatchResult empty = BatchRunner().run({});
    EXPECT_TRUE(empty.results.empty());
    EXPECT_EQ(empty.p50_seconds, 0.0);

    SpAttenAccelerator accel;
    const BatchResult r = accel.runBatch({{gptWorkload(128, 2),
                                           fullPolicy(), 7}},
                                         2);
    ASSERT_EQ(r.results.size(), 1u);
    EXPECT_GT(r.results.front().seconds, 0.0);
}

// throughputRps once divided by the *sum* of per-request latencies,
// which under-reports concurrent service: two equal requests served in
// parallel are 2/latency, not 1/latency. It is now makespan-based.
TEST(BatchRunner, ThroughputIsMakespanBasedNotLatencySumBased)
{
    const BatchRequest req{gptWorkload(256, 4), fullPolicy(), 1};
    const BatchResult r =
        BatchRunner(SpAttenConfig{}, {2}).run({req, req});
    ASSERT_EQ(r.results.size(), 2u);
    // Identical requests: identical latencies, so the concurrent batch
    // completes in one request latency.
    ASSERT_EQ(r.results[0].seconds, r.results[1].seconds);
    EXPECT_DOUBLE_EQ(r.makespan_seconds, r.results[0].seconds);
    EXPECT_DOUBLE_EQ(r.throughputRps(), 2.0 / r.results[0].seconds);
    // The old sum-based definition (size / total_seconds) would have
    // reported exactly half of this.
    EXPECT_DOUBLE_EQ(r.total_seconds, 2.0 * r.results[0].seconds);
    EXPECT_GT(r.throughputRps(),
              1.9 * static_cast<double>(r.results.size()) /
                  r.total_seconds);
}

TEST(BatchRunner, MakespanIsSlowestRequestLatency)
{
    const BatchResult r =
        BatchRunner(SpAttenConfig{}, {4}).run(mixedBatch());
    double slowest = 0.0;
    for (const auto& res : r.results)
        slowest = std::max(slowest, res.seconds);
    EXPECT_DOUBLE_EQ(r.makespan_seconds, slowest);
    EXPECT_LT(r.makespan_seconds, r.total_seconds);
}

// Values measured on the pre-refactor monolithic SpAttenPipeline::run()
// for this exact workload/policy; the stage graph must not regress them.
TEST(BatchRunner, StageGraphMatchesMonolithRegression)
{
    SpAttenPipeline pipe;
    const RunResult r = pipe.run(gptWorkload(512, 16), fullPolicy());
    // Monolith: 2871820 cycles. "No worse" with a small integer slack
    // for rounding; the current graph reproduces it exactly.
    EXPECT_LE(r.cycles, 2871820u);
    EXPECT_GE(r.cycles, 2871820u * 9 / 10); // accounting sanity floor
    // Monolith: 6.3731x DRAM reduction, 2.1724x compute reduction.
    EXPECT_GE(r.dramReduction(), 6.373);
    EXPECT_NEAR(r.computeReduction(), 2.1724, 0.01);
    EXPECT_NEAR(r.attention_flops, 4589715456.0, 1.0);

    const RunResult dense =
        pipe.run(gptWorkload(512, 16), PruningPolicy::disabled());
    EXPECT_LE(dense.cycles, 5423040u); // monolith dense cycles
    EXPECT_NEAR(dense.dramReduction(), 32.0 / 12.0, 1e-9);
}

} // namespace
} // namespace spatten
