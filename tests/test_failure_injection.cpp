/// Consolidated failure-injection suite: every module's precondition
/// violations must fail loudly (panic/fatal), never silently corrupt.
#include <gtest/gtest.h>

#include "accel/pipeline.hpp"
#include "accel/qk_module.hpp"
#include "accel/topk_engine.hpp"
#include "core/attention_ref.hpp"
#include "core/schedule.hpp"
#include "hbm/hbm.hpp"
#include "nn/layers.hpp"
#include "quant/linear_quant.hpp"
#include "tensor/ops.hpp"

namespace spatten {
namespace {

TEST(FailureInjection, TensorShapeMismatches)
{
    Tensor a({2, 3}), b({3, 3});
    EXPECT_DEATH(ops::add(a, b), "elementwise");
    EXPECT_DEATH(ops::matmul(a, a), "matmul");
    EXPECT_DEATH(a.row(5), "row");
    EXPECT_DEATH(a.reshape({7}), "reshape");
    Tensor empty;
    EXPECT_DEATH(empty.maxElem(), "empty");
}

TEST(FailureInjection, QuantBadBitwidths)
{
    Tensor x({4}, 1.0f);
    EXPECT_DEATH(quant::quantize(x, 1), "bitwidth");
    EXPECT_DEATH(quant::quantize(x, 17), "bitwidth");
    EXPECT_DEATH(quant::quantizeWithScale(x, 8, -1.0f), "scale");
}

TEST(FailureInjection, TopkOutOfRange)
{
    TopkEngine engine;
    EXPECT_DEATH(engine.run({1.0f, 2.0f}, 0), "top-k");
    EXPECT_DEATH(engine.run({1.0f, 2.0f}, 3), "top-k");
}

TEST(FailureInjection, QkModuleBadHeadDim)
{
    QkModule qk;
    EXPECT_DEATH(qk.timing(10, 0), "head dim");
    EXPECT_DEATH(qk.timing(10, 1024), "head dim");
}

TEST(FailureInjection, HbmZeroByteRequest)
{
    HbmModel hbm;
    EXPECT_DEATH(hbm.access({0, 0, false}, 0), "zero-byte");
}

TEST(FailureInjection, ScheduleBadRatio)
{
    ScheduleConfig cfg;
    cfg.avg_ratio = 1.5;
    EXPECT_DEATH(PruningSchedule(4, cfg), "avg_ratio");
    const PruningSchedule s = makeTokenSchedule(4, 0.2);
    EXPECT_DEATH(s.ratioAt(9), "layer");
}

TEST(FailureInjection, PipelineEmptyWorkload)
{
    SpAttenPipeline pipe;
    WorkloadSpec w;
    w.summarize_len = 0;
    EXPECT_DEATH(pipe.run(w, PruningPolicy::disabled()), "empty input");
}

TEST(FailureInjection, AttentionBadHeadSplit)
{
    Prng p(1);
    const Tensor q = Tensor::randn({2, 10}, p);
    EXPECT_DEATH(attentionForward(q, q, q, 3), "divisible");
}

TEST(FailureInjection, EmbeddingOutOfVocab)
{
    Prng p(2);
    Embedding emb("e", 4, 8, 16, p);
    EXPECT_DEATH(emb.forward({7}), "vocab");
    EXPECT_DEATH(emb.forwardOne(1, 99), "out of range");
}

TEST(FailureInjection, LossBadLabel)
{
    Tensor logits({1, 3}, 0.0f);
    Tensor d;
    EXPECT_DEATH(softmaxCrossEntropy(logits, {5}, d), "label");
}

} // namespace
} // namespace spatten
