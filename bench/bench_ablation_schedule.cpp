/// Ablation: the pruning-ratio schedule design choices of §V-A — the
/// fraction of front layers left unpruned, the start/end ratio spread,
/// and sentence-length-adaptive ratios — against latency and accuracy on
/// a trained synthetic classifier.
#include <cstdio>

#include "accel/spatten_accelerator.hpp"
#include "bench_util.hpp"
#include "nn/trainer.hpp"
#include "workload/benchmarks.hpp"
#include "workload/synthetic_tasks.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Ablation: pruning schedules",
           "front-layer protection, ratio spread, and length-adaptive "
           "ratios (§V-A design choices)");

    // Trained classifier to measure accuracy impact.
    KeywordTaskConfig tc;
    tc.seq_len = 24;
    tc.keywords_per_sentence = 3;
    tc.minority_keywords = 2;
    KeywordTask task(tc);
    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 32;
    mc.heads = 4;
    mc.layers = 4;
    mc.ffn_dim = 64;
    mc.max_len = tc.seq_len;
    mc.num_classes = task.numClasses();
    TransformerModel model(mc);
    std::printf("training classifier...\n");
    trainClassifier(model, task.sample(300), 6);
    const auto test = task.sample(100);
    const double dense_acc = classifierAccuracy(model, test);

    // (a) Front-layer protection: prune the same average ratio but vary
    // how many front layers are exempt. Protecting early layers keeps
    // the importance estimates reliable before pruning bites.
    std::printf("\n(a) front-layer fraction (avg ratio fixed at 0.45)\n");
    std::printf("%12s %14s %14s\n", "front frac", "acc delta",
                "tokens kept");
    rule();
    for (double front : {0.0, 0.15, 0.3, 0.5}) {
        ScheduleConfig sc;
        sc.avg_ratio = 0.45;
        sc.front_frac = front;
        // Evaluate by manually driving the pruned inference with a
        // schedule-equivalent policy: approximate by scaling the ratio
        // so the overall keep matches the custom schedule.
        const PruningSchedule sched(mc.layers, sc);
        PruningPolicy pol = PruningPolicy::disabled();
        pol.token_pruning = true;
        // Match the overall keep fraction via the standard schedule.
        // (The nn path builds its schedule from token_avg_ratio with the
        // default 0.15 front; report the schedule keep for context.)
        pol.token_avg_ratio = sc.avg_ratio * (1.0 - front * 0.5);
        PrunedRunStats st;
        const double acc = classifierAccuracyPruned(model, test, pol, &st);
        std::printf("%12.2f %+13.1f%% %13.1f%%  (schedule keep %.1f%%)\n",
                    front, (acc - dense_acc) * 100,
                    st.tokens_kept_frac * 100,
                    sched.keepFraction() * 100);
    }

    // (b) Ratio spread on the accelerator: same average, different
    // start/end interpolation (paper: given the same overall ratio, the
    // distribution among layers has little influence).
    std::printf("\n(b) start/end spread at fixed average "
                "(accelerator latency, gpt2-small)\n");
    std::printf("%12s %14s %14s\n", "spread", "latency us", "DRAM MB");
    rule();
    const auto gpt = gptBenchmarks().front();
    for (double spread : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        // The pipeline derives its schedule internally from avg_ratio;
        // emulate spread by reporting the schedule keep and running the
        // pipeline with the equivalent average.
        ScheduleConfig sc;
        sc.avg_ratio = 0.22;
        sc.spread = spread;
        const PruningSchedule sched(gpt.workload.model.num_layers, sc);
        PruningPolicy pol = gpt.policy;
        pol.token_avg_ratio = sc.avg_ratio;
        SpAttenAccelerator accel;
        const RunResult r = accel.run(gpt.workload, pol);
        std::printf("%12.2f %14.1f %14.1f  (schedule keep %.1f%%)\n",
                    spread, r.seconds * 1e6, r.dram_bytes / 1e6,
                    sched.keepFraction() * 100);
    }

    // (c) Length-adaptive ratios (§III-A: longer sentences are more
    // redundant, so they get larger ratios).
    std::printf("\n(c) length-adaptive average ratio\n");
    std::printf("%12s %16s\n", "length", "avg ratio");
    rule();
    for (std::size_t len : {11u, 32u, 64u, 128u, 320u, 992u}) {
        std::printf("%12zu %16.3f\n", len,
                    lengthAdaptiveRatio(len, 0.04, 0.22, 1024));
    }
    return 0;
}
