/// Unit tests for the tensor library and its operations.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace spatten {
namespace {

TEST(Tensor, ZeroInitialized)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.numel(), 6u);
    for (std::size_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor)
{
    Tensor t({4}, 2.5f);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, At2D)
{
    Tensor t({2, 3});
    t.at(1, 2) = 7.0f;
    EXPECT_EQ(t[5], 7.0f);
    EXPECT_EQ(t.at(1, 2), 7.0f);
}

TEST(Tensor, At3D)
{
    Tensor t({2, 3, 4});
    t.at(1, 2, 3) = 9.0f;
    EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 9.0f);
}

TEST(Tensor, NegativeDim)
{
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.dim(-1), 4u);
    EXPECT_EQ(t.dim(-3), 2u);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t = Tensor::fromList({1, 2, 3, 4, 5, 6});
    t.reshape({2, 3});
    EXPECT_EQ(t.at(1, 0), 4.0f);
}

TEST(Tensor, RowExtraction)
{
    Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
    const Tensor r = t.row(1);
    EXPECT_EQ(r.numel(), 3u);
    EXPECT_EQ(r[0], 4.0f);
    EXPECT_EQ(r[2], 6.0f);
}

TEST(Tensor, SumAndMeanAbs)
{
    Tensor t = Tensor::fromList({-1, 2, -3});
    EXPECT_DOUBLE_EQ(t.sum(), -2.0);
    EXPECT_DOUBLE_EQ(t.meanAbs(), 2.0);
}

TEST(Tensor, RandnMoments)
{
    Prng p(1);
    const Tensor t = Tensor::randn({10000}, p, 1.0f, 2.0f);
    double s = 0.0, s2 = 0.0;
    for (std::size_t i = 0; i < t.numel(); ++i) {
        s += t[i];
        s2 += (t[i] - 1.0) * (t[i] - 1.0);
    }
    EXPECT_NEAR(s / 10000.0, 1.0, 0.1);
    EXPECT_NEAR(s2 / 10000.0, 4.0, 0.2);
}

TEST(Ops, MatmulSmall)
{
    Tensor a({2, 2}, {1, 2, 3, 4});
    Tensor b({2, 2}, {5, 6, 7, 8});
    const Tensor c = ops::matmul(a, b);
    EXPECT_EQ(c.at(0, 0), 19.0f);
    EXPECT_EQ(c.at(0, 1), 22.0f);
    EXPECT_EQ(c.at(1, 0), 43.0f);
    EXPECT_EQ(c.at(1, 1), 50.0f);
}

TEST(Ops, MatmulTransposedBMatchesMatmul)
{
    Prng p(2);
    const Tensor a = Tensor::randn({5, 7}, p);
    const Tensor b = Tensor::randn({6, 7}, p);
    const Tensor c1 = ops::matmulTransposedB(a, b);
    const Tensor c2 = ops::matmul(a, ops::transpose(b));
    EXPECT_LT(ops::maxAbsDiff(c1, c2), 1e-5f);
}

TEST(Ops, TransposeRoundTrip)
{
    Prng p(3);
    const Tensor a = Tensor::randn({4, 9}, p);
    EXPECT_LT(ops::maxAbsDiff(ops::transpose(ops::transpose(a)), a), 0.0f + 1e-9f);
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Prng p(4);
    const Tensor s = Tensor::randn({8, 16}, p, 0.0f, 3.0f);
    const Tensor prob = ops::softmaxRows(s);
    for (std::size_t i = 0; i < 8; ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < 16; ++j) {
            EXPECT_GE(prob.at(i, j), 0.0f);
            row += prob.at(i, j);
        }
        EXPECT_NEAR(row, 1.0, 1e-5);
    }
}

TEST(Ops, SoftmaxStableForLargeScores)
{
    const Tensor s = Tensor::fromList({1000.0f, 1000.0f});
    const Tensor p = ops::softmax(s);
    EXPECT_NEAR(p[0], 0.5f, 1e-6f);
    EXPECT_NEAR(p[1], 0.5f, 1e-6f);
}

TEST(Ops, SoftmaxMonotone)
{
    const Tensor s = Tensor::fromList({0.0f, 1.0f, 2.0f});
    const Tensor p = ops::softmax(s);
    EXPECT_LT(p[0], p[1]);
    EXPECT_LT(p[1], p[2]);
}

TEST(Ops, LayerNormZeroMeanUnitVar)
{
    Prng prng(5);
    const Tensor x = Tensor::randn({3, 64}, prng, 5.0f, 3.0f);
    const Tensor gamma({64}, 1.0f);
    const Tensor beta({64}, 0.0f);
    const Tensor y = ops::layerNorm(x, gamma, beta);
    for (std::size_t i = 0; i < 3; ++i) {
        double mean = 0.0, var = 0.0;
        for (std::size_t j = 0; j < 64; ++j)
            mean += y.at(i, j);
        mean /= 64.0;
        for (std::size_t j = 0; j < 64; ++j)
            var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
        var /= 64.0;
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-2);
    }
}

TEST(Ops, GeluKnownValues)
{
    const Tensor x = Tensor::fromList({0.0f, 100.0f, -100.0f});
    const Tensor y = ops::gelu(x);
    EXPECT_NEAR(y[0], 0.0f, 1e-6f);
    EXPECT_NEAR(y[1], 100.0f, 1e-3f);
    EXPECT_NEAR(y[2], 0.0f, 1e-3f);
}

TEST(Ops, ReluClamps)
{
    const Tensor x = Tensor::fromList({-2.0f, 0.0f, 3.0f});
    const Tensor y = ops::relu(x);
    EXPECT_EQ(y[0], 0.0f);
    EXPECT_EQ(y[1], 0.0f);
    EXPECT_EQ(y[2], 3.0f);
}

TEST(Ops, Argmax)
{
    EXPECT_EQ(ops::argmax(Tensor::fromList({1, 5, 3})), 1u);
    EXPECT_EQ(ops::argmax(Tensor::fromList({7})), 0u);
}

TEST(Ops, GatherRows)
{
    Tensor a({3, 2}, {1, 2, 3, 4, 5, 6});
    const Tensor g = ops::gatherRows(a, {2, 0});
    EXPECT_EQ(g.dim(0), 2u);
    EXPECT_EQ(g.at(0, 0), 5.0f);
    EXPECT_EQ(g.at(1, 1), 2.0f);
}

TEST(Ops, ConcatRows)
{
    Tensor a({1, 2}, {1, 2});
    Tensor b({2, 2}, {3, 4, 5, 6});
    const Tensor c = ops::concatRows(a, b);
    EXPECT_EQ(c.dim(0), 3u);
    EXPECT_EQ(c.at(2, 1), 6.0f);
}

TEST(Ops, SliceAndConcatColsRoundTrip)
{
    Prng p(6);
    const Tensor a = Tensor::randn({4, 12}, p);
    const Tensor left = ops::sliceCols(a, 0, 5);
    const Tensor right = ops::sliceCols(a, 5, 12);
    const Tensor back = ops::concatCols({left, right});
    EXPECT_LT(ops::maxAbsDiff(a, back), 1e-9f);
}

TEST(Ops, AddRowBias)
{
    Tensor a({2, 2}, {1, 2, 3, 4});
    const Tensor bias = Tensor::fromList({10, 20});
    const Tensor c = ops::addRowBias(a, bias);
    EXPECT_EQ(c.at(0, 0), 11.0f);
    EXPECT_EQ(c.at(1, 1), 24.0f);
}

TEST(Ops, ElementwiseArithmetic)
{
    const Tensor a = Tensor::fromList({1, 2, 3});
    const Tensor b = Tensor::fromList({4, 5, 6});
    EXPECT_EQ(ops::add(a, b)[2], 9.0f);
    EXPECT_EQ(ops::sub(b, a)[0], 3.0f);
    EXPECT_EQ(ops::mul(a, b)[1], 10.0f);
    EXPECT_EQ(ops::scale(a, 2.0f)[2], 6.0f);
}

} // namespace
} // namespace spatten
