// Fixture: MUST trigger no-unordered-iter. A file with KvPool-style
// accounting that walks an unordered_map: the walk order — and with it
// any order-sensitive accounting below — depends on hash layout.
#include <cstdint>
#include <unordered_map>

namespace fixture {

struct KvPool; // marks this file as touching accounting state

struct Directory {
    std::unordered_map<std::uint64_t, std::uint64_t> blocks_by_hash;

    std::uint64_t totalBlocks() const
    {
        std::uint64_t total = 0;
        for (const auto& kv : blocks_by_hash)
            total += kv.second;
        return total;
    }
};

} // namespace fixture
