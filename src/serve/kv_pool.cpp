#include "serve/kv_pool.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/prng.hpp" // mix64: the chain-hash mixing step.

namespace spatten {

KvPool::KvPool(KvPoolConfig cfg) : cfg_(cfg)
{
    SPATTEN_ASSERT(cfg_.block_tokens >= 1, "zero-token KV blocks");
    SPATTEN_ASSERT(cfg_.bytes_per_elem >= 1, "zero-byte KV elements");
    SPATTEN_ASSERT(cfg_.prefix_hash_bits >= 1 &&
                       cfg_.prefix_hash_bits <= 64,
                   "prefix hash width %zu outside [1, 64]",
                   cfg_.prefix_hash_bits);
}

std::uint64_t
KvPool::blocksFor(std::size_t tokens) const
{
    return tokens / cfg_.block_tokens +
           (tokens % cfg_.block_tokens != 0 ? 1 : 0);
}

std::uint64_t
KvPool::bytesForTokens(const ModelSpec& model, std::size_t tokens) const
{
    if (tokens == 0)
        return 0;
    const std::uint64_t per_token =
        kvBytesPerToken(model, cfg_.bytes_per_elem);
    SPATTEN_ASSERT(per_token == 0 ||
                       cfg_.block_tokens <= UINT64_MAX / per_token,
                   "KV block byte size overflows uint64 "
                   "(block_tokens %zu x %llu B/token)",
                   cfg_.block_tokens,
                   static_cast<unsigned long long>(per_token));
    const std::uint64_t per_block = cfg_.block_tokens * per_token;
    const std::uint64_t blocks = blocksFor(tokens);
    SPATTEN_ASSERT(per_block == 0 || blocks <= UINT64_MAX / per_block,
                   "KV reservation byte size overflows uint64 "
                   "(%llu blocks x %llu B/block)",
                   static_cast<unsigned long long>(blocks),
                   static_cast<unsigned long long>(per_block));
    return blocks * per_block;
}

std::uint64_t
KvPool::blockBytes(const ModelSpec& model) const
{
    return bytesForTokens(model, cfg_.block_tokens);
}

std::uint64_t
KvPool::chainHash(std::uint64_t prev, const ModelSpec& model,
                  const std::uint64_t* tokens, std::size_t n) const
{
    std::uint64_t h = prev;
    // Model shape folds into every link so equal token streams on
    // different models can never chain-match.
    h = mix64(h ^ (model.num_layers * 0x10001ULL + model.num_heads));
    h = mix64(h ^ model.d_head);
    for (std::size_t i = 0; i < n; ++i)
        h = mix64(h ^ tokens[i]);
    if (cfg_.prefix_hash_bits < 64)
        h &= (1ULL << cfg_.prefix_hash_bits) - 1;
    return h;
}

bool
KvPool::canAllocate(std::uint64_t need) const
{
    if (unlimited())
        return true;
    // Cold cached blocks are reclaimable on demand, so they never
    // block an allocation — only hot (referenced) bytes do.
    return used_bytes_ - cold_bytes_ + need <= cfg_.capacity_bytes;
}

void
KvPool::makeRoom(std::uint64_t need)
{
    if (unlimited())
        return;
    while (used_bytes_ + need > cfg_.capacity_bytes) {
        SPATTEN_ASSERT(!cold_blocks_.empty(),
                       "makeRoom(%llu) without canAllocate()",
                       static_cast<unsigned long long>(need));
        const auto it = cold_blocks_.begin();
        const std::uint32_t id = it->second;
        cold_blocks_.erase(it);
        Block& b = blocks_[id];
        SPATTEN_ASSERT(b.refs == 0 && b.cached && !b.in_dram,
                       "non-cold block %u on the cold list", id);
        cold_bytes_ -= b.bytes;
        if (b.bytes <= cfg_.dram_capacity_bytes) {
            // Tiered: the block's residency moves to far memory; its
            // prefix-index entry (and content) survives for future
            // admissions to promote back.
            demoteToDram(id);
            continue;
        }
        // Tiering off (or a block the DRAM budget could never hold
        // even empty): drop it from the cache entirely.
        prefix_index_.erase(b.hash);
        b.cached = false;
        ++evicted_blocks_;
        freeBlock(id);
    }
}

void
KvPool::demoteToDram(std::uint32_t id)
{
    Block& b = blocks_[id];
    while (dram_used_bytes_ + b.bytes > cfg_.dram_capacity_bytes)
        evictDramLru();
    SPATTEN_ASSERT(used_bytes_ >= b.bytes, "KV pool byte underflow");
    used_bytes_ -= b.bytes;
    b.in_dram = true;
    dram_used_bytes_ += b.bytes;
    dram_peak_bytes_ = std::max(dram_peak_bytes_, dram_used_bytes_);
    // The cold_tick survives the migration, so DRAM eviction order is
    // the same global release order the HBM cold list uses.
    dram_lru_.emplace(b.cold_tick, id);
    ++demoted_blocks_;
    demoted_bytes_ += b.bytes;
}

void
KvPool::evictDramLru()
{
    SPATTEN_ASSERT(!dram_lru_.empty(),
                   "DRAM-tier eviction with an empty cold tier");
    const auto it = dram_lru_.begin();
    const std::uint32_t id = it->second;
    dram_lru_.erase(it);
    Block& b = blocks_[id];
    SPATTEN_ASSERT(b.refs == 0 && b.cached && b.in_dram,
                   "non-DRAM block %u on the DRAM LRU list", id);
    SPATTEN_ASSERT(dram_used_bytes_ >= b.bytes,
                   "DRAM tier byte underflow");
    dram_used_bytes_ -= b.bytes;
    prefix_index_.erase(b.hash);
    ++evicted_blocks_;
    // Not freeBlock(): the block never re-entered the hot tier, so
    // there are no HBM bytes to return — only the table slot.
    b = Block{};
    free_blocks_.push_back(id);
}

std::uint32_t
KvPool::newBlock(std::uint64_t bytes)
{
    std::uint32_t id;
    if (!free_blocks_.empty()) {
        id = free_blocks_.back();
        free_blocks_.pop_back();
    } else {
        id = static_cast<std::uint32_t>(blocks_.size());
        blocks_.emplace_back();
    }
    blocks_[id] = Block{};
    blocks_[id].bytes = bytes;
    blocks_[id].refs = 1;
    touchCharge(bytes);
    return id;
}

void
KvPool::derefBlock(std::uint32_t id)
{
    Block& b = blocks_[id];
    SPATTEN_ASSERT(b.refs >= 1, "KV block %u refcount underflow", id);
    if (--b.refs > 0)
        return;
    if (b.cached) {
        // Last holder gone: the block stays resident as a cold cache
        // entry, reclaimable LRU-first when an allocation needs room.
        b.cold_tick = tick_++;
        cold_bytes_ += b.bytes;
        cold_blocks_.emplace(b.cold_tick, id);
        return;
    }
    freeBlock(id);
}

void
KvPool::freeBlock(std::uint32_t id)
{
    Block& b = blocks_[id];
    SPATTEN_ASSERT(used_bytes_ >= b.bytes, "KV pool byte underflow");
    used_bytes_ -= b.bytes;
    b = Block{};
    free_blocks_.push_back(id);
}

void
KvPool::touchCharge(std::uint64_t bytes)
{
    used_bytes_ += bytes;
    peak_bytes_ = std::max(peak_bytes_, used_bytes_);
}

std::vector<std::uint32_t>
KvPool::sharedBlockRefs(std::size_t id) const
{
    const auto it = held_.find(id);
    SPATTEN_ASSERT(it != held_.end(),
                   "request %zu has no KV reservation", id);
    std::vector<std::uint32_t> refs;
    refs.reserve(it->second.prefix_blocks.size());
    for (const std::uint32_t bid : it->second.prefix_blocks)
        refs.push_back(blocks_[bid].refs);
    return refs;
}

bool
KvPool::tryReserve(std::size_t id, const ModelSpec& model,
                   std::size_t tokens)
{
    SPATTEN_ASSERT(held_.count(id) == 0,
                   "request %zu already holds a KV reservation", id);
    const std::uint64_t need = bytesForTokens(model, tokens);
    if (!canAllocate(need))
        return false;
    makeRoom(need);
    Reservation res;
    res.tokens = tokens;
    res.block_bytes = blockBytes(model);
    res.private_blocks = blocksFor(tokens);
    touchCharge(need);
    held_.emplace(id, std::move(res));
    return true;
}

KvPool::PrefixReservation
KvPool::tryReservePrefix(std::size_t id, const ModelSpec& model,
                         const std::vector<std::uint64_t>& prompt_tokens)
{
    SPATTEN_ASSERT(held_.count(id) == 0,
                   "request %zu already holds a KV reservation", id);
    const std::size_t n = prompt_tokens.size();
    SPATTEN_ASSERT(n >= 1, "prefix reservation with no prompt tokens");
    const std::size_t bt = cfg_.block_tokens;
    const std::uint64_t bb = blockBytes(model);
    const std::size_t complete = n / bt;
    const std::size_t total = blocksFor(n);

    // ---- Walk the chain: longest cached block prefix ----
    std::vector<std::uint64_t> hashes(complete);
    std::vector<std::uint32_t> shared;
    std::uint64_t h = 0;
    std::size_t matched = 0;
    bool chain_alive = true;
    for (std::size_t i = 0; i < complete; ++i) {
        h = chainHash(h, model, prompt_tokens.data() + i * bt, bt);
        hashes[i] = h;
        if (!chain_alive)
            continue;
        const auto it = prefix_index_.find(h);
        if (it == prefix_index_.end()) {
            chain_alive = false;
            continue;
        }
        const Block& b = blocks_[it->second];
        if (b.bytes != bb ||
            !std::equal(b.tokens.begin(), b.tokens.end(),
                        prompt_tokens.begin() +
                            static_cast<std::ptrdiff_t>(i * bt))) {
            // Hash collision: different content behind the same chain
            // key. Fall back to private blocks from here on.
            chain_alive = false;
            continue;
        }
        shared.push_back(it->second);
        ++matched;
    }

    // ---- Budget check: the non-shared blocks are charged, and so are
    // the matched blocks the DRAM tier must promote back — both tiers
    // gate the admission. Reference the matched blocks first so a cold
    // hit cannot be counted as evictable room for its own admission,
    // and pull DRAM-resident ones off the DRAM LRU so the demotions
    // makeRoom may trigger can never evict a block this admission is
    // about to promote. ----
    std::uint64_t promote_bytes = 0;
    for (const std::uint32_t bid : shared) {
        Block& b = blocks_[bid];
        if (b.refs == 0) {
            if (b.in_dram) {
                dram_lru_.erase(b.cold_tick);
                dram_used_bytes_ -= b.bytes;
                promote_bytes += b.bytes;
            } else {
                cold_blocks_.erase(b.cold_tick);
                cold_bytes_ -= b.bytes;
            }
        }
        ++b.refs;
    }
    const std::uint64_t need =
        (total - matched) * bb + promote_bytes;
    if (!canAllocate(need)) {
        // Roll back: un-reference. DRAM residents (in_dram still set —
        // the promote step below never ran) return to the DRAM LRU at
        // their unchanged cold_tick; HBM residents take the ordinary
        // deref path back onto the cold list.
        for (const std::uint32_t bid : shared) {
            Block& b = blocks_[bid];
            if (!b.in_dram) {
                derefBlock(bid);
                continue;
            }
            SPATTEN_ASSERT(b.refs >= 1,
                           "KV block %u refcount underflow", bid);
            if (--b.refs == 0) {
                dram_lru_.emplace(b.cold_tick, bid);
                dram_used_bytes_ += b.bytes;
            }
        }
        return {};
    }
    makeRoom(need);
    // Promote the DRAM-resident matched blocks into the hot tier; the
    // bytes were part of `need`, so they fit.
    for (const std::uint32_t bid : shared) {
        Block& b = blocks_[bid];
        if (!b.in_dram)
            continue;
        b.in_dram = false;
        touchCharge(b.bytes);
        ++promoted_blocks_;
        promoted_bytes_ += b.bytes;
    }

    // ---- Allocate the tail: register unmatched complete blocks in
    // the index; the partial last block (and any collision fallback)
    // stays anonymous-private ----
    Reservation res;
    res.tokens = n;
    res.block_bytes = bb;
    res.prefix_blocks = std::move(shared);
    bool registering = true;
    for (std::size_t i = matched; i < complete; ++i) {
        if (registering && prefix_index_.count(hashes[i]) != 0)
            registering = false; // Collision: key occupied downstream.
        if (!registering) {
            ++res.private_blocks;
            touchCharge(bb);
            continue;
        }
        const std::uint32_t bid = newBlock(bb);
        Block& b = blocks_[bid];
        b.cached = true;
        b.hash = hashes[i];
        b.tokens.assign(prompt_tokens.begin() +
                            static_cast<std::ptrdiff_t>(i * bt),
                        prompt_tokens.begin() +
                            static_cast<std::ptrdiff_t>((i + 1) * bt));
        prefix_index_.emplace(hashes[i], bid);
        res.prefix_blocks.push_back(bid);
    }
    if (total > complete) {
        ++res.private_blocks;
        touchCharge(bb);
    }
    PrefixReservation out;
    out.ok = true;
    out.cached_tokens = matched * bt;
    out.shared_bytes = matched * bb;
    out.promoted_bytes = promote_bytes;
    held_.emplace(id, std::move(res));
    return out;
}

bool
KvPool::tryResize(std::size_t id, const ModelSpec& model,
                  std::size_t tokens)
{
    const auto it = held_.find(id);
    SPATTEN_ASSERT(it != held_.end(),
                   "request %zu resized without a KV reservation", id);
    Reservation& res = it->second;
    const std::uint64_t bb = blockBytes(model);
    SPATTEN_ASSERT(bb == res.block_bytes,
                   "request %zu resized under a different model", id);
    (void)bytesForTokens(model, tokens); // Overflow guard.
    const std::size_t needed =
        blocksFor(tokens);
    const std::size_t cur = res.prefix_blocks.size() + res.private_blocks;

    if (tokens >= res.tokens) {
        // Append-only growth: the shared prefix stays valid; the tail
        // grows with anonymous private blocks.
        const std::uint64_t need =
            (needed - cur) * bb;
        if (!canAllocate(need))
            return false;
        makeRoom(need);
        touchCharge(need);
        res.private_blocks += needed - cur;
        res.tokens = tokens;
        return true;
    }

    if (res.prefix_blocks.empty()) {
        // Fully private shrink: free tail blocks; never fails.
        SPATTEN_ASSERT(res.private_blocks == cur && cur >= needed,
                       "private shrink bookkeeping broken");
        const std::uint64_t freed =
            (cur - needed) * bb;
        SPATTEN_ASSERT(used_bytes_ >= freed, "KV pool byte underflow");
        used_bytes_ -= freed;
        res.private_blocks = needed;
        res.tokens = tokens;
        return true;
    }

    // Copy-on-write: cascade pruning shrank the resident KV, so its
    // content diverged from the cached prefix. Copy the still-needed
    // shared blocks into private ones and drop the references; the
    // cached originals stay in the index for future admissions.
    const std::size_t reuse = std::min(res.private_blocks, needed);
    const std::size_t copies = needed - reuse;
    for (const std::uint32_t bid : res.prefix_blocks)
        derefBlock(bid);
    const std::uint64_t need = static_cast<std::uint64_t>(copies) * bb;
    if (!canAllocate(need)) {
        // Roll the divergence back: every dereferenced block is cached
        // (prefix blocks always are), so it survived as a cold entry
        // and can simply be re-referenced.
        for (const std::uint32_t bid : res.prefix_blocks) {
            Block& b = blocks_[bid];
            if (b.refs == 0) {
                cold_blocks_.erase(b.cold_tick);
                cold_bytes_ -= b.bytes;
            }
            ++b.refs;
        }
        return false;
    }
    makeRoom(need); // May reclaim the just-dereferenced originals.
    touchCharge(need);
    cow_copied_blocks_ += copies;
    if (res.private_blocks > needed) {
        const std::uint64_t freed =
            (res.private_blocks - needed) * bb;
        SPATTEN_ASSERT(used_bytes_ >= freed, "KV pool byte underflow");
        used_bytes_ -= freed;
    }
    res.prefix_blocks.clear();
    res.private_blocks = needed;
    res.tokens = tokens;
    return true;
}

void
KvPool::release(std::size_t id)
{
    const auto it = held_.find(id);
    SPATTEN_ASSERT(it != held_.end(),
                   "request %zu released without a KV reservation", id);
    Reservation& res = it->second;
    for (const std::uint32_t bid : res.prefix_blocks)
        derefBlock(bid);
    const std::uint64_t freed =
        res.private_blocks * res.block_bytes;
    SPATTEN_ASSERT(used_bytes_ >= freed, "KV pool byte underflow");
    used_bytes_ -= freed;
    held_.erase(it);
}

} // namespace spatten
