/**
 * @file
 * Attention Prob x Value multiplication unit (§IV-G). Mirrors the Q x K
 * module's broadcast-multiply-reduce pipeline: probabilities are broadcast
 * D times, 512 multipliers, adder tree configured as D (512/D)-way trees,
 * accumulating A_j = sum_i prob_i * V_ij. Only the V rows surviving local
 * value pruning are fetched and multiplied.
 */
#ifndef SPATTEN_ACCEL_PV_MODULE_HPP
#define SPATTEN_ACCEL_PV_MODULE_HPP

#include <cstddef>
#include <vector>

#include "sim/clock.hpp"
#include "sim/stage_model.hpp"

namespace spatten {

/** Configuration of the prob x V datapath. */
struct PvModuleConfig
{
    std::size_t num_multipliers = 512;
};

/** Timing outcome for one query row. */
struct PvTiming
{
    Cycles cycles = 0;
    std::size_t macs = 0;
};

/** The prob x V module. */
class PvModule : public StageModel
{
  public:
    explicit PvModule(PvModuleConfig cfg = PvModuleConfig{});

    /** Cycle cost of accumulating @p kept_rows V rows of dimension @p d. */
    PvTiming timing(std::size_t kept_rows, std::size_t d) const;

    // StageModel: occupancy over the locally-kept V rows, their MACs,
    // and the Value-SRAM reads.
    std::string stageName() const override { return "pv"; }
    StageTiming timing(const ExecutionContext& ctx) const override;
    ActivityCounts energy(const ExecutionContext& ctx) const override;
    StageTraffic traffic(const ExecutionContext& ctx) const override;

    /**
     * Functional weighted sum over the kept rows:
     * out[j] = sum_{i in kept} prob[i] * v[i][j].
     */
    std::vector<float>
    accumulate(const std::vector<float>& prob,
               const std::vector<std::vector<float>>& v,
               const std::vector<std::size_t>& kept) const;

    const PvModuleConfig& config() const { return cfg_; }

  private:
    PvModuleConfig cfg_;
};

} // namespace spatten

#endif // SPATTEN_ACCEL_PV_MODULE_HPP
