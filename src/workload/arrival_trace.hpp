/**
 * @file
 * Seeded arrival traces for the continuous-batching serving model.
 *
 * A trace is the demand side of a serving experiment: requests arriving
 * over simulated time (Poisson process — i.i.d. exponential interarrival
 * gaps), each with a prompt length and an output length drawn from
 * seeded uniform distributions over a shared model/policy template. The
 * trace is a pure function of its config (including the seed), so every
 * scheduler experiment replays the exact same demand — the determinism
 * anchor the property tests and BENCH_serving.json trajectories rely on.
 */
#ifndef SPATTEN_WORKLOAD_ARRIVAL_TRACE_HPP
#define SPATTEN_WORKLOAD_ARRIVAL_TRACE_HPP

#include <cstdint>
#include <vector>

#include "common/prng.hpp"
#include "core/model_spec.hpp"

namespace spatten {

/** One request of an arrival trace. */
struct TracedRequest
{
    std::size_t id = 0;      ///< Position in the trace (stable identity).
    double arrival_s = 0;    ///< Simulated arrival time.
    WorkloadSpec workload;   ///< Prompt/output shape of this request.
    PruningPolicy policy;
    std::uint64_t seed = kDefaultRequestSeed; ///< Per-request PRNG seed.
};

/** Distribution parameters of a synthetic Poisson trace. */
struct ArrivalTraceConfig
{
    std::size_t num_requests = 64;
    /// Mean interarrival gap of the Poisson process (rate = 1/mean).
    double mean_interarrival_s = 1e-3;
    std::uint64_t seed = kDefaultRequestSeed;
    ModelSpec model = ModelSpec::gpt2Small();
    PruningPolicy policy;         ///< Applied to every request.
    std::size_t min_prompt = 64;  ///< Uniform prompt-length bounds.
    std::size_t max_prompt = 384;
    std::size_t min_output = 4;   ///< Uniform output-length bounds.
    std::size_t max_output = 32;
};

/**
 * Generate a Poisson arrival trace: arrival times are the running sum of
 * exponential gaps, prompt and output lengths are uniform draws, and
 * each request gets a distinct derived seed. Deterministic: the same
 * config yields a bit-identical trace. Arrivals are non-decreasing and
 * ids run 0..n-1 in arrival order.
 */
std::vector<TracedRequest> generatePoissonTrace(
    const ArrivalTraceConfig& cfg);

} // namespace spatten

#endif // SPATTEN_WORKLOAD_ARRIVAL_TRACE_HPP
