/// Tests for the HBM2 channel/bank model: bandwidth, row-buffer behavior,
/// channel parallelism and energy accounting.
#include <gtest/gtest.h>

#include "hbm/hbm.hpp"

namespace spatten {
namespace {

TEST(Hbm, PeakBandwidthMatchesPaper)
{
    HbmConfig cfg;
    // 16 channels x 16 B x 2 GHz = 512 GB/s (Table I).
    EXPECT_DOUBLE_EQ(cfg.peakBandwidthGBs(), 512.0);
}

TEST(Hbm, LargeStreamApproachesPeakBandwidth)
{
    HbmModel hbm;
    const std::uint64_t bytes = 16ULL << 20; // 16 MB
    const Cycles done = hbm.access({0, bytes, false}, 0);
    // Effective bandwidth approaches bus_efficiency x peak for long
    // streams (sustained-rate model).
    const double secs = static_cast<double>(done) / (2e9);
    const double gbs = static_cast<double>(bytes) / secs / 1e9;
    const double sustained = 512.0 * hbm.config().bus_efficiency;
    EXPECT_GT(gbs, sustained * 0.9);
    EXPECT_LE(gbs, sustained * 1.02);
}

TEST(Hbm, RowHitsCheaperThanMisses)
{
    HbmModel hbm;
    // Two sequential reads in the same row: second should not activate.
    hbm.access({0, 64, false}, 0);
    const auto acts_after_first = hbm.rowActivations();
    hbm.access({64, 64, false}, 1000);
    EXPECT_EQ(hbm.rowActivations(), acts_after_first);
    // A far-away address on the same channel activates a new row.
    HbmConfig cfg;
    const std::uint64_t far =
        cfg.interleave_bytes * static_cast<std::uint64_t>(cfg.channels) *
        1024;
    hbm.access({far, 64, false}, 2000);
    EXPECT_GT(hbm.rowActivations(), acts_after_first);
}

TEST(Hbm, ChannelParallelismHelps)
{
    // The same bytes spread across channels finish sooner than forced
    // onto one channel (consecutive interleave blocks of one channel).
    HbmModel spread;
    std::vector<HbmRequest> reqs_spread;
    HbmConfig cfg;
    for (int i = 0; i < 16; ++i)
        reqs_spread.push_back(
            {static_cast<std::uint64_t>(i) * cfg.interleave_bytes, 256,
             false});
    const Cycles t_spread = spread.accessBatch(reqs_spread, 0);

    HbmModel single;
    std::vector<HbmRequest> reqs_single;
    for (int i = 0; i < 16; ++i) {
        // Stride channels x interleave keeps every block on channel 0.
        reqs_single.push_back(
            {static_cast<std::uint64_t>(i) * cfg.interleave_bytes *
                 static_cast<std::uint64_t>(cfg.channels),
             256, false});
    }
    const Cycles t_single = single.accessBatch(reqs_single, 0);
    EXPECT_LT(t_spread, t_single);
}

TEST(Hbm, EnergyGrowsWithTraffic)
{
    HbmModel hbm;
    hbm.access({0, 1024, false}, 0);
    const double e1 = hbm.energyPj();
    hbm.access({1 << 20, 1024, false}, 0);
    EXPECT_GT(hbm.energyPj(), e1);
    EXPECT_GT(e1, 0.0);
}

TEST(Hbm, WriteCountsSeparately)
{
    HbmModel hbm;
    hbm.access({0, 512, true}, 0);
    hbm.access({4096, 256, false}, 0);
    EXPECT_EQ(hbm.bytesWritten(), 512u);
    EXPECT_EQ(hbm.bytesRead(), 256u);
    EXPECT_EQ(hbm.totalBytes(), 768u);
}

TEST(Hbm, StreamCyclesMatchesPeak)
{
    HbmModel hbm;
    // 512 bytes / (16 ch x 16 B) = 2 cycles.
    EXPECT_EQ(hbm.streamCycles(512), 2u);
    EXPECT_EQ(hbm.streamCycles(1), 1u);
}

TEST(Hbm, ResetClearsState)
{
    HbmModel hbm;
    hbm.access({0, 4096, false}, 0);
    hbm.reset();
    EXPECT_EQ(hbm.totalBytes(), 0u);
    EXPECT_EQ(hbm.rowActivations(), 0u);
    EXPECT_EQ(hbm.drainCycle(), 0u);
}

TEST(Hbm, ExportStats)
{
    HbmModel hbm;
    hbm.access({0, 128, false}, 0);
    StatSet s;
    hbm.exportStats(s);
    EXPECT_DOUBLE_EQ(s.get("hbm.bytes_read"), 128.0);
    EXPECT_GT(s.get("hbm.energy_pj"), 0.0);
}

TEST(Hbm, LaterReadyDelaysCompletion)
{
    HbmModel hbm;
    const Cycles t0 = hbm.access({0, 256, false}, 0);
    HbmModel hbm2;
    const Cycles t1 = hbm2.access({0, 256, false}, 5000);
    EXPECT_EQ(t1, t0 + 5000);
}

TEST(Hbm, CapacityBytesIsExactForWholeAndFractionalGib)
{
    HbmConfig cfg;
    EXPECT_EQ(cfg.capacityBytes(), 8ull << 30) << "Table I default";

    cfg.capacity_gb = 0.5;
    EXPECT_EQ(cfg.capacityBytes(), 512ull << 20);
    cfg.capacity_gb = 7.25;
    EXPECT_EQ(cfg.capacityBytes(), (7ull << 30) + (256ull << 20));
    cfg.capacity_gb = 16.0;
    EXPECT_EQ(cfg.capacityBytes(), 16ull << 30);

    // Large capacities stay exact: the whole-GiB part converts by
    // integer shift, so a 1 EiB + 0.5 GiB stack lands on the byte.
    cfg.capacity_gb = 1024.0 * 1024.0 * 1024.0 + 0.5; // 2^30 GiB.
    EXPECT_EQ(cfg.capacityBytes(), (1ull << 60) + (512ull << 20));

    // The regression the split fixes: fractions round to the nearest
    // byte instead of truncating toward zero. 0.7 GiB is
    // 751619276.8 B; the old cast dropped the .8 to ...276.
    cfg.capacity_gb = 0.7;
    EXPECT_EQ(cfg.capacityBytes(), 751619277u);
    EXPECT_NE(cfg.capacityBytes(),
              static_cast<std::uint64_t>(cfg.capacity_gb *
                                         (1024.0 * 1024.0 * 1024.0)))
        << "the old truncating conversion loses the final byte";

    // Irrational fractions land within half a byte of exact.
    cfg.capacity_gb = 1.0 / 3.0;
    const double exact = (1024.0 * 1024.0 * 1024.0) / 3.0;
    EXPECT_NEAR(static_cast<double>(cfg.capacityBytes()), exact, 0.5);
}

} // namespace
} // namespace spatten
