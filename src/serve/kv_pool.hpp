/**
 * @file
 * Block-granular KV-cache capacity accounting for one simulated
 * accelerator.
 *
 * Production continuous-batching systems are defined by the coupling
 * between scheduling and KV memory: a request can only be admitted when
 * its prompt KV fits the device's HBM budget, a decoding request can
 * only grow its cache while blocks remain, and under pressure the
 * scheduler preempts a victim and recomputes it later. KvPool is that
 * accounting: a byte budget (derived from HbmConfig::capacityBytes() by
 * default) carved into fixed-size token blocks, with one reservation per
 * resident request sized from its *cascade-pruned* KV length — so
 * SpAtten's token pruning directly raises the number of requests a pool
 * admits under the same budget.
 *
 * The pool is plain deterministic bookkeeping driven by the scheduler's
 * single-threaded coordinator; it never touches simulated time.
 */
#ifndef SPATTEN_SERVE_KV_POOL_HPP
#define SPATTEN_SERVE_KV_POOL_HPP

#include <cstddef>
#include <cstdint>
#include <map>

#include "core/model_spec.hpp"

namespace spatten {

/** Static configuration of one accelerator's KV pool. */
struct KvPoolConfig
{
    /// Byte budget for resident KV caches. 0 = unlimited (the pool
    /// still accounts occupancy but never rejects).
    std::uint64_t capacity_bytes = 0;
    /// Allocation granularity in tokens (vLLM-style paged blocks): a
    /// request holding t tokens reserves ceil(t / block_tokens) blocks.
    std::size_t block_tokens = 16;
    /// Storage width of one KV element on the owning device (bytes):
    /// 2 for SpAtten's fp16-equivalent plane layout (the default), 4
    /// for the fp32 platform baselines (AcceleratorBackend::
    /// kvBytesPerElem()).
    std::size_t bytes_per_elem = 2;
};

/** Per-accelerator KV block allocator. */
class KvPool
{
  public:
    explicit KvPool(KvPoolConfig cfg = KvPoolConfig{});

    const KvPoolConfig& config() const { return cfg_; }

    /** Bytes a @p tokens-token KV cache of @p model reserves (rounded
     *  up to whole blocks). 0 tokens reserve nothing. */
    std::uint64_t bytesForTokens(const ModelSpec& model,
                                 std::size_t tokens) const;

    /**
     * Reserve a new cache of @p tokens tokens for request @p id.
     * @return false (and reserve nothing) when the budget would be
     * exceeded; unlimited pools always succeed.
     */
    bool tryReserve(std::size_t id, const ModelSpec& model,
                    std::size_t tokens);

    /**
     * Resize request @p id's reservation to @p tokens tokens. Shrinking
     * always succeeds and frees blocks; growing fails (leaving the
     * reservation untouched) when the budget would be exceeded.
     */
    bool tryResize(std::size_t id, const ModelSpec& model,
                   std::size_t tokens);

    /** Drop request @p id's reservation (no-op when absent). */
    void release(std::size_t id);

    std::uint64_t capacityBytes() const { return cfg_.capacity_bytes; }
    std::uint64_t usedBytes() const { return used_bytes_; }
    std::uint64_t peakBytes() const { return peak_bytes_; }
    std::size_t residentRequests() const { return held_.size(); }
    bool unlimited() const { return cfg_.capacity_bytes == 0; }

  private:
    KvPoolConfig cfg_;
    std::map<std::size_t, std::uint64_t> held_; ///< id -> reserved bytes.
    std::uint64_t used_bytes_ = 0;
    std::uint64_t peak_bytes_ = 0;
};

} // namespace spatten

#endif // SPATTEN_SERVE_KV_POOL_HPP
