/// Cross-subsystem integration tests: the hardware models must agree
/// with their functional/algorithmic counterparts, and the pipeline's
/// timing must respect analytic bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "accel/pv_module.hpp"
#include "accel/qk_module.hpp"
#include "accel/softmax_module.hpp"
#include "accel/spatten_accelerator.hpp"
#include "accel/topk_engine.hpp"
#include "core/attention_ref.hpp"
#include "core/pruning.hpp"
#include "nn/transformer.hpp"
#include "tensor/ops.hpp"
#include "workload/benchmarks.hpp"

namespace spatten {
namespace {

// The hardware top-k engine and the functional reference used by the
// cascade pruners must select identical index sets (same tie policy).
TEST(Integration, HardwareTopkMatchesFunctionalReference)
{
    Prng p(21);
    TopkEngine engine;
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t n = 2 + p.below(400);
        const std::size_t k = 1 + p.below(n);
        std::vector<float> scores(n);
        for (auto& s : scores)
            s = static_cast<float>(p.below(32)) * 0.125f; // many ties
        EXPECT_EQ(engine.run(scores, k).indices, topkKeepOrder(scores, k))
            << "n=" << n << " k=" << k;
    }
}

// Cascade token pruning driven through the hardware engine must keep
// the same survivors as the software pruner.
TEST(Integration, CascadePrunerAgreesWithHardwareEngine)
{
    Prng p(22);
    TokenImportanceAccumulator acc(50);
    std::vector<std::size_t> ids(50);
    for (std::size_t i = 0; i < 50; ++i)
        ids[i] = i;
    std::vector<float> row(50);
    for (auto& r : row)
        r = static_cast<float>(p.uniform());
    acc.accumulateRow(row, ids);

    CascadeTokenPruner pruner(50);
    const auto sw = pruner.pruneToCount(acc, 20);

    TopkEngine engine;
    const auto hw = engine.run(acc.scores(), 20);
    EXPECT_EQ(sw, hw.indices);
}

// The QxK + Softmax + PV hardware datapath composed functionally must
// reproduce the reference attention output for one query.
TEST(Integration, DatapathModulesComposeToAttention)
{
    Prng p(23);
    const std::size_t l = 24, d = 16;
    const Tensor q = Tensor::randn({1, d}, p);
    const Tensor k = Tensor::randn({l, d}, p);
    const Tensor v = Tensor::randn({l, d}, p);

    // Hardware-shaped path.
    QkModule qk_mod;
    SoftmaxModule sm_mod;
    PvModule pv_mod;
    std::vector<float> qv(q.data(), q.data() + d);
    std::vector<std::vector<float>> krows(l), vrows(l);
    for (std::size_t i = 0; i < l; ++i) {
        krows[i].assign(k.data() + i * d, k.data() + (i + 1) * d);
        vrows[i].assign(v.data() + i * d, v.data() + (i + 1) * d);
    }
    const float inv = 1.0f / std::sqrt(static_cast<float>(d));
    const auto scores = qk_mod.computeScores(qv, krows, inv);
    std::vector<float> prob;
    sm_mod.run(scores, prob, 0.0);
    std::vector<std::size_t> all(l);
    for (std::size_t i = 0; i < l; ++i)
        all[i] = i;
    const auto out = pv_mod.accumulate(prob, vrows, all);

    // Reference path.
    const AttentionOutput ref = attentionForward(q, k, v, 1);
    for (std::size_t j = 0; j < d; ++j)
        EXPECT_NEAR(out[j], ref.out.at(0, j), 2e-3f) << "dim " << j;
}

// The nn transformer's dense attention must agree with the core
// reference given identical projected inputs.
TEST(Integration, NnAttentionAgreesWithCoreReference)
{
    Prng p(24);
    TinyModelConfig mc;
    mc.vocab = 12;
    mc.d_model = 24;
    mc.heads = 3;
    mc.layers = 1;
    mc.ffn_dim = 32;
    mc.max_len = 10;
    TransformerModel model(mc);
    // Core reference: same Q=K=V matrix with h heads.
    const Tensor x = Tensor::randn({6, 24}, p);
    MultiHeadSelfAttention attn("t", 24, 3, p);
    MultiHeadSelfAttention::Cache cache;
    const Tensor nn_out = attn.forward(x, false, cache);
    const AttentionOutput core =
        attentionForward(cache.q, cache.k, cache.v, 3);
    // nn applies Wo afterwards; compare pre-Wo concat to core output.
    EXPECT_LT(ops::maxAbsDiff(cache.concat, core.out), 1e-4f);
}

// Pipeline latency must respect both roofline bounds: it can be no
// faster than pure compute at the multiplier roof nor faster than
// moving its own DRAM bytes at sustained bandwidth.
TEST(Integration, PipelineRespectsRooflineBounds)
{
    SpAttenAccelerator accel;
    for (const auto& b : paperBenchmarks()) {
        const RunResult r = accel.run(b.workload, b.policy);
        const double compute_bound_s =
            (r.attention_flops / 2.0) /
            (static_cast<double>(accel.config().totalMultipliers()) *
             accel.config().core_freq_ghz * 1e9);
        const double mem_bound_s =
            r.dram_bytes / (accel.bandwidthRoofGBs() * 1e9);
        EXPECT_GE(r.seconds * 1.0001, compute_bound_s)
            << b.workload.name;
        EXPECT_GE(r.seconds * 1.0001,
                  mem_bound_s * accel.config().hbm.bus_efficiency * 0.99)
            << b.workload.name;
    }
}

// Quantized-attention accuracy: for every paper MSB+LSB setting the
// SpAtten quantized datapath stays within the analytic error budget.
TEST(Integration, QuantizedAttentionErrorBudget)
{
    Prng p(25);
    const std::size_t l = 32, din = 32;
    const Tensor q = Tensor::randn({l, din}, p);
    const Tensor k = Tensor::randn({l, din}, p);
    const Tensor v = Tensor::randn({l, din}, p);
    const AttentionOutput ref = attentionForward(q, k, v, 2);
    double prev_err = 1e9;
    for (const auto& setting :
         {BitplaneSetting{4, 4}, BitplaneSetting{8, 4},
          BitplaneSetting{12, 4}}) {
        SpAttenAttentionConfig cfg;
        cfg.num_heads = 2;
        cfg.quantize_inputs = true;
        cfg.pq.setting = setting;
        cfg.pq.max_prob_threshold = 0.1;
        const AttentionOutput got =
            SpAttenAttention(cfg).run(q, k, v, {0, 1});
        const double err = ops::meanAbsDiff(got.out, ref.out);
        EXPECT_LT(err, prev_err * 1.1)
            << "error did not shrink at " << setting.totalBits()
            << " bits";
        prev_err = err;
    }
    EXPECT_LT(prev_err, 0.01); // 16-bit total is near-exact
}

// Full benchmark suite sanity: every workload simulates without error
// and produces self-consistent results.
TEST(Integration, AllThirtyBenchmarksSimulate)
{
    SpAttenAccelerator accel;
    for (const auto& b : paperBenchmarks()) {
        const RunResult r = accel.run(b.workload, b.policy);
        EXPECT_GT(r.seconds, 0.0) << b.workload.name;
        EXPECT_GT(r.attention_flops, 0.0) << b.workload.name;
        EXPECT_GE(r.dramReduction(), 1.0) << b.workload.name;
        EXPECT_GE(r.computeReduction(), 1.0) << b.workload.name;
        EXPECT_GT(r.energy.totalJ(), 0.0) << b.workload.name;
        EXPECT_NEAR(r.summarize_seconds + r.generate_seconds, r.seconds,
                    r.seconds * 1e-6 + 1e-12)
            << b.workload.name;
    }
}

} // namespace
} // namespace spatten
