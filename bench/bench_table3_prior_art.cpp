/// Regenerates Table III: SpAtten-1/8 vs the A3 and MNNFast prior-art
/// accelerators (feature matrix + throughput / energy / area efficiency).
#include <cstdio>

#include "accel/spatten_accelerator.hpp"
#include "baselines/a3_model.hpp"
#include "baselines/mnnfast_model.hpp"
#include "bench_util.hpp"
#include "workload/benchmarks.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Table III", "SpAtten-1/8 vs A3 vs MNNFast (BERT benchmarks)");

    std::printf("%-28s %10s %10s %12s\n", "feature", "MNNFast", "A3",
                "SpAtten1/8");
    rule();
    const char* features[][4] = {
        {"Cascade head pruning", "no", "no", "yes"},
        {"Cascade token pruning", "no", "no", "yes"},
        {"Interpretable pruning", "no", "no", "yes"},
        {"Local value pruning", "yes", "yes", "yes"},
        {"Progressive quantization", "no", "no", "yes"},
        {"Preprocessing overhead", "no", "yes", "no"},
        {"Reduces FFN computation", "no", "no", "yes"},
        {"Accelerates GPT-2", "no", "no", "yes"},
    };
    for (const auto& f : features)
        std::printf("%-28s %10s %10s %12s\n", f[0], f[1], f[2], f[3]);
    rule();

    SpAttenAccelerator eighth(SpAttenConfig::eighth());
    std::vector<double> sp_gops, a3_gops, mnn_gops;
    std::vector<double> sp_gopj, a3_gopj, mnn_gopj;
    for (const auto& b : bertBenchmarks()) {
        const RunResult sp = eighth.run(b.workload, b.policy);
        const A3Result a3 = A3Model().run(b.workload);
        const MnnFastResult mnn = MnnFastModel().run(b.workload);
        // Effective throughput convention: dense work / time.
        sp_gops.push_back(sp.attention_flops_dense / sp.seconds * 1e-9);
        a3_gops.push_back(a3.effectiveGops());
        mnn_gops.push_back(mnn.effectiveGops());
        sp_gopj.push_back(sp.attention_flops_dense / sp.energy.totalJ() *
                          1e-9);
        a3_gopj.push_back(a3.dense_flops / a3.energy_j * 1e-9);
        mnn_gopj.push_back(mnn.dense_flops / mnn.energy_j * 1e-9);
    }
    const double sp_area =
        totalAreaMm2(areaBreakdown(128, 48, 2));
    const double a3_area = 2.08; // from the A3 paper (40 nm)

    std::printf("%-28s %10s %10s %12s\n", "metric (geomean)", "MNNFast",
                "A3", "SpAtten1/8");
    rule();
    std::printf("%-28s %10.0f %10.0f %12.0f\n", "Throughput (GOP/s)",
                geomean(mnn_gops), geomean(a3_gops), geomean(sp_gops));
    std::printf("%-28s %10.0f %10.0f %12.0f\n", "Energy eff. (GOP/J)",
                geomean(mnn_gopj), geomean(a3_gopj), geomean(sp_gopj));
    std::printf("%-28s %10s %10.0f %12.0f\n", "Area eff. (GOP/s/mm^2)",
                "-", geomean(a3_gops) / a3_area,
                geomean(sp_gops) / sp_area);
    std::printf("%-28s %10s %10.2f %12.2f\n", "Area (mm^2)", "-", a3_area,
                sp_area);
    rule();
    std::printf("Ratios vs A3:      throughput %.2fx (paper 1.6x), "
                "energy %.2fx (paper 1.4x)\n",
                geomean(sp_gops) / geomean(a3_gops),
                geomean(sp_gopj) / geomean(a3_gopj));
    std::printf("Ratios vs MNNFast: throughput %.2fx (paper 3.0x), "
                "energy %.2fx (paper 3.2x)\n",
                geomean(sp_gops) / geomean(mnn_gops),
                geomean(sp_gopj) / geomean(mnn_gopj));
    return 0;
}
