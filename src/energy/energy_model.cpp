#include "energy/energy_model.hpp"

#include "common/logging.hpp"

namespace spatten {

void
ActivityCounts::add(const ActivityCounts& o)
{
    qk_macs += o.qk_macs;
    pv_macs += o.pv_macs;
    softmax_elems += o.softmax_elems;
    topk_comparisons += o.topk_comparisons;
    fetch_requests += o.fetch_requests;
    sram_read_bytes += o.sram_read_bytes;
    sram_write_bytes += o.sram_write_bytes;
    dram_energy_pj += o.dram_energy_pj;
    migration_bytes += o.migration_bytes;
    cycles += o.cycles;
    // freq_ghz is a property, not a counter; keep the existing value.
}

std::string
EnergyReport::toString() const
{
    std::string s;
    s += strfmt("%-22s %10s %10s\n", "bucket", "energy(mJ)", "power(W)");
    const auto row = [&](const char* name, double j) {
        s += strfmt("%-22s %10.3f %10.3f\n", name, j * 1e3,
                    seconds > 0 ? j / seconds : 0.0);
    };
    row("QxK", qk_j);
    row("AttnProb x V", pv_j);
    row("Softmax", softmax_j);
    row("Top-k", topk_j);
    row("QKV Fetcher", fetcher_j);
    row("SRAM", sram_j);
    row("Leakage/Others", leakage_j);
    row("DRAM", dram_j);
    // Tiered-KV runs only: HBM <-> far-memory block migration. Zero
    // (and table-compatible with the paper's layout) when tiering is
    // off.
    if (migration_j > 0)
        row("KV migration", migration_j);
    row("Total", totalJ());
    return s;
}

EnergyReport
EnergyModel::compute(const ActivityCounts& a) const
{
    EnergyReport r;
    r.seconds = a.freq_ghz > 0 ? a.cycles / (a.freq_ghz * 1e9) : 0.0;
    r.qk_j = a.qk_macs * cfg_.mac_pj * 1e-12;
    r.pv_j = a.pv_macs * cfg_.mac_pj * 1e-12;
    r.softmax_j = a.softmax_elems * cfg_.softmax_elem_pj * 1e-12;
    r.topk_j = a.topk_comparisons * cfg_.topk_cmp_pj * 1e-12;
    r.fetcher_j = a.fetch_requests * cfg_.fetch_req_pj * 1e-12;
    r.sram_j = (a.sram_read_bytes * cfg_.sram_read_pj_per_byte +
                a.sram_write_bytes * cfg_.sram_write_pj_per_byte) *
               1e-12;
    r.dram_j = a.dram_energy_pj * 1e-12;
    r.migration_j =
        a.migration_bytes * 8.0 * cfg_.far_bit_energy_pj * 1e-12;
    r.leakage_j = cfg_.leakage_w * r.seconds;
    return r;
}

namespace {

// Unit areas calibrated so (1024 mults, 392 KB, parallelism 16) gives the
// paper's Fig. 13: fetcher 2.649, QxK 7.123, Softmax 0.791, Top-k 0.498,
// ProbxV 7.222, Others 0.43 => 18.71 mm^2 total.
constexpr double kQkPerMult = 7.123 / 512.0;
constexpr double kPvPerMult = 7.222 / 512.0;
constexpr double kSramPerKb = (2.649 * 0.8) / 392.0; // SRAM share of fetcher
constexpr double kFetcherFixed = 2.649 * 0.2;        // crossbars + FIFOs
constexpr double kSoftmaxFixed = 0.791;
constexpr double kTopkPerCmp = 0.498 / 32.0; // two engines x 16 comparators
constexpr double kOthers = 0.43;

} // namespace

std::vector<AreaEntry>
areaBreakdown(int num_multipliers, int sram_kb, int topk_parallelism)
{
    SPATTEN_ASSERT(num_multipliers > 0 && sram_kb > 0 &&
                       topk_parallelism > 0,
                   "bad area parameters");
    // Multipliers are split evenly between the QxK and ProbxV arrays.
    // Datapath-width-coupled blocks (crossbars/FIFOs in the fetcher, the
    // softmax lanes, misc glue) scale with the multiplier count.
    const double half_mults = num_multipliers / 2.0;
    const double width_scale = num_multipliers / 1024.0;
    std::vector<AreaEntry> v;
    v.push_back({"QKV Fetcher",
                 kFetcherFixed * width_scale + kSramPerKb * sram_kb});
    v.push_back({"QxK", kQkPerMult * half_mults});
    v.push_back({"Softmax", kSoftmaxFixed * width_scale});
    v.push_back({"Top-k", kTopkPerCmp * 2.0 * topk_parallelism});
    v.push_back({"AttnProb x V", kPvPerMult * half_mults});
    v.push_back({"Others", kOthers * width_scale});
    return v;
}

double
totalAreaMm2(const std::vector<AreaEntry>& entries)
{
    double s = 0;
    for (const auto& e : entries)
        s += e.mm2;
    return s;
}

} // namespace spatten
