/**
 * @file
 * Address/data crossbars of the Q-K-V fetcher (§IV-D, Fig. 8 modules 4/5).
 *
 * A 32x16 crossbar routes up to 32 outstanding address requests to 16 HBM
 * channels (at most one grant per channel per cycle); a 16x32 crossbar
 * routes data back preserving order. Because the fetcher generates at
 * most one request per channel at a time there are no conflicts in steady
 * state, but the model still arbitrates so mis-balanced address streams
 * show up as stalls.
 */
#ifndef SPATTEN_ACCEL_CROSSBAR_HPP
#define SPATTEN_ACCEL_CROSSBAR_HPP

#include <cstddef>
#include <vector>

#include "sim/clock.hpp"

namespace spatten {

/** Outcome of routing a batch of requests through the crossbar. */
struct CrossbarRouteResult
{
    Cycles cycles = 0;          ///< Cycles to drain the batch.
    std::size_t conflicts = 0;  ///< Requests delayed by channel contention.
    std::size_t routed = 0;     ///< Total requests routed.
};

/** Config for the crossbar pair. */
struct CrossbarConfig
{
    std::size_t masters = 32; ///< Requesters (FIFO ports).
    std::size_t slaves = 16;  ///< HBM channels.
};

/**
 * Cycle model of the address crossbar. Requests are given as target
 * channel ids; each cycle every channel can accept one request and at
 * most `masters` requests are considered.
 */
class Crossbar
{
  public:
    explicit Crossbar(CrossbarConfig cfg = CrossbarConfig{});

    /** Route a batch of channel-targeted requests. */
    CrossbarRouteResult route(const std::vector<std::size_t>& channel_ids);

    const CrossbarConfig& config() const { return cfg_; }

    std::size_t totalRouted() const { return total_routed_; }
    std::size_t totalConflicts() const { return total_conflicts_; }

    void resetStats();

  private:
    CrossbarConfig cfg_;
    std::size_t total_routed_ = 0;
    std::size_t total_conflicts_ = 0;
};

} // namespace spatten

#endif // SPATTEN_ACCEL_CROSSBAR_HPP
