// Fixture: MUST pass. A justified determinism-ok marker suppresses the
// finding on the next code line, including across a multi-line
// justification comment.
#include <chrono>

namespace fixture {

double hostStamp()
{
    // determinism-ok(no-wallclock): host-side profiling probe for the
    // bench harness; the value is reported, never fed back into
    // simulated state.
    const auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

} // namespace fixture
