/**
 * @file
 * Per-layer pruning-ratio schedules (§V-A of the paper).
 *
 * The paper keeps the front 15% of layers un-pruned for token pruning
 * (30% for head pruning), then linearly interpolates per-layer ratios
 * from r_start to r_end with r_start + r_end = 2 * r_avg, so the average
 * over the pruned layers equals the requested r_avg.
 */
#ifndef SPATTEN_CORE_SCHEDULE_HPP
#define SPATTEN_CORE_SCHEDULE_HPP

#include <cstddef>
#include <vector>

namespace spatten {

/** How a per-layer pruning schedule is generated. */
struct ScheduleConfig
{
    double avg_ratio = 0.0;   ///< r_avg over the pruned (non-front) layers.
    double front_frac = 0.15; ///< Fraction of front layers left un-pruned.
    double spread = 0.5;      ///< r_start = r_avg*(1-spread), r_end = r_avg*(1+spread).
};

/**
 * Incremental per-layer pruning ratios. ratio[l] is the fraction of the
 * *currently alive* tokens/heads pruned after layer l's attention.
 */
class PruningSchedule
{
  public:
    PruningSchedule() = default;

    /** Build a schedule for @p num_layers layers from @p cfg. */
    PruningSchedule(std::size_t num_layers, const ScheduleConfig& cfg);

    /** Schedule with a single uniform ratio on every layer (for tests). */
    static PruningSchedule uniform(std::size_t num_layers, double ratio);

    /** All-zero schedule (pruning disabled). */
    static PruningSchedule disabled(std::size_t num_layers);

    double ratioAt(std::size_t layer) const;
    std::size_t numLayers() const { return ratios_.size(); }
    const std::vector<double>& ratios() const { return ratios_; }

    /**
     * Overall keep fraction after all layers: prod(1 - ratio[l]).
     * The paper's "pruning ratio 3.8x" equals 1 / keepFraction().
     */
    double keepFraction() const;

  private:
    std::vector<double> ratios_;
};

/** Token-pruning schedule with the paper's defaults (15% front). */
PruningSchedule makeTokenSchedule(std::size_t num_layers, double avg_ratio);

/** Head-pruning schedule with the paper's defaults (30% front). */
PruningSchedule makeHeadSchedule(std::size_t num_layers, double avg_ratio);

/**
 * Sentence-length-adaptive average ratio (§III-A: "the longer, the more
 * tokens are pruned"). Maps a length to an average per-layer ratio such
 * that long GPT-2-style contexts reach about `max_ratio` and short BERT
 * sentences stay near `min_ratio`.
 */
double lengthAdaptiveRatio(std::size_t sentence_len, double min_ratio,
                           double max_ratio, std::size_t saturate_len = 1024);

} // namespace spatten

#endif // SPATTEN_CORE_SCHEDULE_HPP
