/// Property tests pinning the HBM fast stream-serving path against the
/// reference per-chunk loop: completion cycles, byte/activation/request
/// counters, and the full channel/bank state must match bit for bit on
/// randomized request sequences, across geometries, and starting from
/// arbitrary warm bank state.
#include <gtest/gtest.h>

#include <random>

#include "hbm/hbm.hpp"

namespace spatten {
namespace {

/// Drive @p fast and @p ref through the same request sequence and fail
/// on the first divergence in results or observable counters.
void
expectIdentical(HbmModel& fast, HbmModel& ref,
                const std::vector<HbmRequest>& reqs,
                const std::vector<Cycles>& readies)
{
    ASSERT_EQ(reqs.size(), readies.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const Cycles df = fast.access(reqs[i], readies[i]);
        const Cycles dr = ref.access(reqs[i], readies[i]);
        ASSERT_EQ(df, dr) << "request " << i << " addr " << reqs[i].addr
                          << " bytes " << reqs[i].bytes;
        ASSERT_EQ(fast.rowActivations(), ref.rowActivations())
            << "request " << i;
        ASSERT_EQ(fast.drainCycle(), ref.drainCycle()) << "request " << i;
    }
    EXPECT_EQ(fast.bytesRead(), ref.bytesRead());
    EXPECT_EQ(fast.bytesWritten(), ref.bytesWritten());
    // Same bank state => future requests stay identical too.
    StatSet sf, sr;
    fast.exportStats(sf);
    ref.exportStats(sr);
    EXPECT_DOUBLE_EQ(sf.get("hbm.energy_pj"), sr.get("hbm.energy_pj"));
    EXPECT_DOUBLE_EQ(sf.get("hbm.requests"), sr.get("hbm.requests"));
}

std::vector<HbmRequest>
randomRequests(std::mt19937& rng, int n, std::uint64_t max_bytes)
{
    std::uniform_int_distribution<std::uint64_t> addr_dist(0, 1ull << 24);
    std::uniform_int_distribution<std::uint64_t> bytes_dist(1, max_bytes);
    std::bernoulli_distribution write_dist(0.25);
    std::vector<HbmRequest> reqs;
    reqs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        reqs.push_back(
            {addr_dist(rng), bytes_dist(rng), write_dist(rng)});
    return reqs;
}

std::vector<Cycles>
monotoneReadies(std::mt19937& rng, std::size_t n)
{
    // Mixed ready times: sometimes in the past (busy channels), sometimes
    // far ahead (idle gaps) — both max() branches in the serving loop.
    std::uniform_int_distribution<Cycles> step_dist(0, 4000);
    std::vector<Cycles> readies(n);
    Cycles t = 0;
    for (auto& r : readies) {
        t += step_dist(rng);
        r = t;
    }
    return readies;
}

TEST(HbmFastPath, DefaultIsFastReferenceIsOptIn)
{
    HbmModel hbm;
    EXPECT_FALSE(hbm.referenceServing());
    hbm.setReferenceServing(true);
    EXPECT_TRUE(hbm.referenceServing());
}

TEST(HbmFastPath, RandomStreamsBitIdentical)
{
    std::mt19937 rng(12345);
    for (int round = 0; round < 8; ++round) {
        HbmModel fast, ref;
        ref.setReferenceServing(true);
        // Mix of tiny decode-style gathers and multi-KB prefill streams.
        const std::uint64_t max_bytes = (round % 2 == 0) ? 512 : 96 * 1024;
        const auto reqs = randomRequests(rng, 200, max_bytes);
        const auto readies = monotoneReadies(rng, reqs.size());
        expectIdentical(fast, ref, reqs, readies);
    }
}

TEST(HbmFastPath, NonDefaultGeometriesBitIdentical)
{
    // Exercise geometry corners: row == interleave (every chunk its own
    // row), row < interleave (fast path must fall back to the chunk
    // loop), one bank per channel, and a non-power-of-two channel count.
    struct Geometry
    {
        int channels;
        int banks;
        std::uint64_t row_bytes;
        std::uint64_t interleave;
    };
    const Geometry geoms[] = {
        {16, 16, 256, 256},  // row == interleave
        {16, 16, 128, 256},  // row < interleave: chunk-loop fallback
        {8, 1, 2048, 64},    // single bank, long rows
        {6, 4, 1024, 256},   // non-pow2 channels
        {1, 16, 1024, 256},  // single channel: pure serial chaining
    };
    std::mt19937 rng(777);
    for (const auto& g : geoms) {
        HbmConfig cfg;
        cfg.channels = g.channels;
        cfg.banks_per_channel = g.banks;
        cfg.row_bytes = g.row_bytes;
        cfg.interleave_bytes = g.interleave;
        HbmModel fast(cfg), ref(cfg);
        ref.setReferenceServing(true);
        const auto reqs = randomRequests(rng, 150, 32 * 1024);
        const auto readies = monotoneReadies(rng, reqs.size());
        expectIdentical(fast, ref, reqs, readies);
    }
}

TEST(HbmFastPath, PartialHeadAndTailChunks)
{
    // Unaligned streams whose first/last chunks are partial, including
    // single-chunk requests and streams longer than one chunk per
    // channel (the row-segment closed form).
    HbmConfig cfg;
    const std::uint64_t ilv = cfg.interleave_bytes;
    const std::uint64_t span =
        ilv * static_cast<std::uint64_t>(cfg.channels);
    const HbmRequest cases[] = {
        {3, 1, false},                  // 1 byte mid-chunk
        {ilv - 1, 2, false},            // straddles a chunk boundary
        {ilv / 2, ilv, false},          // head+tail partial, two chunks
        {7, span * 3 + 100, false},     // long stream, both ends ragged
        {span - 1, span * 2 + 2, true}, // long write, off-by-one ends
        {0, span * 4, false},           // fully aligned long stream
    };
    for (const auto& req : cases) {
        HbmModel fast, ref;
        ref.setReferenceServing(true);
        EXPECT_EQ(fast.access(req, 100), ref.access(req, 100))
            << "addr " << req.addr << " bytes " << req.bytes;
        EXPECT_EQ(fast.rowActivations(), ref.rowActivations());
        EXPECT_EQ(fast.drainCycle(), ref.drainCycle());
        EXPECT_EQ(fast.totalBytes(), ref.totalBytes());
    }
}

TEST(HbmFastPath, WarmBankStateRowHitsMatch)
{
    // Re-streaming the same range must see identical row hits (no
    // re-activations) on both paths — the decode loop's steady state.
    HbmModel fast, ref;
    ref.setReferenceServing(true);
    const HbmRequest req{4096, 48 * 1024, false};
    fast.access(req, 0);
    ref.access(req, 0);
    const auto acts = fast.rowActivations();
    ASSERT_EQ(acts, ref.rowActivations());
    const Cycles df = fast.access(req, 1 << 20);
    const Cycles dr = ref.access(req, 1 << 20);
    EXPECT_EQ(df, dr);
    EXPECT_EQ(fast.rowActivations(), acts) << "second pass must row-hit";
    EXPECT_EQ(ref.rowActivations(), acts);
}

} // namespace
} // namespace spatten
