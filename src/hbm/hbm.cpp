#include "hbm/hbm.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace spatten {

HbmModel::HbmModel(HbmConfig cfg) : cfg_(cfg)
{
    SPATTEN_ASSERT(cfg_.channels > 0 && cfg_.banks_per_channel > 0,
                   "bad HBM geometry");
    SPATTEN_ASSERT(isPow2(cfg_.interleave_bytes) && isPow2(cfg_.row_bytes),
                   "interleave/row sizes must be powers of two");
    channels_.resize(static_cast<std::size_t>(cfg_.channels));
    for (auto& ch : channels_)
        ch.banks.resize(static_cast<std::size_t>(cfg_.banks_per_channel));

    // Fast-path constants. The efficiency product and the ceil below use
    // the exact expressions serveChunk evaluates per chunk, so the
    // precomputed values are bit-identical to the reference math.
    while ((1ull << ilv_shift_) < cfg_.interleave_bytes)
        ++ilv_shift_;
    ilv_mask_ = cfg_.interleave_bytes - 1;
    while ((1ull << row_shift_) < cfg_.row_bytes)
        ++row_shift_;
    eff_bytes_per_cycle_ = cfg_.bytes_per_cycle * cfg_.bus_efficiency;
    burst_table_.resize(cfg_.interleave_bytes + 1);
    for (std::uint64_t b = 0; b <= cfg_.interleave_bytes; ++b)
        burst_table_[b] = burstCyclesRef(b);
    burst_full_ = burstCycles(cfg_.interleave_bytes);
    ch_pow2_ = isPow2(static_cast<std::uint64_t>(cfg_.channels));
    if (ch_pow2_) {
        while ((1 << ch_shift_) < cfg_.channels)
            ++ch_shift_;
        ch_mask_ = static_cast<std::uint64_t>(cfg_.channels) - 1;
    }
    bank_pow2_ = isPow2(static_cast<std::uint64_t>(cfg_.banks_per_channel));
    if (bank_pow2_)
        bank_mask_ =
            static_cast<std::uint64_t>(cfg_.banks_per_channel) - 1;
}

void
HbmModel::mapAddress(std::uint64_t addr, int& channel, int& bank,
                     std::int64_t& row) const
{
    const std::uint64_t block = addr / cfg_.interleave_bytes;
    channel = static_cast<int>(block % static_cast<std::uint64_t>(
                                           cfg_.channels));
    // Address within the channel after removing the interleave bits.
    const std::uint64_t in_channel =
        (block / static_cast<std::uint64_t>(cfg_.channels)) *
            cfg_.interleave_bytes +
        addr % cfg_.interleave_bytes;
    row = static_cast<std::int64_t>(in_channel / cfg_.row_bytes);
    bank = static_cast<int>(static_cast<std::uint64_t>(row) %
                            static_cast<std::uint64_t>(
                                cfg_.banks_per_channel));
}

Cycles
HbmModel::serveChunk(std::uint64_t addr, std::uint64_t bytes, bool write,
                     Cycles ready)
{
    int ch_idx = 0, bank_idx = 0;
    std::int64_t row = 0;
    mapAddress(addr, ch_idx, bank_idx, row);
    Channel& ch = channels_[static_cast<std::size_t>(ch_idx)];
    Bank& bank = ch.banks[static_cast<std::size_t>(bank_idx)];

    Cycles start = std::max(ready, ch.busy_until);
    Cycles access_lat = cfg_.t_cl;
    if (bank.open_row != row) {
        access_lat += (bank.open_row >= 0 ? cfg_.t_rp : 0) + cfg_.t_rcd;
        bank.open_row = row;
        ++activations_;
    }
    const double eff_bytes_per_cycle =
        cfg_.bytes_per_cycle * cfg_.bus_efficiency;
    const Cycles burst = std::max<Cycles>(
        1, static_cast<Cycles>(std::ceil(
               static_cast<double>(bytes) / eff_bytes_per_cycle)));
    // The channel data bus is occupied for the burst; CAS latency
    // overlaps with other banks' work and extends only the completion.
    ch.busy_until = start + burst;
    if (write)
        bytes_written_ += bytes;
    else
        bytes_read_ += bytes;
    return start + access_lat + burst;
}

Cycles
HbmModel::access(const HbmRequest& req, Cycles ready)
{
    SPATTEN_ASSERT(req.bytes > 0, "zero-byte HBM request");
    ++requests_;
    return reference_serving_ ? accessReference(req, ready)
                              : accessFast(req, ready);
}

Cycles
HbmModel::accessReference(const HbmRequest& req, Cycles ready)
{
    Cycles done = ready;
    std::uint64_t addr = req.addr;
    std::uint64_t remaining = req.bytes;
    while (remaining > 0) {
        const std::uint64_t in_block = addr % cfg_.interleave_bytes;
        const std::uint64_t chunk =
            std::min(remaining, cfg_.interleave_bytes - in_block);
        done = std::max(done, serveChunk(addr, chunk, req.write, ready));
        addr += chunk;
        remaining -= chunk;
    }
    return done;
}

Cycles
HbmModel::accessFast(const HbmRequest& req, Cycles ready)
{
    const std::uint64_t channels = static_cast<std::uint64_t>(cfg_.channels);
    const std::uint64_t first_block = req.addr >> ilv_shift_;
    const std::uint64_t last_addr = req.addr + req.bytes - 1;
    const std::uint64_t last_block = last_addr >> ilv_shift_;
    const std::uint64_t nblocks = last_block - first_block + 1;
    const std::uint64_t head_off = req.addr & ilv_mask_;

    if (req.write)
        bytes_written_ += req.bytes;
    else
        bytes_read_ += req.bytes;

    Cycles done = ready;

    if (nblocks <= channels || row_shift_ < ilv_shift_) {
        // Small stream (at most one chunk per channel — the common case
        // for decode-step KV gathers): serve blocks in address order
        // like the reference loop, with the mapping reduced to
        // shifts/masks and the full-chunk burst precomputed.
        for (std::uint64_t b = first_block; b <= last_block; ++b) {
            const std::uint64_t off = (b == first_block) ? head_off : 0;
            const std::uint64_t end =
                (b == last_block) ? (last_addr & ilv_mask_) : ilv_mask_;
            const std::uint64_t bytes = end - off + 1;
            const std::uint64_t in_channel =
                (blockInChannel(b) << ilv_shift_) + off;
            const std::int64_t row =
                static_cast<std::int64_t>(in_channel >> row_shift_);
            Channel& ch = channels_[chanOf(b)];
            Bank& bank =
                ch.banks[bankOf(static_cast<std::uint64_t>(row))];
            const Cycles start = std::max(ready, ch.busy_until);
            Cycles lat = cfg_.t_cl;
            if (bank.open_row != row) {
                lat += (bank.open_row >= 0 ? cfg_.t_rp : 0) + cfg_.t_rcd;
                bank.open_row = row;
                ++activations_;
            }
            const Cycles burst = (bytes == cfg_.interleave_bytes)
                                     ? burst_full_
                                     : burstCycles(bytes);
            ch.busy_until = start + burst;
            done = std::max(done, start + lat + burst);
        }
        return done;
    }

    // Long stream: channels are independent (each chunk touches only its
    // home channel's bus/bank state and the result is a max), so serve
    // each channel's chunk subsequence in one go, walking row segments
    // instead of chunks. Within a channel, chunk k+1 starts exactly when
    // chunk k's burst ends (busy_until >= ready after the first chunk),
    // and within a row segment only the first chunk can pay a row miss —
    // the completion max reduces to the segment's first and last chunks.
    const int seg_shift = row_shift_ - ilv_shift_; ///< chunks per row.
    const std::uint64_t seg_mask = (1ull << seg_shift) - 1;
    const std::uint64_t first_ch = first_block % channels;
    for (std::uint64_t c = 0; c < channels; ++c) {
        const std::uint64_t b0 =
            first_block + ((c + channels - first_ch) % channels);
        if (b0 > last_block)
            continue;
        const std::uint64_t nb = (last_block - b0) / channels + 1;
        const std::uint64_t j0 = b0 / channels; ///< in-channel block idx.
        const bool has_head = (b0 == first_block && head_off != 0);
        const bool has_tail = (b0 + (nb - 1) * channels == last_block &&
                               (last_addr & ilv_mask_) != ilv_mask_);
        const Cycles head_burst =
            has_head ? burstCycles(cfg_.interleave_bytes - head_off)
                     : burst_full_;
        const Cycles tail_burst =
            has_tail ? burstCycles((last_addr & ilv_mask_) + 1)
                     : burst_full_;
        // Burst of this channel's chunk @p i. Only the stream's global
        // first/last chunk can be partial, and a single chunk can never
        // be both here (that would require nblocks == 1, excluded by
        // the long-stream condition).
        const auto chunk_burst = [&](std::uint64_t i) {
            if (i == 0 && has_head)
                return head_burst;
            if (i + 1 == nb)
                return tail_burst;
            return burst_full_;
        };
        Channel& ch = channels_[c];
        Cycles start = std::max(ready, ch.busy_until);
        std::uint64_t k = 0;
        while (k < nb) {
            const std::uint64_t j = j0 + k;
            const std::int64_t row =
                static_cast<std::int64_t>(j >> seg_shift);
            const std::uint64_t seg_len =
                std::min<std::uint64_t>(nb - k, (seg_mask + 1) -
                                                    (j & seg_mask));
            Bank& bank =
                ch.banks[bankOf(static_cast<std::uint64_t>(row))];
            Cycles lat_first = cfg_.t_cl;
            if (bank.open_row != row) {
                lat_first +=
                    (bank.open_row >= 0 ? cfg_.t_rp : 0) + cfg_.t_rcd;
                bank.open_row = row;
                ++activations_;
            }
            const Cycles burst_first = chunk_burst(k);
            done = std::max(done, start + lat_first + burst_first);
            if (seg_len == 1) {
                start += burst_first;
            } else {
                // Chunks between first and last are always full chunks,
                // and their completions are dominated by the last one.
                const Cycles burst_last = chunk_burst(k + seg_len - 1);
                const Cycles start_last =
                    start + burst_first +
                    (seg_len - 2) * burst_full_;
                done = std::max(done, start_last + cfg_.t_cl + burst_last);
                start = start_last + burst_last;
            }
            k += seg_len;
        }
        ch.busy_until = start;
    }
    return done;
}

Cycles
HbmModel::accessBatch(const std::vector<HbmRequest>& reqs, Cycles ready)
{
    Cycles done = ready;
    for (const auto& r : reqs)
        done = std::max(done, access(r, ready));
    return done;
}

Cycles
HbmModel::streamCycles(std::uint64_t bytes) const
{
    const std::uint64_t per_cycle =
        static_cast<std::uint64_t>(cfg_.channels) *
        static_cast<std::uint64_t>(cfg_.bytes_per_cycle);
    return std::max<Cycles>(1, ceilDiv(bytes, per_cycle));
}

double
HbmModel::energyPj() const
{
    return static_cast<double>(activations_) * cfg_.act_energy_pj +
           static_cast<double>(totalBytes()) * 8.0 * cfg_.bit_energy_pj;
}

Cycles
HbmModel::drainCycle() const
{
    Cycles m = 0;
    for (const auto& ch : channels_)
        m = std::max(m, ch.busy_until);
    return m;
}

void
HbmModel::exportStats(StatSet& stats) const
{
    stats.add("hbm.bytes_read", static_cast<double>(bytes_read_));
    stats.add("hbm.bytes_written", static_cast<double>(bytes_written_));
    stats.add("hbm.row_activations", static_cast<double>(activations_));
    stats.add("hbm.requests", static_cast<double>(requests_));
    stats.add("hbm.energy_pj", energyPj());
}

HbmModel::TimingState
HbmModel::captureTimingState(Cycles base) const
{
    TimingState s;
    s.rel_busy.reserve(channels_.size());
    s.open_rows.reserve(channels_.size() *
                        static_cast<std::size_t>(cfg_.banks_per_channel));
    for (const auto& ch : channels_) {
        const std::int64_t rel = static_cast<std::int64_t>(ch.busy_until) -
                                 static_cast<std::int64_t>(base);
        s.rel_busy.push_back(std::max<std::int64_t>(rel, 0));
        for (const auto& b : ch.banks)
            s.open_rows.push_back(b.open_row);
    }
    return s;
}

bool
HbmModel::timingStateEquals(const TimingState& s, Cycles base) const
{
    if (s.rel_busy.size() != channels_.size())
        return false;
    std::size_t r = 0;
    for (std::size_t c = 0; c < channels_.size(); ++c) {
        const auto& ch = channels_[c];
        const std::int64_t rel = static_cast<std::int64_t>(ch.busy_until) -
                                 static_cast<std::int64_t>(base);
        if (std::max<std::int64_t>(rel, 0) != s.rel_busy[c])
            return false;
        for (const auto& b : ch.banks)
            if (b.open_row != s.open_rows[r++])
                return false;
    }
    return true;
}

void
HbmModel::restoreTimingState(const TimingState& s, Cycles base)
{
    SPATTEN_ASSERT(s.rel_busy.size() == channels_.size(),
                   "timing-state geometry mismatch");
    std::size_t r = 0;
    for (std::size_t c = 0; c < channels_.size(); ++c) {
        auto& ch = channels_[c];
        if (s.rel_busy[c] > 0)
            ch.busy_until = static_cast<Cycles>(
                static_cast<std::int64_t>(base) + s.rel_busy[c]);
        for (auto& b : ch.banks)
            b.open_row = s.open_rows[r++];
    }
}

void
HbmModel::addReplayedTraffic(std::uint64_t bytes_read,
                             std::uint64_t bytes_written,
                             std::uint64_t activations,
                             std::uint64_t requests)
{
    bytes_read_ += bytes_read;
    bytes_written_ += bytes_written;
    activations_ += activations;
    requests_ += requests;
}

void
HbmModel::reset()
{
    for (auto& ch : channels_) {
        ch.busy_until = 0;
        for (auto& b : ch.banks)
            b.open_row = -1;
    }
    bytes_read_ = bytes_written_ = activations_ = requests_ = 0;
}

} // namespace spatten
