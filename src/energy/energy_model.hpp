/**
 * @file
 * Energy and area model of the SpAtten accelerator.
 *
 * The paper obtains power/area from Cadence Genus synthesis (TSMC 40 nm),
 * CACTI for SRAMs/FIFOs, and fine-grained-DRAM energy numbers for HBM.
 * We reproduce the same accounting structure with per-event energy
 * constants calibrated so that nominal full-rate activity reproduces the
 * paper's Table II (1.36 W logic, 1.24 W SRAM, 5.71 W DRAM, 8.30 W total)
 * and Fig. 13 module breakdown. Area is modeled per module with unit
 * areas x instance counts so scaled configs (SpAtten-1/8) follow.
 */
#ifndef SPATTEN_ENERGY_ENERGY_MODEL_HPP
#define SPATTEN_ENERGY_ENERGY_MODEL_HPP

#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace spatten {

/** Per-event energy constants (picojoules), 40 nm-class. */
struct EnergyConfig
{
    double mac_pj = 1.30;            ///< 12-bit multiply-accumulate + tree share.
    double softmax_elem_pj = 55.0;   ///< FP exp (Taylor-5 FMA chain) + div share.
    double topk_cmp_pj = 2.5;        ///< One quick-select comparator op.
    double fetch_req_pj = 120.0;     ///< Crossbar traversal + FIFO + addr gen.
    double sram_read_pj_per_byte = 0.55;
    double sram_write_pj_per_byte = 0.65;
    double leakage_w = 0.121;        ///< "Others" static power.
    /// Per bit migrated between the HBM hot tier and the far-memory
    /// DRAM cold tier (tiered KV pool; FarMemoryConfig in hbm/hbm.hpp).
    /// Commodity DDR4 array + IO + link PHY lands near 20 pJ/bit —
    /// roughly 5x the on-stack HBM bit energy, which is what makes
    /// migration traffic worth metering.
    double far_bit_energy_pj = 20.0;
};

/** Activity counts accumulated by a simulation run. */
struct ActivityCounts
{
    double qk_macs = 0;
    double pv_macs = 0;
    double softmax_elems = 0;
    double topk_comparisons = 0;
    double fetch_requests = 0;
    double sram_read_bytes = 0;
    double sram_write_bytes = 0;
    double dram_energy_pj = 0; ///< Already computed by HbmModel.
    double migration_bytes = 0; ///< HBM <-> far-memory KV block moves
                                ///< (demotions + promotions).
    double cycles = 0;         ///< Elapsed core cycles.
    double freq_ghz = 1.0;     ///< Core clock.

    void add(const ActivityCounts& o);
};

/** Energy (J) and average power (W) per accounting bucket. */
struct EnergyReport
{
    double qk_j = 0;
    double pv_j = 0;
    double softmax_j = 0;
    double topk_j = 0;
    double fetcher_j = 0;
    double sram_j = 0;
    double dram_j = 0;
    double migration_j = 0; ///< Far-memory KV migration traffic.
    double leakage_j = 0;
    double seconds = 0;

    double onChipJ() const
    {
        return qk_j + pv_j + softmax_j + topk_j + fetcher_j + sram_j +
               leakage_j;
    }
    double totalJ() const { return onChipJ() + dram_j + migration_j; }
    double totalW() const { return seconds > 0 ? totalJ() / seconds : 0; }
    double dramW() const { return seconds > 0 ? dram_j / seconds : 0; }

    /** Multi-line table matching the paper's Table II layout. */
    std::string toString() const;
};

/** Computes an EnergyReport from activity counts. */
class EnergyModel
{
  public:
    explicit EnergyModel(EnergyConfig cfg = EnergyConfig{}) : cfg_(cfg) {}

    const EnergyConfig& config() const { return cfg_; }

    EnergyReport compute(const ActivityCounts& activity) const;

  private:
    EnergyConfig cfg_;
};

/** Per-module area entry of the Fig. 13 breakdown. */
struct AreaEntry
{
    std::string module;
    double mm2 = 0;
};

/**
 * Area model: unit areas x instance counts, calibrated so the full
 * SpAtten config (1024 multipliers, 2x196 KB SRAM) reproduces the
 * paper's 18.71 mm^2 with the Fig. 13 proportions.
 *
 * @param num_multipliers total multipliers (paper: 1024; SpAtten-1/8: 128).
 * @param sram_kb total K+V SRAM capacity in KB (paper: 392).
 * @param topk_parallelism comparators per side in the top-k engine.
 */
std::vector<AreaEntry> areaBreakdown(int num_multipliers, int sram_kb,
                                     int topk_parallelism);

/** Sum of an area breakdown in mm^2. */
double totalAreaMm2(const std::vector<AreaEntry>& entries);

} // namespace spatten

#endif // SPATTEN_ENERGY_ENERGY_MODEL_HPP
