/// Unit tests for the trainable layers: Linear, LayerNorm, Embedding,
/// ReLU, loss — each backward checked against numerical gradients.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.hpp"
#include "tensor/ops.hpp"

namespace spatten {
namespace {

TEST(Linear, ForwardMatchesManual)
{
    Prng p(1);
    Linear lin("l", 3, 2, p);
    lin.weight().value = Tensor({3, 2}, {1, 0, 0, 1, 1, 1});
    lin.bias().value = Tensor::fromList({0.5f, -0.5f});
    Tensor x({1, 3}, {1, 2, 3});
    const Tensor y = lin.forward(x);
    EXPECT_FLOAT_EQ(y.at(0, 0), 1 + 3 + 0.5f);
    EXPECT_FLOAT_EQ(y.at(0, 1), 2 + 3 - 0.5f);
}

TEST(Linear, BackwardNumericalCheck)
{
    Prng p(2);
    Linear lin("l", 4, 3, p);
    const Tensor x = Tensor::randn({2, 4}, p);
    // Loss = sum(y^2)/2; dy = y.
    const Tensor y = lin.forward(x);
    const Tensor dx = lin.backward(x, y);
    // Numerical dW for a few entries.
    const float eps = 1e-3f;
    for (std::size_t idx : {0u, 5u, 11u}) {
        Param& w = lin.weight();
        const float orig = w.value[idx];
        w.value[idx] = orig + eps;
        const Tensor yp = lin.forward(x);
        w.value[idx] = orig - eps;
        const Tensor ym = lin.forward(x);
        w.value[idx] = orig;
        double lp = 0, lm = 0;
        for (std::size_t i = 0; i < yp.numel(); ++i) {
            lp += 0.5 * yp[i] * yp[i];
            lm += 0.5 * ym[i] * ym[i];
        }
        const double num = (lp - lm) / (2 * eps);
        EXPECT_NEAR(w.grad[idx], num, 2e-2 * std::max(1.0, std::fabs(num)));
    }
    // dx check for one entry.
    const float eps2 = 1e-3f;
    Tensor x2 = x;
    x2[3] += eps2;
    const Tensor yp = lin.forward(x2);
    x2[3] -= 2 * eps2;
    const Tensor ym = lin.forward(x2);
    double lp = 0, lm = 0;
    for (std::size_t i = 0; i < yp.numel(); ++i) {
        lp += 0.5 * yp[i] * yp[i];
        lm += 0.5 * ym[i] * ym[i];
    }
    EXPECT_NEAR(dx[3], (lp - lm) / (2 * eps2), 5e-2);
}

TEST(LayerNorm, ForwardNormalizes)
{
    LayerNorm ln("ln", 8);
    Prng p(3);
    const Tensor x = Tensor::randn({4, 8}, p, 3.0f, 2.0f);
    LayerNorm::Cache c;
    const Tensor y = ln.forward(x, c);
    for (std::size_t i = 0; i < 4; ++i) {
        double mean = 0;
        for (std::size_t j = 0; j < 8; ++j)
            mean += y.at(i, j);
        EXPECT_NEAR(mean / 8.0, 0.0, 1e-4);
    }
}

TEST(LayerNorm, BackwardNumericalCheck)
{
    LayerNorm ln("ln", 6);
    Prng p(4);
    Tensor x = Tensor::randn({2, 6}, p);
    LayerNorm::Cache c;
    const Tensor y = ln.forward(x, c);
    const Tensor dx = ln.backward(c, y); // loss = sum(y^2)/2
    const float eps = 1e-3f;
    for (std::size_t idx : {0u, 7u, 11u}) {
        const float orig = x[idx];
        x[idx] = orig + eps;
        LayerNorm::Cache c2;
        const Tensor yp = ln.forward(x, c2);
        x[idx] = orig - eps;
        const Tensor ym = ln.forward(x, c2);
        x[idx] = orig;
        double lp = 0, lm = 0;
        for (std::size_t i = 0; i < yp.numel(); ++i) {
            lp += 0.5 * yp[i] * yp[i];
            lm += 0.5 * ym[i] * ym[i];
        }
        const double num = (lp - lm) / (2 * eps);
        EXPECT_NEAR(dx[idx], num, 5e-2 * std::max(1.0, std::fabs(num)));
    }
}

TEST(Embedding, ForwardAddsPositional)
{
    Prng p(5);
    Embedding emb("e", 10, 4, 8, p);
    const Tensor out = emb.forward({3, 3});
    // Same token at different positions differs by position embedding.
    bool differs = false;
    for (std::size_t j = 0; j < 4; ++j)
        differs |= out.at(0, j) != out.at(1, j);
    EXPECT_TRUE(differs);
}

TEST(Embedding, BackwardAccumulatesUsedRows)
{
    Prng p(6);
    Embedding emb("e", 10, 4, 8, p);
    std::vector<Param*> ps;
    emb.collectParams(ps);
    Tensor dy({2, 4}, 1.0f);
    emb.backward({3, 3}, dy);
    // Token 3 used twice: grad = 2 in each dim; token 0 untouched.
    Param* tok = ps[0];
    EXPECT_FLOAT_EQ(tok->grad.at(3, 0), 2.0f);
    EXPECT_FLOAT_EQ(tok->grad.at(0, 0), 0.0f);
}

TEST(Relu, BackwardMasks)
{
    const Tensor x = Tensor::fromList({-1.0f, 2.0f});
    const Tensor dy = Tensor::fromList({5.0f, 5.0f});
    const Tensor dx = reluBackward(x, dy);
    EXPECT_EQ(dx[0], 0.0f);
    EXPECT_EQ(dx[1], 5.0f);
}

TEST(Loss, CrossEntropyKnownValue)
{
    // Uniform logits over 4 classes: loss = log(4).
    Tensor logits({1, 4}, 0.0f);
    Tensor d;
    const double loss = softmaxCrossEntropy(logits, {2}, d);
    EXPECT_NEAR(loss, std::log(4.0), 1e-6);
    // Gradient: p - onehot.
    EXPECT_NEAR(d.at(0, 2), 0.25f - 1.0f, 1e-6);
    EXPECT_NEAR(d.at(0, 0), 0.25f, 1e-6);
}

TEST(Loss, PerfectPredictionNearZero)
{
    Tensor logits({1, 3}, {20.0f, 0.0f, 0.0f});
    Tensor d;
    EXPECT_LT(softmaxCrossEntropy(logits, {0}, d), 1e-6);
}

TEST(SoftmaxBackward, MatchesNumerical)
{
    Prng p(7);
    Tensor s = Tensor::randn({1, 5}, p);
    const Tensor prob = ops::softmaxRows(s);
    // Upstream dprob = prob (loss = sum(p^2)/2).
    const Tensor ds = softmaxBackwardRows(prob, prob);
    const float eps = 1e-3f;
    for (std::size_t idx = 0; idx < 5; ++idx) {
        s[idx] += eps;
        const Tensor pp = ops::softmaxRows(s);
        s[idx] -= 2 * eps;
        const Tensor pm = ops::softmaxRows(s);
        s[idx] += eps;
        double lp = 0, lm = 0;
        for (std::size_t i = 0; i < 5; ++i) {
            lp += 0.5 * pp[i] * pp[i];
            lm += 0.5 * pm[i] * pm[i];
        }
        EXPECT_NEAR(ds[idx], (lp - lm) / (2 * eps), 2e-3);
    }
}

TEST(Adam, ConvergesOnQuadratic)
{
    // Minimize (w - 3)^2 with Adam.
    Param w("w", Tensor::fromList({0.0f}));
    std::vector<Param*> ps{&w};
    AdamOptimizer::Config cfg;
    cfg.lr = 0.1;
    AdamOptimizer opt(cfg);
    for (int i = 0; i < 300; ++i) {
        w.grad[0] = 2.0f * (w.value[0] - 3.0f);
        opt.step(ps);
    }
    EXPECT_NEAR(w.value[0], 3.0f, 0.05f);
}

TEST(Adam, GradClipLimitsStep)
{
    Param w("w", Tensor::fromList({0.0f}));
    std::vector<Param*> ps{&w};
    AdamOptimizer::Config cfg;
    cfg.lr = 1.0;
    cfg.grad_clip = 1e-3;
    AdamOptimizer opt(cfg);
    w.grad[0] = 1e6f;
    opt.step(ps);
    // Clipped: the update magnitude stays ~lr regardless of huge grad.
    EXPECT_LT(std::fabs(w.value[0]), 1.5f);
}

TEST(Param, ZeroGradClears)
{
    Param w("w", Tensor::fromList({1.0f, 2.0f}));
    w.grad[0] = 5.0f;
    w.zeroGrad();
    EXPECT_EQ(w.grad[0], 0.0f);
    EXPECT_EQ(totalParams({&w}), 2u);
}

} // namespace
} // namespace spatten
