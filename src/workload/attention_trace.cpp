#include "workload/attention_trace.hpp"

#include "common/logging.hpp"
#include "tensor/ops.hpp"

namespace spatten {

Tensor
syntheticScoreRow(std::size_t len, double dominance, Prng& prng)
{
    SPATTEN_ASSERT(len > 0, "empty score row");
    Tensor row = Tensor::randn({len}, prng, 0.0f, 0.35f);
    if (dominance > 0.0)
        row[prng.below(len)] += static_cast<float>(dominance);
    return row;
}

std::vector<Tensor>
syntheticScoreRows(std::size_t rows, std::size_t len, double max_dominance,
                   Prng& prng)
{
    std::vector<Tensor> out;
    out.reserve(rows);
    for (std::size_t i = 0; i < rows; ++i)
        out.push_back(
            syntheticScoreRow(len, prng.uniform(0.0, max_dominance), prng));
    return out;
}

double
maxSoftmaxProb(const Tensor& scores)
{
    return ops::softmax(scores).maxElem();
}

} // namespace spatten
