/// Tests for the hardware 5th-order Taylor exponential (§V-A).
#include <gtest/gtest.h>

#include <cmath>

#include "accel/softmax_module.hpp"
#include "accel/taylor_exp.hpp"

namespace spatten {
namespace {

TEST(TaylorExp, ExactAtZero)
{
    EXPECT_FLOAT_EQ(taylorExp5(0.0f), 1.0f);
}

TEST(TaylorExp, MatchesStdExpOnSoftmaxRange)
{
    // Softmax-normalized scores live in (-inf, 0]; most mass is within
    // a few units of zero. The Taylor-5 + range-reduction unit must be
    // accurate to a fraction of a percent there.
    for (float x = 0.0f; x >= -20.0f; x -= 0.037f) {
        const double ref = std::exp(static_cast<double>(x));
        EXPECT_NEAR(taylorExp5(x), ref, ref * 5e-4 + 1e-12) << "x=" << x;
    }
}

TEST(TaylorExp, MaxRelErrorBounded)
{
    EXPECT_LT(taylorExp5MaxRelError(-30.0f), 1e-3);
}

TEST(TaylorExp, MonotoneDecreasing)
{
    float prev = taylorExp5(0.0f);
    for (float x = -0.1f; x >= -15.0f; x -= 0.1f) {
        const float cur = taylorExp5(x);
        EXPECT_LE(cur, prev * 1.0000001f) << "x=" << x;
        prev = cur;
    }
}

TEST(TaylorExp, UnderflowsToZero)
{
    EXPECT_EQ(taylorExp5(-100.0f), 0.0f);
}

TEST(TaylorExp, RejectsPositiveInput)
{
    EXPECT_DEATH(taylorExp5(0.5f), "x <= 0");
}

// The softmax hardware module (which now uses the Taylor unit) must
// still produce near-exact probabilities.
TEST(TaylorExp, SoftmaxModuleStaysAccurate)
{
    SoftmaxModule sm;
    std::vector<float> prob;
    const std::vector<float> scores{2.0f, -1.0f, 0.5f, 3.0f, -4.0f};
    sm.run(scores, prob, 0.1);
    // Reference with std::exp.
    double denom = 0.0;
    std::vector<double> ref(scores.size());
    for (std::size_t i = 0; i < scores.size(); ++i) {
        ref[i] = std::exp(scores[i] - 3.0);
        denom += ref[i];
    }
    for (std::size_t i = 0; i < scores.size(); ++i)
        EXPECT_NEAR(prob[i], ref[i] / denom, 2e-3) << "i=" << i;
}

} // namespace
} // namespace spatten
