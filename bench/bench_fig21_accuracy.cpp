/// Regenerates Fig. 21: trade-off curves between token/head pruning
/// ratio and accuracy, on trained synthetic tasks (see DESIGN.md for the
/// dataset substitution). Left: LM task (GPT-2-on-PTB analogue, loss
/// delta); right: classification task (BERT-on-CoLA analogue, accuracy
/// delta).
#include <cstdio>

#include "bench_util.hpp"
#include "nn/trainer.hpp"
#include "workload/synthetic_tasks.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Fig. 21",
           "Accuracy vs token/head pruning ratio on trained synthetic "
           "tasks");

    // ---- Classification task (token & head pruning curves) ----
    KeywordTaskConfig tc;
    tc.seq_len = 24;
    tc.keywords_per_sentence = 3;
    tc.minority_keywords = 2; // majority vote: pruning can flip labels
    KeywordTask task(tc);
    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 32;
    mc.heads = 4;
    mc.layers = 3;
    mc.ffn_dim = 64;
    mc.max_len = tc.seq_len;
    mc.num_classes = task.numClasses();
    TransformerModel cls(mc);
    std::printf("training classifier (synthetic keyword task)...\n");
    trainClassifier(cls, task.sample(300), 6);
    const auto test = task.sample(100);
    const double dense_acc = classifierAccuracy(cls, test);
    std::printf("dense accuracy: %.1f%%\n\n", dense_acc * 100);

    std::printf("(a) token pruning ratio vs accuracy loss "
                "(classification)\n");
    std::printf("%16s %16s %14s\n", "per-layer ratio", "overall keep",
                "acc delta");
    rule();
    for (double ratio : {0.0, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 0.92}) {
        PruningPolicy pol = PruningPolicy::disabled();
        pol.token_pruning = ratio > 0.0;
        pol.token_avg_ratio = ratio;
        PrunedRunStats st;
        const double acc = classifierAccuracyPruned(cls, test, pol, &st);
        std::printf("%16.2f %15.1f%% %+13.1f%%\n", ratio,
                    st.tokens_kept_frac * 100,
                    (acc - dense_acc) * 100);
    }

    std::printf("\n(b) head pruning ratio vs accuracy loss "
                "(classification)\n");
    std::printf("%16s %16s %14s\n", "per-layer ratio", "heads kept",
                "acc delta");
    rule();
    for (double ratio : {0.0, 0.15, 0.3, 0.5, 0.75, 0.9}) {
        PruningPolicy pol = PruningPolicy::disabled();
        pol.head_pruning = ratio > 0.0;
        pol.head_avg_ratio = ratio;
        PrunedRunStats st;
        const double acc = classifierAccuracyPruned(cls, test, pol, &st);
        std::printf("%16.2f %15.1f%% %+13.1f%%\n", ratio,
                    st.heads_kept_frac * 100, (acc - dense_acc) * 100);
    }

    // ---- LM task (token pruning curve) ----
    CopyLmTaskConfig lc;
    lc.payload_len = 4;
    lc.filler_gap = 3;
    CopyLmTask lm_task(lc);
    TinyModelConfig lmc;
    lmc.vocab = lm_task.vocabSize();
    lmc.d_model = 32;
    lmc.heads = 4;
    lmc.layers = 4;
    lmc.ffn_dim = 64;
    lmc.max_len = lm_task.seqLen();
    TransformerModel lm(lmc);
    std::printf("\ntraining LM (synthetic copy task)...\n");
    trainLm(lm, lm_task.sample(300), 6);
    const auto lm_test = lm_task.sample(40);
    const double dense_loss = lmMeanLoss(lm, lm_test);
    std::printf("dense LM loss: %.4f\n\n", dense_loss);

    std::printf("(c) token (key) pruning ratio vs LM loss delta\n");
    std::printf("%16s %16s %14s\n", "per-layer ratio", "keys kept",
                "loss delta");
    rule();
    for (double ratio : {0.0, 0.1, 0.2, 0.35, 0.5, 0.7, 0.85, 0.95}) {
        PruningPolicy pol = PruningPolicy::disabled();
        pol.token_pruning = ratio > 0.0;
        pol.token_avg_ratio = ratio;
        PrunedRunStats st;
        const double loss = lmMeanLossPruned(lm, lm_test, pol, &st);
        std::printf("%16.2f %15.1f%% %+14.4f\n", ratio,
                    st.avg_keys_frac * 100, loss - dense_loss);
    }
    rule();
    std::printf("Paper shape: ~4x token pruning on PTB and ~1.2x head "
                "pruning on CoLA with no accuracy loss; small ratios can "
                "even improve accuracy; extreme ratios degrade sharply.\n");
    return 0;
}
