/**
 * @file
 * The common stage abstraction of the accelerator model.
 *
 * Every hardware unit on the attention critical path (fetcher, Q x K,
 * softmax, top-k, zero eliminator, prob x V) implements StageModel: given
 * the per-request ExecutionContext it reports its timing contribution,
 * its energy-relevant activity, and the data traffic it generates. The
 * StageGraph composes the stages into one layer pass and lands each
 * stage's occupancy/energy/traffic in a StatSet automatically, so the
 * breakdown benches no longer re-derive pipeline internals by hand.
 */
#ifndef SPATTEN_SIM_STAGE_MODEL_HPP
#define SPATTEN_SIM_STAGE_MODEL_HPP

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/math_util.hpp"
#include "common/prng.hpp"
#include "energy/energy_model.hpp"
#include "sim/clock.hpp"
#include "sim/survivor_index.hpp"

namespace spatten {

/**
 * Number of tokens/heads/rows surviving one pruning round: keep
 * ceil(alive * (1 - ratio)), ratio clamped to [_, 1], never below one
 * survivor. The single definition of this rounding rule — cascade
 * transforms and local value pruning both call it.
 */
inline std::size_t
pruneSurvivors(std::size_t alive, double ratio)
{
    if (ratio <= 0.0)
        return alive;
    const auto k = static_cast<std::size_t>(std::ceil(
        static_cast<double>(alive) * (1.0 - std::min(ratio, 1.0))));
    return std::max<std::size_t>(k, 1);
}

/**
 * Per-request execution state threaded through the stage graph.
 *
 * The context carries three kinds of state: the static request shape
 * (model dims, sequence lengths, seed), the quantization plane state
 * (MSB/LSB widths and the active LSB refetch fraction for the current
 * pass), and the dynamic cascade state (alive tokens/heads, the current
 * layer, SRAM tiling). Graph transforms mutate the dynamic state between
 * layers; stages read but never write it.
 */
struct ExecutionContext
{
    // ---- Static request description ----
    std::size_t d_head = 64;
    std::size_t num_layers = 12;
    std::size_t num_heads_total = 12;
    std::size_t max_context = 1024;
    /// Per-request PRNG seed: every stochastic stage (e.g. top-k pivot
    /// selection) derives its stream from this, so a request simulates
    /// bit-identically regardless of which BatchRunner thread runs it.
    /// The current occupancy model is analytic and draws nothing, so
    /// results are seed-independent today (pinned by tests).
    std::uint64_t request_seed = kDefaultRequestSeed;

    // ---- Quantization plane state ----
    int total_bits = 32;         ///< Static on-DRAM width.
    int msb_bits = 32;           ///< Eagerly fetched MSB plane width.
    int lsb_bits = 0;            ///< On-demand LSB plane width.
    double lsb_fraction = 0.0;   ///< Queries needing the LSB refetch.
    /// Plane width fetched eagerly in the current pass (the progressive
    /// quantization transform sets this: summarization fetches the full
    /// static width, generation the MSB plane only).
    int fetch_bits = 32;
    /// LSB refetch fraction active in the current pass (0 outside the
    /// generation stage).
    double active_lsb_fraction = 0.0;

    // ---- Pruning policy mirrors ----
    bool token_pruning = false;
    bool head_pruning = false;
    bool local_value_pruning = false;
    double local_v_ratio = 0.0;

    // ---- SRAM tiling state ----
    /// Tokens per SRAM buffer; contexts larger than one buffer stream in
    /// K tiles (Q re-fetched per tile).
    std::size_t sram_tokens = 0;

    // ---- Dynamic cascade state (mutated by graph transforms) ----
    std::size_t layer = 0;
    bool generation = false;
    std::size_t pass_queries = 0; ///< Query rows the pass was given.
    std::size_t queries = 0;      ///< Effective query rows per (layer, head).
    std::size_t alive_tokens = 0; ///< Context length entering the layer.
    std::size_t alive_heads = 0;
    std::size_t kept_values = 0;  ///< V rows after local value pruning.
    double token_prune_ratio = 0; ///< This layer's cascade token ratio.
    double head_prune_ratio = 0;  ///< This layer's cascade head ratio.
    /// CSR survivor index of the current pass: beginLayer() appends one
    /// compact row per layer (the zero-eliminator packs survivors into
    /// contiguous slots, so ids are implicitly [0, count)), and the
    /// cascade transforms' between-layer shrink of alive_tokens lands
    /// in the next layer's row. Stages read their survivor count
    /// through survivorTokens() instead of re-deriving it.
    SurvivorIndex survivors;

    /**
     * Reset the per-pass dynamic state in place so one context instance
     * is reused across every summarization/decode step of a request
     * (rather than rebuilt per step): the pass enters with
     * @p context_len alive tokens, the full head complement, and layer 0.
     * Static shape, plane state, and policy mirrors are untouched, so a
     * decode step can re-enter the graph with the cascade-pruned KV
     * length its predecessor left behind.
     */
    void beginPass(std::size_t pass_q, std::size_t context_len,
                   bool generation_pass)
    {
        pass_queries = pass_q;
        alive_tokens = context_len;
        alive_heads = num_heads_total;
        generation = generation_pass;
        layer = 0;
        survivors.reset(num_layers);
    }

    /**
     * Refresh the per-layer derived state: cascade pruning caps the
     * effective query rows at the surviving context, and local value
     * pruning picks the V rows kept for this layer.
     */
    void beginLayer()
    {
        survivors.appendCompactLayer(alive_tokens);
        queries = std::min(pass_queries, survivorTokens());
        kept_values = local_value_pruning
                          ? pruneSurvivors(survivorTokens(), local_v_ratio)
                          : survivorTokens();
    }

    /**
     * Survivors entering the current layer, read through the CSR
     * index's most recent row (appended by beginLayer, shrunk between
     * layers by the cascade transforms). Falls back to alive_tokens
     * for a hand-built context that never entered a layer.
     */
    std::size_t survivorTokens() const
    {
        return survivors.layers() > 0 ? survivors.back() : alive_tokens;
    }

    /** DRAM bytes of one d_head-dim row at @p bits element width. */
    std::size_t bytesPerRow(int bits) const
    {
        return ceilDiv<std::size_t>(
            d_head * static_cast<std::size_t>(bits), 8);
    }

    /** K tiles the current context needs at the current SRAM capacity. */
    std::size_t tiles() const
    {
        if (generation || sram_tokens == 0)
            return 1;
        return std::max<std::size_t>(
            1, ceilDiv(survivorTokens(), sram_tokens));
    }

    /** Query rows across all alive heads. */
    double queryRows() const
    {
        return static_cast<double>(queries) *
               static_cast<double>(alive_heads);
    }

    /**
     * Synthetic, layer/head-distinct DRAM base address of tensor plane
     * @p plane for the current (layer, head). The per-layer slot stride
     * is derived from the model's head count (floored at 64 to keep the
     * historical generous slot spacing), so layer regions never alias —
     * the seed's fixed `layer * 64 + head` stride silently collided
     * layer regions for models with more than 64 heads. The per-plane
     * region is 256 MB but grows when a large model's layer x head
     * slots would spill into the next plane (sized by the widest plane,
     * the static total_bits width, which bounds every plane's slots).
     */
    std::uint64_t planeBase(int plane, std::size_t head,
                            std::size_t bytes_per_row) const
    {
        const std::uint64_t stride =
            std::max<std::uint64_t>(num_heads_total, 64);
        const std::uint64_t max_slot_bytes = roundUp<std::uint64_t>(
            max_context * bytesPerRow(total_bits), 4096);
        const std::uint64_t region =
            std::max<std::uint64_t>(0x10000000ULL, // 256 MB per plane.
                                    num_layers * stride * max_slot_bytes);
        const std::uint64_t slot =
            (layer * stride + head) *
            roundUp<std::uint64_t>(max_context * bytes_per_row, 4096);
        return static_cast<std::uint64_t>(plane) * region + slot;
    }
};

/** Timing contribution of one stage to one layer pass. */
struct StageTiming
{
    /// Occupancy per query row. The layer's initiation interval is the
    /// max over the per-query stages (the pipeline is fully pipelined,
    /// Fig. 8), so the slowest stage bounds throughput.
    Cycles ii_cycles = 0;
    /// Serial per-layer cycles outside the query pipeline (e.g. the
    /// cascade-pruning top-k pass between layers).
    Cycles layer_cycles = 0;
};

/** Data traffic one stage generates in one layer pass. */
struct StageTraffic
{
    double dram_bytes = 0;       ///< DRAM bytes fetched (estimate).
    double fetch_requests = 0;   ///< Fetcher/crossbar request count.
    double sram_read_elems = 0;  ///< Element reads from the stage's SRAM.
    double sram_write_elems = 0; ///< Element writes (buffer fills).
};

/**
 * A hardware stage of the attention dataflow.
 *
 * Implementations are pure observers of the ExecutionContext: the graph
 * asks each stage for its timing / energy activity / traffic for the
 * current layer and does all accumulation itself.
 */
class StageModel
{
  public:
    virtual ~StageModel() = default;

    /** Stable stage name, used as the StatSet key prefix. */
    virtual std::string stageName() const = 0;

    /** Timing contribution for the current layer. */
    virtual StageTiming timing(const ExecutionContext& ctx) const = 0;

    /**
     * Energy-relevant activity for the current layer (MACs, softmax
     * element ops, comparator ops, ...). The graph feeds the merged
     * counts to the EnergyModel; per-stage energy is also priced
     * individually for the StatSet breakdown.
     */
    virtual ActivityCounts energy(const ExecutionContext& ctx) const = 0;

    /** Traffic contribution for the current layer. */
    virtual StageTraffic traffic(const ExecutionContext& ctx) const = 0;
};

/**
 * Extension for stages that realize their DRAM traffic against a
 * stateful memory system (HBM + crossbar): the graph calls issue() once
 * per layer with the DRAM-clock cursor and uses the returned completion
 * cycle as the layer's memory time.
 */
class MemoryStage : public StageModel
{
  public:
    /**
     * Issue the layer's DRAM traffic starting at DRAM cycle @p start.
     * @return the DRAM cycle at which the last beat lands.
     */
    virtual Cycles issue(const ExecutionContext& ctx, Cycles start) = 0;
};

} // namespace spatten

#endif // SPATTEN_SIM_STAGE_MODEL_HPP
