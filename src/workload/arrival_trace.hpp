/**
 * @file
 * Seeded arrival traces for the continuous-batching serving model.
 *
 * A trace is the demand side of a serving experiment: requests arriving
 * over simulated time, each with a prompt length, an output length, and
 * a priority drawn from seeded distributions over a shared model/policy
 * template. Two arrival processes are modeled — a Poisson process
 * (i.i.d. exponential interarrival gaps) and an ON/OFF burst process
 * (Poisson arrivals during exponential ON periods separated by
 * exponential OFF gaps, the classic interrupted-Poisson bursty-traffic
 * model) — and prompt lengths can be uniform or bounded-Pareto
 * heavy-tailed, the regime where a KV-capacity-aware scheduler actually
 * gets exercised. The trace is a pure function of its config (including
 * the seed), so every scheduler experiment replays the exact same
 * demand — the determinism anchor the property tests and
 * BENCH_serving.json trajectories rely on.
 */
#ifndef SPATTEN_WORKLOAD_ARRIVAL_TRACE_HPP
#define SPATTEN_WORKLOAD_ARRIVAL_TRACE_HPP

#include <cstdint>
#include <vector>

#include "common/prng.hpp"
#include "core/model_spec.hpp"

namespace spatten {

/** One request of an arrival trace. */
struct TracedRequest
{
    std::size_t id = 0;      ///< Position in the trace (stable identity).
    double arrival_s = 0;    ///< Simulated arrival time.
    WorkloadSpec workload;   ///< Prompt/output shape of this request.
    PruningPolicy policy;
    std::uint64_t seed = kDefaultRequestSeed; ///< Per-request PRNG seed.
    int priority = 0; ///< Scheduling priority; higher is more urgent.
    /// Prompt *content* identity, one synthetic token id per prompt
    /// token (size == workload.summarize_len when present). Empty for
    /// legacy traces: every prompt is unique content, so the serving
    /// layer's shared-prefix cache can never match it. Filled by
    /// generateSharedPrefixTrace so requests sharing a system prompt
    /// or conversation history share a literal token prefix.
    std::vector<std::uint64_t> prompt_tokens;
};

/** How arrival times are generated. */
enum class ArrivalProcess
{
    /// i.i.d. exponential interarrival gaps at rate 1/mean.
    Poisson,
    /// Interrupted Poisson: gaps accrue only during exponential ON
    /// periods (mean burst_on_mean_s); crossing into an OFF period
    /// inserts an exponential silence (mean burst_off_mean_s). Arrivals
    /// cluster into bursts with long gaps between them.
    OnOffBurst,
};

/** How prompt lengths are drawn. */
enum class PromptLengthDist
{
    Uniform, ///< Uniform over [min_prompt, max_prompt].
    /// Bounded Pareto over [min_prompt, max_prompt] with shape
    /// pareto_alpha: mostly short prompts with a heavy tail of
    /// near-max ones (production prompt-length mixes).
    BoundedPareto,
};

/** Distribution parameters of a synthetic arrival trace. */
struct ArrivalTraceConfig
{
    std::size_t num_requests = 64;
    /// Mean interarrival gap of the Poisson process (rate = 1/mean).
    /// For OnOffBurst this is the in-burst gap mean.
    double mean_interarrival_s = 1e-3;
    std::uint64_t seed = kDefaultRequestSeed;
    ModelSpec model = ModelSpec::gpt2Small();
    PruningPolicy policy;         ///< Applied to every request.
    std::size_t min_prompt = 64;  ///< Prompt-length bounds.
    std::size_t max_prompt = 384;
    std::size_t min_output = 4;   ///< Uniform output-length bounds.
    std::size_t max_output = 32;

    ArrivalProcess process = ArrivalProcess::Poisson;
    double burst_on_mean_s = 2e-3;  ///< Mean ON-period length.
    double burst_off_mean_s = 10e-3; ///< Mean OFF-period length.

    PromptLengthDist prompt_dist = PromptLengthDist::Uniform;
    double pareto_alpha = 1.2; ///< Shape of the bounded Pareto tail.

    /// Priorities are uniform draws in [0, priority_levels); 1 keeps
    /// every request at priority 0 (and consumes no PRNG draws, so
    /// default traces are bit-identical to pre-priority ones).
    std::size_t priority_levels = 1;
};

/**
 * Generate an arrival trace under @p cfg's process and distributions:
 * arrival times are the running sum of (possibly burst-interrupted)
 * exponential gaps, prompt/output lengths and priorities are seeded
 * draws, and each request gets a distinct derived seed. Deterministic:
 * the same config yields a bit-identical trace. Arrivals are
 * non-decreasing and ids run 0..n-1 in arrival order.
 */
std::vector<TracedRequest> generateArrivalTrace(
    const ArrivalTraceConfig& cfg);

/** Back-compat alias: generateArrivalTrace with cfg as given. */
std::vector<TracedRequest> generatePoissonTrace(
    const ArrivalTraceConfig& cfg);

/**
 * Demand with shared prompt prefixes — the regime prefix caching
 * serves: a pool of system prompts every conversation opens with, and
 * multi-turn follow-ups that re-send a growing conversation history.
 */
struct SharedPrefixTraceConfig
{
    /// Arrival process, output lengths, model/policy, and the base
    /// seed. The base prompt-length draws are consumed (stream
    /// compatibility) but overridden by the composition below.
    ArrivalTraceConfig base;
    /// Distinct system prompts; each request's conversation opens with
    /// one drawn uniformly.
    std::size_t num_system_prompts = 4;
    /// Tokens of every system prompt (block-aligned values maximize
    /// cache hits; misaligned ones exercise partial-block fallback).
    std::size_t system_prompt_tokens = 128;
    /// Probability a request is a follow-up turn: it re-sends a prior
    /// conversation's full context (prompt + generated reply) plus a
    /// fresh user turn, instead of opening a new conversation.
    double followup_prob = 0.5;
    /// Fresh user-turn length bounds (uniform draw per request).
    std::size_t user_turn_min = 16;
    std::size_t user_turn_max = 64;
    /// Conversations whose re-sent context would exceed this many
    /// prompt tokens start over instead (bounds the context under
    /// SpAttenConfig::max_context).
    std::size_t max_prompt_tokens = 768;
};

/**
 * Demand following a day/night cycle — the regime a day-scale serving
 * experiment needs: a non-homogeneous Poisson process whose rate swings
 * sinusoidally around the base mean, peaking mid-"day" and bottoming
 * out at "night".
 */
struct DiurnalTraceConfig
{
    /// Request shapes, model/policy, seed, and the *day-average* rate
    /// (1 / mean_interarrival_s). The base arrival draws are consumed
    /// (stream compatibility) but overridden by the diurnal process.
    ArrivalTraceConfig base;
    /// Length of one day/night cycle in simulated seconds. Day-scale
    /// benches compress the wall day: what matters to the scheduler is
    /// the rate swing relative to service time, not the absolute 86400.
    double day_s = 60.0;
    /// Rate swing in [0, 1): rate(t) = mean_rate * (1 + amplitude *
    /// cos(2*pi*(t/day_s - peak_frac))). 0 degenerates to homogeneous
    /// Poisson; 0.9 means the night trough runs at 10% of the peak ~
    /// 19x swing.
    double amplitude = 0.8;
    /// Fraction of the day at which the rate peaks (0.5 = mid-day).
    double peak_frac = 0.5;
};

/**
 * Generate a diurnal trace: request shapes, priorities, and per-request
 * seeds come from generateArrivalTrace(cfg.base) (bit-identical
 * attribute streams), then arrival times are re-drawn from a separate
 * PRNG stream as a non-homogeneous Poisson process via Lewis-Shedler
 * thinning: candidate gaps at the peak rate, accepted with probability
 * rate(t)/peak_rate. Deterministic: the same config yields a
 * bit-identical trace; arrivals are non-decreasing.
 */
std::vector<TracedRequest> generateDiurnalTrace(
    const DiurnalTraceConfig& cfg);

/**
 * Generate a shared-prefix trace: arrivals, output lengths, priorities,
 * and per-request seeds come from generateArrivalTrace(cfg.base)
 * (bit-identical streams — a legacy consumer ignoring prompt_tokens
 * sees the same demand shape), then a *separate* content PRNG stream
 * (derived from base.seed) composes each prompt: system prompt or
 * re-sent conversation history, plus fresh user-turn tokens. Every
 * request carries its full prompt token ids; workload.summarize_len is
 * overridden to match. Deterministic: the same config yields a
 * bit-identical trace.
 */
std::vector<TracedRequest> generateSharedPrefixTrace(
    const SharedPrefixTraceConfig& cfg);

} // namespace spatten

#endif // SPATTEN_WORKLOAD_ARRIVAL_TRACE_HPP
