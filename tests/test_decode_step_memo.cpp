/// Bit-identity of the decode-step replay memo: a session run with the
/// memo enabled (the default) must produce *exactly* the same simulated
/// outputs — per-step seconds, KV trajectory, cycles, energy, and every
/// stat counter — as one run with setStepMemo(false), across pruning
/// policies, chunked prefill, and cached-prefix prefill. The memo is a
/// host-side optimization only; any observable divergence is a bug.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "accel/decode_session.hpp"
#include "accel/pipeline.hpp"

namespace spatten {
namespace {

ModelSpec
tinyModel()
{
    return {"tiny", 4, 4, 64, 4};
}

WorkloadSpec
tinyWorkload(std::size_t prompt = 96, std::size_t gen = 24)
{
    WorkloadSpec w;
    w.name = "memo-probe";
    w.model = tinyModel();
    w.summarize_len = prompt;
    w.generate_len = gen;
    return w;
}

enum class PrefillMode
{
    Monolithic,
    Chunked,      ///< Three uneven chunks.
    CachedPrefix, ///< Half the prompt served from a shared-prefix cache.
};

struct SessionTrace
{
    double prefill_seconds = 0;
    std::vector<double> step_seconds;
    std::vector<std::size_t> kv_trace;
    RunResult result;
    std::size_t memo_replays = 0;
};

SessionTrace
runSession(const WorkloadSpec& w, const PruningPolicy& policy,
           PrefillMode mode, bool memo)
{
    DecodeSession s(SpAttenConfig{}, w, policy);
    s.setStepMemo(memo);
    SessionTrace t;
    switch (mode) {
    case PrefillMode::Monolithic:
        t.prefill_seconds = s.prefill();
        break;
    case PrefillMode::Chunked: {
        const std::size_t a = w.summarize_len / 3;
        const std::size_t b = w.summarize_len / 2;
        t.prefill_seconds += s.prefillChunk(0, a);
        t.prefill_seconds += s.prefillChunk(a, b - a);
        t.prefill_seconds += s.prefillChunk(b, w.summarize_len - b);
        break;
    }
    case PrefillMode::CachedPrefix:
        t.prefill_seconds = s.prefillWithCachedPrefix(w.summarize_len / 2);
        break;
    }
    while (!s.done())
        t.step_seconds.push_back(s.decodeStep());
    t.kv_trace = s.kvTrace();
    t.result = s.finalize();
    t.memo_replays = s.memoReplays();
    return t;
}

/// Every observable of the two runs must match bit for bit — exact
/// double equality throughout, no tolerances.
void
expectIdentical(const SessionTrace& memo, const SessionTrace& plain)
{
    EXPECT_EQ(memo.prefill_seconds, plain.prefill_seconds);
    ASSERT_EQ(memo.step_seconds.size(), plain.step_seconds.size());
    for (std::size_t i = 0; i < memo.step_seconds.size(); ++i)
        EXPECT_EQ(memo.step_seconds[i], plain.step_seconds[i])
            << "decode step " << i;
    EXPECT_EQ(memo.kv_trace, plain.kv_trace);

    const RunResult& a = memo.result;
    const RunResult& b = plain.result;
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.summarize_seconds, b.summarize_seconds);
    EXPECT_EQ(a.generate_seconds, b.generate_seconds);
    EXPECT_EQ(a.attention_flops, b.attention_flops);
    EXPECT_EQ(a.dram_bytes, b.dram_bytes);
    EXPECT_EQ(a.energy.totalJ(), b.energy.totalJ());
    EXPECT_EQ(a.energy.dram_j, b.energy.dram_j);
    EXPECT_EQ(a.energy.sram_j, b.energy.sram_j);
    EXPECT_EQ(a.energy.fetcher_j, b.energy.fetcher_j);

    // The stat registry includes the hbm.* counters and the per-stage
    // busy/energy/dram breakdown — the widest observable surface.
    ASSERT_EQ(a.stats.all().size(), b.stats.all().size());
    auto ita = a.stats.all().begin();
    auto itb = b.stats.all().begin();
    for (; ita != a.stats.all().end(); ++ita, ++itb) {
        EXPECT_EQ(ita->first, itb->first);
        EXPECT_EQ(ita->second, itb->second) << "stat " << ita->first;
    }
}

TEST(DecodeStepMemo, BitIdenticalUnderCascadePruning)
{
    const WorkloadSpec w = tinyWorkload();
    const PruningPolicy p; // Full cascade pruning: KV hits a fixed point.
    const SessionTrace memo =
        runSession(w, p, PrefillMode::Monolithic, true);
    const SessionTrace plain =
        runSession(w, p, PrefillMode::Monolithic, false);
    // The memo must actually engage (steady state reached within the
    // 24-step decode) — otherwise this test pins nothing.
    EXPECT_GT(memo.memo_replays, 0u);
    EXPECT_EQ(plain.memo_replays, 0u);
    expectIdentical(memo, plain);
}

TEST(DecodeStepMemo, BitIdenticalWithPruningDisabled)
{
    // Without pruning the context grows every step, so the memo records
    // but never replays — the guard must detect the changed entering
    // context and fall back to live execution, bit-identically.
    const WorkloadSpec w = tinyWorkload(64, 8);
    const PruningPolicy p = PruningPolicy::disabled();
    const SessionTrace memo =
        runSession(w, p, PrefillMode::Monolithic, true);
    const SessionTrace plain =
        runSession(w, p, PrefillMode::Monolithic, false);
    EXPECT_EQ(memo.memo_replays, 0u);
    expectIdentical(memo, plain);
}

TEST(DecodeStepMemo, BitIdenticalAfterChunkedPrefill)
{
    const WorkloadSpec w = tinyWorkload();
    const PruningPolicy p;
    const SessionTrace memo = runSession(w, p, PrefillMode::Chunked, true);
    const SessionTrace plain =
        runSession(w, p, PrefillMode::Chunked, false);
    EXPECT_GT(memo.memo_replays, 0u);
    expectIdentical(memo, plain);
}

TEST(DecodeStepMemo, BitIdenticalAfterCachedPrefixPrefill)
{
    const WorkloadSpec w = tinyWorkload();
    const PruningPolicy p;
    const SessionTrace memo =
        runSession(w, p, PrefillMode::CachedPrefix, true);
    const SessionTrace plain =
        runSession(w, p, PrefillMode::CachedPrefix, false);
    EXPECT_GT(memo.memo_replays, 0u);
    expectIdentical(memo, plain);
}

TEST(DecodeStepMemo, ReplayCountIsBoundedByDecodeSteps)
{
    const WorkloadSpec w = tinyWorkload(96, 16);
    const SessionTrace memo =
        runSession(w, PruningPolicy{}, PrefillMode::Monolithic, true);
    // At least one live step records before any replay can happen.
    EXPECT_LT(memo.memo_replays, w.generate_len);
}

} // namespace
} // namespace spatten
