#include "core/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace spatten {

PruningSchedule::PruningSchedule(std::size_t num_layers,
                                 const ScheduleConfig& cfg)
{
    SPATTEN_ASSERT(cfg.avg_ratio >= 0.0 && cfg.avg_ratio < 1.0,
                   "avg_ratio %f out of [0,1)", cfg.avg_ratio);
    ratios_.assign(num_layers, 0.0);
    if (num_layers == 0 || cfg.avg_ratio == 0.0)
        return;
    const auto front = static_cast<std::size_t>(
        std::ceil(cfg.front_frac * static_cast<double>(num_layers)));
    if (front >= num_layers) {
        // Degenerate: every layer is a "front" layer; nothing to prune.
        return;
    }
    const std::size_t pruned_layers = num_layers - front;
    const double r_start = cfg.avg_ratio * (1.0 - cfg.spread);
    const double r_end = cfg.avg_ratio * (1.0 + cfg.spread);
    for (std::size_t i = 0; i < pruned_layers; ++i) {
        const double t = pruned_layers == 1
                             ? 0.5
                             : static_cast<double>(i) /
                                   static_cast<double>(pruned_layers - 1);
        double r = r_start + (r_end - r_start) * t;
        ratios_[front + i] = std::clamp(r, 0.0, 0.95);
    }
}

PruningSchedule
PruningSchedule::uniform(std::size_t num_layers, double ratio)
{
    PruningSchedule s;
    s.ratios_.assign(num_layers, ratio);
    return s;
}

PruningSchedule
PruningSchedule::disabled(std::size_t num_layers)
{
    return uniform(num_layers, 0.0);
}

double
PruningSchedule::ratioAt(std::size_t layer) const
{
    SPATTEN_ASSERT(layer < ratios_.size(), "layer %zu out of %zu", layer,
                   ratios_.size());
    return ratios_[layer];
}

double
PruningSchedule::keepFraction() const
{
    double keep = 1.0;
    for (double r : ratios_)
        keep *= (1.0 - r);
    return keep;
}

PruningSchedule
makeTokenSchedule(std::size_t num_layers, double avg_ratio)
{
    ScheduleConfig cfg;
    cfg.avg_ratio = avg_ratio;
    cfg.front_frac = 0.15;
    return PruningSchedule(num_layers, cfg);
}

PruningSchedule
makeHeadSchedule(std::size_t num_layers, double avg_ratio)
{
    ScheduleConfig cfg;
    cfg.avg_ratio = avg_ratio;
    cfg.front_frac = 0.30;
    return PruningSchedule(num_layers, cfg);
}

double
lengthAdaptiveRatio(std::size_t sentence_len, double min_ratio,
                    double max_ratio, std::size_t saturate_len)
{
    SPATTEN_ASSERT(min_ratio <= max_ratio, "min_ratio > max_ratio");
    if (sentence_len >= saturate_len)
        return max_ratio;
    // Log interpolation: redundancy grows roughly with log length.
    const double t =
        std::log(1.0 + static_cast<double>(sentence_len)) /
        std::log(1.0 + static_cast<double>(saturate_len));
    return min_ratio + (max_ratio - min_ratio) * std::clamp(t, 0.0, 1.0);
}

} // namespace spatten
