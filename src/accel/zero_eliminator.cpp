#include "accel/zero_eliminator.hpp"

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace spatten {

ZeroEliminateResult
ZeroEliminator::run(const std::vector<float>& input) const
{
    ZeroEliminateResult res;
    const std::size_t n = input.size();
    if (n == 0)
        return res;

    // Prefix count of zeros strictly before each element.
    std::vector<std::size_t> zero_cnt(n, 0);
    std::size_t zeros = 0;
    for (std::size_t i = 0; i < n; ++i) {
        zero_cnt[i] = zeros;
        if (input[i] == 0.0f)
            ++zeros;
    }

    // log(n)-stage shifter. Stage s shifts an element left by 2^s when
    // bit s of its zero_cnt is set. Working copy holds (value, count).
    std::vector<float> vals = input;
    std::vector<std::size_t> cnts = zero_cnt;
    res.stages = static_cast<std::size_t>(ceilLog2(n));
    for (std::size_t s = 0; s < res.stages; ++s) {
        const std::size_t dist = std::size_t{1} << s;
        std::vector<float> nvals(n, 0.0f);
        std::vector<std::size_t> ncnts(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
            if (vals[i] == 0.0f)
                continue;
            std::size_t target = i;
            if (cnts[i] & dist) {
                SPATTEN_ASSERT(i >= dist, "shift underflow");
                target = i - dist;
                ++res.shifts;
            }
            SPATTEN_ASSERT(nvals[target] == 0.0f,
                           "zero-eliminator collision at %zu", target);
            nvals[target] = vals[i];
            ncnts[target] = cnts[i];
        }
        vals.swap(nvals);
        cnts.swap(ncnts);
    }

    res.compacted.reserve(n - zeros);
    for (std::size_t i = 0; i + zeros < n; ++i)
        res.compacted.push_back(vals[i]);

    // Cross-check against the direct compaction (hardware == spec).
    std::size_t j = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (input[i] != 0.0f) {
            SPATTEN_ASSERT(res.compacted[j] == input[i],
                           "zero eliminator broke ordering at %zu", j);
            ++j;
        }
    }
    SPATTEN_ASSERT(j == res.compacted.size(), "zero eliminator lost items");
    return res;
}

Cycles
ZeroEliminator::latencyCycles(std::size_t n)
{
    // One cycle per shifter stage plus one for the prefix sum.
    return n <= 1 ? 1 : static_cast<Cycles>(ceilLog2(n)) + 1;
}

Cycles
ZeroEliminator::cascadeCycles(std::size_t n)
{
    // Eliminator latency paid per quick-select pass (~log n passes of
    // log n + 1 cycles, small against the streaming terms).
    return n <= 1 ? 0
                  : 4 * (static_cast<Cycles>(ceilLog2(n)) + 1);
}

StageTiming
ZeroEliminator::timing(const ExecutionContext& ctx) const
{
    StageTiming t;
    if (ctx.token_pruning && ctx.token_prune_ratio > 0.0)
        t.layer_cycles += cascadeCycles(ctx.survivorTokens());
    if (ctx.head_pruning && ctx.head_prune_ratio > 0.0)
        t.layer_cycles += cascadeCycles(ctx.alive_heads);
    return t;
}

ActivityCounts
ZeroEliminator::energy(const ExecutionContext&) const
{
    return {}; // Shift energy rides in the top-k comparator accounting.
}

StageTraffic
ZeroEliminator::traffic(const ExecutionContext&) const
{
    return {};
}

} // namespace spatten
