#!/usr/bin/env python3
"""Fixture suite for lint_determinism.py (ctest label: lint).

Every lint rule has a fixture pair in tests/lint_fixtures/: a
`trigger_*` file that must produce exactly the expected findings, and a
`clean_*` twin that must pass. The pairs ARE the lint's contract — a
rule change that silently widens or narrows a pattern fails here before
it can flag (or miss) real code.
"""

import sys
import unittest
from collections import Counter
from pathlib import Path

SCRIPTS = Path(__file__).resolve().parent
ROOT = SCRIPTS.parent
FIXTURES = ROOT / "tests" / "lint_fixtures"

sys.path.insert(0, str(SCRIPTS))
import lint_determinism  # noqa: E402


def run_lint(name: str):
    """Lint one fixture with all rules in scope; return Counter of rule
    ids."""
    path = FIXTURES / name
    findings = lint_determinism.lint_file(path, ROOT, force_scope=True)
    return Counter(f.rule for f in findings), findings


class FixturePairs(unittest.TestCase):
    # fixture -> exact expected {rule: count}
    EXPECTED = {
        "trigger_no_raw_random.cpp": {"no-raw-random": 2},
        "clean_no_raw_random.cpp": {},
        "trigger_no_wallclock.cpp": {"no-wallclock": 2},
        "clean_no_wallclock.cpp": {},
        "trigger_no_unordered_iter.cpp": {"no-unordered-iter": 1},
        "clean_no_unordered_iter.cpp": {},
        "trigger_no_fp_accum_iter.cpp": {"no-fp-accum-iter": 2},
        "clean_no_fp_accum_iter.cpp": {},
        "trigger_bad_suppression.cpp": {"bad-suppression": 1,
                                        "no-wallclock": 1},
        "clean_justified_suppression.cpp": {},
    }

    def test_every_fixture_matches_its_contract(self):
        for name, expected in self.EXPECTED.items():
            with self.subTest(fixture=name):
                got, findings = run_lint(name)
                self.assertEqual(
                    dict(got), expected,
                    f"{name}: findings were "
                    f"{[str(f) for f in findings] or 'none'}")

    def test_no_fixture_is_unaccounted_for(self):
        on_disk = {p.name for p in FIXTURES.glob("*.cpp")}
        self.assertEqual(on_disk, set(self.EXPECTED),
                         "every fixture needs a contract entry above")

    def test_findings_carry_line_numbers(self):
        _, findings = run_lint("trigger_no_raw_random.cpp")
        for f in findings:
            self.assertGreater(f.line, 0)
            self.assertIn("lint_fixtures", str(f.path))

    def test_scope_gating_without_force(self):
        # Outside src/sim|serve|accel|workload the RNG/wall-clock rules
        # stay quiet; the fixture dir is outside, so no findings.
        path = FIXTURES / "trigger_no_raw_random.cpp"
        findings = lint_determinism.lint_file(path, ROOT,
                                              force_scope=False)
        self.assertEqual(findings, [])


if __name__ == "__main__":
    unittest.main(verbosity=2)
