#include "core/pruning.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace spatten {

std::vector<std::size_t>
topkKeepOrder(const std::vector<float>& scores, std::size_t k)
{
    const std::size_t n = scores.size();
    k = std::min(k, n);
    if (k == 0)
        return {};
    if (k == n) {
        std::vector<std::size_t> all(n);
        for (std::size_t i = 0; i < n; ++i)
            all[i] = i;
        return all;
    }
    // nth_element on (value desc, index asc) finds the cut; then keep the
    // original order, which is what the hardware zero eliminator produces.
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i)
        idx[i] = i;
    std::nth_element(idx.begin(), idx.begin() + static_cast<long>(k - 1),
                     idx.end(), [&](std::size_t a, std::size_t b) {
                         if (scores[a] != scores[b])
                             return scores[a] > scores[b];
                         return a < b;
                     });
    idx.resize(k);
    std::sort(idx.begin(), idx.end());
    return idx;
}

namespace {

/** Survivor count when pruning @p alive elements by @p ratio. */
std::size_t
survivorCount(std::size_t alive, double ratio)
{
    if (ratio <= 0.0)
        return alive;
    ratio = std::min(ratio, 1.0);
    const double keep = static_cast<double>(alive) * (1.0 - ratio);
    const auto k = static_cast<std::size_t>(std::ceil(keep));
    return std::max<std::size_t>(k, 1); // never prune everything
}

} // namespace

CascadeTokenPruner::CascadeTokenPruner(std::size_t num_tokens)
{
    reset(num_tokens);
}

void
CascadeTokenPruner::reset(std::size_t num_tokens)
{
    alive_.resize(num_tokens);
    for (std::size_t i = 0; i < num_tokens; ++i)
        alive_[i] = i;
}

const std::vector<std::size_t>&
CascadeTokenPruner::pruneToRatio(const TokenImportanceAccumulator& acc,
                                 double ratio)
{
    return pruneToCount(acc, survivorCount(alive_.size(), ratio));
}

const std::vector<std::size_t>&
CascadeTokenPruner::pruneToCount(const TokenImportanceAccumulator& acc,
                                 std::size_t k)
{
    k = std::min(k, alive_.size());
    // Scores of currently-alive tokens, in alive order.
    std::vector<float> alive_scores(alive_.size());
    for (std::size_t i = 0; i < alive_.size(); ++i)
        alive_scores[i] = acc.score(alive_[i]);
    const std::vector<std::size_t> kept = topkKeepOrder(alive_scores, k);
    std::vector<std::size_t> next;
    next.reserve(kept.size());
    for (std::size_t pos : kept)
        next.push_back(alive_[pos]);
    alive_ = std::move(next);
    return alive_;
}

void
CascadeTokenPruner::addToken(std::size_t global_id)
{
    SPATTEN_ASSERT(alive_.empty() || global_id > alive_.back(),
                   "generated token id %zu must be past the end", global_id);
    alive_.push_back(global_id);
}

CascadeHeadPruner::CascadeHeadPruner(std::size_t num_heads)
{
    reset(num_heads);
}

void
CascadeHeadPruner::reset(std::size_t num_heads)
{
    alive_.resize(num_heads);
    for (std::size_t i = 0; i < num_heads; ++i)
        alive_[i] = i;
}

const std::vector<std::size_t>&
CascadeHeadPruner::pruneToRatio(const HeadImportanceAccumulator& acc,
                                double ratio)
{
    const std::size_t k = survivorCount(alive_.size(), ratio);
    std::vector<float> alive_scores(alive_.size());
    for (std::size_t i = 0; i < alive_.size(); ++i)
        alive_scores[i] = acc.score(alive_[i]);
    const std::vector<std::size_t> kept = topkKeepOrder(alive_scores, k);
    std::vector<std::size_t> next;
    next.reserve(kept.size());
    for (std::size_t pos : kept)
        next.push_back(alive_[pos]);
    alive_ = std::move(next);
    return alive_;
}

std::vector<std::size_t>
localValuePrune(const std::vector<float>& prob_row, double ratio)
{
    const std::size_t n = prob_row.size();
    if (ratio <= 0.0 || n == 0) {
        std::vector<std::size_t> all(n);
        for (std::size_t i = 0; i < n; ++i)
            all[i] = i;
        return all;
    }
    const std::size_t k = survivorCount(n, ratio);
    return topkKeepOrder(prob_row, k);
}

} // namespace spatten
