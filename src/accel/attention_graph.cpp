#include "accel/attention_graph.hpp"

#include <algorithm>
#include <cmath>

#include "accel/pipeline.hpp"
#include "common/logging.hpp"
#include "core/graph_transforms.hpp"

namespace spatten {

AttentionGraph::AttentionGraph(const SpAttenConfig& cfg,
                               const WorkloadSpec& workload,
                               const PruningPolicy& policy,
                               std::uint64_t request_seed)
    : workload_(workload),
      key_sram_({cfg.key_sram_kb, 768, true, 12.0}, "key_sram"),
      value_sram_({cfg.value_sram_kb, 768, true, 12.0}, "value_sram"),
      hbm_(cfg.hbm),
      xbar_({32, static_cast<std::size_t>(cfg.hbm.channels)}),
      fetcher_(hbm_, xbar_),
      qk_(cfg.qk),
      softmax_(cfg.softmax),
      topk_({cfg.topk_parallelism, 1024, 0x70ccULL ^ request_seed}),
      pv_(cfg.pv),
      graph_(cfg.core_freq_ghz, cfg.hbm.freq_ghz, cfg.energy),
      ctx_(makeExecutionContext(workload, policy, request_seed)),
      core_freq_ghz_(cfg.core_freq_ghz),
      energy_cfg_(cfg.energy)
{
    ctx_.max_context = cfg.max_context;
    // Contexts larger than one SRAM buffer are processed in K tiles:
    // each tile is loaded once and all queries stream against it, so K/V
    // are fetched once but Q is re-streamed per tile. The tile size
    // honors the smaller of the two SRAMs so an asymmetric config can
    // never be filled past a buffer's capacity.
    ctx_.sram_tokens = std::min(key_sram_.maxTokens(ctx_.d_head),
                                value_sram_.maxTokens(ctx_.d_head));
    SPATTEN_ASSERT(ctx_.sram_tokens >= 1,
                   "SRAMs cannot hold a single %zu-dim token",
                   ctx_.d_head);

    graph_.addMemoryStage(&fetcher_, [this](const StageTraffic& t) {
        if (t.sram_write_elems > 0) {
            key_sram_.recordWrites(t.sram_write_elems);
            value_sram_.recordWrites(t.sram_write_elems);
        }
    });
    graph_.addStage(&qk_, [this](const StageTraffic& t) {
        key_sram_.recordReads(t.sram_read_elems);
    });
    graph_.addStage(&softmax_);
    graph_.addStage(&topk_);
    graph_.addStage(&zero_eliminator_);
    graph_.addStage(&pv_, [this](const StageTraffic& t) {
        value_sram_.recordReads(t.sram_read_elems);
    });
    for (auto& t : makePolicyTransforms(workload.model, policy))
        graph_.addTransform(std::move(t));
}

void
AttentionGraph::runPass(std::size_t queries, std::size_t context_len,
                        bool generation)
{
    // Single-query generation runs through the layer-stepped path: the
    // memo short-circuits steady-state decode steps (repeated entering
    // context, unchanged relative HBM state) by replaying the recorded
    // pass, and batched decode interleaves these same steps layer-major
    // across sessions.
    if (generation && queries == 1) {
        const std::size_t layers = beginDecodePass(context_len);
        for (std::size_t l = 0; l < layers; ++l)
            stepDecodeLayer();
        finishDecodePass();
        return;
    }
    ctx_.beginPass(queries, context_len, generation);
    for (std::size_t l = 0; l < ctx_.num_layers; ++l) {
        const LayerCost cost = graph_.runLayer(ctx_);
        attention_flops_ += 2.0 * (cost.qk_macs + cost.pv_macs);
    }
}

std::size_t
AttentionGraph::beginDecodePass(std::size_t context_len)
{
    SPATTEN_ASSERT(!step_active_, "nested beginDecodePass()");
    if (memo_enabled_ && memo_.valid && memo_.context_len == context_len &&
        hbm_.timingStateEquals(memo_.pre, graph_.dramClock())) {
        replayPass();
        return 0; // Pass complete; finishDecodePass() is a no-op.
    }
    step_recording_ = memo_enabled_;
    if (step_recording_) {
        const Cycles base = graph_.dramClock();
        memo_.valid = false;
        memo_.context_len = context_len;
        memo_.pre = hbm_.captureTimingState(base);
        rec_base_ = {base, hbm_.bytesRead(), hbm_.bytesWritten(),
                     hbm_.rowActivations(), hbm_.requestsIssued(),
                     fetcher_.totalRequests()};
        memo_.layers.resize(ctx_.num_layers);
        memo_.flops_added.resize(ctx_.num_layers);
    }
    ctx_.beginPass(1, context_len, true);
    step_layer_ = 0;
    step_active_ = true;
    return ctx_.num_layers;
}

void
AttentionGraph::stepDecodeLayer()
{
    SPATTEN_ASSERT(step_active_ && step_layer_ < ctx_.num_layers,
                   "stepDecodeLayer() outside an open pass");
    const LayerCost cost = graph_.runLayer(
        ctx_, step_recording_ ? &memo_.layers[step_layer_] : nullptr);
    const double added = 2.0 * (cost.qk_macs + cost.pv_macs);
    if (step_recording_)
        memo_.flops_added[step_layer_] = added;
    attention_flops_ += added;
    ++step_layer_;
}

void
AttentionGraph::finishDecodePass()
{
    if (!step_active_)
        return; // The pass was replayed whole at begin.
    SPATTEN_ASSERT(step_layer_ == ctx_.num_layers,
                   "finishDecodePass() after %zu of %zu layers",
                   step_layer_, ctx_.num_layers);
    step_active_ = false;
    if (!step_recording_)
        return;
    memo_.post = hbm_.captureTimingState(rec_base_.base);
    memo_.d_bytes_read = hbm_.bytesRead() - rec_base_.bytes_read;
    memo_.d_bytes_written = hbm_.bytesWritten() - rec_base_.bytes_written;
    memo_.d_activations = hbm_.rowActivations() - rec_base_.activations;
    memo_.d_requests = hbm_.requestsIssued() - rec_base_.requests;
    memo_.d_fetch_requests =
        fetcher_.totalRequests() - rec_base_.fetch_requests;
    memo_.ctx_after = ctx_;
    memo_.valid = true;
}

void
AttentionGraph::replayPass()
{
    const Cycles base = graph_.dramClock();
    for (std::size_t l = 0; l < memo_.layers.size(); ++l) {
        graph_.replayLayer(memo_.layers[l]);
        attention_flops_ += memo_.flops_added[l];
    }
    hbm_.restoreTimingState(memo_.post, base);
    hbm_.addReplayedTraffic(memo_.d_bytes_read, memo_.d_bytes_written,
                            memo_.d_activations, memo_.d_requests);
    fetcher_.addReplayedRequests(memo_.d_fetch_requests);
    ctx_ = memo_.ctx_after;
    ++memo_replays_;
}

double
AttentionGraph::elapsedSeconds() const
{
    return graph_.elapsedNs() * 1e-9;
}

void
AttentionGraph::finalize(RunResult& res) const
{
    res.attention_flops = attention_flops_;

    // ---- Dense (unpruned fp32) reference for reduction factors ----
    const double d = static_cast<double>(workload_.model.d_head);
    const double h_total = static_cast<double>(workload_.model.num_heads);
    const double layers = static_cast<double>(workload_.model.num_layers);
    const double fp32_row = d * 4.0;
    const auto densePass = [&](double queries, double ctx) {
        res.attention_flops_dense +=
            2.0 * (queries * ctx * d + queries * ctx * d) * h_total *
            layers;
        res.dram_bytes_dense +=
            (ctx * fp32_row * 2.0 + queries * fp32_row) * h_total * layers;
    };
    if (!workload_.skip_summarization)
        densePass(static_cast<double>(workload_.summarize_len),
                  static_cast<double>(workload_.summarize_len));
    for (std::size_t t = 0; t < workload_.generate_len; ++t)
        densePass(1.0,
                  static_cast<double>(workload_.summarize_len + t + 1));

    // ---- Totals and energy ----
    const double core_ns = graph_.elapsedNs();
    res.cycles = static_cast<Cycles>(std::ceil(core_ns * core_freq_ghz_));
    res.seconds = core_ns * 1e-9;
    res.dram_bytes = static_cast<double>(hbm_.totalBytes());

    ActivityCounts act = graph_.activity();
    act.freq_ghz = core_freq_ghz_;
    act.cycles = static_cast<double>(res.cycles);
    act.sram_read_bytes = key_sram_.bytesRead() + value_sram_.bytesRead();
    act.sram_write_bytes =
        key_sram_.bytesWritten() + value_sram_.bytesWritten();
    act.dram_energy_pj = hbm_.energyPj();
    res.energy = EnergyModel(energy_cfg_).compute(act);

    // ---- Stat registry: aggregates + automatic per-stage breakdown ----
    hbm_.exportStats(res.stats);
    res.stats.set("pipeline.compute_bound_ns", graph_.computeBoundNs());
    res.stats.set("pipeline.memory_bound_ns", graph_.memoryBoundNs());
    res.stats.set("pipeline.summarize_seconds", res.summarize_seconds);
    res.stats.set("pipeline.generate_seconds", res.generate_seconds);
    res.stats.set("pipeline.effective_tflops", res.effectiveTflops());
    res.stats.set("pipeline.dram_reduction", res.dramReduction());
    res.stats.set("pipeline.compute_reduction", res.computeReduction());
    res.stats.set("activity.qk_macs", act.qk_macs);
    res.stats.set("activity.pv_macs", act.pv_macs);
    res.stats.set("activity.softmax_elems", act.softmax_elems);
    res.stats.set("activity.topk_comparisons", act.topk_comparisons);
    res.stats.set("crossbar.conflicts",
                  static_cast<double>(xbar_.totalConflicts()));
    res.stats.set("sram.key_bytes_read", key_sram_.bytesRead());
    res.stats.set("sram.value_bytes_read", value_sram_.bytesRead());
    res.stats.merge(graph_.stats());
}

} // namespace spatten
