#include "accel/fetcher.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace spatten {

FetchResult
QkvFetcher::gather(const GatherRequest& req, Cycles ready)
{
    FetchResult res;
    if (req.token_ids.empty())
        return res;
    SPATTEN_ASSERT(req.bytes_per_token > 0, "empty token vector");

    // Address generation + crossbar arbitration. Channel of each request
    // follows the HBM interleave mapping.
    const auto& cfg = hbm_.config();
    std::vector<std::size_t> channels;
    std::vector<HbmRequest> dram_reqs;
    channels.reserve(req.token_ids.size());
    dram_reqs.reserve(req.token_ids.size());
    for (std::size_t id : req.token_ids) {
        const std::uint64_t addr =
            req.base_addr +
            static_cast<std::uint64_t>(id) * req.bytes_per_token;
        channels.push_back(static_cast<std::size_t>(
            (addr / cfg.interleave_bytes) %
            static_cast<std::uint64_t>(cfg.channels)));
        dram_reqs.push_back({addr, req.bytes_per_token, false});
    }
    const CrossbarRouteResult route = xbar_.route(channels);
    // Crossbar runs at the DRAM command rate here; its drain time is
    // almost always hidden behind the data burst time.
    const Cycles issue_ready = ready + route.cycles;
    res.dram_cycles_done = hbm_.accessBatch(dram_reqs, issue_ready);
    res.bytes = static_cast<std::uint64_t>(req.token_ids.size()) *
                req.bytes_per_token;
    res.requests = req.token_ids.size();
    total_requests_ += res.requests;
    return res;
}

FetchResult
QkvFetcher::stream(std::uint64_t base_addr, std::uint64_t bytes,
                   Cycles ready)
{
    FetchResult res;
    if (bytes == 0)
        return res;
    res.dram_cycles_done = hbm_.access({base_addr, bytes, false}, ready);
    res.bytes = bytes;
    res.requests = 1;
    total_requests_ += 1;
    return res;
}

} // namespace spatten
