#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace spatten {

void
StatSet::add(const std::string& name, double delta)
{
    stats_[name] += delta;
    // Accumulating into an entry makes it a counter, whatever it was:
    // the kind follows the latest write style, exactly like the value.
    gauges_.erase(name);
}

void
StatSet::set(const std::string& name, double value)
{
    stats_[name] = value;
    gauges_.insert(name);
}

double
StatSet::get(const std::string& name) const
{
    const auto it = stats_.find(name);
    return it == stats_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string& name) const
{
    return stats_.count(name) > 0;
}

bool
StatSet::isGauge(const std::string& name) const
{
    return gauges_.count(name) > 0;
}

void
StatSet::merge(const StatSet& other)
{
    for (const auto& [name, value] : other.stats_) {
        if (other.gauges_.count(name) > 0)
            set(name, value);
        else
            add(name, value); // Also reclassifies a stale gauge mark.
    }
}

std::string
StatSet::toString() const
{
    std::string out;
    for (const auto& [name, value] : stats_)
        out += strfmt("%-40s = %.6g\n", name.c_str(), value);
    return out;
}

double
sortedQuantile(const std::vector<double>& sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double rank =
        std::clamp(q, 0.0, 1.0) * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

} // namespace spatten
