#include "nn/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "common/logging.hpp"
#include "common/prng.hpp"

namespace spatten {

namespace {

std::vector<std::size_t>
shuffledOrder(std::size_t n, Prng& prng)
{
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = n; i > 1; --i)
        std::swap(order[i - 1], order[prng.below(i)]);
    return order;
}

void
accumulateStats(PrunedRunStats& mean, const PrunedRunStats& s, double w)
{
    mean.tokens_kept_frac += s.tokens_kept_frac * w;
    mean.heads_kept_frac += s.heads_kept_frac * w;
    mean.avg_keys_frac += s.avg_keys_frac * w;
    mean.lsb_fraction += s.lsb_fraction * w;
}

} // namespace

double
trainClassifier(TransformerModel& model,
                const std::vector<ClassifyExample>& examples,
                std::size_t epochs, std::uint64_t shuffle_seed)
{
    SPATTEN_ASSERT(!examples.empty(), "no training examples");
    Prng prng(shuffle_seed);
    double last_epoch_loss = 0.0;
    for (std::size_t e = 0; e < epochs; ++e) {
        double loss_sum = 0.0;
        for (std::size_t i : shuffledOrder(examples.size(), prng)) {
            loss_sum += model.trainStepClassify(examples[i].ids,
                                                examples[i].label);
        }
        last_epoch_loss = loss_sum / static_cast<double>(examples.size());
    }
    return last_epoch_loss;
}

double
classifierAccuracy(const TransformerModel& model,
                   const std::vector<ClassifyExample>& examples)
{
    SPATTEN_ASSERT(!examples.empty(), "no eval examples");
    std::size_t correct = 0;
    for (const auto& ex : examples)
        correct += model.predictClass(ex.ids) == ex.label;
    return static_cast<double>(correct) /
           static_cast<double>(examples.size());
}

double
classifierAccuracyPruned(const TransformerModel& model,
                         const std::vector<ClassifyExample>& examples,
                         const PruningPolicy& policy,
                         PrunedRunStats* mean_stats)
{
    SPATTEN_ASSERT(!examples.empty(), "no eval examples");
    std::size_t correct = 0;
    PrunedRunStats mean;
    mean.tokens_kept_frac = mean.heads_kept_frac = mean.avg_keys_frac =
        mean.lsb_fraction = 0.0;
    const double w = 1.0 / static_cast<double>(examples.size());
    for (const auto& ex : examples) {
        PrunedRunStats s;
        correct += model.predictClassPruned(ex.ids, policy, &s) == ex.label;
        accumulateStats(mean, s, w);
    }
    if (mean_stats)
        *mean_stats = mean;
    return static_cast<double>(correct) /
           static_cast<double>(examples.size());
}

double
trainLm(TransformerModel& model, const std::vector<LmExample>& examples,
        std::size_t epochs, std::uint64_t shuffle_seed)
{
    SPATTEN_ASSERT(!examples.empty(), "no training examples");
    Prng prng(shuffle_seed);
    double last_epoch_loss = 0.0;
    for (std::size_t e = 0; e < epochs; ++e) {
        double loss_sum = 0.0;
        for (std::size_t i : shuffledOrder(examples.size(), prng))
            loss_sum += model.trainStepLm(examples[i].ids);
        last_epoch_loss = loss_sum / static_cast<double>(examples.size());
    }
    return last_epoch_loss;
}

double
lmMeanLoss(const TransformerModel& model,
           const std::vector<LmExample>& examples)
{
    SPATTEN_ASSERT(!examples.empty(), "no eval examples");
    double loss = 0.0;
    for (const auto& ex : examples)
        loss += model.lmLoss(ex.ids);
    return loss / static_cast<double>(examples.size());
}

double
lmMeanLossPruned(const TransformerModel& model,
                 const std::vector<LmExample>& examples,
                 const PruningPolicy& policy, PrunedRunStats* mean_stats)
{
    SPATTEN_ASSERT(!examples.empty(), "no eval examples");
    double loss = 0.0;
    PrunedRunStats mean;
    mean.tokens_kept_frac = mean.heads_kept_frac = mean.avg_keys_frac =
        mean.lsb_fraction = 0.0;
    const double w = 1.0 / static_cast<double>(examples.size());
    for (const auto& ex : examples) {
        PrunedRunStats s;
        loss += model.lmLossPruned(ex.ids, policy, &s);
        accumulateStats(mean, s, w);
    }
    if (mean_stats)
        *mean_stats = mean;
    return loss / static_cast<double>(examples.size());
}

} // namespace spatten
