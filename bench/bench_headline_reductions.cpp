/// Regenerates the §V-B headline numbers: DRAM access reduction (10.0x
/// average), computation reduction (2.1x), token+local-V pruning (1.9x
/// all / 3.8x GPT-2), head pruning (1.1x) and progressive quantization
/// (5.1x) contributions.
#include <cstdio>

#include "accel/spatten_accelerator.hpp"
#include "bench_util.hpp"
#include "workload/benchmarks.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Headline reductions (Abstract / §V-B)",
           "DRAM and computation reductions from each technique");

    SpAttenAccelerator accel;
    std::vector<double> dram_all, comp_all, dram_gpt, eff_bert, eff_gpt;
    std::vector<BenchRecord> records;
    for (const auto& b : paperBenchmarks()) {
        const RunResult r = accel.run(b.workload, b.policy);
        dram_all.push_back(r.dramReduction());
        comp_all.push_back(r.computeReduction());
        if (b.generative) {
            dram_gpt.push_back(r.dramReduction());
            eff_gpt.push_back(r.effectiveTflops());
        } else {
            eff_bert.push_back(r.effectiveTflops());
        }
        records.push_back(recordFromRun(b.workload.name, r));
    }
    writeBenchJson("headline_reductions", records);

    std::printf("%-44s %10s %10s\n", "metric", "measured", "paper");
    rule();
    std::printf("%-44s %9.1fx %10s\n", "DRAM access reduction (30-bench avg)",
                geomean(dram_all), "10.0x");
    std::printf("%-44s %9.1fx %10s\n", "DRAM access reduction (GPT-2 only)",
                geomean(dram_gpt), "~10x");
    std::printf("%-44s %9.1fx %10s\n", "Computation reduction (avg)",
                geomean(comp_all), "2.1x");
    std::printf("%-44s %9.2f %10s\n", "Effective TFLOPS on BERT",
                mean(eff_bert), "1.61");
    std::printf("%-44s %9.2f %10s\n", "Effective TFLOPS on GPT-2",
                mean(eff_gpt), "0.43");

    // Technique-by-technique DRAM contributions on the GPT-2 suite.
    const auto reduction_with = [&](PruningPolicy pol) {
        std::vector<double> v;
        for (const auto& b : gptBenchmarks()) {
            const RunResult r = accel.run(b.workload, pol);
            v.push_back(r.dramReduction());
        }
        return geomean(v);
    };
    PruningPolicy base = gptBenchmarks().front().policy;

    PruningPolicy token_only = PruningPolicy::disabled();
    token_only.token_pruning = true;
    token_only.token_avg_ratio = base.token_avg_ratio;
    token_only.local_value_pruning = true;
    token_only.local_v_ratio = base.local_v_ratio;
    // Isolate against a 32-bit dense reference by disabling quantization:
    // dramReduction() is vs fp32, so divide out the 12-bit static factor.
    const double static12 =
        reduction_with(PruningPolicy::disabled()); // = 32/12
    std::printf("%-44s %9.1fx %10s\n",
                "token + local-V pruning, GPT-2 (DRAM)",
                reduction_with(token_only) / static12, "3.8x");

    PruningPolicy head_only = PruningPolicy::disabled();
    head_only.head_pruning = true;
    head_only.head_avg_ratio = base.head_avg_ratio;
    std::printf("%-44s %9.2fx %10s\n", "head pruning, GPT-2 (DRAM)",
                reduction_with(head_only) / static12, "1.1x");

    PruningPolicy quant_only = PruningPolicy::disabled();
    quant_only.pq = base.pq;
    quant_only.lsb_fraction = base.lsb_fraction;
    std::printf("%-44s %9.1fx %10s\n",
                "progressive quantization, GPT-2 (DRAM vs fp32)",
                reduction_with(quant_only), "5.1x");
    rule();
    std::printf("All reductions preserve accuracy per the Fig. 21 "
                "trade-off experiments (bench_fig21_accuracy).\n");
    return 0;
}
