/**
 * @file
 * Q-K-V fetcher (Fig. 8 module 3): generates DRAM addresses for the
 * surviving tokens' Q/K/V vectors, routes them through the crossbar and
 * issues them to HBM. Supports the progressive-quantization split layout
 * (MSB plane fetched eagerly, LSB plane on demand) via per-plane base
 * addresses.
 */
#ifndef SPATTEN_ACCEL_FETCHER_HPP
#define SPATTEN_ACCEL_FETCHER_HPP

#include <cstdint>
#include <vector>

#include "accel/crossbar.hpp"
#include "hbm/hbm.hpp"
#include "sim/clock.hpp"
#include "sim/stage_model.hpp"

namespace spatten {

/** A gather of token vectors from one tensor plane. */
struct GatherRequest
{
    std::uint64_t base_addr = 0;        ///< Plane base address.
    std::vector<std::size_t> token_ids; ///< Surviving token indices.
    std::size_t bytes_per_token = 96;   ///< D * bits / 8 (64 x 12b = 96 B).
};

/** Timing/energy outcome of a gather. */
struct FetchResult
{
    Cycles dram_cycles_done = 0; ///< DRAM-clock completion cycle.
    std::uint64_t bytes = 0;
    std::size_t requests = 0;
};

/** The fetcher: address generation + crossbar + HBM. */
class QkvFetcher : public MemoryStage
{
  public:
    QkvFetcher(HbmModel& hbm, Crossbar& xbar) : hbm_(hbm), xbar_(xbar) {}

    // StageModel/MemoryStage: per layer, every alive head streams its K
    // plane (eager width), the kept V rows, and the Q rows once per SRAM
    // K-tile; the expected LSB-plane refetch rides on top. issue()
    // realizes the streams against the crossbar + HBM and returns the
    // DRAM completion cycle; traffic() prices the same plan statically.
    std::string stageName() const override { return "fetcher"; }
    StageTiming timing(const ExecutionContext& ctx) const override;
    ActivityCounts energy(const ExecutionContext& ctx) const override;
    StageTraffic traffic(const ExecutionContext& ctx) const override;
    Cycles issue(const ExecutionContext& ctx, Cycles start) override;

    /**
     * Issue a gather starting at DRAM cycle @p ready.
     * Each surviving token becomes one request of bytes_per_token at
     * base + id * bytes_per_token; contiguity across ids is exploited by
     * the HBM row buffer automatically.
     */
    FetchResult gather(const GatherRequest& req, Cycles ready);

    /** Contiguous stream fetch (e.g. FC weights in SpAtten-e2e). */
    FetchResult stream(std::uint64_t base_addr, std::uint64_t bytes,
                       Cycles ready);

    std::size_t totalRequests() const { return total_requests_; }

    /** Advance the request counter by a replayed pass's delta (the
     *  decode-step memo re-applies a recorded pass's effects instead of
     *  re-issuing its streams). */
    void addReplayedRequests(std::size_t n) { total_requests_ += n; }

  private:
    HbmModel& hbm_;
    Crossbar& xbar_;
    std::size_t total_requests_ = 0;
};

} // namespace spatten

#endif // SPATTEN_ACCEL_FETCHER_HPP
