/**
 * @file
 * Trainable synthetic NLP tasks substituting for GLUE / LM datasets
 * (which we cannot ship). Both tasks have controllable token redundancy,
 * the property cascade token pruning exploits:
 *
 * - KeywordTask: sentence-classification where the label depends on a
 *   few keyword tokens buried in filler words (mimics SST-2 sentiment
 *   cues amid function words, Fig. 1/22).
 * - CopyLmTask: causal LM where payload symbols must be copied after a
 *   separator while random filler tokens in between carry no information
 *   (mimics LM contexts where few tokens matter, Fig. 23).
 */
#ifndef SPATTEN_WORKLOAD_SYNTHETIC_TASKS_HPP
#define SPATTEN_WORKLOAD_SYNTHETIC_TASKS_HPP

#include <string>
#include <vector>

#include "nn/trainer.hpp"

namespace spatten {

/** Configuration of the keyword-classification task. */
struct KeywordTaskConfig
{
    std::size_t num_fillers = 24;       ///< Redundant vocabulary items.
    std::size_t keywords_per_class = 4; ///< Discriminative tokens.
    std::size_t num_classes = 2;
    std::size_t seq_len = 24;
    std::size_t keywords_per_sentence = 3;
    /// Distractor keywords of a *different* class per sentence. With
    /// distractors the label is the majority keyword class, so pruning
    /// keywords away can flip the prediction — this is what gives the
    /// Fig. 21 curves their degradation knee.
    std::size_t minority_keywords = 0;
    std::uint64_t seed = 11;
};

/** Sentence classification driven by sparse keywords. */
class KeywordTask
{
  public:
    explicit KeywordTask(KeywordTaskConfig cfg = KeywordTaskConfig{});

    std::size_t vocabSize() const;
    std::size_t numClasses() const { return cfg_.num_classes; }
    std::size_t seqLen() const { return cfg_.seq_len; }

    /** Generate @p n labeled sentences. */
    std::vector<ClassifyExample> sample(std::size_t n);

    /** True if @p id is a class keyword (not a filler). */
    bool isKeyword(std::size_t id) const;

    /** Human-readable token string (for the Fig. 22 visualization). */
    std::string tokenName(std::size_t id) const;

    const KeywordTaskConfig& config() const { return cfg_; }

  private:
    KeywordTaskConfig cfg_;
    Prng prng_;
};

/** Configuration of the copy language-modeling task. */
struct CopyLmTaskConfig
{
    std::size_t num_symbols = 12;  ///< Copyable payload alphabet.
    std::size_t num_fillers = 12;  ///< Uninformative noise tokens.
    std::size_t payload_len = 5;   ///< Symbols to copy.
    std::size_t filler_gap = 2;    ///< Fillers between payload symbols.
    std::uint64_t seed = 13;
};

/**
 * Causal LM task: [BOS, s1, f.., s2, f.., ..., SEP, s1, s2, ...].
 * After SEP the payload must be reproduced; fillers are random and
 * irreducible, so the loss improvement lives entirely on the copy half.
 */
class CopyLmTask
{
  public:
    explicit CopyLmTask(CopyLmTaskConfig cfg = CopyLmTaskConfig{});

    std::size_t vocabSize() const;
    std::size_t seqLen() const;

    std::vector<LmExample> sample(std::size_t n);

    /** True if token @p id is a payload symbol. */
    bool isSymbol(std::size_t id) const;

    const CopyLmTaskConfig& config() const { return cfg_; }

  private:
    CopyLmTaskConfig cfg_;
    Prng prng_;
};

} // namespace spatten

#endif // SPATTEN_WORKLOAD_SYNTHETIC_TASKS_HPP
