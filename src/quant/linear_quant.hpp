/**
 * @file
 * Linear symmetric quantization (the scheme SpAtten uses for QKV inputs
 * and FC weights, §III-D). A tensor is quantized to signed integers with a
 * single power-agnostic scale: q = clamp(round(x / scale)), x' = q * scale.
 */
#ifndef SPATTEN_QUANT_LINEAR_QUANT_HPP
#define SPATTEN_QUANT_LINEAR_QUANT_HPP

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace spatten {

/** A linearly, symmetrically quantized tensor. */
struct QuantizedTensor
{
    Shape shape;                 ///< Logical shape of the tensor.
    std::vector<std::int32_t> q; ///< Quantized integer codes.
    float scale = 1.0f;          ///< Dequantization scale.
    int bits = 8;                ///< Total bitwidth (including sign).

    std::size_t numel() const { return q.size(); }

    /** Smallest representable code. */
    std::int32_t qmin() const { return -(1 << (bits - 1)); }
    /** Largest representable code. */
    std::int32_t qmax() const { return (1 << (bits - 1)) - 1; }
};

namespace quant {

/**
 * Quantize @p x to @p bits with a scale chosen so the max-abs value maps to
 * the largest code. @pre 2 <= bits <= 16.
 */
QuantizedTensor quantize(const Tensor& x, int bits);

/** Quantize with an externally chosen scale (e.g. shared across tensors). */
QuantizedTensor quantizeWithScale(const Tensor& x, int bits, float scale);

/** Reconstruct the fp32 tensor q * scale. */
Tensor dequantize(const QuantizedTensor& qt);

/** Round-trip helper: dequantize(quantize(x, bits)). */
Tensor fakeQuantize(const Tensor& x, int bits);

/**
 * Scale such that max|x| maps onto the top code of @p bits.
 * Returns 1.0 for an all-zero tensor.
 */
float chooseScale(const Tensor& x, int bits);

} // namespace quant
} // namespace spatten

#endif // SPATTEN_QUANT_LINEAR_QUANT_HPP
