// Fixture: clean twin of trigger_no_wallclock. Simulated time advances
// through an explicit cycle clock; identifiers containing 'time' or
// 'clock' (runtime(), clock_divider) must not trip the matcher.
#include <cstdint>

namespace fixture {

struct SimClock {
    std::uint64_t cycles = 0;
    void advance(std::uint64_t n) { cycles += n; }
};

std::uint64_t runtime(const SimClock& clock_divider)
{
    return clock_divider.cycles;
}

double arrivalStamp(SimClock& clk)
{
    clk.advance(1);
    return static_cast<double>(clk.cycles);
}

} // namespace fixture
