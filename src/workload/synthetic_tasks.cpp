#include "workload/synthetic_tasks.hpp"

#include <algorithm>
#include <vector>

#include "common/logging.hpp"

namespace spatten {

namespace {

// Filler words used only for visualization output.
const char* kFillerWords[] = {
    "the", "a",  "of",   "is",    "it",   "and",  "to",  "in",
    "that", "as", "was",  "with",  "for",  "on",   "are", "this",
    "be",  "at", "by",   "or",    "an",   "so",   "its", "from",
};

const char* kPositiveWords[] = {"wonderful", "admire", "perfect",
                                "delight"};
const char* kNegativeWords[] = {"terrible", "boring", "awful", "dull"};

} // namespace

KeywordTask::KeywordTask(KeywordTaskConfig cfg)
    : cfg_(cfg), prng_(cfg.seed)
{
    SPATTEN_ASSERT(cfg_.num_classes >= 2, "need >= 2 classes");
    SPATTEN_ASSERT(cfg_.keywords_per_sentence >= 1 &&
                       cfg_.keywords_per_sentence + cfg_.minority_keywords <
                           cfg_.seq_len,
                   "keyword count out of range");
    SPATTEN_ASSERT(cfg_.minority_keywords < cfg_.keywords_per_sentence,
                   "minority must stay a strict minority");
}

std::size_t
KeywordTask::vocabSize() const
{
    return cfg_.num_fillers + cfg_.num_classes * cfg_.keywords_per_class;
}

bool
KeywordTask::isKeyword(std::size_t id) const
{
    return id >= cfg_.num_fillers && id < vocabSize();
}

std::string
KeywordTask::tokenName(std::size_t id) const
{
    if (id < cfg_.num_fillers) {
        const std::size_t n = sizeof(kFillerWords) / sizeof(char*);
        return kFillerWords[id % n];
    }
    const std::size_t k = id - cfg_.num_fillers;
    const std::size_t cls = k / cfg_.keywords_per_class;
    const std::size_t idx = k % cfg_.keywords_per_class;
    if (cls == 0)
        return kPositiveWords[idx % 4];
    if (cls == 1)
        return kNegativeWords[idx % 4];
    return strfmt("kw%zu_%zu", cls, idx);
}

std::vector<ClassifyExample>
KeywordTask::sample(std::size_t n)
{
    std::vector<ClassifyExample> out;
    out.reserve(n);
    for (std::size_t e = 0; e < n; ++e) {
        ClassifyExample ex;
        ex.label = prng_.below(cfg_.num_classes);
        ex.ids.resize(cfg_.seq_len);
        // Fill with random fillers.
        for (auto& id : ex.ids)
            id = prng_.below(cfg_.num_fillers);
        // Place the label's keywords at distinct random positions, then
        // minority-class distractors at other positions (majority vote
        // decides the label).
        std::vector<std::size_t> positions(cfg_.seq_len);
        for (std::size_t i = 0; i < cfg_.seq_len; ++i)
            positions[i] = i;
        for (std::size_t i = cfg_.seq_len; i > 1; --i)
            std::swap(positions[i - 1], positions[prng_.below(i)]);
        std::size_t slot = 0;
        for (std::size_t k = 0; k < cfg_.keywords_per_sentence; ++k) {
            const std::size_t kw =
                cfg_.num_fillers + ex.label * cfg_.keywords_per_class +
                prng_.below(cfg_.keywords_per_class);
            ex.ids[positions[slot++]] = kw;
        }
        if (cfg_.minority_keywords > 0) {
            std::size_t other = prng_.below(cfg_.num_classes - 1);
            if (other >= ex.label)
                ++other;
            for (std::size_t k = 0; k < cfg_.minority_keywords; ++k) {
                const std::size_t kw =
                    cfg_.num_fillers + other * cfg_.keywords_per_class +
                    prng_.below(cfg_.keywords_per_class);
                ex.ids[positions[slot++]] = kw;
            }
        }
        out.push_back(std::move(ex));
    }
    return out;
}

CopyLmTask::CopyLmTask(CopyLmTaskConfig cfg) : cfg_(cfg), prng_(cfg.seed)
{
    SPATTEN_ASSERT(cfg_.payload_len >= 1, "payload required");
}

std::size_t
CopyLmTask::vocabSize() const
{
    // symbols + fillers + BOS + SEP.
    return cfg_.num_symbols + cfg_.num_fillers + 2;
}

std::size_t
CopyLmTask::seqLen() const
{
    // BOS + payload interleaved with fillers + SEP + copy.
    return 1 + cfg_.payload_len * (1 + cfg_.filler_gap) + 1 +
           cfg_.payload_len;
}

bool
CopyLmTask::isSymbol(std::size_t id) const
{
    return id < cfg_.num_symbols;
}

std::vector<LmExample>
CopyLmTask::sample(std::size_t n)
{
    const std::size_t bos = cfg_.num_symbols + cfg_.num_fillers;
    const std::size_t sep = bos + 1;
    std::vector<LmExample> out;
    out.reserve(n);
    for (std::size_t e = 0; e < n; ++e) {
        LmExample ex;
        ex.ids.push_back(bos);
        std::vector<std::size_t> payload(cfg_.payload_len);
        for (auto& s : payload)
            s = prng_.below(cfg_.num_symbols);
        for (std::size_t s : payload) {
            ex.ids.push_back(s);
            for (std::size_t f = 0; f < cfg_.filler_gap; ++f)
                ex.ids.push_back(cfg_.num_symbols +
                                 prng_.below(cfg_.num_fillers));
        }
        ex.ids.push_back(sep);
        for (std::size_t s : payload)
            ex.ids.push_back(s);
        SPATTEN_ASSERT(ex.ids.size() == seqLen(), "copy task length");
        out.push_back(std::move(ex));
    }
    return out;
}

} // namespace spatten
