/**
 * @file
 * Iteration-level continuous-batching scheduler over a pool of simulated
 * accelerators.
 *
 * The scheduler consumes an arrival trace (workload/arrival_trace.hpp)
 * and serves it the way a production LLM endpoint does: requests arrive
 * over simulated time, are sharded onto a pool of simulated accelerators
 * (round-robin, least-loaded, or capability-aware), and each accelerator
 * runs iterations that interleave prefill passes of newly admitted
 * requests with one decode step of every in-flight request — tokens
 * leave the batch one iteration at a time, and finished requests free
 * their slot for queued arrivals (continuous batching, not one-shot
 * batches). The chunking knobs (prefill_chunk_tokens,
 * iteration_token_budget) split long prompt passes into
 * scheduler-visible chunks mixed with the resident decode steps
 * (Sarathi-style stall-free batching), so one huge admission no longer
 * stalls every resident's next token for a whole monolithic prefill;
 * with both at their 0 defaults the iteration loop is bit-identical to
 * the monolithic-prefill scheduler.
 *
 * The pool is *heterogeneous*: each slot is an AcceleratorBackend
 * (serve/accelerator_backend.hpp) — a SpAttenAccelerator whose sessions
 * carry the cascade-pruned KV survivor count across steps, or one of
 * the baseline adapters (A3, MNNFast, CPU/GPU platforms;
 * baselines/baseline_backends.hpp) whose dense KV grows one token per
 * step. The legacy (SpAttenConfig, ContinuousBatchConfig) constructor
 * builds an all-SpAtten fleet and is bit-identical to the
 * pre-abstraction scheduler at every thread count.
 *
 * Scheduling is KV-capacity-aware: every accelerator owns a KvPool
 * (serve/kv_pool.hpp) whose byte budget derives from the HBM capacity
 * (or an explicit override). A request is only admitted when its prompt
 * KV fits the pool; after every pass its reservation is resized to the
 * cascade-pruned survivor count, so pruning directly raises admissible
 * concurrency. When a decoding request cannot grow its cache, the
 * lowest-priority (then most-recently-admitted) resident request is
 * preempted vLLM-recompute-style: blocks released, emitted tokens
 * discarded, request re-queued. Queue order is a policy: FIFO,
 * priority (descending), or shortest-prompt-first.
 *
 * Determinism contract (pinned by tests/test_continuous_scheduler.cpp):
 * the report is a pure function of (config, trace). Host worker threads
 * only parallelize the independent per-session step simulations inside
 * one iteration; the single-threaded coordinator makes every admission
 * and preemption decision and applies step results in admission order,
 * so every timestamp, metric, and per-request result is bit-identical
 * at any num_threads — including under preemption. Per-request
 * *service* results (step costs, KV trajectory, cycles, energy) depend
 * only on (config, workload, policy, seed) — never on placement — so
 * while no preemption occurs they are also bit-identical across
 * accelerator shard counts; a preempted request's service time
 * additionally includes its recomputed work, which does depend on where
 * capacity pressure materialized. Only the queueing metrics (TTFT,
 * goodput) respond to the pool size.
 */
#ifndef SPATTEN_SERVE_CONTINUOUS_BATCH_SCHEDULER_HPP
#define SPATTEN_SERVE_CONTINUOUS_BATCH_SCHEDULER_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "accel/pipeline.hpp"
#include "hbm/hbm.hpp"
#include "serve/accelerator_backend.hpp"
#include "serve/kv_pool.hpp"
#include "serve/request_state.hpp"
#include "workload/arrival_trace.hpp"

namespace spatten {

/** How arriving requests are spread across the accelerator pool. */
enum class ShardPolicy
{
    /// Request i is statically pinned to accelerator i mod N.
    RoundRobin,
    /// Requests wait in one shared queue; the accelerator with the
    /// earliest simulated time and a free slot pulls the best eligible
    /// entry under the queue policy (classic least-loaded /
    /// join-idle-queue dispatch).
    LeastLoaded,
    /// Least-loaded with capability affinity for heterogeneous fleets:
    /// long prompts (summarize_len >= long_prompt_threshold) wait in a
    /// queue only cascade-pruning backends (SpAtten) pull from — their
    /// pruned KV makes heavy prompts cheap to keep resident — while
    /// short prompts wait in a queue every backend pulls from; pruning
    /// backends drain their long queue first. With no pruning backend
    /// in the fleet this degrades to LeastLoaded.
    CapabilityAware,
};

/** Order in which queued requests are admitted. */
enum class QueuePolicy
{
    /// Arrival order (ties by id) — the classic fair baseline.
    Fifo,
    /// Highest TracedRequest::priority first; FIFO within a level.
    Priority,
    /// Smallest prompt first (SJF on the prefill cost proxy): minimizes
    /// mean TTFT at the price of starving long prompts under load.
    ShortestPromptFirst,
};

/** Scheduler configuration. */
struct ContinuousBatchConfig
{
    std::size_t num_accelerators = 1;
    /// Max concurrent sessions per accelerator iteration (the continuous
    /// batch width).
    std::size_t max_active = 8;
    ShardPolicy shard = ShardPolicy::LeastLoaded;
    QueuePolicy queue = QueuePolicy::Fifo;
    /// Host threads for the per-iteration session steps; 0 = one per
    /// hardware thread. Never affects simulated results.
    std::size_t num_threads = 0;
    /// SLO for goodput accounting: a finished request counts as good
    /// when its TTFT <= slo_ttft_s and its *per-request mean* ITL
    /// (ServedRequest::avgItlSeconds, not the pooled percentiles) is
    /// <= slo_itl_s. Requests with fewer than two tokens have no
    /// inter-token gaps and therefore auto-pass the ITL half of the
    /// SLO — a deliberate semantic (there is no ITL to violate), made
    /// explicit here and pinned by test_continuous_scheduler.cpp.
    double slo_ttft_s = 50e-3;
    double slo_itl_s = 2e-3;

    /// Shared-prefix KV caching (serve/kv_pool.hpp): admissions whose
    /// prompt_tokens share a cached block prefix map those blocks
    /// copy-free, are charged only for their non-shared tail, and skip
    /// the shared tokens' prefill compute
    /// (BackendSession::prefillWithCachedPrefix). Off by default:
    /// legacy configs and traces without prompt content stay
    /// bit-identical to the pre-caching scheduler.
    bool enable_prefix_caching = false;

    /// Per-accelerator KV byte budget; 0 derives each accelerator's
    /// budget from its backend's capacityBytes() (the HBM stack
    /// capacity for SpAtten), which for these model sizes never binds —
    /// set a small explicit budget to study the memory-pressure regime.
    /// A non-zero value applies uniformly to every fleet slot (the
    /// "same KV budget" comparison the paper's Table III implies).
    std::uint64_t kv_capacity_bytes = 0;
    /// KV allocation granularity in tokens (paged-KV block size).
    std::size_t kv_block_tokens = 16;

    /// Tiered KV memory (Hybrid2-style; hbm/hbm.hpp): each
    /// accelerator's pool gains a far-memory DRAM cold tier of
    /// far_memory.capacityBytes() bytes. Cold prefix-cache blocks
    /// demote there instead of being dropped and promote back on a
    /// prefix re-reference; demotions are asynchronous (bytes + energy
    /// only, off the critical path), while each admission's promotion
    /// burst charges far_memory.transferSeconds() to that request's
    /// prefill timeline — a DRAM hit stays cheaper than recomputing
    /// the prefix but dearer than an HBM hit. Migration energy is
    /// priced at EnergyConfig::far_bit_energy_pj per bit and lands in
    /// ServeReport::migration_energy_j / total_energy_j. The default
    /// (capacity_gb == 0) disables tiering; every scheduler result is
    /// then bit-identical to the single-tier pool.
    FarMemoryConfig far_memory;

    /// CapabilityAware only: prompts at least this long are routed to
    /// cascade-pruning backends.
    std::size_t long_prompt_threshold = 256;

    // ---- Chunked prefill (Sarathi-style stall-free batching) ----
    /// Max prompt tokens one prefill chunk processes per iteration.
    /// 0 = no per-chunk cap. With both chunking knobs 0 prefill is
    /// monolithic — one whole-prompt pass in the admission iteration,
    /// bit-identical to the pre-chunking scheduler (and chunk sizes
    /// >= every prompt are bit-identical too: a chunk covering the
    /// whole remaining prompt takes the legacy prefill path exactly).
    /// Splitting caps how long one admission can stall every resident
    /// decoder's next token, trading a later TTFT for the prefilling
    /// request against a tighter ITL tail for everyone else.
    std::size_t prefill_chunk_tokens = 0;
    /// Per-iteration token budget across one accelerator's batch: each
    /// resident decode step costs one token, and prefill work is capped
    /// at the remainder (decode steps are never skipped — residents
    /// always advance, which is what keeps the ITL tail flat). Prompt
    /// passes are granted to un-prefilled residents in admission order:
    /// whole prompts that fit the remaining budget run as ordinary
    /// prefills, and at most one *partial* chunk is issued per
    /// iteration. 0 = unlimited. Backends without the chunked_prefill
    /// capability always prefill whole prompts; the budget only defers
    /// when they start.
    std::size_t iteration_token_budget = 0;

    /// Admission skip-ahead bound for the non-FIFO queue policies: when
    /// the best eligible candidate's prompt KV does not fit the pool,
    /// try up to this many next-best eligible candidates before
    /// declaring admission blocked for the iteration — a huge
    /// high-priority head no longer starves small requests that would
    /// fit beside the residents. 0 = strict head-of-line blocking (the
    /// legacy behavior). FIFO never skips regardless of this knob:
    /// strict arrival-order admission is its contract (pinned by
    /// tests/test_chunked_prefill.cpp).
    std::size_t admission_skip_ahead = 0;

    /// Route iterations whose work list is decode-only through the
    /// backend's batched entry point
    /// (AcceleratorBackend::stepDecodeBatch) in ONE call instead of
    /// one thread-pool job per resident: SpAtten advances every lane
    /// layer-major through one stage-graph traversal, and memoized
    /// steady-state steps make the per-job rendezvous the dominant
    /// cost this removes. Sessions share no state, so results are
    /// bit-identical either way (pinned by
    /// tests/test_batched_decode.cpp); disable only for A/B
    /// measurement. Mixed prefill+decode iterations always use the
    /// per-job pool.
    bool batched_decode = true;
};

/** Aggregated outcome of serving one trace. */
struct ServeReport
{
    std::vector<ServedRequest> requests; ///< In trace order.

    double makespan_s = 0;    ///< Last token emission time.
    double ttft_p50_s = 0;
    double ttft_p99_s = 0;
    /// Pooled ITL percentiles: over the concatenated inter-token gaps
    /// of every request. A 128-token request contributes 64x the gaps
    /// of a 2-token one, so these over-weight long requests — they
    /// answer "how late is a typical *token*", not "how bad is a
    /// typical *request*'s tail". The req_itl_p99_* fields below
    /// aggregate per-request tails with equal weight per request. The
    /// SLO goodput check uses neither: it tests each request's own
    /// mean ITL (see ContinuousBatchConfig::slo_itl_s).
    double itl_p50_s = 0;
    double itl_p99_s = 0;
    /// Distribution, across requests with >= 2 tokens, of each
    /// request's own ITL p99 (ServedRequest::itlP99Seconds): the
    /// per-request tail aggregate the pooled percentiles cannot
    /// express (equal weight per request, not per token).
    double req_itl_p99_p50_s = 0;
    double req_itl_p99_p99_s = 0;
    /// Queueing-delay percentiles over all requests (admit_s −
    /// arrival_s, the *final* admission after any preemptions):
    /// chunked prefill changes when prompts run, so its effect on
    /// admission latency is visible here, not just in TTFT.
    double queue_delay_p50_s = 0;
    double queue_delay_p99_s = 0;
    double throughput_rps = 0; ///< Finished requests per simulated second.
    double goodput_rps = 0;    ///< SLO-meeting requests per simulated second.
    std::size_t slo_met = 0;   ///< Requests that met both SLOs.
    double tokens_per_s = 0;
    std::size_t total_tokens = 0;

    std::vector<double> accel_busy_s;  ///< Busy seconds per accelerator.
    /// busy / (makespan - that accelerator's first routable arrival):
    /// utilization over the window in which work could exist for it, so
    /// idle lead-in before any demand (the whole trace's start, or a
    /// round-robin-pinned request arriving late) does not dilute it.
    std::vector<double> accel_util;
    std::vector<std::size_t> accel_requests; ///< Requests served per accel.

    /// Sum of per-request simulated cycles, PLUS the cycles of
    /// preempted incarnations whose outputs were discarded — the
    /// accelerator burned them, so they exceed the sum over
    /// requests[i].sim on memory-capped runs with preemptions.
    /// Heterogeneous-fleet caveat: each backend counts cycles in its
    /// own clock domain (every stock backend is 1 GHz-equivalent —
    /// SpAtten's default core clock, A3/MNNFast's freq_ghz, and the
    /// platforms' ns-as-cycles — but a reconfigured fleet can mix
    /// units; the seconds-based metrics are always commensurable).
    double total_cycles = 0;
    double total_energy_j = 0; ///< Includes preempted work, as above.
    double total_flops = 0;    ///< Includes preempted work, as above.
    /// Batch-wide dense bytes / fetched bytes. Fetched includes
    /// preempted incarnations' traffic with no dense counterpart, so
    /// preemption overhead lowers the effective reduction.
    double dram_reduction = 1;

    // ---- Fleet composition ----
    /// Backend name of each fleet slot ("spatten", "a3", ...).
    std::vector<std::string> accel_names;

    // ---- KV-capacity / preemption accounting ----
    std::size_t preemptions = 0;      ///< Total evictions across the run.
    std::size_t recompute_tokens = 0; ///< Tokens discarded and re-decoded.
    std::size_t peak_concurrency = 0; ///< Max requests resident at the
                                      ///< same *simulated* time across
                                      ///< the whole pool (preempted
                                      ///< incarnations count while they
                                      ///< were resident).
    /// The uniform per-accel budget (0 when each slot derives its own
    /// from the backend; see accel_kv_capacity_bytes for the per-slot
    /// effective budgets).
    std::uint64_t kv_capacity_bytes = 0;
    std::vector<std::uint64_t> accel_kv_capacity_bytes; ///< Per slot.
    /// Peak pool occupancy. With prefix caching on this includes cold
    /// cached blocks (resident but reclaimable), matching what the
    /// device actually holds.
    std::vector<std::uint64_t> kv_peak_bytes;
    std::vector<double> kv_mean_bytes; ///< Time-weighted mean occupancy
                                       ///< over each accel's busy time.

    // ---- Shared-prefix cache accounting (enable_prefix_caching) ----
    std::size_t prefix_cache_hits = 0; ///< Admissions that mapped >= 1
                                       ///< cached block copy-free.
    /// Prompt tokens whose prefill compute was skipped (after the
    /// recompute-last-token cap), across all admissions.
    std::size_t prefix_cached_tokens = 0;
    /// KV bytes mapped copy-free at admission — bytes the pool did NOT
    /// charge again thanks to sharing (block-rounded).
    std::uint64_t prefix_shared_bytes = 0;
    std::size_t cow_copied_blocks = 0; ///< Blocks copied when cascade
                                       ///< pruning diverged a shared
                                       ///< prefix (summed over pools).
    /// Cached blocks dropped from the prefix caches entirely (summed
    /// over pools): cold HBM blocks reclaimed with tiering off, DRAM
    /// cold-tier LRU overflow with tiering on.
    std::size_t kv_evicted_blocks = 0;

    // ---- Tiered KV memory (ContinuousBatchConfig::far_memory) ----
    /// The per-slot cold-tier byte budget (0 = tiering off).
    std::uint64_t kv_dram_capacity_bytes = 0;
    /// Peak cold-tier (far-memory DRAM) occupancy per accelerator —
    /// the second tier of the per-tier occupancy pair whose hot half
    /// is kv_peak_bytes.
    std::vector<std::uint64_t> kv_dram_peak_bytes;
    std::size_t kv_demoted_blocks = 0;  ///< HBM -> DRAM migrations.
    std::size_t kv_promoted_blocks = 0; ///< DRAM -> HBM migrations.
    std::uint64_t kv_demoted_bytes = 0;
    std::uint64_t kv_promoted_bytes = 0;
    /// Total migration traffic over the far-memory link, both
    /// directions (kv_demoted_bytes + kv_promoted_bytes).
    std::uint64_t kv_migrated_bytes = 0;
    /// Energy of that traffic (EnergyConfig::far_bit_energy_pj per
    /// bit); already included in total_energy_j.
    double migration_energy_j = 0;
    /// Promotion-burst latency charged to admitting requests' prefill
    /// timelines (summed; also inside busy_s and service_seconds).
    double promotion_stall_s = 0;
};

/**
 * A KV byte budget sized at @p headroom times the worst single request
 * of @p trace (its full un-pruned prompt + output KV, block-rounded at
 * @p sched's kv_block_tokens — taking the config keeps the rounding
 * granularity coupled to the pool that will enforce the budget).
 * headroom 1.0 is the scheduler's minimum legal budget (every request
 * must fit alone); small multiples like 1.25-2.0 dial in the
 * memory-pressure regime the preemption machinery serves — the single
 * definition the bench and the property tests both use.
 *
 * @p kv_bytes_per_elem is the KV storage width the budget must cover;
 * fleets mixing backends with different widths (PlatformBackend keeps
 * fp32 KV) must size the budget at the widest element of the fleet or
 * the widest slot cannot guarantee forward progress.
 */
std::uint64_t kvBudgetForWorstRequest(
    const std::vector<TracedRequest>& trace, double headroom,
    const ContinuousBatchConfig& sched = ContinuousBatchConfig{},
    std::size_t kv_bytes_per_elem = 2);

/** A heterogeneous accelerator fleet: one backend per slot. */
using AcceleratorFleet =
    std::vector<std::shared_ptr<const AcceleratorBackend>>;

/** The continuous-batching scheduler. */
class ContinuousBatchScheduler
{
  public:
    /**
     * The homogeneous-SpAtten pool: sched.num_accelerators slots, all
     * running @p cfg. Bit-identical to the pre-backend-abstraction
     * scheduler (pinned by the PR 3 goldens).
     */
    explicit ContinuousBatchScheduler(
        SpAttenConfig cfg = SpAttenConfig{},
        ContinuousBatchConfig sched = ContinuousBatchConfig{});

    /**
     * A heterogeneous pool: one slot per @p fleet entry (overriding
     * sched.num_accelerators). Backends may be shared between slots —
     * sessions carry all per-request state.
     */
    ContinuousBatchScheduler(AcceleratorFleet fleet,
                             ContinuousBatchConfig sched);

    /**
     * Serve every request of @p trace to completion and aggregate.
     * Deterministic: a pure function of (fleet configs, sched config,
     * trace), independent of num_threads; per-request service results
     * on a homogeneous fleet are also independent of the slot count and
     * shard policy.
     */
    ServeReport run(const std::vector<TracedRequest>& trace);

    const ContinuousBatchConfig& schedulerConfig() const { return sched_; }
    const AcceleratorFleet& fleet() const { return fleet_; }

  private:
    AcceleratorFleet fleet_;
    ContinuousBatchConfig sched_;
};

} // namespace spatten

#endif // SPATTEN_SERVE_CONTINUOUS_BATCH_SCHEDULER_HPP
