#include "nn/memnet.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "core/importance.hpp"
#include "core/pruning.hpp"
#include "tensor/ops.hpp"

namespace spatten {

MemoryNetwork::MemoryNetwork(MemNetConfig cfg)
    : cfg_(cfg),
      prng_(cfg.seed),
      emb_a_key_("mem.a_key",
                 Tensor::randn({cfg.vocab, cfg.dim}, prng_, 0.0f, 0.1f)),
      emb_a_val_("mem.a_val",
                 Tensor::randn({cfg.vocab, cfg.dim}, prng_, 0.0f, 0.1f)),
      emb_c_key_("mem.c_key",
                 Tensor::randn({cfg.vocab, cfg.dim}, prng_, 0.0f, 0.1f)),
      emb_c_val_("mem.c_val",
                 Tensor::randn({cfg.vocab, cfg.dim}, prng_, 0.0f, 0.1f)),
      emb_q_("mem.q",
             Tensor::randn({cfg.vocab, cfg.dim}, prng_, 0.0f, 0.1f)),
      answer_("mem.answer", cfg.dim, cfg.vocab, prng_)
{
    SPATTEN_ASSERT(cfg_.hops >= 1, "need at least one hop");
}

Tensor
MemoryNetwork::embedSlotsA(const std::vector<MemoryFact>& facts) const
{
    Tensor m({facts.size(), cfg_.dim});
    for (std::size_t i = 0; i < facts.size(); ++i)
        for (std::size_t j = 0; j < cfg_.dim; ++j)
            m.at(i, j) = emb_a_key_.value.at(facts[i].key, j) +
                         emb_a_val_.value.at(facts[i].value, j);
    return m;
}

Tensor
MemoryNetwork::embedSlotsC(const std::vector<MemoryFact>& facts) const
{
    Tensor c({facts.size(), cfg_.dim});
    for (std::size_t i = 0; i < facts.size(); ++i)
        for (std::size_t j = 0; j < cfg_.dim; ++j)
            c.at(i, j) = emb_c_key_.value.at(facts[i].key, j) +
                         emb_c_val_.value.at(facts[i].value, j);
    return c;
}

double
MemoryNetwork::trainStep(const MemoryQaExample& ex)
{
    SPATTEN_ASSERT(!ex.facts.empty(), "empty memory");
    const std::size_t n = ex.facts.size(), d = cfg_.dim;
    const Tensor m = embedSlotsA(ex.facts);
    const Tensor c = embedSlotsC(ex.facts);

    // ---- Forward with caches ----
    std::vector<HopCache> hops(cfg_.hops);
    Tensor u({1, d});
    for (std::size_t j = 0; j < d; ++j)
        u.at(0, j) = emb_q_.value.at(ex.query, j);
    for (std::size_t h = 0; h < cfg_.hops; ++h) {
        hops[h].u.assign(u.data(), u.data() + d);
        hops[h].m = m;
        hops[h].c = c;
        const Tensor scores = ops::matmulTransposedB(u, m); // 1 x n
        hops[h].prob = ops::softmaxRows(scores);
        const Tensor o = ops::matmul(hops[h].prob, c); // 1 x d
        u = ops::add(u, o);
    }
    const Tensor logits = answer_.forward(u);
    Tensor dlogits;
    const double loss = softmaxCrossEntropy(logits, {ex.answer}, dlogits);

    // ---- Backward ----
    Tensor du = answer_.backward(u, dlogits); // 1 x d
    for (std::size_t h = cfg_.hops; h-- > 0;) {
        const HopCache& hc = hops[h];
        // u_{h+1} = u_h + prob * c  =>  du flows to both summands.
        const Tensor& prob = hc.prob;
        // dprob = du * c^T  (1 x n); dc_i += prob_i * du.
        const Tensor dprob = ops::matmulTransposedB(du, hc.c);
        for (std::size_t i = 0; i < n; ++i) {
            const float p = prob.at(0, i);
            for (std::size_t j = 0; j < d; ++j) {
                const float g = p * du.at(0, j);
                emb_c_key_.grad.at(ex.facts[i].key, j) += g;
                emb_c_val_.grad.at(ex.facts[i].value, j) += g;
            }
        }
        const Tensor ds = softmaxBackwardRows(prob, dprob); // 1 x n
        // scores_i = u . m_i  =>  dm_i = ds_i * u; du += ds * m.
        Tensor u_h({1, d});
        for (std::size_t j = 0; j < d; ++j)
            u_h.at(0, j) = hc.u[j];
        for (std::size_t i = 0; i < n; ++i) {
            const float s = ds.at(0, i);
            for (std::size_t j = 0; j < d; ++j) {
                const float g = s * u_h.at(0, j);
                emb_a_key_.grad.at(ex.facts[i].key, j) += g;
                emb_a_val_.grad.at(ex.facts[i].value, j) += g;
            }
        }
        const Tensor du_scores = ops::matmul(ds, hc.m); // 1 x d
        du = ops::add(du, du_scores);
    }
    for (std::size_t j = 0; j < d; ++j)
        emb_q_.grad.at(ex.query, j) += du.at(0, j);

    auto ps = params();
    opt_.step(ps);
    return loss;
}

std::size_t
MemoryNetwork::predict(const MemoryQaExample& ex) const
{
    return predictPruned(ex, 0.0);
}

std::size_t
MemoryNetwork::predictPruned(const MemoryQaExample& ex,
                             double per_hop_ratio,
                             MemPruneStats* stats) const
{
    SPATTEN_ASSERT(!ex.facts.empty(), "empty memory");
    SPATTEN_ASSERT(per_hop_ratio >= 0.0 && per_hop_ratio < 1.0,
                   "ratio %f out of [0,1)", per_hop_ratio);
    const std::size_t n = ex.facts.size(), d = cfg_.dim;
    const Tensor m_all = embedSlotsA(ex.facts);
    const Tensor c_all = embedSlotsC(ex.facts);

    TokenImportanceAccumulator acc(n);
    std::vector<std::size_t> alive(n);
    for (std::size_t i = 0; i < n; ++i)
        alive[i] = i;

    Tensor u({1, d});
    for (std::size_t j = 0; j < d; ++j)
        u.at(0, j) = emb_q_.value.at(ex.query, j);

    for (std::size_t h = 0; h < cfg_.hops; ++h) {
        const Tensor m = ops::gatherRows(m_all, alive);
        const Tensor c = ops::gatherRows(c_all, alive);
        const Tensor prob =
            ops::softmaxRows(ops::matmulTransposedB(u, m));
        std::vector<float> row(alive.size());
        for (std::size_t i = 0; i < alive.size(); ++i)
            row[i] = prob.at(0, i);
        acc.accumulateRow(row, alive);
        u = ops::add(u, ops::matmul(prob, c));

        // Cascade slot pruning between hops (never after the last hop —
        // its read is already done).
        if (per_hop_ratio > 0.0 && h + 1 < cfg_.hops) {
            const auto keep = std::max<std::size_t>(
                1, static_cast<std::size_t>(std::ceil(
                       static_cast<double>(alive.size()) * (1.0 - per_hop_ratio))));
            std::vector<float> scores(alive.size());
            for (std::size_t i = 0; i < alive.size(); ++i)
                scores[i] = acc.score(alive[i]);
            const auto kept = topkKeepOrder(scores, keep);
            std::vector<std::size_t> next;
            next.reserve(kept.size());
            for (std::size_t pos : kept)
                next.push_back(alive[pos]);
            alive = std::move(next);
        }
    }
    if (stats) {
        stats->slots_kept_frac =
            static_cast<double>(alive.size()) / static_cast<double>(n);
        stats->surviving_slots = alive;
    }
    const Tensor logits = answer_.forward(u);
    return ops::argmax(logits.row(0));
}

double
MemoryNetwork::accuracy(const std::vector<MemoryQaExample>& examples) const
{
    SPATTEN_ASSERT(!examples.empty(), "no examples");
    std::size_t correct = 0;
    for (const auto& ex : examples)
        correct += predictPruned(ex, 0.0) == ex.answer;
    return static_cast<double>(correct) /
           static_cast<double>(examples.size());
}

double
MemoryNetwork::accuracyPruned(const std::vector<MemoryQaExample>& examples,
                              double per_hop_ratio,
                              double* mean_kept) const
{
    SPATTEN_ASSERT(!examples.empty(), "no examples");
    std::size_t correct = 0;
    double kept = 0.0;
    for (const auto& ex : examples) {
        MemPruneStats st;
        correct += predictPruned(ex, per_hop_ratio, &st) == ex.answer;
        kept += st.slots_kept_frac;
    }
    if (mean_kept)
        *mean_kept = kept / static_cast<double>(examples.size());
    return static_cast<double>(correct) /
           static_cast<double>(examples.size());
}

std::vector<Param*>
MemoryNetwork::params()
{
    std::vector<Param*> out{&emb_a_key_, &emb_a_val_, &emb_c_key_,
                            &emb_c_val_, &emb_q_};
    answer_.collectParams(out);
    return out;
}

MemoryQaTask::MemoryQaTask(Config cfg) : cfg_(cfg), prng_(cfg.seed)
{
    SPATTEN_ASSERT(cfg_.num_slots >= 2 && cfg_.num_keys >= 2 &&
                       cfg_.num_values >= 2,
                   "task too small");
}

std::vector<MemoryQaExample>
MemoryQaTask::sample(std::size_t n)
{
    std::vector<MemoryQaExample> out;
    out.reserve(n);
    for (std::size_t e = 0; e < n; ++e) {
        MemoryQaExample ex;
        // Distinct keys per slot so the query is unambiguous.
        std::vector<std::size_t> keys(cfg_.num_keys);
        for (std::size_t i = 0; i < cfg_.num_keys; ++i)
            keys[i] = i;
        for (std::size_t i = cfg_.num_keys; i > 1; --i)
            std::swap(keys[i - 1], keys[prng_.below(i)]);
        const std::size_t slots =
            std::min(cfg_.num_slots, cfg_.num_keys);
        ex.facts.resize(slots);
        for (std::size_t s = 0; s < slots; ++s) {
            ex.facts[s].key = keys[s];
            ex.facts[s].value =
                cfg_.num_keys + prng_.below(cfg_.num_values);
        }
        const std::size_t target = prng_.below(slots);
        ex.query = ex.facts[target].key;
        ex.answer = ex.facts[target].value;
        out.push_back(std::move(ex));
    }
    return out;
}

} // namespace spatten
