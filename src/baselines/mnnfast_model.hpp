/**
 * @file
 * Model of MNNFast (Jang et al., ISCA 2019) for the Table III comparison.
 *
 * MNNFast removes V vectors whose attention probabilities fall below a
 * threshold — i.e. local value pruning only (§V-B). It has no token or
 * head pruning, no quantization support, fetches everything from DRAM
 * before pruning, and only reduces the prob x V part of the computation.
 * The original design is a Zynq FPGA; following the paper we model an
 * ASIC port with the same multiplier count and bandwidth as SpAtten-1/8.
 */
#ifndef SPATTEN_BASELINES_MNNFAST_MODEL_HPP
#define SPATTEN_BASELINES_MNNFAST_MODEL_HPP

#include "core/model_spec.hpp"

namespace spatten {

/** MNNFast configuration (ASIC-normalized comparison point). */
struct MnnFastConfig
{
    std::size_t num_multipliers = 128;
    double freq_ghz = 1.0;
    double mem_bw_gbs = 64.0;
    double v_prune_ratio = 0.4;     ///< Fraction of V rows under threshold.
    double datapath_efficiency = 0.55; ///< FPGA-derived design: lower
                                       ///< utilization than SpAtten's
                                       ///< specialized pipeline.
    double energy_per_flop_pj = 4.5;   ///< Calibrated to ~120 GOP/J.
};

/** Latency/throughput estimate for MNNFast on one workload. */
struct MnnFastResult
{
    double seconds = 0;
    double dense_flops = 0;
    double dram_bytes = 0;
    double energy_j = 0;

    double effectiveGops() const
    {
        return seconds > 0 ? dense_flops / seconds * 1e-9 : 0;
    }
};

/** The MNNFast model (BERT-style workloads only, like A3). */
class MnnFastModel
{
  public:
    explicit MnnFastModel(MnnFastConfig cfg = MnnFastConfig{}) : cfg_(cfg) {}

    MnnFastResult run(const WorkloadSpec& workload) const;

    const MnnFastConfig& config() const { return cfg_; }

  private:
    MnnFastConfig cfg_;
};

} // namespace spatten

#endif // SPATTEN_BASELINES_MNNFAST_MODEL_HPP
