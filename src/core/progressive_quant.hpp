/**
 * @file
 * Progressive quantization (§III-D): fetch MSBs eagerly, compute attention
 * probabilities, and only when the distribution is flat (max probability
 * below a threshold) fetch the LSBs and recompute.
 *
 * The theoretical basis (Eq. 1/2): the post-softmax error contributed by a
 * score perturbation ∆s is ∆s * 2p(1-p) < ∆s, and is smallest when a
 * dominant probability exists (p near 1).
 */
#ifndef SPATTEN_CORE_PROGRESSIVE_QUANT_HPP
#define SPATTEN_CORE_PROGRESSIVE_QUANT_HPP

#include <cstddef>
#include <vector>

#include "quant/bitplane.hpp"
#include "tensor/tensor.hpp"

namespace spatten {

/** Configuration of the progressive quantization policy. */
struct ProgressiveQuantConfig
{
    bool enabled = true;
    BitplaneSetting setting{8, 4}; ///< MSB+LSB storage (paper: 6+4, 8+4 common).
    /// If max attention probability < threshold, fetch LSBs and recompute.
    double max_prob_threshold = 0.1;
};

/**
 * The progressive-quantization decision (Fig. 6 / Fig. 12 right):
 * true when the probability row is flat and LSBs must be fetched.
 */
bool needsLsb(const std::vector<float>& prob_row, double threshold);
bool needsLsb(const Tensor& prob_row, double threshold);

/** Outcome of running one query through the progressive pipeline. */
struct ProgressiveResult
{
    std::vector<float> prob; ///< Final attention probabilities.
    bool fetched_lsb = false;
    double msb_bits_fetched = 0;  ///< Bits of K fetched in the MSB pass.
    double lsb_bits_fetched = 0;  ///< Bits of K fetched in the LSB pass.
};

/**
 * Functional model of progressive quantized score computation for a single
 * query against a key matrix.
 *
 * @param q_full  query vector (length D), already on chip.
 * @param keys    bit-plane-split key matrix (L x D).
 * @param inv_sqrt_d score normalization 1/sqrt(D).
 * @param cfg     policy configuration.
 */
ProgressiveResult progressiveScores(const Tensor& q_full,
                                    const BitplaneTensor& keys,
                                    float inv_sqrt_d,
                                    const ProgressiveQuantConfig& cfg);

/**
 * Mean absolute softmax error between probabilities computed from fp32
 * scores and from @p bits-quantized scores. Used by the Fig. 7
 * reproduction (error shrinks as max probability grows).
 */
double quantizedSoftmaxError(const Tensor& scores, int bits);

} // namespace spatten

#endif // SPATTEN_CORE_PROGRESSIVE_QUANT_HPP
