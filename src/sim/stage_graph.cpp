#include "sim/stage_graph.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace spatten {

StageGraph::StageGraph(double core_freq_ghz, double dram_freq_ghz,
                       EnergyConfig energy_cfg)
    : core_freq_ghz_(core_freq_ghz), dram_freq_ghz_(dram_freq_ghz),
      energy_cfg_(energy_cfg)
{
    SPATTEN_ASSERT(core_freq_ghz_ > 0 && dram_freq_ghz_ > 0,
                   "bad clock config (%f core, %f dram)", core_freq_ghz_,
                   dram_freq_ghz_);
}

void
StageGraph::addStage(const StageModel* stage, TrafficSink sink)
{
    SPATTEN_ASSERT(stage != nullptr, "null stage");
    stages_.push_back({stage, nullptr, std::move(sink), stage->stageName()});
}

void
StageGraph::addMemoryStage(MemoryStage* stage, TrafficSink sink)
{
    SPATTEN_ASSERT(stage != nullptr, "null memory stage");
    stages_.push_back({stage, stage, std::move(sink), stage->stageName()});
}

void
StageGraph::addTransform(std::unique_ptr<GraphTransform> transform)
{
    SPATTEN_ASSERT(transform != nullptr, "null transform");
    transforms_.push_back(std::move(transform));
}

const StatSet&
StageGraph::stats() const
{
    // Render the per-entry accumulators into the string-keyed StatSet.
    // The doubles were accumulated with the same per-key addition order
    // the map-backed counters used, so the rendered totals are
    // bit-identical; the render itself is plain assignment.
    stats_ = StatSet{};
    for (const auto& e : stages_) {
        const std::string prefix = "stage." + e.name;
        stats_.add(prefix + ".busy_cycles", e.busy_cycles);
        stats_.add(prefix + ".energy_pj", e.energy_pj);
        stats_.add(prefix + ".dram_bytes", e.dram_bytes);
    }
    return stats_;
}

double
StageGraph::priceActivityPj(const ActivityCounts& act) const
{
    // Logic-event pricing only: SRAM/DRAM movement energy is accounted
    // globally (SramModel byte counters, HbmModel energy) because the
    // byte width belongs to those models, not to the producing stage.
    return (act.qk_macs + act.pv_macs) * energy_cfg_.mac_pj +
           act.softmax_elems * energy_cfg_.softmax_elem_pj +
           act.topk_comparisons * energy_cfg_.topk_cmp_pj +
           act.fetch_requests * energy_cfg_.fetch_req_pj;
}

LayerCost
StageGraph::runLayer(ExecutionContext& ctx, LayerReplayRecord* record)
{
    SPATTEN_ASSERT(!stages_.empty(), "stage graph has no stages");
    for (auto& t : transforms_)
        t->prepare(ctx);
    ctx.beginLayer();

    LayerCost cost;
    const double q_heads = static_cast<double>(ctx.queries) *
                           static_cast<double>(ctx.alive_heads);

    // ---- Compute time: fully-pipelined II + serial layer extras ----
    Cycles layer_extra = 0;
    timings_.clear();
    timings_.reserve(stages_.size());
    for (const auto& e : stages_) {
        const StageTiming t = e.stage->timing(ctx);
        cost.ii = std::max(cost.ii, t.ii_cycles);
        layer_extra += t.layer_cycles;
        timings_.push_back(t);
    }
    cost.compute_cycles =
        ctx.queries * cost.ii * ctx.alive_heads + layer_extra;
    cost.compute_ns =
        static_cast<double>(cost.compute_cycles) / core_freq_ghz_;

    // ---- Memory time: realize traffic through the memory stages ----
    const Cycles dram_start = dram_clock_;
    Cycles dram_done = dram_start;
    for (auto& e : stages_) {
        if (e.memory != nullptr)
            dram_done =
                std::max(dram_done, e.memory->issue(ctx, dram_start));
    }
    cost.memory_ns =
        static_cast<double>(dram_done - dram_start) / dram_freq_ghz_;
    dram_clock_ = dram_done;

    // Memory stages have no core-pipeline occupancy (their streams
    // overlap compute); their busy share is the realized DRAM window,
    // attributed in core-domain cycles so the breakdown stays
    // commensurable with the compute stages. The window is shared: with
    // several memory stages each would be charged the whole layer
    // window, so per-stage apportioning must be added before a second
    // MemoryStage is registered.
    const double window_busy = cost.memory_ns * core_freq_ghz_;
    for (auto& e : stages_) {
        if (e.memory != nullptr)
            e.busy_cycles += window_busy;
    }

    if (record != nullptr) {
        record->window_busy = window_busy;
        record->dram_delta = dram_done - dram_start;
        record->stages.resize(stages_.size());
    }

    // ---- Coarse-grained overlap ----
    cost.layer_ns = std::max(cost.compute_ns, cost.memory_ns);
    elapsed_ns_ += cost.layer_ns;
    if (cost.compute_ns >= cost.memory_ns)
        compute_bound_ns_ += cost.layer_ns;
    else
        memory_bound_ns_ += cost.layer_ns;

    // ---- Per-stage accounting: occupancy, energy, traffic ----
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        auto& e = stages_[i];
        // Memory stages were already charged their realized DRAM window
        // above; charging their pipeline occupancy too would double-count.
        const Cycles busy =
            e.memory != nullptr
                ? 0
                : static_cast<Cycles>(
                      q_heads * static_cast<double>(timings_[i].ii_cycles) +
                      static_cast<double>(timings_[i].layer_cycles));
        const ActivityCounts act = e.stage->energy(ctx);
        const StageTraffic traffic = e.stage->traffic(ctx);
        // Requests are a traffic quantity: a stage reporting them via
        // energy() as well would double-price them here and in the
        // global activity merge.
        SPATTEN_ASSERT(act.fetch_requests == 0,
                       "stage %s must report fetch_requests via traffic()",
                       e.name.c_str());
        activity_.add(act);
        activity_.fetch_requests += traffic.fetch_requests;
        if (e.sink)
            e.sink(traffic);
        e.busy_cycles += static_cast<double>(busy);
        // Price the stage's compute activity and its request traffic
        // through the single pricing path so fetch requests can never be
        // double-counted if a stage ever reports them via energy() too.
        ActivityCounts priced = act;
        priced.fetch_requests += traffic.fetch_requests;
        const double priced_pj = priceActivityPj(priced);
        e.energy_pj += priced_pj;
        e.dram_bytes += traffic.dram_bytes;
        if (record != nullptr) {
            StageReplay& r = record->stages[i];
            r.busy = static_cast<double>(busy);
            r.energy_pj = priced_pj;
            r.act = act;
            r.traffic = traffic;
        }
    }

    // Executed attention work (FLOPs = 2 x MACs); the LSB recompute
    // share counts toward energy but not toward useful FLOPs.
    cost.qk_macs = q_heads * static_cast<double>(ctx.alive_tokens) *
                   static_cast<double>(ctx.d_head);
    cost.pv_macs = q_heads * static_cast<double>(ctx.kept_values) *
                   static_cast<double>(ctx.d_head);

    for (auto& t : transforms_)
        t->apply(ctx);
    ++ctx.layer;
    if (record != nullptr)
        record->cost = cost;
    return cost;
}

LayerCost
StageGraph::replayLayer(const LayerReplayRecord& rec)
{
    // Mirror runLayer's accumulation sequence exactly — every += below
    // re-applies the double the live evaluation added, in the same
    // order, so all running totals stay bit-identical.
    for (auto& e : stages_) {
        if (e.memory != nullptr)
            e.busy_cycles += rec.window_busy;
    }
    dram_clock_ += rec.dram_delta;

    elapsed_ns_ += rec.cost.layer_ns;
    if (rec.cost.compute_ns >= rec.cost.memory_ns)
        compute_bound_ns_ += rec.cost.layer_ns;
    else
        memory_bound_ns_ += rec.cost.layer_ns;

    for (std::size_t i = 0; i < stages_.size(); ++i) {
        auto& e = stages_[i];
        const StageReplay& r = rec.stages[i];
        activity_.add(r.act);
        activity_.fetch_requests += r.traffic.fetch_requests;
        if (e.sink)
            e.sink(r.traffic);
        e.busy_cycles += r.busy;
        e.energy_pj += r.energy_pj;
        e.dram_bytes += r.traffic.dram_bytes;
    }
    return rec.cost;
}

} // namespace spatten
