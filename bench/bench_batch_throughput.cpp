/// BatchRunner smoke bench: serves a mixed BERT + GPT-2 request batch
/// across increasing thread counts, demonstrating wall-clock throughput
/// scaling while the simulated per-request results stay bit-identical
/// (the determinism contract tests/test_batch_runner.cpp pins down).
#include <cstdio>

#include "bench_util.hpp"
#include "serve/batch_runner.hpp"
#include "workload/benchmarks.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Batch serving",
           "Concurrent BatchRunner throughput vs thread count "
           "(mixed BERT/GPT-2 batch, bit-identical results)");

    // A mixed batch: every paper benchmark twice, distinct seeds.
    std::vector<BatchRequest> batch;
    for (const auto& b : paperBenchmarks()) {
        batch.push_back({b.workload, b.policy, 0x5eed});
        batch.push_back({b.workload, b.policy, 0xbee5});
    }

    std::printf("%zu requests in batch\n", batch.size());
    std::printf("%-10s %12s %12s %12s %14s %12s\n", "threads", "wall ms",
                "p50 ms", "p99 ms", "agg TFLOPS", "DRAM red.");
    rule();

    BatchResult reference;
    std::vector<BenchRecord> records;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        BatchRunner runner(SpAttenConfig{}, BatchRunnerConfig{threads});
        const BatchResult r = runner.run(batch);
        std::printf("%-10zu %12.1f %12.3f %12.3f %14.2f %11.1fx\n",
                    threads, r.wall_seconds * 1e3, r.p50_seconds * 1e3,
                    r.p99_seconds * 1e3, r.aggregate_tflops,
                    r.dram_reduction);
        if (threads == 1) {
            reference = r;
        } else {
            for (std::size_t i = 0; i < r.results.size(); ++i) {
                if (r.results[i].cycles != reference.results[i].cycles ||
                    r.results[i].seconds != reference.results[i].seconds) {
                    std::printf("DETERMINISM VIOLATION at request %zu\n",
                                i);
                    return 1;
                }
            }
        }
        // Simulated totals (identical at every thread count), so the
        // JSON perf trajectory stays commensurable with other benches.
        records.push_back(
            recordFromBatch("batch_t" + std::to_string(threads), r));
    }
    rule();
    std::printf("p50 %.3f ms, p99 %.3f ms, %.0f requests/simulated-s; all "
                "thread counts produced bit-identical per-request "
                "results.\n",
                reference.p50_seconds * 1e3, reference.p99_seconds * 1e3,
                reference.throughputRps());
    writeBenchJson("batch_throughput", records);
    return 0;
}
