/**
 * @file
 * Hardware-Aware Transformer (HAT) co-design search for SpAtten-e2e
 * (§V-B, Fig. 16/17). The search space follows the paper: embedding dim
 * in {512, 640, 768}, FFN hidden dim in {512, 1024, 2048, 3072}, decoder
 * layer count in {1..6}. Candidates are scored by SpAtten-e2e latency
 * (the FC layers bottleneck SpAtten, so the search is expected to shrink
 * FFN dims and lean on attention) and a proxy accuracy model.
 *
 * Substitution note (DESIGN.md): the original HAT trains a weight-shared
 * supernet on WMT'14 and evaluates BLEU; we use a calibrated
 * saturating-capacity proxy for BLEU, which preserves the mechanism the
 * figure demonstrates (latency-constrained search shifts FLOPs from FC
 * to attention) without the dataset.
 */
#ifndef SPATTEN_HAT_HAT_SEARCH_HPP
#define SPATTEN_HAT_HAT_SEARCH_HPP

#include <vector>

#include "accel/e2e.hpp"

namespace spatten {

/** One point in the HAT search space. */
struct HatCandidate
{
    std::size_t embed_dim = 512;
    std::size_t ffn_dim = 2048;
    std::size_t layers = 6;
};

/** A candidate with its evaluation. */
struct HatEvaluated
{
    HatCandidate cand;
    double latency_ms = 0; ///< SpAtten-e2e latency on the probe workload.
    double bleu = 0;       ///< Proxy BLEU.
    double attn_flops = 0;
    double fc_flops = 0;
};

/** Proxy BLEU: saturating in capacity, calibrated near WMT'14 En-De
 *  (Transformer-Base ~27.3, Transformer-Big ~28.4). */
double proxyBleu(const HatCandidate& c);

/** Build the (decoder-only cost proxy) model spec for a candidate. */
ModelSpec hatModelSpec(const HatCandidate& c);

/** Evaluate a candidate on SpAtten-e2e. */
HatEvaluated evaluateCandidate(const HatCandidate& c,
                               const SpAttenConfig& hw,
                               const E2eConfig& e2e);

/** Configuration of the evolutionary search. */
struct HatSearchConfig
{
    std::size_t population = 24;
    std::size_t generations = 12;
    double mutate_prob = 0.4;
    std::uint64_t seed = 42;
};

/**
 * Evolutionary search: maximize proxy BLEU subject to a latency budget.
 * @return the best evaluated candidate per budget, one per entry of
 *         @p latency_budgets_ms (the Fig. 16 frontier).
 */
std::vector<HatEvaluated>
searchFrontier(const std::vector<double>& latency_budgets_ms,
               const SpAttenConfig& hw, const E2eConfig& e2e,
               HatSearchConfig cfg = HatSearchConfig{});

/** All legal values of each search dimension. */
const std::vector<std::size_t>& hatEmbedChoices();
const std::vector<std::size_t>& hatFfnChoices();
const std::vector<std::size_t>& hatLayerChoices();

} // namespace spatten

#endif // SPATTEN_HAT_HAT_SEARCH_HPP
