/// Ablation (§VI): SpAtten's *cumulative* token importance (accumulated
/// across heads and layers) vs PoWER-BERT-style *instant* importance
/// (current layer's probabilities only), at matched pruning ratios on a
/// trained classifier and a trained LM. Cumulative scores are the more
/// reliable signal, especially at aggressive ratios.
#include <cstdio>

#include "bench_util.hpp"
#include "nn/trainer.hpp"
#include "workload/synthetic_tasks.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Ablation: cumulative vs instant importance (§VI)",
           "SpAtten accumulates probabilities across layers; "
           "PoWER-BERT uses one layer's probabilities");

    // Classification task with distractors (majority vote).
    KeywordTaskConfig tc;
    tc.seq_len = 24;
    tc.keywords_per_sentence = 3;
    tc.minority_keywords = 2;
    KeywordTask task(tc);
    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 32;
    mc.heads = 4;
    mc.layers = 4;
    mc.ffn_dim = 64;
    mc.max_len = tc.seq_len;
    mc.num_classes = task.numClasses();
    TransformerModel cls(mc);
    std::printf("training classifier...\n");
    trainClassifier(cls, task.sample(300), 6);
    const auto test = task.sample(100);
    const double dense_acc = classifierAccuracy(cls, test);

    std::printf("\n(a) classification accuracy delta vs pruning ratio\n");
    std::printf("%10s %16s %16s %16s\n", "ratio", "cumulative",
                "instant (PB)", "random");
    rule();
    for (double ratio : {0.2, 0.4, 0.6, 0.8}) {
        PruningPolicy cum = PruningPolicy::disabled();
        cum.token_pruning = true;
        cum.token_avg_ratio = ratio;
        cum.importance_mode = ImportanceMode::Cumulative;
        PruningPolicy inst = cum;
        inst.importance_mode = ImportanceMode::Instant;
        PruningPolicy rnd = cum;
        rnd.importance_mode = ImportanceMode::Random;
        const double a_cum = classifierAccuracyPruned(cls, test, cum);
        const double a_inst = classifierAccuracyPruned(cls, test, inst);
        const double a_rnd = classifierAccuracyPruned(cls, test, rnd);
        std::printf("%10.2f %+15.1f%% %+15.1f%% %+15.1f%%\n", ratio,
                    (a_cum - dense_acc) * 100,
                    (a_inst - dense_acc) * 100,
                    (a_rnd - dense_acc) * 100);
    }

    // LM task.
    CopyLmTaskConfig lc;
    lc.payload_len = 4;
    lc.filler_gap = 3;
    CopyLmTask lm_task(lc);
    TinyModelConfig lmc;
    lmc.vocab = lm_task.vocabSize();
    lmc.d_model = 32;
    lmc.heads = 4;
    lmc.layers = 4;
    lmc.ffn_dim = 64;
    lmc.max_len = lm_task.seqLen();
    TransformerModel lm(lmc);
    std::printf("\ntraining LM...\n");
    trainLm(lm, lm_task.sample(300), 6);
    const auto lm_test = lm_task.sample(40);
    const double dense_loss = lmMeanLoss(lm, lm_test);

    std::printf("\n(b) LM loss delta vs pruning ratio\n");
    std::printf("%10s %16s %16s %16s\n", "ratio", "cumulative",
                "instant (PB)", "random");
    rule();
    for (double ratio : {0.3, 0.5, 0.7, 0.9}) {
        PruningPolicy cum = PruningPolicy::disabled();
        cum.token_pruning = true;
        cum.token_avg_ratio = ratio;
        PruningPolicy inst = cum;
        inst.importance_mode = ImportanceMode::Instant;
        PruningPolicy rnd = cum;
        rnd.importance_mode = ImportanceMode::Random;
        const double l_cum = lmMeanLossPruned(lm, lm_test, cum);
        const double l_inst = lmMeanLossPruned(lm, lm_test, inst);
        const double l_rnd = lmMeanLossPruned(lm, lm_test, rnd);
        std::printf("%10.2f %+16.4f %+16.4f %+16.4f\n", ratio,
                    l_cum - dense_loss, l_inst - dense_loss,
                    l_rnd - dense_loss);
    }
    rule();
    std::printf("Paper (§VI): PoWER-BERT's instant one-layer "
                "probabilities are a weaker signal than SpAtten's "
                "cumulative scores; accumulation across heads/layers "
                "makes the importance more reliable (§III-A).\n");
    return 0;
}
