#include "accel/decode_session.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace spatten {

DecodeSession::DecodeSession(const SpAttenConfig& cfg,
                             const WorkloadSpec& workload,
                             const PruningPolicy& policy,
                             std::uint64_t request_seed)
    : workload_(workload), graph_(cfg, workload, policy, request_seed)
{
    SPATTEN_ASSERT(workload_.summarize_len >= 1, "empty prompt");
    // The unpruned trajectory peaks at summarize + generate tokens; the
    // pruned one only shrinks from there, so this bound covers both.
    SPATTEN_ASSERT(workload_.summarize_len + workload_.generate_len <=
                       cfg.max_context,
                   "context %zu exceeds SRAM-backed max %zu",
                   workload_.summarize_len + workload_.generate_len,
                   cfg.max_context);
}

double
DecodeSession::prefill()
{
    return prefillWithCachedPrefix(0);
}

double
DecodeSession::prefillWithCachedPrefix(std::size_t cached_prefix_tokens)
{
    SPATTEN_ASSERT(!prefilled_, "prefill() called twice");
    prefilled_ = true;
    if (workload_.skip_summarization) {
        // Pre-summarized prompt: the KV cache exists but no prefill
        // compute is charged, matching SpAttenPipeline's methodology.
        kv_len_ = workload_.summarize_len;
        kv_trace_.push_back(kv_len_);
        return 0.0;
    }
    // Always recompute at least the last prompt token (vLLM semantics:
    // a fully cached prompt still needs a pass to emit first logits).
    const std::size_t cached =
        std::min(cached_prefix_tokens, workload_.summarize_len - 1);
    graph_.runPass(workload_.summarize_len - cached,
                   workload_.summarize_len, false);
    prefill_seconds_ = graph_.elapsedSeconds();
    kv_len_ = graph_.context().alive_tokens;
    kv_trace_.push_back(kv_len_);
    return prefill_seconds_;
}

double
DecodeSession::decodeStep()
{
    SPATTEN_ASSERT(prefilled_, "decodeStep() before prefill()");
    SPATTEN_ASSERT(!done(), "decodeStep() past generate_len");
    const double before = graph_.elapsedSeconds();
    // The new token's K/V joins the pruned survivors of the last pass.
    graph_.runPass(1, kv_len_ + 1, true);
    kv_len_ = graph_.context().alive_tokens;
    kv_trace_.push_back(kv_len_);
    ++tokens_;
    return graph_.elapsedSeconds() - before;
}

RunResult
DecodeSession::finalize() const
{
    SPATTEN_ASSERT(prefilled_, "finalize() before prefill()");
    RunResult res;
    res.workload = workload_.name;
    res.summarize_seconds = prefill_seconds_;
    res.generate_seconds = graph_.elapsedSeconds() - prefill_seconds_;
    graph_.finalize(res);
    return res;
}

} // namespace spatten
