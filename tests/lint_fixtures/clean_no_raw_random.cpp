// Fixture: clean twin of trigger_no_raw_random. The same jitter drawn
// from a seeded common/prng stream — replayable, shardable, allowed.
// Mentions of rand in identifiers (randomish_, prandtl) must not trip
// the word-boundary matching, nor must the word rand() here in a
// comment or in the string below.
#include <cstdint>

namespace fixture {

struct Prng {
    std::uint64_t state;
    std::uint64_t next();
};

int arrivalJitter(Prng& prng)
{
    const char* doc = "unlike rand(), prng streams are seeded";
    int randomish_ = static_cast<int>(prng.next() % 7);
    return doc[0] ? randomish_ : 0;
}

} // namespace fixture
