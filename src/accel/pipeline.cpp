#include "accel/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/math_util.hpp"
#include "accel/sram.hpp"
#include "core/pruning.hpp"

namespace spatten {

SpAttenConfig
SpAttenConfig::eighth()
{
    SpAttenConfig c;
    c.qk.num_multipliers = 64;
    c.pv.num_multipliers = 64;
    c.qk.max_tree_outputs = 1;
    c.softmax.parallelism = 1;
    c.topk_parallelism = 2;
    c.key_sram_kb = 24;
    c.value_sram_kb = 24;
    c.hbm.channels = 2; // 64 GB/s, matching the A3 comparison setup.
    return c;
}

SpAttenPipeline::SpAttenPipeline(SpAttenConfig cfg) : cfg_(cfg)
{
    SPATTEN_ASSERT(cfg_.core_freq_ghz > 0, "bad core clock");
}

Cycles
SpAttenPipeline::topkCycles(std::size_t n) const
{
    if (n <= 1)
        return 1;
    // Quick-select passes touch ~2n elements in expectation, the filter
    // touches n; zero-eliminator latency is paid per pass (~log n passes
    // of log n cycles, small against the streaming terms).
    const std::size_t p = cfg_.topk_parallelism;
    const auto logn = static_cast<Cycles>(ceilLog2(n));
    return ceilDiv<std::size_t>(2 * n, p) + ceilDiv<std::size_t>(n, p) +
           4 * (logn + 1);
}

Cycles
SpAttenPipeline::queryII(std::size_t keys, std::size_t kept_v,
                         std::size_t d, bool local_v_on) const
{
    const QkModule qk(cfg_.qk);
    const PvModule pv(cfg_.pv);
    const Cycles qk_c = qk.timing(keys, d).cycles;
    const Cycles sm_c = ceilDiv(keys, cfg_.softmax.parallelism);
    // The quick-select stage of the local-V top-k is the occupancy
    // bottleneck of that engine (2n expected element-ops per query).
    const Cycles tk_c =
        local_v_on ? ceilDiv<std::size_t>(2 * keys, cfg_.topk_parallelism)
                   : 0;
    const Cycles pv_c = pv.timing(kept_v, d).cycles;
    return std::max(std::max(qk_c, sm_c), std::max(tk_c, pv_c));
}

namespace {

/** Survivors of one pruning round (never below 1). */
std::size_t
survivors(std::size_t alive, double ratio)
{
    if (ratio <= 0.0)
        return alive;
    const auto k = static_cast<std::size_t>(std::ceil(
        static_cast<double>(alive) * (1.0 - std::min(ratio, 1.0))));
    return std::max<std::size_t>(k, 1);
}

/** Synthetic, layer/head-distinct DRAM base addresses per tensor plane. */
std::uint64_t
planeBase(int plane, std::size_t layer, std::size_t head,
          std::size_t max_context, std::size_t bytes_per_row)
{
    const std::uint64_t region = 0x10000000ULL; // 256 MB per plane.
    const std::uint64_t slot =
        (layer * 64 + head) * roundUp<std::uint64_t>(
                                  max_context * bytes_per_row, 4096);
    return static_cast<std::uint64_t>(plane) * region + slot;
}

} // namespace

RunResult
SpAttenPipeline::run(const WorkloadSpec& workload,
                     const PruningPolicy& policy)
{
    const ModelSpec& model = workload.model;
    const std::size_t d = model.d_head;
    const std::size_t h_total = model.num_heads;
    const std::size_t layers = model.num_layers;
    SPATTEN_ASSERT(workload.summarize_len >= 1, "empty input");
    SPATTEN_ASSERT(workload.summarize_len + workload.generate_len <=
                       cfg_.max_context,
                   "context %zu exceeds SRAM-backed max %zu",
                   workload.summarize_len + workload.generate_len,
                   cfg_.max_context);

    // The summarization stage holds each head's K and V in the on-chip
    // SRAMs (double buffered); the SRAM capacity bounds the context.
    SramModel key_sram({cfg_.key_sram_kb, 768, true, 12.0}, "key_sram");
    SramModel value_sram({cfg_.value_sram_kb, 768, true, 12.0},
                         "value_sram");
    // Contexts larger than one SRAM buffer are processed in K tiles:
    // each tile is loaded once and all queries stream against it, so K/V
    // are fetched once but Q is re-streamed per tile.
    const std::size_t sram_tokens = key_sram.maxTokens(d);

    const PruningSchedule token_sched =
        policy.token_pruning
            ? makeTokenSchedule(layers, policy.token_avg_ratio)
            : PruningSchedule::disabled(layers);
    const PruningSchedule head_sched =
        policy.head_pruning
            ? makeHeadSchedule(layers, policy.head_avg_ratio)
            : PruningSchedule::disabled(layers);

    // Bit widths. Progressive quantization fetches the MSB plane eagerly
    // and refetches the LSB plane for lsb_fraction of the queries — but
    // only in the generation stage: the summarization stage is
    // computation-bound and per-query LSB recomputation would hurt it
    // (§III-D: "For BERT, we only apply static quantization"), so it
    // fetches the full static bitwidth once. The dense reference for
    // reduction factors is fp32.
    const int total_bits = policy.pq.setting.totalBits();
    const int msb_bits =
        policy.pq.enabled ? policy.pq.setting.msb_bits : total_bits;
    const int lsb_bits =
        policy.pq.enabled ? policy.pq.setting.lsb_bits : 0;
    const double lsb_frac = policy.pq.enabled ? policy.lsb_fraction : 0.0;

    HbmModel hbm(cfg_.hbm);
    Crossbar xbar({32, static_cast<std::size_t>(cfg_.hbm.channels)});
    QkvFetcher fetcher(hbm, xbar);

    RunResult res;
    res.workload = workload.name;
    ActivityCounts act;
    act.freq_ghz = cfg_.core_freq_ghz;

    double core_ns = 0.0;     // elapsed time
    Cycles dram_clock = 0;    // DRAM-domain cursor
    double compute_bound_ns = 0.0, memory_bound_ns = 0.0;
    const double dram_ghz = cfg_.hbm.freq_ghz;

    const auto bytesPerRow = [&](int bits) {
        return static_cast<std::size_t>(
            ceilDiv<std::size_t>(d * static_cast<std::size_t>(bits), 8));
    };

    // One attention pass over the whole model; `queries` is the number of
    // query rows per (layer, head); `ctx` the entering context length.
    // Returns nothing; accumulates time/energy/stats.
    const auto runPass = [&](std::size_t queries, std::size_t ctx,
                             bool generation) {
        std::size_t alive = ctx;
        std::size_t heads_alive = h_total;
        for (std::size_t l = 0; l < layers; ++l) {
            const std::size_t n = alive;
            const std::size_t nq = generation ? 1 : std::min(queries, n);
            const std::size_t kept_v =
                policy.local_value_pruning
                    ? std::max<std::size_t>(
                          1, static_cast<std::size_t>(std::ceil(
                                 n * (1.0 - policy.local_v_ratio))))
                    : n;

            // ---- Compute time ----
            const Cycles ii =
                queryII(n, kept_v, d, policy.local_value_pruning);
            Cycles layer_compute =
                static_cast<Cycles>(nq) * ii * heads_alive;
            if (policy.token_pruning && token_sched.ratioAt(l) > 0.0)
                layer_compute += topkCycles(n);
            if (policy.head_pruning && head_sched.ratioAt(l) > 0.0)
                layer_compute += topkCycles(heads_alive);
            const double compute_ns =
                static_cast<double>(layer_compute) / cfg_.core_freq_ghz;

            // ---- Memory time ----
            const Cycles dram_start = dram_clock;
            Cycles dram_done = dram_start;
            // Summarization fetches the static (full) width once;
            // generation fetches MSBs eagerly + LSBs for flat rows.
            const std::size_t k_row_msb =
                bytesPerRow(generation ? msb_bits : total_bits);
            const std::size_t k_row_lsb = bytesPerRow(lsb_bits);
            const double pass_lsb_frac = generation ? lsb_frac : 0.0;
            for (std::size_t hd = 0; hd < heads_alive; ++hd) {
                // K plane (MSB), V plane (MSB), Q rows.
                const auto fk = fetcher.stream(
                    planeBase(0, l, hd, cfg_.max_context, k_row_msb),
                    static_cast<std::uint64_t>(n) * k_row_msb, dram_start);
                dram_done = std::max(dram_done, fk.dram_cycles_done);
                const std::size_t v_rows = generation ? kept_v : n;
                const auto fv = fetcher.stream(
                    planeBase(2, l, hd, cfg_.max_context, k_row_msb),
                    static_cast<std::uint64_t>(v_rows) * k_row_msb,
                    dram_start);
                dram_done = std::max(dram_done, fv.dram_cycles_done);
                const std::size_t tiles =
                    generation ? 1
                               : std::max<std::size_t>(
                                     1, ceilDiv(n, sram_tokens));
                const auto fq = fetcher.stream(
                    planeBase(4, l, hd, cfg_.max_context, k_row_msb),
                    static_cast<std::uint64_t>(nq) * k_row_msb * tiles,
                    dram_start);
                dram_done = std::max(dram_done, fq.dram_cycles_done);
                // Expected LSB refetch traffic (K plane) for flat rows.
                const double lsb_bytes_exact =
                    pass_lsb_frac * static_cast<double>(nq) *
                    static_cast<double>(n) * k_row_lsb;
                if (lsb_bytes_exact >= 1.0) {
                    const auto fl = fetcher.stream(
                        planeBase(1, l, hd, cfg_.max_context, k_row_lsb),
                        static_cast<std::uint64_t>(lsb_bytes_exact),
                        dram_start);
                    dram_done = std::max(dram_done, fl.dram_cycles_done);
                }
                act.fetch_requests += static_cast<double>(n + v_rows + nq);
            }
            const double mem_ns =
                static_cast<double>(dram_done - dram_start) / dram_ghz;
            dram_clock = dram_done;

            // ---- Coarse-grained overlap ----
            const double layer_ns = std::max(compute_ns, mem_ns);
            core_ns += layer_ns;
            if (compute_ns >= mem_ns)
                compute_bound_ns += layer_ns;
            else
                memory_bound_ns += layer_ns;

            // ---- Work & energy accounting ----
            const double q_rows = static_cast<double>(nq) * heads_alive;
            const double qk_macs = q_rows * n * d;
            const double pv_macs = q_rows * kept_v * d;
            act.qk_macs += qk_macs * (1.0 + pass_lsb_frac); // LSB recompute
            act.pv_macs += pv_macs;
            act.softmax_elems += q_rows * n * (1.0 + pass_lsb_frac);
            if (policy.local_value_pruning)
                act.topk_comparisons += q_rows * 3.0 * n;
            if (policy.token_pruning && token_sched.ratioAt(l) > 0.0)
                act.topk_comparisons += 3.0 * n;
            // SRAM traffic: K lines re-read per query; V rows read for
            // the kept positions; both SRAMs are filled once per head.
            key_sram.recordReads(q_rows * n * d);
            value_sram.recordReads(q_rows * kept_v * d);
            if (!generation) {
                const std::size_t tiles =
                    std::max<std::size_t>(1, ceilDiv(n, sram_tokens));
                for (std::size_t hd = 0; hd < heads_alive; ++hd) {
                    for (std::size_t t = 0; t < tiles; ++t) {
                        const std::size_t tile_tokens = std::min(
                            sram_tokens, n - t * std::min(sram_tokens, n));
                        if (tile_tokens == 0)
                            continue;
                        key_sram.recordFill(tile_tokens, d);
                        value_sram.recordFill(tile_tokens, d);
                    }
                }
            }

            res.attention_flops += 2.0 * (qk_macs + pv_macs);

            // ---- Cascade pruning between layers ----
            if (policy.token_pruning)
                alive = survivors(alive, token_sched.ratioAt(l));
            if (policy.head_pruning)
                heads_alive = survivors(heads_alive,
                                        head_sched.ratioAt(l));
        }
    };

    // Summarization stage (skipped when the workload measures the
    // generation stage only, per the paper's GPT-2 methodology).
    if (!workload.skip_summarization)
        runPass(workload.summarize_len, workload.summarize_len, false);
    res.summarize_seconds = core_ns * 1e-9;

    // Generation stage: context grows by one token per iteration; tokens
    // pruned in earlier passes stay pruned (cascade across iterations is
    // approximated by re-applying the schedule to the grown context).
    for (std::size_t t = 0; t < workload.generate_len; ++t)
        runPass(1, workload.summarize_len + t + 1, true);
    res.generate_seconds = core_ns * 1e-9 - res.summarize_seconds;

    // ---- Dense (unpruned fp32) reference for reduction factors ----
    {
        const double fp32_row = static_cast<double>(d) * 4.0;
        const auto densePass = [&](double queries, double ctx) {
            res.attention_flops_dense +=
                2.0 * (queries * ctx * d + queries * ctx * d) * h_total *
                layers;
            res.dram_bytes_dense +=
                (ctx * fp32_row * 2.0 + queries * fp32_row) * h_total *
                layers;
        };
        if (!workload.skip_summarization)
            densePass(static_cast<double>(workload.summarize_len),
                      static_cast<double>(workload.summarize_len));
        for (std::size_t t = 0; t < workload.generate_len; ++t)
            densePass(1.0,
                      static_cast<double>(workload.summarize_len + t + 1));
    }

    act.sram_read_bytes =
        key_sram.bytesRead() + value_sram.bytesRead();
    act.sram_write_bytes =
        key_sram.bytesWritten() + value_sram.bytesWritten();

    res.cycles = static_cast<Cycles>(
        std::ceil(core_ns * cfg_.core_freq_ghz));
    res.seconds = core_ns * 1e-9;
    res.dram_bytes = static_cast<double>(hbm.totalBytes());
    act.cycles = static_cast<double>(res.cycles);
    act.dram_energy_pj = hbm.energyPj();
    res.energy = EnergyModel(cfg_.energy).compute(act);

    hbm.exportStats(res.stats);
    res.stats.set("pipeline.compute_bound_ns", compute_bound_ns);
    res.stats.set("pipeline.memory_bound_ns", memory_bound_ns);
    res.stats.set("pipeline.summarize_seconds", res.summarize_seconds);
    res.stats.set("pipeline.generate_seconds", res.generate_seconds);
    res.stats.set("pipeline.effective_tflops", res.effectiveTflops());
    res.stats.set("pipeline.dram_reduction", res.dramReduction());
    res.stats.set("pipeline.compute_reduction", res.computeReduction());
    res.stats.set("activity.qk_macs", act.qk_macs);
    res.stats.set("activity.pv_macs", act.pv_macs);
    res.stats.set("activity.softmax_elems", act.softmax_elems);
    res.stats.set("activity.topk_comparisons", act.topk_comparisons);
    res.stats.set("crossbar.conflicts",
                  static_cast<double>(xbar.totalConflicts()));
    res.stats.set("sram.key_bytes_read", key_sram.bytesRead());
    res.stats.set("sram.value_bytes_read", value_sram.bytesRead());
    return res;
}

} // namespace spatten
