/**
 * @file
 * Model of the A3 attention accelerator (Ham et al., HPCA 2020), the
 * paper's main prior-art comparison (Table III).
 *
 * A3's mechanism, as described in §V-B: it pre-sorts each dimension of
 * the key matrix, then uses a pre-specified number of largest/smallest
 * entries per dimension to compute partial attention scores; keys whose
 * partial score falls below a threshold are pruned locally (inside one
 * head). Consequences modeled here:
 *   - everything is fetched from DRAM before pruning (no DRAM savings);
 *   - pruning is local, so FFN work is untouched;
 *   - preprocessing (sorting) runs before each attention layer;
 *   - approximation yields a geomean 1.73x compute reduction on the
 *     scoring work (the figure the paper quotes).
 */
#ifndef SPATTEN_BASELINES_A3_MODEL_HPP
#define SPATTEN_BASELINES_A3_MODEL_HPP

#include "core/model_spec.hpp"

namespace spatten {

/** A3 hardware configuration (paper comparison point). */
struct A3Config
{
    std::size_t num_multipliers = 128; ///< Parallelism d=64 -> 128 mults.
    double freq_ghz = 1.0;
    double mem_bw_gbs = 64.0;
    double approx_speedup = 1.73; ///< Geomean compute reduction on QxK.
    std::size_t sort_parallelism = 64; ///< Preprocessing sort throughput.
    double energy_per_flop_pj = 3.7;   ///< Calibrated to 269 GOP/J.
};

/** Latency/throughput estimate for A3 on one workload. */
struct A3Result
{
    double seconds = 0;
    double dense_flops = 0;  ///< Work a dense datapath would do.
    double dram_bytes = 0;
    double preprocess_seconds = 0;
    double energy_j = 0;

    /** Effective throughput (dense work / time), the paper's metric. */
    double effectiveGops() const
    {
        return seconds > 0 ? dense_flops / seconds * 1e-9 : 0;
    }
};

/** The A3 model. Only BERT-style (summarization) workloads supported —
 *  A3 cannot accelerate memory-bounded generative models (§V-B). */
class A3Model
{
  public:
    explicit A3Model(A3Config cfg = A3Config{}) : cfg_(cfg) {}

    A3Result run(const WorkloadSpec& workload) const;

    const A3Config& config() const { return cfg_; }

  private:
    A3Config cfg_;
};

} // namespace spatten

#endif // SPATTEN_BASELINES_A3_MODEL_HPP
