/// Tests for per-layer pruning-ratio schedules.
#include <gtest/gtest.h>

#include <cmath>

#include "core/schedule.hpp"

namespace spatten {
namespace {

TEST(Schedule, FrontLayersUnpruned)
{
    const PruningSchedule s = makeTokenSchedule(12, 0.2);
    // ceil(0.15 * 12) = 2 front layers.
    EXPECT_EQ(s.ratioAt(0), 0.0);
    EXPECT_EQ(s.ratioAt(1), 0.0);
    EXPECT_GT(s.ratioAt(2), 0.0);
}

TEST(Schedule, HeadScheduleHasLargerFront)
{
    const PruningSchedule s = makeHeadSchedule(12, 0.2);
    // ceil(0.3 * 12) = 4 front layers.
    for (std::size_t l = 0; l < 4; ++l)
        EXPECT_EQ(s.ratioAt(l), 0.0);
    EXPECT_GT(s.ratioAt(4), 0.0);
}

TEST(Schedule, AverageOfPrunedLayersMatches)
{
    const double avg = 0.25;
    const PruningSchedule s = makeTokenSchedule(20, avg);
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t l = 0; l < 20; ++l) {
        if (s.ratioAt(l) > 0.0) {
            sum += s.ratioAt(l);
            ++count;
        }
    }
    ASSERT_GT(count, 0u);
    EXPECT_NEAR(sum / static_cast<double>(count), avg, 1e-9);
}

TEST(Schedule, RatiosIncreaseWithDepth)
{
    const PruningSchedule s = makeTokenSchedule(12, 0.3);
    double prev = -1.0;
    for (std::size_t l = 2; l < 12; ++l) {
        EXPECT_GE(s.ratioAt(l), prev);
        prev = s.ratioAt(l);
    }
}

TEST(Schedule, StartEndSymmetricAroundAvg)
{
    ScheduleConfig cfg;
    cfg.avg_ratio = 0.2;
    cfg.front_frac = 0.0;
    cfg.spread = 0.5;
    const PruningSchedule s(11, cfg);
    EXPECT_NEAR(s.ratioAt(0), 0.1, 1e-9);
    EXPECT_NEAR(s.ratioAt(10), 0.3, 1e-9);
    EXPECT_NEAR(s.ratioAt(5), 0.2, 1e-9);
}

TEST(Schedule, DisabledIsAllZero)
{
    const PruningSchedule s = PruningSchedule::disabled(8);
    for (std::size_t l = 0; l < 8; ++l)
        EXPECT_EQ(s.ratioAt(l), 0.0);
    EXPECT_DOUBLE_EQ(s.keepFraction(), 1.0);
}

TEST(Schedule, KeepFractionMatchesProduct)
{
    const PruningSchedule s = PruningSchedule::uniform(3, 0.5);
    EXPECT_NEAR(s.keepFraction(), 0.125, 1e-12);
}

TEST(Schedule, SingleLayerSchedule)
{
    ScheduleConfig cfg;
    cfg.avg_ratio = 0.4;
    cfg.front_frac = 0.0;
    const PruningSchedule s(1, cfg);
    EXPECT_NEAR(s.ratioAt(0), 0.4, 1e-9);
}

TEST(Schedule, ZeroLayers)
{
    const PruningSchedule s = makeTokenSchedule(0, 0.3);
    EXPECT_EQ(s.numLayers(), 0u);
    EXPECT_DOUBLE_EQ(s.keepFraction(), 1.0);
}

TEST(LengthAdaptiveRatio, LongerPrunesMore)
{
    const double short_r = lengthAdaptiveRatio(32, 0.05, 0.4);
    const double long_r = lengthAdaptiveRatio(992, 0.05, 0.4);
    EXPECT_LT(short_r, long_r);
    EXPECT_GE(short_r, 0.05);
    EXPECT_LE(long_r, 0.4);
}

TEST(LengthAdaptiveRatio, SaturatesAtMax)
{
    EXPECT_DOUBLE_EQ(lengthAdaptiveRatio(2048, 0.1, 0.35, 1024), 0.35);
}

} // namespace
} // namespace spatten
