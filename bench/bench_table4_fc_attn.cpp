/// Regenerates Table IV: FC vs attention GFLOPs and latency breakdown on
/// GPT-2-Medium (generation of 32 tokens), GPU vs SpAtten-e2e.
#include <cstdio>

#include "accel/e2e.hpp"
#include "baselines/platform_model.hpp"
#include "bench_util.hpp"
#include "workload/benchmarks.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Table IV",
           "FC & attention FLOPs/latency breakdown on GPT-2-Medium "
           "(generation stage, head pruning off)");

    // Average over the four GPT-2-Medium benchmarks, per the paper.
    double gpu_fc_s = 0, gpu_at_s = 0, sp_fc_s = 0, sp_at_s = 0;
    double fc_gflops = 0, at_gflops = 0, sp_at_gflops = 0;
    int count = 0;
    const PlatformModel gpu(PlatformSpec::titanXp());
    for (const auto& b : gptBenchmarks()) {
        if (b.workload.model.name != "gpt2-medium")
            continue;
        PruningPolicy pol = b.policy;
        pol.head_pruning = false; // Table IV: head pruning not employed
        SpAttenE2e e2e(SpAttenConfig{}, E2eConfig{8, 0.85});
        const E2eResult r = e2e.run(b.workload, pol);
        sp_at_s += r.attention.generate_seconds;
        sp_fc_s += r.fc_gen_seconds;
        sp_at_gflops += r.attention.attention_flops * 1e-9; // pruned
        WorkloadSpec sum_only = b.workload;
        sum_only.generate_len = 0;
        gpu_at_s += gpu.attention(b.workload).seconds -
                    gpu.attention(sum_only).seconds;
        gpu_fc_s += gpu.fc(b.workload).seconds - gpu.fc(sum_only).seconds;
        fc_gflops +=
            2.0 * fcParamsPerLayer(b.workload.model) *
            static_cast<double>(b.workload.model.num_layers) *
            static_cast<double>(b.workload.generate_len) * 1e-9;
        // Dense generation-stage attention FLOPs.
        const auto& m = b.workload.model;
        for (std::size_t t = 0; t < b.workload.generate_len; ++t) {
            const double ctx =
                static_cast<double>(b.workload.summarize_len + t + 1);
            at_gflops += 2.0 * 2.0 * ctx *
                         static_cast<double>(m.d_head) *
                         static_cast<double>(m.num_heads) *
                         static_cast<double>(m.num_layers) * 1e-9;
        }
        ++count;
    }
    const double n = count;
    std::printf("%-14s %12s %12s %16s %16s\n", "platform", "FC GFLOPs",
                "Attn GFLOPs", "FC latency(ms)", "Attn latency(ms)");
    rule();
    std::printf("%-14s %12.1f %12.1f %16.2f %16.2f\n", "GPU",
                fc_gflops / n, at_gflops / n, gpu_fc_s / n * 1e3,
                gpu_at_s / n * 1e3);
    std::printf("%-14s %12.1f %12.1f %16.2f %16.2f\n", "SpAtten-e2e",
                fc_gflops / n, sp_at_gflops / n, sp_fc_s / n * 1e3,
                sp_at_s / n * 1e3);
    rule();
    std::printf("Latency shares — GPU: FC %.1f%%, attn %.1f%% "
                "(paper 51.4%% / 48.6%%)\n",
                100.0 * gpu_fc_s / (gpu_fc_s + gpu_at_s),
                100.0 * gpu_at_s / (gpu_fc_s + gpu_at_s));
    std::printf("Latency shares — SpAtten-e2e: FC %.1f%%, attn %.1f%% "
                "(paper 92.4%% / 7.6%%)\n",
                100.0 * sp_fc_s / (sp_fc_s + sp_at_s),
                100.0 * sp_at_s / (sp_fc_s + sp_at_s));
    std::printf("Paper GFLOPs: FC 19.3 (85.6%%), attention 3.3 (14.4%%) "
                "dense / 0.9 pruned on SpAtten.\n");
    return 0;
}
