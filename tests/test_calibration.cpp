/// Tests for the measured-policy calibration bridge.
#include <gtest/gtest.h>

#include "accel/spatten_accelerator.hpp"
#include "core/schedule.hpp"
#include "workload/calibration.hpp"
#include "workload/synthetic_tasks.hpp"

namespace spatten {
namespace {

TEST(EquivalentAvgRatio, ZeroForFullKeep)
{
    EXPECT_DOUBLE_EQ(equivalentAvgRatio(1.0, 12), 0.0);
}

TEST(EquivalentAvgRatio, RoundTripsScheduleMeanKeep)
{
    // For a known ratio, compute the schedule's mean keep and back-solve.
    for (double ratio : {0.05, 0.15, 0.3}) {
        const std::size_t layers = 12;
        const PruningSchedule s = makeTokenSchedule(layers, ratio);
        double keep = 1.0, sum = 0.0;
        for (std::size_t l = 0; l < layers; ++l) {
            sum += keep;
            keep *= 1.0 - s.ratioAt(l);
        }
        const double mean_keep = sum / layers;
        EXPECT_NEAR(equivalentAvgRatio(mean_keep, layers), ratio, 1e-6);
    }
}

TEST(EquivalentAvgRatio, MonotoneInKeep)
{
    EXPECT_GT(equivalentAvgRatio(0.3, 12), equivalentAvgRatio(0.7, 12));
}

TEST(Calibration, MeasuresAndBacksolves)
{
    KeywordTask task;
    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 16;
    mc.heads = 2;
    mc.layers = 3;
    mc.ffn_dim = 24;
    mc.max_len = task.seqLen();
    mc.num_classes = task.numClasses();
    TransformerModel model(mc);
    const auto ex = task.sample(10);

    PruningPolicy pol = PruningPolicy::disabled();
    pol.token_pruning = true;
    pol.token_avg_ratio = 0.3;
    pol.pq.max_prob_threshold = 0.1;
    const CalibrationResult cal = calibrateClassifier(model, ex, pol);
    EXPECT_LT(cal.measured_keys_frac, 1.0);
    EXPECT_GT(cal.equivalent_avg_ratio, 0.0);
    EXPECT_GE(cal.measured_lsb_fraction, 0.0);
    EXPECT_LE(cal.measured_lsb_fraction, 1.0);
    // The calibrated policy carries the measured knobs.
    EXPECT_DOUBLE_EQ(cal.calibrated.lsb_fraction,
                     cal.measured_lsb_fraction);
    EXPECT_DOUBLE_EQ(cal.calibrated.token_avg_ratio,
                     cal.equivalent_avg_ratio);
}

TEST(Calibration, ZeroPolicyMeasuresNothing)
{
    KeywordTask task;
    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 16;
    mc.heads = 2;
    mc.layers = 2;
    mc.ffn_dim = 24;
    mc.max_len = task.seqLen();
    mc.num_classes = task.numClasses();
    TransformerModel model(mc);
    const auto ex = task.sample(5);
    const CalibrationResult cal =
        calibrateClassifier(model, ex, PruningPolicy::disabled());
    EXPECT_DOUBLE_EQ(cal.measured_keys_frac, 1.0);
    EXPECT_DOUBLE_EQ(cal.equivalent_avg_ratio, 0.0);
    EXPECT_DOUBLE_EQ(cal.accuracy_delta, 0.0);
}

TEST(Calibration, LmPathAndAcceleratorHandoff)
{
    CopyLmTask task;
    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 16;
    mc.heads = 2;
    mc.layers = 3;
    mc.ffn_dim = 24;
    mc.max_len = task.seqLen();
    TransformerModel model(mc);
    const auto ex = task.sample(5);

    PruningPolicy pol = PruningPolicy::disabled();
    pol.token_pruning = true;
    pol.token_avg_ratio = 0.4;
    const CalibrationResult cal = calibrateLm(model, ex, pol);
    EXPECT_LT(cal.measured_keys_frac, 1.0);

    // The calibrated policy must drive the accelerator without issues
    // and produce less traffic than the dense run.
    WorkloadSpec w;
    w.model = ModelSpec::gpt2Small();
    w.summarize_len = 256;
    w.generate_len = 4;
    w.skip_summarization = true;
    SpAttenAccelerator accel;
    const RunResult pruned = accel.run(w, cal.calibrated);
    const RunResult dense = accel.run(w, PruningPolicy::disabled());
    EXPECT_LT(pruned.dram_bytes, dense.dram_bytes);
}

} // namespace
} // namespace spatten
