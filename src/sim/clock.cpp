#include "sim/clock.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace spatten {

ClockDomain::ClockDomain(double freq_ghz, std::string name)
    : freq_ghz_(freq_ghz), name_(std::move(name))
{
    SPATTEN_ASSERT(freq_ghz > 0.0, "clock '%s' frequency %f must be > 0",
                   name_.c_str(), freq_ghz);
}

Cycles
ClockDomain::fromNs(double ns) const
{
    SPATTEN_ASSERT(ns >= 0.0, "negative duration %f ns", ns);
    return static_cast<Cycles>(std::ceil(ns * freq_ghz_));
}

Resource::Resource(std::string name) : name_(std::move(name)) {}

Cycles
Resource::acquire(Cycles ready, Cycles occupancy)
{
    const Cycles start = std::max(ready, free_at_);
    free_at_ = start + occupancy;
    busy_cycles_ += occupancy;
    return free_at_;
}

double
Resource::utilization(Cycles total) const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(busy_cycles_) / static_cast<double>(total);
}

void
Resource::reset()
{
    free_at_ = 0;
    busy_cycles_ = 0;
}

} // namespace spatten
