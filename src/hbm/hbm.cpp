#include "hbm/hbm.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace spatten {

HbmModel::HbmModel(HbmConfig cfg) : cfg_(cfg)
{
    SPATTEN_ASSERT(cfg_.channels > 0 && cfg_.banks_per_channel > 0,
                   "bad HBM geometry");
    SPATTEN_ASSERT(isPow2(cfg_.interleave_bytes) && isPow2(cfg_.row_bytes),
                   "interleave/row sizes must be powers of two");
    channels_.resize(static_cast<std::size_t>(cfg_.channels));
    for (auto& ch : channels_)
        ch.banks.resize(static_cast<std::size_t>(cfg_.banks_per_channel));
}

void
HbmModel::mapAddress(std::uint64_t addr, int& channel, int& bank,
                     std::int64_t& row) const
{
    const std::uint64_t block = addr / cfg_.interleave_bytes;
    channel = static_cast<int>(block % static_cast<std::uint64_t>(
                                           cfg_.channels));
    // Address within the channel after removing the interleave bits.
    const std::uint64_t in_channel =
        (block / static_cast<std::uint64_t>(cfg_.channels)) *
            cfg_.interleave_bytes +
        addr % cfg_.interleave_bytes;
    row = static_cast<std::int64_t>(in_channel / cfg_.row_bytes);
    bank = static_cast<int>(static_cast<std::uint64_t>(row) %
                            static_cast<std::uint64_t>(
                                cfg_.banks_per_channel));
}

Cycles
HbmModel::serveChunk(std::uint64_t addr, std::uint64_t bytes, bool write,
                     Cycles ready)
{
    int ch_idx = 0, bank_idx = 0;
    std::int64_t row = 0;
    mapAddress(addr, ch_idx, bank_idx, row);
    Channel& ch = channels_[static_cast<std::size_t>(ch_idx)];
    Bank& bank = ch.banks[static_cast<std::size_t>(bank_idx)];

    Cycles start = std::max(ready, ch.busy_until);
    Cycles access_lat = cfg_.t_cl;
    if (bank.open_row != row) {
        access_lat += (bank.open_row >= 0 ? cfg_.t_rp : 0) + cfg_.t_rcd;
        bank.open_row = row;
        ++activations_;
    }
    const double eff_bytes_per_cycle =
        cfg_.bytes_per_cycle * cfg_.bus_efficiency;
    const Cycles burst = std::max<Cycles>(
        1, static_cast<Cycles>(std::ceil(
               static_cast<double>(bytes) / eff_bytes_per_cycle)));
    // The channel data bus is occupied for the burst; CAS latency
    // overlaps with other banks' work and extends only the completion.
    ch.busy_until = start + burst;
    if (write)
        bytes_written_ += bytes;
    else
        bytes_read_ += bytes;
    return start + access_lat + burst;
}

Cycles
HbmModel::access(const HbmRequest& req, Cycles ready)
{
    SPATTEN_ASSERT(req.bytes > 0, "zero-byte HBM request");
    ++requests_;
    Cycles done = ready;
    std::uint64_t addr = req.addr;
    std::uint64_t remaining = req.bytes;
    while (remaining > 0) {
        const std::uint64_t in_block = addr % cfg_.interleave_bytes;
        const std::uint64_t chunk =
            std::min(remaining, cfg_.interleave_bytes - in_block);
        done = std::max(done, serveChunk(addr, chunk, req.write, ready));
        addr += chunk;
        remaining -= chunk;
    }
    return done;
}

Cycles
HbmModel::accessBatch(const std::vector<HbmRequest>& reqs, Cycles ready)
{
    Cycles done = ready;
    for (const auto& r : reqs)
        done = std::max(done, access(r, ready));
    return done;
}

Cycles
HbmModel::streamCycles(std::uint64_t bytes) const
{
    const std::uint64_t per_cycle =
        static_cast<std::uint64_t>(cfg_.channels) *
        static_cast<std::uint64_t>(cfg_.bytes_per_cycle);
    return std::max<Cycles>(1, ceilDiv(bytes, per_cycle));
}

double
HbmModel::energyPj() const
{
    return static_cast<double>(activations_) * cfg_.act_energy_pj +
           static_cast<double>(totalBytes()) * 8.0 * cfg_.bit_energy_pj;
}

Cycles
HbmModel::drainCycle() const
{
    Cycles m = 0;
    for (const auto& ch : channels_)
        m = std::max(m, ch.busy_until);
    return m;
}

void
HbmModel::exportStats(StatSet& stats) const
{
    stats.add("hbm.bytes_read", static_cast<double>(bytes_read_));
    stats.add("hbm.bytes_written", static_cast<double>(bytes_written_));
    stats.add("hbm.row_activations", static_cast<double>(activations_));
    stats.add("hbm.requests", static_cast<double>(requests_));
    stats.add("hbm.energy_pj", energyPj());
}

void
HbmModel::reset()
{
    for (auto& ch : channels_) {
        ch.busy_until = 0;
        for (auto& b : ch.banks)
            b.open_row = -1;
    }
    bytes_read_ = bytes_written_ = activations_ = requests_ = 0;
}

} // namespace spatten
