/// Continuous-batching serving bench: a 64-request Poisson trace served
/// on pools of 1, 2, and 4 simulated accelerators, then the
/// memory-pressure scenarios — the same demand under a KV byte budget
/// tight enough to force admission blocking and preemption, with and
/// without cascade pruning (pruned KV admits measurably more
/// concurrency), plus a bursty heavy-tailed trace served under the
/// priority queue policy. Reports TTFT / ITL percentiles, goodput under
/// the SLO, per-accelerator utilization, preemption/recompute overhead,
/// and KV occupancy, and verifies the determinism contract on the spot:
/// per-request results are bit-identical across host thread counts
/// {1, 4}, and per-request *service* results (cycles, energy, KV
/// trajectory) are bit-identical across shard counts.
#include <cstdio>

#include "bench_util.hpp"
#include "serve/continuous_batch_scheduler.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Continuous-batching serving",
           "64-request Poisson trace on 1/2/4 accelerators, "
           "iteration-level scheduling with cascade-pruned decode KV");

    ArrivalTraceConfig tc;
    tc.num_requests = 64;
    tc.mean_interarrival_s = 0.5e-3;
    tc.seed = 0x5eed;
    const auto trace = generatePoissonTrace(tc);

    std::printf("%zu requests, mean interarrival %.2f ms, prompts "
                "%zu-%zu, outputs %zu-%zu\n\n",
                trace.size(), tc.mean_interarrival_s * 1e3, tc.min_prompt,
                tc.max_prompt, tc.min_output, tc.max_output);
    std::printf("%-7s %10s %10s %10s %10s %9s %9s %9s\n", "accels",
                "ttft p50", "ttft p99", "itl p50", "itl p99", "goodput",
                "util", "makespan");
    std::printf("%-7s %10s %10s %10s %10s %9s %9s %9s\n", "", "(ms)",
                "(ms)", "(us)", "(us)", "(req/s)", "(mean)", "(ms)");
    rule();

    std::vector<BenchRecord> records;
    ServeReport single_accel;
    for (const std::size_t accels : {1u, 2u, 4u}) {
        ContinuousBatchConfig sc;
        sc.num_accelerators = accels;
        sc.max_active = 8;
        sc.slo_ttft_s = 25e-3;
        sc.slo_itl_s = 2e-3;

        // Bit-identity across host thread counts: the full report —
        // every timestamp and per-request result — must match.
        sc.num_threads = 1;
        const ServeReport r1 =
            ContinuousBatchScheduler(SpAttenConfig{}, sc).run(trace);
        sc.num_threads = 4;
        const ServeReport r4 =
            ContinuousBatchScheduler(SpAttenConfig{}, sc).run(trace);
        for (std::size_t i = 0; i < trace.size(); ++i) {
            const ServedRequest &a = r1.requests[i], &b = r4.requests[i];
            if (a.sim.cycles != b.sim.cycles ||
                a.sim.seconds != b.sim.seconds ||
                a.finish_s != b.finish_s ||
                a.first_token_s != b.first_token_s ||
                a.token_times_s != b.token_times_s ||
                a.kv_trace != b.kv_trace) {
                std::printf("DETERMINISM VIOLATION (threads) at request "
                            "%zu, %zu accels\n",
                            i, accels);
                return 1;
            }
        }
        // Service results are placement-independent: bit-identical
        // across shard counts (queueing metrics legitimately differ).
        if (accels == 1) {
            single_accel = r1;
        } else {
            for (std::size_t i = 0; i < trace.size(); ++i) {
                const ServedRequest& a = single_accel.requests[i];
                const ServedRequest& b = r1.requests[i];
                if (a.sim.cycles != b.sim.cycles ||
                    a.sim.dram_bytes != b.sim.dram_bytes ||
                    a.service_seconds != b.service_seconds ||
                    a.kv_trace != b.kv_trace) {
                    std::printf("DETERMINISM VIOLATION (shards) at "
                                "request %zu, %zu accels\n",
                                i, accels);
                    return 1;
                }
            }
        }

        double util = 0;
        for (double u : r1.accel_util)
            util += u;
        util /= static_cast<double>(accels);
        std::printf("%-7zu %10.2f %10.2f %10.1f %10.1f %9.0f %9.2f "
                    "%9.2f\n",
                    accels, r1.ttft_p50_s * 1e3, r1.ttft_p99_s * 1e3,
                    r1.itl_p50_s * 1e6, r1.itl_p99_s * 1e6,
                    r1.goodput_rps, util, r1.makespan_s * 1e3);
        records.push_back({"poisson64-accel" + std::to_string(accels),
                           r1.total_cycles, r1.makespan_s,
                           r1.makespan_s > 0 ? r1.total_flops /
                                                   r1.makespan_s * 1e-12
                                             : 0.0,
                           r1.dram_reduction});
    }
    rule();
    std::printf("All thread and shard counts produced bit-identical "
                "per-request results.\n");

    // ---- Memory pressure: same demand, KV budget 1.25x the worst
    // single request, with and without cascade pruning ----
    std::printf("\nMemory-pressure scenarios (KV budget = 1.25x worst "
                "request, 4-token blocks)\n");
    std::printf("%-16s %8s %9s %10s %8s %9s %10s\n", "scenario",
                "preempt", "recomp", "peak conc", "kv peak", "kv mean",
                "ttft p99");
    std::printf("%-16s %8s %9s %10s %8s %9s %10s\n", "", "", "(tok)",
                "(reqs)", "(MiB)", "(MiB)", "(ms)");
    rule();

    ArrivalTraceConfig dense_tc = tc;
    dense_tc.policy = PruningPolicy::disabled();
    dense_tc.min_output = 16;
    dense_tc.max_output = 32;
    const auto dense_trace = generatePoissonTrace(dense_tc);
    ArrivalTraceConfig pruned_tc = dense_tc;
    pruned_tc.policy = PruningPolicy{};
    const auto pruned_trace = generatePoissonTrace(pruned_tc);

    ContinuousBatchConfig mem_sc;
    mem_sc.max_active = 8;
    mem_sc.slo_ttft_s = 25e-3;
    mem_sc.kv_block_tokens = 4;
    mem_sc.kv_capacity_bytes =
        kvBudgetForWorstRequest(dense_trace, 1.25, mem_sc);

    const auto showMem = [&](const char* name, const ServeReport& r) {
        std::printf("%-16s %8zu %9zu %10zu %8.1f %9.1f %10.2f\n", name,
                    r.preemptions, r.recompute_tokens,
                    r.peak_concurrency,
                    static_cast<double>(r.kv_peak_bytes[0]) /
                        (1024.0 * 1024.0),
                    r.kv_mean_bytes[0] / (1024.0 * 1024.0),
                    r.ttft_p99_s * 1e3);
    };
    const ServeReport dense =
        ContinuousBatchScheduler(SpAttenConfig{}, mem_sc)
            .run(dense_trace);
    const ServeReport pruned =
        ContinuousBatchScheduler(SpAttenConfig{}, mem_sc)
            .run(pruned_trace);
    showMem("mempress-dense", dense);
    showMem("mempress-pruned", pruned);
    if (dense.preemptions < 1) {
        std::printf("FAIL: the capped dense scenario must preempt\n");
        return 1;
    }
    if (pruned.peak_concurrency <= dense.peak_concurrency) {
        std::printf("FAIL: cascade pruning must admit strictly higher "
                    "concurrency under the same KV budget\n");
        return 1;
    }
    std::printf("cascade pruning raised admissible concurrency %zu -> "
                "%zu under the same budget\n",
                dense.peak_concurrency, pruned.peak_concurrency);
    records.push_back({"mempress-dense", dense.total_cycles,
                       dense.makespan_s,
                       dense.makespan_s > 0
                           ? dense.total_flops / dense.makespan_s * 1e-12
                           : 0.0,
                       dense.dram_reduction});
    records.push_back({"mempress-pruned", pruned.total_cycles,
                       pruned.makespan_s,
                       pruned.makespan_s > 0
                           ? pruned.total_flops / pruned.makespan_s *
                                 1e-12
                           : 0.0,
                       pruned.dram_reduction});

    // ---- Bursty heavy-tailed demand served priority-first under the
    // same capped budget ----
    ArrivalTraceConfig burst_tc = pruned_tc;
    burst_tc.process = ArrivalProcess::OnOffBurst;
    burst_tc.burst_on_mean_s = 2e-3;
    burst_tc.burst_off_mean_s = 15e-3;
    burst_tc.prompt_dist = PromptLengthDist::BoundedPareto;
    burst_tc.pareto_alpha = 1.2;
    burst_tc.priority_levels = 3;
    const auto burst_trace = generateArrivalTrace(burst_tc);
    ContinuousBatchConfig burst_sc = mem_sc;
    burst_sc.queue = QueuePolicy::Priority;
    // Budget sized from the trace actually served: the Pareto draws
    // come from a different PRNG stream than the dense trace's.
    burst_sc.kv_capacity_bytes =
        kvBudgetForWorstRequest(burst_trace, 1.25, burst_sc);
    const ServeReport burst =
        ContinuousBatchScheduler(SpAttenConfig{}, burst_sc)
            .run(burst_trace);
    showMem("burst-priority", burst);
    records.push_back({"burst-priority", burst.total_cycles,
                       burst.makespan_s,
                       burst.makespan_s > 0
                           ? burst.total_flops / burst.makespan_s * 1e-12
                           : 0.0,
                       burst.dram_reduction});

    writeBenchJson("serving", records);
    return 0;
}
