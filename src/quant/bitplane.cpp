#include "quant/bitplane.hpp"

#include "common/math_util.hpp"

namespace spatten {

const BitplaneSetting kPaperBitplaneSettings[5] = {
    {4, 4}, {6, 4}, {8, 4}, {10, 4}, {12, 4},
};

std::size_t
BitplaneTensor::msbPlaneBytes() const
{
    return ceilDiv(numel() * static_cast<std::size_t>(setting.msb_bits),
                   std::size_t{8});
}

std::size_t
BitplaneTensor::lsbPlaneBytes() const
{
    return ceilDiv(numel() * static_cast<std::size_t>(setting.lsb_bits),
                   std::size_t{8});
}

namespace quant {

BitplaneTensor
splitPlanes(const QuantizedTensor& qt, int lsb_bits)
{
    SPATTEN_ASSERT(lsb_bits >= 0 && lsb_bits < qt.bits,
                   "lsb_bits %d invalid for %d-bit tensor", lsb_bits,
                   qt.bits);
    BitplaneTensor bp;
    bp.shape = qt.shape;
    bp.setting = {qt.bits - lsb_bits, lsb_bits};
    bp.scale = qt.scale;
    bp.msb.resize(qt.q.size());
    bp.lsb.resize(qt.q.size());
    const std::int32_t mask = (1 << lsb_bits) - 1;
    for (std::size_t i = 0; i < qt.q.size(); ++i) {
        // Arithmetic shift: truncation toward -inf keeps the MSB plane a
        // valid signed (bits - lsb_bits)-bit code for any signed input.
        bp.msb[i] = qt.q[i] >> lsb_bits;
        bp.lsb[i] = qt.q[i] & mask;
    }
    return bp;
}

BitplaneTensor
splitPlanes(const Tensor& x, const BitplaneSetting& setting)
{
    const QuantizedTensor qt = quantize(x, setting.totalBits());
    return splitPlanes(qt, setting.lsb_bits);
}

Tensor
reconstructMsbOnly(const BitplaneTensor& bp)
{
    Tensor out(bp.shape);
    const float plane_scale =
        bp.scale * static_cast<float>(1 << bp.setting.lsb_bits);
    for (std::size_t i = 0; i < bp.msb.size(); ++i)
        out[i] = static_cast<float>(bp.msb[i]) * plane_scale;
    return out;
}

Tensor
reconstructFull(const BitplaneTensor& bp)
{
    Tensor out(bp.shape);
    for (std::size_t i = 0; i < bp.msb.size(); ++i) {
        const std::int32_t code =
            reconstructCode(bp.msb[i], bp.lsb[i], bp.setting.lsb_bits);
        out[i] = static_cast<float>(code) * bp.scale;
    }
    return out;
}

std::int32_t
convertBitwidth(std::int32_t code, int from_bits, int to_bits)
{
    SPATTEN_ASSERT(from_bits >= 2 && from_bits <= to_bits && to_bits <= 32,
                   "convertBitwidth %d -> %d", from_bits, to_bits);
    // The code is already a signed value in [-2^(from-1), 2^(from-1)-1];
    // widening is a no-op on a two's-complement machine, so just check the
    // range invariant.
    SPATTEN_ASSERT(code >= -(1 << (from_bits - 1)) &&
                       code < (1 << (from_bits - 1)),
                   "code %d out of %d-bit range", code, from_bits);
    return code;
}

} // namespace quant
} // namespace spatten
