/**
 * @file
 * Token-by-token generative decode on the stage graph.
 *
 * DecodeSession is the per-request unit of the continuous-batching
 * serving model (serve/continuous_batch_scheduler.hpp): one prefill pass
 * over the prompt, then one decodeStep() per generated token. Unlike
 * SpAttenPipeline::run(), which re-applies the pruning schedule to the
 * full grown context every generation iteration, a session carries the
 * cascade-pruned KV length across steps — each generated token re-enters
 * the stage graph against `kv + 1` tokens, where `kv` is the survivor
 * count the previous pass left behind. Under cascade pruning the KV
 * working set therefore shrinks as decode proceeds (pinned by
 * tests/test_continuous_scheduler.cpp); with pruning disabled it grows
 * by exactly one token per step.
 *
 * A session is a pure function of (config, workload, policy, seed): its
 * step costs, KV trajectory, and finalized RunResult are bit-identical
 * regardless of which scheduler thread or accelerator shard drives it.
 *
 * DecodeSession implements the serving layer's BackendSession contract
 * (serve/accelerator_backend.hpp), so a SpAtten device slots into the
 * same heterogeneous scheduler fleet as the baseline adapter sessions.
 */
#ifndef SPATTEN_ACCEL_DECODE_SESSION_HPP
#define SPATTEN_ACCEL_DECODE_SESSION_HPP

#include <cstdint>
#include <vector>

#include "accel/attention_graph.hpp"
#include "accel/pipeline.hpp"
#include "serve/accelerator_backend.hpp"

namespace spatten {

/** Outcome of a full prefill + decode loop (SpAttenAccelerator::runDecode). */
struct DecodeResult
{
    RunResult result;             ///< Aggregate per-request simulation result.
    double prefill_seconds = 0;   ///< Prompt-processing (TTFT) share.
    std::vector<double> step_seconds;      ///< One entry per generated token.
    std::vector<std::size_t> kv_lengths;   ///< KV survivors after prefill
                                           ///< and after each decode step.
    std::size_t peak_kv_bytes = 0; ///< Largest resident KV cache across
                                   ///< the loop: the un-pruned prompt KV
                                   ///< held during prefill and each
                                   ///< decode pass's pre-prune transient
                                   ///< (carried KV + 1 token) — what a
                                   ///< serving-layer KvPool charges,
                                   ///< before block rounding.
};

/** One in-flight generative request on one simulated accelerator. */
class DecodeSession : public BackendSession
{
  public:
    DecodeSession(const SpAttenConfig& cfg, const WorkloadSpec& workload,
                  const PruningPolicy& policy,
                  std::uint64_t request_seed = kDefaultRequestSeed);

    // The attention graph holds references into its own members, so a
    // session is pinned to its address (heap-allocate to hand around).
    DecodeSession(const DecodeSession&) = delete;
    DecodeSession& operator=(const DecodeSession&) = delete;

    /**
     * Process the prompt (summarization pass) and establish the initial
     * cascade-pruned KV state. Workloads with skip_summarization (the
     * paper's GPT-2 methodology: a pre-summarized sentence) charge no
     * prefill time and enter decode with the full unpruned prompt KV.
     * @return simulated seconds of the pass.
     */
    double prefill() override;

    /**
     * Prefill with the first @p cached_prefix_tokens tokens' KV already
     * resident (mapped copy-free by the serving layer's shared-prefix
     * cache): only the remaining suffix queries run through the stage
     * graph, against the full prompt context. Cascade pruning depends
     * only on the entering context length and the schedule — never on
     * the query count — so the pruned KV trajectory (and with it every
     * decode step) is bit-identical to a cold-cache prefill; only the
     * prefill compute shrinks. The hint is capped at summarize_len - 1:
     * like vLLM, the last prompt token is always recomputed so a fully
     * cached prompt still produces its first logits.
     */
    double prefillWithCachedPrefix(std::size_t cached_prefix_tokens)
        override;

    /**
     * One chunk of a split prefill: run prompt tokens
     * [offset, offset + len) as the pass's queries against the causal
     * context offset + len. ExecutionContext::beginPass resets the
     * cascade state fresh per pass, so pruning is a function of the
     * *entering context length* alone — the final chunk enters with the
     * full prompt context and therefore leaves exactly the KV state a
     * monolithic prefill would, making every subsequent decode step
     * bit-identical to the unchunked run (pinned by
     * tests/test_chunked_prefill.cpp); only the prefill compute is
     * spread (and shrunk — earlier chunks attend to shorter contexts)
     * across iterations. prefilled() flips at the final chunk.
     */
    double prefillChunk(std::size_t offset, std::size_t len) override;

    /**
     * Generate one token: run a single-query generation pass against the
     * carried KV plus the previous step's token, then adopt the pass's
     * pruned survivor count as the next KV length.
     * @return simulated seconds of the step.
     */
    double decodeStep() override;

    /**
     * Layer-stepped decode for batched lane-interleaved evaluation
     * (SpAttenAccelerator::stepDecodeBatch): beginDecodeStep() opens
     * the pass and returns the number of stepDecodeLayer() calls owed
     * (0 when the step was served whole from the replay memo);
     * endDecodeStep() lands the KV bookkeeping and returns the step's
     * simulated seconds. The sequence begin / stepLayer x N / end is
     * exactly decodeStep() — decodeStep() itself runs through it.
     */
    std::size_t beginDecodeStep();
    void stepDecodeLayer() { graph_.stepDecodeLayer(); }
    double endDecodeStep();

    bool prefilled() const override { return prefilled_; }

    /** All generate_len tokens emitted (a 0-token request is done at
     *  prefill). */
    bool done() const override
    {
        return prefilled_ && tokens_ >= workload_.generate_len;
    }

    /** Current cascade-pruned KV length (survivors of the last pass). */
    std::size_t kvLength() const override { return kv_len_; }

    /** Bytes one token of this session's KV cache occupies. */
    std::size_t kvBytesPerToken() const
    {
        return spatten::kvBytesPerToken(workload_.model);
    }

    /**
     * Resident KV-cache bytes right now (cascade-pruned length x bytes
     * per token), before any allocator block rounding. Introspection
     * only: a serving-layer KvPool accounts in token counts and applies
     * its own block rounding via KvPool::bytesForTokens.
     */
    std::size_t kvBytes() const { return kv_len_ * kvBytesPerToken(); }

    std::size_t tokensGenerated() const { return tokens_; }
    std::size_t tokensTotal() const { return workload_.generate_len; }

    /** KV survivor count after prefill and after each decode step. */
    const std::vector<std::size_t>& kvTrace() const override
    {
        return kv_trace_;
    }

    const WorkloadSpec& workload() const override { return workload_; }

    /** Total simulated seconds consumed so far (prefill + steps). */
    double elapsedSeconds() const { return graph_.elapsedSeconds(); }

    /** Enable/disable the decode-step replay memo (default on). The
     *  memo is a pure host-side optimization — every simulated result
     *  is bit-identical either way (tests/test_decode_step_memo.cpp);
     *  turn it off only for A/B perf measurement. */
    void setStepMemo(bool on) { graph_.setStepMemo(on); }
    /** Decode steps served by replaying the recorded pass. */
    std::size_t memoReplays() const { return graph_.memoReplays(); }
    /** Serve HBM via the reference model (see AttentionGraph). */
    void setReferenceServing(bool on) { graph_.setReferenceServing(on); }

    /** Land the per-request totals; call once the session is done() —
     *  or at eviction, possibly mid-prefill, to account the wasted
     *  incarnation (recompute-style preemption can strike between
     *  chunks of a split prefill). */
    RunResult finalize() const override;

  private:
    WorkloadSpec workload_;
    AttentionGraph graph_;
    std::size_t kv_len_ = 0;
    std::size_t tokens_ = 0;
    bool prefilled_ = false;
    std::size_t prefill_pos_ = 0; ///< Prompt tokens processed by chunks.
    double prefill_seconds_ = 0;
    double step_before_s_ = 0; ///< Elapsed at beginDecodeStep().
    std::vector<std::size_t> kv_trace_;
};

} // namespace spatten

#endif // SPATTEN_ACCEL_DECODE_SESSION_HPP
