#include "workload/arrival_trace.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace spatten {

std::vector<TracedRequest>
generatePoissonTrace(const ArrivalTraceConfig& cfg)
{
    SPATTEN_ASSERT(cfg.mean_interarrival_s > 0, "bad interarrival mean");
    SPATTEN_ASSERT(cfg.min_prompt >= 1 && cfg.min_prompt <= cfg.max_prompt,
                   "bad prompt bounds [%zu, %zu]", cfg.min_prompt,
                   cfg.max_prompt);
    SPATTEN_ASSERT(cfg.min_output <= cfg.max_output,
                   "bad output bounds [%zu, %zu]", cfg.min_output,
                   cfg.max_output);

    Prng prng(cfg.seed);
    std::vector<TracedRequest> trace;
    trace.reserve(cfg.num_requests);
    double t = 0.0;
    for (std::size_t i = 0; i < cfg.num_requests; ++i) {
        // Exponential gap via inverse transform; 1-u keeps the argument
        // of log strictly positive (uniform() is in [0, 1)).
        t += -std::log(1.0 - prng.uniform()) * cfg.mean_interarrival_s;
        const std::size_t prompt =
            cfg.min_prompt +
            prng.below(cfg.max_prompt - cfg.min_prompt + 1);
        const std::size_t output =
            cfg.min_output +
            prng.below(cfg.max_output - cfg.min_output + 1);

        TracedRequest req;
        req.id = i;
        req.arrival_s = t;
        req.workload.name = "trace-" + std::to_string(i) + "-p" +
                            std::to_string(prompt) + "-g" +
                            std::to_string(output);
        req.workload.model = cfg.model;
        req.workload.summarize_len = prompt;
        req.workload.generate_len = output;
        req.policy = cfg.policy;
        req.seed = prng();
        trace.push_back(std::move(req));
    }
    return trace;
}

} // namespace spatten
