#include "workload/arrival_trace.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace spatten {

namespace {

/** Exponential draw via inverse transform; 1-u keeps the argument of
 *  log strictly positive (uniform() is in [0, 1)). */
double
expDraw(Prng& prng, double mean)
{
    return -std::log(1.0 - prng.uniform()) * mean;
}

/**
 * Bounded Pareto draw over [lo, hi] with shape alpha (inverse CDF of
 * the Pareto truncated at hi): heavy-tailed but never out of bounds.
 */
std::size_t
boundedParetoDraw(Prng& prng, std::size_t lo, std::size_t hi,
                  double alpha)
{
    if (lo == hi)
        return lo;
    const double l = static_cast<double>(lo);
    const double h = static_cast<double>(hi);
    const double u = prng.uniform();
    const double ratio = std::pow(l / h, alpha);
    const double x =
        l / std::pow(1.0 - u * (1.0 - ratio), 1.0 / alpha);
    const auto v = static_cast<std::size_t>(std::llround(x));
    return std::clamp(v, lo, hi);
}

} // namespace

std::vector<TracedRequest>
generateArrivalTrace(const ArrivalTraceConfig& cfg)
{
    SPATTEN_ASSERT(cfg.mean_interarrival_s > 0, "bad interarrival mean");
    SPATTEN_ASSERT(cfg.min_prompt >= 1 && cfg.min_prompt <= cfg.max_prompt,
                   "bad prompt bounds [%zu, %zu]", cfg.min_prompt,
                   cfg.max_prompt);
    SPATTEN_ASSERT(cfg.min_output <= cfg.max_output,
                   "bad output bounds [%zu, %zu]", cfg.min_output,
                   cfg.max_output);
    SPATTEN_ASSERT(cfg.priority_levels >= 1, "no priority levels");
    if (cfg.process == ArrivalProcess::OnOffBurst) {
        SPATTEN_ASSERT(cfg.burst_on_mean_s > 0 && cfg.burst_off_mean_s > 0,
                       "bad burst period means");
    }
    if (cfg.prompt_dist == PromptLengthDist::BoundedPareto)
        SPATTEN_ASSERT(cfg.pareto_alpha > 0, "bad Pareto shape");

    Prng prng(cfg.seed);
    std::vector<TracedRequest> trace;
    trace.reserve(cfg.num_requests);
    double t = 0.0;
    // Remaining length of the current ON period (OnOffBurst only).
    double on_left = cfg.process == ArrivalProcess::OnOffBurst
                         ? expDraw(prng, cfg.burst_on_mean_s)
                         : 0.0;
    for (std::size_t i = 0; i < cfg.num_requests; ++i) {
        double gap = expDraw(prng, cfg.mean_interarrival_s);
        if (cfg.process == ArrivalProcess::OnOffBurst) {
            // Consume the gap from ON time only; every ON/OFF boundary
            // crossed inserts an exponential silence.
            while (gap > on_left) {
                gap -= on_left;
                t += on_left + expDraw(prng, cfg.burst_off_mean_s);
                on_left = expDraw(prng, cfg.burst_on_mean_s);
            }
            on_left -= gap;
        }
        t += gap;

        const std::size_t prompt =
            cfg.prompt_dist == PromptLengthDist::BoundedPareto
                ? boundedParetoDraw(prng, cfg.min_prompt, cfg.max_prompt,
                                    cfg.pareto_alpha)
                : cfg.min_prompt +
                      prng.below(cfg.max_prompt - cfg.min_prompt + 1);
        const std::size_t output =
            cfg.min_output +
            prng.below(cfg.max_output - cfg.min_output + 1);

        TracedRequest req;
        req.id = i;
        req.arrival_s = t;
        req.workload.name = "trace-" + std::to_string(i) + "-p" +
                            std::to_string(prompt) + "-g" +
                            std::to_string(output);
        req.workload.model = cfg.model;
        req.workload.summarize_len = prompt;
        req.workload.generate_len = output;
        req.policy = cfg.policy;
        req.seed = prng();
        // Guarded draw: priority_levels == 1 consumes no PRNG state, so
        // pre-priority traces replay bit-identically from the same seed.
        if (cfg.priority_levels > 1)
            req.priority =
                static_cast<int>(prng.below(cfg.priority_levels));
        trace.push_back(std::move(req));
    }
    return trace;
}

std::vector<TracedRequest>
generatePoissonTrace(const ArrivalTraceConfig& cfg)
{
    return generateArrivalTrace(cfg);
}

} // namespace spatten
