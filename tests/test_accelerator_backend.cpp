/// The AcceleratorBackend serving contract: capability/capacity
/// reporting of all four backend types, dense-KV session semantics of
/// the baseline adapters (A3, MNNFast, platforms), equivalence of the
/// legacy all-SpAtten constructor and an explicit homogeneous fleet,
/// heterogeneous SpAtten+A3 fleets end-to-end (completion, thread-count
/// bit-identity, KV pressure with per-type budgets), capability-aware
/// placement, and the tie-break regression: permuting equal-load fleet
/// slots (distinct but identical backend instances) never changes
/// placement, because every selection point breaks ties by slot index,
/// never by instance identity.
#include <gtest/gtest.h>

#include <memory>

#include "accel/spatten_accelerator.hpp"
#include "baselines/baseline_backends.hpp"
#include "serve/continuous_batch_scheduler.hpp"

namespace spatten {
namespace {

/// A small 4-layer model keeps each run to milliseconds of host time.
ModelSpec
tinyModel()
{
    return {"tiny", 4, 4, 64, 4};
}

WorkloadSpec
tinyWorkload(std::size_t prompt = 64, std::size_t output = 4)
{
    WorkloadSpec w;
    w.name = "tiny-backend";
    w.model = tinyModel();
    w.summarize_len = prompt;
    w.generate_len = output;
    return w;
}

ArrivalTraceConfig
tinyTraceConfig(std::size_t n = 16, std::uint64_t seed = 0x5eed)
{
    ArrivalTraceConfig tc;
    tc.num_requests = n;
    tc.mean_interarrival_s = 0.2e-3;
    tc.seed = seed;
    tc.model = tinyModel();
    tc.min_prompt = 48;
    tc.max_prompt = 160;
    tc.min_output = 2;
    tc.max_output = 8;
    return tc;
}

/// Every backend type under test, freshly constructed.
std::vector<std::shared_ptr<const AcceleratorBackend>>
allBackends()
{
    return {std::make_shared<const SpAttenAccelerator>(),
            std::make_shared<const A3Backend>(),
            std::make_shared<const MnnFastBackend>(),
            std::make_shared<const PlatformBackend>()};
}

// ---------------------------------------------------------------------
// Static contract: names, capabilities, capacities, KV widths
// ---------------------------------------------------------------------

TEST(AcceleratorBackend, CapabilityAndCapacityContract)
{
    const SpAttenAccelerator spatten;
    EXPECT_EQ(spatten.backendName(), "spatten");
    EXPECT_TRUE(spatten.capabilities().cascade_pruning);
    EXPECT_TRUE(spatten.capabilities().progressive_quant);
    EXPECT_TRUE(spatten.capabilities().dram_savings);
    EXPECT_EQ(spatten.capacityBytes(),
              spatten.config().hbm.capacityBytes());
    EXPECT_EQ(spatten.kvBytesPerElem(), 2u);

    const A3Backend a3;
    EXPECT_EQ(a3.backendName(), "a3");
    EXPECT_FALSE(a3.capabilities().cascade_pruning);
    EXPECT_FALSE(a3.capabilities().dram_savings);
    EXPECT_EQ(a3.capacityBytes(), kBaselineCapacityBytes);
    EXPECT_EQ(a3.kvBytesPerElem(), 2u);

    const MnnFastBackend mnnfast;
    EXPECT_EQ(mnnfast.backendName(), "mnnfast");
    EXPECT_FALSE(mnnfast.capabilities().cascade_pruning);

    const PlatformBackend gpu(PlatformSpec::titanXp());
    EXPECT_EQ(gpu.backendName(), "titan-xp");
    EXPECT_FALSE(gpu.capabilities().cascade_pruning);
    EXPECT_EQ(gpu.kvBytesPerElem(), 4u) << "fp32 platform KV";

    const A3Backend small_a3(A3Config{}, 1ull << 20);
    EXPECT_EQ(small_a3.capacityBytes(), 1ull << 20)
        << "capacity override must stick";
}

TEST(AcceleratorBackend, KvBytesPerTokenFollowsElemWidth)
{
    const ModelSpec m = tinyModel(); // 2*4*4*64 = 2048 elems per token.
    const A3Backend a3;
    const PlatformBackend gpu(PlatformSpec::titanXp());
    EXPECT_EQ(a3.kvBytesPerToken(m), 2048u * 2);
    EXPECT_EQ(gpu.kvBytesPerToken(m), 2048u * 4)
        << "fp32 KV charges double the fp16-equivalent layout";
}

// ---------------------------------------------------------------------
// Dense-KV baseline sessions
// ---------------------------------------------------------------------

class BaselineSessionTest
    : public ::testing::TestWithParam<
          std::shared_ptr<const AcceleratorBackend>>
{
};

INSTANTIATE_TEST_SUITE_P(
    Baselines, BaselineSessionTest,
    ::testing::Values(std::make_shared<const A3Backend>(),
                      std::make_shared<const MnnFastBackend>(),
                      std::make_shared<const PlatformBackend>(
                          PlatformSpec::titanXp()),
                      std::make_shared<const PlatformBackend>(
                          PlatformSpec::xeon())),
    [](const auto& param_info) {
        std::string name = param_info.param->backendName();
        for (char& c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST_P(BaselineSessionTest, DenseKvGrowsByExactlyOnePerStep)
{
    const auto& backend = GetParam();
    const WorkloadSpec w = tinyWorkload(64, 6);
    const auto s = backend->makeSession(w, PruningPolicy{}, 1);
    EXPECT_FALSE(s->prefilled());
    EXPECT_FALSE(s->done());
    EXPECT_GT(s->prefill(), 0.0);
    EXPECT_TRUE(s->prefilled());
    EXPECT_EQ(s->kvLength(), w.summarize_len)
        << "no prompt pruning on a dense-KV baseline";
    for (std::size_t t = 0; t < w.generate_len; ++t) {
        EXPECT_FALSE(s->done());
        EXPECT_GT(s->decodeStep(), 0.0);
        EXPECT_EQ(s->kvLength(), w.summarize_len + t + 1)
            << "dense KV grows by exactly one token per step";
    }
    EXPECT_TRUE(s->done());
    ASSERT_EQ(s->kvTrace().size(), w.generate_len + 1);
}

TEST_P(BaselineSessionTest, FinalizeIsCoherentAndShowsNoDramSavings)
{
    const auto& backend = GetParam();
    const WorkloadSpec w = tinyWorkload(96, 4);
    const auto s = backend->makeSession(w, PruningPolicy{}, 1);
    double elapsed = s->prefill();
    while (!s->done())
        elapsed += s->decodeStep();
    const RunResult r = s->finalize();
    EXPECT_EQ(r.workload, w.name);
    EXPECT_NEAR(r.seconds, elapsed, 1e-15);
    EXPECT_GT(r.summarize_seconds, 0.0);
    EXPECT_GT(r.generate_seconds, 0.0);
    EXPECT_NEAR(r.seconds, r.summarize_seconds + r.generate_seconds,
                1e-15);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.attention_flops, 0.0);
    EXPECT_LE(r.attention_flops, r.attention_flops_dense)
        << "executed work can only shrink vs dense";
    EXPECT_GT(r.dram_bytes, 0.0);
    EXPECT_DOUBLE_EQ(r.dramReduction(), 1.0)
        << "baselines fetch everything before pruning decisions";
    EXPECT_GT(r.energy.totalJ(), 0.0);
    EXPECT_NEAR(r.energy.seconds, r.seconds, 1e-15);
}

TEST_P(BaselineSessionTest, SessionsAreDeterministic)
{
    const auto& backend = GetParam();
    const WorkloadSpec w = tinyWorkload(80, 5);
    const auto run = [&] {
        const auto s = backend->makeSession(w, PruningPolicy{}, 7);
        std::vector<double> times{s->prefill()};
        while (!s->done())
            times.push_back(s->decodeStep());
        return std::make_pair(times, s->finalize());
    };
    const auto [ta, ra] = run();
    const auto [tb, rb] = run();
    EXPECT_EQ(ta, tb);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.dram_bytes, rb.dram_bytes);
    EXPECT_EQ(ra.energy.totalJ(), rb.energy.totalJ());
}

TEST_P(BaselineSessionTest, SkipSummarizationChargesNoPrefill)
{
    const auto& backend = GetParam();
    WorkloadSpec w = tinyWorkload(96, 2);
    w.skip_summarization = true;
    const auto s = backend->makeSession(w, PruningPolicy{}, 1);
    EXPECT_EQ(s->prefill(), 0.0);
    EXPECT_EQ(s->kvLength(), w.summarize_len)
        << "the pre-summarized prompt KV is resident regardless";
    EXPECT_GT(s->decodeStep(), 0.0);
}

TEST_P(BaselineSessionTest, ZeroTokenRequestIsDoneAtPrefill)
{
    const auto& backend = GetParam();
    const WorkloadSpec w = tinyWorkload(48, 0);
    const auto s = backend->makeSession(w, PruningPolicy{}, 1);
    s->prefill();
    EXPECT_TRUE(s->done());
}

TEST(BaselineSessions, DecodeStepCostGrowsWithContext)
{
    // Dense attention: a later step attends to a strictly larger
    // context, so per-step cost is non-decreasing — the opposite of
    // SpAtten's pruned-KV trajectory.
    for (const auto& backend : {allBackends()[1], allBackends()[2]}) {
        const WorkloadSpec w = tinyWorkload(64, 8);
        const auto s = backend->makeSession(w, PruningPolicy{}, 1);
        s->prefill();
        double prev = 0.0;
        while (!s->done()) {
            const double step = s->decodeStep();
            EXPECT_GE(step, prev) << backend->backendName();
            prev = step;
        }
    }
}

// ---------------------------------------------------------------------
// Homogeneous fleet == legacy constructor
// ---------------------------------------------------------------------

TEST(HeterogeneousFleet, ExplicitSpattenFleetMatchesLegacyConstructor)
{
    const auto trace = generatePoissonTrace(tinyTraceConfig(16));
    ContinuousBatchConfig sc;
    sc.num_accelerators = 3;
    sc.max_active = 4;
    const ServeReport legacy =
        ContinuousBatchScheduler(SpAttenConfig{}, sc).run(trace);

    const AcceleratorFleet fleet(
        3, std::make_shared<const SpAttenAccelerator>());
    const ServeReport explicit_fleet =
        ContinuousBatchScheduler(fleet, sc).run(trace);

    ASSERT_EQ(explicit_fleet.requests.size(), legacy.requests.size());
    for (std::size_t i = 0; i < legacy.requests.size(); ++i) {
        const ServedRequest& a = legacy.requests[i];
        const ServedRequest& b = explicit_fleet.requests[i];
        EXPECT_EQ(a.accel, b.accel);
        EXPECT_EQ(a.admit_s, b.admit_s);
        EXPECT_EQ(a.finish_s, b.finish_s);
        EXPECT_EQ(a.token_times_s, b.token_times_s);
        EXPECT_EQ(a.sim.cycles, b.sim.cycles);
        EXPECT_EQ(a.kv_trace, b.kv_trace);
    }
    EXPECT_EQ(legacy.makespan_s, explicit_fleet.makespan_s);
    EXPECT_EQ(legacy.total_cycles, explicit_fleet.total_cycles);
    EXPECT_EQ(explicit_fleet.accel_names,
              (std::vector<std::string>{"spatten", "spatten", "spatten"}));
}

// ---------------------------------------------------------------------
// Mixed fleets end-to-end
// ---------------------------------------------------------------------

AcceleratorFleet
mixedFleet()
{
    return {std::make_shared<const SpAttenAccelerator>(
                SpAttenConfig::eighth()),
            std::make_shared<const SpAttenAccelerator>(
                SpAttenConfig::eighth()),
            std::make_shared<const A3Backend>()};
}

TEST(HeterogeneousFleet, MixedSpattenA3FleetServesEveryRequest)
{
    const auto trace = generatePoissonTrace(tinyTraceConfig(20));
    ContinuousBatchConfig sc;
    sc.max_active = 4;
    const ServeReport r =
        ContinuousBatchScheduler(mixedFleet(), sc).run(trace);
    EXPECT_EQ(r.accel_names,
              (std::vector<std::string>{"spatten", "spatten", "a3"}));
    std::size_t on_a3 = 0;
    for (const ServedRequest& req : r.requests) {
        EXPECT_EQ(req.phase, RequestPhase::Finished);
        EXPECT_EQ(req.tokens, trace[req.id].workload.generate_len);
        ASSERT_GE(req.accel, 0);
        ASSERT_LT(req.accel, 3);
        if (req.accel == 2) {
            ++on_a3;
            // A dense-KV slot: the KV trace grows by one per token.
            for (std::size_t t = 1; t < req.kv_trace.size(); ++t)
                EXPECT_EQ(req.kv_trace[t], req.kv_trace[t - 1] + 1);
        }
    }
    EXPECT_GT(on_a3, 0u) << "least-loaded must route work to every slot";
}

TEST(HeterogeneousFleet, MixedFleetBitIdenticalAcrossThreadCounts)
{
    const auto trace = generatePoissonTrace(tinyTraceConfig(16));
    ContinuousBatchConfig sc;
    sc.max_active = 4;
    sc.num_threads = 1;
    const auto fleet = mixedFleet();
    const ServeReport ref =
        ContinuousBatchScheduler(fleet, sc).run(trace);
    for (const std::size_t threads : {2u, 8u}) {
        sc.num_threads = threads;
        const ServeReport r =
            ContinuousBatchScheduler(fleet, sc).run(trace);
        EXPECT_EQ(r.makespan_s, ref.makespan_s);
        for (std::size_t i = 0; i < r.requests.size(); ++i) {
            EXPECT_EQ(r.requests[i].accel, ref.requests[i].accel);
            EXPECT_EQ(r.requests[i].finish_s, ref.requests[i].finish_s);
            EXPECT_EQ(r.requests[i].token_times_s,
                      ref.requests[i].token_times_s);
            EXPECT_EQ(r.requests[i].sim.cycles,
                      ref.requests[i].sim.cycles);
        }
    }
}

TEST(HeterogeneousFleet, PerSlotBudgetsDeriveFromEachBackend)
{
    const AcceleratorFleet fleet{
        std::make_shared<const SpAttenAccelerator>(),
        std::make_shared<const A3Backend>(A3Config{}, 3ull << 30)};
    ContinuousBatchConfig sc;
    const auto trace = generatePoissonTrace(tinyTraceConfig(4));
    const ServeReport r =
        ContinuousBatchScheduler(fleet, sc).run(trace);
    EXPECT_EQ(r.kv_capacity_bytes, 0u)
        << "no uniform budget exists for unequal capacities";
    ASSERT_EQ(r.accel_kv_capacity_bytes.size(), 2u);
    EXPECT_EQ(r.accel_kv_capacity_bytes[0],
              SpAttenConfig{}.hbm.capacityBytes());
    EXPECT_EQ(r.accel_kv_capacity_bytes[1], 3ull << 30);
}

TEST(HeterogeneousFleet, MixedFleetUnderKvPressurePreemptsAndFinishes)
{
    // Saturating dense-output demand under a budget sized 1.5x the
    // worst request at the widest KV element of the fleet (2 B here):
    // the dense-KV A3 slot must hit growth pressure and recover.
    auto tc = tinyTraceConfig(12);
    tc.mean_interarrival_s = 1e-6;
    tc.policy = PruningPolicy::disabled();
    tc.min_output = 16;
    tc.max_output = 32;
    const auto trace = generatePoissonTrace(tc);
    ContinuousBatchConfig sc;
    sc.max_active = 6;
    sc.kv_block_tokens = 4;
    sc.kv_capacity_bytes = kvBudgetForWorstRequest(trace, 1.5, sc, 2);
    const ServeReport r =
        ContinuousBatchScheduler(mixedFleet(), sc).run(trace);
    EXPECT_GE(r.preemptions, 1u)
        << "dense KV growth must outgrow the capped pools";
    for (const ServedRequest& req : r.requests) {
        EXPECT_EQ(req.phase, RequestPhase::Finished);
        EXPECT_EQ(req.tokens, trace[req.id].workload.generate_len);
    }
    for (std::size_t a = 0; a < r.kv_peak_bytes.size(); ++a)
        EXPECT_LE(r.kv_peak_bytes[a], sc.kv_capacity_bytes)
            << "no pool may exceed its budget";
}

TEST(HeterogeneousFleet, SparseTraceIdsAreServedByPosition)
{
    // A trace sliced out of a larger one keeps its original ids, so
    // ids need not be dense 0..n-1 positions: every internal structure
    // (round-robin pins, capability classes, KV preconditions) must
    // index by position, never by TracedRequest::id.
    std::vector<TracedRequest> trace;
    for (std::size_t i = 0; i < 3; ++i) {
        TracedRequest req;
        req.id = 5 + 4 * i; // ids {5, 9, 13} in a 3-element trace.
        req.arrival_s = 1e-6 * static_cast<double>(i + 1);
        req.workload = tinyWorkload(i == 0 ? 192 : 64, 2);
        req.seed = 17 + i;
        trace.push_back(req);
    }
    for (const ShardPolicy shard :
         {ShardPolicy::RoundRobin, ShardPolicy::LeastLoaded,
          ShardPolicy::CapabilityAware}) {
        ContinuousBatchConfig sc;
        sc.shard = shard;
        sc.long_prompt_threshold = 128;
        const ServeReport r =
            ContinuousBatchScheduler(mixedFleet(), sc).run(trace);
        ASSERT_EQ(r.requests.size(), trace.size());
        for (std::size_t i = 0; i < trace.size(); ++i) {
            EXPECT_EQ(r.requests[i].id, trace[i].id);
            EXPECT_EQ(r.requests[i].phase, RequestPhase::Finished);
            EXPECT_EQ(r.requests[i].tokens,
                      trace[i].workload.generate_len);
        }
    }
}

// ---------------------------------------------------------------------
// Capability-aware placement
// ---------------------------------------------------------------------

TEST(HeterogeneousFleet, CapabilityAwareKeepsLongPromptsOnPruningSlots)
{
    auto tc = tinyTraceConfig(24);
    tc.min_prompt = 32;
    tc.max_prompt = 256;
    const auto trace = generatePoissonTrace(tc);
    ContinuousBatchConfig sc;
    sc.max_active = 4;
    sc.shard = ShardPolicy::CapabilityAware;
    sc.long_prompt_threshold = 128;
    const auto fleet = mixedFleet(); // Slots 0-1 prune, slot 2 (a3) not.
    const ServeReport r = ContinuousBatchScheduler(fleet, sc).run(trace);
    bool any_long = false, any_on_a3 = false;
    for (const ServedRequest& req : r.requests) {
        EXPECT_EQ(req.phase, RequestPhase::Finished);
        const bool is_long =
            trace[req.id].workload.summarize_len >=
            sc.long_prompt_threshold;
        any_long |= is_long;
        any_on_a3 |= req.accel == 2;
        if (is_long) {
            EXPECT_LT(req.accel, 2)
                << "long prompt " << req.id
                << " must land on a cascade-pruning slot";
        }
    }
    EXPECT_TRUE(any_long) << "the probe trace must contain long prompts";
    EXPECT_TRUE(any_on_a3) << "short prompts must reach the dense slot";
}

TEST(HeterogeneousFleet, CapabilityAwareDegradesToLeastLoadedWithoutPruners)
{
    // An all-dense fleet has no pruning slot: every request is
    // short-class and the schedule must equal plain LeastLoaded.
    const auto trace = generatePoissonTrace(tinyTraceConfig(12));
    const AcceleratorFleet fleet(2,
                                 std::make_shared<const A3Backend>());
    ContinuousBatchConfig sc;
    sc.max_active = 2;
    sc.long_prompt_threshold = 1; // Everything would be "long".
    sc.shard = ShardPolicy::CapabilityAware;
    const ServeReport cap =
        ContinuousBatchScheduler(fleet, sc).run(trace);
    sc.shard = ShardPolicy::LeastLoaded;
    const ServeReport ll =
        ContinuousBatchScheduler(fleet, sc).run(trace);
    ASSERT_EQ(cap.requests.size(), ll.requests.size());
    for (std::size_t i = 0; i < cap.requests.size(); ++i) {
        EXPECT_EQ(cap.requests[i].accel, ll.requests[i].accel);
        EXPECT_EQ(cap.requests[i].finish_s, ll.requests[i].finish_s);
    }
}

// ---------------------------------------------------------------------
// Tie-breaking: placement is a function of the slot index only
// ---------------------------------------------------------------------

TEST(HeterogeneousFleet, EqualLoadTieBreakIsDeterministicBySlotIndex)
{
    // Equal-load slots: distinct (separately constructed) but identical
    // backend instances. If any selection point tie-broke on instance
    // identity (e.g. a pointer), constructing the instances in a
    // different order could flip placements; by contract placement
    // depends on the slot index alone, so the full reports must match
    // bit for bit — including under least-loaded ties from a burst of
    // simultaneous arrivals.
    auto tc = tinyTraceConfig(16);
    tc.mean_interarrival_s = 1e-6; // Everyone arrives ~at once.
    const auto trace = generatePoissonTrace(tc);
    ContinuousBatchConfig sc;
    sc.max_active = 2;
    sc.shard = ShardPolicy::LeastLoaded;

    AcceleratorFleet first, second;
    for (std::size_t a = 0; a < 3; ++a)
        first.push_back(std::make_shared<const SpAttenAccelerator>());
    // "Permute" the equal-load slots: same configs, instances created
    // in reverse and inserted front-most-recent.
    for (std::size_t a = 0; a < 3; ++a)
        second.insert(second.begin(),
                      std::make_shared<const SpAttenAccelerator>());

    const ServeReport ra = ContinuousBatchScheduler(first, sc).run(trace);
    const ServeReport rb =
        ContinuousBatchScheduler(second, sc).run(trace);
    ASSERT_EQ(ra.requests.size(), rb.requests.size());
    for (std::size_t i = 0; i < ra.requests.size(); ++i) {
        EXPECT_EQ(ra.requests[i].accel, rb.requests[i].accel)
            << "placement of request " << i
            << " changed under an equal-load slot permutation";
        EXPECT_EQ(ra.requests[i].admit_s, rb.requests[i].admit_s);
        EXPECT_EQ(ra.requests[i].finish_s, rb.requests[i].finish_s);
    }
    EXPECT_EQ(ra.makespan_s, rb.makespan_s);
    EXPECT_EQ(ra.accel_requests, rb.accel_requests);

    // And the assignment itself is the lowest-index-first fill the
    // index tie-break implies: with simultaneous arrivals the first
    // admissions land on slot 0, then 1, then 2.
    std::vector<std::size_t> order(ra.requests.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return ra.requests[a].admit_s <
                         ra.requests[b].admit_s;
              });
    EXPECT_EQ(ra.requests[order[0]].accel, 0);
}

} // namespace
} // namespace spatten
