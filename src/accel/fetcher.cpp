#include "accel/fetcher.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace spatten {

FetchResult
QkvFetcher::gather(const GatherRequest& req, Cycles ready)
{
    FetchResult res;
    if (req.token_ids.empty())
        return res;
    SPATTEN_ASSERT(req.bytes_per_token > 0, "empty token vector");

    // Address generation + crossbar arbitration. Channel of each request
    // follows the HBM interleave mapping.
    const auto& cfg = hbm_.config();
    std::vector<std::size_t> channels;
    std::vector<HbmRequest> dram_reqs;
    channels.reserve(req.token_ids.size());
    dram_reqs.reserve(req.token_ids.size());
    for (std::size_t id : req.token_ids) {
        const std::uint64_t addr =
            req.base_addr + id * req.bytes_per_token;
        channels.push_back((addr / cfg.interleave_bytes) %
                           static_cast<std::uint64_t>(cfg.channels));
        dram_reqs.push_back({addr, req.bytes_per_token, false});
    }
    const CrossbarRouteResult route = xbar_.route(channels);
    // Crossbar runs at the DRAM command rate here; its drain time is
    // almost always hidden behind the data burst time.
    const Cycles issue_ready = ready + route.cycles;
    res.dram_cycles_done = hbm_.accessBatch(dram_reqs, issue_ready);
    res.bytes = req.token_ids.size() * req.bytes_per_token;
    res.requests = req.token_ids.size();
    total_requests_ += res.requests;
    return res;
}

FetchResult
QkvFetcher::stream(std::uint64_t base_addr, std::uint64_t bytes,
                   Cycles ready)
{
    FetchResult res;
    if (bytes == 0)
        return res;
    res.dram_cycles_done = hbm_.access({base_addr, bytes, false}, ready);
    res.bytes = bytes;
    res.requests = 1;
    total_requests_ += 1;
    return res;
}

namespace {

/** Expected LSB-plane refetch bytes for one (layer, head). */
double
lsbRefetchBytes(const ExecutionContext& ctx)
{
    return ctx.active_lsb_fraction * static_cast<double>(ctx.queries) *
           static_cast<double>(ctx.survivorTokens()) *
           static_cast<double>(ctx.bytesPerRow(ctx.lsb_bits));
}

} // namespace

StageTiming
QkvFetcher::timing(const ExecutionContext&) const
{
    // DRAM time is realized by issue(); under double buffering it
    // overlaps compute, so the fetcher adds no core-pipeline occupancy.
    return {};
}

ActivityCounts
QkvFetcher::energy(const ExecutionContext&) const
{
    return {}; // Request energy is priced from traffic().fetch_requests.
}

StageTraffic
QkvFetcher::traffic(const ExecutionContext& ctx) const
{
    StageTraffic t;
    const double heads = static_cast<double>(ctx.alive_heads);
    const double n = static_cast<double>(ctx.survivorTokens());
    const double nq = static_cast<double>(ctx.queries);
    const double v_rows = static_cast<double>(
        ctx.generation ? ctx.kept_values : ctx.survivorTokens());
    const double row = static_cast<double>(ctx.bytesPerRow(ctx.fetch_bits));
    const double lsb = lsbRefetchBytes(ctx);
    t.dram_bytes =
        heads * (n * row + v_rows * row +
                 nq * row * static_cast<double>(ctx.tiles()) +
                 (lsb >= 1.0 ? lsb : 0.0));
    t.fetch_requests = heads * (n + v_rows + nq);
    // Summarization fills both SRAM buffers tile by tile; each context
    // token is written exactly once per head.
    if (!ctx.generation)
        t.sram_write_elems = heads * n * static_cast<double>(ctx.d_head);
    return t;
}

Cycles
QkvFetcher::issue(const ExecutionContext& ctx, Cycles start)
{
    const std::size_t n = ctx.survivorTokens();
    const std::size_t nq = ctx.queries;
    const std::size_t row = ctx.bytesPerRow(ctx.fetch_bits);
    const std::size_t lsb_row = ctx.bytesPerRow(ctx.lsb_bits);
    const std::size_t v_rows = ctx.generation ? ctx.kept_values : n;
    const std::size_t tiles = ctx.tiles();

    Cycles done = start;
    for (std::size_t hd = 0; hd < ctx.alive_heads; ++hd) {
        // K plane (eager width), V plane, Q rows (once per K tile).
        const auto fk = stream(ctx.planeBase(0, hd, row),
                               static_cast<std::uint64_t>(n) * row, start);
        done = std::max(done, fk.dram_cycles_done);
        const auto fv =
            stream(ctx.planeBase(2, hd, row),
                   static_cast<std::uint64_t>(v_rows) * row, start);
        done = std::max(done, fv.dram_cycles_done);
        // Q is re-streamed once per K tile from the same plane slot (the
        // same query rows are fetched again for every tile), so the
        // stream never spills past this head's max_context-sized slot.
        for (std::size_t t = 0; t < tiles; ++t) {
            const auto fq =
                stream(ctx.planeBase(4, hd, row),
                       static_cast<std::uint64_t>(nq) * row, start);
            done = std::max(done, fq.dram_cycles_done);
        }
        // Expected LSB refetch traffic (K plane) for flat rows — the
        // same per-head plan traffic() prices statically.
        const double lsb_bytes_exact = lsbRefetchBytes(ctx);
        if (lsb_bytes_exact >= 1.0) {
            const auto fl =
                stream(ctx.planeBase(1, hd, lsb_row),
                       static_cast<std::uint64_t>(lsb_bytes_exact), start);
            done = std::max(done, fl.dram_cycles_done);
        }
    }
    return done;
}

} // namespace spatten
