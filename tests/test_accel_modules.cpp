/// Tests for the datapath modules: crossbar, fetcher, QxK, Softmax and
/// ProbxV units, and the energy/area model.
#include <gtest/gtest.h>

#include <cmath>

#include "accel/crossbar.hpp"
#include "accel/fetcher.hpp"
#include "accel/pv_module.hpp"
#include "accel/qk_module.hpp"
#include "accel/softmax_module.hpp"
#include "energy/energy_model.hpp"

namespace spatten {
namespace {

TEST(Crossbar, NoConflictWhenSpread)
{
    Crossbar xb;
    std::vector<std::size_t> chans;
    for (std::size_t i = 0; i < 16; ++i)
        chans.push_back(i);
    const auto res = xb.route(chans);
    EXPECT_EQ(res.cycles, 1u);
    EXPECT_EQ(res.conflicts, 0u);
}

TEST(Crossbar, ConflictsSerializeOnOneChannel)
{
    Crossbar xb;
    const std::vector<std::size_t> chans(8, 3); // all to channel 3
    const auto res = xb.route(chans);
    EXPECT_EQ(res.cycles, 8u);
    EXPECT_EQ(res.conflicts, 7u);
}

TEST(Crossbar, MasterWidthLimitsPresentation)
{
    Crossbar xb({4, 16});
    std::vector<std::size_t> chans;
    for (std::size_t i = 0; i < 16; ++i)
        chans.push_back(i);
    // 16 requests through 4 master ports: at least 4 cycles.
    EXPECT_EQ(xb.route(chans).cycles, 4u);
}

TEST(Crossbar, EmptyBatch)
{
    Crossbar xb;
    EXPECT_EQ(xb.route({}).cycles, 0u);
}

TEST(Fetcher, GatherMovesExpectedBytes)
{
    HbmModel hbm;
    Crossbar xb;
    QkvFetcher f(hbm, xb);
    GatherRequest req;
    req.base_addr = 0;
    req.token_ids = {0, 1, 2, 3, 10, 20};
    req.bytes_per_token = 96;
    const auto res = f.gather(req, 0);
    EXPECT_EQ(res.bytes, 6u * 96u);
    EXPECT_EQ(res.requests, 6u);
    EXPECT_EQ(hbm.totalBytes(), 6u * 96u);
    EXPECT_GT(res.dram_cycles_done, 0u);
}

TEST(Fetcher, StreamSingleRequest)
{
    HbmModel hbm;
    Crossbar xb;
    QkvFetcher f(hbm, xb);
    const auto res = f.stream(4096, 1 << 16, 0);
    EXPECT_EQ(res.bytes, 1u << 16);
    EXPECT_EQ(res.requests, 1u);
}

TEST(Fetcher, EmptyGatherFree)
{
    HbmModel hbm;
    Crossbar xb;
    QkvFetcher f(hbm, xb);
    GatherRequest req;
    const auto res = f.gather(req, 0);
    EXPECT_EQ(res.bytes, 0u);
    EXPECT_EQ(res.dram_cycles_done, 0u);
}

TEST(QkModule, EightScoresPerCycleAtD64)
{
    QkModule qk; // 512 multipliers, tree cap 8
    const auto t = qk.timing(1024, 64);
    // 512/64 = 8 keys per cycle -> 128 cycles.
    EXPECT_EQ(t.scores_per_cycle, 8u);
    EXPECT_EQ(t.cycles, 128u);
    EXPECT_EQ(t.macs, 1024u * 64u);
}

TEST(QkModule, WideHeadsSerialize)
{
    QkModule qk;
    const auto t = qk.timing(100, 512);
    EXPECT_EQ(t.scores_per_cycle, 1u);
    EXPECT_EQ(t.cycles, 100u);
}

TEST(QkModule, TreeOutputCapRespected)
{
    QkModuleConfig cfg;
    cfg.num_multipliers = 512;
    cfg.max_tree_outputs = 4;
    QkModule qk(cfg);
    EXPECT_EQ(qk.timing(64, 32).scores_per_cycle, 4u);
}

TEST(QkModule, FunctionalScores)
{
    QkModule qk;
    const std::vector<float> q{1.0f, 2.0f};
    const std::vector<std::vector<float>> k{{1.0f, 0.0f}, {0.0f, 1.0f}};
    const auto s = qk.computeScores(q, k, 0.5f);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_FLOAT_EQ(s[0], 0.5f);
    EXPECT_FLOAT_EQ(s[1], 1.0f);
}

TEST(SoftmaxModule, TimingScalesWithRow)
{
    SoftmaxModule sm;
    EXPECT_LT(sm.timingCycles(8), sm.timingCycles(1024));
    // 2 passes x 1024/8 + depth.
    EXPECT_EQ(sm.timingCycles(1024),
              2 * 128 + sm.config().pipeline_depth);
}

TEST(SoftmaxModule, FunctionalSumsToOne)
{
    SoftmaxModule sm;
    std::vector<float> prob;
    const auto t = sm.run({1.0f, 2.0f, 3.0f, 0.5f}, prob, 0.1);
    double s = 0.0;
    for (float p : prob)
        s += p;
    EXPECT_NEAR(s, 1.0, 2e-3); // 12-bit requantization slack
    EXPECT_EQ(t.elems, 4u);
}

TEST(SoftmaxModule, LsbDecision)
{
    SoftmaxModule sm;
    std::vector<float> prob;
    // Flat scores -> flat distribution -> needs LSB at threshold 0.1.
    const auto flat = sm.run(std::vector<float>(64, 1.0f), prob, 0.1);
    EXPECT_TRUE(flat.needs_lsb);
    // One dominant score -> no LSB.
    std::vector<float> dom(64, 0.0f);
    dom[7] = 20.0f;
    const auto peaked = sm.run(dom, prob, 0.1);
    EXPECT_FALSE(peaked.needs_lsb);
    EXPECT_GT(peaked.max_prob, 0.9f);
}

TEST(PvModule, TimingAndMacs)
{
    PvModule pv;
    const auto t = pv.timing(1024, 64);
    EXPECT_EQ(t.cycles, 128u); // 8 rows per cycle
    EXPECT_EQ(t.macs, 1024u * 64u);
}

TEST(PvModule, FunctionalWeightedSum)
{
    PvModule pv;
    const std::vector<float> prob{0.5f, 0.25f, 0.25f};
    const std::vector<std::vector<float>> v{
        {2.0f, 0.0f}, {0.0f, 4.0f}, {4.0f, 4.0f}};
    const auto out = pv.accumulate(prob, v, {0, 1, 2});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_FLOAT_EQ(out[0], 2.0f);
    EXPECT_FLOAT_EQ(out[1], 2.0f);
    // Pruned accumulation skips row 1.
    const auto pruned = pv.accumulate(prob, v, {0, 2});
    EXPECT_FLOAT_EQ(pruned[1], 1.0f);
}

TEST(EnergyModel, ComputeBucketsScaleWithActivity)
{
    EnergyModel em;
    ActivityCounts a;
    a.qk_macs = 1e9;
    a.cycles = 1e6;
    a.freq_ghz = 1.0;
    const auto r1 = em.compute(a);
    a.qk_macs = 2e9;
    const auto r2 = em.compute(a);
    EXPECT_NEAR(r2.qk_j, 2 * r1.qk_j, 1e-12);
    EXPECT_GT(r1.totalJ(), 0.0);
}

TEST(EnergyModel, LeakageScalesWithTime)
{
    EnergyModel em;
    ActivityCounts a;
    a.cycles = 1e9; // 1 second at 1 GHz
    a.freq_ghz = 1.0;
    const auto r = em.compute(a);
    EXPECT_NEAR(r.leakage_j, em.config().leakage_w, 1e-9);
    EXPECT_NEAR(r.seconds, 1.0, 1e-12);
}

TEST(AreaModel, FullConfigMatchesPaperTotal)
{
    const auto entries = areaBreakdown(1024, 392, 16);
    // Paper Fig. 13: 18.71 mm^2 total.
    EXPECT_NEAR(totalAreaMm2(entries), 18.71, 0.1);
}

TEST(AreaModel, EighthConfigSmaller)
{
    const double full = totalAreaMm2(areaBreakdown(1024, 392, 16));
    const double eighth = totalAreaMm2(areaBreakdown(128, 48, 2));
    EXPECT_LT(eighth, full / 4.0);
    // Paper Table III: SpAtten-1/8 is 1.55 mm^2.
    EXPECT_NEAR(eighth, 1.55, 1.0);
}

TEST(AreaModel, QkAndPvDominate)
{
    const auto entries = areaBreakdown(1024, 392, 16);
    double qk = 0, pv = 0, total = totalAreaMm2(entries);
    for (const auto& e : entries) {
        if (e.module == "QxK")
            qk = e.mm2;
        if (e.module == "AttnProb x V")
            pv = e.mm2;
    }
    EXPECT_GT((qk + pv) / total, 0.7);
}

} // namespace
} // namespace spatten
