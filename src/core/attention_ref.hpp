/**
 * @file
 * Functional attention models.
 *
 * - attentionForward: the plain multi-head attention of Algorithm 1
 *   (fp32 reference).
 * - SpAttenAttention: the SpAtten algorithmic pipeline for one attention
 *   layer — per-head, per-query processing with local value pruning and
 *   progressive quantization — which also counts the work performed
 *   (MACs, DRAM bits, LSB refetches). The cycle-level accelerator model
 *   consumes these counts.
 */
#ifndef SPATTEN_CORE_ATTENTION_REF_HPP
#define SPATTEN_CORE_ATTENTION_REF_HPP

#include <cstddef>
#include <vector>

#include "core/progressive_quant.hpp"
#include "tensor/tensor.hpp"

namespace spatten {

/** Work counters for one attention layer run. */
struct AttentionStats
{
    double qk_macs = 0;        ///< Multiply-accumulates in Q x K^T.
    double pv_macs = 0;        ///< Multiply-accumulates in prob x V.
    double softmax_elems = 0;  ///< Elements passed through softmax.
    double dram_bits_qkv = 0;  ///< Bits of Q/K/V fetched from DRAM.
    double queries = 0;        ///< Query-head rows processed.
    double lsb_refetches = 0;  ///< Queries that needed the LSB pass.
    double v_rows_kept = 0;    ///< Sum over rows of kept V vectors.
    double v_rows_total = 0;   ///< Sum over rows of pre-prune V vectors.

    double totalMacs() const { return qk_macs + pv_macs; }
    /// 2 ops (mul+add) per MAC, the convention used in the paper's FLOPS.
    double flops() const { return 2.0 * totalMacs(); }
    void add(const AttentionStats& o);
};

/** Output of an attention layer. */
struct AttentionOutput
{
    Tensor out;                ///< L0 x Din attention output.
    std::vector<Tensor> probs; ///< Per alive head: L0 x L1 probabilities.
    AttentionStats stats;
};

/**
 * Reference multi-head attention (Algorithm 1), fp32.
 *
 * @param q L0 x Din queries; @param k,v L1 x Din keys/values.
 * @param num_heads h; Din must be divisible by h.
 */
AttentionOutput attentionForward(const Tensor& q, const Tensor& k,
                                 const Tensor& v, std::size_t num_heads);

/** Configuration of the SpAtten algorithmic attention pipeline. */
struct SpAttenAttentionConfig
{
    std::size_t num_heads = 12;
    double local_v_ratio = 0.0;       ///< Local value pruning ratio (§III-C).
    ProgressiveQuantConfig pq;        ///< Progressive quantization policy.
    bool quantize_inputs = false;     ///< Run the quantized datapath.
};

/**
 * SpAtten attention for one layer over the *surviving* tokens/heads.
 * The caller passes already-pruned Q/K/V (cascade pruning happens between
 * layers); this class handles per-head work: scores, softmax, local V
 * pruning, prob x V, and the progressive quantization loop, and it counts
 * the DRAM traffic the accelerator would issue.
 */
class SpAttenAttention
{
  public:
    explicit SpAttenAttention(SpAttenAttentionConfig cfg) : cfg_(cfg) {}

    /**
     * Run one layer.
     * @param q L0 x Din, @param k,v L1 x Din (pruned survivors only).
     * @param head_ids global ids of the alive heads (size == columns/D
     *        chunks actually processed; pass 0..h-1 when none pruned).
     */
    AttentionOutput run(const Tensor& q, const Tensor& k, const Tensor& v,
                        const std::vector<std::size_t>& head_ids) const;

    const SpAttenAttentionConfig& config() const { return cfg_; }

  private:
    SpAttenAttentionConfig cfg_;
};

} // namespace spatten

#endif // SPATTEN_CORE_ATTENTION_REF_HPP
