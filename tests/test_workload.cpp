/// Tests for the benchmark suite definitions, synthetic attention traces
/// and the synthetic task generators.
#include <gtest/gtest.h>

#include <set>

#include "workload/attention_trace.hpp"
#include "workload/benchmarks.hpp"
#include "workload/synthetic_tasks.hpp"

namespace spatten {
namespace {

TEST(Benchmarks, ThirtyTotal)
{
    const auto all = paperBenchmarks();
    EXPECT_EQ(all.size(), 30u);
    EXPECT_EQ(bertBenchmarks().size(), 22u);
    EXPECT_EQ(gptBenchmarks().size(), 8u);
}

TEST(Benchmarks, NamesUnique)
{
    std::set<std::string> names;
    for (const auto& b : paperBenchmarks())
        names.insert(b.workload.name);
    EXPECT_EQ(names.size(), 30u);
}

TEST(Benchmarks, BertConfigsCorrect)
{
    // Bind the list first: findBenchmark returns a reference into it,
    // which would dangle past a temporary (caught by the ASan CI job).
    const auto all = paperBenchmarks();
    const auto& b = findBenchmark(all, "bert-large-sst-2");
    EXPECT_EQ(b.workload.model.num_layers, 24u);
    EXPECT_EQ(b.workload.model.num_heads, 16u);
    EXPECT_EQ(b.workload.generate_len, 0u);
    EXPECT_FALSE(b.generative);
    EXPECT_FALSE(b.policy.pq.enabled); // BERT: static quantization
}

TEST(Benchmarks, GptConfigsCorrect)
{
    const auto all = paperBenchmarks();
    const auto& g = findBenchmark(all, "gpt2-small-ptb");
    EXPECT_EQ(g.workload.summarize_len, 992u);
    EXPECT_EQ(g.workload.generate_len, 32u);
    EXPECT_TRUE(g.generative);
    EXPECT_TRUE(g.policy.pq.enabled);
    EXPECT_NEAR(g.policy.lsb_fraction, 0.059, 1e-9);
}

TEST(Benchmarks, LongerTasksPruneMore)
{
    const auto all = paperBenchmarks();
    const auto& cola = findBenchmark(all, "bert-base-cola");   // len 11
    const auto& squad = findBenchmark(all, "bert-base-squad-v1"); // len 320
    EXPECT_LT(cola.policy.token_avg_ratio, squad.policy.token_avg_ratio);
}

TEST(Benchmarks, FindUnknownDies)
{
    const auto all = paperBenchmarks();
    EXPECT_DEATH(findBenchmark(all, "nope"), "unknown benchmark");
}

TEST(AttentionTrace, DominanceRaisesMaxProb)
{
    Prng p(1);
    double flat_sum = 0, dom_sum = 0;
    for (int i = 0; i < 20; ++i) {
        flat_sum += maxSoftmaxProb(syntheticScoreRow(64, 0.0, p));
        dom_sum += maxSoftmaxProb(syntheticScoreRow(64, 8.0, p));
    }
    EXPECT_LT(flat_sum / 20, 0.35);
    EXPECT_GT(dom_sum / 20, 0.9);
}

TEST(AttentionTrace, BatchCoversDominanceRange)
{
    Prng p(2);
    const auto rows = syntheticScoreRows(200, 48, 8.0, p);
    ASSERT_EQ(rows.size(), 200u);
    double min_p = 1.0, max_p = 0.0;
    for (const auto& r : rows) {
        const double mp = maxSoftmaxProb(r);
        min_p = std::min(min_p, mp);
        max_p = std::max(max_p, mp);
    }
    EXPECT_LT(min_p, 0.2);
    EXPECT_GT(max_p, 0.9);
}

TEST(KeywordTask, ExamplesWellFormed)
{
    KeywordTask task;
    const auto ex = task.sample(50);
    for (const auto& e : ex) {
        EXPECT_EQ(e.ids.size(), task.seqLen());
        EXPECT_LT(e.label, task.numClasses());
        std::size_t keywords = 0;
        for (auto id : e.ids) {
            EXPECT_LT(id, task.vocabSize());
            keywords += task.isKeyword(id);
        }
        EXPECT_GE(keywords, 1u);
    }
}

TEST(KeywordTask, KeywordsMatchLabelClass)
{
    KeywordTask task;
    const auto ex = task.sample(50);
    const auto& cfg = task.config();
    for (const auto& e : ex) {
        for (auto id : e.ids) {
            if (!task.isKeyword(id))
                continue;
            const std::size_t cls =
                (id - cfg.num_fillers) / cfg.keywords_per_class;
            EXPECT_EQ(cls, e.label);
        }
    }
}

TEST(KeywordTask, TokenNamesNonEmpty)
{
    KeywordTask task;
    for (std::size_t id = 0; id < task.vocabSize(); ++id)
        EXPECT_FALSE(task.tokenName(id).empty());
}

TEST(CopyLmTask, StructureCorrect)
{
    CopyLmTask task;
    const auto& cfg = task.config();
    const auto ex = task.sample(20);
    const std::size_t bos = cfg.num_symbols + cfg.num_fillers;
    const std::size_t sep = bos + 1;
    for (const auto& e : ex) {
        EXPECT_EQ(e.ids.size(), task.seqLen());
        EXPECT_EQ(e.ids.front(), bos);
        // SEP present and payload copied after it.
        const auto sep_it =
            std::find(e.ids.begin(), e.ids.end(), sep);
        ASSERT_NE(sep_it, e.ids.end());
        const std::size_t sep_pos =
            static_cast<std::size_t>(sep_it - e.ids.begin());
        // Payload symbols (stride filler_gap+1 after BOS) match the copy.
        for (std::size_t i = 0; i < cfg.payload_len; ++i) {
            const std::size_t orig = e.ids[1 + i * (1 + cfg.filler_gap)];
            const std::size_t copy = e.ids[sep_pos + 1 + i];
            EXPECT_EQ(orig, copy);
            EXPECT_TRUE(task.isSymbol(orig));
        }
    }
}

TEST(CopyLmTask, DeterministicWithSeed)
{
    CopyLmTaskConfig cfg;
    CopyLmTask a(cfg), b(cfg);
    const auto ea = a.sample(5);
    const auto eb = b.sample(5);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(ea[i].ids, eb[i].ids);
}

} // namespace
} // namespace spatten
