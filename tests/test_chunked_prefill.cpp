/// Chunked prefill (Sarathi-style stall-free batching) and its serving
/// ride-alongs: session-level chunk-vs-monolithic bit-identity of the
/// KV trajectory and decode stream (SpAtten and the dense adapters),
/// the scheduler's chunk-size=infinity and chunking-off legacy
/// equivalence, thread-count and shard-count determinism with chunking
/// on, composition with shared-prefix caching, mid-prefill preemption
/// recovery, the iteration token budget's chunk arithmetic, bounded
/// admission skip-ahead (with FIFO's strict-order guarantee), per-accel
/// busy accounting coherence on heterogeneous fleets, and the
/// queue-delay percentiles.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "accel/decode_session.hpp"
#include "accel/spatten_accelerator.hpp"
#include "baselines/baseline_backends.hpp"
#include "serve/continuous_batch_scheduler.hpp"
#include "sim/stats.hpp"

namespace spatten {
namespace {

/// A small 4-layer model keeps each scheduler run to a few milliseconds
/// of host time while exercising every code path.
ModelSpec
tinyModel()
{
    return {"tiny", 4, 4, 64, 4};
}

ArrivalTraceConfig
tinyTraceConfig(std::size_t n = 16, std::uint64_t seed = 0x5eed)
{
    ArrivalTraceConfig tc;
    tc.num_requests = n;
    tc.mean_interarrival_s = 0.2e-3;
    tc.seed = seed;
    tc.model = tinyModel();
    tc.min_prompt = 48;
    tc.max_prompt = 160;
    tc.min_output = 2;
    tc.max_output = 8;
    return tc;
}

ServeReport
serve(const std::vector<TracedRequest>& trace, ContinuousBatchConfig sc)
{
    return ContinuousBatchScheduler(SpAttenConfig{}, sc).run(trace);
}

/// Saturating dense demand under a tight budget: guaranteed admission
/// and preemption pressure (mirrors the scheduler suite's fixture).
std::vector<TracedRequest>
denseSaturatingTrace(std::size_t n = 16)
{
    auto tc = tinyTraceConfig(n);
    tc.mean_interarrival_s = 1e-6;
    tc.policy = PruningPolicy::disabled();
    tc.min_output = 16;
    tc.max_output = 32;
    return generatePoissonTrace(tc);
}

ContinuousBatchConfig
cappedConfig(const std::vector<TracedRequest>& trace)
{
    ContinuousBatchConfig sc;
    sc.max_active = 8;
    sc.kv_block_tokens = 4;
    sc.kv_capacity_bytes = kvBudgetForWorstRequest(trace, 1.25, sc);
    return sc;
}

/// Per-request *service* state (placement-independent by contract).
void
expectSameService(const ServedRequest& a, const ServedRequest& b)
{
    EXPECT_EQ(a.sim.cycles, b.sim.cycles);
    EXPECT_EQ(a.sim.seconds, b.sim.seconds);
    EXPECT_EQ(a.sim.dram_bytes, b.sim.dram_bytes);
    EXPECT_EQ(a.sim.attention_flops, b.sim.attention_flops);
    EXPECT_EQ(a.sim.energy.totalJ(), b.sim.energy.totalJ());
    EXPECT_EQ(a.service_seconds, b.service_seconds);
    EXPECT_EQ(a.kv_trace, b.kv_trace);
    EXPECT_EQ(a.tokens, b.tokens);
}

/// Full-report bit-identity: every timestamp and metric equal.
void
expectSameReport(const ServeReport& a, const ServeReport& b)
{
    EXPECT_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.recompute_tokens, b.recompute_tokens);
    EXPECT_EQ(a.peak_concurrency, b.peak_concurrency);
    EXPECT_EQ(a.accel_busy_s, b.accel_busy_s);
    EXPECT_EQ(a.kv_peak_bytes, b.kv_peak_bytes);
    EXPECT_EQ(a.queue_delay_p50_s, b.queue_delay_p50_s);
    EXPECT_EQ(a.queue_delay_p99_s, b.queue_delay_p99_s);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].admit_s, b.requests[i].admit_s);
        EXPECT_EQ(a.requests[i].first_token_s, b.requests[i].first_token_s);
        EXPECT_EQ(a.requests[i].finish_s, b.requests[i].finish_s);
        EXPECT_EQ(a.requests[i].token_times_s, b.requests[i].token_times_s);
        expectSameService(a.requests[i], b.requests[i]);
    }
}

// ---------------------------------------------------------------------
// Session level: chunk stream == monolithic prefill
// ---------------------------------------------------------------------

TEST(ChunkedPrefillSession, SpattenChunksMatchMonolithicKvAndDecode)
{
    // ExecutionContext::beginPass resets the cascade state fresh per
    // pass, so pruning depends only on the entering context length: the
    // final chunk (full prompt context) must leave exactly the KV state
    // a monolithic prefill leaves, and every decode step after it must
    // cost the same.
    WorkloadSpec w;
    w.name = "chunked-vs-mono";
    w.model = tinyModel();
    w.summarize_len = 128;
    w.generate_len = 8;

    const SpAttenConfig cfg;
    DecodeSession mono(cfg, w, PruningPolicy{}, 99);
    DecodeSession chunked(cfg, w, PruningPolicy{}, 99);
    const double mono_prefill = mono.prefill();
    double chunk_total = 0.0;
    for (std::size_t off = 0; off < 128; off += 32) {
        EXPECT_FALSE(chunked.prefilled());
        chunk_total += chunked.prefillChunk(off, 32);
    }
    EXPECT_TRUE(chunked.prefilled());
    EXPECT_EQ(chunked.kvLength(), mono.kvLength())
        << "the final chunk must leave the monolithic pruned KV state";
    // Earlier chunks attend to shorter contexts than the monolithic
    // pass's full square, so the chunked prompt work is strictly less.
    EXPECT_LT(chunk_total, mono_prefill);
    while (!mono.done()) {
        const double a = mono.decodeStep();
        const double b = chunked.decodeStep();
        // Step costs are differences of accumulated elapsed time, so
        // the cheaper prefill offset perturbs the last ulps only.
        EXPECT_NEAR(a, b, 1e-12 * a) << "decode steps must match";
        EXPECT_EQ(mono.kvLength(), chunked.kvLength());
    }
    EXPECT_TRUE(chunked.done());
    EXPECT_EQ(mono.kvTrace(), chunked.kvTrace());
}

TEST(ChunkedPrefillSession, DenseAdapterChunksMatchMonolithicDecode)
{
    // The dense adapters price a chunk at the query x context share of
    // the one-shot prompt pass: cheaper than monolithic in total, with
    // a bit-identical dense context for every subsequent decode step,
    // and the full-prompt dense FLOP reference counted exactly once.
    WorkloadSpec w;
    w.name = "a3-chunked";
    w.model = tinyModel();
    w.summarize_len = 128;
    w.generate_len = 6;

    const A3Backend backend;
    auto mono = backend.makeSession(w, PruningPolicy::disabled(), 1);
    auto chunked = backend.makeSession(w, PruningPolicy::disabled(), 1);
    const double mono_prefill = mono->prefill();
    double chunk_total = 0.0;
    for (std::size_t off = 0; off < 128; off += 32) {
        EXPECT_FALSE(chunked->prefilled());
        chunk_total += chunked->prefillChunk(off, 32);
    }
    EXPECT_TRUE(chunked->prefilled());
    EXPECT_EQ(chunked->kvLength(), w.summarize_len);
    EXPECT_LT(chunk_total, mono_prefill);
    while (!mono->done()) {
        // Dense step costs depend only on the context length — exact.
        EXPECT_EQ(mono->decodeStep(), chunked->decodeStep());
        EXPECT_EQ(mono->kvLength(), chunked->kvLength());
    }
    EXPECT_TRUE(chunked->done());
    EXPECT_EQ(mono->kvTrace(), chunked->kvTrace());
    const RunResult rm = mono->finalize();
    const RunResult rc = chunked->finalize();
    EXPECT_EQ(rm.attention_flops_dense, rc.attention_flops_dense)
        << "the dense reference is per prompt, not per chunk";
    EXPECT_LT(rc.attention_flops, rm.attention_flops);
    EXPECT_LT(rc.seconds, rm.seconds);
}

// ---------------------------------------------------------------------
// Scheduler: chunk size >= prompt (and chunking off) == legacy
// ---------------------------------------------------------------------

TEST(ChunkedScheduler, InfiniteChunkSizeIsBitIdenticalToMonolithic)
{
    // With a chunk size and budget larger than any iteration's demand,
    // every prompt grant covers the whole remaining prompt and takes
    // the legacy monolithic path — the run must be bit-identical to
    // the chunking-off scheduler, including under KV pressure.
    const auto trace = denseSaturatingTrace();
    ContinuousBatchConfig sc = cappedConfig(trace);
    const ServeReport off = serve(trace, sc);
    ASSERT_GE(off.preemptions, 1u) << "the scenario must have pressure";

    sc.prefill_chunk_tokens = 1u << 20;
    sc.iteration_token_budget = 1u << 20;
    const ServeReport on = serve(trace, sc);
    expectSameReport(off, on);
    for (const ServedRequest& req : on.requests)
        EXPECT_EQ(req.prefill_chunks, 1u)
            << "an uncapped grant is one monolithic prompt pass";
}

TEST(ChunkedScheduler, ChunkedRunBitIdenticalAcrossThreads)
{
    const auto trace = denseSaturatingTrace();
    ContinuousBatchConfig sc = cappedConfig(trace);
    sc.prefill_chunk_tokens = 32;
    sc.iteration_token_budget = 48;
    sc.num_threads = 1;
    const ServeReport ref = serve(trace, sc);
    ASSERT_GE(ref.preemptions, 1u) << "the scenario must have pressure";
    bool any_split = false;
    for (const ServedRequest& req : ref.requests)
        any_split |= req.prefill_chunks > 1;
    EXPECT_TRUE(any_split) << "48..160-token prompts at chunk 32 must split";
    for (const std::size_t threads : {2u, 8u}) {
        sc.num_threads = threads;
        const ServeReport r = serve(trace, sc);
        expectSameReport(ref, r);
        for (std::size_t i = 0; i < r.requests.size(); ++i)
            EXPECT_EQ(r.requests[i].prefill_chunks,
                      ref.requests[i].prefill_chunks);
    }
}

TEST(ChunkedScheduler, ChunkStreamIsPlacementIndependent)
{
    // With only the per-chunk cap engaged (no shared iteration budget),
    // a request's chunk stream is a pure function of its prompt — so
    // per-request service results stay placement-independent across
    // shard counts, exactly like monolithic prefill.
    const auto trace = generatePoissonTrace(tinyTraceConfig(16));
    ContinuousBatchConfig sc;
    sc.max_active = 4;
    sc.prefill_chunk_tokens = 32;
    const ServeReport one = serve(trace, sc);
    sc.num_accelerators = 2;
    const ServeReport two = serve(trace, sc);
    ASSERT_EQ(one.requests.size(), two.requests.size());
    for (std::size_t i = 0; i < one.requests.size(); ++i) {
        expectSameService(one.requests[i], two.requests[i]);
        EXPECT_EQ(one.requests[i].prefill_chunks,
                  two.requests[i].prefill_chunks);
    }
}

// ---------------------------------------------------------------------
// Chunked prefill x shared-prefix caching
// ---------------------------------------------------------------------

TEST(ChunkedScheduler, ComposesWithPrefixCaching)
{
    // A cached prefix shortens the chunk stream (it starts at the
    // cached boundary); the pruned KV trajectory and token counts must
    // match the unchunked cache-on run exactly.
    SharedPrefixTraceConfig sp;
    sp.base = tinyTraceConfig(16);
    sp.base.mean_interarrival_s = 0.1e-3;
    sp.num_system_prompts = 2;
    sp.system_prompt_tokens = 96;
    sp.followup_prob = 0.5;
    sp.user_turn_min = 8;
    sp.user_turn_max = 32;
    sp.max_prompt_tokens = 512;
    const auto trace = generateSharedPrefixTrace(sp);

    ContinuousBatchConfig sc;
    sc.max_active = 8;
    sc.enable_prefix_caching = true;
    const ServeReport mono = serve(trace, sc);
    ASSERT_GE(mono.prefix_cache_hits, 1u);
    sc.prefill_chunk_tokens = 32;
    const ServeReport chunked = serve(trace, sc);
    // Uncapped pool: no cached block is ever evicted, and admission
    // order is FIFO in both runs, so the hit pattern is identical.
    EXPECT_EQ(chunked.prefix_cache_hits, mono.prefix_cache_hits);
    EXPECT_EQ(chunked.prefix_cached_tokens, mono.prefix_cached_tokens);
    bool any_split = false;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(chunked.requests[i].phase, RequestPhase::Finished);
        EXPECT_EQ(chunked.requests[i].kv_trace, mono.requests[i].kv_trace);
        EXPECT_EQ(chunked.requests[i].tokens, mono.requests[i].tokens);
        EXPECT_EQ(chunked.requests[i].cached_prefix_tokens,
                  mono.requests[i].cached_prefix_tokens);
        any_split |= chunked.requests[i].prefill_chunks > 1;
    }
    EXPECT_TRUE(any_split);
}

// ---------------------------------------------------------------------
// Mid-prefill preemption
// ---------------------------------------------------------------------

TEST(ChunkedScheduler, MidPrefillPreemptionIsDeterministicAndRecovers)
{
    // Chunking holds un-prefilled residents across iterations, so KV
    // pressure can now evict a request *between chunks*. The victim
    // must finalize its partial pass into the wasted totals, recompute
    // from scratch on re-admission, and the whole run must stay a pure
    // function of (config, trace).
    const auto trace = denseSaturatingTrace();
    ContinuousBatchConfig sc = cappedConfig(trace);
    sc.prefill_chunk_tokens = 16;
    sc.iteration_token_budget = 32;
    const ServeReport a = serve(trace, sc);
    const ServeReport b = serve(trace, sc);
    expectSameReport(a, b);
    EXPECT_GE(a.preemptions, 1u) << "the scenario must have pressure";
    for (const ServedRequest& req : a.requests) {
        EXPECT_EQ(req.phase, RequestPhase::Finished);
        EXPECT_EQ(req.tokens, trace[req.id].workload.generate_len)
            << "preempted requests must still complete in full";
        EXPECT_GE(req.prefill_chunks, 1u);
    }
    ASSERT_EQ(a.kv_peak_bytes.size(), 1u);
    EXPECT_LE(a.kv_peak_bytes[0], sc.kv_capacity_bytes);
}

// ---------------------------------------------------------------------
// Iteration token budget arithmetic
// ---------------------------------------------------------------------

TEST(ChunkedScheduler, IterationBudgetBoundsChunkSizes)
{
    // One request, no residents: every iteration's chunk is exactly
    // the budget, so a 160-token prompt at budget 16 takes 10 chunks
    // (and ceil(160/64) = 3 at chunk size 64 with no budget) — with
    // the same tokens and KV trajectory as the monolithic run.
    TracedRequest req;
    req.id = 0;
    req.arrival_s = 1e-6;
    req.workload.name = "budgeted";
    req.workload.model = tinyModel();
    req.workload.summarize_len = 160;
    req.workload.generate_len = 2;
    req.seed = 7;
    const std::vector<TracedRequest> trace{req};

    ContinuousBatchConfig sc;
    const ServeReport mono = serve(trace, sc);
    EXPECT_EQ(mono.requests[0].prefill_chunks, 1u);

    sc.iteration_token_budget = 16;
    const ServeReport budgeted = serve(trace, sc);
    EXPECT_EQ(budgeted.requests[0].prefill_chunks, 10u);
    EXPECT_EQ(budgeted.requests[0].kv_trace, mono.requests[0].kv_trace);
    EXPECT_EQ(budgeted.requests[0].tokens, mono.requests[0].tokens);

    sc.iteration_token_budget = 0;
    sc.prefill_chunk_tokens = 64;
    const ServeReport sized = serve(trace, sc);
    EXPECT_EQ(sized.requests[0].prefill_chunks, 3u);
    EXPECT_EQ(sized.requests[0].kv_trace, mono.requests[0].kv_trace);
}

// ---------------------------------------------------------------------
// Admission skip-ahead (head-of-line fix) and FIFO's strict order
// ---------------------------------------------------------------------

TEST(AdmissionSkipAhead, FifoNeverSkipsRegardlessOfAllowance)
{
    // Strict arrival-order admission is FIFO's fairness contract: the
    // skip-ahead knob must be inert there, bit for bit, even under
    // heavy KV pressure where skipping would help.
    const auto trace = denseSaturatingTrace();
    ContinuousBatchConfig sc = cappedConfig(trace);
    const ServeReport strict = serve(trace, sc);
    ASSERT_GE(strict.preemptions, 1u) << "the scenario must have pressure";
    sc.admission_skip_ahead = 5;
    const ServeReport skip = serve(trace, sc);
    expectSameReport(strict, skip);
}

TEST(AdmissionSkipAhead, PriorityAdmitsFittingRequestPastBlockedHead)
{
    // A huge high-priority head whose prompt KV does not fit beside
    // the resident must no longer starve a small request that does
    // fit. Three simultaneous arrivals: A (priority 10, small) is
    // admitted first; B (priority 5, 256-token prompt) fails its
    // reservation at a 1.1x-worst budget; C (priority 1, small) fits.
    std::vector<TracedRequest> trace;
    const std::size_t prompts[] = {64, 256, 48};
    const std::size_t outputs[] = {32, 2, 4};
    const int priorities[] = {10, 5, 1};
    for (std::size_t i = 0; i < 3; ++i) {
        TracedRequest req;
        req.id = i;
        req.arrival_s = 1e-6;
        req.workload.name = "hol-" + std::to_string(i);
        req.workload.model = tinyModel();
        req.workload.summarize_len = prompts[i];
        req.workload.generate_len = outputs[i];
        req.policy = PruningPolicy::disabled();
        req.priority = priorities[i];
        req.seed = 7 + i;
        trace.push_back(req);
    }
    ContinuousBatchConfig sc;
    sc.max_active = 4;
    sc.queue = QueuePolicy::Priority;
    sc.kv_capacity_bytes = kvBudgetForWorstRequest(trace, 1.1, sc);

    const ServeReport blocked = serve(trace, sc);
    sc.admission_skip_ahead = 1;
    const ServeReport skip = serve(trace, sc);
    for (const ServeReport* r : {&blocked, &skip})
        for (const ServedRequest& req : r->requests)
            EXPECT_EQ(req.phase, RequestPhase::Finished);
    // Head-of-line blocked: C waits behind B until residents drain.
    EXPECT_GT(blocked.requests[2].admit_s, blocked.requests[1].admit_s);
    // Skip-ahead: C is admitted beside A while B still waits.
    EXPECT_LT(skip.requests[2].admit_s, skip.requests[1].admit_s);
    EXPECT_LT(skip.requests[2].admit_s, blocked.requests[2].admit_s)
        << "skipping the blocked head must strictly improve C's wait";
    // The blocked head is not bypassed forever.
    EXPECT_GE(skip.requests[1].tokens, 1u);
}

// ---------------------------------------------------------------------
// Metric audits: per-member busy charging, queue-delay percentiles
// ---------------------------------------------------------------------

TEST(ServeMetrics, BusySecondsMatchSummedServiceAcrossFleet)
{
    // busy_s accumulates the serialized executed job seconds of each
    // iteration; with no preemption every executed second belongs to
    // exactly one request, so per-slot busy must equal the sum of its
    // requests' service_seconds — on a heterogeneous fleet, with and
    // without chunking (the PR-4 charging regression, now covering
    // mixed decode + chunk iterations).
    const auto trace = generatePoissonTrace(tinyTraceConfig(20));
    const AcceleratorFleet fleet{
        std::make_shared<const SpAttenAccelerator>(SpAttenConfig::eighth()),
        std::make_shared<const SpAttenAccelerator>(SpAttenConfig::eighth()),
        std::make_shared<const A3Backend>()};
    for (const std::size_t chunk : {0u, 32u}) {
        ContinuousBatchConfig sc;
        sc.max_active = 4;
        sc.prefill_chunk_tokens = chunk;
        sc.iteration_token_budget = chunk == 0 ? 0 : 64;
        const ServeReport r =
            ContinuousBatchScheduler(fleet, sc).run(trace);
        EXPECT_EQ(r.preemptions, 0u) << "fixture must stay uncapped";
        std::vector<double> per_accel(fleet.size(), 0.0);
        for (const ServedRequest& req : r.requests) {
            ASSERT_GE(req.accel, 0);
            per_accel[static_cast<std::size_t>(req.accel)] +=
                req.service_seconds;
        }
        ASSERT_EQ(r.accel_busy_s.size(), fleet.size());
        for (std::size_t a = 0; a < fleet.size(); ++a)
            EXPECT_NEAR(r.accel_busy_s[a], per_accel[a],
                        1e-9 * (per_accel[a] + 1e-30))
                << "slot " << a << " at chunk size " << chunk;
    }
}

TEST(ServeMetrics, QueueDelayPercentilesMatchManualComputation)
{
    const auto trace = denseSaturatingTrace();
    ContinuousBatchConfig sc = cappedConfig(trace);
    const ServeReport r = serve(trace, sc);
    std::vector<double> delays;
    for (const ServedRequest& req : r.requests) {
        EXPECT_GE(req.queueDelaySeconds(), 0.0);
        delays.push_back(req.queueDelaySeconds());
    }
    std::sort(delays.begin(), delays.end());
    EXPECT_EQ(r.queue_delay_p50_s, sortedQuantile(delays, 0.50));
    EXPECT_EQ(r.queue_delay_p99_s, sortedQuantile(delays, 0.99));
    EXPECT_GT(r.queue_delay_p99_s, 0.0)
        << "a saturating capped run must queue someone";
    EXPECT_GE(r.queue_delay_p99_s, r.queue_delay_p50_s);
}

} // namespace
} // namespace spatten
