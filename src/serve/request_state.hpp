/**
 * @file
 * Request lifecycle state of the continuous-batching scheduler.
 *
 * Every traced request moves through a strict FSM:
 *
 *   Queued --admit--> Prefill --first pass--> Decoding --last token-->
 *   Finished
 *
 * (a request with generate_len == 0 jumps Prefill -> Finished). Under
 * KV-capacity pressure the scheduler may preempt a Prefill/Decoding
 * request: its KV blocks are released, its emitted tokens are discarded
 * (recompute-style preemption), and it re-enters Queued to be admitted
 * again later — preemptions/recompute_tokens record the overhead, and
 * the timing trail reflects the final (completed) incarnation. The
 * ServedRequest record keeps the full timing trail — arrival, admission,
 * first token, per-token emission times, completion — plus the per-step
 * KV trajectory and the finalized per-request simulation result, so the
 * serving metrics (TTFT, ITL, goodput) and the determinism properties
 * are all derivable from it after the run.
 */
#ifndef SPATTEN_SERVE_REQUEST_STATE_HPP
#define SPATTEN_SERVE_REQUEST_STATE_HPP

#include <algorithm>
#include <cstddef>
#include <vector>

#include "accel/pipeline.hpp"
#include "sim/stats.hpp"

namespace spatten {

/** Lifecycle phase of one request. */
enum class RequestPhase
{
    Queued,   ///< Arrived, waiting for an accelerator slot.
    Prefill,  ///< Admitted; prompt pass not yet run.
    Decoding, ///< Prompt processed; emitting tokens.
    Finished, ///< All tokens emitted, result finalized.
};

/** Full service record of one request after a scheduler run. */
struct ServedRequest
{
    std::size_t id = 0;      ///< Trace id.
    int accel = -1;          ///< Accelerator that served it.
    RequestPhase phase = RequestPhase::Queued;
    int priority = 0;        ///< From the trace; higher is more urgent.

    double arrival_s = 0;     ///< From the trace.
    double admit_s = -1;      ///< Admission onto the accelerator (the
                              ///< final one, after any preemptions).
    double first_token_s = -1;///< First decode completion (or prefill
                              ///< completion for 0-token requests).
    double finish_s = -1;     ///< Last token emitted.
    double service_seconds = 0; ///< Busy time consumed on the accelerator,
                                ///< including preempted (wasted) work.

    std::size_t preemptions = 0; ///< Times this request was evicted.
    std::size_t recompute_tokens = 0; ///< Tokens discarded by preemption
                                      ///< and generated again.
    /// Prompt tokens whose prefill compute the shared-prefix cache
    /// skipped at the final admission (0 with caching off or on a
    /// cache miss).
    std::size_t cached_prefix_tokens = 0;
    /// Prompt passes of the final incarnation: 1 for a monolithic
    /// prefill, the chunk count under chunked prefill (a cached prefix
    /// shortens the chunk stream — it starts at the cached boundary).
    std::size_t prefill_chunks = 0;

    std::size_t tokens = 0;             ///< Tokens emitted.
    std::vector<double> token_times_s;  ///< Emission time of each token.
    std::vector<std::size_t> kv_trace;  ///< KV survivors after prefill
                                        ///< and after each decode step.
    RunResult sim;                      ///< Finalized simulation result.

    /** Queueing delay: admission minus arrival. */
    double queueDelaySeconds() const { return admit_s - arrival_s; }

    /** Time to first token, measured from arrival (includes queueing). */
    double ttftSeconds() const { return first_token_s - arrival_s; }

    /** Gaps between consecutive token emissions (empty below 2 tokens). */
    std::vector<double> interTokenGaps() const
    {
        std::vector<double> gaps;
        if (token_times_s.size() >= 2) {
            gaps.reserve(token_times_s.size() - 1);
            for (std::size_t i = 1; i < token_times_s.size(); ++i)
                gaps.push_back(token_times_s[i] - token_times_s[i - 1]);
        }
        return gaps;
    }

    /** This request's own ITL p99 (interpolated quantile over its
     *  gaps; 0 when fewer than two tokens) — the per-request tail the
     *  pooled ServeReport percentiles over-weight long requests on. */
    double itlP99Seconds() const
    {
        auto gaps = interTokenGaps();
        if (gaps.empty())
            return 0.0;
        std::sort(gaps.begin(), gaps.end());
        return sortedQuantile(gaps, 0.99);
    }

    /** Mean inter-token latency (0 when fewer than two tokens).
     *  This — not a percentile — is what the scheduler's ITL SLO
     *  tests; below two tokens there are no gaps, so such requests
     *  auto-pass the ITL half of the SLO. */
    double avgItlSeconds() const
    {
        const auto gaps = interTokenGaps();
        if (gaps.empty())
            return 0.0;
        double s = 0.0;
        for (double g : gaps)
            s += g;
        return s / static_cast<double>(gaps.size());
    }
};

} // namespace spatten

#endif // SPATTEN_SERVE_REQUEST_STATE_HPP
