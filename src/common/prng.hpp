/**
 * @file
 * Deterministic pseudo-random number generator used across the repo so that
 * every experiment is reproducible bit-for-bit from a seed.
 *
 * Implements xoshiro256** (Blackman & Vigna), seeded via splitmix64.
 */
#ifndef SPATTEN_COMMON_PRNG_HPP
#define SPATTEN_COMMON_PRNG_HPP

#include <cstdint>

namespace spatten {

/// Default per-request seed shared by every public simulation API
/// (pipeline, e2e, accelerator facade, batch runner, execution context),
/// so the entry points can never drift to different defaults.
constexpr std::uint64_t kDefaultRequestSeed = 0x5eed;

/**
 * splitmix64 finalizer: the one 64-bit mixing step behind seed
 * derivation, KV prefix chain hashes, and synthetic token-content ids.
 * A single definition so golden-pinned values (block identities, trace
 * tokens) can never drift between private copies.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * xoshiro256** PRNG. Satisfies the UniformRandomBitGenerator concept so it
 * can be used with <random> distributions, but the helpers below are
 * preferred because their output is stable across standard libraries.
 */
class Prng
{
  public:
    using result_type = std::uint64_t;

    explicit Prng(std::uint64_t seed = 0x5eed5eedULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void reseed(std::uint64_t seed);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit output. */
    result_type operator()() { return next(); }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (stable across platforms). */
    double gaussian();

    /** Gaussian with given mean and stddev. */
    double gaussian(double mean, double stddev);

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return uniform() < p; }

  private:
    std::uint64_t next();

    std::uint64_t state_[4];
    bool has_spare_ = false;
    double spare_ = 0.0;
};

} // namespace spatten

#endif // SPATTEN_COMMON_PRNG_HPP
