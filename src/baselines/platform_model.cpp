#include "baselines/platform_model.hpp"

#include <algorithm>
#include <cmath>

#include "accel/e2e.hpp"
#include "common/logging.hpp"

namespace spatten {

PlatformSpec
PlatformSpec::titanXp()
{
    PlatformSpec s;
    s.name = "titan-xp";
    s.peak_tflops = 12.15;
    s.mem_bw_gbs = 547.6;
    s.matmul_util = 0.008;  // batch-1 attention GEMMs (d=64 inner dim)
    s.genvec_util = 0.003;
    s.matmul_fraction = 0.27;
    s.overhead_us_per_layer = 45.0;
    s.gen_overhead_us_per_layer = 300.0;
    s.dynamic_power_w = 61.0;
    return s;
}

PlatformSpec
PlatformSpec::xeon()
{
    PlatformSpec s;
    s.name = "xeon-e5-2640v4";
    s.peak_tflops = 0.77; // 10 cores x AVX2 FMA @ 2.4 GHz
    s.mem_bw_gbs = 68.0;
    s.matmul_util = 0.05;
    s.genvec_util = 0.03;
    s.matmul_fraction = 0.35;
    s.overhead_us_per_layer = 80.0;
    s.gen_overhead_us_per_layer = 1200.0;
    s.fc_gen_bw_eff = 0.35;
    s.dynamic_power_w = 97.0;
    return s;
}

PlatformSpec
PlatformSpec::jetsonNano()
{
    PlatformSpec s;
    s.name = "jetson-nano";
    s.peak_tflops = 0.236; // fp32
    s.mem_bw_gbs = 25.6;
    s.matmul_util = 0.05;
    s.genvec_util = 0.02;
    s.matmul_fraction = 0.27;
    s.overhead_us_per_layer = 120.0;
    s.gen_overhead_us_per_layer = 3400.0;
    s.dynamic_power_w = 3.1;
    return s;
}

PlatformSpec
PlatformSpec::raspberryPi()
{
    PlatformSpec s;
    s.name = "raspberry-pi4";
    s.peak_tflops = 0.024; // 4x A72 NEON @ 1.5 GHz
    s.mem_bw_gbs = 4.0;
    s.matmul_util = 0.10;
    s.genvec_util = 0.05;
    s.matmul_fraction = 0.40;
    s.overhead_us_per_layer = 150.0;
    s.gen_overhead_us_per_layer = 60000.0;
    s.fc_gen_bw_eff = 0.35;
    s.dynamic_power_w = 3.1;
    return s;
}

PlatformResult
PlatformModel::attention(const WorkloadSpec& workload,
                         double pruned_keep) const
{
    SPATTEN_ASSERT(pruned_keep > 0.0 && pruned_keep <= 1.0,
                   "keep fraction %f out of (0,1]", pruned_keep);
    const ModelSpec& m = workload.model;
    const double d = static_cast<double>(m.d_head);
    const double h = static_cast<double>(m.num_heads);
    const double layers = static_cast<double>(m.num_layers);
    const double peak_fns = spec_.peak_tflops * 1e3; // GFLOP per ms... use ns
    PlatformResult res;
    res.platform = spec_.name;

    double ns = 0.0;

    // Summarization stage: L x L GEMMs per head. Bigger GEMMs reach
    // better utilization (length-scaled).
    if (!workload.skip_summarization) {
        const double l0 = static_cast<double>(workload.summarize_len) *
                          pruned_keep;
        const double scale = std::clamp(l0 / spec_.util_len_ref, 1.0,
                                        spec_.util_len_max_scale);
        const double util = std::min(0.9, spec_.matmul_util * scale);
        const double flops_layer = 2.0 * (l0 * l0 * d + l0 * l0 * d) * h;
        const double bytes_layer = (3.0 * l0 * d * h) * 4.0; // QKV fp32
        const double matmul_ns =
            std::max(flops_layer / (peak_fns * util),
                     bytes_layer / spec_.mem_bw_gbs);
        ns += layers * (matmul_ns / spec_.matmul_fraction +
                        spec_.overhead_us_per_layer * 1e3);
        res.flops += layers * flops_layer;
        res.dram_bytes += layers * bytes_layer;
    }

    // Generation stage: per token, vector x matrix per head; the K/V
    // concat + reshape data movement dominates (Fig. 2).
    for (std::size_t t = 0; t < workload.generate_len; ++t) {
        const double ctx =
            static_cast<double>(workload.summarize_len + t + 1) *
            pruned_keep;
        const double flops_layer = 2.0 * (ctx * d + ctx * d) * h;
        const double bytes_layer = (2.0 * ctx * d * h) * 4.0; // K+V fp32
        const double matmul_ns =
            std::max(flops_layer / (peak_fns * spec_.genvec_util),
                     bytes_layer / spec_.mem_bw_gbs);
        ns += layers * (matmul_ns / spec_.matmul_fraction +
                        spec_.gen_overhead_us_per_layer * 1e3);
        res.flops += layers * flops_layer;
        res.dram_bytes += layers * bytes_layer;
    }

    res.seconds = ns * 1e-9;
    res.energy_j = res.seconds * spec_.dynamic_power_w;
    return res;
}

PlatformResult
PlatformModel::fc(const WorkloadSpec& workload) const
{
    const ModelSpec& m = workload.model;
    const double params = fcParamsPerLayer(m);
    const double layers = static_cast<double>(m.num_layers);
    const double peak_fns = spec_.peak_tflops * 1e3;
    PlatformResult res;
    res.platform = spec_.name;

    double ns = 0.0;
    // Summarization: batched GEMM — FCs run at much better utilization
    // than attention (big regular GEMMs, no reshapes).
    if (!workload.skip_summarization) {
        const double rows = static_cast<double>(workload.summarize_len);
        const double flops_layer = 2.0 * rows * params;
        const double util = std::min(1.0, spec_.matmul_util * 6.0);
        ns += layers * (flops_layer / (peak_fns * util));
        res.flops += layers * flops_layer;
        res.dram_bytes += layers * params * 4.0;
    }
    // Generation: matrix-vector, weight-stream bandwidth bound.
    for (std::size_t t = 0; t < workload.generate_len; ++t) {
        const double flops_layer = 2.0 * params;
        const double bytes_layer = params * 4.0;
        const double util = std::min(1.0, spec_.genvec_util * 6.0);
        const double op_ns =
            std::max(flops_layer / (peak_fns * util),
                     bytes_layer / (spec_.mem_bw_gbs * spec_.fc_gen_bw_eff));
        ns += layers * op_ns;
        res.flops += layers * flops_layer;
        res.dram_bytes += layers * bytes_layer;
    }

    res.seconds = ns * 1e-9;
    res.energy_j = res.seconds * spec_.dynamic_power_w;
    return res;
}

} // namespace spatten
