/// Regenerates Fig. 15: end-to-end (attention + FC) speedup of
/// SpAtten-e2e over TITAN Xp and Xeon on the eight GPT-2 benchmarks,
/// with 8-bit and 12-bit FC weights. Measured on the generation stage
/// (the paper's GPT-2 setting: generating 32 tokens).
#include <cstdio>

#include "accel/e2e.hpp"
#include "baselines/platform_model.hpp"
#include "bench_util.hpp"
#include "workload/benchmarks.hpp"

namespace {

/// Generation-stage-only platform seconds: total minus summarize-only.
double
platformGenSeconds(const spatten::PlatformModel& pm,
                   const spatten::WorkloadSpec& w)
{
    spatten::WorkloadSpec sum_only = w;
    sum_only.generate_len = 0;
    const double attn =
        pm.attention(w).seconds - pm.attention(sum_only).seconds;
    const double fc = pm.fc(w).seconds - pm.fc(sum_only).seconds;
    return attn + fc;
}

} // namespace

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Fig. 15",
           "End-to-end speedup of SpAtten-e2e (8/12-bit FC weights), "
           "GPT-2 generation stage");

    const PlatformModel gpu(PlatformSpec::titanXp());
    const PlatformModel cpu(PlatformSpec::xeon());

    std::printf("%-24s | %11s %11s | %11s %11s\n", "benchmark",
                "8b vs GPU", "8b vs CPU", "12b vs GPU", "12b vs CPU");
    rule();
    std::vector<double> g8, c8, g12, c12;
    for (const auto& b : gptBenchmarks()) {
        SpAttenE2e e8(SpAttenConfig{}, E2eConfig{8, 0.85});
        SpAttenE2e e12(SpAttenConfig{}, E2eConfig{12, 0.85});
        const double sp8 = e8.run(b.workload, b.policy).generationSeconds();
        const double sp12 =
            e12.run(b.workload, b.policy).generationSeconds();
        const double tg = platformGenSeconds(gpu, b.workload);
        const double tc = platformGenSeconds(cpu, b.workload);
        g8.push_back(tg / sp8);
        c8.push_back(tc / sp8);
        g12.push_back(tg / sp12);
        c12.push_back(tc / sp12);
        std::printf("%-24s | %11.1f %11.1f | %11.1f %11.1f\n",
                    b.workload.name.c_str(), g8.back(), c8.back(),
                    g12.back(), c12.back());
    }
    rule();
    std::printf("%-24s | %11.1f %11.1f | %11.1f %11.1f\n", "geomean",
                geomean(g8), geomean(c8), geomean(g12), geomean(c12));
    std::printf("\nPaper geomeans: 8-bit 35x (GPU) / 122x (CPU); "
                "12-bit 24x / 83x.\n");
    return 0;
}
