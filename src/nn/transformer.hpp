/**
 * @file
 * Trainable transformer substrate (Fig. 3): multi-head self-attention
 * blocks with manual backprop, a classifier head (BERT-style
 * discriminative tasks) and an LM head (GPT-2-style generative tasks),
 * plus SpAtten-pruned inference — cascade token pruning, cascade head
 * pruning and local value pruning applied at inference time — used by the
 * accuracy-vs-pruning experiments (Fig. 21) and the visualizations
 * (Fig. 22/23).
 */
#ifndef SPATTEN_NN_TRANSFORMER_HPP
#define SPATTEN_NN_TRANSFORMER_HPP

#include <vector>

#include "core/model_spec.hpp"
#include "nn/layers.hpp"
#include "sim/survivor_index.hpp"

namespace spatten {

/** Multi-head self-attention layer with manual backprop. */
class MultiHeadSelfAttention
{
  public:
    MultiHeadSelfAttention(std::string name, std::size_t d_model,
                           std::size_t heads, Prng& prng);

    struct Cache
    {
        Tensor x, q, k, v;         ///< Inputs and projections.
        std::vector<Tensor> probs; ///< Per-head attention probabilities.
        Tensor concat;             ///< Concatenated head outputs.
    };

    /** Forward over a full sequence; @p causal masks future positions. */
    Tensor forward(const Tensor& x, bool causal, Cache& cache) const;

    /** Backward; accumulates parameter grads, returns dx. */
    Tensor backward(const Cache& cache, const Tensor& dy, bool causal);

    std::size_t heads() const { return heads_; }
    std::size_t headDim() const { return d_model_ / heads_; }

    const Linear& wq() const { return wq_; }
    const Linear& wk() const { return wk_; }
    const Linear& wv() const { return wv_; }
    const Linear& wo() const { return wo_; }

    void collectParams(std::vector<Param*>& out);

  private:
    std::size_t d_model_, heads_;
    Linear wq_, wk_, wv_, wo_;

    friend class TransformerModel; // pruned inference uses projections
    friend class GenerativeRunner; // KV-cache stepping uses projections
};

/** One post-LN transformer block: LN(x + Attn(x)), LN(y + FFN(y)). */
class TransformerBlock
{
  public:
    TransformerBlock(std::string name, std::size_t d_model,
                     std::size_t heads, std::size_t ffn_dim, Prng& prng);

    struct Cache
    {
        MultiHeadSelfAttention::Cache attn;
        LayerNorm::Cache ln1, ln2;
        Tensor x, res1, y, hidden_pre, hidden, res2;
    };

    Tensor forward(const Tensor& x, bool causal, Cache& cache) const;
    Tensor backward(const Cache& cache, const Tensor& dy, bool causal);

    void collectParams(std::vector<Param*>& out);

  private:
    MultiHeadSelfAttention attn_;
    Linear fc1_, fc2_;
    LayerNorm ln1_, ln2_;

    friend class TransformerModel;
    friend class GenerativeRunner;
};

/** Shape/hyperparameters of a small trainable transformer. */
struct TinyModelConfig
{
    std::size_t vocab = 64;
    std::size_t d_model = 48;
    std::size_t heads = 4;
    std::size_t layers = 3;
    std::size_t ffn_dim = 96;
    std::size_t max_len = 64;
    std::size_t num_classes = 2; ///< Classifier head width.
    std::uint64_t seed = 1234;
};

/** Statistics gathered during one pruned-inference forward pass. */
struct PrunedRunStats
{
    double tokens_kept_frac = 1.0;  ///< Final alive / initial tokens.
    double heads_kept_frac = 1.0;   ///< Final alive / total heads.
    double avg_keys_frac = 1.0;     ///< Mean per-layer alive-key fraction.
    double lsb_fraction = 0.0;      ///< Rows with max prob < pq threshold.
    std::vector<std::size_t> surviving_tokens; ///< Global ids (last layer).
    std::vector<float> final_token_scores;     ///< Cumulative importance.
    /// Per-layer surviving token ids in CSR form — one row per block,
    /// ascending ids (Fig. 22/23 visualization). survivors.count(l)
    /// tokens enter layer l; survivors.rowBegin(l)/rowEnd(l) bound the
    /// ids themselves.
    SurvivorIndex survivors;
};

/**
 * A small trainable transformer with both heads. Training always runs
 * dense; SpAtten pruning is applied at inference only (matching the
 * paper, which finetunes then prunes on the fly).
 */
class TransformerModel
{
  public:
    explicit TransformerModel(TinyModelConfig cfg);

    const TinyModelConfig& config() const { return cfg_; }

    // ---- Dense training / evaluation ----

    /** One SGD example for classification; returns loss. */
    double trainStepClassify(const std::vector<std::size_t>& ids,
                             std::size_t label);

    /** One SGD example for causal LM (next-token targets); returns loss. */
    double trainStepLm(const std::vector<std::size_t>& ids);

    /** Classification loss; accumulates gradients without stepping. */
    double lossClassifyGrad(const std::vector<std::size_t>& ids,
                            std::size_t label);

    /** Classification loss, forward only (for gradient checking). */
    double lossClassify(const std::vector<std::size_t>& ids,
                        std::size_t label) const;

    /** LM loss; accumulates gradients without stepping. */
    double lossLmGrad(const std::vector<std::size_t>& ids);

    /** Zero all parameter gradients. */
    void zeroGrads();

    /** Dense classification argmax. */
    std::size_t predictClass(const std::vector<std::size_t>& ids) const;

    /** Dense mean next-token cross-entropy. */
    double lmLoss(const std::vector<std::size_t>& ids) const;

    // ---- SpAtten-pruned inference ----

    /**
     * Classification with cascade token/head pruning and local value
     * pruning (queries and keys both pruned; mean-pooled classifier).
     */
    std::size_t predictClassPruned(const std::vector<std::size_t>& ids,
                                   const PruningPolicy& policy,
                                   PrunedRunStats* stats = nullptr) const;

    /**
     * Causal-LM loss with key-side cascade pruning: every position still
     * predicts its next token, but attends only to surviving keys —
     * matching the generation-stage semantics of the paper.
     */
    double lmLossPruned(const std::vector<std::size_t>& ids,
                        const PruningPolicy& policy,
                        PrunedRunStats* stats = nullptr) const;

    /** All trainable parameters (for the optimizer). */
    std::vector<Param*> params();

    AdamOptimizer& optimizer() { return opt_; }

  private:
    /** Dense forward to final hidden states; caches for backward. */
    struct ForwardCache
    {
        std::vector<TransformerBlock::Cache> blocks;
        Tensor embedded;
        Tensor final_hidden;
    };
    Tensor forwardHidden(const std::vector<std::size_t>& ids, bool causal,
                         ForwardCache& cache) const;
    void backwardHidden(const std::vector<std::size_t>& ids,
                        ForwardCache& cache, const Tensor& d_hidden,
                        bool causal);

    TinyModelConfig cfg_;
    Prng prng_;
    Embedding embed_;
    std::vector<TransformerBlock> blocks_;
    Linear cls_head_;
    Linear lm_head_;
    AdamOptimizer opt_;

    friend class GenerativeRunner;
};

} // namespace spatten

#endif // SPATTEN_NN_TRANSFORMER_HPP
