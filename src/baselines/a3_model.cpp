#include "baselines/a3_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace spatten {

A3Result
A3Model::run(const WorkloadSpec& workload) const
{
    SPATTEN_ASSERT(!workload.isGenerative(),
                   "A3 only accelerates discriminative (BERT) workloads");
    const ModelSpec& m = workload.model;
    const double d = static_cast<double>(m.d_head);
    const double h = static_cast<double>(m.num_heads);
    const double n = static_cast<double>(workload.summarize_len);
    const double layers = static_cast<double>(m.num_layers);
    const double macs_per_ns =
        static_cast<double>(cfg_.num_multipliers) * cfg_.freq_ghz;

    A3Result res;

    // Dense per-layer work (QxK + probxV over all heads).
    const double dense_macs_layer = 2.0 * n * n * d * h;
    res.dense_flops = 2.0 * dense_macs_layer * layers;

    // Approximation reduces executed scoring work.
    const double exec_macs_layer = dense_macs_layer / cfg_.approx_speedup;

    // Preprocessing: sort each of the d dimensions of the n keys, every
    // layer (keys change per layer). A hardware sorting network costs
    // ~n log^2 n comparisons per dimension (cf. the Batcher baseline in
    // accel/topk_engine).
    const double logn = std::max(1.0, std::log2(n));
    const double sort_cmps_layer = h * d * n * logn * logn;
    const double preprocess_ns_layer =
        sort_cmps_layer / static_cast<double>(cfg_.sort_parallelism);

    // All QKV fetched before pruning decisions — full DRAM traffic
    // (12-bit operands, same as SpAtten's on-chip width, for fairness).
    const double bytes_layer = 3.0 * n * d * h * 1.5;
    res.dram_bytes = bytes_layer * layers;

    const double compute_ns_layer = exec_macs_layer / macs_per_ns;
    const double mem_ns_layer = bytes_layer / cfg_.mem_bw_gbs;
    const double layer_ns =
        std::max(compute_ns_layer, mem_ns_layer) + preprocess_ns_layer;

    res.preprocess_seconds = preprocess_ns_layer * layers * 1e-9;
    res.seconds = layer_ns * layers * 1e-9;
    // Energy: executed ops at A3's per-op energy plus DRAM.
    res.energy_j = 2.0 * exec_macs_layer * layers *
                       cfg_.energy_per_flop_pj * 1e-12 +
                   res.dram_bytes * 8.0 * 3.9 * 1e-12;
    return res;
}

} // namespace spatten
