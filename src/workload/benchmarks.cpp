#include "workload/benchmarks.hpp"

#include "common/logging.hpp"
#include "core/schedule.hpp"

namespace spatten {

namespace {

/** GLUE/SQuAD average dev-set sequence lengths (tokens). */
struct BertTask
{
    const char* name;
    std::size_t avg_len;
};

constexpr BertTask kBertTasks[] = {
    {"squad-v1", 320}, {"squad-v2", 320}, {"cola", 11}, {"mnli-m", 39},
    {"mnli-mm", 39},   {"mrpc", 53},      {"qnli", 51}, {"qqp", 30},
    {"rte", 64},       {"sst-2", 25},     {"sts-b", 31},
};

constexpr const char* kLmDatasets[] = {"wikitext2", "wikitext103", "ptb",
                                       "1bw"};

PruningPolicy
bertPolicy(std::size_t len)
{
    PruningPolicy p;
    // Short sentences tolerate less pruning (§III-A): ratios follow the
    // sentence length, saturating for SQuAD-length inputs.
    p.token_avg_ratio = lengthAdaptiveRatio(len, 0.04, 0.16, 512);
    p.head_avg_ratio = 0.08;
    p.local_v_ratio = 0.25;
    // BERT is computation-bounded: static 12-bit quantization only.
    p.pq.enabled = false;
    p.pq.setting = {8, 4};
    p.lsb_fraction = 0.0;
    return p;
}

PruningPolicy
gptPolicy()
{
    PruningPolicy p;
    // ~1000-token contexts are highly redundant: the paper reaches 3.8x
    // token+local-V reduction on GPT-2.
    p.token_avg_ratio = 0.22;
    p.head_avg_ratio = 0.08;
    p.local_v_ratio = 0.35;
    p.pq.enabled = true;
    p.pq.setting = {8, 4}; // common setting (6+4 on easier tasks)
    p.pq.max_prob_threshold = 0.1;
    p.lsb_fraction = 0.059; // paper's measured average
    return p;
}

BenchmarkSpec
makeBert(const ModelSpec& model, const BertTask& task)
{
    BenchmarkSpec b;
    b.workload.name = model.name + "-" + task.name;
    b.workload.model = model;
    b.workload.summarize_len = task.avg_len;
    b.workload.generate_len = 0;
    b.policy = bertPolicy(task.avg_len);
    b.generative = false;
    return b;
}

BenchmarkSpec
makeGpt(const ModelSpec& model, const char* dataset)
{
    BenchmarkSpec b;
    b.workload.name = model.name + "-" + dataset;
    b.workload.model = model;
    // §V-A: initial sentence length 992, measure the latency of
    // generating 32 tokens (generation stage only).
    b.workload.summarize_len = 992;
    b.workload.generate_len = 32;
    b.workload.skip_summarization = true;
    b.policy = gptPolicy();
    b.generative = true;
    return b;
}

} // namespace

std::vector<BenchmarkSpec>
bertBenchmarks()
{
    std::vector<BenchmarkSpec> out;
    for (const ModelSpec& m :
         {ModelSpec::bertBase(), ModelSpec::bertLarge()}) {
        for (const BertTask& t : kBertTasks)
            out.push_back(makeBert(m, t));
    }
    return out;
}

std::vector<BenchmarkSpec>
gptBenchmarks()
{
    std::vector<BenchmarkSpec> out;
    for (const ModelSpec& m :
         {ModelSpec::gpt2Small(), ModelSpec::gpt2Medium()}) {
        for (const char* ds : kLmDatasets)
            out.push_back(makeGpt(m, ds));
    }
    return out;
}

std::vector<BenchmarkSpec>
paperBenchmarks()
{
    std::vector<BenchmarkSpec> out = bertBenchmarks();
    std::vector<BenchmarkSpec> gpt = gptBenchmarks();
    out.insert(out.end(), gpt.begin(), gpt.end());
    SPATTEN_ASSERT(out.size() == 30, "expected 30 benchmarks, got %zu",
                   out.size());
    return out;
}

const BenchmarkSpec&
findBenchmark(const std::vector<BenchmarkSpec>& list,
              const std::string& name)
{
    for (const auto& b : list)
        if (b.workload.name == name)
            return b;
    fatal("unknown benchmark '%s'", name.c_str());
}

} // namespace spatten
