/// Tests for the CSV/markdown reporting helpers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "report/report.hpp"

namespace spatten {
namespace {

std::string
slurp(const std::string& path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class CsvTest : public ::testing::Test
{
  protected:
    void TearDown() override { std::remove(path_.c_str()); }
    std::string path_ = "/tmp/spatten_test_report.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows)
{
    CsvWriter w(path_);
    w.header({"name", "value"});
    w.row({"alpha", "1"});
    EXPECT_EQ(w.rowsWritten(), 1u);
    // Arity mismatches are hard failures.
    EXPECT_DEATH(w.rowNumeric({2.5}), "cells");
    EXPECT_DEATH(w.row({"a", "b", "c"}), "cells");
}

TEST_F(CsvTest, RowBeforeHeaderDies)
{
    CsvWriter w(path_);
    EXPECT_DEATH(w.row({"x"}), "header missing");
}

TEST_F(CsvTest, RoundTripContent)
{
    {
        CsvWriter w(path_);
        w.header({"benchmark", "speedup"});
        w.row({"bert-base-cola", "186.0"});
        w.rowNumeric({1234.5, 2.0});
    }
    const std::string got = slurp(path_);
    EXPECT_NE(got.find("benchmark,speedup"), std::string::npos);
    EXPECT_NE(got.find("bert-base-cola,186.0"), std::string::npos);
    EXPECT_NE(got.find("1234.5,2"), std::string::npos);
}

TEST_F(CsvTest, EscapesSpecialCells)
{
    {
        CsvWriter w(path_);
        w.header({"a"});
        w.row({"has,comma"});
        w.row({"has\"quote"});
    }
    const std::string got = slurp(path_);
    EXPECT_NE(got.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(got.find("\"has\"\"quote\""), std::string::npos);
}

TEST(CsvEscape, PlainCellUntouched)
{
    EXPECT_EQ(csvEscape("plain"), "plain");
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
}

TEST(Markdown, AlignedTable)
{
    const std::string t = markdownTable(
        {"metric", "paper", "measured"},
        {{"speedup", "162x", "150x"}, {"energy", "1193x", "1679x"}});
    EXPECT_NE(t.find("| metric "), std::string::npos);
    EXPECT_NE(t.find("|---"), std::string::npos);
    EXPECT_NE(t.find("| speedup"), std::string::npos);
    // Three lines of content + header + separator.
    EXPECT_EQ(std::count(t.begin(), t.end(), '\n'), 4);
}

TEST(FmtNum, Compact)
{
    EXPECT_EQ(fmtNum(2.0), "2");
    EXPECT_EQ(fmtNum(2.5), "2.5");
    EXPECT_EQ(fmtNum(1e9), "1e+09");
}

} // namespace
} // namespace spatten
