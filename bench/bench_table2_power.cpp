/// Regenerates Table II: power breakdown of SpAtten (computation logic,
/// SRAM, DRAM, overall) averaged over the GPT-2 benchmarks.
#include <cstdio>

#include "accel/spatten_accelerator.hpp"
#include "bench_util.hpp"
#include "workload/benchmarks.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Table II", "Power breakdown of SpAtten (GPT-2 benchmarks)");

    SpAttenAccelerator accel;
    double logic_j = 0, sram_j = 0, dram_j = 0, leak_j = 0, secs = 0;
    for (const auto& b : gptBenchmarks()) {
        const RunResult r = accel.run(b.workload, b.policy);
        logic_j += r.energy.qk_j + r.energy.pv_j + r.energy.softmax_j +
                   r.energy.topk_j + r.energy.fetcher_j;
        sram_j += r.energy.sram_j;
        dram_j += r.energy.dram_j;
        leak_j += r.energy.leakage_j;
        secs += r.energy.seconds;
    }
    const double logic_w = logic_j / secs;
    const double sram_w = sram_j / secs;
    const double dram_w = dram_j / secs;
    const double leak_w = leak_j / secs;
    const double total_w = logic_w + sram_w + dram_w + leak_w;

    std::printf("%-22s %10s %12s\n", "bucket", "measured W", "paper W");
    rule();
    std::printf("%-22s %10.2f %12s\n", "Computation Logic",
                logic_w + leak_w, "1.36");
    std::printf("%-22s %10.2f %12s\n", "SRAM", sram_w, "1.24");
    std::printf("%-22s %10.2f %12s\n", "DRAM", dram_w, "5.71");
    std::printf("%-22s %10.2f %12s\n", "Overall", total_w, "8.30");
    rule();
    std::printf("DRAM share: measured %.0f%%, paper ~69%%\n",
                100.0 * dram_w / total_w);
    return 0;
}
