// Fixture: MUST trigger no-wallclock. Stamping simulated arrivals from
// the host clock makes every run's trace unique.
#include <chrono>
#include <ctime>

namespace fixture {

double arrivalStamp()
{
    const auto now = std::chrono::steady_clock::now();
    (void)now;
    return static_cast<double>(time(nullptr)); // second trigger
}

} // namespace fixture
