// Fixture: MUST trigger bad-suppression. A determinism-ok marker with
// no justification text is itself a finding — suppressions document
// why the check is wrong, or they don't count.
#include <chrono>

namespace fixture {

double hostStamp()
{
    // determinism-ok(no-wallclock)
    const auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

} // namespace fixture
