#include "sim/stage_graph.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace spatten {

StageGraph::StageGraph(double core_freq_ghz, double dram_freq_ghz,
                       EnergyConfig energy_cfg)
    : core_freq_ghz_(core_freq_ghz), dram_freq_ghz_(dram_freq_ghz),
      energy_cfg_(energy_cfg)
{
    SPATTEN_ASSERT(core_freq_ghz_ > 0 && dram_freq_ghz_ > 0,
                   "bad clock config (%f core, %f dram)", core_freq_ghz_,
                   dram_freq_ghz_);
}

void
StageGraph::addStage(const StageModel* stage, TrafficSink sink)
{
    SPATTEN_ASSERT(stage != nullptr, "null stage");
    stages_.push_back({stage, nullptr, std::move(sink)});
}

void
StageGraph::addMemoryStage(MemoryStage* stage, TrafficSink sink)
{
    SPATTEN_ASSERT(stage != nullptr, "null memory stage");
    stages_.push_back({stage, stage, std::move(sink)});
}

void
StageGraph::addTransform(std::unique_ptr<GraphTransform> transform)
{
    SPATTEN_ASSERT(transform != nullptr, "null transform");
    transforms_.push_back(std::move(transform));
}

double
StageGraph::priceActivityPj(const ActivityCounts& act) const
{
    // Logic-event pricing only: SRAM/DRAM movement energy is accounted
    // globally (SramModel byte counters, HbmModel energy) because the
    // byte width belongs to those models, not to the producing stage.
    return (act.qk_macs + act.pv_macs) * energy_cfg_.mac_pj +
           act.softmax_elems * energy_cfg_.softmax_elem_pj +
           act.topk_comparisons * energy_cfg_.topk_cmp_pj +
           act.fetch_requests * energy_cfg_.fetch_req_pj;
}

LayerCost
StageGraph::runLayer(ExecutionContext& ctx)
{
    SPATTEN_ASSERT(!stages_.empty(), "stage graph has no stages");
    for (auto& t : transforms_)
        t->prepare(ctx);
    ctx.beginLayer();

    LayerCost cost;
    const double q_heads = static_cast<double>(ctx.queries) *
                           static_cast<double>(ctx.alive_heads);

    // ---- Compute time: fully-pipelined II + serial layer extras ----
    Cycles layer_extra = 0;
    std::vector<StageTiming> timings;
    timings.reserve(stages_.size());
    for (const auto& e : stages_) {
        const StageTiming t = e.stage->timing(ctx);
        cost.ii = std::max(cost.ii, t.ii_cycles);
        layer_extra += t.layer_cycles;
        timings.push_back(t);
    }
    cost.compute_cycles =
        static_cast<Cycles>(ctx.queries) * cost.ii * ctx.alive_heads +
        layer_extra;
    cost.compute_ns =
        static_cast<double>(cost.compute_cycles) / core_freq_ghz_;

    // ---- Memory time: realize traffic through the memory stages ----
    const Cycles dram_start = dram_clock_;
    Cycles dram_done = dram_start;
    for (auto& e : stages_) {
        if (e.memory != nullptr)
            dram_done =
                std::max(dram_done, e.memory->issue(ctx, dram_start));
    }
    cost.memory_ns =
        static_cast<double>(dram_done - dram_start) / dram_freq_ghz_;
    dram_clock_ = dram_done;

    // Memory stages have no core-pipeline occupancy (their streams
    // overlap compute); their busy share is the realized DRAM window,
    // attributed in core-domain cycles so the breakdown stays
    // commensurable with the compute stages. The window is shared: with
    // several memory stages each would be charged the whole layer
    // window, so per-stage apportioning must be added before a second
    // MemoryStage is registered.
    for (const auto& e : stages_) {
        if (e.memory != nullptr)
            stats_.add("stage." + e.stage->stageName() + ".busy_cycles",
                       cost.memory_ns * core_freq_ghz_);
    }

    // ---- Coarse-grained overlap ----
    cost.layer_ns = std::max(cost.compute_ns, cost.memory_ns);
    elapsed_ns_ += cost.layer_ns;
    if (cost.compute_ns >= cost.memory_ns)
        compute_bound_ns_ += cost.layer_ns;
    else
        memory_bound_ns_ += cost.layer_ns;

    // ---- Per-stage accounting: occupancy, energy, traffic ----
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        const auto& e = stages_[i];
        const std::string prefix = "stage." + e.stage->stageName();
        // Memory stages were already charged their realized DRAM window
        // above; charging their pipeline occupancy too would double-count.
        const Cycles busy =
            e.memory != nullptr
                ? 0
                : static_cast<Cycles>(
                      q_heads * static_cast<double>(timings[i].ii_cycles) +
                      static_cast<double>(timings[i].layer_cycles));
        const ActivityCounts act = e.stage->energy(ctx);
        const StageTraffic traffic = e.stage->traffic(ctx);
        // Requests are a traffic quantity: a stage reporting them via
        // energy() as well would double-price them here and in the
        // global activity merge.
        SPATTEN_ASSERT(act.fetch_requests == 0,
                       "stage %s must report fetch_requests via traffic()",
                       e.stage->stageName().c_str());
        activity_.add(act);
        activity_.fetch_requests += traffic.fetch_requests;
        if (e.sink)
            e.sink(traffic);
        stats_.add(prefix + ".busy_cycles", static_cast<double>(busy));
        // Price the stage's compute activity and its request traffic
        // through the single pricing path so fetch requests can never be
        // double-counted if a stage ever reports them via energy() too.
        ActivityCounts priced = act;
        priced.fetch_requests += traffic.fetch_requests;
        stats_.add(prefix + ".energy_pj", priceActivityPj(priced));
        stats_.add(prefix + ".dram_bytes", traffic.dram_bytes);
    }

    // Executed attention work (FLOPs = 2 x MACs); the LSB recompute
    // share counts toward energy but not toward useful FLOPs.
    cost.qk_macs = q_heads * static_cast<double>(ctx.alive_tokens) *
                   static_cast<double>(ctx.d_head);
    cost.pv_macs = q_heads * static_cast<double>(ctx.kept_values) *
                   static_cast<double>(ctx.d_head);

    for (auto& t : transforms_)
        t->apply(ctx);
    ++ctx.layer;
    return cost;
}

} // namespace spatten
