/// The CSR survivor index: container semantics (materialized vs
/// compact rows), the functional path's per-layer export matching the
/// cascade pruner's alive sets under random pruning patterns, and the
/// analytic timing path's compact rows tracking the pass's survivor
/// trajectory exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "accel/attention_graph.hpp"
#include "accel/pipeline.hpp"
#include "core/pruning.hpp"
#include "sim/survivor_index.hpp"

namespace spatten {
namespace {

TEST(SurvivorIndex, EmptyAndResetSemantics)
{
    SurvivorIndex idx;
    EXPECT_EQ(idx.layers(), 0u);
    EXPECT_EQ(idx.back(), 0u);
    EXPECT_TRUE(idx.materialized()); // Vacuously: no compact rows yet.

    idx.appendCompactLayer(7);
    EXPECT_EQ(idx.layers(), 1u);
    EXPECT_EQ(idx.count(0), 7u);
    EXPECT_EQ(idx.back(), 7u);
    EXPECT_FALSE(idx.materialized());

    idx.reset(4);
    EXPECT_EQ(idx.layers(), 0u);
    idx.appendLayer({1, 3, 5});
    EXPECT_TRUE(idx.materialized());
    EXPECT_EQ(idx.count(0), 3u);
    EXPECT_EQ(*idx.rowBegin(0), 1u);
    EXPECT_EQ(*(idx.rowEnd(0) - 1), 5u);
}

TEST(SurvivorIndex, MaterializedRowsMatchPrunerUnderRandomPatterns)
{
    // Property: for random importance scores and random per-round prune
    // ratios, the CSR rows exported via CascadeTokenPruner::appendTo
    // are exactly the pruner's alive sets — ascending ids, each row a
    // subset of the previous (cascade monotonicity).
    std::mt19937 rng(0xc5f);
    for (int round = 0; round < 8; ++round) {
        const std::size_t n = 16 + (rng() % 128);
        TokenImportanceAccumulator acc(n);
        CascadeTokenPruner pruner(n);
        SurvivorIndex idx;
        std::vector<std::vector<std::size_t>> reference;

        const std::size_t layers = 3 + (rng() % 6);
        std::uniform_real_distribution<double> ratio_dist(0.0, 0.5);
        std::uniform_real_distribution<float> score_dist(0.0f, 1.0f);
        for (std::size_t l = 0; l < layers; ++l) {
            // Fresh random importance each layer.
            std::vector<float> row(n);
            for (auto& s : row)
                s = score_dist(rng);
            std::vector<std::size_t> all(n);
            for (std::size_t i = 0; i < n; ++i)
                all[i] = i;
            acc.accumulateRow(row, all);

            pruner.pruneToRatio(acc, ratio_dist(rng));
            pruner.appendTo(idx);
            reference.push_back(pruner.alive());
        }

        ASSERT_EQ(idx.layers(), layers);
        ASSERT_TRUE(idx.materialized());
        for (std::size_t l = 0; l < layers; ++l) {
            const std::vector<std::size_t> got(idx.rowBegin(l),
                                               idx.rowEnd(l));
            EXPECT_EQ(got, reference[l]) << "round " << round
                                         << " layer " << l;
            EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
            if (l > 0) {
                EXPECT_TRUE(std::includes(idx.rowBegin(l - 1),
                                          idx.rowEnd(l - 1),
                                          idx.rowBegin(l),
                                          idx.rowEnd(l)));
            }
        }
    }
}

TEST(SurvivorIndex, CompactRowsTrackAnalyticPassTrajectory)
{
    // The timing path appends one compact row per layer entry; under
    // cascade pruning the widths must start at the entering context and
    // shrink monotonically, and the context's survivorTokens() reads
    // the latest row.
    WorkloadSpec w;
    w.name = "csr-probe";
    w.model = {"tiny", 6, 4, 64, 4};
    w.summarize_len = 96;
    w.generate_len = 0;
    AttentionGraph graph(SpAttenConfig{}, w, PruningPolicy{}, 7);

    graph.runPass(w.summarize_len, w.summarize_len, false);
    const SurvivorIndex& idx = graph.context().survivors;
    ASSERT_EQ(idx.layers(), w.model.num_layers);
    EXPECT_FALSE(idx.materialized()); // Compact mode: implicit ids.
    EXPECT_EQ(idx.count(0), w.summarize_len);
    for (std::size_t l = 1; l < idx.layers(); ++l)
        EXPECT_LE(idx.count(l), idx.count(l - 1));
    // The pass's final prune (after the last layer) leaves fewer
    // survivors than the last layer entered with.
    EXPECT_LE(graph.context().alive_tokens, idx.back());
    EXPECT_LT(graph.context().alive_tokens, w.summarize_len);
}

TEST(SurvivorIndex, CompactRowsConstantWithoutPruning)
{
    WorkloadSpec w;
    w.name = "csr-dense";
    w.model = {"tiny", 4, 4, 64, 4};
    w.summarize_len = 64;
    AttentionGraph graph(SpAttenConfig{}, w, PruningPolicy::disabled(), 7);
    graph.runPass(w.summarize_len, w.summarize_len, false);
    const SurvivorIndex& idx = graph.context().survivors;
    ASSERT_EQ(idx.layers(), w.model.num_layers);
    for (std::size_t l = 0; l < idx.layers(); ++l)
        EXPECT_EQ(idx.count(l), w.summarize_len);
}

TEST(SurvivorIndex, DecodePassRowStartsAtCarriedKvPlusOne)
{
    WorkloadSpec w;
    w.name = "csr-decode";
    w.model = {"tiny", 4, 4, 64, 4};
    w.summarize_len = 64;
    w.generate_len = 4;
    AttentionGraph graph(SpAttenConfig{}, w, PruningPolicy{}, 7);
    graph.runPass(w.summarize_len, w.summarize_len, false);
    const std::size_t kv = graph.context().alive_tokens;
    graph.runPass(1, kv + 1, true);
    EXPECT_EQ(graph.context().survivors.count(0), kv + 1);
}

TEST(SurvivorIndex, HandBuiltContextFallsBackToAliveTokens)
{
    // A context that never entered a layer (unit tests of individual
    // stages) reads alive_tokens through survivorTokens().
    ExecutionContext ctx;
    ctx.alive_tokens = 42;
    EXPECT_EQ(ctx.survivorTokens(), 42u);
    ctx.beginPass(1, 42, true);
    ctx.beginLayer();
    EXPECT_EQ(ctx.survivorTokens(), 42u);
    EXPECT_EQ(ctx.survivors.layers(), 1u);
}

} // namespace
} // namespace spatten
