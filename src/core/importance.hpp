/**
 * @file
 * Cumulative token and head importance scores (Algorithm 2 of the paper).
 *
 * Token importance: attention probabilities are accumulated column-wise —
 * each key token's score grows by the probability every query assigns to
 * it, across heads, layers and (for GPT-2) generation iterations.
 *
 * Head importance: the mean absolute magnitude of each head's slice of
 * attention_out is accumulated across layers; a large magnitude means the
 * following FC (and hence block_out) is strongly influenced by that head.
 */
#ifndef SPATTEN_CORE_IMPORTANCE_HPP
#define SPATTEN_CORE_IMPORTANCE_HPP

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace spatten {

/**
 * Accumulates cumulative token importance scores over the lifetime of a
 * sentence (across heads, layers and generation iterations). Scores are
 * indexed by *global* token id, so cascade pruning can always refer back
 * to original positions.
 */
class TokenImportanceAccumulator
{
  public:
    /** @param num_tokens initial sentence length (global token count). */
    explicit TokenImportanceAccumulator(std::size_t num_tokens = 0);

    /** Reset to @p num_tokens zero scores. */
    void reset(std::size_t num_tokens);

    /**
     * Accumulate one head's attention probabilities.
     *
     * @param attention_prob L0 x L1 row-stochastic matrix for one head.
     * @param key_token_ids  global token id of each of the L1 columns
     *                       (identity when nothing was pruned yet).
     */
    void accumulate(const Tensor& attention_prob,
                    const std::vector<std::size_t>& key_token_ids);

    /** Accumulate a single query row (generation stage). */
    void accumulateRow(const std::vector<float>& prob_row,
                       const std::vector<std::size_t>& key_token_ids);

    /** Grow the score table by one token (a newly generated token). */
    void addToken();

    std::size_t numTokens() const { return scores_.size(); }

    /** Cumulative score of global token @p id. */
    float score(std::size_t id) const;

    const std::vector<float>& scores() const { return scores_; }

  private:
    std::vector<float> scores_;
};

/**
 * Accumulates cumulative head importance scores across layers. All layers
 * of a model share one accumulator (head h of layer l accumulates into
 * slot h, matching the paper's per-model cumulative score).
 */
class HeadImportanceAccumulator
{
  public:
    explicit HeadImportanceAccumulator(std::size_t num_heads = 0);

    void reset(std::size_t num_heads);

    /**
     * Accumulate the magnitude of one head's output.
     * @param head_out L0 x D slice of attention_out belonging to the head.
     * @param head_id  global head id.
     */
    void accumulate(const Tensor& head_out, std::size_t head_id);

    /** Accumulate a precomputed sum of |elements| for @p head_id. */
    void accumulateAbsSum(double abs_sum, std::size_t head_id);

    std::size_t numHeads() const { return scores_.size(); }
    float score(std::size_t id) const;
    const std::vector<float>& scores() const { return scores_; }

  private:
    std::vector<float> scores_;
};

} // namespace spatten

#endif // SPATTEN_CORE_IMPORTANCE_HPP
