/**
 * @file
 * Softmax + progressive-quantization determination modules (§IV-F,
 * Fig. 12). Scores are dequantized (the 1/sqrt(D) normalization folded
 * into the scale), pushed through a floating-point exp/accumulate/divide
 * pipeline of width `parallelism` (Table I: 8), re-quantized, and the max
 * probability is compared against the LSB-fetch threshold.
 */
#ifndef SPATTEN_ACCEL_SOFTMAX_MODULE_HPP
#define SPATTEN_ACCEL_SOFTMAX_MODULE_HPP

#include <cstddef>
#include <vector>

#include "sim/clock.hpp"
#include "sim/stage_model.hpp"

namespace spatten {

/** Configuration of the softmax unit. */
struct SoftmaxModuleConfig
{
    std::size_t parallelism = 8;   ///< Elements per cycle (Table I).
    std::size_t fifo_depth = 128;  ///< Score FIFO depth (Table I).
    std::size_t pipeline_depth = 12; ///< exp Taylor-5 + div stages.
    int prob_bits = 12;            ///< Re-quantized probability width.
};

/** Timing + decision outcome for one row. */
struct SoftmaxTiming
{
    Cycles cycles = 0;
    std::size_t elems = 0;
    bool needs_lsb = false;
    float max_prob = 0.0f;
};

/** The softmax hardware module. */
class SoftmaxModule : public StageModel
{
  public:
    explicit SoftmaxModule(SoftmaxModuleConfig cfg = SoftmaxModuleConfig{});

    /** Cycle cost of a row of @p n scores. */
    Cycles timingCycles(std::size_t n) const;

    // StageModel: steady-state occupancy per query row (the division
    // pass and pipeline fill overlap the next row's exp stream under the
    // score FIFO), element activity including the LSB recompute share.
    std::string stageName() const override { return "softmax"; }
    StageTiming timing(const ExecutionContext& ctx) const override;
    ActivityCounts energy(const ExecutionContext& ctx) const override;
    StageTraffic traffic(const ExecutionContext& ctx) const override;

    /**
     * Functional softmax of a score row with the progressive-quantization
     * comparison folded in; probabilities are re-quantized to prob_bits
     * (matching the fixed-point downstream datapath).
     *
     * @param scores dequantized attention scores.
     * @param lsb_threshold LSB decision threshold on the max probability.
     */
    SoftmaxTiming run(const std::vector<float>& scores,
                      std::vector<float>& prob_out,
                      double lsb_threshold) const;

    const SoftmaxModuleConfig& config() const { return cfg_; }

  private:
    SoftmaxModuleConfig cfg_;
};

} // namespace spatten

#endif // SPATTEN_ACCEL_SOFTMAX_MODULE_HPP
