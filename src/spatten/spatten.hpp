/**
 * @file
 * Umbrella header: include everything a typical SpAtten user needs.
 *
 * @code
 *   #include "spatten/spatten.hpp"
 *   spatten::SpAttenAccelerator accel;
 *   auto result = accel.run(workload, policy);
 * @endcode
 */
#ifndef SPATTEN_SPATTEN_HPP
#define SPATTEN_SPATTEN_HPP

// Algorithms (§III).
#include "core/attention_ref.hpp"
#include "core/graph_transforms.hpp"
#include "core/importance.hpp"
#include "core/model_spec.hpp"
#include "core/progressive_quant.hpp"
#include "core/pruning.hpp"
#include "core/schedule.hpp"

// Quantization substrate.
#include "quant/bitplane.hpp"
#include "quant/linear_quant.hpp"

// Accelerator model (§IV) and baselines (§V).
#include "accel/e2e.hpp"
#include "accel/spatten_accelerator.hpp"
#include "accel/topk_engine.hpp"
#include "baselines/a3_model.hpp"
#include "baselines/mnnfast_model.hpp"
#include "baselines/platform_model.hpp"

// NLP substrate and workloads.
#include "nn/generation.hpp"
#include "nn/trainer.hpp"
#include "nn/transformer.hpp"
#include "workload/benchmarks.hpp"
#include "workload/synthetic_tasks.hpp"

// Stage-graph execution engine and concurrent batch serving.
#include "serve/batch_runner.hpp"
#include "sim/stage_graph.hpp"
#include "sim/stage_model.hpp"

// Co-design search (§V-B).
#include "hat/hat_search.hpp"

#endif // SPATTEN_SPATTEN_HPP
