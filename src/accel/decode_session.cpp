#include "accel/decode_session.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace spatten {

DecodeSession::DecodeSession(const SpAttenConfig& cfg,
                             const WorkloadSpec& workload,
                             const PruningPolicy& policy,
                             std::uint64_t request_seed)
    : workload_(workload), graph_(cfg, workload, policy, request_seed)
{
    SPATTEN_ASSERT(workload_.summarize_len >= 1, "empty prompt");
    // The unpruned trajectory peaks at summarize + generate tokens; the
    // pruned one only shrinks from there, so this bound covers both.
    SPATTEN_ASSERT(workload_.summarize_len + workload_.generate_len <=
                       cfg.max_context,
                   "context %zu exceeds SRAM-backed max %zu",
                   workload_.summarize_len + workload_.generate_len,
                   cfg.max_context);
}

double
DecodeSession::prefill()
{
    return prefillWithCachedPrefix(0);
}

double
DecodeSession::prefillWithCachedPrefix(std::size_t cached_prefix_tokens)
{
    SPATTEN_ASSERT(!prefilled_, "prefill() called twice");
    if (workload_.skip_summarization)
        return prefillChunk(0, workload_.summarize_len);
    // Always recompute at least the last prompt token (vLLM semantics:
    // a fully cached prompt still needs a pass to emit first logits).
    const std::size_t cached =
        std::min(cached_prefix_tokens, workload_.summarize_len - 1);
    return prefillChunk(cached, workload_.summarize_len - cached);
}

double
DecodeSession::prefillChunk(std::size_t offset, std::size_t len)
{
    SPATTEN_ASSERT(!prefilled_, "prefillChunk() after prefill completed");
    const std::size_t prompt = workload_.summarize_len;
    SPATTEN_ASSERT(len >= 1 && offset + len <= prompt,
                   "chunk [%zu, %zu) outside the %zu-token prompt",
                   offset, offset + len, prompt);
    SPATTEN_ASSERT(prefill_pos_ == 0 || offset == prefill_pos_,
                   "non-contiguous chunk at %zu (expected %zu)", offset,
                   prefill_pos_);
    if (workload_.skip_summarization) {
        // Pre-summarized prompt: the KV cache exists but no prefill
        // compute is charged, matching SpAttenPipeline's methodology.
        prefilled_ = true;
        prefill_pos_ = prompt;
        kv_len_ = prompt;
        kv_trace_.push_back(kv_len_);
        return 0.0;
    }
    const double before = graph_.elapsedSeconds();
    // The chunk's queries attend to the causal context they close
    // (tokens [0, offset + len)). beginPass resets the cascade state,
    // so each chunk prunes from its own entering context — intermediate
    // survivor counts are transient, and the final chunk (entering with
    // the full prompt) reproduces the monolithic prefill's KV exactly.
    graph_.runPass(len, offset + len, false);
    prefill_pos_ = offset + len;
    // Cumulative: nothing but prefill chunks has run on the graph yet,
    // so the graph's elapsed time *is* the prefill share — and it is
    // already correct at a mid-prefill eviction's finalize().
    prefill_seconds_ = graph_.elapsedSeconds();
    if (prefill_pos_ == prompt) {
        prefilled_ = true;
        kv_len_ = graph_.context().alive_tokens;
        kv_trace_.push_back(kv_len_);
    }
    return graph_.elapsedSeconds() - before;
}

double
DecodeSession::decodeStep()
{
    const std::size_t layers = beginDecodeStep();
    for (std::size_t l = 0; l < layers; ++l)
        graph_.stepDecodeLayer();
    return endDecodeStep();
}

std::size_t
DecodeSession::beginDecodeStep()
{
    SPATTEN_ASSERT(prefilled_, "decodeStep() before prefill()");
    SPATTEN_ASSERT(!done(), "decodeStep() past generate_len");
    step_before_s_ = graph_.elapsedSeconds();
    // The new token's K/V joins the pruned survivors of the last pass.
    return graph_.beginDecodePass(kv_len_ + 1);
}

double
DecodeSession::endDecodeStep()
{
    graph_.finishDecodePass();
    kv_len_ = graph_.context().alive_tokens;
    kv_trace_.push_back(kv_len_);
    ++tokens_;
    return graph_.elapsedSeconds() - step_before_s_;
}

RunResult
DecodeSession::finalize() const
{
    // No prefilled_ assert: a session evicted mid-prefill (between
    // chunks) finalizes too, accounting the wasted partial pass.
    RunResult res;
    res.workload = workload_.name;
    res.summarize_seconds = prefill_seconds_;
    res.generate_seconds = graph_.elapsedSeconds() - prefill_seconds_;
    graph_.finalize(res);
    return res;
}

} // namespace spatten
