/**
 * @file
 * Named statistics registry used by the hardware models to expose
 * counters (DRAM reads, row activations, top-k iterations, ...) to the
 * benchmark harness in a uniform way.
 */
#ifndef SPATTEN_SIM_STATS_HPP
#define SPATTEN_SIM_STATS_HPP

#include <map>
#include <string>
#include <vector>

namespace spatten {

/** A flat name -> double statistics map with formatting helpers. */
class StatSet
{
  public:
    /** Add @p delta to the named counter (creating it at 0). */
    void add(const std::string& name, double delta);

    /** Set the named counter to @p value. */
    void set(const std::string& name, double value);

    /** Value of the counter, 0 when absent. */
    double get(const std::string& name) const;

    bool has(const std::string& name) const;

    /** Merge another stat set into this one (summing counters). */
    void merge(const StatSet& other);

    /** All (name, value) pairs in name order. */
    const std::map<std::string, double>& all() const { return stats_; }

    /** Multi-line "name = value" dump, for harness output. */
    std::string toString() const;

    void clear() { stats_.clear(); }

  private:
    std::map<std::string, double> stats_;
};

/**
 * Nearest-rank quantile of an ascending-sorted sample vector (the
 * single definition of the rounding rule behind every p50/p99 the
 * serving layer reports). Returns 0 for an empty sample.
 */
double sortedQuantile(const std::vector<double>& sorted, double q);

} // namespace spatten

#endif // SPATTEN_SIM_STATS_HPP
