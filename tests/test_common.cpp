/// Unit tests for the common substrate: PRNG determinism/statistics,
/// string formatting, and math helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/logging.hpp"
#include "common/math_util.hpp"
#include "common/prng.hpp"

namespace spatten {
namespace {

TEST(Prng, DeterministicAcrossInstances)
{
    Prng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiffer)
{
    Prng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b());
    EXPECT_LT(same, 4);
}

TEST(Prng, ReseedRestoresStream)
{
    Prng a(7);
    const auto x0 = a();
    const auto x1 = a();
    a.reseed(7);
    EXPECT_EQ(a(), x0);
    EXPECT_EQ(a(), x1);
}

TEST(Prng, UniformRange)
{
    Prng p(3);
    for (int i = 0; i < 1000; ++i) {
        const double u = p.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Prng, UniformMeanNearHalf)
{
    Prng p(11);
    double s = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        s += p.uniform();
    EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Prng, BelowIsInRangeAndHitsAll)
{
    Prng p(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const auto x = p.below(7);
        EXPECT_LT(x, 7u);
        seen.insert(x);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Prng, RangeInclusive)
{
    Prng p(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto x = p.range(-3, 3);
        EXPECT_GE(x, -3);
        EXPECT_LE(x, 3);
        saw_lo |= (x == -3);
        saw_hi |= (x == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Prng, GaussianMoments)
{
    Prng p(13);
    double s = 0.0, s2 = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = p.gaussian();
        s += g;
        s2 += g * g;
    }
    EXPECT_NEAR(s / n, 0.0, 0.02);
    EXPECT_NEAR(s2 / n, 1.0, 0.03);
}

TEST(Prng, GaussianShifted)
{
    Prng p(17);
    double s = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        s += p.gaussian(5.0, 0.5);
    EXPECT_NEAR(s / n, 5.0, 0.02);
}

TEST(Strfmt, FormatsLikePrintf)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 3, "ab"), "x=3 y=ab");
    EXPECT_EQ(strfmt("%.2f", 1.5), "1.50");
    EXPECT_EQ(strfmt("plain"), "plain");
}

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv(1, 512), 1);
    EXPECT_EQ(ceilDiv(0, 5), 0);
}

TEST(MathUtil, RoundUp)
{
    EXPECT_EQ(roundUp(10, 8), 16);
    EXPECT_EQ(roundUp(16, 8), 16);
}

TEST(MathUtil, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0);
    EXPECT_EQ(ceilLog2(2), 1);
    EXPECT_EQ(ceilLog2(3), 2);
    EXPECT_EQ(ceilLog2(1024), 10);
    EXPECT_EQ(ceilLog2(1025), 11);
}

TEST(MathUtil, IsPow2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(512));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
}

TEST(MathUtil, ClampTo)
{
    EXPECT_EQ(clampTo(5, 0, 10), 5);
    EXPECT_EQ(clampTo(-1, 0, 10), 0);
    EXPECT_EQ(clampTo(11, 0, 10), 10);
}

} // namespace
} // namespace spatten
