/// Tests for the HAT co-design search (Fig. 16/17 mechanism).
#include <gtest/gtest.h>

#include "hat/hat_search.hpp"

namespace spatten {
namespace {

TEST(Hat, ProxyBleuMonotoneInCapacity)
{
    const HatCandidate small{512, 512, 1};
    const HatCandidate base{512, 2048, 6};
    const HatCandidate big{768, 3072, 6};
    EXPECT_LT(proxyBleu(small), proxyBleu(base));
    EXPECT_LT(proxyBleu(base), proxyBleu(big));
}

TEST(Hat, ProxyBleuCalibration)
{
    // Transformer-Base-like: ~27.3 BLEU on WMT'14 En-De.
    EXPECT_NEAR(proxyBleu({512, 2048, 6}), 27.3, 0.8);
    // Everything saturates below 29.2.
    EXPECT_LT(proxyBleu({768, 3072, 6}), 29.2);
}

TEST(Hat, ModelSpecMapsDimensions)
{
    const ModelSpec m = hatModelSpec({640, 1024, 3});
    EXPECT_EQ(m.dModel(), 640u);
    EXPECT_EQ(m.num_heads, 10u);
    EXPECT_EQ(m.ffnHidden(), 1024u);
    EXPECT_EQ(m.num_layers, 3u);
}

TEST(Hat, BiggerModelsSlower)
{
    SpAttenConfig hw;
    E2eConfig e2e{8, 0.85};
    const auto small = evaluateCandidate({512, 512, 2}, hw, e2e);
    const auto big = evaluateCandidate({768, 3072, 6}, hw, e2e);
    EXPECT_LT(small.latency_ms, big.latency_ms);
    EXPECT_GT(big.fc_flops, small.fc_flops);
}

TEST(Hat, FrontierMonotone)
{
    SpAttenConfig hw;
    E2eConfig e2e{8, 0.85};
    HatSearchConfig cfg;
    cfg.population = 10;
    cfg.generations = 4;
    const auto frontier =
        searchFrontier({0.8, 1.6, 4.0}, hw, e2e, cfg);
    ASSERT_EQ(frontier.size(), 3u);
    // Looser budgets can only improve BLEU.
    EXPECT_LE(frontier[0].bleu, frontier[1].bleu + 1e-9);
    EXPECT_LE(frontier[1].bleu, frontier[2].bleu + 1e-9);
    // Budgets respected.
    EXPECT_LE(frontier[0].latency_ms, 0.8);
    EXPECT_LE(frontier[1].latency_ms, 1.6);
}

TEST(Hat, CodesignShiftsFlopsTowardAttention)
{
    // Fig. 17: under a tight budget the search shrinks FC (SpAtten
    // executes attention efficiently), so the chosen model's FC:attn
    // FLOP ratio drops vs the vanilla Transformer-Base config.
    SpAttenConfig hw;
    E2eConfig e2e{8, 0.85};
    HatSearchConfig cfg;
    cfg.population = 12;
    cfg.generations = 5;
    const auto vanilla = evaluateCandidate({512, 2048, 6}, hw, e2e);
    const auto frontier = searchFrontier(
        {vanilla.latency_ms * 0.55}, hw, e2e, cfg);
    ASSERT_EQ(frontier.size(), 1u);
    const auto& chosen = frontier[0];
    const double vanilla_ratio = vanilla.fc_flops / vanilla.attn_flops;
    const double chosen_ratio = chosen.fc_flops / chosen.attn_flops;
    EXPECT_LT(chosen_ratio, vanilla_ratio);
}

} // namespace
} // namespace spatten
