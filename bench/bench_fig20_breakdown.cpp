/// Regenerates Fig. 20: speedup breakdown of SpAtten over TITAN Xp on
/// the GPT-2 benchmarks — specialized datapath, cascade pruning (with
/// and without the high-parallelism top-k engine), then quantization.
#include <cstdio>

#include "accel/spatten_accelerator.hpp"
#include "baselines/platform_model.hpp"
#include "bench_util.hpp"
#include "workload/benchmarks.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Fig. 20",
           "Speedup breakdown over TITAN Xp (GPT-2 benchmarks, geomean)");

    const PlatformModel gpu(PlatformSpec::titanXp());

    struct Stage
    {
        const char* name;
        SpAttenConfig cfg;
        PruningPolicy pol;
    };

    // Stage 1: dedicated datapath, fp32-width fetch, no pruning.
    PruningPolicy dense32 = PruningPolicy::disabled();
    dense32.pq.setting = {16, 16}; // 32-bit fetch

    // Stage 2: + cascade token & head pruning, but a parallelism-1 top-k
    // engine bottlenecks the pipeline.
    PruningPolicy pruned32 = dense32;
    pruned32.token_pruning = true;
    pruned32.token_avg_ratio = 0.22;
    pruned32.head_pruning = true;
    pruned32.head_avg_ratio = 0.04;
    pruned32.local_value_pruning = true;
    pruned32.local_v_ratio = 0.35;
    SpAttenConfig slow_topk;
    slow_topk.topk_parallelism = 1;

    // Stage 3: + high-parallelism (16) top-k engine.
    // Stage 4: + static 12-bit quantization.
    PruningPolicy pruned12 = pruned32;
    pruned12.pq.setting = {8, 4};

    // Stage 5: + progressive quantization.
    PruningPolicy progressive = pruned12;
    progressive.pq.enabled = true;
    progressive.lsb_fraction = 0.059;

    const std::vector<Stage> stages = {
        {"dedicated datapath (32b)", SpAttenConfig{}, dense32},
        {"+ cascade pruning, topk P=1", slow_topk, pruned32},
        {"+ high-parallelism top-k", SpAttenConfig{}, pruned32},
        {"+ static 12-bit quant", SpAttenConfig{}, pruned12},
        {"+ progressive quant", SpAttenConfig{}, progressive},
    };

    std::printf("%-30s %14s %10s\n", "stage", "speedup vs GPU", "step x");
    rule();
    double prev = 1.0;
    for (const auto& st : stages) {
        SpAttenAccelerator accel(st.cfg);
        std::vector<double> sp;
        for (const auto& b : gptBenchmarks()) {
            const RunResult r = accel.run(b.workload, st.pol);
            sp.push_back(gpu.attention(b.workload).seconds / r.seconds);
        }
        const double g = geomean(sp);
        std::printf("%-30s %14.1f %9.2fx\n", st.name, g, g / prev);
        prev = g;
    }
    rule();
    std::printf("Paper waterfall: 22.1x datapath -> x1.1 token -> x1.1 "
                "head -> x3 top-k engine -> x1.6 static quant -> x1.7 "
                "progressive = 209x total.\n");

    // Per-stage occupancy/energy breakdown, landed in the stats by the
    // stage graph automatically (no hand re-derivation of internals).
    SpAttenAccelerator accel;
    const BenchmarkSpec b = gptBenchmarks().front();
    const RunResult r = accel.run(b.workload, progressive);
    std::printf("\nStage breakdown (%s, full policy):\n",
                b.workload.name.c_str());
    std::printf("%-18s %16s %16s\n", "stage", "busy cycles", "energy (uJ)");
    rule();
    for (const char* stage :
         {"fetcher", "qk", "softmax", "topk", "zero_eliminator", "pv"}) {
        const std::string p = std::string("stage.") + stage;
        std::printf("%-18s %16.0f %16.2f\n", stage,
                    r.stats.get(p + ".busy_cycles"),
                    r.stats.get(p + ".energy_pj") * 1e-6);
    }
    return 0;
}
