/// Tests for the Key/Value SRAM model: capacity math, double buffering,
/// overflow detection and traffic accounting.
#include <gtest/gtest.h>

#include "accel/sram.hpp"

namespace spatten {
namespace {

TEST(Sram, PaperCapacitySupports1024Tokens)
{
    // Table I / §V-B: 196 KB double-buffered holds a 1024-token, 64-dim,
    // 12-bit context (2 x 1024 x 64 x 12b = 196 KB).
    SramModel sram({196, 768, true, 12.0}, "key");
    EXPECT_GE(sram.maxTokens(64), 1024u);
    EXPECT_LT(sram.maxTokens(64), 1100u);
    EXPECT_TRUE(sram.fits(1024, 64));
    EXPECT_FALSE(sram.fits(2048, 64));
}

TEST(Sram, DoubleBufferingHalvesCapacity)
{
    SramModel db({196, 768, true, 12.0});
    SramModel sb({196, 768, false, 12.0});
    EXPECT_EQ(sb.maxTokens(64), 2 * db.maxTokens(64));
    EXPECT_EQ(db.usableBytes(), 196u * 1024 / 2);
}

TEST(Sram, WiderTokensFewerFit)
{
    SramModel sram;
    EXPECT_GT(sram.maxTokens(64), sram.maxTokens(128));
    // Doubling the token width halves the capacity (up to flooring).
    EXPECT_GE(sram.maxTokens(64), 2 * sram.maxTokens(128));
    EXPECT_LE(sram.maxTokens(64), 2 * sram.maxTokens(128) + 1);
}

TEST(Sram, FillAndReadAccounting)
{
    SramModel sram;
    sram.recordFill(100, 64); // 100 x 64 x 1.5 B = 9600 B
    EXPECT_DOUBLE_EQ(sram.bytesWritten(), 9600.0);
    sram.recordReads(64.0); // 64 elements = 96 B
    EXPECT_DOUBLE_EQ(sram.bytesRead(), 96.0);
    sram.reset();
    EXPECT_DOUBLE_EQ(sram.bytesWritten(), 0.0);
    EXPECT_DOUBLE_EQ(sram.bytesRead(), 0.0);
}

TEST(Sram, OverflowDies)
{
    SramModel sram({16, 768, true, 12.0}, "tiny");
    EXPECT_DEATH(sram.recordFill(100000, 64), "overflow");
}

TEST(Sram, EighthConfigCapacity)
{
    // SpAtten-1/8 uses 24 KB SRAMs: 128-token buffers at 64 dims.
    SramModel sram({24, 768, true, 12.0});
    EXPECT_EQ(sram.maxTokens(64), 128u);
}

} // namespace
} // namespace spatten
