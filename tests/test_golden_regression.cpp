/// Golden regression suite: six named workload x policy combos with
/// cycles / DRAM-reduction / energy pinned against checked-in golden
/// values, so any change to the timing, traffic, or energy model is a
/// conscious decision, never an accident.
///
/// Re-baselining intentionally:
///   SPATTEN_GOLDEN_DUMP=1 ./test_golden_regression
/// prints a fresh `kGoldens` table; paste it over the one below.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "accel/decode_session.hpp"
#include "accel/spatten_accelerator.hpp"
#include "serve/batch_runner.hpp"

namespace spatten {
namespace {

struct Metrics
{
    double cycles = 0;         ///< Simulated core cycles (summed for batches).
    double dram_reduction = 1; ///< Dense fp32 bytes / fetched bytes.
    double energy_j = 0;       ///< Total energy (summed for batches).
};

struct Golden
{
    const char* name;
    double cycles;
    double dram_reduction;
    double energy_j;
};

// Measured on the current model (see file header for the re-baseline
// recipe). Workload x policy combos cover the paper's main scenarios:
// discriminative prefill, generative decode with carried pruned KV,
// BERT, MemNet-style memory hops, beam search, and batched serving.
constexpr Golden kGoldens[] = {
    {"gpt2-prefill", 2553202, 3.9037407672146771, 0.0067539634951},
    {"gpt2-decode", 713571, 36.482948854267796, 0.0019153460735400014},
    {"bert", 1439268, 3.9021911718005717, 0.0038977779987000001},
    {"memnet", 965, 2.8985507246376812, 2.1028826000000002e-06},
    {"beam-search", 318336, 6.6982921781093312, 0.0026592823845695999},
    {"batch-of-8", 6279128, 3.6367933481243346, 0.023001340760403201},
};

Metrics
fromRun(const RunResult& r)
{
    return {static_cast<double>(r.cycles), r.dramReduction(),
            r.energy.totalJ()};
}

Metrics
fromBatch(const BatchResult& b)
{
    Metrics m;
    for (const RunResult& r : b.results) {
        m.cycles += static_cast<double>(r.cycles);
        m.energy_j += r.energy.totalJ();
    }
    m.dram_reduction = b.dram_reduction;
    return m;
}

/// GPT-2 Small prefill over a 512-token prompt, full SpAtten policy.
Metrics
runGpt2Prefill()
{
    WorkloadSpec w;
    w.name = "gpt2-prefill";
    w.model = ModelSpec::gpt2Small();
    w.summarize_len = 512;
    SpAttenAccelerator accel;
    return fromRun(accel.run(w, PruningPolicy{}));
}

/// GPT-2 Small token-by-token decode (256 + 16) through a DecodeSession:
/// every generated token re-enters the graph with the cascade-pruned KV.
Metrics
runGpt2Decode()
{
    WorkloadSpec w;
    w.name = "gpt2-decode";
    w.model = ModelSpec::gpt2Small();
    w.summarize_len = 256;
    w.generate_len = 16;
    const SpAttenAccelerator accel;
    return fromRun(accel.runDecode(w, PruningPolicy{}).result);
}

/// BERT-Base over a 384-token input (SQuAD-length), full policy.
Metrics
runBert()
{
    WorkloadSpec w;
    w.name = "bert";
    w.model = ModelSpec::bertBase();
    w.summarize_len = 384;
    SpAttenAccelerator accel;
    return fromRun(accel.run(w, PruningPolicy{}));
}

/// MemNet-style shape (3 hops x 1 head over 50 memory slots) with
/// aggressive cumulative token pruning between hops (paper SVI).
Metrics
runMemnet()
{
    WorkloadSpec w;
    w.name = "memnet";
    w.model = {"memnet", 3, 1, 32, 4};
    w.summarize_len = 50;
    PruningPolicy p = PruningPolicy::disabled();
    p.token_pruning = true;
    p.token_avg_ratio = 0.5;
    SpAttenAccelerator accel;
    return fromRun(accel.run(w, p));
}

/// Beam search (width 4): four decode streams over a shared
/// pre-summarized 192-token prompt — pruned prompt KV is shared and
/// skipped by every beam (paper SV-B).
Metrics
runBeamSearch()
{
    WorkloadSpec w;
    w.name = "beam-search";
    w.model = ModelSpec::gpt2Small();
    w.summarize_len = 192;
    w.generate_len = 8;
    w.skip_summarization = true;
    std::vector<BatchRequest> beams;
    for (std::uint64_t b = 0; b < 4; ++b)
        beams.push_back({w, PruningPolicy{}, b + 1});
    return fromBatch(BatchRunner(SpAttenConfig{}, {1}).run(beams));
}

/// A batch of 8 mixed requests (BERT + GPT-2, pruned and dense) through
/// the BatchRunner, single-threaded for a stable service order.
Metrics
runBatchOf8()
{
    WorkloadSpec bert;
    bert.name = "bert-b8";
    bert.model = ModelSpec::bertBase();
    bert.summarize_len = 192;
    WorkloadSpec gpt;
    gpt.name = "gpt2-b8";
    gpt.model = ModelSpec::gpt2Small();
    gpt.summarize_len = 256;
    gpt.generate_len = 8;
    std::vector<BatchRequest> batch;
    for (std::uint64_t i = 0; i < 4; ++i) {
        batch.push_back({bert, i % 2 ? PruningPolicy{}
                                     : PruningPolicy::disabled(),
                         i + 1});
        batch.push_back({gpt, i % 2 ? PruningPolicy::disabled()
                                    : PruningPolicy{},
                         i + 100});
    }
    return fromBatch(BatchRunner(SpAttenConfig{}, {1}).run(batch));
}

Metrics
runCombo(const std::string& name)
{
    if (name == "gpt2-prefill")
        return runGpt2Prefill();
    if (name == "gpt2-decode")
        return runGpt2Decode();
    if (name == "bert")
        return runBert();
    if (name == "memnet")
        return runMemnet();
    if (name == "beam-search")
        return runBeamSearch();
    if (name == "batch-of-8")
        return runBatchOf8();
    ADD_FAILURE() << "unknown combo " << name;
    return {};
}

const Golden&
findGolden(const std::string& name)
{
    for (const Golden& g : kGoldens)
        if (name == g.name)
            return g;
    static Golden none{"", 0, 0, 0};
    ADD_FAILURE() << "no golden entry for " << name;
    return none;
}

/// One-line re-baseline recipe appended to every failure message.
#define GOLDEN_RECIPE                                                     \
    "  [to re-baseline intentionally: SPATTEN_GOLDEN_DUMP=1 "             \
    "./test_golden_regression and paste the printed table over "          \
    "kGoldens in tests/test_golden_regression.cpp]"

void
checkCombo(const std::string& name)
{
    const Metrics m = runCombo(name);
    if (std::getenv("SPATTEN_GOLDEN_DUMP") != nullptr) {
        std::printf("    {\"%s\", %.0f, %.17g, %.17g},\n", name.c_str(),
                    m.cycles, m.dram_reduction, m.energy_j);
        GTEST_SKIP() << "dump mode: golden line printed, nothing checked";
    }
    const Golden& g = findGolden(name);
    EXPECT_EQ(m.cycles, g.cycles)
        << name << " cycles drifted from golden" << GOLDEN_RECIPE;
    EXPECT_NEAR(m.dram_reduction, g.dram_reduction,
                1e-6 * g.dram_reduction)
        << name << " DRAM reduction drifted from golden" << GOLDEN_RECIPE;
    EXPECT_NEAR(m.energy_j, g.energy_j, 1e-6 * g.energy_j)
        << name << " energy drifted from golden" << GOLDEN_RECIPE;
}

TEST(GoldenRegression, Gpt2Prefill) { checkCombo("gpt2-prefill"); }
TEST(GoldenRegression, Gpt2Decode) { checkCombo("gpt2-decode"); }
TEST(GoldenRegression, Bert) { checkCombo("bert"); }
TEST(GoldenRegression, Memnet) { checkCombo("memnet"); }
TEST(GoldenRegression, BeamSearch) { checkCombo("beam-search"); }
TEST(GoldenRegression, BatchOf8) { checkCombo("batch-of-8"); }

// The goldens are only trustworthy if a combo is a pure function: two
// evaluations in one process must agree bit for bit.
TEST(GoldenRegression, CombosAreDeterministic)
{
    for (const Golden& g : kGoldens) {
        const Metrics a = runCombo(g.name);
        const Metrics b = runCombo(g.name);
        EXPECT_EQ(a.cycles, b.cycles) << g.name;
        EXPECT_EQ(a.dram_reduction, b.dram_reduction) << g.name;
        EXPECT_EQ(a.energy_j, b.energy_j) << g.name;
    }
}

} // namespace
} // namespace spatten
