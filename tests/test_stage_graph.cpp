/// Stage-graph unit tests: StageModel conformance of every accel module,
/// the ExecutionContext plane-address fix (no layer aliasing for models
/// with > 64 heads), graph transforms, and the automatic per-stage
/// stats landed by StageGraph.
#include <gtest/gtest.h>

#include <set>

#include "accel/fetcher.hpp"
#include "accel/pv_module.hpp"
#include "accel/qk_module.hpp"
#include "accel/softmax_module.hpp"
#include "accel/spatten_accelerator.hpp"
#include "accel/topk_engine.hpp"
#include "accel/zero_eliminator.hpp"
#include "core/graph_transforms.hpp"

namespace spatten {
namespace {

ExecutionContext
testContext()
{
    WorkloadSpec w;
    w.model = ModelSpec::bertBase();
    w.summarize_len = 128;
    PruningPolicy p;
    p.token_avg_ratio = 0.2;
    p.head_avg_ratio = 0.1;
    p.local_v_ratio = 0.3;
    ExecutionContext ctx = makeExecutionContext(w, p);
    ctx.pass_queries = 128;
    ctx.alive_tokens = 128;
    ctx.alive_heads = 12;
    ctx.sram_tokens = 1024;
    ctx.beginLayer();
    return ctx;
}

TEST(StageModel, EveryModuleImplementsTheInterface)
{
    QkModule qk;
    PvModule pv;
    SoftmaxModule sm;
    TopkEngine tk;
    ZeroEliminator ze;
    HbmModel hbm;
    Crossbar xbar({32, 16});
    QkvFetcher fetcher(hbm, xbar);

    const std::vector<const StageModel*> stages = {&qk,      &pv, &sm,
                                                   &tk,      &ze, &fetcher};
    std::set<std::string> names;
    const ExecutionContext ctx = testContext();
    for (const StageModel* s : stages) {
        EXPECT_FALSE(s->stageName().empty());
        names.insert(s->stageName());
        (void)s->timing(ctx);
        (void)s->energy(ctx);
        (void)s->traffic(ctx);
    }
    EXPECT_EQ(names.size(), stages.size()) << "stage names must be unique";
}

TEST(StageModel, TimingMatchesModuleOccupancies)
{
    const ExecutionContext ctx = testContext(); // 128 keys, d=64, kept=90
    QkModule qk;
    EXPECT_EQ(qk.timing(ctx).ii_cycles, qk.timing(128, 64).cycles);
    PvModule pv;
    EXPECT_EQ(pv.timing(ctx).ii_cycles, pv.timing(ctx.kept_values, 64).cycles);
    SoftmaxModule sm;
    EXPECT_EQ(sm.timing(ctx).ii_cycles, Cycles{128 / 8});
    // Local-V quick-select: 2n expected ops over 16 comparators.
    TopkEngine tk;
    EXPECT_EQ(tk.timing(ctx).ii_cycles, Cycles{2 * 128 / 16});
}

TEST(StageModel, TopkPlusZeroEliminatorReproduceSelectionCost)
{
    // The monolith priced a full n-element selection at
    // ceil(2n/p) + ceil(n/p) + 4*(ceil(log2 n)+1); the split between the
    // top-k stream and the zero-eliminator passes must preserve the sum.
    TopkEngine tk({16, 1024, 0x70cc});
    for (const std::size_t n : {1u, 2u, 100u, 128u, 1000u}) {
        const Cycles split =
            tk.selectStreamCycles(n) + ZeroEliminator::cascadeCycles(n);
        Cycles expect;
        if (n <= 1) {
            expect = 1;
        } else {
            const auto logn = static_cast<Cycles>(ceilLog2(n));
            expect = (2 * n + 15) / 16 + (n + 15) / 16 + 4 * (logn + 1);
        }
        EXPECT_EQ(split, expect) << "n=" << n;
    }
}

TEST(ExecutionContext, PlaneBasesNeverAliasAcrossLayers)
{
    // The seed's fixed `layer * 64 + head` slot stride collided layer
    // regions for models with more than 64 heads; the stride now derives
    // from the model's head count.
    ExecutionContext ctx = testContext();
    ctx.num_heads_total = 96;
    std::set<std::uint64_t> bases;
    std::size_t combos = 0;
    for (std::size_t layer = 0; layer < ctx.num_layers; ++layer) {
        ctx.layer = layer;
        for (std::size_t head = 0; head < 96; ++head, ++combos)
            bases.insert(ctx.planeBase(0, head, 96));
    }
    EXPECT_EQ(bases.size(), combos) << "layer/head address collision";
}

TEST(ExecutionContext, PlaneRegionsNeverOverlapForLargeModels)
{
    // A 96-head, 12-layer fp32 model overflows a fixed 256 MB plane
    // region; the region must grow so the last slot of plane p stays
    // below the first slot of plane p + 1.
    ExecutionContext ctx = testContext();
    ctx.num_heads_total = 96;
    ctx.num_layers = 12;
    ctx.total_bits = 32;
    ctx.max_context = 1024;
    const std::size_t row = ctx.bytesPerRow(32); // widest plane
    ctx.layer = ctx.num_layers - 1;
    const std::uint64_t last_slot_end =
        ctx.planeBase(0, 95, row) +
        roundUp<std::uint64_t>(ctx.max_context * row, 4096);
    ctx.layer = 0;
    EXPECT_LE(last_slot_end, ctx.planeBase(1, 0, row))
        << "plane 0 spills into plane 1";
    // Small models keep the historical 256 MB region (layout unchanged).
    ExecutionContext small = testContext();
    small.layer = 0;
    EXPECT_EQ(small.planeBase(1, 0, 96) - small.planeBase(0, 0, 96),
              0x10000000ULL);
}

TEST(ExecutionContext, BeginLayerDerivesQueriesAndKeptRows)
{
    ExecutionContext ctx = testContext();
    ctx.alive_tokens = 100;
    ctx.beginLayer();
    EXPECT_EQ(ctx.queries, 100u); // capped at the surviving context
    EXPECT_EQ(ctx.kept_values, 70u); // ceil(100 * (1 - 0.3))
    ctx.local_value_pruning = false;
    ctx.beginLayer();
    EXPECT_EQ(ctx.kept_values, 100u);
}

TEST(GraphTransforms, CascadePruningShrinksAliveCounts)
{
    WorkloadSpec w;
    w.model = ModelSpec::bertBase();
    w.summarize_len = 256;
    PruningPolicy p;
    p.token_avg_ratio = 0.25;
    p.head_avg_ratio = 0.1;
    ExecutionContext ctx = makeExecutionContext(w, p);
    ctx.pass_queries = 256;

    auto transforms = makePolicyTransforms(w.model, p);
    ASSERT_EQ(transforms.size(), 3u); // token + head + quant
    for (std::size_t l = 0; l < w.model.num_layers; ++l) {
        for (auto& t : transforms)
            t->prepare(ctx);
        for (auto& t : transforms)
            t->apply(ctx);
        ++ctx.layer;
    }
    EXPECT_LT(ctx.alive_tokens, 256u);
    EXPECT_LT(ctx.alive_heads, 12u);
    EXPECT_GE(ctx.alive_tokens, 1u);
    EXPECT_GE(ctx.alive_heads, 1u);
}

TEST(GraphTransforms, ProgressiveQuantSelectsPlanePerStage)
{
    WorkloadSpec w;
    w.model = ModelSpec::gpt2Small();
    PruningPolicy p = PruningPolicy::disabled();
    p.pq.enabled = true;
    p.pq.setting = {6, 4};
    p.lsb_fraction = 0.059;
    ExecutionContext ctx = makeExecutionContext(w, p);

    ProgressiveQuantTransform quant;
    ctx.generation = false;
    quant.prepare(ctx);
    EXPECT_EQ(ctx.fetch_bits, 10); // summarization: full static width
    EXPECT_DOUBLE_EQ(ctx.active_lsb_fraction, 0.0);
    ctx.generation = true;
    quant.prepare(ctx);
    EXPECT_EQ(ctx.fetch_bits, 6); // generation: eager MSB plane
    EXPECT_DOUBLE_EQ(ctx.active_lsb_fraction, 0.059);
}

TEST(StageGraph, AsymmetricSramTilesToTheSmallerBuffer)
{
    // The tile size must honor the smaller SRAM: a shrunken value SRAM
    // forces more K tiles, re-streaming Q and raising DRAM traffic
    // (the monolith instead aborted on the value-SRAM fill).
    WorkloadSpec w;
    w.name = "asymmetric-sram";
    w.model = ModelSpec::bertBase();
    w.summarize_len = 512;
    SpAttenConfig small_value;
    small_value.value_sram_kb = 32; // 170 tokens/buffer vs 1045 for key
    const RunResult tiled =
        SpAttenPipeline(small_value).run(w, PruningPolicy::disabled());
    const RunResult flat =
        SpAttenPipeline().run(w, PruningPolicy::disabled());
    EXPECT_GT(tiled.dram_bytes, flat.dram_bytes);
    EXPECT_GT(tiled.seconds, 0.0);
}

TEST(StageGraph, PerStageStatsLandAutomatically)
{
    SpAttenAccelerator accel;
    WorkloadSpec w;
    w.name = "stage-stats";
    w.model = ModelSpec::gpt2Small();
    w.summarize_len = 256;
    w.generate_len = 4;
    PruningPolicy p;
    p.pq.enabled = true;
    const RunResult r = accel.run(w, p);

    for (const char* stage : {"fetcher", "qk", "softmax", "topk",
                              "zero_eliminator", "pv"}) {
        const std::string prefix = std::string("stage.") + stage;
        EXPECT_TRUE(r.stats.has(prefix + ".busy_cycles")) << stage;
        EXPECT_TRUE(r.stats.has(prefix + ".energy_pj")) << stage;
    }
    EXPECT_GT(r.stats.get("stage.qk.busy_cycles"), 0.0);
    EXPECT_GT(r.stats.get("stage.pv.energy_pj"), 0.0);
    EXPECT_GT(r.stats.get("stage.fetcher.dram_bytes"), 0.0);
    // The fetcher's static traffic estimate prices the same plan that
    // issue() realizes against HBM.
    EXPECT_NEAR(r.stats.get("stage.fetcher.dram_bytes"), r.dram_bytes,
                r.dram_bytes * 0.02);
    // Occupancy ordering on a long-context run: QxK streams the full
    // context, PV only the locally-kept rows.
    EXPECT_GT(r.stats.get("stage.qk.busy_cycles"),
              r.stats.get("stage.pv.busy_cycles"));
}

} // namespace
} // namespace spatten
