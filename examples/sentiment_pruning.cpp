/// Fig. 1 / Fig. 22 demonstration: train a small sentiment-style
/// classifier on the synthetic keyword task, then run SpAtten cascade
/// token pruning and print which words survive each layer — the
/// interpretability story of the paper (keywords survive, fillers go).
#include <cstdio>

#include "nn/trainer.hpp"
#include "workload/synthetic_tasks.hpp"

int
main()
{
    using namespace spatten;

    KeywordTaskConfig tc;
    tc.seq_len = 16;
    KeywordTask task(tc);

    TinyModelConfig mc;
    mc.vocab = task.vocabSize();
    mc.d_model = 32;
    mc.heads = 4;
    mc.layers = 3;
    mc.ffn_dim = 64;
    mc.max_len = tc.seq_len;
    mc.num_classes = task.numClasses();
    TransformerModel model(mc);

    std::printf("training sentiment classifier on the synthetic keyword "
                "task...\n");
    trainClassifier(model, task.sample(300), 6);
    const auto test = task.sample(100);
    std::printf("dense accuracy: %.1f%%\n\n",
                classifierAccuracy(model, test) * 100);

    PruningPolicy policy = PruningPolicy::disabled();
    policy.token_pruning = true;
    policy.token_avg_ratio = 0.35;

    // Visualize cascade pruning on a few sentences (Fig. 22 style).
    const auto samples = task.sample(3);
    for (const auto& ex : samples) {
        PrunedRunStats stats;
        const std::size_t pred =
            model.predictClassPruned(ex.ids, policy, &stats);
        std::printf("label=%zu predicted=%zu (%s)\n", ex.label, pred,
                    pred == ex.label ? "correct" : "WRONG");
        for (std::size_t l = 0; l < stats.survivors.layers(); ++l) {
            std::printf("  layer %zu: ", l);
            const std::size_t* alive = stats.survivors.rowBegin(l);
            const std::size_t* alive_end = stats.survivors.rowEnd(l);
            for (std::size_t pos = 0; pos < ex.ids.size(); ++pos) {
                const bool is_alive = alive != alive_end && *alive == pos;
                if (is_alive)
                    ++alive;
                const std::string word = task.tokenName(ex.ids[pos]);
                if (is_alive)
                    std::printf("%s ", word.c_str());
                else
                    std::printf("%.*s ", static_cast<int>(word.size()),
                                "----------------");
            }
            std::printf("\n");
        }
        // Final survivor set (after the last layer's pruning round).
        std::printf("  final:   ");
        std::size_t cursor = 0;
        for (std::size_t pos = 0; pos < ex.ids.size(); ++pos) {
            const auto& fin = stats.surviving_tokens;
            const bool is_alive = cursor < fin.size() && fin[cursor] == pos;
            if (is_alive)
                ++cursor;
            const std::string word = task.tokenName(ex.ids[pos]);
            if (is_alive)
                std::printf("%s ", word.c_str());
            else
                std::printf("%.*s ", static_cast<int>(word.size()),
                            "----------------");
        }
        std::printf("\n  kept %.0f%% of tokens; keywords attended most\n\n",
                    stats.tokens_kept_frac * 100);
    }

    PrunedRunStats mean_stats;
    const double pruned_acc =
        classifierAccuracyPruned(model, test, policy, &mean_stats);
    std::printf("pruned accuracy: %.1f%% (tokens kept on average: "
                "%.0f%%)\n",
                pruned_acc * 100, mean_stats.tokens_kept_frac * 100);
    return 0;
}
