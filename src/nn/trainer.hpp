/**
 * @file
 * Training and evaluation loops for the tiny transformer substrate:
 * classification (BERT-style) and causal language modeling (GPT-2-style),
 * with dense and SpAtten-pruned evaluation paths.
 */
#ifndef SPATTEN_NN_TRAINER_HPP
#define SPATTEN_NN_TRAINER_HPP

#include <vector>

#include "nn/transformer.hpp"

namespace spatten {

/** One classification example. */
struct ClassifyExample
{
    std::vector<std::size_t> ids;
    std::size_t label = 0;
};

/** One language-modeling example. */
struct LmExample
{
    std::vector<std::size_t> ids;
};

/**
 * Train a classifier for @p epochs passes over @p examples (shuffled
 * deterministically). @return mean loss of the final epoch.
 */
double trainClassifier(TransformerModel& model,
                       const std::vector<ClassifyExample>& examples,
                       std::size_t epochs, std::uint64_t shuffle_seed = 7);

/** Dense classification accuracy in [0, 1]. */
double classifierAccuracy(const TransformerModel& model,
                          const std::vector<ClassifyExample>& examples);

/**
 * Classification accuracy under a SpAtten pruning policy.
 * @param mean_stats optional: averaged pruning statistics.
 */
double classifierAccuracyPruned(const TransformerModel& model,
                                const std::vector<ClassifyExample>& examples,
                                const PruningPolicy& policy,
                                PrunedRunStats* mean_stats = nullptr);

/** Train a causal LM; @return mean loss of the final epoch. */
double trainLm(TransformerModel& model,
               const std::vector<LmExample>& examples, std::size_t epochs,
               std::uint64_t shuffle_seed = 7);

/** Dense mean next-token loss (perplexity = exp of this). */
double lmMeanLoss(const TransformerModel& model,
                  const std::vector<LmExample>& examples);

/** Mean next-token loss under a SpAtten pruning policy. */
double lmMeanLossPruned(const TransformerModel& model,
                        const std::vector<LmExample>& examples,
                        const PruningPolicy& policy,
                        PrunedRunStats* mean_stats = nullptr);

} // namespace spatten

#endif // SPATTEN_NN_TRAINER_HPP
