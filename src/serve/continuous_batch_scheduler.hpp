/**
 * @file
 * Iteration-level continuous-batching scheduler over a pool of simulated
 * accelerators.
 *
 * The scheduler consumes an arrival trace (workload/arrival_trace.hpp)
 * and serves it the way a production LLM endpoint does: requests arrive
 * over simulated time, are sharded onto N simulated SpAtten accelerators
 * (round-robin or least-loaded), and each accelerator runs iterations
 * that interleave prefill passes of newly admitted requests with one
 * decode step of every in-flight request — tokens leave the batch one
 * iteration at a time, and finished requests free their slot for queued
 * arrivals (continuous batching, not one-shot batches). Each request's
 * decode loop runs in a DecodeSession, so its KV working set carries the
 * cascade-pruned survivor count across steps.
 *
 * Determinism contract (pinned by tests/test_continuous_scheduler.cpp):
 * the report is a pure function of (config, trace). Host worker threads
 * only parallelize the independent per-session step simulations inside
 * one iteration; the single-threaded coordinator applies their results
 * in admission order, so every timestamp, metric, and per-request result
 * is bit-identical at any num_threads. Per-request *service* results
 * (step costs, KV trajectory, cycles, energy) depend only on
 * (config, workload, policy, seed) — never on placement — so they are
 * also bit-identical across accelerator shard counts; only the queueing
 * metrics (TTFT, goodput) respond to the pool size.
 */
#ifndef SPATTEN_SERVE_CONTINUOUS_BATCH_SCHEDULER_HPP
#define SPATTEN_SERVE_CONTINUOUS_BATCH_SCHEDULER_HPP

#include <cstdint>
#include <vector>

#include "accel/pipeline.hpp"
#include "serve/request_state.hpp"
#include "workload/arrival_trace.hpp"

namespace spatten {

/** How arriving requests are spread across the accelerator pool. */
enum class ShardPolicy
{
    /// Request i is statically pinned to accelerator i mod N.
    RoundRobin,
    /// Requests wait in one shared FIFO; the accelerator with the
    /// earliest simulated time and a free slot pulls the head (classic
    /// least-loaded / join-idle-queue dispatch, FIFO overall).
    LeastLoaded,
};

/** Scheduler configuration. */
struct ContinuousBatchConfig
{
    std::size_t num_accelerators = 1;
    /// Max concurrent sessions per accelerator iteration (the continuous
    /// batch width).
    std::size_t max_active = 8;
    ShardPolicy shard = ShardPolicy::LeastLoaded;
    /// Host threads for the per-iteration session steps; 0 = one per
    /// hardware thread. Never affects simulated results.
    std::size_t num_threads = 0;
    /// SLO for goodput accounting: a finished request counts as good
    /// when TTFT <= slo_ttft_s and its mean ITL <= slo_itl_s.
    double slo_ttft_s = 50e-3;
    double slo_itl_s = 2e-3;
};

/** Aggregated outcome of serving one trace. */
struct ServeReport
{
    std::vector<ServedRequest> requests; ///< In trace order.

    double makespan_s = 0;    ///< Last token emission time.
    double ttft_p50_s = 0;
    double ttft_p99_s = 0;
    double itl_p50_s = 0;     ///< Over all inter-token gaps of all requests.
    double itl_p99_s = 0;
    double throughput_rps = 0; ///< Finished requests per simulated second.
    double goodput_rps = 0;    ///< SLO-meeting requests per simulated second.
    std::size_t slo_met = 0;   ///< Requests that met both SLOs.
    double tokens_per_s = 0;
    std::size_t total_tokens = 0;

    std::vector<double> accel_busy_s;  ///< Busy seconds per accelerator.
    std::vector<double> accel_util;    ///< busy / makespan per accelerator.
    std::vector<std::size_t> accel_requests; ///< Requests served per accel.

    double total_cycles = 0;   ///< Sum of per-request simulated cycles.
    double total_energy_j = 0;
    double total_flops = 0;
    double dram_reduction = 1; ///< Batch-wide dense bytes / fetched bytes.
};

/** The continuous-batching scheduler. */
class ContinuousBatchScheduler
{
  public:
    explicit ContinuousBatchScheduler(
        SpAttenConfig cfg = SpAttenConfig{},
        ContinuousBatchConfig sched = ContinuousBatchConfig{});

    /**
     * Serve every request of @p trace to completion and aggregate.
     * Deterministic: a pure function of (config, trace), independent of
     * num_threads; per-request service results are also independent of
     * num_accelerators and shard policy.
     */
    ServeReport run(const std::vector<TracedRequest>& trace);

    const ContinuousBatchConfig& schedulerConfig() const { return sched_; }
    const SpAttenConfig& config() const { return cfg_; }

  private:
    SpAttenConfig cfg_;
    ContinuousBatchConfig sched_;
};

} // namespace spatten

#endif // SPATTEN_SERVE_CONTINUOUS_BATCH_SCHEDULER_HPP
