/// Ablation: the five MSB+LSB storage settings of §III-D (4+4 ... 12+4)
/// against DRAM traffic, attention accuracy, and the LSB-fetch rate at
/// different confidence thresholds — the design-choice trade-off behind
/// progressive quantization.
#include <cstdio>

#include "accel/spatten_accelerator.hpp"
#include "bench_util.hpp"
#include "core/attention_ref.hpp"
#include "tensor/ops.hpp"
#include "workload/attention_trace.hpp"
#include "workload/benchmarks.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Ablation: MSB+LSB settings",
           "DRAM traffic vs attention fidelity for the paper's five "
           "progressive-quantization settings");

    // (a) Accelerator DRAM/latency per setting on a GPT-2 benchmark.
    const auto base = gptBenchmarks().front();
    SpAttenAccelerator accel;
    std::printf("(a) accelerator impact (gpt2-small, generation stage)\n");
    std::printf("%10s %14s %14s %14s\n", "setting", "DRAM MB",
                "latency us", "vs fp32 DRAM");
    rule();
    for (const auto& setting : kPaperBitplaneSettings) {
        PruningPolicy pol = base.policy;
        pol.pq.setting = setting;
        const RunResult r = accel.run(base.workload, pol);
        std::printf("%7d+%-2d %14.1f %14.1f %13.1fx\n", setting.msb_bits,
                    setting.lsb_bits, r.dram_bytes / 1e6,
                    r.seconds * 1e6, r.dramReduction());
    }

    // (b) Functional attention error per setting.
    Prng p(7);
    const std::size_t l = 48, din = 64;
    const Tensor q = Tensor::randn({l, din}, p);
    const Tensor k = Tensor::randn({l, din}, p);
    const Tensor v = Tensor::randn({l, din}, p);
    const AttentionOutput ref = attentionForward(q, k, v, 4);
    std::printf("\n(b) attention output error vs fp32 per setting\n");
    std::printf("%10s %16s %16s\n", "setting", "mean abs err",
                "LSB refetch rate");
    rule();
    for (const auto& setting : kPaperBitplaneSettings) {
        SpAttenAttentionConfig cfg;
        cfg.num_heads = 4;
        cfg.quantize_inputs = true;
        cfg.pq.setting = setting;
        cfg.pq.max_prob_threshold = 0.1;
        const AttentionOutput got =
            SpAttenAttention(cfg).run(q, k, v, {0, 1, 2, 3});
        std::printf("%7d+%-2d %16.5f %15.1f%%\n", setting.msb_bits,
                    setting.lsb_bits, ops::meanAbsDiff(got.out, ref.out),
                    100.0 * got.stats.lsb_refetches /
                        std::max(1.0, got.stats.queries));
    }

    // (c) LSB-fetch rate vs confidence threshold (the 0.1 default).
    std::printf("\n(c) LSB refetch rate vs max-prob threshold "
                "(paper: ~5.9%% of inputs need LSBs at 0.1)\n");
    std::printf("%12s %16s\n", "threshold", "refetch rate");
    rule();
    Prng tp(9);
    const auto rows = syntheticScoreRows(3000, 64, 8.0, tp);
    for (double thr : {0.02, 0.05, 0.1, 0.2, 0.4}) {
        std::size_t flat = 0;
        for (const auto& row : rows) {
            if (maxSoftmaxProb(row) < thr)
                ++flat;
        }
        std::printf("%12.2f %15.1f%%\n", thr,
                    100.0 * static_cast<double>(flat) / static_cast<double>(rows.size()));
    }
    return 0;
}
