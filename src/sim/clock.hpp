/**
 * @file
 * Cycle bookkeeping for the SpAtten hardware model.
 *
 * The accelerator model is a resource-occupancy simulator: each hardware
 * unit is a Resource that can accept work when free and is busy for a
 * computed number of cycles. Stages on the critical path are fully
 * pipelined (Fig. 8), so the model advances per-unit "busy until" stamps
 * and the pipeline latency is the max over units — the same throughput
 * bound an RTL simulation of a fully-pipelined design converges to.
 */
#ifndef SPATTEN_SIM_CLOCK_HPP
#define SPATTEN_SIM_CLOCK_HPP

#include <cstdint>
#include <string>

namespace spatten {

/** Simulation time in cycles. */
using Cycles = std::uint64_t;

/** A clock domain: frequency plus helpers to convert to wall time. */
class ClockDomain
{
  public:
    /** @param freq_ghz clock frequency in GHz (SpAtten core: 1.0). */
    explicit ClockDomain(double freq_ghz = 1.0, std::string name = "core");

    double freqGhz() const { return freq_ghz_; }
    const std::string& name() const { return name_; }

    /** Convert cycles of this domain to nanoseconds. */
    double toNs(Cycles c) const
    {
        return static_cast<double>(c) / freq_ghz_;
    }

    /** Convert cycles to seconds. */
    double toSeconds(Cycles c) const { return toNs(c) * 1e-9; }

    /** Cycles needed to cover @p ns nanoseconds (rounded up). */
    Cycles fromNs(double ns) const;

  private:
    double freq_ghz_;
    std::string name_;
};

/**
 * A pipelined hardware resource with an initiation interval of one
 * work-item per `occupancy` cycles. Tracks when the unit next becomes
 * free and how many cycles it has ever been busy (for utilization).
 */
class Resource
{
  public:
    explicit Resource(std::string name = "unit");

    const std::string& name() const { return name_; }

    /**
     * Schedule a work item that wants to start at @p ready and occupies
     * the unit for @p occupancy cycles.
     * @return the cycle at which the item completes.
     */
    Cycles acquire(Cycles ready, Cycles occupancy);

    /** Earliest cycle at which new work could start. */
    Cycles freeAt() const { return free_at_; }

    /** Total cycles this unit has been occupied. */
    Cycles busyCycles() const { return busy_cycles_; }

    /** Utilization in [0, 1] against a total elapsed cycle count. */
    double utilization(Cycles total) const;

    void reset();

  private:
    std::string name_;
    Cycles free_at_ = 0;
    Cycles busy_cycles_ = 0;
};

} // namespace spatten

#endif // SPATTEN_SIM_CLOCK_HPP
