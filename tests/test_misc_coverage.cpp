/// Coverage for reporting/accessor surfaces not exercised elsewhere:
/// string dumps, stat keys, config tables, benchmark lookups.
#include <gtest/gtest.h>

#include "accel/e2e.hpp"
#include "accel/spatten_accelerator.hpp"
#include "baselines/platform_model.hpp"
#include "energy/energy_model.hpp"
#include "workload/benchmarks.hpp"

namespace spatten {
namespace {

TEST(MiscCoverage, EnergyReportToStringHasAllBuckets)
{
    EnergyModel em;
    ActivityCounts a;
    a.qk_macs = 1e6;
    a.pv_macs = 1e6;
    a.softmax_elems = 1e4;
    a.topk_comparisons = 1e4;
    a.fetch_requests = 1e3;
    a.sram_read_bytes = 1e5;
    a.dram_energy_pj = 1e6;
    a.cycles = 1e6;
    a.freq_ghz = 1.0;
    const std::string s = em.compute(a).toString();
    for (const char* key : {"QxK", "AttnProb x V", "Softmax", "Top-k",
                            "QKV Fetcher", "SRAM", "DRAM", "Total"}) {
        EXPECT_NE(s.find(key), std::string::npos) << key;
    }
}

TEST(MiscCoverage, ActivityCountsAdd)
{
    ActivityCounts a, b;
    a.qk_macs = 1;
    a.cycles = 10;
    b.qk_macs = 2;
    b.cycles = 5;
    b.dram_energy_pj = 7;
    a.add(b);
    EXPECT_DOUBLE_EQ(a.qk_macs, 3);
    EXPECT_DOUBLE_EQ(a.cycles, 15);
    EXPECT_DOUBLE_EQ(a.dram_energy_pj, 7);
}

TEST(MiscCoverage, RunResultStatsKeysPresent)
{
    SpAttenAccelerator accel;
    WorkloadSpec w;
    w.model = ModelSpec::bertBase();
    w.summarize_len = 64;
    const RunResult r = accel.run(w, PruningPolicy::disabled());
    for (const char* key :
         {"hbm.bytes_read", "hbm.energy_pj", "pipeline.compute_bound_ns",
          "pipeline.effective_tflops", "pipeline.dram_reduction",
          "activity.qk_macs", "sram.key_bytes_read",
          "crossbar.conflicts"}) {
        EXPECT_TRUE(r.stats.has(key)) << key;
    }
    EXPECT_NE(r.stats.toString().find("hbm.bytes_read"),
              std::string::npos);
}

TEST(MiscCoverage, AllBenchmarkNamesFindable)
{
    const auto all = paperBenchmarks();
    for (const auto& b : all) {
        const auto& found = findBenchmark(all, b.workload.name);
        EXPECT_EQ(found.workload.summarize_len, b.workload.summarize_len);
    }
}

TEST(MiscCoverage, PlatformSpecsDistinct)
{
    const auto specs = {PlatformSpec::titanXp(), PlatformSpec::xeon(),
                        PlatformSpec::jetsonNano(),
                        PlatformSpec::raspberryPi()};
    std::vector<std::string> names;
    for (const auto& s : specs) {
        EXPECT_GT(s.peak_tflops, 0.0);
        EXPECT_GT(s.mem_bw_gbs, 0.0);
        EXPECT_GT(s.dynamic_power_w, 0.0);
        names.push_back(s.name);
    }
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(MiscCoverage, E2eSharesAndTotals)
{
    SpAttenE2e e2e;
    WorkloadSpec w;
    w.model = ModelSpec::gpt2Small();
    w.summarize_len = 128;
    w.generate_len = 4;
    PruningPolicy pol = PruningPolicy::disabled();
    const E2eResult r = e2e.run(w, pol);
    EXPECT_NEAR(r.totalSeconds(), r.attention.seconds + r.fc_seconds,
                1e-12);
    EXPECT_NEAR(r.fc_seconds, r.fc_sum_seconds + r.fc_gen_seconds, 1e-12);
    EXPECT_GT(r.attnLatencyShare(), 0.0);
    EXPECT_LT(r.attnLatencyShare(), 1.0);
    EXPECT_GT(r.genAttnShare(), 0.0);
    EXPECT_GT(r.fc_dram_bytes, 0.0);
    EXPECT_GT(r.totalFlops(), r.fc_flops);
}

TEST(MiscCoverage, E2eRejectsBadBits)
{
    EXPECT_DEATH(SpAttenE2e(SpAttenConfig{}, E2eConfig{7, 0.8}),
                 "8 or 12");
}

TEST(MiscCoverage, ConfigTableScalesWithConfig)
{
    SpAttenConfig cfg;
    cfg.qk.num_multipliers = 256;
    SpAttenAccelerator accel(cfg);
    EXPECT_NE(accel.configTable().find("256"), std::string::npos);
    EXPECT_LT(accel.computeRoofTflops(), 2.0);
}

TEST(MiscCoverage, ModelSpecFactories)
{
    EXPECT_EQ(ModelSpec::bertBase().dModel(), 768u);
    EXPECT_EQ(ModelSpec::bertLarge().dModel(), 1024u);
    EXPECT_EQ(ModelSpec::gpt2Small().ffnHidden(), 3072u);
    ModelSpec m = ModelSpec::gpt2Medium();
    m.ffn_hidden_override = 512;
    EXPECT_EQ(m.ffnHidden(), 512u);
}

TEST(MiscCoverage, DisabledPolicyIsInert)
{
    const PruningPolicy p = PruningPolicy::disabled();
    EXPECT_FALSE(p.token_pruning);
    EXPECT_FALSE(p.head_pruning);
    EXPECT_FALSE(p.local_value_pruning);
    EXPECT_FALSE(p.pq.enabled);
    EXPECT_DOUBLE_EQ(p.lsb_fraction, 0.0);
}

} // namespace
} // namespace spatten
