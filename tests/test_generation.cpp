/// Tests for autoregressive generation with KV caches, on-the-fly
/// cascade pruning, and beam search.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/generation.hpp"
#include "nn/trainer.hpp"
#include "workload/synthetic_tasks.hpp"

namespace spatten {
namespace {

TinyModelConfig
lmConfig(std::size_t vocab, std::size_t max_len)
{
    TinyModelConfig mc;
    mc.vocab = vocab;
    mc.d_model = 32;
    mc.heads = 4;
    mc.layers = 3;
    mc.ffn_dim = 48;
    mc.max_len = max_len;
    mc.seed = 77;
    return mc;
}

// The KV-cache stepping path must agree with the full causal forward:
// greedy generation re-derived from repeated full forwards must match.
TEST(Generation, KvCacheMatchesFullForward)
{
    TransformerModel model(lmConfig(20, 24));
    GenerativeRunner runner(model);
    const std::vector<std::size_t> prompt{3, 1, 4, 1, 5};

    GenerateOptions opts;
    opts.max_new_tokens = 6;
    opts.beam_width = 1;
    opts.policy = PruningPolicy::disabled();
    const GenerateResult got = runner.generate(prompt, opts);
    ASSERT_EQ(got.tokens.size(), 6u);

    // Reference: repeatedly run the full model (no cache) and take the
    // argmax of the last position's next-token distribution. The full
    // path goes through lmLoss-style forward; we reuse predict-by-loss:
    std::vector<std::size_t> ctx = prompt;
    for (std::size_t step = 0; step < 6; ++step) {
        // Probe every vocabulary token: the model's next-token argmax is
        // the one minimizing the loss of (ctx + tok) at the last slot.
        // Cheaper: run lmLoss over ctx + candidate and compare the
        // last-position probability. Instead, derive logits via the
        // pruned-loss API with zero pruning on (ctx + dummy) — the
        // cleanest check is distributional: the generated token must be
        // the argmax, so appending it must give a lower (better) loss on
        // that position than appending any of a few other tokens.
        const std::size_t chosen = got.tokens[step];
        std::vector<std::size_t> with_chosen = ctx;
        with_chosen.push_back(chosen);
        const double chosen_loss =
            model.lmLoss(with_chosen) *
            static_cast<double>(with_chosen.size() - 1);
        for (std::size_t alt = 0; alt < 20; alt += 7) {
            if (alt == chosen)
                continue;
            std::vector<std::size_t> with_alt = ctx;
            with_alt.push_back(alt);
            const double alt_loss =
                model.lmLoss(with_alt) *
                static_cast<double>(with_alt.size() - 1);
            // Only the last position differs between the two sums.
            EXPECT_LE(chosen_loss, alt_loss + 1e-4)
                << "step " << step << " alt " << alt;
        }
        ctx.push_back(chosen);
    }
}

TEST(Generation, DeterministicAcrossRuns)
{
    TransformerModel model(lmConfig(16, 20));
    GenerativeRunner r1(model), r2(model);
    GenerateOptions opts;
    opts.max_new_tokens = 5;
    opts.policy = PruningPolicy::disabled();
    const auto a = r1.generate({1, 2, 3}, opts);
    const auto b = r2.generate({1, 2, 3}, opts);
    EXPECT_EQ(a.tokens, b.tokens);
    EXPECT_DOUBLE_EQ(a.logprob, b.logprob);
}

TEST(Generation, BeamSearchScoreAtLeastGreedy)
{
    TransformerModel model(lmConfig(24, 24));
    GenerativeRunner greedy_runner(model), beam_runner(model);
    GenerateOptions greedy;
    greedy.max_new_tokens = 6;
    greedy.beam_width = 1;
    greedy.policy = PruningPolicy::disabled();
    GenerateOptions beam = greedy;
    beam.beam_width = 4;
    const auto g = greedy_runner.generate({2, 4, 6}, greedy);
    const auto b = beam_runner.generate({2, 4, 6}, beam);
    EXPECT_GE(b.logprob, g.logprob - 1e-9);
}

TEST(Generation, PruningShrinksCaches)
{
    TransformerModel model(lmConfig(24, 40));
    GenerativeRunner runner(model);
    std::vector<std::size_t> prompt(24);
    for (std::size_t i = 0; i < prompt.size(); ++i)
        prompt[i] = i % 24;
    GenerateOptions opts;
    opts.max_new_tokens = 8;
    opts.policy = PruningPolicy::disabled();
    opts.policy.token_pruning = true;
    opts.policy.token_avg_ratio = 0.35;
    const auto res = runner.generate(prompt, opts);
    EXPECT_LT(res.final_keys_frac, 1.0);
    EXPECT_GT(res.final_keys_frac, 0.05);
}

TEST(Generation, HeadPruningShrinksAliveHeads)
{
    TransformerModel model(lmConfig(24, 30));
    GenerativeRunner runner(model);
    GenerateOptions opts;
    opts.max_new_tokens = 6;
    opts.policy = PruningPolicy::disabled();
    opts.policy.head_pruning = true;
    opts.policy.head_avg_ratio = 0.3;
    const auto res = runner.generate({1, 2, 3, 4, 5, 6, 7, 8}, opts);
    EXPECT_LT(res.heads_alive, 4u);
    EXPECT_GE(res.heads_alive, 1u);
}

// End-to-end: a trained copy-LM generates the payload correctly, and
// moderate KV pruning does not break the copy.
TEST(Generation, TrainedCopyTaskGeneratesPayload)
{
    CopyLmTaskConfig tc;
    tc.payload_len = 3;
    tc.filler_gap = 1;
    CopyLmTask task(tc);
    TinyModelConfig mc = lmConfig(task.vocabSize(), task.seqLen() + 2);
    mc.d_model = 32;
    mc.heads = 4;
    mc.layers = 2;
    mc.ffn_dim = 64;
    TransformerModel model(mc);
    trainLm(model, task.sample(250), 8);

    // Prompt = everything up to and including SEP; the model must then
    // emit the payload.
    const auto ex = task.sample(1).front();
    const std::size_t sep =
        task.config().num_symbols + task.config().num_fillers + 1;
    std::vector<std::size_t> prompt;
    std::vector<std::size_t> payload;
    bool after_sep = false;
    for (std::size_t id : ex.ids) {
        if (after_sep) {
            payload.push_back(id);
        } else {
            prompt.push_back(id);
            if (id == sep)
                after_sep = true;
        }
    }
    ASSERT_EQ(payload.size(), 3u);

    GenerativeRunner dense_runner(model);
    GenerateOptions dense;
    dense.max_new_tokens = payload.size();
    dense.policy = PruningPolicy::disabled();
    const auto dres = dense_runner.generate(prompt, dense);
    std::size_t dense_correct = 0;
    for (std::size_t i = 0; i < payload.size(); ++i)
        dense_correct += dres.tokens[i] == payload[i];
    EXPECT_GE(dense_correct, 2u) << "model failed to learn the copy task";

    // With moderate KV pruning the copy must be preserved (the payload
    // keys carry the importance mass).
    GenerativeRunner pruned_runner(model);
    GenerateOptions pruned = dense;
    pruned.policy.token_pruning = true;
    pruned.policy.token_avg_ratio = 0.25;
    const auto pres = pruned_runner.generate(prompt, pruned);
    std::size_t pruned_correct = 0;
    for (std::size_t i = 0; i < payload.size(); ++i)
        pruned_correct += pres.tokens[i] == payload[i];
    EXPECT_GE(pruned_correct, dense_correct - 1);
    EXPECT_LT(pres.final_keys_frac, 1.0);
}

TEST(Generation, QuantizedKvHighBitsMatchesDense)
{
    // With a wide 12+4 setting the quantized-KV generation must emit the
    // same tokens as the fp32 path.
    TransformerModel model(lmConfig(20, 24));
    GenerativeRunner dense(model), quant(model);
    GenerateOptions d;
    d.max_new_tokens = 6;
    d.policy = PruningPolicy::disabled();
    GenerateOptions q = d;
    q.policy.pq.enabled = true;
    q.policy.pq.setting = {12, 4};
    q.policy.pq.max_prob_threshold = 0.1;
    const auto rd = dense.generate({3, 1, 4, 1, 5}, d);
    const auto rq = quant.generate({3, 1, 4, 1, 5}, q);
    EXPECT_EQ(rd.tokens, rq.tokens);
}

TEST(Generation, QuantizedKvCountsRefetches)
{
    TransformerModel model(lmConfig(20, 30));
    GenerativeRunner runner(model);
    GenerateOptions opts;
    opts.max_new_tokens = 8;
    opts.policy = PruningPolicy::disabled();
    opts.policy.pq.enabled = true;
    opts.policy.pq.setting = {4, 4};
    // Force the recompute path: an untrained model has flat attention.
    opts.policy.pq.max_prob_threshold = 0.9;
    const auto r =
        runner.generate({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, opts);
    EXPECT_GT(r.lsb_refetches, 0.0);
    EXPECT_GT(r.lsb_fraction, 0.5);
    // Dominant threshold 0 -> no refetches ever.
    GenerativeRunner r2(model);
    opts.policy.pq.max_prob_threshold = 0.0;
    const auto none =
        r2.generate({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, opts);
    EXPECT_EQ(none.lsb_refetches, 0.0);
}

TEST(Generation, QuantizedKvSurvivesPruning)
{
    // kq planes must stay in sync with k/v rows through cache pruning.
    TransformerModel model(lmConfig(24, 40));
    GenerativeRunner runner(model);
    std::vector<std::size_t> prompt(20);
    for (std::size_t i = 0; i < prompt.size(); ++i)
        prompt[i] = i % 24;
    GenerateOptions opts;
    opts.max_new_tokens = 8;
    opts.policy = PruningPolicy::disabled();
    opts.policy.token_pruning = true;
    opts.policy.token_avg_ratio = 0.3;
    opts.policy.pq.enabled = true;
    opts.policy.pq.setting = {8, 4};
    const auto r = runner.generate(prompt, opts);
    EXPECT_EQ(r.tokens.size(), 8u);
    EXPECT_LT(r.final_keys_frac, 1.0);
}

TEST(Generation, RejectsEmptyPrompt)
{
    TransformerModel model(lmConfig(8, 10));
    GenerativeRunner runner(model);
    GenerateOptions opts;
    EXPECT_DEATH(runner.generate({}, opts), "empty prompt");
}

TEST(Generation, RejectsOverlongGeneration)
{
    TransformerModel model(lmConfig(8, 10));
    GenerativeRunner runner(model);
    GenerateOptions opts;
    opts.max_new_tokens = 20;
    EXPECT_DEATH(runner.generate({1, 2}, opts), "max_len");
}

} // namespace
} // namespace spatten
