/// Regenerates Fig. 2: end-to-end GPT-2 latency breakdown (attention vs
/// FC) on the baseline platforms, and the attention-internal breakdown
/// showing matmul is a minority of attention latency.
#include <cstdio>

#include "baselines/platform_model.hpp"
#include "bench_util.hpp"
#include "workload/benchmarks.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Fig. 2",
           "GPT-2 latency breakdown on baseline platforms "
           "(attention share of end-to-end; matmul share of attention)");

    const auto b = gptBenchmarks().front(); // gpt2-small
    std::printf("%-18s %16s %16s %16s\n", "platform", "attention ms",
                "FC ms", "attention share");
    rule();
    struct P
    {
        PlatformSpec spec;
        const char* paper_share;
    };
    const P plats[] = {
        {PlatformSpec::titanXp(), "~50%"},
        {PlatformSpec::xeon(), "~61%"},
        {PlatformSpec::jetsonNano(), "~49%"},
        {PlatformSpec::raspberryPi(), "~50%"},
    };
    for (const auto& p : plats) {
        const PlatformModel pm(p.spec);
        const double attn = pm.attention(b.workload).seconds * 1e3;
        const double fc = pm.fc(b.workload).seconds * 1e3;
        std::printf("%-18s %16.1f %16.1f %14.1f%%  (paper %s)\n",
                    p.spec.name.c_str(), attn, fc,
                    100.0 * attn / (attn + fc), p.paper_share);
    }
    rule();
    std::printf("Attention-internal breakdown on TITAN Xp (modeled via "
                "matmul_fraction):\n");
    const auto gpu = PlatformSpec::titanXp();
    std::printf("  matmul (QxK + probxV): %.0f%%   data movement "
                "(split/concat/reshape/transpose + softmax): %.0f%%\n",
                100.0 * gpu.matmul_fraction,
                100.0 * (1.0 - gpu.matmul_fraction));
    std::printf("Paper: matmul only ~27%% of attention latency; data "
                "movement ~73%%.\n");
    return 0;
}
