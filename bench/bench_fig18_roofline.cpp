/// Regenerates Fig. 18: roofline analysis of SpAtten vs TITAN Xp on BERT
/// (computation-bounded) and GPT-2 (memory-bounded) workloads.
#include <cstdio>

#include "accel/spatten_accelerator.hpp"
#include "baselines/platform_model.hpp"
#include "bench_util.hpp"
#include "workload/benchmarks.hpp"

int
main()
{
    using namespace spatten;
    using namespace spatten::bench;
    banner("Fig. 18",
           "Roofline: operation intensity vs achieved performance");

    SpAttenAccelerator accel;
    std::printf("SpAtten roofs: computation %.2f TFLOPS, bandwidth "
                "%.0f GB/s (slope 0.512 TFLOPS per op/B)\n\n",
                accel.computeRoofTflops(), accel.bandwidthRoofGBs());

    std::printf("%-26s %14s %14s %14s\n", "point", "intensity op/B",
                "TFLOPS", "bound");
    rule();

    const auto report = [&](const char* name, double flops, double bytes,
                            double secs) {
        const double inten = flops / bytes;
        const double tflops = flops / secs * 1e-12;
        const double roof_at =
            std::min(accel.computeRoofTflops(), 0.512 * inten);
        std::printf("%-26s %14.2f %14.3f %14s\n", name, inten, tflops,
                    tflops > 0.8 * roof_at ? "near roof" : "below roof");
    };

    // BERT average (computation-bounded) and GPT-2 average
    // (memory-bounded), SpAtten and GPU points.
    double b_fl = 0, b_by = 0, b_s = 0, g_fl = 0, g_by = 0, g_s = 0;
    double bg_s = 0, gg_s = 0;
    const PlatformModel gpu(PlatformSpec::titanXp());
    for (const auto& b : paperBenchmarks()) {
        const RunResult r = accel.run(b.workload, b.policy);
        const PlatformResult pr = gpu.attention(b.workload);
        if (b.generative) {
            g_fl += r.attention_flops;
            g_by += r.dram_bytes;
            g_s += r.seconds;
            gg_s += pr.seconds;
        } else {
            b_fl += r.attention_flops;
            b_by += r.dram_bytes;
            b_s += r.seconds;
            bg_s += pr.seconds;
        }
    }
    report("SpAtten / BERT", b_fl, b_by, b_s);
    report("SpAtten / GPT-2", g_fl, g_by, g_s);
    report("TITAN Xp / BERT", b_fl, b_by, bg_s);
    report("TITAN Xp / GPT-2", g_fl, g_by, gg_s);
    rule();
    std::printf("Paper: SpAtten 1.61 TFLOPS on BERT (near 2 TFLOPS roof), "
                "0.43 TFLOPS on GPT-2 (near bandwidth roof);\n"
                "GPU 0.02 / 0.01 TFLOPS, far below its roofs.\n");
    return 0;
}
