/**
 * @file
 * Concurrent batch serving on top of the stage-graph pipeline.
 *
 * BatchRunner simulates a vector of independent requests (workload +
 * policy + seed) across a std::thread pool. Each worker owns a private
 * SpAttenPipeline instance, and every request's PRNG state derives only
 * from its own seed and position, so an N-thread run produces
 * bit-identical per-request RunResults to a single-threaded run — the
 * thread count changes wall-clock time, never simulated results.
 *
 * The aggregated BatchResult reports the latency distribution (p50/p99),
 * aggregate effective TFLOPS, and the batch-wide DRAM reduction factor —
 * the serving-level counterparts of the per-request Fig. 14 metrics.
 */
#ifndef SPATTEN_SERVE_BATCH_RUNNER_HPP
#define SPATTEN_SERVE_BATCH_RUNNER_HPP

#include <cstdint>
#include <vector>

#include "accel/pipeline.hpp"

namespace spatten {

/** One queued inference request. */
struct BatchRequest
{
    WorkloadSpec workload;
    PruningPolicy policy;
    /// Per-request PRNG seed; combined with the request index so two
    /// identical requests still draw independent streams.
    std::uint64_t seed = kDefaultRequestSeed;
};

/** Configuration of the batch runner. */
struct BatchRunnerConfig
{
    /// Worker threads; 0 (the default, matching the facade's runBatch)
    /// means one per hardware thread.
    std::size_t num_threads = 0;
};

/** Aggregated outcome of one batch. */
struct BatchResult
{
    std::vector<RunResult> results; ///< Per-request, in request order.
    double p50_seconds = 0;         ///< Median simulated request latency.
    double p99_seconds = 0;         ///< Tail simulated request latency.
    double total_seconds = 0;       ///< Sum of simulated request latencies.
    /// Simulated batch makespan under concurrent service: the runner
    /// models independent requests starting together on their own
    /// accelerator, so the batch completes when the slowest request does.
    double makespan_seconds = 0;
    double total_flops = 0;
    /// Aggregate effective TFLOPS of the batch: executed attention FLOPs
    /// over the back-to-back simulated service time of one accelerator.
    double aggregate_tflops = 0;
    /// Batch-wide DRAM reduction: dense fp32 bytes over fetched bytes.
    double dram_reduction = 1.0;
    double wall_seconds = 0;        ///< Host wall-clock of the simulation.

    /**
     * Simulated requests served per simulated second of the batch
     * makespan. Concurrent requests overlap in time, so dividing by the
     * *sum* of per-request latencies (the old definition) under-reported
     * throughput by up to the batch width; the makespan is the time the
     * batch actually occupies the platform.
     */
    double throughputRps() const
    {
        return makespan_seconds > 0
                   ? static_cast<double>(results.size()) /
                         makespan_seconds
                   : 0.0;
    }
};

/** The concurrent batch runner. */
class BatchRunner
{
  public:
    explicit BatchRunner(SpAttenConfig cfg = SpAttenConfig{},
                         BatchRunnerConfig runner = BatchRunnerConfig{});

    /**
     * Simulate every request of @p batch and aggregate. Deterministic:
     * the result is a pure function of (config, batch), independent of
     * num_threads and scheduling.
     */
    BatchResult run(const std::vector<BatchRequest>& batch);

    const BatchRunnerConfig& runnerConfig() const { return runner_; }
    const SpAttenConfig& config() const { return cfg_; }

  private:
    SpAttenConfig cfg_;
    BatchRunnerConfig runner_;
};

} // namespace spatten

#endif // SPATTEN_SERVE_BATCH_RUNNER_HPP
