/// Tests for the simulation substrate: clock domains, resources, FIFOs
/// and the stats registry.
#include <gtest/gtest.h>

#include "sim/clock.hpp"
#include "sim/fifo.hpp"
#include "sim/stats.hpp"

namespace spatten {
namespace {

TEST(ClockDomain, Conversions)
{
    ClockDomain clk(1.0);
    EXPECT_DOUBLE_EQ(clk.toNs(1000), 1000.0);
    EXPECT_DOUBLE_EQ(clk.toSeconds(1000000000ULL), 1.0);
    EXPECT_EQ(clk.fromNs(10.0), 10u);

    ClockDomain hbm(2.0, "hbm");
    EXPECT_DOUBLE_EQ(hbm.toNs(1000), 500.0);
    EXPECT_EQ(hbm.fromNs(10.0), 20u);
}

TEST(ClockDomain, FromNsRoundsUp)
{
    ClockDomain clk(1.0);
    EXPECT_EQ(clk.fromNs(0.1), 1u);
    EXPECT_EQ(clk.fromNs(0.0), 0u);
}

TEST(Resource, SerializesWork)
{
    Resource r("mult");
    EXPECT_EQ(r.acquire(0, 10), 10u);
    // Second item ready at 5 must wait until 10.
    EXPECT_EQ(r.acquire(5, 10), 20u);
    // Item arriving after the unit is free starts immediately.
    EXPECT_EQ(r.acquire(100, 5), 105u);
    EXPECT_EQ(r.busyCycles(), 25u);
}

TEST(Resource, Utilization)
{
    Resource r;
    r.acquire(0, 50);
    EXPECT_DOUBLE_EQ(r.utilization(100), 0.5);
    EXPECT_DOUBLE_EQ(r.utilization(0), 0.0);
}

TEST(Resource, ResetClears)
{
    Resource r;
    r.acquire(0, 10);
    r.reset();
    EXPECT_EQ(r.freeAt(), 0u);
    EXPECT_EQ(r.busyCycles(), 0u);
}

TEST(Fifo, FifoOrder)
{
    Fifo<int> f(4, "t");
    f.push(1);
    f.push(2);
    f.push(3);
    EXPECT_EQ(f.pop(), 1);
    EXPECT_EQ(f.pop(), 2);
    EXPECT_EQ(f.pop(), 3);
    EXPECT_TRUE(f.empty());
}

TEST(Fifo, BackpressureWhenFull)
{
    Fifo<int> f(2);
    EXPECT_TRUE(f.tryPush(1));
    EXPECT_TRUE(f.tryPush(2));
    EXPECT_TRUE(f.full());
    EXPECT_FALSE(f.tryPush(3));
    EXPECT_EQ(f.rejectedPushes(), 1u);
    f.pop();
    EXPECT_TRUE(f.tryPush(3));
}

TEST(Fifo, PeakOccupancyTracked)
{
    Fifo<int> f(8);
    for (int i = 0; i < 5; ++i)
        f.push(i);
    for (int i = 0; i < 5; ++i)
        f.pop();
    f.push(42);
    EXPECT_EQ(f.peakOccupancy(), 5u);
    EXPECT_EQ(f.totalPushes(), 6u);
}

TEST(Fifo, FrontDoesNotPop)
{
    Fifo<int> f(2);
    f.push(7);
    EXPECT_EQ(f.front(), 7);
    EXPECT_EQ(f.size(), 1u);
}

TEST(StatSet, AddAndGet)
{
    StatSet s;
    s.add("x", 1.0);
    s.add("x", 2.0);
    EXPECT_DOUBLE_EQ(s.get("x"), 3.0);
    EXPECT_DOUBLE_EQ(s.get("missing"), 0.0);
    EXPECT_TRUE(s.has("x"));
    EXPECT_FALSE(s.has("missing"));
}

TEST(StatSet, SetOverwrites)
{
    StatSet s;
    s.add("x", 5.0);
    s.set("x", 1.0);
    EXPECT_DOUBLE_EQ(s.get("x"), 1.0);
}

TEST(StatSet, MergeSums)
{
    StatSet a, b;
    a.add("x", 1.0);
    b.add("x", 2.0);
    b.add("y", 3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 3.0);
}

TEST(StatSet, ToStringContainsNames)
{
    StatSet s;
    s.add("alpha", 1.0);
    const std::string out = s.toString();
    EXPECT_NE(out.find("alpha"), std::string::npos);
}

} // namespace
} // namespace spatten
