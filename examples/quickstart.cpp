/// Quickstart: simulate a GPT-2 generation workload on the SpAtten
/// accelerator with the paper's pruning + progressive-quantization
/// policy, and compare against a dense run and a GPU baseline.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/example_quickstart
#include <cstdio>
#include <string>

#include "accel/spatten_accelerator.hpp"
#include "baselines/platform_model.hpp"
#include "serve/batch_runner.hpp"

int
main()
{
    using namespace spatten;

    // 1. Describe the workload: GPT-2-Small generating 32 tokens from a
    //    992-token context (the paper's GPT-2 setting).
    WorkloadSpec workload;
    workload.name = "quickstart-gpt2";
    workload.model = ModelSpec::gpt2Small();
    workload.summarize_len = 992;
    workload.generate_len = 32;
    workload.skip_summarization = true; // measure the generation stage

    // 2. Describe the SpAtten policy: cascade token + head pruning,
    //    local value pruning, and 8+4-bit progressive quantization.
    PruningPolicy policy;
    policy.token_avg_ratio = 0.22;
    policy.head_avg_ratio = 0.08;
    policy.local_v_ratio = 0.35;
    policy.pq.enabled = true;
    policy.pq.setting = {8, 4};
    policy.pq.max_prob_threshold = 0.1;
    policy.lsb_fraction = 0.059;

    // 3. Run on the Table I accelerator configuration.
    SpAttenAccelerator accel;
    std::printf("SpAtten configuration:\n%s\n",
                accel.configTable().c_str());

    const RunResult pruned = accel.run(workload, policy);
    const RunResult dense = accel.run(workload, PruningPolicy::disabled());

    std::printf("%-28s %14s %14s\n", "", "dense", "SpAtten policy");
    std::printf("%-28s %11.3f ms %11.3f ms\n", "latency",
                dense.seconds * 1e3, pruned.seconds * 1e3);
    std::printf("%-28s %11.1f MB %11.1f MB\n", "DRAM traffic",
                dense.dram_bytes / 1e6, pruned.dram_bytes / 1e6);
    std::printf("%-28s %11.2f mJ %11.2f mJ\n", "energy",
                dense.energy.totalJ() * 1e3, pruned.energy.totalJ() * 1e3);
    std::printf("%-28s %14s %13.1fx\n", "DRAM reduction vs fp32", "-",
                pruned.dramReduction());
    std::printf("%-28s %14s %13.1fx\n", "computation reduction", "-",
                pruned.computeReduction());

    // 4. Compare against a TITAN Xp running dense fp32 attention.
    const PlatformModel gpu(PlatformSpec::titanXp());
    const PlatformResult gr = gpu.attention(workload);
    std::printf("\nTITAN Xp baseline: %.1f ms -> SpAtten speedup %.0fx, "
                "energy saving %.0fx\n", gr.seconds * 1e3,
                gr.seconds / pruned.seconds,
                gr.energy_j / pruned.energy.totalJ());

    // 5. Per-stage breakdown, landed in the stats by the stage graph.
    std::printf("\nPer-stage occupancy (stage graph stats):\n");
    for (const char* stage :
         {"fetcher", "qk", "softmax", "topk", "zero_eliminator", "pv"}) {
        const std::string key =
            std::string("stage.") + stage + ".busy_cycles";
        std::printf("  %-18s %12.0f cycles\n", stage,
                    pruned.stats.get(key));
    }

    // 6. Serve a small batch concurrently: results are bit-identical to
    //    a single-threaded run, only the wall clock changes.
    const BatchResult batch = accel.runBatch(
        {{workload, policy, 1}, {workload, policy, 2},
         {workload, PruningPolicy::disabled(), 3}},
        /*num_threads=*/2);
    std::printf("\nBatch of %zu: p50 %.3f ms, p99 %.3f ms, "
                "%.2f aggregate TFLOPS, %.1fx DRAM reduction\n",
                batch.results.size(), batch.p50_seconds * 1e3,
                batch.p99_seconds * 1e3, batch.aggregate_tflops,
                batch.dram_reduction);
    return 0;
}
