// Fixture: clean twin of trigger_no_unordered_iter. Same accounting,
// but the unordered_map is only key-addressed; iteration for totals
// walks a deterministically ordered vector. Also proves the rule stays
// quiet in accounting files that merely *declare* unordered containers.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

struct KvPool; // marks this file as touching accounting state

struct Directory {
    std::unordered_map<std::uint64_t, std::uint64_t> blocks_by_hash;
    std::vector<std::uint64_t> block_counts; // insertion-ordered

    std::uint64_t lookup(std::uint64_t h) const
    {
        const auto it = blocks_by_hash.find(h);
        return it == blocks_by_hash.end() ? 0 : it->second;
    }

    std::uint64_t totalBlocks() const
    {
        std::uint64_t total = 0;
        for (const std::uint64_t c : block_counts)
            total += c;
        return total;
    }
};

} // namespace fixture
