/**
 * @file
 * Cascade token pruning, cascade head pruning and local value pruning
 * (§III-A/B/C and Algorithm 2).
 *
 * "Cascade" means monotone: once a token or head is pruned it never
 * reappears in a later layer — each layer selects its survivors from the
 * previous layer's survivors. Selection uses top-k over the cumulative
 * importance scores; the functional top-k here mirrors the hardware
 * engine's semantics (ties resolved in favour of earlier positions, output
 * preserves the original input order).
 */
#ifndef SPATTEN_CORE_PRUNING_HPP
#define SPATTEN_CORE_PRUNING_HPP

#include <cstddef>
#include <vector>

#include "core/importance.hpp"
#include "sim/survivor_index.hpp"

namespace spatten {

/**
 * Indices of the k largest values of @p scores, returned in ascending
 * index order (the hardware zero-eliminator keeps the original order).
 * Ties are broken toward smaller indices, matching the quick-select
 * engine's num_eq_k_th_largest handling.
 */
std::vector<std::size_t> topkKeepOrder(const std::vector<float>& scores,
                                       std::size_t k);

/**
 * Tracks the set of surviving global token ids for one sentence and
 * applies cascade pruning rounds against a TokenImportanceAccumulator.
 */
class CascadeTokenPruner
{
  public:
    /** Start with all of @p num_tokens alive. */
    explicit CascadeTokenPruner(std::size_t num_tokens = 0);

    void reset(std::size_t num_tokens);

    /**
     * Prune so that only ceil(alive * (1 - ratio)) tokens survive, chosen
     * by descending cumulative importance. No-op when ratio <= 0.
     *
     * @return surviving global token ids (ascending).
     */
    const std::vector<std::size_t>&
    pruneToRatio(const TokenImportanceAccumulator& acc, double ratio);

    /** Keep exactly @p k tokens (k clamped to alive count). */
    const std::vector<std::size_t>&
    pruneToCount(const TokenImportanceAccumulator& acc, std::size_t k);

    /** A newly generated token joins the alive set (generation stage). */
    void addToken(std::size_t global_id);

    const std::vector<std::size_t>& alive() const { return alive_; }
    std::size_t aliveCount() const { return alive_.size(); }

    /** Append the current alive set as one CSR row of @p index — the
     *  functional path's per-layer survivor export (nn/transformer
     *  records one row per block, giving the whole run's pruning
     *  structure as two flat arrays). */
    void appendTo(SurvivorIndex& index) const
    {
        index.appendLayer(alive_);
    }

  private:
    std::vector<std::size_t> alive_;
};

/** Tracks surviving head ids across layers (cascade head pruning). */
class CascadeHeadPruner
{
  public:
    explicit CascadeHeadPruner(std::size_t num_heads = 0);

    void reset(std::size_t num_heads);

    /** Prune to ceil(alive * (1 - ratio)) heads by cumulative importance. */
    const std::vector<std::size_t>&
    pruneToRatio(const HeadImportanceAccumulator& acc, double ratio);

    const std::vector<std::size_t>& alive() const { return alive_; }
    std::size_t aliveCount() const { return alive_.size(); }

  private:
    std::vector<std::size_t> alive_;
};

/**
 * Local value pruning (§III-C): given one query's attention probability
 * row, keep the positions with the largest probabilities; the dropped V
 * vectors are never fetched for the prob x V product of this head only.
 *
 * @param prob_row attention probabilities of the current query.
 * @param ratio    fraction of V vectors to prune (0 disables).
 * @return kept column indices in ascending order.
 */
std::vector<std::size_t> localValuePrune(const std::vector<float>& prob_row,
                                         double ratio);

} // namespace spatten

#endif // SPATTEN_CORE_PRUNING_HPP
