#include "serve/batch_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/logging.hpp"
#include "common/prng.hpp"
#include "sim/stats.hpp"

namespace spatten {

namespace {

/** Mix a request's seed with its queue position (splitmix64 finalizer). */
std::uint64_t
mixSeed(std::uint64_t seed, std::size_t index)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL *
                                 (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

BatchRunner::BatchRunner(SpAttenConfig cfg, BatchRunnerConfig runner)
    : cfg_(cfg), runner_(runner)
{
    if (runner_.num_threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        runner_.num_threads = hw > 0 ? hw : 1;
    }
}

BatchResult
BatchRunner::run(const std::vector<BatchRequest>& batch)
{
    BatchResult out;
    out.results.resize(batch.size());
    if (batch.empty())
        return out;

    // determinism-ok(no-wallclock): host-side wall_seconds measurement
    // only; never feeds simulated state (pinned by
    // BatchRunner.WallClockNeverLeaksIntoSimulatedAggregates).
    const auto wall_start = std::chrono::steady_clock::now();
    const std::size_t workers =
        std::min<std::size_t>(runner_.num_threads, batch.size());

    // Work queue: an atomic cursor over the request vector. Each worker
    // owns a private pipeline, and request i's outcome depends only on
    // (config, batch[i], i) — never on which worker claims it — so the
    // batch simulates bit-identically at any thread count.
    std::atomic<std::size_t> next{0};
    const auto work = [&]() {
        SpAttenPipeline pipeline(cfg_);
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= batch.size())
                return;
            out.results[i] =
                pipeline.run(batch[i].workload, batch[i].policy,
                             mixSeed(batch[i].seed, i));
        }
    };
    if (workers <= 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w)
            pool.emplace_back(work);
        for (auto& t : pool)
            t.join();
    }
    out.wall_seconds =
        // determinism-ok(no-wallclock): end of the host-side interval
        // started above; reported as wall_seconds, outside the model.
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    // ---- Aggregation ----
    double dram_bytes = 0, dram_bytes_dense = 0;
    std::vector<double> lat;
    lat.reserve(out.results.size());
    for (const auto& r : out.results) {
        out.total_seconds += r.seconds;
        out.makespan_seconds = std::max(out.makespan_seconds, r.seconds);
        out.total_flops += r.attention_flops;
        dram_bytes += r.dram_bytes;
        dram_bytes_dense += r.dram_bytes_dense;
        lat.push_back(r.seconds);
    }
    std::sort(lat.begin(), lat.end());
    out.p50_seconds = sortedQuantile(lat, 0.50);
    out.p99_seconds = sortedQuantile(lat, 0.99);
    out.aggregate_tflops = out.total_seconds > 0
                               ? out.total_flops / out.total_seconds * 1e-12
                               : 0.0;
    out.dram_reduction =
        dram_bytes > 0 ? dram_bytes_dense / dram_bytes : 1.0;
    return out;
}

} // namespace spatten
