/// Property tests for the paged ref-counted KV block allocator
/// (serve/kv_pool.hpp): shared-prefix mapping charges shared blocks
/// once, refcounts never underflow, hash collisions fall back to
/// private blocks, copy-on-write keeps the cached originals intact,
/// cold-cache eviction is LRU and never lets usage exceed the budget,
/// release/double-release and byte-size overflow assert instead of
/// silently corrupting the ledger.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "common/prng.hpp"
#include "serve/kv_pool.hpp"

namespace spatten {
namespace {

/// 4-layer, 4-head, 64-dim model: kvBytesPerToken = 2*4*4*64*2 = 4096,
/// so a 16-token block is 64 KiB — easy mental math for the budgets.
ModelSpec
tinyModel()
{
    return {"tiny", 4, 4, 64, 4};
}

constexpr std::uint64_t kBlockBytes = 16ull * 4096; // 16-token block.

/// Distinct deterministic prompt content per (stream, length).
std::vector<std::uint64_t>
prompt(std::uint64_t stream, std::size_t tokens)
{
    std::vector<std::uint64_t> p;
    p.reserve(tokens);
    for (std::size_t i = 0; i < tokens; ++i)
        p.push_back(stream * 0x100000001ULL + i);
    return p;
}

TEST(KvPoolPrefix, SharedBlocksChargedOnceAndRefCounted)
{
    const ModelSpec m = tinyModel();
    KvPool pool({0, 16});
    const auto a = prompt(1, 64); // 4 complete blocks.

    const auto r0 = pool.tryReservePrefix(0, m, a);
    ASSERT_TRUE(r0.ok);
    EXPECT_EQ(r0.cached_tokens, 0u) << "cold cache: nothing to map";
    EXPECT_EQ(pool.usedBytes(), 4 * kBlockBytes);
    EXPECT_EQ(pool.sharedBlockRefs(0),
              (std::vector<std::uint32_t>{1, 1, 1, 1}));

    const auto r1 = pool.tryReservePrefix(1, m, a);
    ASSERT_TRUE(r1.ok);
    EXPECT_EQ(r1.cached_tokens, 64u);
    EXPECT_EQ(r1.shared_bytes, 4 * kBlockBytes);
    EXPECT_EQ(pool.usedBytes(), 4 * kBlockBytes)
        << "a full prefix hit charges no new bytes";
    EXPECT_EQ(pool.sharedBlockRefs(0),
              (std::vector<std::uint32_t>{2, 2, 2, 2}));

    pool.release(0);
    EXPECT_EQ(pool.sharedBlockRefs(1),
              (std::vector<std::uint32_t>{1, 1, 1, 1}));
    EXPECT_EQ(pool.usedBytes(), 4 * kBlockBytes);
    pool.release(1);
    // Last holder gone: blocks stay resident as reclaimable cold cache.
    EXPECT_EQ(pool.usedBytes(), 4 * kBlockBytes);
    EXPECT_EQ(pool.coldBytes(), 4 * kBlockBytes);
    EXPECT_EQ(pool.residentRequests(), 0u);
}

TEST(KvPoolPrefix, PartialTailBlockStaysPrivate)
{
    const ModelSpec m = tinyModel();
    KvPool pool({0, 16});
    const auto a = prompt(2, 40); // 2 complete blocks + 8-token tail.

    ASSERT_TRUE(pool.tryReservePrefix(0, m, a).ok);
    EXPECT_EQ(pool.usedBytes(), 3 * kBlockBytes);
    EXPECT_EQ(pool.cachedBlocks(), 2u) << "only complete blocks cached";

    const auto r1 = pool.tryReservePrefix(1, m, a);
    ASSERT_TRUE(r1.ok);
    EXPECT_EQ(r1.cached_tokens, 32u) << "tail recomputed privately";
    EXPECT_EQ(pool.usedBytes(), 4 * kBlockBytes)
        << "shared 2 + two private tails";
    pool.release(0);
    pool.release(1);
}

TEST(KvPoolPrefix, ColdCacheHitThenLruEviction)
{
    const ModelSpec m = tinyModel();
    KvPool pool({6 * kBlockBytes, 16});
    const auto a = prompt(3, 64); // 4 blocks.

    ASSERT_TRUE(pool.tryReservePrefix(0, m, a).ok);
    pool.release(0);
    EXPECT_EQ(pool.coldBytes(), 4 * kBlockBytes);

    // A cold hit revives the blocks instead of re-prefilling.
    const auto r1 = pool.tryReservePrefix(1, m, a);
    ASSERT_TRUE(r1.ok);
    EXPECT_EQ(r1.cached_tokens, 64u);
    EXPECT_EQ(pool.coldBytes(), 0u);
    pool.release(1);

    // A 6-block private reservation needs the cold blocks' bytes:
    // they are evicted (LRU) rather than blocking the admission.
    EXPECT_TRUE(pool.tryReserve(2, m, 96));
    EXPECT_EQ(pool.usedBytes(), 6 * kBlockBytes);
    EXPECT_EQ(pool.evictedBlocks(), 4u);
    EXPECT_EQ(pool.cachedBlocks(), 0u);
    // The prefix is gone from the cache: a re-reservation is cold.
    pool.release(2);
    const auto r3 = pool.tryReservePrefix(3, m, a);
    ASSERT_TRUE(r3.ok);
    EXPECT_EQ(r3.cached_tokens, 0u);
    pool.release(3);
}

TEST(KvPoolPrefix, HashCollisionsFallBackToPrivateBlocks)
{
    const ModelSpec m = tinyModel();
    // A 1-bit chain hash: at most two distinct index keys can ever
    // exist, so among any three distinct single-block prompts at
    // least one collides at registration and must fall back private.
    KvPool pool({0, 16, 2, 1});
    std::size_t id = 0;
    std::size_t fallbacks = 0;
    for (std::uint64_t stream = 10; stream < 13; ++stream) {
        const auto p = prompt(stream, 16);
        const std::size_t cached_before = pool.cachedBlocks();
        const auto r = pool.tryReservePrefix(id++, m, p);
        ASSERT_TRUE(r.ok);
        EXPECT_EQ(r.cached_tokens, 0u)
            << "distinct content must never map cached blocks, even "
               "under a colliding chain hash";
        if (pool.cachedBlocks() == cached_before)
            ++fallbacks; // Key occupied: block stayed anonymous.
    }
    EXPECT_GE(fallbacks, 1u) << "pigeonhole: 3 prompts, 2 hash keys";
    EXPECT_LE(pool.cachedBlocks(), 2u);
    // Every reservation is fully served regardless of the collisions.
    EXPECT_EQ(pool.usedBytes(), 3 * kBlockBytes);
    for (std::size_t i = 0; i < id; ++i)
        pool.release(i);
}

TEST(KvPoolPrefix, CopyOnWriteLeavesCachedOriginalsIntact)
{
    const ModelSpec m = tinyModel();
    KvPool pool({0, 16});
    const auto a = prompt(4, 64); // 4 blocks.

    ASSERT_TRUE(pool.tryReservePrefix(0, m, a).ok);
    ASSERT_TRUE(pool.tryReservePrefix(1, m, a).ok);
    EXPECT_EQ(pool.usedBytes(), 4 * kBlockBytes);

    // Cascade pruning shrinks request 1 to 40 tokens: its content
    // diverges from the cached prefix, so the 3 still-needed blocks
    // are copied private and the references dropped.
    EXPECT_TRUE(pool.tryResize(1, m, 40));
    EXPECT_EQ(pool.cowCopiedBlocks(), 3u);
    EXPECT_TRUE(pool.sharedBlockRefs(1).empty());
    EXPECT_EQ(pool.sharedBlockRefs(0),
              (std::vector<std::uint32_t>{1, 1, 1, 1}));
    EXPECT_EQ(pool.usedBytes(), 7 * kBlockBytes)
        << "4 shared originals + 3 private copies";

    // The originals remain matchable by a fresh admission.
    const auto r2 = pool.tryReservePrefix(2, m, a);
    ASSERT_TRUE(r2.ok);
    EXPECT_EQ(r2.cached_tokens, 64u);
    pool.release(0);
    pool.release(1);
    pool.release(2);
}

TEST(KvPoolPrefix, CopyOnWriteUnderPressureFailsCleanlyThenSucceeds)
{
    const ModelSpec m = tinyModel();
    KvPool pool({5 * kBlockBytes, 16});
    const auto a = prompt(5, 64); // 4 blocks.

    ASSERT_TRUE(pool.tryReservePrefix(0, m, a).ok);
    ASSERT_TRUE(pool.tryReservePrefix(1, m, a).ok);

    // Request 0 still references every shared block, so the 3 COW
    // copies cannot fit a 5-block budget: the resize must fail and
    // roll the references back untouched.
    EXPECT_FALSE(pool.tryResize(1, m, 48));
    EXPECT_EQ(pool.sharedBlockRefs(1),
              (std::vector<std::uint32_t>{2, 2, 2, 2}));
    EXPECT_EQ(pool.usedBytes(), 4 * kBlockBytes);

    // Once request 0 leaves, the dereferenced originals go cold and
    // the same copy-on-write succeeds by reclaiming them.
    pool.release(0);
    EXPECT_TRUE(pool.tryResize(1, m, 48));
    EXPECT_EQ(pool.cowCopiedBlocks(), 3u);
    EXPECT_LE(pool.usedBytes(), 5 * kBlockBytes);
    pool.release(1);
}

TEST(KvPoolPrefix, GrowthAfterPrefixKeepsPrefixShared)
{
    const ModelSpec m = tinyModel();
    KvPool pool({0, 16});
    const auto a = prompt(6, 64);

    ASSERT_TRUE(pool.tryReservePrefix(0, m, a).ok);
    ASSERT_TRUE(pool.tryReservePrefix(1, m, a).ok);
    // Decode appends tokens: append-only growth never diverges.
    EXPECT_TRUE(pool.tryResize(1, m, 80));
    EXPECT_EQ(pool.cowCopiedBlocks(), 0u);
    EXPECT_EQ(pool.sharedBlockRefs(1),
              (std::vector<std::uint32_t>{2, 2, 2, 2}));
    EXPECT_EQ(pool.usedBytes(), 5 * kBlockBytes);
    pool.release(0);
    pool.release(1);
}

TEST(KvPoolPrefix, SubBlockPromptIsFullyPrivate)
{
    const ModelSpec m = tinyModel();
    KvPool pool({0, 16});
    const auto a = prompt(7, 9); // Shorter than one block.
    const auto r0 = pool.tryReservePrefix(0, m, a);
    ASSERT_TRUE(r0.ok);
    EXPECT_EQ(r0.cached_tokens, 0u);
    EXPECT_EQ(pool.cachedBlocks(), 0u);
    const auto r1 = pool.tryReservePrefix(1, m, a);
    ASSERT_TRUE(r1.ok);
    EXPECT_EQ(r1.cached_tokens, 0u) << "no complete block to share";
    pool.release(0);
    pool.release(1);
}

TEST(KvPoolPrefix, RandomOpsNeverUnderflowOrExceedBudget)
{
    const ModelSpec m = tinyModel();
    const std::uint64_t cap = 24 * kBlockBytes;
    KvPool pool({cap, 16});
    Prng prng(0x5eedb10c);
    // Four recurring prompt contents drive real sharing; per-id state
    // tracks what a correct ledger must still hold.
    std::vector<bool> held(8, false);
    std::vector<std::size_t> tokens(8, 0);
    for (int op = 0; op < 4000; ++op) {
        const std::size_t id = prng.below(8);
        if (!held[id]) {
            const auto p =
                prompt(100 + prng.below(4), 16 + prng.below(120));
            if (pool.tryReservePrefix(id, m, p).ok) {
                held[id] = true;
                tokens[id] = p.size();
            }
        } else if (prng.chance(0.3)) {
            pool.release(id);
            held[id] = false;
        } else {
            // Mix growth (decode) and shrink (pruning divergence).
            const std::size_t target =
                prng.chance(0.5) ? tokens[id] + prng.below(24)
                                 : prng.below(tokens[id] + 1);
            if (pool.tryResize(id, m, target))
                tokens[id] = target;
        }
        // The ledger invariants a refcount underflow or double charge
        // would break (underflow itself aborts via SPATTEN_ASSERT):
        ASSERT_LE(pool.usedBytes(), cap);
        ASSERT_LE(pool.coldBytes(), pool.usedBytes());
        for (std::size_t i = 0; i < held.size(); ++i) {
            if (!held[i])
                continue;
            for (const std::uint32_t r : pool.sharedBlockRefs(i))
                ASSERT_GE(r, 1u);
        }
    }
    for (std::size_t i = 0; i < held.size(); ++i)
        if (held[i])
            pool.release(i);
    EXPECT_EQ(pool.usedBytes(), pool.coldBytes())
        << "only reclaimable cold cache may remain";
}

TEST(KvPoolDeath, ReleaseOfUnknownIdAsserts)
{
    const ModelSpec m = tinyModel();
    KvPool pool({0, 16});
    EXPECT_DEATH(pool.release(42), "released without");
    // Double release is the same bug with extra steps.
    ASSERT_TRUE(pool.tryReserve(0, m, 16));
    pool.release(0);
    EXPECT_DEATH(pool.release(0), "released without");
}

TEST(KvPoolDeath, ByteSizeOverflowAsserts)
{
    const ModelSpec m = tinyModel();
    const KvPool pool({0, 16});
    // ~2^60 blocks x 2^16 B/block overflows uint64: the guard must
    // abort instead of wrapping into a small admissible size.
    EXPECT_DEATH(
        (void)pool.bytesForTokens(
            m, std::numeric_limits<std::size_t>::max()),
        "overflows");
}

} // namespace
} // namespace spatten
