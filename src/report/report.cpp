#include "report/report.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace spatten {

std::string
csvEscape(const std::string& cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path)
{
    if (!out_.is_open())
        fatal("cannot open CSV output '%s'", path.c_str());
}

void
CsvWriter::writeLine(const std::vector<std::string>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << csvEscape(cells[i]);
    }
    out_ << '\n';
}

void
CsvWriter::header(const std::vector<std::string>& columns)
{
    SPATTEN_ASSERT(columns_ == 0 && rows_ == 0,
                   "header must be written first (%s)", path_.c_str());
    SPATTEN_ASSERT(!columns.empty(), "empty CSV header");
    columns_ = columns.size();
    writeLine(columns);
    out_.flush();
}

void
CsvWriter::row(const std::vector<std::string>& values)
{
    SPATTEN_ASSERT(columns_ > 0, "CSV header missing (%s)", path_.c_str());
    SPATTEN_ASSERT(values.size() == columns_,
                   "CSV row has %zu cells, header has %zu", values.size(),
                   columns_);
    writeLine(values);
    ++rows_;
    out_.flush();
}

void
CsvWriter::rowNumeric(const std::vector<double>& values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values)
        cells.push_back(fmtNum(v));
    row(cells);
}

std::string
fmtNum(double value)
{
    return strfmt("%.6g", value);
}

std::string
markdownTable(const std::vector<std::string>& headers,
              const std::vector<std::vector<std::string>>& rows)
{
    SPATTEN_ASSERT(!headers.empty(), "empty table header");
    std::vector<std::size_t> width(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        width[c] = headers[c].size();
    for (const auto& r : rows) {
        SPATTEN_ASSERT(r.size() == headers.size(),
                       "row has %zu cells, header has %zu", r.size(),
                       headers.size());
        for (std::size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());
    }
    const auto line = [&](const std::vector<std::string>& cells) {
        std::string s = "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            s += ' ' + cells[c];
            s.append(width[c] - cells[c].size() + 1, ' ');
            s += '|';
        }
        return s + '\n';
    };
    std::string out = line(headers);
    std::string sep = "|";
    for (std::size_t c = 0; c < headers.size(); ++c) {
        sep.append(width[c] + 2, '-');
        sep += '|';
    }
    out += sep + '\n';
    for (const auto& r : rows)
        out += line(r);
    return out;
}

} // namespace spatten
