/// Unit and property tests for linear symmetric quantization and MSB/LSB
/// bit-plane splitting.
#include <gtest/gtest.h>

#include <cmath>

#include "quant/bitplane.hpp"
#include "quant/linear_quant.hpp"
#include "tensor/ops.hpp"

namespace spatten {
namespace {

TEST(LinearQuant, RoundTripBoundsError)
{
    Prng p(1);
    const Tensor x = Tensor::randn({1000}, p, 0.0f, 1.0f);
    for (int bits : {4, 6, 8, 12}) {
        const Tensor y = quant::fakeQuantize(x, bits);
        // Error bounded by half a quantization step.
        const float step = quant::chooseScale(x, bits);
        EXPECT_LE(ops::maxAbsDiff(x, y), 0.5f * step * 1.001f)
            << "bits=" << bits;
    }
}

TEST(LinearQuant, MoreBitsLessError)
{
    Prng p(2);
    const Tensor x = Tensor::randn({4000}, p);
    double prev = 1e9;
    for (int bits : {4, 6, 8, 10, 12}) {
        const double err = ops::meanAbsDiff(x, quant::fakeQuantize(x, bits));
        EXPECT_LT(err, prev) << "bits=" << bits;
        prev = err;
    }
}

TEST(LinearQuant, ZeroTensorIsExact)
{
    const Tensor x({16}, 0.0f);
    const Tensor y = quant::fakeQuantize(x, 8);
    EXPECT_EQ(ops::maxAbsDiff(x, y), 0.0f);
}

TEST(LinearQuant, CodesWithinRange)
{
    Prng p(3);
    const Tensor x = Tensor::randn({512}, p, 0.0f, 10.0f);
    const QuantizedTensor qt = quant::quantize(x, 6);
    for (auto c : qt.q) {
        EXPECT_GE(c, qt.qmin());
        EXPECT_LE(c, qt.qmax());
    }
}

TEST(LinearQuant, MaxAbsMapsToTopCode)
{
    const Tensor x = Tensor::fromList({-4.0f, 1.0f, 4.0f});
    const QuantizedTensor qt = quant::quantize(x, 4);
    EXPECT_EQ(qt.q[2], qt.qmax());
}

TEST(LinearQuant, SymmetricAroundZero)
{
    const Tensor x = Tensor::fromList({-2.0f, 2.0f});
    const QuantizedTensor qt = quant::quantize(x, 8);
    EXPECT_EQ(qt.q[0], -qt.q[1]);
}

TEST(Bitplane, SplitReconstructExact)
{
    Prng p(4);
    const Tensor x = Tensor::randn({777}, p, 0.0f, 2.0f);
    for (const auto& setting : kPaperBitplaneSettings) {
        const BitplaneTensor bp = quant::splitPlanes(x, setting);
        const Tensor full = quant::reconstructFull(bp);
        const Tensor direct = quant::fakeQuantize(x, setting.totalBits());
        EXPECT_LT(ops::maxAbsDiff(full, direct), 1e-6f)
            << "msb=" << setting.msb_bits;
    }
}

TEST(Bitplane, MsbOnlyIsCoarser)
{
    Prng p(5);
    const Tensor x = Tensor::randn({2048}, p);
    const BitplaneTensor bp = quant::splitPlanes(x, {8, 4});
    const double err_msb = ops::meanAbsDiff(x, quant::reconstructMsbOnly(bp));
    const double err_full = ops::meanAbsDiff(x, quant::reconstructFull(bp));
    EXPECT_GT(err_msb, err_full);
    // MSB-only error is still bounded by one MSB step.
    const float msb_step = bp.scale * 16.0f; // 2^lsb_bits
    EXPECT_LE(ops::maxAbsDiff(x, quant::reconstructMsbOnly(bp)),
              msb_step * 1.001f);
}

TEST(Bitplane, LsbPlaneUnsignedRange)
{
    Prng p(6);
    const Tensor x = Tensor::randn({512}, p);
    const BitplaneTensor bp = quant::splitPlanes(x, {6, 4});
    for (auto l : bp.lsb) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, 16);
    }
}

TEST(Bitplane, NegativeValuesSurviveSplit)
{
    const Tensor x = Tensor::fromList({-1.0f, -0.5f, 0.5f, 1.0f});
    const BitplaneTensor bp = quant::splitPlanes(x, {4, 4});
    const Tensor full = quant::reconstructFull(bp);
    EXPECT_LT(full[0], 0.0f);
    EXPECT_LT(full[1], 0.0f);
    EXPECT_GT(full[3], 0.0f);
}

TEST(Bitplane, PlaneByteSizes)
{
    Prng p(7);
    const Tensor x = Tensor::randn({100}, p);
    const BitplaneTensor bp = quant::splitPlanes(x, {8, 4});
    EXPECT_EQ(bp.msbPlaneBytes(), 100u);     // 100 * 8 / 8
    EXPECT_EQ(bp.lsbPlaneBytes(), 50u);      // 100 * 4 / 8
}

TEST(Bitplane, ConvertBitwidthPreservesCode)
{
    EXPECT_EQ(quant::convertBitwidth(-8, 4, 12), -8);
    EXPECT_EQ(quant::convertBitwidth(7, 4, 12), 7);
    EXPECT_EQ(quant::convertBitwidth(2047, 12, 12), 2047);
}

// Property sweep: split/reconstruct is exact for every paper setting and
// multiple distributions.
class BitplaneSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitplaneSweep, ExactReconstruction)
{
    const BitplaneSetting setting = kPaperBitplaneSettings[GetParam()];
    Prng p(static_cast<std::uint64_t>(100 + GetParam()));
    for (float stddev : {0.1f, 1.0f, 10.0f}) {
        const Tensor x = Tensor::randn({333}, p, 0.0f, stddev);
        const BitplaneTensor bp = quant::splitPlanes(x, setting);
        const Tensor direct = quant::fakeQuantize(x, setting.totalBits());
        EXPECT_LT(ops::maxAbsDiff(quant::reconstructFull(bp), direct), 1e-6f);
    }
}

INSTANTIATE_TEST_SUITE_P(AllSettings, BitplaneSweep,
                         ::testing::Range(0, 5));

} // namespace
} // namespace spatten
