/**
 * @file
 * The SpAtten attention dataflow assembled as a stage graph.
 *
 * AttentionGraph instantiates the hardware units (fetcher, Q x K,
 * softmax, top-k, zero eliminator, prob x V), the SRAM/HBM/crossbar
 * substrate, and the policy transforms (cascade pruning, progressive
 * quantization), wires them into a StageGraph, and exposes the per-pass
 * driver the pipeline facade iterates: one runPass() per summarization
 * or generation step, then finalize() to land results and stats.
 */
#ifndef SPATTEN_ACCEL_ATTENTION_GRAPH_HPP
#define SPATTEN_ACCEL_ATTENTION_GRAPH_HPP

#include "accel/crossbar.hpp"
#include "accel/fetcher.hpp"
#include "accel/pv_module.hpp"
#include "accel/qk_module.hpp"
#include "accel/softmax_module.hpp"
#include "accel/sram.hpp"
#include "accel/topk_engine.hpp"
#include "accel/zero_eliminator.hpp"
#include "core/model_spec.hpp"
#include "hbm/hbm.hpp"
#include "sim/stage_graph.hpp"

namespace spatten {

struct SpAttenConfig;
struct RunResult;

/** One workload execution assembled as hardware stages + transforms. */
class AttentionGraph
{
  public:
    AttentionGraph(const SpAttenConfig& cfg, const WorkloadSpec& workload,
                   const PruningPolicy& policy, std::uint64_t request_seed);

    /**
     * Run one attention pass over the whole model: @p queries query rows
     * per (layer, head) against an entering context of @p context_len
     * tokens. Generation passes fetch the MSB plane eagerly and keep a
     * single query row.
     */
    void runPass(std::size_t queries, std::size_t context_len,
                 bool generation);

    /** Elapsed simulated seconds across all passes so far. */
    double elapsedSeconds() const;

    /**
     * Land cycles/seconds/energy/traffic, the dense fp32 reference for
     * reduction factors, and the stat registry (pipeline aggregates plus
     * the per-stage breakdown) into @p res.
     */
    void finalize(RunResult& res) const;

    /** The stage graph (per-stage stats, activity). */
    const StageGraph& graph() const { return graph_; }

    /**
     * The live execution context. After runPass() returns,
     * `context().alive_tokens` is the cascade-pruned survivor count the
     * pass left behind — the KV length a DecodeSession carries into the
     * next decode step.
     */
    const ExecutionContext& context() const { return ctx_; }

  private:
    WorkloadSpec workload_; ///< By value: the graph may outlive the caller's spec.
    SramModel key_sram_;
    SramModel value_sram_;
    HbmModel hbm_;
    Crossbar xbar_;
    QkvFetcher fetcher_;
    QkModule qk_;
    SoftmaxModule softmax_;
    TopkEngine topk_;
    ZeroEliminator zero_eliminator_;
    PvModule pv_;
    StageGraph graph_;
    ExecutionContext ctx_;
    double core_freq_ghz_;
    EnergyConfig energy_cfg_;
    double attention_flops_ = 0;
};

} // namespace spatten

#endif // SPATTEN_ACCEL_ATTENTION_GRAPH_HPP
