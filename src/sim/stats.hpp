/**
 * @file
 * Named statistics registry used by the hardware models to expose
 * counters (DRAM reads, row activations, top-k iterations, ...) to the
 * benchmark harness in a uniform way.
 */
#ifndef SPATTEN_SIM_STATS_HPP
#define SPATTEN_SIM_STATS_HPP

#include <map>
#include <set>
#include <string>
#include <vector>

namespace spatten {

/**
 * A flat name -> double statistics map with formatting helpers.
 *
 * Entries carry counter-or-gauge semantics: add() creates counters
 * (accumulating deltas, summed by merge()); set() creates gauges
 * (point-in-time values like utilizations or config echoes, overwritten
 * by merge() — last writer wins, never summed). Merging a result's
 * stats into an aggregate therefore never corrupts gauge entries.
 */
class StatSet
{
  public:
    /** Add @p delta to the named counter (creating it at 0). */
    void add(const std::string& name, double delta);

    /** Set the named gauge to @p value (marks the entry as a gauge). */
    void set(const std::string& name, double value);

    /** Value of the counter, 0 when absent. */
    double get(const std::string& name) const;

    bool has(const std::string& name) const;

    /** True when the entry was last written via set(). */
    bool isGauge(const std::string& name) const;

    /**
     * Merge another stat set into this one: counters sum, gauges
     * overwrite (adopting the other side's latest value).
     */
    void merge(const StatSet& other);

    /** All (name, value) pairs in name order. */
    const std::map<std::string, double>& all() const { return stats_; }

    /** Multi-line "name = value" dump, for harness output. */
    std::string toString() const;

    void clear()
    {
        stats_.clear();
        gauges_.clear();
    }

  private:
    std::map<std::string, double> stats_;
    std::set<std::string> gauges_; ///< Entries last written via set().
};

/**
 * Quantile of an ascending-sorted sample vector with linear
 * interpolation between adjacent ranks (the "linear"/type-7 definition:
 * rank = q * (n - 1), interpolating between floor and ceil). The single
 * definition behind every p50/p99 the serving layer reports — nearest
 * rank would return ~p98.4 for "p99" over 64 samples and p89 over 10.
 * Returns 0 for an empty sample.
 */
double sortedQuantile(const std::vector<double>& sorted, double q);

} // namespace spatten

#endif // SPATTEN_SIM_STATS_HPP
