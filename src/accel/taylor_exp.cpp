#include "accel/taylor_exp.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace spatten {

float
taylorExp5(float x)
{
    SPATTEN_ASSERT(x <= 0.0f, "taylorExp5 expects x <= 0, got %f", x);
    if (x < -60.0f)
        return 0.0f; // underflow guard, matches fixed-point flush
    constexpr float kLn2 = 0.6931471805599453f;
    const float ax = -x;
    const int k = static_cast<int>(ax / kLn2);
    const float r = ax - static_cast<float>(k) * kLn2; // in [0, ln2)

    // e^-r via 5th-order Taylor in Horner form.
    const float t = -r;
    float e = 1.0f + t / 5.0f;
    e = 1.0f + t / 4.0f * e;
    e = 1.0f + t / 3.0f * e;
    e = 1.0f + t / 2.0f * e;
    e = 1.0f + t * e;

    return std::ldexp(e, -k); // 2^-k * e^-r
}

double
taylorExp5MaxRelError(float lo, std::size_t samples)
{
    SPATTEN_ASSERT(lo < 0.0f && samples > 1, "bad sweep range");
    double max_rel = 0.0;
    for (std::size_t i = 0; i < samples; ++i) {
        const float x = lo * static_cast<float>(i) /
                        static_cast<float>(samples - 1);
        const double ref = std::exp(static_cast<double>(x));
        if (ref < 1e-18)
            continue;
        const double got = taylorExp5(x);
        max_rel = std::max(max_rel, std::fabs(got - ref) / ref);
    }
    return max_rel;
}

} // namespace spatten
