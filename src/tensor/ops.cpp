#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

namespace spatten {
namespace ops {

Tensor
matmul(const Tensor& a, const Tensor& b)
{
    SPATTEN_ASSERT(a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(0),
                   "matmul %s x %s", a.shapeStr().c_str(),
                   b.shapeStr().c_str());
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    Tensor c({m, n});
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t l = 0; l < k; ++l) {
            const float av = pa[i * k + l];
            if (av == 0.0f)
                continue;
            const float* brow = pb + l * n;
            float* crow = pc + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

Tensor
matmulTransposedB(const Tensor& a, const Tensor& b)
{
    SPATTEN_ASSERT(a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(1),
                   "matmulT %s x %s^T", a.shapeStr().c_str(),
                   b.shapeStr().c_str());
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
    Tensor c({m, n});
    for (std::size_t i = 0; i < m; ++i) {
        const float* arow = a.data() + i * k;
        for (std::size_t j = 0; j < n; ++j) {
            const float* brow = b.data() + j * k;
            float acc = 0.0f;
            for (std::size_t l = 0; l < k; ++l)
                acc += arow[l] * brow[l];
            c.at(i, j) = acc;
        }
    }
    return c;
}

Tensor
transpose(const Tensor& a)
{
    SPATTEN_ASSERT(a.ndim() == 2, "transpose of %s", a.shapeStr().c_str());
    const std::size_t m = a.dim(0), n = a.dim(1);
    Tensor t({n, m});
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j)
            t.at(j, i) = a.at(i, j);
    return t;
}

namespace {

Tensor
zipSameShape(const Tensor& a, const Tensor& b, float (*f)(float, float))
{
    SPATTEN_ASSERT(a.sameShape(b), "elementwise op on %s vs %s",
                   a.shapeStr().c_str(), b.shapeStr().c_str());
    Tensor out(a.shape());
    for (std::size_t i = 0; i < a.numel(); ++i)
        out[i] = f(a[i], b[i]);
    return out;
}

} // namespace

Tensor
add(const Tensor& a, const Tensor& b)
{
    return zipSameShape(a, b, [](float x, float y) { return x + y; });
}

Tensor
sub(const Tensor& a, const Tensor& b)
{
    return zipSameShape(a, b, [](float x, float y) { return x - y; });
}

Tensor
mul(const Tensor& a, const Tensor& b)
{
    return zipSameShape(a, b, [](float x, float y) { return x * y; });
}

Tensor
scale(const Tensor& a, float s)
{
    Tensor out(a.shape());
    for (std::size_t i = 0; i < a.numel(); ++i)
        out[i] = a[i] * s;
    return out;
}

Tensor
addRowBias(const Tensor& a, const Tensor& bias)
{
    SPATTEN_ASSERT(a.ndim() == 2 && bias.ndim() == 1 &&
                       bias.dim(0) == a.dim(1),
                   "addRowBias %s + %s", a.shapeStr().c_str(),
                   bias.shapeStr().c_str());
    Tensor out = a;
    const std::size_t rows = a.dim(0), cols = a.dim(1);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            out.at(i, j) += bias[j];
    return out;
}

Tensor
softmax(const Tensor& scores)
{
    SPATTEN_ASSERT(scores.ndim() == 1 && scores.numel() > 0,
                   "softmax of %s", scores.shapeStr().c_str());
    Tensor out(scores.shape());
    const float m = scores.maxElem();
    double denom = 0.0;
    for (std::size_t i = 0; i < scores.numel(); ++i) {
        out[i] = std::exp(scores[i] - m);
        denom += out[i];
    }
    for (std::size_t i = 0; i < scores.numel(); ++i)
        out[i] = static_cast<float>(out[i] / denom);
    return out;
}

Tensor
softmaxRows(const Tensor& scores)
{
    SPATTEN_ASSERT(scores.ndim() == 2, "softmaxRows of %s",
                   scores.shapeStr().c_str());
    const std::size_t rows = scores.dim(0), cols = scores.dim(1);
    Tensor out(scores.shape());
    for (std::size_t i = 0; i < rows; ++i) {
        float m = scores.at(i, 0);
        for (std::size_t j = 1; j < cols; ++j)
            m = std::max(m, scores.at(i, j));
        double denom = 0.0;
        for (std::size_t j = 0; j < cols; ++j) {
            const float e = std::exp(scores.at(i, j) - m);
            out.at(i, j) = e;
            denom += e;
        }
        for (std::size_t j = 0; j < cols; ++j)
            out.at(i, j) = static_cast<float>(out.at(i, j) / denom);
    }
    return out;
}

Tensor
layerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta, float eps)
{
    SPATTEN_ASSERT(x.ndim() == 2 && gamma.dim(0) == x.dim(1) &&
                       beta.dim(0) == x.dim(1),
                   "layerNorm %s", x.shapeStr().c_str());
    const std::size_t rows = x.dim(0), cols = x.dim(1);
    Tensor out(x.shape());
    for (std::size_t i = 0; i < rows; ++i) {
        double mean = 0.0;
        for (std::size_t j = 0; j < cols; ++j)
            mean += x.at(i, j);
        mean /= static_cast<double>(cols);
        double var = 0.0;
        for (std::size_t j = 0; j < cols; ++j) {
            const double d = x.at(i, j) - mean;
            var += d * d;
        }
        var /= static_cast<double>(cols);
        const double inv = 1.0 / std::sqrt(var + eps);
        for (std::size_t j = 0; j < cols; ++j) {
            out.at(i, j) = static_cast<float>(
                (x.at(i, j) - mean) * inv * gamma[j] + beta[j]);
        }
    }
    return out;
}

Tensor
gelu(const Tensor& x)
{
    Tensor out(x.shape());
    constexpr float kSqrt2OverPi = 0.7978845608f;
    for (std::size_t i = 0; i < x.numel(); ++i) {
        const float v = x[i];
        out[i] = 0.5f * v *
                 (1.0f + std::tanh(kSqrt2OverPi * (v + 0.044715f * v * v * v)));
    }
    return out;
}

Tensor
relu(const Tensor& x)
{
    Tensor out(x.shape());
    for (std::size_t i = 0; i < x.numel(); ++i)
        out[i] = std::max(0.0f, x[i]);
    return out;
}

std::size_t
argmax(const Tensor& x)
{
    SPATTEN_ASSERT(x.numel() > 0, "argmax of empty tensor");
    std::size_t best = 0;
    for (std::size_t i = 1; i < x.numel(); ++i)
        if (x[i] > x[best])
            best = i;
    return best;
}

float
maxAbsDiff(const Tensor& a, const Tensor& b)
{
    SPATTEN_ASSERT(a.sameShape(b), "maxAbsDiff %s vs %s",
                   a.shapeStr().c_str(), b.shapeStr().c_str());
    float m = 0.0f;
    for (std::size_t i = 0; i < a.numel(); ++i)
        m = std::max(m, std::fabs(a[i] - b[i]));
    return m;
}

double
meanAbsDiff(const Tensor& a, const Tensor& b)
{
    SPATTEN_ASSERT(a.sameShape(b), "meanAbsDiff %s vs %s",
                   a.shapeStr().c_str(), b.shapeStr().c_str());
    if (a.numel() == 0)
        return 0.0;
    double s = 0.0;
    for (std::size_t i = 0; i < a.numel(); ++i)
        s += std::fabs(a[i] - b[i]);
    return s / static_cast<double>(a.numel());
}

Tensor
gatherRows(const Tensor& a, const std::vector<std::size_t>& indices)
{
    SPATTEN_ASSERT(a.ndim() == 2, "gatherRows of %s", a.shapeStr().c_str());
    const std::size_t cols = a.dim(1);
    Tensor out({indices.size(), cols});
    for (std::size_t i = 0; i < indices.size(); ++i) {
        SPATTEN_ASSERT(indices[i] < a.dim(0), "gather index %zu out of %zu",
                       indices[i], a.dim(0));
        for (std::size_t j = 0; j < cols; ++j)
            out.at(i, j) = a.at(indices[i], j);
    }
    return out;
}

Tensor
concatRows(const Tensor& a, const Tensor& b)
{
    SPATTEN_ASSERT(a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(1),
                   "concatRows %s + %s", a.shapeStr().c_str(),
                   b.shapeStr().c_str());
    Tensor out({a.dim(0) + b.dim(0), a.dim(1)});
    std::copy(a.data(), a.data() + a.numel(), out.data());
    std::copy(b.data(), b.data() + b.numel(), out.data() + a.numel());
    return out;
}

Tensor
sliceCols(const Tensor& a, std::size_t begin, std::size_t end)
{
    SPATTEN_ASSERT(a.ndim() == 2 && begin <= end && end <= a.dim(1),
                   "sliceCols [%zu, %zu) of %s", begin, end,
                   a.shapeStr().c_str());
    const std::size_t rows = a.dim(0), cols = end - begin;
    Tensor out({rows, cols});
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            out.at(i, j) = a.at(i, begin + j);
    return out;
}

Tensor
concatCols(const std::vector<Tensor>& parts)
{
    SPATTEN_ASSERT(!parts.empty(), "concatCols of nothing");
    const std::size_t rows = parts[0].dim(0);
    std::size_t cols = 0;
    for (const Tensor& p : parts) {
        SPATTEN_ASSERT(p.ndim() == 2 && p.dim(0) == rows,
                       "concatCols row mismatch");
        cols += p.dim(1);
    }
    Tensor out({rows, cols});
    std::size_t off = 0;
    for (const Tensor& p : parts) {
        for (std::size_t i = 0; i < rows; ++i)
            for (std::size_t j = 0; j < p.dim(1); ++j)
                out.at(i, off + j) = p.at(i, j);
        off += p.dim(1);
    }
    return out;
}

} // namespace ops
} // namespace spatten
